// Sparse revised simplex for LPs with bounded variables.
//
// The paper-scale engine behind the `Model`/`LpResult` API: where the dense
// solver (lp/simplex.hpp) materializes an (m+1) x (n+2m) tableau — ~25 GiB
// on an SDR2 floorplanning formulation — this one keeps the constraint
// matrix in CSC form and works with a Markowitz-factorized basis
// (lp/sparse/lu.hpp), so the same formulation fits in tens of MB.
//
// Algorithm notes:
//  * standard form Ax + s = b with one slack per row; slack bounds encode
//    the row sense ([0,inf) for <=, (-inf,0] for >=, fixed 0 for =);
//  * bounded-variable primal simplex working in the original bounds (no
//    shifting): nonbasic variables rest at either bound and may "bound
//    flip" without a basis change, matching the dense solver's semantics;
//  * phase 1 minimizes the total bound violation of the basic variables
//    (no artificial columns — the slack basis is always available);
//  * projected steepest-edge pricing (Forrest–Goldfarb reference weights
//    updated each pivot through the same FTRAN/BTRAN machinery), with Devex
//    available as an option and Bland's rule after a run of degenerate
//    pivots (anti-cycling);
//  * FTRAN/BTRAN through the LU factors with Forrest–Tomlin updates per
//    basis change; refactorization is stability- and fill-triggered (plus a
//    recovery refactorization whenever the entering column's pivot
//    disagrees between its FTRAN and BTRAN computations);
//  * warm start from a `Basis` (typically the parent node's optimal basis in
//    branch & bound): the basis is adopted, repaired if singular, and the
//    solve resumes from there — usually a handful of pivots instead of a
//    cold two-phase run. (For pure bound-change reoptimization the dual
//    simplex, lp/sparse/dual_simplex.hpp, is usually faster still.)
#pragma once

#include <span>

#include "lp/simplex.hpp"
#include "lp/sparse/basis.hpp"
#include "lp/sparse/csc.hpp"
#include "lp/sparse/lu.hpp"

namespace rfp::lp::sparse {

/// Primal pricing rule of the sparse engine.
enum class Pricing {
  kDevex,         ///< reference-framework Devex (no extra BTRAN per pivot)
  kSteepestEdge,  ///< projected steepest edge (one extra BTRAN per pivot,
                  ///< usually far fewer pivots)
};

class RevisedSimplexSolver {
 public:
  struct Options {
    /// Shared tolerances and limits, interpreted exactly as the dense
    /// solver does (feas/cost/pivot tolerances, iteration and time limits,
    /// Bland's-rule switch).
    SimplexSolver::Options core;
    /// Hard cap on Forrest–Tomlin updates between refactorizations, on top
    /// of the stability and fill-growth triggers; <= 0 disables the cap.
    /// Warm reoptimizations finish long before hitting it (so the B&B hot
    /// path runs refactorization-free); on paper-scale *cold* solves a
    /// periodic refresh measurably beats unbounded update chains, whose
    /// accumulated drift degrades pricing quality.
    int refactor_interval = 100;
    Pricing pricing = Pricing::kSteepestEdge;
    BasisLu::Options lu;
  };

  RevisedSimplexSolver() = default;
  explicit RevisedSimplexSolver(Options options) : options_(options) {}

  /// Solves the continuous relaxation of `model` (integrality ignored).
  [[nodiscard]] LpResult solve(const Model& model) const;

  /// Solves with per-variable bound overrides; `warm`, when non-null and
  /// shape-compatible, seeds the starting basis (`LpResult::warm_started`
  /// reports whether it was adopted). `csc`, when non-null, must be the CSC
  /// form of `model`'s constraint matrix — branch & bound builds it once
  /// per tree and shares it across every node solve.
  [[nodiscard]] LpResult solve(const Model& model, std::span<const double> lb,
                               std::span<const double> ub, const Basis* warm = nullptr,
                               const CscMatrix* csc = nullptr) const;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

}  // namespace rfp::lp::sparse
