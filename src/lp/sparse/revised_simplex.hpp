// Sparse revised simplex for LPs with bounded variables.
//
// The paper-scale engine behind the `Model`/`LpResult` API: where the dense
// solver (lp/simplex.hpp) materializes an (m+1) x (n+2m) tableau — ~25 GiB
// on an SDR2 floorplanning formulation — this one keeps the constraint
// matrix in CSC form and works with a Markowitz-factorized basis
// (lp/sparse/lu.hpp), so the same formulation fits in tens of MB.
//
// Algorithm notes:
//  * standard form Ax + s = b with one slack per row; slack bounds encode
//    the row sense ([0,inf) for <=, (-inf,0] for >=, fixed 0 for =);
//  * bounded-variable primal simplex working in the original bounds (no
//    shifting): nonbasic variables rest at either bound and may "bound
//    flip" without a basis change, matching the dense solver's semantics;
//  * phase 1 minimizes the total bound violation of the basic variables
//    (no artificial columns — the slack basis is always available);
//  * Devex pricing with a reference framework, falling back to Bland's rule
//    after a run of degenerate pivots (anti-cycling);
//  * FTRAN/BTRAN through the LU factors plus a product-form eta file;
//    periodic refactorization, plus a recovery refactorization whenever the
//    entering column's pivot disagrees between its FTRAN and BTRAN
//    computations or the ratio-test pivot is too small;
//  * warm start from a `Basis` (typically the parent node's optimal basis in
//    branch & bound): the basis is adopted, repaired if singular, and the
//    solve resumes from there — usually a handful of pivots instead of a
//    cold two-phase run.
#pragma once

#include <span>

#include "lp/simplex.hpp"
#include "lp/sparse/basis.hpp"
#include "lp/sparse/lu.hpp"

namespace rfp::lp::sparse {

class RevisedSimplexSolver {
 public:
  struct Options {
    /// Shared tolerances and limits, interpreted exactly as the dense
    /// solver does (feas/cost/pivot tolerances, iteration and time limits,
    /// Bland's-rule switch).
    SimplexSolver::Options core;
    /// Refactorize after this many eta updates (accuracy and FTRAN/BTRAN
    /// cost both degrade as the eta file grows).
    int refactor_interval = 100;
    BasisLu::Options lu;
  };

  RevisedSimplexSolver() = default;
  explicit RevisedSimplexSolver(Options options) : options_(options) {}

  /// Solves the continuous relaxation of `model` (integrality ignored).
  [[nodiscard]] LpResult solve(const Model& model) const;

  /// Solves with per-variable bound overrides; `warm`, when non-null and
  /// shape-compatible, seeds the starting basis (`LpResult::warm_started`
  /// reports whether it was adopted).
  [[nodiscard]] LpResult solve(const Model& model, std::span<const double> lb,
                               std::span<const double> ub,
                               const Basis* warm = nullptr) const;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

}  // namespace rfp::lp::sparse
