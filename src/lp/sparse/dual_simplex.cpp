#include "lp/sparse/dual_simplex.hpp"

#include <algorithm>
#include <cmath>

#include "lp/sparse/simplex_state.hpp"
#include "support/check.hpp"
#include "support/telemetry/trace.hpp"

namespace rfp::lp::sparse {

namespace {

/// Lower bound on steepest-edge row weights. True row norms of B^-1 are
/// bounded well away from zero on the scaled floorplanning bases; anything
/// at this floor is an artifact of inexact initialization, and letting it
/// fall further turns the row's pricing score (violation^2 / weight) into
/// an absorbing state.
constexpr double kDseWeightFloor = 1e-4;

/// One dual ratio-test candidate: nonbasic column `j` with pivot-row entry
/// `atil` (sign-normalized) and dual step `ratio` at which its reduced cost
/// hits zero.
struct Candidate {
  double ratio;
  double atil;
  int j;
};

class Worker {
 public:
  Worker(const Model& model, std::span<const double> lb, std::span<const double> ub,
         const CscMatrix* csc, const DualSimplexSolver::Options& opt)
      : opt_(opt), f_(model, lb, ub, csc) {
    bs_.lu = BasisLu(opt_.lu);
    d_.assign(uz(f_.nn), 0.0);
    arow_.assign(uz(f_.nn), 0.0);
    colmark_.assign(uz(f_.nn), 0);
    w_.assign(uz(f_.m), 1.0);
    alpha_.reset(f_.m);
    rho_.reset(f_.m);
    tau_.reset(f_.m);
    flip_col_.reset(f_.m);
    rowmark_.assign(uz(f_.m), 0);
    cb_.resize(uz(f_.m));
    dualy_.resize(uz(f_.m));
    if (opt_.core.telemetry && opt_.core.telemetry->metrics) {
      ftran_hist_ = &opt_.core.telemetry->metrics->histogram("lp.ftran_density_permille");
      btran_hist_ = &opt_.core.telemetry->metrics->histogram("lp.btran_density_permille");
    }
  }

  void setBounds(std::span<const double> lb, std::span<const double> ub) {
    f_.setBounds(lb, ub);
  }

  /// One reoptimization from `warm`. `hot` means the live basis, factors
  /// and reduced costs already equal `warm` (the previous solve returned
  /// it): only the basic values need recomputing — no refactorization.
  /// nullopt: no dual-feasible start (caller should run the primal engine).
  std::optional<LpStatus> reoptimize(const Basis& warm, bool hot, LpResult& out,
                                     const Deadline& deadline) {
    const std::optional<LpStatus> status = reoptimizeImpl(warm, hot, out, deadline);
    // Whatever the exit path, a persistent worker must never carry the
    // anti-degeneracy cost bias into the next solve — the residues would
    // stack across a tree's nodes and eventually certify wrong optima.
    removePerturbation();
    return status;
  }

 private:
  std::optional<LpStatus> reoptimizeImpl(const Basis& warm, bool hot, LpResult& out,
                                         const Deadline& deadline) {
    stalled_ = false;
    // A persistent worker accumulates counters across solves; telemetry
    // reports this call's delta.
    base_dual_pivots_ = dual_pivots_;
    base_bound_flips_ = bound_flips_;
    base_ft_updates_ = ft_updates_;
    base_refactorizations_ = bs_.refactorizations;
    base_dse_updates_ = dse_updates_;
    base_solve_stats_ = bs_.lu.solveStats();
    if (hot) {
      out.warm_started = true;
      // Bounds changed under the live basis: re-anchor the nonbasic
      // statuses and recompute the basics; factors, reduced costs — and
      // under steepest edge the exact row weights — are already current.
      bs_.reanchorStatuses(f_);
      bs_.computeXb(f_);
    } else {
      if (!bs_.adoptWarmBasis(f_, &warm)) return std::nullopt;
      out.warm_started = true;
      refactorizeTracked();
      bs_.computeXb(f_);
      computeDuals();
      // The adopted basis is new geometry: restart the steepest-edge
      // reference at ones (exact for a slack basis, a Devex-style
      // reference otherwise; the recurrence keeps it exact from here).
      std::fill(w_.begin(), w_.end(), 1.0);
    }
    if (!repairDualFeasibility()) return std::nullopt;

    long iters = 0;
    LpStatus status = LpStatus::kIterLimit;
    // Outer recovery loop. Optimality (primal feasibility) is verified by
    // recomputing the basics and reduced costs from scratch through the
    // current factors — every pivot already cross-checked them FTRAN vs
    // BTRAN, so a full refactorization is only escalated to when that
    // verification fails. Infeasibility claims prune whole subtrees and
    // keep the stricter fresh-factor recheck.
    bool verified = false;
    for (int round = 0; round < 3 && !verified; ++round) {
      // Retry rounds re-enter after the perturbation was stripped for
      // verification; restore it or they iterate on the maximally
      // degenerate true costs the perturbation exists to avoid.
      if (!perturbed_) applyPerturbation();
      status = iterate(iters, deadline);
      if (stalled_) return telemetry(out, iters), std::nullopt;
      if (status == LpStatus::kInfeasible && bs_.lu.updateCount() > 0) {
        refactorizeTracked();
        bs_.computeXb(f_);
        computeDuals();
        if (!repairDualFeasibility()) return telemetry(out, iters), std::nullopt;
        status = iterate(iters, deadline);
        if (stalled_) return telemetry(out, iters), std::nullopt;
      }
      if (status != LpStatus::kOptimal) break;
      removePerturbation();
      bs_.computeXb(f_);
      computeDuals();
      // Drifted reduced costs are repaired by re-flipping boxed variables;
      // an unfixable violation sends the solve to the primal fallback
      // rather than reporting a point that is not actually optimal.
      if (dualViolation() > 10.0 * opt_.core.cost_tol) {
        if (!repairDualFeasibility()) return telemetry(out, iters), std::nullopt;
      }
      verified = bs_.maxBasicViolation(f_) <= 10.0 * opt_.core.feas_tol &&
                 dualViolation() <= 10.0 * opt_.core.cost_tol;
      if (!verified && bs_.lu.updateCount() > 0) {
        // Escalate the retry round to fresh factors.
        refactorizeTracked();
        bs_.computeXb(f_);
        computeDuals();
        if (!repairDualFeasibility()) return telemetry(out, iters), std::nullopt;
      }
    }
    telemetry(out, iters);
    if (status == LpStatus::kOptimal && !verified) {
      // The claim kept failing verification: this is the dual engine losing
      // its numerical footing, not an exhausted budget — hand the node to
      // the primal engine instead of making branch & bound drop it.
      return std::nullopt;
    }
    if (status != LpStatus::kOptimal) return status;

    // Extract the primal point (structural variables only).
    out.x.assign(uz(f_.n), 0.0);
    for (int j = 0; j < f_.n; ++j)
      if (bs_.status[uz(j)] != VarStatus::kBasic) out.x[uz(j)] = bs_.nonbasicValue(f_, j);
    for (int p = 0; p < f_.m; ++p) {
      const int b = bs_.basic[uz(p)];
      if (b < f_.n) out.x[uz(b)] = bs_.xb[uz(p)];
    }
    out.basis = bs_.snapshot(f_);
    return LpStatus::kOptimal;
  }

 private:
  void telemetry(LpResult& out, long iters) const {
    out.iterations = iters;
    out.refactorizations = bs_.refactorizations - base_refactorizations_;
    out.dual_pivots = dual_pivots_ - base_dual_pivots_;
    out.bound_flips = bound_flips_ - base_bound_flips_;
    out.ft_updates = ft_updates_ - base_ft_updates_;
    const BasisLu::SolveStats& ss = bs_.lu.solveStats();
    out.ftran_sparse = ss.ftran_sparse - base_solve_stats_.ftran_sparse;
    out.ftran_dense = ss.ftran_dense - base_solve_stats_.ftran_dense;
    out.btran_sparse = ss.btran_sparse - base_solve_stats_.btran_sparse;
    out.btran_dense = ss.btran_dense - base_solve_stats_.btran_dense;
    out.dse_updates = dse_updates_ - base_dse_updates_;
  }

  /// Refactorizes and, when the singular-repair path swapped slacks in, the
  /// basis changed outside the pivot stream — the steepest-edge recurrence
  /// no longer describes it, so the weight reference restarts at ones.
  void refactorizeTracked() {
    const long repairs_before = bs_.repairs;
    bs_.refactorize(f_);
    if (bs_.repairs != repairs_before &&
        opt_.pricing == DualSimplexSolver::DualPricing::kSteepestEdge)
      std::fill(w_.begin(), w_.end(), 1.0);
  }

  /// Pivot budget for one warm reoptimization before giving up to the
  /// primal engine. Generous against real reopt work (dozens of pivots,
  /// hundreds for an endgame infeasibility proof) but small next to a
  /// wandering solve at paper scale.
  [[nodiscard]] long effortLimit() const { return std::max(500, f_.m / 50); }

  [[nodiscard]] bool isFixed(int j) const { return f_.lo[uz(j)] == f_.up[uz(j)]; }
  [[nodiscard]] bool isBoxed(int j) const {
    return finiteLo(f_.lo[uz(j)]) && finiteUp(f_.up[uz(j)]);
  }

  /// Floorplanning objectives are massively degenerate (stage-1 "wasted
  /// frames" leaves most reduced costs exactly zero), which makes every
  /// dual ratio zero and invites cycling. A tiny deterministic cost
  /// perturbation — pushing each nonbasic reduced cost strictly into its
  /// feasible side, scaled under the verification tolerance — restores
  /// monotone dual progress; it is removed before optimality is verified,
  /// so claims are always made against the true costs.
  void applyPerturbation() {
    pert_.assign(uz(f_.nn), 0.0);
    for (int j = 0; j < f_.nn; ++j) {
      if (bs_.status[uz(j)] == VarStatus::kBasic || isFixed(j)) continue;
      // Deterministic per-column magnitude in [0.1, 0.9] * cost_tol:
      // distinct ratios break ties while the removal residue stays well
      // inside the 10 * cost_tol verification threshold.
      const double xi = 0.1 * opt_.core.cost_tol *
                        (1.0 + 8.0 * static_cast<double>((static_cast<unsigned>(j) *
                                                          2654435761u >>
                                                          16) &
                                                         1023u) /
                                   1023.0);
      switch (bs_.status[uz(j)]) {
        case VarStatus::kAtLower: pert_[uz(j)] = xi; break;
        case VarStatus::kAtUpper: pert_[uz(j)] = -xi; break;
        default: break;  // free variables keep d == 0
      }
      f_.cost[uz(j)] += pert_[uz(j)];
      d_[uz(j)] += pert_[uz(j)];  // basics unperturbed, so d shifts exactly
    }
    perturbed_ = true;
  }

  /// Restores the true costs. Callers that keep solving must recompute the
  /// reduced costs afterwards (the optimal-path verification does; give-up
  /// paths discard the live state, so stale d_ never survives into a
  /// hot-path reuse).
  void removePerturbation() {
    if (!perturbed_) return;
    for (int j = 0; j < f_.nn; ++j) f_.cost[uz(j)] -= pert_[uz(j)];
    perturbed_ = false;
  }

  /// Reduced costs of every nonbasic variable, from scratch (basics get 0).
  void computeDuals() {
    for (int p = 0; p < f_.m; ++p) cb_[uz(p)] = f_.cost[uz(bs_.basic[uz(p)])];
    dualy_ = cb_;
    bs_.lu.btran(dualy_);
    for (int j = 0; j < f_.nn; ++j)
      d_[uz(j)] = bs_.status[uz(j)] == VarStatus::kBasic
                      ? 0.0
                      : f_.cost[uz(j)] - f_.columnDot(dualy_, j);
  }

  [[nodiscard]] double dualViolation() const {
    double worst = 0.0;
    for (int j = 0; j < f_.nn; ++j) {
      if (bs_.status[uz(j)] == VarStatus::kBasic || isFixed(j)) continue;
      switch (bs_.status[uz(j)]) {
        case VarStatus::kAtLower: worst = std::max(worst, -d_[uz(j)]); break;
        case VarStatus::kAtUpper: worst = std::max(worst, d_[uz(j)]); break;
        default: worst = std::max(worst, std::abs(d_[uz(j)])); break;
      }
    }
    return worst;
  }

  /// Flips boxed nonbasic variables to the bound their reduced cost prefers.
  /// Returns false when a violation cannot be flipped away (free variable or
  /// a one-sided bound) — the basis is genuinely dual-infeasible and the
  /// primal engine must take over. Recomputes the basics when it flipped.
  bool repairDualFeasibility() {
    const double ctol = opt_.core.cost_tol;
    bool flipped = false;
    for (int j = 0; j < f_.nn; ++j) {
      if (bs_.status[uz(j)] == VarStatus::kBasic || isFixed(j)) continue;
      const double dj = d_[uz(j)];
      switch (bs_.status[uz(j)]) {
        case VarStatus::kAtLower:
          if (dj < -ctol) {
            if (!finiteUp(f_.up[uz(j)])) return false;
            bs_.status[uz(j)] = VarStatus::kAtUpper;
            ++bound_flips_;
            flipped = true;
          }
          break;
        case VarStatus::kAtUpper:
          if (dj > ctol) {
            if (!finiteLo(f_.lo[uz(j)])) return false;
            bs_.status[uz(j)] = VarStatus::kAtLower;
            ++bound_flips_;
            flipped = true;
          }
          break;
        default:
          if (std::abs(dj) > ctol) return false;
          break;
      }
    }
    if (flipped) bs_.computeXb(f_);
    return true;
  }

  LpStatus iterate(long& iters, const Deadline& deadline) {
    int degenerate_streak = 0;
    int consecutive_recoveries = 0;
    // Devex restarts its reference framework per round. Steepest-edge
    // weights are exact row norms maintained by the recurrence across
    // rounds and across hot-path reoptimizations — resetting them here is
    // precisely the crutch this rule replaces.
    const bool dse = opt_.pricing == DualSimplexSolver::DualPricing::kSteepestEdge;
    if (!dse) std::fill(w_.begin(), w_.end(), 1.0);  // fresh dual Devex framework
    std::vector<Candidate> cands;
    std::vector<int> flips;
    while (true) {
      if (++iters > opt_.core.max_iterations) return LpStatus::kIterLimit;
      if ((iters & 7) == 0 &&
          (deadline.expired() ||
           (opt_.core.stop && opt_.core.stop->load(std::memory_order_relaxed))))
        return LpStatus::kTimeLimit;
      const bool bland = degenerate_streak > opt_.core.bland_after_degenerate;

      // ---- leaving row: worst weighted bound violation ----
      int p_row = -1;
      double sigma = 0.0;
      double best_score = 0.0;
      for (int p = 0; p < f_.m; ++p) {
        const int b = bs_.basic[uz(p)];
        const double v = bs_.xb[uz(p)];
        double viol;
        double sgn;
        if (v < f_.lo[uz(b)] - opt_.core.feas_tol) {
          viol = f_.lo[uz(b)] - v;
          sgn = -1.0;
        } else if (v > f_.up[uz(b)] + opt_.core.feas_tol) {
          viol = v - f_.up[uz(b)];
          sgn = 1.0;
        } else {
          continue;
        }
        if (bland) {  // deterministic lowest row under the anti-cycling rule
          p_row = p;
          sigma = sgn;
          break;
        }
        const double score = viol * viol / w_[uz(p)];
        if (p_row < 0 || score > best_score) {
          p_row = p;
          sigma = sgn;
          best_score = score;
        }
      }
      if (p_row < 0) return LpStatus::kOptimal;  // primal feasible
      const int leave = bs_.basic[uz(p_row)];

      // ---- pivot row + dual ratio candidates ----
      // Hyper-sparse BTRAN of e_p, then a CSR scatter over just the columns
      // that intersect rho's support — every other column has a zero
      // pivot-row entry and is neither a candidate nor touched by the dual
      // step update below. Replaces an O(nnz(A)) columnDot pass per pivot.
      rho_.clear();
      rho_.set(p_row, 1.0);
      bs_.lu.btranSparse(rho_);  // row p_row of B^-1
      if (btran_hist_)
        btran_hist_->record(1000.0 * static_cast<double>(rho_.idx.size()) /
                            static_cast<double>(f_.m));
      for (const int j : coltouch_) {
        arow_[uz(j)] = 0.0;
        colmark_[uz(j)] = 0;
      }
      coltouch_.clear();
      for (const int i : rho_.idx) {
        const double rv = rho_.val[uz(i)];
        if (rv == 0.0) continue;
        for (int k = f_.rptr[uz(i)]; k < f_.rptr[uz(i) + 1]; ++k) {
          const int j = f_.rcol[uz(k)];
          if (!colmark_[uz(j)]) {
            colmark_[uz(j)] = 1;
            coltouch_.push_back(j);
          }
          arow_[uz(j)] += f_.rval[uz(k)] * rv;
        }
        const int js = f_.n + i;  // slack column of row i is the unit e_i
        if (!colmark_[uz(js)]) {
          colmark_[uz(js)] = 1;
          coltouch_.push_back(js);
        }
        arow_[uz(js)] += rv;
      }
      cands.clear();
      for (const int j : coltouch_) {
        if (bs_.status[uz(j)] == VarStatus::kBasic || isFixed(j)) continue;
        const double atil = sigma * arow_[uz(j)];
        const VarStatus s = bs_.status[uz(j)];
        const bool eligible = (s == VarStatus::kAtLower && atil > opt_.core.pivot_tol) ||
                              (s == VarStatus::kAtUpper && atil < -opt_.core.pivot_tol) ||
                              (s == VarStatus::kFree && std::abs(atil) > opt_.core.pivot_tol);
        if (!eligible) continue;
        cands.push_back(Candidate{std::max(0.0, d_[uz(j)] / atil), atil, j});
      }
      if (cands.empty()) return LpStatus::kInfeasible;  // dual unbounded
      std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
        return a.ratio != b.ratio ? a.ratio < b.ratio : a.j < b.j;
      });

      // ---- bound-flip ratio test ----
      // Walk candidates in dual-step order; a boxed candidate whose flip
      // cannot yet restore the row's feasibility is flipped instead of
      // entering (its reduced cost changes sign at the chosen dual step, so
      // it must sit at the other bound afterwards anyway).
      double remaining = sigma > 0 ? bs_.xb[uz(p_row)] - f_.up[uz(leave)]
                                   : f_.lo[uz(leave)] - bs_.xb[uz(p_row)];
      flips.clear();
      int chosen = -1;
      for (std::size_t c = 0; c < cands.size(); ++c) {
        const int j = cands[c].j;
        const bool can_flip = !bland && isBoxed(j) && bs_.status[uz(j)] != VarStatus::kFree;
        const double absorb =
            can_flip ? std::abs(cands[c].atil) * (f_.up[uz(j)] - f_.lo[uz(j)]) : kInfinity;
        if (can_flip && absorb < remaining - opt_.core.feas_tol) {
          flips.push_back(static_cast<int>(c));
          remaining -= absorb;
          continue;
        }
        chosen = static_cast<int>(c);
        // Harris-style tie-break: among candidates within a whisker of the
        // minimal ratio, prefer the largest pivot — small pivots are the
        // main source of drift and ping-pong pivoting under degeneracy.
        // Bland mode must keep the smallest index (the sort's order), or
        // the anti-cycling guarantee evaporates.
        if (!bland) {
          for (std::size_t k = c + 1; k < cands.size(); ++k) {
            if (cands[k].ratio > cands[uz(c)].ratio + 1e-9) break;
            if (std::abs(cands[k].atil) > std::abs(cands[uz(chosen)].atil))
              chosen = static_cast<int>(k);
          }
        }
        break;
      }
      if (chosen < 0) return LpStatus::kInfeasible;  // flips cannot close the row
      const Candidate cand = cands[uz(chosen)];
      const int e = cand.j;

      // ---- entering column + numerical cross-check ----
      f_.scatterColumn(e, alpha_);
      bs_.lu.ftranSparse(alpha_, &spike_);
      if (ftran_hist_)
        ftran_hist_->record(1000.0 * static_cast<double>(alpha_.idx.size()) /
                            static_cast<double>(f_.m));
      const double pivot_col = alpha_.val[uz(p_row)];
      if (std::abs(pivot_col - arow_[uz(e)]) > 1e-7 * (1.0 + std::abs(pivot_col)) ||
          std::abs(pivot_col) <= opt_.core.pivot_tol) {
        if (consecutive_recoveries++ < 2) {
          refactorizeTracked();
          bs_.computeXb(f_);
          computeDuals();
          continue;
        }
        // Keep going with the FTRAN value; the outer loop re-verifies. A
        // genuinely vanishing pivot would blow up the step — that is a
        // numerics failure, so give the node up to the primal engine.
        if (std::abs(pivot_col) <= opt_.core.pivot_tol) {
          stalled_ = true;
          return LpStatus::kIterLimit;
        }
      }
      consecutive_recoveries = 0;

      // ---- apply the flips (one FTRAN for all of them) ----
      if (!flips.empty()) {
        flip_col_.clear();
        for (const int c : flips) {
          const int j = cands[uz(c)].j;
          const double range = f_.up[uz(j)] - f_.lo[uz(j)];
          const double dirj = bs_.status[uz(j)] == VarStatus::kAtLower ? 1.0 : -1.0;
          addColumnSparse(j, dirj * range);
          bs_.status[uz(j)] = dirj > 0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
        }
        for (const int i : flip_col_.idx) rowmark_[uz(i)] = 0;
        bs_.lu.ftranSparse(flip_col_);
        for (const int p : flip_col_.idx) bs_.xb[uz(p)] -= flip_col_.val[uz(p)];
        bound_flips_ += static_cast<long>(flips.size());
      }

      // ---- pivot: leaving variable exits at its violated bound ----
      const double target = sigma > 0 ? f_.up[uz(leave)] : f_.lo[uz(leave)];
      const double t_p = (bs_.xb[uz(p_row)] - target) / pivot_col;
      const double enter_val = bs_.nonbasicValue(f_, e) + t_p;
      for (const int p : alpha_.idx) bs_.xb[uz(p)] -= t_p * alpha_.val[uz(p)];
      bs_.status[uz(leave)] = sigma > 0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
      bs_.basic[uz(p_row)] = e;
      bs_.status[uz(e)] = VarStatus::kBasic;
      bs_.xb[uz(p_row)] = enter_val;
      ++dual_pivots_;
      if (telemetry::sampleHit(opt_.core.telemetry, static_cast<std::uint64_t>(dual_pivots_)))
        opt_.core.telemetry->trace->instant("lp", "pivot", "ratio", cand.ratio, "kind", "dual");
      degenerate_streak = cand.ratio < 1e-10 ? degenerate_streak + 1 : 0;
      if (degenerate_streak > std::max(200, f_.m / 4)) {
        // A run this long means the perturbed problem is still cycling;
        // hand the node to the primal engine rather than burning the
        // iteration budget.
        stalled_ = true;
        return LpStatus::kIterLimit;
      }
      if (dual_pivots_ - base_dual_pivots_ > effortLimit()) {
        // A warm reoptimization is supposed to take a handful of pivots; a
        // solve that wanders past this budget (hyper-degenerate instances
        // where dual Devex row pricing loses its way) is cheaper to redo
        // on the primal engine than to finish here.
        stalled_ = true;
        return LpStatus::kIterLimit;
      }

      // ---- dual step: update reduced costs from the pivot row ----
      const double theta_d = sigma * cand.ratio;
      if (theta_d != 0.0) {
        for (const int j : coltouch_) {
          if (bs_.status[uz(j)] == VarStatus::kBasic || j == leave || isFixed(j)) continue;
          if (arow_[uz(j)] != 0.0) d_[uz(j)] -= theta_d * arow_[uz(j)];
        }
      }
      d_[uz(leave)] = -theta_d;  // pivot-row entry of the leaving variable is 1
      d_[uz(e)] = 0.0;

      // ---- row-weight update from the entering column ----
      const double are2 = pivot_col * pivot_col;
      const double wr = w_[uz(p_row)];
      if (dse) {
        // Forrest–Goldfarb exact steepest-edge recurrence: with
        // tau = B^-1 rho_r (through the *old* factors — the FT update has
        // not been applied yet),
        //   beta_p' = beta_p - 2 (alpha_pq / alpha_rq) tau_p
        //                    + (alpha_pq / alpha_rq)^2 beta_r.
        tau_.copyFrom(rho_);
        bs_.lu.ftranSparse(tau_);
        for (const int p : alpha_.idx) {
          if (p == p_row) continue;
          const double r = alpha_.val[uz(p)] / pivot_col;
          const double upd = w_[uz(p)] - 2.0 * r * tau_.val[uz(p)] + r * r * wr;
          // Cauchy–Schwarz safeguard: the new rows of B^-1 satisfy
          // beta_p' beta_r' >= (b_p' . b_r')^2 with b_p' . b_r' =
          // (tau_p - r beta_r) / alpha_rq, so beta_p' >= (tau_p - r beta_r)^2
          // / beta_r. Exact weights satisfy the bound identically; weights
          // carried from an inexact cold-adopt init (all ones on a non-slack
          // basis) would otherwise be driven through zero by the true tau
          // term, collapse to the floor, and make this row's pricing score
          // explode — the degenerate-wandering mode the floor alone cannot
          // prevent.
          const double cs = tau_.val[uz(p)] - r * wr;
          w_[uz(p)] = std::max({upd, cs * cs / wr, kDseWeightFloor});
        }
        w_[uz(p_row)] = std::max(wr / are2, kDseWeightFloor);
        ++dse_updates_;
      } else {
        // Dual Devex reference-framework approximation.
        for (const int p : alpha_.idx) {
          if (p == p_row) continue;
          const double ap = alpha_.val[uz(p)];
          w_[uz(p)] = std::max(w_[uz(p)], ap * ap / are2 * wr);
        }
        w_[uz(p_row)] = std::max(wr / are2, 1.0);
        if (w_[uz(p_row)] > 1e12) std::fill(w_.begin(), w_.end(), 1.0);
      }

      // ---- Forrest–Tomlin update ----
      if (!bs_.lu.updateColumn(p_row, spike_)) {
        telemetry::instant(opt_.core.telemetry, "lp", "refactorize", nullptr, 0.0, "reason",
                           "unstable_update");
        refactorizeTracked();
        bs_.computeXb(f_);
        computeDuals();
      } else {
        ++ft_updates_;
        if ((opt_.refactor_interval > 0 &&
             bs_.lu.updateCount() >= opt_.refactor_interval) ||
            bs_.lu.shouldRefactorize()) {
          telemetry::instant(opt_.core.telemetry, "lp", "refactorize", nullptr, 0.0, "reason",
                             "interval");
          refactorizeTracked();
          bs_.computeXb(f_);
          computeDuals();
        }
      }
    }
  }

  /// Accumulates `t` times structural column `j` (slack j >= n: the unit
  /// row j - n) into flip_col_, growing its index set through rowmark_.
  void addColumnSparse(int j, double t) {
    const auto touch = [&](int i, double a) {
      if (!rowmark_[uz(i)]) {
        rowmark_[uz(i)] = 1;
        flip_col_.idx.push_back(i);
      }
      flip_col_.val[uz(i)] += a * t;
    };
    if (j < f_.n) {
      const CscMatrix& a = *f_.a;
      for (int k = a.ptr[uz(j)]; k < a.ptr[uz(j) + 1]; ++k)
        touch(a.idx[uz(k)], a.val[uz(k)]);
    } else {
      touch(j - f_.n, 1.0);
    }
  }

  DualSimplexSolver::Options opt_;
  StandardForm f_;
  BasisState bs_;
  long dual_pivots_ = 0;
  long bound_flips_ = 0;
  long ft_updates_ = 0;
  long dse_updates_ = 0;
  long base_dual_pivots_ = 0;
  long base_bound_flips_ = 0;
  long base_ft_updates_ = 0;
  long base_refactorizations_ = 0;
  long base_dse_updates_ = 0;
  BasisLu::SolveStats base_solve_stats_;

  std::vector<double> d_;     ///< reduced costs (nonbasic; basics hold 0)
  std::vector<double> pert_;  ///< applied cost perturbation per variable
  bool perturbed_ = false;
  bool stalled_ = false;  ///< degenerate cycling detected: give up to primal
  std::vector<double> arow_;    ///< current pivot row over touched columns
  std::vector<char> colmark_;   ///< arow_ occupancy (parallel to arow_)
  std::vector<int> coltouch_;   ///< columns with a live arow_ entry
  std::vector<char> rowmark_;   ///< flip_col_ index-set membership scratch
  std::vector<double> w_;       ///< row pricing weights (exact DSE or Devex)
  std::vector<double> cb_, dualy_;
  IndexedVector alpha_, rho_, tau_, flip_col_;
  BasisLu::Spike spike_;
  telemetry::Histogram* ftran_hist_ = nullptr;
  telemetry::Histogram* btran_hist_ = nullptr;
};

}  // namespace

std::optional<LpResult> DualSimplexSolver::solve(const Model& model,
                                                 std::span<const double> lb,
                                                 std::span<const double> ub,
                                                 const Basis& warm, const CscMatrix* csc,
                                                 LpResult* declined_attempt) const {
  RFP_CHECK(static_cast<int>(lb.size()) == model.numVars());
  RFP_CHECK(static_cast<int>(ub.size()) == model.numVars());
  Stopwatch watch;
  Deadline deadline(options_.core.time_limit_seconds);
  LpResult result;
  result.engine = LpEngine::kSparse;
  result.dual_reopt = true;

  for (int j = 0; j < model.numVars(); ++j) {
    if (lb[uz(j)] > ub[uz(j)] + 1e-12) {
      result.status = LpStatus::kInfeasible;
      result.seconds = watch.seconds();
      return result;
    }
  }

  Worker worker(model, lb, ub, csc, options_);
  const std::optional<LpStatus> status =
      worker.reoptimize(warm, /*hot=*/false, result, deadline);
  if (!status) {
    result.seconds = watch.seconds();
    if (declined_attempt) *declined_attempt = std::move(result);
    return std::nullopt;
  }
  result.status = *status;
  if (result.status == LpStatus::kOptimal) result.objective = model.evalObjective(result.x);
  result.seconds = watch.seconds();
  return result;
}

// ---- DualReoptimizer --------------------------------------------------------

struct DualReoptimizer::Impl {
  const Model& model;
  std::shared_ptr<const CscMatrix> csc;
  DualSimplexSolver::Options opt;
  std::optional<Worker> worker;  ///< constructed on the first reoptimize
  /// Basis snapshot the live worker state corresponds to; null whenever the
  /// live state is not a usable warm-start source (after fallbacks, limits
  /// or infeasible verdicts).
  std::shared_ptr<const Basis> live;
  /// Circuit breaker: consecutive give-ups. Some subtrees (hyper-degenerate
  /// instances at the largest scales) defeat dual Devex row pricing on
  /// every node; after `breaker_strikes` consecutive failures the
  /// reoptimizer stops burning the effort budget and lets the primal
  /// engine carry the next `breaker_cooldown` nodes. The breaker is a
  /// cool-down, not a kill switch: after the cool-down one probe attempt
  /// runs, and a probe that completes re-arms the warm path — a single bad
  /// subtree must not disable dual reoptimization for the rest of the
  /// tree. (This state is single-owner, like the live factors: parallel
  /// B&B keeps one reoptimizer per worker, so strikes are per-worker too.)
  int strikes = 0;
  int cooldown_left = 0;  ///< tripped-breaker calls to decline before a probe

  Impl(const Model& m, std::shared_ptr<const CscMatrix> c, DualSimplexSolver::Options o)
      : model(m), csc(std::move(c)), opt(o) {}
};

DualReoptimizer::DualReoptimizer(const Model& model, std::shared_ptr<const CscMatrix> csc,
                                 DualSimplexSolver::Options options)
    : impl_(std::make_unique<Impl>(model, std::move(csc), options)) {}

DualReoptimizer::~DualReoptimizer() = default;
DualReoptimizer::DualReoptimizer(DualReoptimizer&&) noexcept = default;
DualReoptimizer& DualReoptimizer::operator=(DualReoptimizer&&) noexcept = default;

std::optional<LpResult> DualReoptimizer::reoptimize(std::span<const double> lb,
                                                    std::span<const double> ub,
                                                    const std::shared_ptr<const Basis>& warm,
                                                    double time_limit_seconds,
                                                    LpResult* declined_attempt) {
  if (!warm) return std::nullopt;
  const int max_strikes = impl_->opt.breaker_strikes;
  if (max_strikes > 0 && impl_->strikes >= max_strikes && impl_->cooldown_left > 0) {
    --impl_->cooldown_left;  // tripped: decline until the cool-down elapses
    return std::nullopt;
  }
  RFP_CHECK(static_cast<int>(lb.size()) == impl_->model.numVars());
  RFP_CHECK(static_cast<int>(ub.size()) == impl_->model.numVars());
  Stopwatch watch;
  Deadline deadline(time_limit_seconds);
  LpResult result;
  result.engine = LpEngine::kSparse;
  result.dual_reopt = true;

  for (int j = 0; j < impl_->model.numVars(); ++j) {
    if (lb[uz(j)] > ub[uz(j)] + 1e-12) {
      result.status = LpStatus::kInfeasible;
      result.seconds = watch.seconds();
      return result;
    }
  }

  const bool hot = impl_->worker && impl_->live && warm == impl_->live;
  if (!impl_->worker) {
    impl_->worker.emplace(impl_->model, lb, ub, impl_->csc.get(), impl_->opt);
  } else {
    impl_->worker->setBounds(lb, ub);
  }
  impl_->live.reset();  // invalid until this solve ends in an optimum
  const std::optional<LpStatus> status =
      impl_->worker->reoptimize(*warm, hot, result, deadline);
  if (!status) {
    ++impl_->strikes;
    // Reaching the strike limit (or failing the post-cool-down probe)
    // (re-)trips the breaker for another cool-down window.
    if (max_strikes > 0 && impl_->strikes >= max_strikes)
      impl_->cooldown_left = std::max(0, impl_->opt.breaker_cooldown);
    result.seconds = watch.seconds();
    if (declined_attempt) *declined_attempt = std::move(result);
    return std::nullopt;
  }
  // Any completed solve — the claim is verified through refactorized
  // factors before being reported — re-arms the warm path entirely.
  impl_->strikes = 0;
  result.status = *status;
  if (result.status == LpStatus::kOptimal) {
    result.objective = impl_->model.evalObjective(result.x);
    impl_->live = result.basis;  // the factors now match this snapshot
  }
  result.seconds = watch.seconds();
  return result;
}

}  // namespace rfp::lp::sparse
