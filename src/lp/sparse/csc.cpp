#include "lp/sparse/csc.hpp"

#include <atomic>

namespace rfp::lp::sparse {

namespace {
std::atomic<long> g_build_count{0};
}  // namespace

long CscMatrix::buildCount() noexcept { return g_build_count.load(std::memory_order_relaxed); }

CscMatrix CscMatrix::fromModel(const Model& model) {
  g_build_count.fetch_add(1, std::memory_order_relaxed);
  CscMatrix a;
  a.rows = model.numConstrs();
  a.cols = model.numVars();
  a.ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);

  // Count entries per column, then prefix-sum into ptr.
  for (int i = 0; i < a.rows; ++i)
    for (const auto& [v, coef] : model.constr(i).terms)
      if (coef != 0.0) ++a.ptr[static_cast<std::size_t>(v) + 1];
  for (int j = 0; j < a.cols; ++j) a.ptr[static_cast<std::size_t>(j) + 1] += a.ptr[static_cast<std::size_t>(j)];

  a.idx.resize(static_cast<std::size_t>(a.ptr[static_cast<std::size_t>(a.cols)]));
  a.val.resize(a.idx.size());
  std::vector<int> cursor(a.ptr.begin(), a.ptr.end() - 1);
  // Row-major scan writes each column's rows in ascending order (constraints
  // are visited in index order), so no per-column sort is needed. Model rows
  // arrive with duplicate variables already merged (LinExpr::normalize), so
  // each (row, col) pair appears at most once.
  for (int i = 0; i < a.rows; ++i) {
    for (const auto& [v, coef] : model.constr(i).terms) {
      if (coef == 0.0) continue;
      const int at = cursor[static_cast<std::size_t>(v)]++;
      a.idx[static_cast<std::size_t>(at)] = i;
      a.val[static_cast<std::size_t>(at)] = coef;
    }
  }
  return a;
}

long countNonzeros(const Model& model) noexcept {
  long nnz = 0;
  for (int i = 0; i < model.numConstrs(); ++i)
    nnz += static_cast<long>(model.constr(i).terms.size());
  return nnz;
}

}  // namespace rfp::lp::sparse
