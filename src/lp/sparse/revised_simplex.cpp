#include "lp/sparse/revised_simplex.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace rfp::lp::sparse {

namespace {

constexpr double kInf = kInfinity;

[[nodiscard]] bool finiteLo(double v) noexcept { return v > -kInf / 2; }
[[nodiscard]] bool finiteUp(double v) noexcept { return v < kInf / 2; }

/// One solve's working state. Variables are indexed 0..n-1 (structural) and
/// n..n+m-1 (slack of row j-n); basic variables are addressed by their row
/// position in the basis.
class Worker {
 public:
  Worker(const Model& model, std::span<const double> lb, std::span<const double> ub,
         const RevisedSimplexSolver::Options& opt)
      : opt_(opt), a_(CscMatrix::fromModel(model)) {
    n_ = model.numVars();
    m_ = model.numConstrs();
    nn_ = n_ + m_;
    lo_.resize(static_cast<std::size_t>(nn_));
    up_.resize(static_cast<std::size_t>(nn_));
    for (int j = 0; j < n_; ++j) {
      lo_[static_cast<std::size_t>(j)] = lb[static_cast<std::size_t>(j)];
      up_[static_cast<std::size_t>(j)] = ub[static_cast<std::size_t>(j)];
    }
    rhs_.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      const Constraint& c = model.constr(i);
      rhs_[static_cast<std::size_t>(i)] = c.rhs;
      const int s = n_ + i;
      switch (c.sense) {
        case Sense::kLessEqual:
          lo_[static_cast<std::size_t>(s)] = 0.0;
          up_[static_cast<std::size_t>(s)] = kInf;
          break;
        case Sense::kGreaterEqual:
          lo_[static_cast<std::size_t>(s)] = -kInf;
          up_[static_cast<std::size_t>(s)] = 0.0;
          break;
        case Sense::kEqual:
          lo_[static_cast<std::size_t>(s)] = 0.0;
          up_[static_cast<std::size_t>(s)] = 0.0;
          break;
      }
    }
    // Phase-2 costs in minimization sense (slacks cost nothing).
    cost_.assign(static_cast<std::size_t>(nn_), 0.0);
    const double dir = (model.objSense() == ObjSense::kMinimize) ? 1.0 : -1.0;
    for (const auto& [v, c] : model.objective().terms())
      cost_[static_cast<std::size_t>(v)] += dir * c;

    lu_ = BasisLu(opt_.lu);
    weights_.assign(static_cast<std::size_t>(nn_), 1.0);
    alpha_.resize(static_cast<std::size_t>(m_));
    rho_.resize(static_cast<std::size_t>(m_));
    cb_.resize(static_cast<std::size_t>(m_));
    xb_.resize(static_cast<std::size_t>(m_));
  }

  LpStatus run(const Basis* warm, LpResult& out, const Deadline& deadline) {
    if (!adoptWarmBasis(warm)) slackBasis();
    out.warm_started = warm_started_;
    refactorize();
    computeXb();

    long iters = 0;
    LpStatus status = LpStatus::kIterLimit;
    // Outer recovery loop: after phase 2 claims optimality, the basics are
    // recomputed through a fresh factorization; residual infeasibility
    // (accumulated eta-file drift) sends the solve back to phase 1.
    bool verified = false;
    for (int round = 0; round < 3 && !verified; ++round) {
      status = iterate(/*phase1=*/true, iters, deadline);
      if (status == LpStatus::kInfeasible && lu_.etaCount() > 0) {
        // Infeasibility claims get the same skepticism as optimality ones:
        // re-derive the basics through fresh factors before pruning a
        // branch & bound subtree on the verdict.
        refactorize();
        computeXb();
        status = iterate(/*phase1=*/true, iters, deadline);
      }
      if (status != LpStatus::kOptimal) break;
      status = iterate(/*phase1=*/false, iters, deadline);
      if (status != LpStatus::kOptimal) break;
      if (lu_.etaCount() > 0) refactorize();  // fresh factors for the final check
      computeXb();
      verified = maxBasicViolation() <= 10.0 * opt_.core.feas_tol;
    }
    // Never report an unverified point as optimal: if the re-check kept
    // failing, degrade to a truncation status so callers (branch & bound)
    // drop the result instead of pruning against a bogus bound.
    if (status == LpStatus::kOptimal && !verified) status = LpStatus::kIterLimit;
    out.iterations = iters;
    out.refactorizations = refactorizations_;
    if (status != LpStatus::kOptimal) return status;

    // Extract the primal point (structural variables only).
    std::vector<double> val(static_cast<std::size_t>(nn_), 0.0);
    for (int p = 0; p < m_; ++p)
      val[static_cast<std::size_t>(basic_[static_cast<std::size_t>(p)])] =
          xb_[static_cast<std::size_t>(p)];
    out.x.assign(static_cast<std::size_t>(n_), 0.0);
    for (int j = 0; j < n_; ++j)
      out.x[static_cast<std::size_t>(j)] =
          status_[static_cast<std::size_t>(j)] == VarStatus::kBasic
              ? val[static_cast<std::size_t>(j)]
              : nonbasicValue(j);

    auto snapshot = std::make_shared<Basis>();
    snapshot->basic = basic_;
    snapshot->status = status_;
    snapshot->rows = m_;
    snapshot->cols = n_;
    out.basis = std::move(snapshot);
    return LpStatus::kOptimal;
  }

 private:
  // ---- basis management ----------------------------------------------------

  void slackBasis() {
    basic_.resize(static_cast<std::size_t>(m_));
    status_.assign(static_cast<std::size_t>(nn_), VarStatus::kAtLower);
    for (int j = 0; j < n_; ++j) status_[static_cast<std::size_t>(j)] = defaultStatus(j);
    for (int i = 0; i < m_; ++i) {
      basic_[static_cast<std::size_t>(i)] = n_ + i;
      status_[static_cast<std::size_t>(n_) + static_cast<std::size_t>(i)] = VarStatus::kBasic;
    }
  }

  [[nodiscard]] VarStatus defaultStatus(int j) const {
    if (finiteLo(lo_[static_cast<std::size_t>(j)])) return VarStatus::kAtLower;
    if (finiteUp(up_[static_cast<std::size_t>(j)])) return VarStatus::kAtUpper;
    return VarStatus::kFree;
  }

  bool adoptWarmBasis(const Basis* warm) {
    if (!warm || !warm->shapeMatches(m_, n_)) return false;
    int basics = 0;
    for (const VarStatus s : warm->status) basics += s == VarStatus::kBasic;
    if (basics != m_) return false;
    for (int p = 0; p < m_; ++p) {
      const int b = warm->basic[static_cast<std::size_t>(p)];
      if (b < 0 || b >= nn_ || warm->status[static_cast<std::size_t>(b)] != VarStatus::kBasic)
        return false;
    }
    basic_ = warm->basic;
    status_ = warm->status;
    // Bounds may have changed since the basis was taken (branch & bound
    // tightens them): re-anchor nonbasic statuses to bounds that still exist.
    for (int j = 0; j < nn_; ++j) {
      VarStatus& s = status_[static_cast<std::size_t>(j)];
      if (s == VarStatus::kAtLower && !finiteLo(lo_[static_cast<std::size_t>(j)]))
        s = finiteUp(up_[static_cast<std::size_t>(j)]) ? VarStatus::kAtUpper : VarStatus::kFree;
      else if (s == VarStatus::kAtUpper && !finiteUp(up_[static_cast<std::size_t>(j)]))
        s = finiteLo(lo_[static_cast<std::size_t>(j)]) ? VarStatus::kAtLower : VarStatus::kFree;
      else if (s == VarStatus::kFree && (finiteLo(lo_[static_cast<std::size_t>(j)]) ||
                                         finiteUp(up_[static_cast<std::size_t>(j)])))
        s = defaultStatus(j);
    }
    warm_started_ = true;
    return true;
  }

  void refactorize() {
    if (!lu_.factorize(a_, basic_)) {
      // Singular basis (possible for a warm start under new bounds): swap
      // each deficient position for the slack of a distinct unpivoted row —
      // the completed pivot set plus unit columns is provably nonsingular.
      const std::vector<int> dp = lu_.deficientPositions();
      const std::vector<int> ur = lu_.unpivotedRows();
      RFP_CHECK(dp.size() == ur.size());
      for (std::size_t i = 0; i < dp.size(); ++i) {
        const int pos = dp[i];
        const int displaced = basic_[static_cast<std::size_t>(pos)];
        status_[static_cast<std::size_t>(displaced)] = defaultStatus(displaced);
        const int slack = n_ + ur[i];
        basic_[static_cast<std::size_t>(pos)] = slack;
        status_[static_cast<std::size_t>(slack)] = VarStatus::kBasic;
      }
      RFP_CHECK_MSG(lu_.factorize(a_, basic_), "basis repair failed to factorize");
    }
    ++refactorizations_;
  }

  [[nodiscard]] double nonbasicValue(int j) const {
    switch (status_[static_cast<std::size_t>(j)]) {
      case VarStatus::kAtLower: return lo_[static_cast<std::size_t>(j)];
      case VarStatus::kAtUpper: return up_[static_cast<std::size_t>(j)];
      default: return 0.0;
    }
  }

  /// xB := B^-1 (b - N x_N), from scratch.
  void computeXb() {
    std::vector<double>& b = xb_;
    b = rhs_;
    for (int j = 0; j < nn_; ++j) {
      if (status_[static_cast<std::size_t>(j)] == VarStatus::kBasic) continue;
      const double v = nonbasicValue(j);
      if (v == 0.0) continue;
      if (j >= n_) {
        b[static_cast<std::size_t>(j - n_)] -= v;
      } else {
        for (int k = a_.ptr[static_cast<std::size_t>(j)]; k < a_.ptr[static_cast<std::size_t>(j) + 1]; ++k)
          b[static_cast<std::size_t>(a_.idx[static_cast<std::size_t>(k)])] -=
              a_.val[static_cast<std::size_t>(k)] * v;
      }
    }
    lu_.ftran(b);
  }

  [[nodiscard]] double maxBasicViolation() const {
    double worst = 0.0;
    for (int p = 0; p < m_; ++p) {
      const int b = basic_[static_cast<std::size_t>(p)];
      const double v = xb_[static_cast<std::size_t>(p)];
      worst = std::max(worst, lo_[static_cast<std::size_t>(b)] - v);
      worst = std::max(worst, v - up_[static_cast<std::size_t>(b)]);
    }
    return worst;
  }

  // ---- column access -------------------------------------------------------

  [[nodiscard]] double columnDot(const std::vector<double>& y, int j) const {
    if (j >= n_) return y[static_cast<std::size_t>(j - n_)];
    double s = 0.0;
    for (int k = a_.ptr[static_cast<std::size_t>(j)]; k < a_.ptr[static_cast<std::size_t>(j) + 1]; ++k)
      s += a_.val[static_cast<std::size_t>(k)] * y[static_cast<std::size_t>(a_.idx[static_cast<std::size_t>(k)])];
    return s;
  }

  void scatterColumn(int j, std::vector<double>& v) const {
    std::fill(v.begin(), v.end(), 0.0);
    if (j >= n_) {
      v[static_cast<std::size_t>(j - n_)] = 1.0;
      return;
    }
    for (int k = a_.ptr[static_cast<std::size_t>(j)]; k < a_.ptr[static_cast<std::size_t>(j) + 1]; ++k)
      v[static_cast<std::size_t>(a_.idx[static_cast<std::size_t>(k)])] = a_.val[static_cast<std::size_t>(k)];
  }

  // ---- the simplex loop ----------------------------------------------------

  /// True when basic position p currently violates a bound beyond feas_tol.
  enum class Feas { kOk, kBelow, kAbove };
  [[nodiscard]] Feas classify(int p) const {
    const int b = basic_[static_cast<std::size_t>(p)];
    const double v = xb_[static_cast<std::size_t>(p)];
    if (v < lo_[static_cast<std::size_t>(b)] - opt_.core.feas_tol) return Feas::kBelow;
    if (v > up_[static_cast<std::size_t>(b)] + opt_.core.feas_tol) return Feas::kAbove;
    return Feas::kOk;
  }

  LpStatus iterate(bool phase1, long& iters, const Deadline& deadline) {
    int degenerate_streak = 0;
    int consecutive_recoveries = 0;
    std::fill(weights_.begin(), weights_.end(), 1.0);  // fresh Devex framework
    while (true) {
      if (++iters > opt_.core.max_iterations) return LpStatus::kIterLimit;
      if ((iters & 7) == 0 &&
          (deadline.expired() ||
           (opt_.core.stop && opt_.core.stop->load(std::memory_order_relaxed))))
        return LpStatus::kTimeLimit;

      // Phase-1 cost row: unit penalty per violated bound. Phase 1 is over
      // as soon as every basic variable is inside its bounds.
      bool any_infeasible = false;
      if (phase1) {
        for (int p = 0; p < m_; ++p) {
          const Feas f = classify(p);
          cb_[static_cast<std::size_t>(p)] = f == Feas::kBelow ? -1.0 : (f == Feas::kAbove ? 1.0 : 0.0);
          any_infeasible = any_infeasible || f != Feas::kOk;
        }
        if (!any_infeasible) return LpStatus::kOptimal;
      } else {
        for (int p = 0; p < m_; ++p)
          cb_[static_cast<std::size_t>(p)] = cost_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(p)])];
      }

      // Duals and pricing.
      rho_ = cb_;
      lu_.btran(rho_);  // rho_ now holds y (row space)
      const bool bland = degenerate_streak > opt_.core.bland_after_degenerate;
      int enter = -1;
      double enter_d = 0.0;
      double best_score = 0.0;
      for (int j = 0; j < nn_; ++j) {
        if (status_[static_cast<std::size_t>(j)] == VarStatus::kBasic) continue;
        if (lo_[static_cast<std::size_t>(j)] == up_[static_cast<std::size_t>(j)]) continue;  // fixed
        const double cj = phase1 ? 0.0 : cost_[static_cast<std::size_t>(j)];
        const double d = cj - columnDot(rho_, j);
        const VarStatus s = status_[static_cast<std::size_t>(j)];
        const bool eligible = (s == VarStatus::kAtLower && d < -opt_.core.cost_tol) ||
                              (s == VarStatus::kAtUpper && d > opt_.core.cost_tol) ||
                              (s == VarStatus::kFree && std::abs(d) > opt_.core.cost_tol);
        if (!eligible) continue;
        if (bland) {
          enter = j;
          enter_d = d;
          break;  // Bland: first eligible index
        }
        const double score = d * d / weights_[static_cast<std::size_t>(j)];
        if (enter < 0 || score > best_score) {
          enter = j;
          enter_d = d;
          best_score = score;
        }
      }
      if (enter < 0)
        return phase1 && any_infeasible ? LpStatus::kInfeasible : LpStatus::kOptimal;

      const double dir =
          status_[static_cast<std::size_t>(enter)] == VarStatus::kAtUpper
              ? -1.0
              : (status_[static_cast<std::size_t>(enter)] == VarStatus::kFree && enter_d > 0 ? -1.0
                                                                                            : 1.0);
      scatterColumn(enter, alpha_);
      lu_.ftran(alpha_);

      // ---- bounded ratio test (phase-aware) ----
      const double lo_e = lo_[static_cast<std::size_t>(enter)];
      const double up_e = up_[static_cast<std::size_t>(enter)];
      double t_best = (finiteLo(lo_e) && finiteUp(up_e)) ? up_e - lo_e : kInf;  // bound flip
      int block = -1;
      bool leave_upper = false;
      double best_mag = 0.0;
      for (int p = 0; p < m_; ++p) {
        const double apv = alpha_[static_cast<std::size_t>(p)];
        if (std::abs(apv) <= opt_.core.pivot_tol) continue;
        const double delta = -dir * apv;  // d xB_p / dt
        const int b = basic_[static_cast<std::size_t>(p)];
        const double v = xb_[static_cast<std::size_t>(p)];
        double t;
        bool at_upper;
        const Feas f = phase1 ? classify(p) : Feas::kOk;
        if (f == Feas::kBelow) {
          // Infeasible basics block only where they regain feasibility.
          if (delta <= 0) continue;
          t = (lo_[static_cast<std::size_t>(b)] - v) / delta;
          at_upper = false;
        } else if (f == Feas::kAbove) {
          if (delta >= 0) continue;
          t = (v - up_[static_cast<std::size_t>(b)]) / (-delta);
          at_upper = true;
        } else if (delta > 0) {
          if (!finiteUp(up_[static_cast<std::size_t>(b)])) continue;
          t = (up_[static_cast<std::size_t>(b)] - v) / delta;
          at_upper = true;
        } else {
          if (!finiteLo(lo_[static_cast<std::size_t>(b)])) continue;
          t = (v - lo_[static_cast<std::size_t>(b)]) / (-delta);
          at_upper = false;
        }
        t = std::max(0.0, t);
        const bool tie = t < t_best + 1e-12 && block >= 0;
        const bool better = bland ? (t < t_best - 1e-12 || (tie && b < basic_[static_cast<std::size_t>(block)]))
                                  : (t < t_best - 1e-12 || (tie && std::abs(apv) > best_mag));
        if (better) {
          t_best = t;
          block = p;
          leave_upper = at_upper;
          best_mag = std::abs(apv);
        }
      }

      if (block < 0) {
        if (t_best >= kInf / 2) {
          // Phase 1 cannot be unbounded below; reaching here means the
          // factorization drifted — recover once, then give up.
          if (!phase1) return LpStatus::kUnbounded;
          if (consecutive_recoveries++ < 2) {
            refactorize();
            computeXb();
            continue;
          }
          return LpStatus::kInfeasible;
        }
        // Bound flip: the entering variable crosses to its other bound.
        for (int p = 0; p < m_; ++p)
          xb_[static_cast<std::size_t>(p)] -= dir * t_best * alpha_[static_cast<std::size_t>(p)];
        status_[static_cast<std::size_t>(enter)] =
            status_[static_cast<std::size_t>(enter)] == VarStatus::kAtUpper ? VarStatus::kAtLower
                                                                            : VarStatus::kAtUpper;
        degenerate_streak = 0;
        consecutive_recoveries = 0;
        continue;
      }

      // Numerical cross-check: the pivot element via the row (BTRAN) and the
      // column (FTRAN) computations must agree; disagreement means the eta
      // file has degraded — refactorize and redo this iteration.
      scatterUnit(block, rho_);
      lu_.btran(rho_);  // rho_ now holds the pivot row multipliers
      const double pivot_col = alpha_[static_cast<std::size_t>(block)];
      const double pivot_row = columnDot(rho_, enter);
      if (std::abs(pivot_row - pivot_col) > 1e-7 * (1.0 + std::abs(pivot_col))) {
        if (consecutive_recoveries++ < 2) {
          refactorize();
          computeXb();
          continue;
        }
        // Accept the pivot anyway; the outer recovery loop re-verifies.
      }
      consecutive_recoveries = 0;

      degenerate_streak = (t_best < 1e-10) ? degenerate_streak + 1 : 0;

      // ---- apply the pivot ----
      const int leaving = basic_[static_cast<std::size_t>(block)];
      const double enter_val = nonbasicValue(enter) + dir * t_best;
      for (int p = 0; p < m_; ++p)
        xb_[static_cast<std::size_t>(p)] -= dir * t_best * alpha_[static_cast<std::size_t>(p)];
      status_[static_cast<std::size_t>(leaving)] =
          leave_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      basic_[static_cast<std::size_t>(block)] = enter;
      status_[static_cast<std::size_t>(enter)] = VarStatus::kBasic;
      xb_[static_cast<std::size_t>(block)] = enter_val;

      // Devex reference-framework update from the pivot row (already in rho_).
      if (!bland) {
        const double arq2 = pivot_col * pivot_col;
        const double wq = weights_[static_cast<std::size_t>(enter)];
        for (int j = 0; j < nn_; ++j) {
          if (status_[static_cast<std::size_t>(j)] == VarStatus::kBasic) continue;
          if (j == leaving) {
            weights_[static_cast<std::size_t>(j)] = std::max(wq / arq2, 1.0);
            continue;
          }
          const double ar = columnDot(rho_, j);
          if (ar == 0.0) continue;
          weights_[static_cast<std::size_t>(j)] =
              std::max(weights_[static_cast<std::size_t>(j)], ar * ar / arq2 * wq);
        }
        if (weights_[static_cast<std::size_t>(leaving)] > 1e12)
          std::fill(weights_.begin(), weights_.end(), 1.0);
      }

      lu_.pushEta(block, alpha_);
      if (lu_.etaCount() >= opt_.refactor_interval) {
        refactorize();
        computeXb();
      }
    }
  }

  static void scatterUnit(int p, std::vector<double>& v) {
    std::fill(v.begin(), v.end(), 0.0);
    v[static_cast<std::size_t>(p)] = 1.0;
  }

  RevisedSimplexSolver::Options opt_;
  CscMatrix a_;
  int n_ = 0, m_ = 0, nn_ = 0;
  std::vector<double> lo_, up_, rhs_, cost_;

  std::vector<int> basic_;
  std::vector<VarStatus> status_;
  std::vector<double> xb_;
  BasisLu lu_;
  long refactorizations_ = 0;
  bool warm_started_ = false;

  std::vector<double> weights_;       ///< Devex reference weights
  std::vector<double> alpha_, rho_, cb_;  ///< FTRAN column / BTRAN row / basic costs
};

}  // namespace

LpResult RevisedSimplexSolver::solve(const Model& model) const {
  std::vector<double> lb(static_cast<std::size_t>(model.numVars()));
  std::vector<double> ub(static_cast<std::size_t>(model.numVars()));
  for (int j = 0; j < model.numVars(); ++j) {
    lb[static_cast<std::size_t>(j)] = model.var(j).lb;
    ub[static_cast<std::size_t>(j)] = model.var(j).ub;
  }
  return solve(model, lb, ub);
}

LpResult RevisedSimplexSolver::solve(const Model& model, std::span<const double> lb,
                                     std::span<const double> ub, const Basis* warm) const {
  RFP_CHECK(static_cast<int>(lb.size()) == model.numVars());
  RFP_CHECK(static_cast<int>(ub.size()) == model.numVars());
  Stopwatch watch;
  Deadline deadline(options_.core.time_limit_seconds);
  LpResult result;
  result.engine = LpEngine::kSparse;

  for (int j = 0; j < model.numVars(); ++j) {
    if (lb[static_cast<std::size_t>(j)] > ub[static_cast<std::size_t>(j)] + 1e-12) {
      result.status = LpStatus::kInfeasible;
      result.seconds = watch.seconds();
      return result;
    }
  }

  Worker worker(model, lb, ub, options_);
  result.status = worker.run(warm, result, deadline);
  if (result.status == LpStatus::kOptimal)
    result.objective = model.evalObjective(result.x);
  result.seconds = watch.seconds();
  return result;
}

}  // namespace rfp::lp::sparse
