#include "lp/sparse/revised_simplex.hpp"

#include <algorithm>
#include <cmath>

#include "lp/sparse/simplex_state.hpp"
#include "support/check.hpp"
#include "support/telemetry/trace.hpp"

namespace rfp::lp::sparse {

namespace {

/// One solve's working state over the shared StandardForm/BasisState
/// machinery (simplex_state.hpp).
class Worker {
 public:
  Worker(const Model& model, std::span<const double> lb, std::span<const double> ub,
         const CscMatrix* csc, const RevisedSimplexSolver::Options& opt)
      : opt_(opt), f_(model, lb, ub, csc) {
    bs_.lu = BasisLu(opt_.lu);
    weights_.assign(uz(f_.nn), 1.0);
    alpha_.reset(f_.m);
    rho_.reset(f_.m);
    tau_.reset(f_.m);
    cb_.resize(uz(f_.m));
    dual_.resize(uz(f_.m));
    arow_.assign(uz(f_.nn), 0.0);
    colmark_.assign(uz(f_.nn), 0);
    if (opt_.core.telemetry && opt_.core.telemetry->metrics) {
      ftran_hist_ = &opt_.core.telemetry->metrics->histogram("lp.ftran_density_permille");
      btran_hist_ = &opt_.core.telemetry->metrics->histogram("lp.btran_density_permille");
    }
  }

  LpStatus run(const Basis* warm, LpResult& out, const Deadline& deadline) {
    if (!bs_.adoptWarmBasis(f_, warm)) bs_.slackBasis(f_);
    out.warm_started = bs_.warm_started;
    bs_.refactorize(f_);
    bs_.computeXb(f_);

    long iters = 0;
    LpStatus status = LpStatus::kIterLimit;
    // Outer recovery loop: after phase 2 claims optimality, the basics are
    // recomputed through a fresh factorization; residual infeasibility
    // (accumulated factor drift) sends the solve back to phase 1.
    bool verified = false;
    for (int round = 0; round < 3 && !verified; ++round) {
      status = iterate(/*phase1=*/true, iters, deadline);
      if (status == LpStatus::kInfeasible && bs_.lu.updateCount() > 0) {
        // Infeasibility claims get the same skepticism as optimality ones:
        // re-derive the basics through fresh factors before pruning a
        // branch & bound subtree on the verdict.
        bs_.refactorize(f_);
        bs_.computeXb(f_);
        status = iterate(/*phase1=*/true, iters, deadline);
      }
      if (status != LpStatus::kOptimal) break;
      status = iterate(/*phase1=*/false, iters, deadline);
      if (status != LpStatus::kOptimal) break;
      if (bs_.lu.updateCount() > 0) bs_.refactorize(f_);  // fresh factors for the final check
      bs_.computeXb(f_);
      verified = bs_.maxBasicViolation(f_) <= 10.0 * opt_.core.feas_tol;
    }
    // Never report an unverified point as optimal: if the re-check kept
    // failing, degrade to a truncation status so callers (branch & bound)
    // drop the result instead of pruning against a bogus bound.
    if (status == LpStatus::kOptimal && !verified) status = LpStatus::kIterLimit;
    out.iterations = iters;
    out.refactorizations = bs_.refactorizations;
    out.primal_pivots = primal_pivots_;
    out.bound_flips = bound_flips_;
    out.ft_updates = ft_updates_;
    const BasisLu::SolveStats& ss = bs_.lu.solveStats();
    out.ftran_sparse = ss.ftran_sparse;
    out.ftran_dense = ss.ftran_dense;
    out.btran_sparse = ss.btran_sparse;
    out.btran_dense = ss.btran_dense;
    out.dse_updates = dse_updates_;
    if (status != LpStatus::kOptimal) return status;

    // Extract the primal point (structural variables only).
    out.x.assign(uz(f_.n), 0.0);
    for (int j = 0; j < f_.n; ++j)
      if (bs_.status[uz(j)] != VarStatus::kBasic) out.x[uz(j)] = bs_.nonbasicValue(f_, j);
    for (int p = 0; p < f_.m; ++p) {
      const int b = bs_.basic[uz(p)];
      if (b < f_.n) out.x[uz(b)] = bs_.xb[uz(p)];
    }
    out.basis = bs_.snapshot(f_);
    return LpStatus::kOptimal;
  }

 private:
  // ---- the simplex loop ----------------------------------------------------
  //
  // Pricing weights start at all ones for both rules: Devex's reference
  // framework and *projected* steepest edge both take the starting basis as
  // the reference. (Seeding steepest edge with exact column norms instead
  // was measured slower on the big-M floorplanning formulations — huge
  // norms starve exactly the columns worth entering.)

  /// True when basic position p currently violates a bound beyond feas_tol.
  enum class Feas { kOk, kBelow, kAbove };
  [[nodiscard]] Feas classify(int p) const {
    const int b = bs_.basic[uz(p)];
    const double v = bs_.xb[uz(p)];
    if (v < f_.lo[uz(b)] - opt_.core.feas_tol) return Feas::kBelow;
    if (v > f_.up[uz(b)] + opt_.core.feas_tol) return Feas::kAbove;
    return Feas::kOk;
  }

  LpStatus iterate(bool phase1, long& iters, const Deadline& deadline) {
    int degenerate_streak = 0;
    int consecutive_recoveries = 0;
    // Devex restarts its reference framework per phase; steepest-edge
    // weights describe basis geometry, which phases share.
    if (opt_.pricing == Pricing::kDevex)
      std::fill(weights_.begin(), weights_.end(), 1.0);
    while (true) {
      if (++iters > opt_.core.max_iterations) return LpStatus::kIterLimit;
      if ((iters & 7) == 0 &&
          (deadline.expired() ||
           (opt_.core.stop && opt_.core.stop->load(std::memory_order_relaxed))))
        return LpStatus::kTimeLimit;

      // Phase-1 cost row: unit penalty per violated bound. Phase 1 is over
      // as soon as every basic variable is inside its bounds.
      bool any_infeasible = false;
      if (phase1) {
        for (int p = 0; p < f_.m; ++p) {
          const Feas fe = classify(p);
          cb_[uz(p)] = fe == Feas::kBelow ? -1.0 : (fe == Feas::kAbove ? 1.0 : 0.0);
          any_infeasible = any_infeasible || fe != Feas::kOk;
        }
        if (!any_infeasible) return LpStatus::kOptimal;
      } else {
        for (int p = 0; p < f_.m; ++p) cb_[uz(p)] = f_.cost[uz(bs_.basic[uz(p)])];
      }

      // Duals and pricing. The dual vector is structurally dense (the basic
      // cost row rarely has small support), so it keeps the dense sweep.
      dual_ = cb_;
      bs_.lu.btran(dual_);  // dual_ now holds y (row space)
      const bool bland = degenerate_streak > opt_.core.bland_after_degenerate;
      int enter = -1;
      double enter_d = 0.0;
      double best_score = 0.0;
      for (int j = 0; j < f_.nn; ++j) {
        if (bs_.status[uz(j)] == VarStatus::kBasic) continue;
        if (f_.lo[uz(j)] == f_.up[uz(j)]) continue;  // fixed
        const double cj = phase1 ? 0.0 : f_.cost[uz(j)];
        const double d = cj - f_.columnDot(dual_, j);
        const VarStatus s = bs_.status[uz(j)];
        const bool eligible = (s == VarStatus::kAtLower && d < -opt_.core.cost_tol) ||
                              (s == VarStatus::kAtUpper && d > opt_.core.cost_tol) ||
                              (s == VarStatus::kFree && std::abs(d) > opt_.core.cost_tol);
        if (!eligible) continue;
        if (bland) {
          enter = j;
          enter_d = d;
          break;  // Bland: first eligible index
        }
        const double score = d * d / weights_[uz(j)];
        if (enter < 0 || score > best_score) {
          enter = j;
          enter_d = d;
          best_score = score;
        }
      }
      if (enter < 0)
        return phase1 && any_infeasible ? LpStatus::kInfeasible : LpStatus::kOptimal;

      const double dir =
          bs_.status[uz(enter)] == VarStatus::kAtUpper
              ? -1.0
              : (bs_.status[uz(enter)] == VarStatus::kFree && enter_d > 0 ? -1.0 : 1.0);
      f_.scatterColumn(enter, alpha_);
      bs_.lu.ftranSparse(alpha_, &spike_);
      if (ftran_hist_) ftran_hist_->record(densityPermille(alpha_));

      // ---- ratio test (phase-aware, over alpha's support only) ----
      // `relax` loosens the blocking bound: 0 gives the exact ratio, a
      // positive value the Harris pass-1 relaxed one. Returns false when the
      // row cannot block.
      const auto rowRatio = [&](int p, double relax, double& t, bool& at_upper) -> bool {
        const double apv = alpha_.val[uz(p)];
        if (std::abs(apv) <= opt_.core.pivot_tol) return false;
        const double delta = -dir * apv;  // d xB_p / dt
        const int b = bs_.basic[uz(p)];
        const double v = bs_.xb[uz(p)];
        const Feas fe = phase1 ? classify(p) : Feas::kOk;
        if (fe == Feas::kBelow) {
          // Infeasible basics block only where they regain feasibility.
          if (delta <= 0) return false;
          t = (f_.lo[uz(b)] - v + relax) / delta;
          at_upper = false;
        } else if (fe == Feas::kAbove) {
          if (delta >= 0) return false;
          t = (v - f_.up[uz(b)] + relax) / (-delta);
          at_upper = true;
        } else if (delta > 0) {
          if (!finiteUp(f_.up[uz(b)])) return false;
          t = (f_.up[uz(b)] - v + relax) / delta;
          at_upper = true;
        } else {
          if (!finiteLo(f_.lo[uz(b)])) return false;
          t = (v - f_.lo[uz(b)] + relax) / (-delta);
          at_upper = false;
        }
        return true;
      };

      const double lo_e = f_.lo[uz(enter)];
      const double up_e = f_.up[uz(enter)];
      const double t_flip = (finiteLo(lo_e) && finiteUp(up_e)) ? up_e - lo_e : kInfinity;
      double t_best = t_flip;
      int block = -1;
      bool leave_upper = false;
      if (bland) {
        // Bland keeps the classic single pass: its anti-cycling argument
        // needs the minimum-ratio / lowest-index choice.
        for (const int p : alpha_.idx) {
          double t;
          bool at_upper;
          if (!rowRatio(p, 0.0, t, at_upper)) continue;
          t = std::max(0.0, t);
          const bool tie = t < t_best + 1e-12 && block >= 0;
          if (t < t_best - 1e-12 || (tie && bs_.basic[uz(p)] < bs_.basic[uz(block)])) {
            t_best = t;
            block = p;
            leave_upper = at_upper;
          }
        }
      } else {
        // Harris two-pass: pass 1 bounds the step with feas_tol-relaxed
        // ratios, pass 2 takes the largest pivot whose exact ratio fits —
        // trading a feas_tol-bounded overshoot for numerical stability on
        // the degenerate ties the floorplanning models are full of.
        double theta_max = t_flip;
        for (const int p : alpha_.idx) {
          double t;
          bool at_upper;
          if (!rowRatio(p, opt_.core.feas_tol, t, at_upper)) continue;
          theta_max = std::min(theta_max, std::max(0.0, t));
        }
        double best_mag = 0.0;
        for (const int p : alpha_.idx) {
          double t;
          bool at_upper;
          if (!rowRatio(p, 0.0, t, at_upper)) continue;
          t = std::max(0.0, t);
          if (t > theta_max) continue;
          const double mag = std::abs(alpha_.val[uz(p)]);
          if (block < 0 || mag > best_mag) {
            t_best = t;
            block = p;
            leave_upper = at_upper;
            best_mag = mag;
          }
        }
      }

      if (block < 0) {
        if (t_best >= kInfinity / 2) {
          // Phase 1 cannot be unbounded below; reaching here means the
          // factorization drifted — recover once, then give up.
          if (!phase1) return LpStatus::kUnbounded;
          if (consecutive_recoveries++ < 2) {
            bs_.refactorize(f_);
            bs_.computeXb(f_);
            continue;
          }
          return LpStatus::kInfeasible;
        }
        // Bound flip: the entering variable crosses to its other bound.
        for (const int p : alpha_.idx) bs_.xb[uz(p)] -= dir * t_best * alpha_.val[uz(p)];
        bs_.status[uz(enter)] = bs_.status[uz(enter)] == VarStatus::kAtUpper
                                    ? VarStatus::kAtLower
                                    : VarStatus::kAtUpper;
        ++bound_flips_;
        degenerate_streak = 0;
        consecutive_recoveries = 0;
        continue;
      }

      // Numerical cross-check: the pivot element via the row (BTRAN) and the
      // column (FTRAN) computations must agree; disagreement means the
      // factors have degraded — refactorize and redo this iteration.
      rho_.clear();
      rho_.set(block, 1.0);
      bs_.lu.btranSparse(rho_);  // rho_ now holds the pivot row multipliers
      if (btran_hist_) btran_hist_->record(densityPermille(rho_));
      const double pivot_col = alpha_.val[uz(block)];
      const double pivot_row = f_.columnDot(rho_.val, enter);
      if (std::abs(pivot_row - pivot_col) > 1e-7 * (1.0 + std::abs(pivot_col))) {
        if (consecutive_recoveries++ < 2) {
          bs_.refactorize(f_);
          bs_.computeXb(f_);
          continue;
        }
        // Accept the pivot anyway; the outer recovery loop re-verifies.
      }
      consecutive_recoveries = 0;

      degenerate_streak = (t_best < 1e-10) ? degenerate_streak + 1 : 0;

      // Steepest edge needs tau = B^-T (B^-1 a_q) through the old factors.
      const bool pse = !bland && opt_.pricing == Pricing::kSteepestEdge;
      if (pse) {
        tau_.copyFrom(alpha_);
        bs_.lu.btranSparse(tau_);
      }

      // ---- apply the pivot ----
      const int leaving = bs_.basic[uz(block)];
      const double enter_val = bs_.nonbasicValue(f_, enter) + dir * t_best;
      for (const int p : alpha_.idx) bs_.xb[uz(p)] -= dir * t_best * alpha_.val[uz(p)];
      bs_.status[uz(leaving)] = leave_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      bs_.basic[uz(block)] = enter;
      bs_.status[uz(enter)] = VarStatus::kBasic;
      bs_.xb[uz(block)] = enter_val;
      ++primal_pivots_;
      if (telemetry::sampleHit(opt_.core.telemetry, static_cast<std::uint64_t>(primal_pivots_)))
        opt_.core.telemetry->trace->instant("lp", "pivot", "phase", phase1 ? 1.0 : 2.0, "kind",
                                            "primal");

      // Reference-weight update from the pivot row (already in rho_). The
      // CSR mirror confines the pass to columns intersecting rho's support
      // — every other column has a zero alpha-row entry and keeps its
      // weight, exactly as the old full columnDot sweep concluded at O(nnz).
      if (!bland) {
        const double arq = pivot_col;
        const double arq2 = arq * arq;
        const double wq = weights_[uz(enter)];
        coltouch_.clear();
        for (const int i : rho_.idx) {
          const double rv = rho_.val[uz(i)];
          if (rv == 0.0) continue;
          for (int k = f_.rptr[uz(i)]; k < f_.rptr[uz(i) + 1]; ++k) {
            const int j = f_.rcol[uz(k)];
            if (!colmark_[uz(j)]) {
              colmark_[uz(j)] = 1;
              arow_[uz(j)] = 0.0;
              coltouch_.push_back(j);
            }
            arow_[uz(j)] += f_.rval[uz(k)] * rv;
          }
          const int js = f_.n + i;  // slack column of row i is the unit e_i
          if (!colmark_[uz(js)]) {
            colmark_[uz(js)] = 1;
            arow_[uz(js)] = 0.0;
            coltouch_.push_back(js);
          }
          arow_[uz(js)] += rv;
        }
        for (const int j : coltouch_) {
          colmark_[uz(j)] = 0;
          if (j == leaving || bs_.status[uz(j)] == VarStatus::kBasic) continue;
          const double ar = arow_[uz(j)];
          if (ar == 0.0) continue;
          const double r = ar / arq;
          if (pse) {
            // Forrest–Goldfarb: gamma_j' = gamma_j - 2 r (a_j . tau) + r^2
            // gamma_q, floored at the exact lower bound 1 + r^2.
            const double g =
                weights_[uz(j)] - 2.0 * r * f_.columnDot(tau_.val, j) + r * r * wq;
            weights_[uz(j)] = std::max(g, 1.0 + r * r);
          } else {
            weights_[uz(j)] = std::max(weights_[uz(j)], r * r * wq);
          }
        }
        weights_[uz(leaving)] = std::max(wq / arq2, 1.0);
        ++dse_updates_;
        if (weights_[uz(leaving)] > 1e12) std::fill(weights_.begin(), weights_.end(), 1.0);
      }

      if (!bs_.lu.updateColumn(block, spike_)) {
        // Unstable update: the factorization is spoiled — rebuild it.
        telemetry::instant(opt_.core.telemetry, "lp", "refactorize", nullptr, 0.0, "reason",
                           "unstable_update");
        bs_.refactorize(f_);
        bs_.computeXb(f_);
      } else {
        ++ft_updates_;
        if ((opt_.refactor_interval > 0 &&
             bs_.lu.updateCount() >= opt_.refactor_interval) ||
            bs_.lu.shouldRefactorize()) {
          telemetry::instant(opt_.core.telemetry, "lp", "refactorize", nullptr, 0.0, "reason",
                             "interval");
          bs_.refactorize(f_);
          bs_.computeXb(f_);
        }
      }
    }
  }

  [[nodiscard]] double densityPermille(const IndexedVector& v) const {
    return 1000.0 * static_cast<double>(v.idx.size()) / static_cast<double>(f_.m);
  }

  RevisedSimplexSolver::Options opt_;
  StandardForm f_;
  BasisState bs_;
  long primal_pivots_ = 0;
  long bound_flips_ = 0;
  long ft_updates_ = 0;
  long dse_updates_ = 0;

  std::vector<double> weights_;  ///< pricing reference weights (Devex or PSE)
  IndexedVector alpha_, rho_, tau_;  ///< hyper-sparse solve vectors
  std::vector<double> cb_, dual_;    ///< basic cost row and dual sweep (dense)
  std::vector<double> arow_;         ///< pivot-row scatter over columns (size nn)
  std::vector<char> colmark_;
  std::vector<int> coltouch_;
  telemetry::Histogram* ftran_hist_ = nullptr;
  telemetry::Histogram* btran_hist_ = nullptr;
  BasisLu::Spike spike_;
};

}  // namespace

LpResult RevisedSimplexSolver::solve(const Model& model) const {
  std::vector<double> lb(uz(model.numVars()));
  std::vector<double> ub(uz(model.numVars()));
  for (int j = 0; j < model.numVars(); ++j) {
    lb[uz(j)] = model.var(j).lb;
    ub[uz(j)] = model.var(j).ub;
  }
  return solve(model, lb, ub);
}

LpResult RevisedSimplexSolver::solve(const Model& model, std::span<const double> lb,
                                     std::span<const double> ub, const Basis* warm,
                                     const CscMatrix* csc) const {
  RFP_CHECK(static_cast<int>(lb.size()) == model.numVars());
  RFP_CHECK(static_cast<int>(ub.size()) == model.numVars());
  Stopwatch watch;
  Deadline deadline(options_.core.time_limit_seconds);
  LpResult result;
  result.engine = LpEngine::kSparse;

  for (int j = 0; j < model.numVars(); ++j) {
    if (lb[uz(j)] > ub[uz(j)] + 1e-12) {
      result.status = LpStatus::kInfeasible;
      result.seconds = watch.seconds();
      return result;
    }
  }

  Worker worker(model, lb, ub, csc, options_);
  result.status = worker.run(warm, result, deadline);
  if (result.status == LpStatus::kOptimal) result.objective = model.evalObjective(result.x);
  result.seconds = watch.seconds();
  return result;
}

}  // namespace rfp::lp::sparse
