// Working state shared by the sparse simplex engines.
//
// The primal revised simplex (revised_simplex.cpp) and the dual simplex
// (dual_simplex.cpp) solve the same standard-form problem — Ax + s = b with
// one slack per row, variables resting at bounds — from the same kind of
// factorized basis. `StandardForm` owns the per-solve constant data (bounds,
// costs, right-hand side, and the CSC constraint matrix, either borrowed
// from a caller-held cache or built on the spot); `BasisState` owns the
// mutable basis (basic set, variable statuses, basic values, LU factors)
// plus the repair logic shared by both engines: adopting a warm basis under
// changed bounds, swapping slacks in for singular positions, and recomputing
// the basic values through fresh factors.
#pragma once

#include <memory>
#include <span>

#include "lp/model.hpp"
#include "lp/sparse/basis.hpp"
#include "lp/sparse/csc.hpp"
#include "lp/sparse/lu.hpp"

namespace rfp::lp::sparse {

[[nodiscard]] inline std::size_t uz(int v) noexcept { return static_cast<std::size_t>(v); }

[[nodiscard]] inline bool finiteLo(double v) noexcept { return v > -kInfinity / 2; }
[[nodiscard]] inline bool finiteUp(double v) noexcept { return v < kInfinity / 2; }

/// The standard-form problem one solve works on. Variables are indexed
/// 0..n-1 (structural) and n..n+m-1 (slack of row j-n).
struct StandardForm {
  const CscMatrix* a = nullptr;  ///< structural columns (borrowed or `owned`)
  CscMatrix owned;               ///< storage when no cached matrix was given
  int n = 0;   ///< structural variables
  int m = 0;   ///< rows
  int nn = 0;  ///< n + m
  std::vector<double> lo, up;  ///< per-variable bounds (slack bounds encode row sense)
  std::vector<double> rhs;
  std::vector<double> cost;  ///< phase-2 costs, minimization sense (slacks zero)

  // Row-wise mirror of `a` (CSR), built once per solve/tree. The engines use
  // it to scatter a hyper-sparse pivot row rho into column space touching
  // only the columns that intersect rho's support, instead of an
  // O(nnz(A)) columnDot pass over every column.
  std::vector<int> rptr, rcol;
  std::vector<double> rval;

  /// `cached`, when non-null, must be the CSC form of `model`'s constraint
  /// matrix (callers reuse one across a branch & bound tree's node solves);
  /// otherwise the matrix is built here.
  StandardForm(const Model& model, std::span<const double> lb, std::span<const double> ub,
               const CscMatrix* cached);

  // `a` may point into `owned`: copying or moving would leave it dangling.
  StandardForm(const StandardForm&) = delete;
  StandardForm& operator=(const StandardForm&) = delete;

  /// Replaces the structural variable bounds (slack bounds encode row
  /// senses and never change). Used by persistent reoptimizers: branch &
  /// bound solves the same model under a stream of bound vectors.
  void setBounds(std::span<const double> lb, std::span<const double> ub) {
    for (int j = 0; j < n; ++j) {
      lo[uz(j)] = lb[uz(j)];
      up[uz(j)] = ub[uz(j)];
    }
  }

  /// y · (column j), columns n..nn-1 being implicit unit slack columns.
  [[nodiscard]] double columnDot(const std::vector<double>& y, int j) const {
    if (j >= n) return y[uz(j - n)];
    double s = 0.0;
    for (int k = a->ptr[uz(j)]; k < a->ptr[uz(j) + 1]; ++k)
      s += a->val[uz(k)] * y[uz(a->idx[uz(k)])];
    return s;
  }

  void scatterColumn(int j, std::vector<double>& v) const {
    std::fill(v.begin(), v.end(), 0.0);
    if (j >= n) {
      v[uz(j - n)] = 1.0;
      return;
    }
    for (int k = a->ptr[uz(j)]; k < a->ptr[uz(j) + 1]; ++k)
      v[uz(a->idx[uz(k)])] = a->val[uz(k)];
  }

  /// Sparse scatter of column j into an indexed vector (cleared first).
  void scatterColumn(int j, IndexedVector& v) const {
    v.clear();
    if (j >= n) {
      v.set(j - n, 1.0);
      return;
    }
    for (int k = a->ptr[uz(j)]; k < a->ptr[uz(j) + 1]; ++k)
      v.set(a->idx[uz(k)], a->val[uz(k)]);
  }

  /// v += t * (column j).
  void addColumn(int j, double t, std::vector<double>& v) const {
    if (t == 0.0) return;
    if (j >= n) {
      v[uz(j - n)] += t;
      return;
    }
    for (int k = a->ptr[uz(j)]; k < a->ptr[uz(j) + 1]; ++k)
      v[uz(a->idx[uz(k)])] += a->val[uz(k)] * t;
  }
};

/// Mutable basis state: which variables are basic (by row position), where
/// the nonbasic ones rest, the basic values, and the LU factors.
struct BasisState {
  std::vector<int> basic;          ///< basic variable per row position
  std::vector<VarStatus> status;   ///< per-variable status (size nn)
  std::vector<double> xb;          ///< basic values per row position
  BasisLu lu;
  long refactorizations = 0;
  long repairs = 0;  ///< singular-basis slack swaps (changes B outside a pivot)
  bool warm_started = false;

  [[nodiscard]] VarStatus defaultStatus(const StandardForm& f, int j) const {
    if (finiteLo(f.lo[uz(j)])) return VarStatus::kAtLower;
    if (finiteUp(f.up[uz(j)])) return VarStatus::kAtUpper;
    return VarStatus::kFree;
  }

  void slackBasis(const StandardForm& f);

  /// Adopts `warm` when shape-compatible and structurally sane; nonbasic
  /// statuses are re-anchored to bounds that still exist (branch & bound
  /// tightens bounds between solves). Returns false on rejection.
  bool adoptWarmBasis(const StandardForm& f, const Basis* warm);

  /// Re-anchors nonbasic statuses after a bound change: a variable resting
  /// at a bound that no longer exists moves to the other one (or to free).
  void reanchorStatuses(const StandardForm& f);

  /// (Re)factorizes the current basis, repairing singular positions by
  /// swapping in slacks of unpivoted rows. Aborts (RFP_CHECK) only if the
  /// repaired basis still fails, which the repair construction precludes.
  void refactorize(const StandardForm& f);

  [[nodiscard]] double nonbasicValue(const StandardForm& f, int j) const {
    switch (status[uz(j)]) {
      case VarStatus::kAtLower: return f.lo[uz(j)];
      case VarStatus::kAtUpper: return f.up[uz(j)];
      default: return 0.0;
    }
  }

  /// xB := B^-1 (b - N x_N), from scratch through the current factors.
  void computeXb(const StandardForm& f);

  [[nodiscard]] double maxBasicViolation(const StandardForm& f) const {
    double worst = 0.0;
    for (int p = 0; p < f.m; ++p) {
      const int b = basic[uz(p)];
      const double v = xb[uz(p)];
      worst = std::max(worst, f.lo[uz(b)] - v);
      worst = std::max(worst, v - f.up[uz(b)]);
    }
    return worst;
  }

  [[nodiscard]] std::shared_ptr<Basis> snapshot(const StandardForm& f) const;
};

}  // namespace rfp::lp::sparse
