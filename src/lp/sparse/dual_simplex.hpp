// Bounded-variable dual simplex: the warm-reoptimization fast path.
//
// Branch & bound reoptimizes thousands of near-identical node LPs that
// differ from their parent only in one variable bound. The parent's optimal
// basis stays *dual* feasible under any bound change (reduced costs do not
// depend on bounds), so the dual simplex can restore primal feasibility
// directly — typically a handful of pivots — where the primal engine must
// run a phase-1 feasibility restoration first.
//
// Algorithm notes:
//  * works on the same standard form, bounds and statuses as the primal
//    engine (simplex_state.hpp), and the same Forrest–Tomlin-updated LU;
//  * leaving-row selection by dual Devex reference weights (row pricing);
//  * bound-flip ratio test (BFRT): ratio candidates are scanned in dual-step
//    order, and boxed candidates whose bound flip cannot yet restore the
//    row's feasibility are flipped without a basis change — one FTRAN
//    applies all flips of an iteration at once;
//  * reduced costs are maintained incrementally from the pivot row and
//    recomputed from scratch after every refactorization;
//  * a warm basis that is dual-infeasible beyond tolerance (after flipping
//    boxed variables to their cost-preferred bounds) makes the solver give
//    up (`std::nullopt`) — the caller falls back to the primal engine;
//  * optimality and infeasibility claims are re-verified through fresh
//    factors before being reported, mirroring the primal engine.
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "lp/simplex.hpp"
#include "lp/sparse/basis.hpp"
#include "lp/sparse/csc.hpp"
#include "lp/sparse/lu.hpp"

namespace rfp::lp::sparse {

class DualSimplexSolver {
 public:
  /// Leaving-row pricing rule. Steepest edge maintains the exact row norms
  /// beta_p = ||B^-T e_p||^2 by the Forrest–Goldfarb recurrence (one extra
  /// hyper-sparse FTRAN per pivot) and persists them across warm hot-path
  /// reoptimizations; Devex approximates them from a reference framework
  /// reset each solve. Steepest edge is the default: on hyper-degenerate
  /// trees Devex's drifting weights pick near-parallel rows and the solve
  /// wanders past its effort budget.
  enum class DualPricing { kDevex, kSteepestEdge };

  struct Options {
    /// Shared tolerances and limits (see lp/simplex.hpp).
    SimplexSolver::Options core;
    DualPricing pricing = DualPricing::kSteepestEdge;
    /// Hard cap on Forrest–Tomlin updates between refactorizations, on top
    /// of the stability and fill triggers; <= 0 disables the cap (see
    /// revised_simplex.hpp — warm reoptimizations stay far below it).
    int refactor_interval = 100;
    BasisLu::Options lu;
    /// DualReoptimizer circuit breaker: consecutive give-ups before the
    /// warm path is temporarily suspended (<= 0: never suspend). The breaker
    /// is a *cool-down*, not a kill switch — see breaker_cooldown.
    int breaker_strikes = 3;
    /// Calls declined while the breaker is tripped before one probe attempt
    /// is let through again. A hyper-degenerate subtree that defeats dual
    /// Devex on every node trips the breaker locally, but the rest of the
    /// tree gets the warm path back as soon as a probe succeeds.
    int breaker_cooldown = 16;
  };

  DualSimplexSolver() = default;
  explicit DualSimplexSolver(Options options) : options_(options) {}

  /// Reoptimizes `model` under the given bounds from `warm` (normally a
  /// parent node's optimal basis). Returns `std::nullopt` when no
  /// dual-feasible start could be established — the caller should solve
  /// with the primal engine instead (`declined_attempt`, when non-null,
  /// then receives the abandoned attempt's telemetry). `csc`, when
  /// non-null, must be the CSC form of `model`'s constraint matrix
  /// (shared across a tree's solves).
  [[nodiscard]] std::optional<LpResult> solve(const Model& model,
                                              std::span<const double> lb,
                                              std::span<const double> ub, const Basis& warm,
                                              const CscMatrix* csc = nullptr,
                                              LpResult* declined_attempt = nullptr) const;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

/// Persistent warm-reoptimization state for one branch & bound tree.
///
/// A one-shot `DualSimplexSolver::solve` must refactorize twice per node
/// (once to adopt the warm basis, once more whenever the claim is
/// verified through fresh factors) — at SDR scale those two
/// factorizations, not the handful of dual pivots, dominate the node
/// solve. `DualReoptimizer` keeps the worker alive across a tree's node
/// solves: when a solve warm-starts from exactly the basis the previous
/// solve returned (every dive child in the plunge — branch & bound hands
/// the parent's optimal basis to its children), the live Forrest–Tomlin
/// factors and reduced costs are reused and the node solves with *zero*
/// refactorizations. Any other warm basis falls back to adopt-and-
/// refactorize, and a nullopt result means the caller should solve the
/// node with the primal engine.
///
/// Concurrency contract: a DualReoptimizer is single-owner mutable state
/// (live factors, reduced costs, breaker strikes) and must only ever be
/// called from one thread at a time. Parallel branch & bound gives every
/// worker its own instance over the shared immutable model/CSC pair, which
/// also keeps the give-up circuit breaker per-worker: one worker's
/// hyper-degenerate subtree cannot disable the warm path for its siblings.
class DualReoptimizer {
 public:
  /// `model` and `csc` must outlive the reoptimizer; `csc` must be the CSC
  /// form of `model`'s constraint matrix.
  DualReoptimizer(const Model& model, std::shared_ptr<const CscMatrix> csc,
                  DualSimplexSolver::Options options);
  ~DualReoptimizer();
  DualReoptimizer(DualReoptimizer&&) noexcept;
  DualReoptimizer& operator=(DualReoptimizer&&) noexcept;

  /// Reoptimizes under `lb`/`ub` from `warm`. `time_limit_seconds` <= 0
  /// means no limit (the options' stop flag still cancels cooperatively).
  /// On a give-up (nullopt), `declined_attempt`, when non-null, receives
  /// the abandoned attempt's telemetry (pivots, refactorizations) so
  /// callers can account for the work instead of under-reporting it.
  [[nodiscard]] std::optional<LpResult> reoptimize(std::span<const double> lb,
                                                   std::span<const double> ub,
                                                   const std::shared_ptr<const Basis>& warm,
                                                   double time_limit_seconds,
                                                   LpResult* declined_attempt = nullptr);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rfp::lp::sparse
