#include "lp/sparse/simplex_state.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace rfp::lp::sparse {

StandardForm::StandardForm(const Model& model, std::span<const double> lb,
                           std::span<const double> ub, const CscMatrix* cached) {
  n = model.numVars();
  m = model.numConstrs();
  nn = n + m;
  if (cached) {
    RFP_CHECK_MSG(cached->rows == m && cached->cols == n,
                  "cached CSC shape " << cached->rows << "x" << cached->cols
                                      << " does not match model " << m << "x" << n);
    a = cached;
  } else {
    owned = CscMatrix::fromModel(model);
    a = &owned;
  }
  lo.resize(uz(nn));
  up.resize(uz(nn));
  for (int j = 0; j < n; ++j) {
    lo[uz(j)] = lb[uz(j)];
    up[uz(j)] = ub[uz(j)];
  }
  rhs.resize(uz(m));
  for (int i = 0; i < m; ++i) {
    const Constraint& c = model.constr(i);
    rhs[uz(i)] = c.rhs;
    const int s = n + i;
    switch (c.sense) {
      case Sense::kLessEqual:
        lo[uz(s)] = 0.0;
        up[uz(s)] = kInfinity;
        break;
      case Sense::kGreaterEqual:
        lo[uz(s)] = -kInfinity;
        up[uz(s)] = 0.0;
        break;
      case Sense::kEqual:
        lo[uz(s)] = 0.0;
        up[uz(s)] = 0.0;
        break;
    }
  }
  cost.assign(uz(nn), 0.0);
  const double dir = (model.objSense() == ObjSense::kMinimize) ? 1.0 : -1.0;
  for (const auto& [v, c] : model.objective().terms()) cost[uz(v)] += dir * c;

  // CSR mirror of `a` for hyper-sparse pivot-row scatters (counting sort).
  const std::size_t nnz = a->val.size();
  rptr.assign(uz(m) + 1, 0);
  for (const int r : a->idx) ++rptr[uz(r) + 1];
  for (int i = 0; i < m; ++i) rptr[uz(i) + 1] += rptr[uz(i)];
  rcol.resize(nnz);
  rval.resize(nnz);
  std::vector<int> fill(rptr.begin(), rptr.end() - 1);
  for (int j = 0; j < n; ++j)
    for (int k = a->ptr[uz(j)]; k < a->ptr[uz(j) + 1]; ++k) {
      const int at = fill[uz(a->idx[uz(k)])]++;
      rcol[uz(at)] = j;
      rval[uz(at)] = a->val[uz(k)];
    }
}

void BasisState::slackBasis(const StandardForm& f) {
  basic.resize(uz(f.m));
  status.assign(uz(f.nn), VarStatus::kAtLower);
  for (int j = 0; j < f.n; ++j) status[uz(j)] = defaultStatus(f, j);
  for (int i = 0; i < f.m; ++i) {
    basic[uz(i)] = f.n + i;
    status[uz(f.n + i)] = VarStatus::kBasic;
  }
}

bool BasisState::adoptWarmBasis(const StandardForm& f, const Basis* warm) {
  if (!warm || !warm->shapeMatches(f.m, f.n)) return false;
  int basics = 0;
  for (const VarStatus s : warm->status) basics += s == VarStatus::kBasic;
  if (basics != f.m) return false;
  for (int p = 0; p < f.m; ++p) {
    const int b = warm->basic[uz(p)];
    if (b < 0 || b >= f.nn || warm->status[uz(b)] != VarStatus::kBasic) return false;
  }
  basic = warm->basic;
  status = warm->status;
  // Bounds may have changed since the basis was taken (branch & bound
  // tightens them): re-anchor nonbasic statuses to bounds that still exist.
  reanchorStatuses(f);
  warm_started = true;
  return true;
}

void BasisState::reanchorStatuses(const StandardForm& f) {
  for (int j = 0; j < f.nn; ++j) {
    VarStatus& s = status[uz(j)];
    if (s == VarStatus::kAtLower && !finiteLo(f.lo[uz(j)]))
      s = finiteUp(f.up[uz(j)]) ? VarStatus::kAtUpper : VarStatus::kFree;
    else if (s == VarStatus::kAtUpper && !finiteUp(f.up[uz(j)]))
      s = finiteLo(f.lo[uz(j)]) ? VarStatus::kAtLower : VarStatus::kFree;
    else if (s == VarStatus::kFree && (finiteLo(f.lo[uz(j)]) || finiteUp(f.up[uz(j)])))
      s = defaultStatus(f, j);
  }
}

void BasisState::refactorize(const StandardForm& f) {
  if (!lu.factorize(*f.a, basic)) {
    // Singular basis (possible for a warm start under new bounds): swap
    // each deficient position for the slack of a distinct unpivoted row —
    // the completed pivot set plus unit columns is provably nonsingular.
    const std::vector<int> dp = lu.deficientPositions();
    const std::vector<int> ur = lu.unpivotedRows();
    RFP_CHECK(dp.size() == ur.size());
    for (std::size_t i = 0; i < dp.size(); ++i) {
      const int pos = dp[i];
      const int displaced = basic[uz(pos)];
      status[uz(displaced)] = defaultStatus(f, displaced);
      const int slack = f.n + ur[i];
      basic[uz(pos)] = slack;
      status[uz(slack)] = VarStatus::kBasic;
      ++repairs;
    }
    RFP_CHECK_MSG(lu.factorize(*f.a, basic), "basis repair failed to factorize");
  }
  ++refactorizations;
}

void BasisState::computeXb(const StandardForm& f) {
  xb = f.rhs;
  for (int j = 0; j < f.nn; ++j) {
    if (status[uz(j)] == VarStatus::kBasic) continue;
    const double v = nonbasicValue(f, j);
    f.addColumn(j, -v, xb);
  }
  lu.ftran(xb);
}

std::shared_ptr<Basis> BasisState::snapshot(const StandardForm& f) const {
  auto out = std::make_shared<Basis>();
  out->basic = basic;
  out->status = status;
  out->rows = f.m;
  out->cols = f.n;
  return out;
}

}  // namespace rfp::lp::sparse
