#include "lp/sparse/lu.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace rfp::lp::sparse {

namespace {

struct Entry {
  int row;
  double val;
};

}  // namespace

bool BasisLu::factorize(const CscMatrix& a, const std::vector<int>& basic) {
  m_ = a.rows;
  RFP_CHECK(static_cast<int>(basic.size()) == m_);
  const int m = m_;

  pivot_row_.clear();
  pivot_pos_.clear();
  diag_.clear();
  l_start_.clear();
  l_row_.clear();
  l_val_.clear();
  u_start_.clear();
  u_step_.clear();
  u_val_.clear();
  eta_start_.clear();
  eta_idx_.clear();
  eta_pos_.clear();
  eta_val_.clear();
  eta_piv_.clear();
  deficient_pos_.clear();
  unpivoted_rows_.clear();
  work_.assign(static_cast<std::size_t>(m), 0.0);
  work2_.assign(static_cast<std::size_t>(m), 0.0);

  // ---- working copy of the basis matrix, column-wise -----------------------
  // Columns are kept exact (only active rows); row patterns may carry stale
  // position entries which are skipped lazily via col_done / membership.
  std::vector<std::vector<Entry>> cols(static_cast<std::size_t>(m));
  std::vector<std::vector<int>> rowpat(static_cast<std::size_t>(m));
  std::vector<int> rcount(static_cast<std::size_t>(m), 0);
  for (int p = 0; p < m; ++p) {
    const int b = basic[static_cast<std::size_t>(p)];
    if (b >= a.cols) {
      const int r = b - a.cols;
      RFP_CHECK_MSG(r >= 0 && r < m, "basis references slack of unknown row " << r);
      cols[static_cast<std::size_t>(p)].push_back(Entry{r, 1.0});
    } else {
      RFP_CHECK_MSG(b >= 0, "basis position " << p << " is unset");
      for (int k = a.ptr[static_cast<std::size_t>(b)]; k < a.ptr[static_cast<std::size_t>(b) + 1]; ++k)
        cols[static_cast<std::size_t>(p)].push_back(
            Entry{a.idx[static_cast<std::size_t>(k)], a.val[static_cast<std::size_t>(k)]});
    }
    for (const Entry& e : cols[static_cast<std::size_t>(p)]) {
      rowpat[static_cast<std::size_t>(e.row)].push_back(p);
      ++rcount[static_cast<std::size_t>(e.row)];
    }
  }

  std::vector<char> row_done(static_cast<std::size_t>(m), 0);
  std::vector<char> col_done(static_cast<std::size_t>(m), 0);

  // Bucket queue of candidate columns by current length; entries go stale
  // when a column's length changes (it is re-pushed at the new length) and
  // are skipped on pop.
  std::vector<std::vector<int>> bucket(static_cast<std::size_t>(m) + 1);
  for (int p = 0; p < m; ++p)
    bucket[cols[static_cast<std::size_t>(p)].size()].push_back(p);

  // Scatter workspace for column updates.
  std::vector<double> wval(static_cast<std::size_t>(m), 0.0);
  std::vector<int> wstamp(static_cast<std::size_t>(m), -1);
  std::vector<int> touched;
  int epoch = 0;

  const auto columnLen = [&](int p) { return cols[static_cast<std::size_t>(p)].size(); };

  int steps = 0;
  std::vector<int> popped;  // candidates taken off the buckets this step
  while (steps < m) {
    // ---- Markowitz pivot selection ---------------------------------------
    int best_row = -1, best_pos = -1;
    double best_val = 0.0;
    long best_cost = -1;
    popped.clear();
    int examined = 0;
    bool relaxed = false;  // second pass with the relative threshold dropped
    for (std::size_t c = 0; c <= static_cast<std::size_t>(m);) {
      if (bucket[c].empty()) {
        ++c;
        if (c > static_cast<std::size_t>(m) && best_pos < 0 && !relaxed && !popped.empty()) {
          // Nothing met the stability threshold; retry the popped candidates
          // accepting any pivot above the absolute floor.
          relaxed = true;
          c = 0;
          for (const int p : popped) bucket[columnLen(p)].push_back(p);
          popped.clear();
        }
        continue;
      }
      const int p = bucket[c].back();
      bucket[c].pop_back();
      if (col_done[static_cast<std::size_t>(p)] || columnLen(p) != c) continue;  // stale
      if (c == 0) continue;  // structurally empty: left for the deficiency report
      popped.push_back(p);
      double colmax = 0.0;
      for (const Entry& e : cols[static_cast<std::size_t>(p)]) colmax = std::max(colmax, std::abs(e.val));
      const double floor =
          std::max(opt_.abs_pivot_tol, relaxed ? 0.0 : opt_.rel_pivot_tol * colmax);
      int cand_row = -1;
      double cand_val = 0.0;
      long cand_cost = -1;
      for (const Entry& e : cols[static_cast<std::size_t>(p)]) {
        if (std::abs(e.val) < floor) continue;
        const long cost = (static_cast<long>(c) - 1) *
                          (static_cast<long>(rcount[static_cast<std::size_t>(e.row)]) - 1);
        if (cand_row < 0 || cost < cand_cost ||
            (cost == cand_cost && std::abs(e.val) > std::abs(cand_val))) {
          cand_row = e.row;
          cand_val = e.val;
          cand_cost = cost;
        }
      }
      if (cand_row >= 0) {
        ++examined;
        if (best_pos < 0 || cand_cost < best_cost ||
            (cand_cost == best_cost && std::abs(cand_val) > std::abs(best_val))) {
          best_pos = p;
          best_row = cand_row;
          best_val = cand_val;
          best_cost = cand_cost;
        }
        if (best_cost == 0 || examined >= opt_.search_columns) break;
      }
    }
    // Unchosen candidates return to the queue for later steps.
    for (const int p : popped)
      if (p != best_pos) bucket[columnLen(p)].push_back(p);
    if (best_pos < 0) break;  // remaining submatrix is (numerically) singular

    // ---- elimination step -------------------------------------------------
    const int pi = best_row, pj = best_pos;
    const double pivval = best_val;
    row_done[static_cast<std::size_t>(pi)] = 1;
    col_done[static_cast<std::size_t>(pj)] = 1;
    pivot_row_.push_back(pi);
    pivot_pos_.push_back(pj);
    diag_.push_back(pivval);

    // L multipliers from the pivot column.
    const int l_first = static_cast<int>(l_row_.size());
    l_start_.push_back(l_first);
    for (const Entry& e : cols[static_cast<std::size_t>(pj)]) {
      if (e.row == pi) continue;
      l_row_.push_back(e.row);
      l_val_.push_back(e.val / pivval);
      --rcount[static_cast<std::size_t>(e.row)];
    }
    const int l_last = static_cast<int>(l_row_.size());
    cols[static_cast<std::size_t>(pj)].clear();

    // U row: remaining entries of the pivot row, with column updates.
    u_start_.push_back(static_cast<int>(u_step_.size()));
    for (const int jp : rowpat[static_cast<std::size_t>(pi)]) {
      if (jp == pj || col_done[static_cast<std::size_t>(jp)]) continue;
      std::vector<Entry>& col = cols[static_cast<std::size_t>(jp)];
      double upv = 0.0;
      bool found = false;
      for (const Entry& e : col)
        if (e.row == pi) {
          upv = e.val;
          found = true;
          break;
        }
      if (!found) continue;  // stale pattern entry (cancelled earlier)
      u_step_.push_back(jp);  // stores positions; remapped to steps below
      u_val_.push_back(upv);

      // col := col - upv * (L multipliers), dropping the pivot row entry.
      ++epoch;
      touched.clear();
      for (const Entry& e : col) {
        if (e.row == pi) continue;
        wval[static_cast<std::size_t>(e.row)] = e.val;
        wstamp[static_cast<std::size_t>(e.row)] = epoch;
        touched.push_back(e.row);
      }
      for (int t = l_first; t < l_last; ++t) {
        const int r = l_row_[static_cast<std::size_t>(t)];
        const double delta = l_val_[static_cast<std::size_t>(t)] * upv;
        if (wstamp[static_cast<std::size_t>(r)] == epoch) {
          wval[static_cast<std::size_t>(r)] -= delta;
        } else {
          wstamp[static_cast<std::size_t>(r)] = epoch;
          wval[static_cast<std::size_t>(r)] = -delta;
          touched.push_back(r);
          rowpat[static_cast<std::size_t>(r)].push_back(jp);
          ++rcount[static_cast<std::size_t>(r)];
        }
      }
      col.clear();
      for (const int r : touched) {
        const double v = wval[static_cast<std::size_t>(r)];
        if (std::abs(v) > opt_.drop_tol)
          col.push_back(Entry{r, v});
        else
          --rcount[static_cast<std::size_t>(r)];  // cancelled out
      }
      bucket[col.size()].push_back(jp);
    }
    ++steps;
  }

  if (steps < m) {
    for (int p = 0; p < m; ++p)
      if (!col_done[static_cast<std::size_t>(p)]) deficient_pos_.push_back(p);
    for (int r = 0; r < m; ++r)
      if (!row_done[static_cast<std::size_t>(r)]) unpivoted_rows_.push_back(r);
    return false;
  }
  l_start_.push_back(static_cast<int>(l_row_.size()));
  u_start_.push_back(static_cast<int>(u_step_.size()));

  // Remap U column references from basis positions to elimination steps.
  std::vector<int> pos_to_step(static_cast<std::size_t>(m), -1);
  for (int k = 0; k < m; ++k) pos_to_step[static_cast<std::size_t>(pivot_pos_[static_cast<std::size_t>(k)])] = k;
  for (int& s : u_step_) s = pos_to_step[static_cast<std::size_t>(s)];
  return true;
}

void BasisLu::ftran(std::vector<double>& v) const {
  const int m = m_;
  RFP_CHECK(static_cast<int>(v.size()) == m);
  // L pass in elimination order (row space).
  for (int k = 0; k < m; ++k) {
    const double piv = v[static_cast<std::size_t>(pivot_row_[static_cast<std::size_t>(k)])];
    if (piv == 0.0) continue;
    for (int t = l_start_[static_cast<std::size_t>(k)]; t < l_start_[static_cast<std::size_t>(k) + 1]; ++t)
      v[static_cast<std::size_t>(l_row_[static_cast<std::size_t>(t)])] -=
          l_val_[static_cast<std::size_t>(t)] * piv;
  }
  // U back-substitution into step space.
  std::vector<double>& step = work_;
  for (int k = m - 1; k >= 0; --k) {
    double s = v[static_cast<std::size_t>(pivot_row_[static_cast<std::size_t>(k)])];
    for (int t = u_start_[static_cast<std::size_t>(k)]; t < u_start_[static_cast<std::size_t>(k) + 1]; ++t)
      s -= u_val_[static_cast<std::size_t>(t)] * step[static_cast<std::size_t>(u_step_[static_cast<std::size_t>(t)])];
    step[static_cast<std::size_t>(k)] = s / diag_[static_cast<std::size_t>(k)];
  }
  // Steps to basis positions.
  for (int k = 0; k < m; ++k)
    v[static_cast<std::size_t>(pivot_pos_[static_cast<std::size_t>(k)])] = step[static_cast<std::size_t>(k)];
  // Eta file, oldest first (position space).
  const int etas = etaCount();
  for (int e = 0; e < etas; ++e) {
    const int p = eta_pos_[static_cast<std::size_t>(e)];
    const double vp = v[static_cast<std::size_t>(p)] / eta_piv_[static_cast<std::size_t>(e)];
    if (vp != 0.0)
      for (int t = eta_start_[static_cast<std::size_t>(e)]; t < eta_start_[static_cast<std::size_t>(e) + 1]; ++t)
        v[static_cast<std::size_t>(eta_idx_[static_cast<std::size_t>(t)])] -=
            eta_val_[static_cast<std::size_t>(t)] * vp;
    v[static_cast<std::size_t>(p)] = vp;
  }
}

void BasisLu::btran(std::vector<double>& v) const {
  const int m = m_;
  RFP_CHECK(static_cast<int>(v.size()) == m);
  // Eta transposes, newest first (position space): only component p changes.
  for (int e = etaCount() - 1; e >= 0; --e) {
    const int p = eta_pos_[static_cast<std::size_t>(e)];
    double s = 0.0;
    for (int t = eta_start_[static_cast<std::size_t>(e)]; t < eta_start_[static_cast<std::size_t>(e) + 1]; ++t)
      s += eta_val_[static_cast<std::size_t>(t)] *
           v[static_cast<std::size_t>(eta_idx_[static_cast<std::size_t>(t)])];
    v[static_cast<std::size_t>(p)] = (v[static_cast<std::size_t>(p)] - s) / eta_piv_[static_cast<std::size_t>(e)];
  }
  // U^T forward pass in step space with scatter updates.
  std::vector<double>& cp = work_;
  for (int k = 0; k < m; ++k)
    cp[static_cast<std::size_t>(k)] = v[static_cast<std::size_t>(pivot_pos_[static_cast<std::size_t>(k)])];
  for (int k = 0; k < m; ++k) {
    const double z = cp[static_cast<std::size_t>(k)] / diag_[static_cast<std::size_t>(k)];
    cp[static_cast<std::size_t>(k)] = z;
    if (z == 0.0) continue;
    for (int t = u_start_[static_cast<std::size_t>(k)]; t < u_start_[static_cast<std::size_t>(k) + 1]; ++t)
      cp[static_cast<std::size_t>(u_step_[static_cast<std::size_t>(t)])] -=
          u_val_[static_cast<std::size_t>(t)] * z;
  }
  // Steps to rows, then the transposed L ops newest-first.
  std::vector<double>& out = work2_;
  for (int k = 0; k < m; ++k)
    out[static_cast<std::size_t>(pivot_row_[static_cast<std::size_t>(k)])] = cp[static_cast<std::size_t>(k)];
  for (int k = m - 1; k >= 0; --k) {
    double s = 0.0;
    for (int t = l_start_[static_cast<std::size_t>(k)]; t < l_start_[static_cast<std::size_t>(k) + 1]; ++t)
      s += l_val_[static_cast<std::size_t>(t)] * out[static_cast<std::size_t>(l_row_[static_cast<std::size_t>(t)])];
    out[static_cast<std::size_t>(pivot_row_[static_cast<std::size_t>(k)])] -= s;
  }
  v = out;
}

void BasisLu::pushEta(int position, const std::vector<double>& alpha) {
  RFP_CHECK(position >= 0 && position < m_);
  const double piv = alpha[static_cast<std::size_t>(position)];
  RFP_CHECK_MSG(piv != 0.0, "eta update with zero pivot at position " << position);
  if (eta_start_.empty()) eta_start_.push_back(0);
  for (int i = 0; i < m_; ++i) {
    if (i == position) continue;
    const double v = alpha[static_cast<std::size_t>(i)];
    if (std::abs(v) > 1e-14) {
      eta_idx_.push_back(i);
      eta_val_.push_back(v);
    }
  }
  eta_pos_.push_back(position);
  eta_piv_.push_back(piv);
  eta_start_.push_back(static_cast<int>(eta_idx_.size()));
}

}  // namespace rfp::lp::sparse
