#include "lp/sparse/lu.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "support/check.hpp"

namespace rfp::lp::sparse {

namespace {

struct Entry {
  int row;
  double val;
};

[[nodiscard]] std::size_t zu(int v) noexcept { return static_cast<std::size_t>(v); }

}  // namespace

bool BasisLu::factorize(const CscMatrix& a, const std::vector<int>& basic) {
  m_ = a.rows;
  RFP_CHECK(static_cast<int>(basic.size()) == m_);
  const int m = m_;

  pivot_row_.clear();
  pivot_pos_.clear();
  diag_.clear();
  l_start_.clear();
  l_row_.clear();
  l_val_.clear();
  ft_tgt_.clear();
  ft_src_.clear();
  ft_mult_.clear();
  update_count_ = 0;
  deficient_pos_.clear();
  unpivoted_rows_.clear();
  work_.assign(zu(m), 0.0);
  work2_.assign(zu(m), 0.0);
  upd_val_.assign(zu(m), 0.0);
  upd_mark_.assign(zu(m), 0);

  // Transient U rows in basis-position column references; remapped to slots
  // and scattered into the dynamic row/column structures at the end.
  std::vector<int> tu_start, tu_pos;
  std::vector<double> tu_val;

  // ---- working copy of the basis matrix, column-wise -----------------------
  // Columns are kept exact (only active rows); row patterns may carry stale
  // position entries which are skipped lazily via col_done / membership.
  std::vector<std::vector<Entry>> cols(zu(m));
  std::vector<std::vector<int>> rowpat(zu(m));
  std::vector<int> rcount(zu(m), 0);
  for (int p = 0; p < m; ++p) {
    const int b = basic[zu(p)];
    if (b >= a.cols) {
      const int r = b - a.cols;
      RFP_CHECK_MSG(r >= 0 && r < m, "basis references slack of unknown row " << r);
      cols[zu(p)].push_back(Entry{r, 1.0});
    } else {
      RFP_CHECK_MSG(b >= 0, "basis position " << p << " is unset");
      for (int k = a.ptr[zu(b)]; k < a.ptr[zu(b) + 1]; ++k)
        cols[zu(p)].push_back(Entry{a.idx[zu(k)], a.val[zu(k)]});
    }
    for (const Entry& e : cols[zu(p)]) {
      rowpat[zu(e.row)].push_back(p);
      ++rcount[zu(e.row)];
    }
  }

  std::vector<char> row_done(zu(m), 0);
  std::vector<char> col_done(zu(m), 0);

  // Bucket queue of candidate columns by current length; entries go stale
  // when a column's length changes (it is re-pushed at the new length) and
  // are skipped on pop.
  std::vector<std::vector<int>> bucket(zu(m) + 1);
  for (int p = 0; p < m; ++p) bucket[cols[zu(p)].size()].push_back(p);

  // Scatter workspace for column updates.
  std::vector<double> wval(zu(m), 0.0);
  std::vector<int> wstamp(zu(m), -1);
  std::vector<int> touched;
  int epoch = 0;

  const auto columnLen = [&](int p) { return cols[zu(p)].size(); };

  int steps = 0;
  std::vector<int> popped;  // candidates taken off the buckets this step
  while (steps < m) {
    // ---- Markowitz pivot selection ---------------------------------------
    int best_row = -1, best_pos = -1;
    double best_val = 0.0;
    long best_cost = -1;
    popped.clear();
    int examined = 0;
    bool relaxed = false;  // second pass with the relative threshold dropped
    for (std::size_t c = 0; c <= zu(m);) {
      if (bucket[c].empty()) {
        ++c;
        if (c > zu(m) && best_pos < 0 && !relaxed && !popped.empty()) {
          // Nothing met the stability threshold; retry the popped candidates
          // accepting any pivot above the absolute floor.
          relaxed = true;
          c = 0;
          for (const int p : popped) bucket[columnLen(p)].push_back(p);
          popped.clear();
        }
        continue;
      }
      const int p = bucket[c].back();
      bucket[c].pop_back();
      if (col_done[zu(p)] || columnLen(p) != c) continue;  // stale
      if (c == 0) continue;  // structurally empty: left for the deficiency report
      popped.push_back(p);
      double colmax = 0.0;
      for (const Entry& e : cols[zu(p)]) colmax = std::max(colmax, std::abs(e.val));
      const double floor =
          std::max(opt_.abs_pivot_tol, relaxed ? 0.0 : opt_.rel_pivot_tol * colmax);
      int cand_row = -1;
      double cand_val = 0.0;
      long cand_cost = -1;
      for (const Entry& e : cols[zu(p)]) {
        if (std::abs(e.val) < floor) continue;
        const long cost =
            (static_cast<long>(c) - 1) * (static_cast<long>(rcount[zu(e.row)]) - 1);
        if (cand_row < 0 || cost < cand_cost ||
            (cost == cand_cost && std::abs(e.val) > std::abs(cand_val))) {
          cand_row = e.row;
          cand_val = e.val;
          cand_cost = cost;
        }
      }
      if (cand_row >= 0) {
        ++examined;
        if (best_pos < 0 || cand_cost < best_cost ||
            (cand_cost == best_cost && std::abs(cand_val) > std::abs(best_val))) {
          best_pos = p;
          best_row = cand_row;
          best_val = cand_val;
          best_cost = cand_cost;
        }
        if (best_cost == 0 || examined >= opt_.search_columns) break;
      }
    }
    // Unchosen candidates return to the queue for later steps.
    for (const int p : popped)
      if (p != best_pos) bucket[columnLen(p)].push_back(p);
    if (best_pos < 0) break;  // remaining submatrix is (numerically) singular

    // ---- elimination step -------------------------------------------------
    const int pi = best_row, pj = best_pos;
    const double pivval = best_val;
    row_done[zu(pi)] = 1;
    col_done[zu(pj)] = 1;
    pivot_row_.push_back(pi);
    pivot_pos_.push_back(pj);
    diag_.push_back(pivval);

    // L multipliers from the pivot column.
    const int l_first = static_cast<int>(l_row_.size());
    l_start_.push_back(l_first);
    for (const Entry& e : cols[zu(pj)]) {
      if (e.row == pi) continue;
      l_row_.push_back(e.row);
      l_val_.push_back(e.val / pivval);
      --rcount[zu(e.row)];
    }
    const int l_last = static_cast<int>(l_row_.size());
    cols[zu(pj)].clear();

    // U row: remaining entries of the pivot row, with column updates.
    tu_start.push_back(static_cast<int>(tu_pos.size()));
    for (const int jp : rowpat[zu(pi)]) {
      if (jp == pj || col_done[zu(jp)]) continue;
      std::vector<Entry>& col = cols[zu(jp)];
      double upv = 0.0;
      bool found = false;
      for (const Entry& e : col)
        if (e.row == pi) {
          upv = e.val;
          found = true;
          break;
        }
      if (!found) continue;   // stale pattern entry (cancelled earlier)
      tu_pos.push_back(jp);   // stores positions; remapped to slots below
      tu_val.push_back(upv);

      // col := col - upv * (L multipliers), dropping the pivot row entry.
      ++epoch;
      touched.clear();
      for (const Entry& e : col) {
        if (e.row == pi) continue;
        wval[zu(e.row)] = e.val;
        wstamp[zu(e.row)] = epoch;
        touched.push_back(e.row);
      }
      for (int t = l_first; t < l_last; ++t) {
        const int r = l_row_[zu(t)];
        const double delta = l_val_[zu(t)] * upv;
        if (wstamp[zu(r)] == epoch) {
          wval[zu(r)] -= delta;
        } else {
          wstamp[zu(r)] = epoch;
          wval[zu(r)] = -delta;
          touched.push_back(r);
          rowpat[zu(r)].push_back(jp);
          ++rcount[zu(r)];
        }
      }
      col.clear();
      for (const int r : touched) {
        const double v = wval[zu(r)];
        if (std::abs(v) > opt_.drop_tol)
          col.push_back(Entry{r, v});
        else
          --rcount[zu(r)];  // cancelled out
      }
      bucket[col.size()].push_back(jp);
    }
    ++steps;
  }

  if (steps < m) {
    for (int p = 0; p < m; ++p)
      if (!col_done[zu(p)]) deficient_pos_.push_back(p);
    for (int r = 0; r < m; ++r)
      if (!row_done[zu(r)]) unpivoted_rows_.push_back(r);
    return false;
  }
  l_start_.push_back(static_cast<int>(l_row_.size()));
  tu_start.push_back(static_cast<int>(tu_pos.size()));

  // ---- freeze the factorization into slot structures -----------------------
  // Slot k = elimination step k; the initial order is the identity.
  order_.resize(zu(m));
  order_pos_.resize(zu(m));
  pos_to_slot_.assign(zu(m), -1);
  for (int k = 0; k < m; ++k) {
    order_[zu(k)] = k;
    order_pos_[zu(k)] = k;
    pos_to_slot_[zu(pivot_pos_[zu(k)])] = k;
  }
  u_rows_.assign(zu(m), {});
  u_cols_.assign(zu(m), {});
  u_nnz_ = static_cast<long>(tu_pos.size());
  for (int k = 0; k < m; ++k) {
    for (int t = tu_start[zu(k)]; t < tu_start[zu(k) + 1]; ++t) {
      const int cslot = pos_to_slot_[zu(tu_pos[zu(t)])];
      const double v = tu_val[zu(t)];
      u_rows_[zu(k)].push_back(UEntry{cslot, v});
      u_cols_[zu(cslot)].push_back(UEntry{k, v});
    }
  }
  base_nnz_ = static_cast<long>(l_row_.size()) + u_nnz_ + m;

  // ---- hyper-sparse reachability structures --------------------------------
  // row_to_slot_ inverts pivot_row_ (a permutation once all m steps ran);
  // lt_start_/lt_slot_ transpose L's column pattern so btran can walk "which
  // elimination steps consume this row" without scanning all of L.
  row_to_slot_.assign(zu(m), -1);
  for (int k = 0; k < m; ++k) row_to_slot_[zu(pivot_row_[zu(k)])] = k;
  lt_start_.assign(zu(m) + 1, 0);
  for (const int r : l_row_) ++lt_start_[zu(r) + 1];
  for (int r = 0; r < m; ++r) lt_start_[zu(r) + 1] += lt_start_[zu(r)];
  lt_slot_.assign(l_row_.size(), 0);
  {
    std::vector<int> fill(lt_start_.begin(), lt_start_.end() - 1);
    for (int k = 0; k < m; ++k)
      for (int t = l_start_[zu(k)]; t < l_start_[zu(k) + 1]; ++t)
        lt_slot_[zu(fill[zu(l_row_[zu(t)])]++)] = k;
  }
  reach_.clear();
  reach_.reserve(zu(m));
  mark_.assign(zu(m), 0);
  ywork_.assign(zu(m), 0.0);
  return true;
}

bool BasisLu::hyperEligible(std::size_t input_nnz) const noexcept {
  return static_cast<double>(input_nnz) <=
         std::max(2.0, opt_.hyper_input_density * static_cast<double>(m_));
}

long BasisLu::reachCap() const noexcept {
  const long cap = static_cast<long>(opt_.hyper_reach_density * static_cast<double>(m_));
  return cap < 8 ? 8 : cap;
}

void BasisLu::rebuildIndex(IndexedVector& v) const {
  v.idx.clear();
  for (int p = 0; p < m_; ++p)
    if (v.val[zu(p)] != 0.0) v.idx.push_back(p);
}

void BasisLu::ftran(std::vector<double>& v, Spike* spike) const {
  const int m = m_;
  RFP_CHECK(static_cast<int>(v.size()) == m);
  // L pass in elimination order (row space).
  for (int k = 0; k < m; ++k) {
    const double piv = v[zu(pivot_row_[zu(k)])];
    if (piv == 0.0) continue;
    for (int t = l_start_[zu(k)]; t < l_start_[zu(k) + 1]; ++t)
      v[zu(l_row_[zu(t)])] -= l_val_[zu(t)] * piv;
  }
  // Rows to slots.
  std::vector<double>& y = work_;
  for (int k = 0; k < m; ++k) y[zu(k)] = v[zu(pivot_row_[zu(k)])];
  // Forrest–Tomlin row operations, oldest first.
  const std::size_t etas = ft_tgt_.size();
  for (std::size_t e = 0; e < etas; ++e)
    y[zu(ft_tgt_[e])] -= ft_mult_[e] * y[zu(ft_src_[e])];
  if (spike) {
    spike->values = y;
    spike->idx.clear();
    spike->sparse = false;
  }
  // U back-substitution over the elimination order (in place: every row's
  // off-diagonals reference slots later in the order, already finalized).
  for (int k = m - 1; k >= 0; --k) {
    const int s = order_[zu(k)];
    double acc = y[zu(s)];
    for (const UEntry& e : u_rows_[zu(s)]) acc -= e.val * y[zu(e.slot)];
    y[zu(s)] = acc / diag_[zu(s)];
  }
  // Slots to basis positions.
  for (int k = 0; k < m; ++k) v[zu(pivot_pos_[zu(k)])] = y[zu(k)];
  ++stats_.ftran_dense;
}

void BasisLu::btran(std::vector<double>& v) const {
  const int m = m_;
  RFP_CHECK(static_cast<int>(v.size()) == m);
  // Positions to slots.
  std::vector<double>& y = work_;
  for (int k = 0; k < m; ++k) y[zu(k)] = v[zu(pivot_pos_[zu(k)])];
  // U^T forward substitution over the elimination order.
  for (int k = 0; k < m; ++k) {
    const int s = order_[zu(k)];
    double acc = y[zu(s)];
    for (const UEntry& e : u_cols_[zu(s)]) acc -= e.val * y[zu(e.slot)];
    y[zu(s)] = acc / diag_[zu(s)];
  }
  // Transposed Forrest–Tomlin row operations, newest first.
  for (std::size_t e = ft_tgt_.size(); e-- > 0;)
    y[zu(ft_src_[e])] -= ft_mult_[e] * y[zu(ft_tgt_[e])];
  // Slots to rows, then the transposed L ops newest-first.
  std::vector<double>& out = work2_;
  for (int k = 0; k < m; ++k) out[zu(pivot_row_[zu(k)])] = y[zu(k)];
  for (int k = m - 1; k >= 0; --k) {
    double s = 0.0;
    for (int t = l_start_[zu(k)]; t < l_start_[zu(k) + 1]; ++t)
      s += l_val_[zu(t)] * out[zu(l_row_[zu(t)])];
    out[zu(pivot_row_[zu(k)])] -= s;
  }
  v = out;
  ++stats_.btran_dense;
}

void BasisLu::ftranSparse(IndexedVector& v, Spike* spike) const {
  const int m = m_;
  RFP_CHECK(static_cast<int>(v.val.size()) == m);
  const long cap = reachCap();
  bool overflow = !hyperEligible(v.idx.size());
  const bool attempted = !overflow && !ftran_gate_.skip();
  overflow = overflow || !attempted;
  reach_.clear();

  // All three reachability stages run before any value moves, so an
  // overflow can still hand the untouched vector to the dense sweep.
  std::size_t n_l = 0, n_spike = 0;
  if (!overflow) {
    // Stage 1: slots reachable through L from the input rows. The result
    // support of the L pass is exactly the pivot rows of these slots.
    for (const int r : v.idx) {
      const int root = row_to_slot_[zu(r)];
      if (!mark_[zu(root)]) {
        mark_[zu(root)] = 1;
        reach_.push_back(root);
      }
    }
    std::size_t head = 0;
    while (head < reach_.size() && !overflow) {
      const int k = reach_[head++];
      for (int t = l_start_[zu(k)]; t < l_start_[zu(k) + 1]; ++t) {
        const int s = row_to_slot_[zu(l_row_[zu(t)])];
        if (!mark_[zu(s)]) {
          mark_[zu(s)] = 1;
          reach_.push_back(s);
          if (static_cast<long>(reach_.size()) > cap) {
            overflow = true;
            break;
          }
        }
      }
    }
    n_l = reach_.size();
  }
  if (!overflow) {
    // Stage 2: Forrest–Tomlin fill, oldest first (structural only).
    for (std::size_t e = 0; e < ft_tgt_.size(); ++e) {
      if (!mark_[zu(ft_src_[e])]) continue;
      const int t = ft_tgt_[e];
      if (!mark_[zu(t)]) {
        mark_[zu(t)] = 1;
        reach_.push_back(t);
      }
    }
    n_spike = reach_.size();
    if (static_cast<long>(n_spike) > cap) overflow = true;
  }
  if (!overflow) {
    // Stage 3: U back-substitution closure over the column adjacency.
    std::size_t head = 0;
    while (head < reach_.size() && !overflow) {
      const int j = reach_[head++];
      for (const UEntry& e : u_cols_[zu(j)]) {
        if (!mark_[zu(e.slot)]) {
          mark_[zu(e.slot)] = 1;
          reach_.push_back(e.slot);
          if (static_cast<long>(reach_.size()) > cap) {
            overflow = true;
            break;
          }
        }
      }
    }
  }
  if (overflow) {
    if (attempted) ftran_gate_.record(false);
    for (const int k : reach_) mark_[zu(k)] = 0;
    ftran(v.val, spike);  // counts itself as a dense solve
    rebuildIndex(v);
    return;
  }
  ftran_gate_.record(true);

  // L pass in elimination order (slot index = elimination step).
  std::sort(reach_.begin(), reach_.begin() + static_cast<std::ptrdiff_t>(n_l));
  for (std::size_t i = 0; i < n_l; ++i) {
    const int k = reach_[i];
    const double piv = v.val[zu(pivot_row_[zu(k)])];
    if (piv == 0.0) continue;
    for (int t = l_start_[zu(k)]; t < l_start_[zu(k) + 1]; ++t)
      v.val[zu(l_row_[zu(t)])] -= l_val_[zu(t)] * piv;
  }
  // Rows to slots, restoring v to all-zero (every row the L pass touched is
  // the pivot row of a reached slot).
  for (const int k : reach_) {
    const int r = pivot_row_[zu(k)];
    ywork_[zu(k)] = v.val[zu(r)];
    v.val[zu(r)] = 0.0;
  }
  v.idx.clear();
  // Forrest–Tomlin row operations, oldest first. Applied unconditionally:
  // sources outside the reach are exact zeros, so those are no-ops.
  for (std::size_t e = 0; e < ft_tgt_.size(); ++e)
    ywork_[zu(ft_tgt_[e])] -= ft_mult_[e] * ywork_[zu(ft_src_[e])];
  if (spike) {
    if (spike->values.size() != zu(m)) {
      spike->values.assign(zu(m), 0.0);
    } else if (spike->sparse) {
      for (const int k : spike->idx) spike->values[zu(k)] = 0.0;
    } else {
      std::fill(spike->values.begin(), spike->values.end(), 0.0);
    }
    spike->sparse = true;
    spike->idx.assign(reach_.begin(), reach_.begin() + static_cast<std::ptrdiff_t>(n_spike));
    for (const int k : spike->idx) spike->values[zu(k)] = ywork_[zu(k)];
  }
  // U back-substitution, descending elimination order over the reach.
  std::sort(reach_.begin(), reach_.end(), [this](int a, int b) {
    return order_pos_[zu(a)] > order_pos_[zu(b)];
  });
  for (const int s : reach_) {
    double acc = ywork_[zu(s)];
    for (const UEntry& e : u_rows_[zu(s)]) acc -= e.val * ywork_[zu(e.slot)];
    ywork_[zu(s)] = acc / diag_[zu(s)];
  }
  // Slots to basis positions; clear the slot workspace and marks.
  for (const int s : reach_) {
    mark_[zu(s)] = 0;
    const double x = ywork_[zu(s)];
    ywork_[zu(s)] = 0.0;
    if (x != 0.0) v.set(pivot_pos_[zu(s)], x);
  }
  ++stats_.ftran_sparse;
}

void BasisLu::btranSparse(IndexedVector& v) const {
  const int m = m_;
  RFP_CHECK(static_cast<int>(v.val.size()) == m);
  const long cap = reachCap();
  bool overflow = !hyperEligible(v.idx.size());
  const bool attempted = !overflow && !btran_gate_.skip();
  overflow = overflow || !attempted;
  reach_.clear();

  std::size_t n_u = 0;
  if (!overflow) {
    // Stage 1: U^T forward-substitution closure from the input slots.
    for (const int p : v.idx) {
      const int s = pos_to_slot_[zu(p)];
      if (!mark_[zu(s)]) {
        mark_[zu(s)] = 1;
        reach_.push_back(s);
      }
    }
    std::size_t head = 0;
    while (head < reach_.size() && !overflow) {
      const int r = reach_[head++];
      for (const UEntry& e : u_rows_[zu(r)]) {
        if (!mark_[zu(e.slot)]) {
          mark_[zu(e.slot)] = 1;
          reach_.push_back(e.slot);
          if (static_cast<long>(reach_.size()) > cap) {
            overflow = true;
            break;
          }
        }
      }
    }
    n_u = reach_.size();
  }
  if (!overflow) {
    // Stage 2: transposed Forrest–Tomlin fill, newest first (structural).
    for (std::size_t e = ft_tgt_.size(); e-- > 0;) {
      if (!mark_[zu(ft_tgt_[e])]) continue;
      const int s = ft_src_[e];
      if (!mark_[zu(s)]) {
        mark_[zu(s)] = 1;
        reach_.push_back(s);
      }
    }
    if (static_cast<long>(reach_.size()) > cap) overflow = true;
  }
  if (!overflow) {
    // Stage 3: transposed-L closure — slot s's pivot row feeds the pivot
    // rows of the (earlier) steps whose L column contains it.
    std::size_t head = 0;
    while (head < reach_.size() && !overflow) {
      const int s = reach_[head++];
      const int r = pivot_row_[zu(s)];
      for (int t = lt_start_[zu(r)]; t < lt_start_[zu(r) + 1]; ++t) {
        const int k = lt_slot_[zu(t)];
        if (!mark_[zu(k)]) {
          mark_[zu(k)] = 1;
          reach_.push_back(k);
          if (static_cast<long>(reach_.size()) > cap) {
            overflow = true;
            break;
          }
        }
      }
    }
  }
  if (overflow) {
    if (attempted) btran_gate_.record(false);
    for (const int k : reach_) mark_[zu(k)] = 0;
    btran(v.val);  // counts itself as a dense solve
    rebuildIndex(v);
    return;
  }
  btran_gate_.record(true);

  // Positions to slots (+= so duplicate idx entries stay harmless).
  for (const int p : v.idx) {
    ywork_[zu(pos_to_slot_[zu(p)])] += v.val[zu(p)];
    v.val[zu(p)] = 0.0;
  }
  v.idx.clear();
  // U^T forward substitution, ascending elimination order over the closure.
  std::sort(reach_.begin(), reach_.begin() + static_cast<std::ptrdiff_t>(n_u),
            [this](int a, int b) { return order_pos_[zu(a)] < order_pos_[zu(b)]; });
  for (std::size_t i = 0; i < n_u; ++i) {
    const int s = reach_[i];
    double acc = ywork_[zu(s)];
    for (const UEntry& e : u_cols_[zu(s)]) acc -= e.val * ywork_[zu(e.slot)];
    ywork_[zu(s)] = acc / diag_[zu(s)];
  }
  // Transposed Forrest–Tomlin row operations, newest first.
  for (std::size_t e = ft_tgt_.size(); e-- > 0;)
    ywork_[zu(ft_src_[e])] -= ft_mult_[e] * ywork_[zu(ft_tgt_[e])];
  // Slots to rows, then the transposed L ops descending the elimination
  // steps (a step's L rows are pivoted later, so they are already final).
  std::sort(reach_.begin(), reach_.end(), std::greater<int>());
  for (const int s : reach_) {
    mark_[zu(s)] = 0;
    v.val[zu(pivot_row_[zu(s)])] = ywork_[zu(s)];
    ywork_[zu(s)] = 0.0;
  }
  for (const int s : reach_) {
    double acc = 0.0;
    for (int t = l_start_[zu(s)]; t < l_start_[zu(s) + 1]; ++t)
      acc += l_val_[zu(t)] * v.val[zu(l_row_[zu(t)])];
    v.val[zu(pivot_row_[zu(s)])] -= acc;
  }
  for (const int s : reach_) {
    const int r = pivot_row_[zu(s)];
    if (v.val[zu(r)] != 0.0) v.idx.push_back(r);
  }
  ++stats_.btran_sparse;
}

bool BasisLu::updateColumn(int position, const Spike& spike) {
  RFP_CHECK(position >= 0 && position < m_);
  RFP_CHECK(static_cast<int>(spike.values.size()) == m_);
  const std::vector<double>& w = spike.values;
  const int t = pos_to_slot_[zu(position)];

  // Drop the old column t of U (entries (r, t) live in rows before t).
  for (const UEntry& ce : u_cols_[zu(t)]) {
    std::vector<UEntry>& row = u_rows_[zu(ce.slot)];
    for (std::size_t i = 0; i < row.size(); ++i)
      if (row[i].slot == t) {
        row[i] = row.back();
        row.pop_back();
        --u_nnz_;
        break;
      }
  }
  u_cols_[zu(t)].clear();

  // The old row t becomes a row spike at the (new) last elimination
  // position; gather it into the scatter workspace and drop it from U.
  std::priority_queue<std::pair<int, int>, std::vector<std::pair<int, int>>,
                      std::greater<>>
      heap;  // (order position, col slot)
  for (const UEntry& re : u_rows_[zu(t)]) {
    upd_val_[zu(re.slot)] = re.val;
    upd_mark_[zu(re.slot)] = 1;
    heap.emplace(order_pos_[zu(re.slot)], re.slot);
    std::vector<UEntry>& col = u_cols_[zu(re.slot)];
    for (std::size_t i = 0; i < col.size(); ++i)
      if (col[i].slot == t) {
        col[i] = col.back();
        col.pop_back();
        --u_nnz_;
        break;
      }
  }
  u_rows_[zu(t)].clear();

  // Eliminate the row spike left to right; each elimination may fill
  // columns further right (pushed lazily) and folds the source row's spike-
  // column entry into the new diagonal. The operations are recorded and
  // replayed by every later ftran/btran.
  double d = w[zu(t)];
  while (!heap.empty()) {
    const int j = heap.top().second;
    heap.pop();
    if (!upd_mark_[zu(j)]) continue;  // duplicate heap entry
    upd_mark_[zu(j)] = 0;
    const double val = upd_val_[zu(j)];
    if (std::abs(val) <= opt_.drop_tol) continue;
    const double mult = val / diag_[zu(j)];
    ft_tgt_.push_back(t);
    ft_src_.push_back(j);
    ft_mult_.push_back(mult);
    d -= mult * w[zu(j)];
    for (const UEntry& e : u_rows_[zu(j)]) {
      if (upd_mark_[zu(e.slot)]) {
        upd_val_[zu(e.slot)] -= mult * e.val;
      } else {
        upd_mark_[zu(e.slot)] = 1;
        upd_val_[zu(e.slot)] = -mult * e.val;
        heap.emplace(order_pos_[zu(e.slot)], e.slot);
      }
    }
  }

  // Stability: the new diagonal must not be dwarfed by the spike it came
  // from, or subsequent solves lose the corresponding digits. A sparse
  // spike's support list bounds both this scan and the scatter below.
  double wmax = 0.0;
  if (spike.sparse) {
    for (const int k : spike.idx) wmax = std::max(wmax, std::abs(w[zu(k)]));
  } else {
    for (int k = 0; k < m_; ++k) wmax = std::max(wmax, std::abs(w[zu(k)]));
  }
  if (std::abs(d) < std::max(opt_.abs_pivot_tol, opt_.ft_stability_tol * wmax))
    return false;  // factorization spoiled; caller refactorizes
  diag_[zu(t)] = d;

  // The spike becomes the new column t (all other slots precede t once it
  // moves to the end of the order, so every entry is above the diagonal).
  const auto scatterSpikeEntry = [&](int j) {
    if (j == t) return;
    const double v = w[zu(j)];
    if (std::abs(v) <= opt_.drop_tol) return;
    u_cols_[zu(t)].push_back(UEntry{j, v});
    u_rows_[zu(j)].push_back(UEntry{t, v});
    ++u_nnz_;
  };
  if (spike.sparse) {
    for (const int j : spike.idx) scatterSpikeEntry(j);
  } else {
    for (int j = 0; j < m_; ++j) scatterSpikeEntry(j);
  }

  // Cyclic permutation: slot t moves to the end of the elimination order.
  const int from = order_pos_[zu(t)];
  for (int k = from; k + 1 < m_; ++k) {
    order_[zu(k)] = order_[zu(k + 1)];
    order_pos_[zu(order_[zu(k)])] = k;
  }
  order_[zu(m_ - 1)] = t;
  order_pos_[zu(t)] = m_ - 1;

  ++update_count_;
  return true;
}

}  // namespace rfp::lp::sparse
