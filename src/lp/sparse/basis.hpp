// Simplex basis snapshot shared between LP solves.
//
// A `Basis` names, for every variable of the standard-form problem
// (structural columns first, then one slack per row), whether it is basic or
// resting at a bound, plus the row-position order of the basic set. It is
// produced by the sparse revised simplex on optimality and can be fed back
// into a later solve as a warm start: branch & bound reoptimizes child nodes
// from the parent's optimal basis, which typically needs a handful of pivots
// instead of a full cold two-phase solve.
//
// The struct is intentionally opaque to callers: nothing outside src/lp
// should interpret the contents, only pass them back unmodified. A basis is
// tied to the (numVars, numConstrs) shape of the model it came from; the
// solver validates the shape and silently falls back to a cold start on
// mismatch, so stale bases are safe.
#pragma once

#include <vector>

namespace rfp::lp::sparse {

/// Simplex status of one variable (structural or slack).
enum class VarStatus : unsigned char {
  kAtLower = 0,  ///< nonbasic at its lower bound
  kAtUpper = 1,  ///< nonbasic at its upper bound
  kBasic = 2,
  kFree = 3,  ///< nonbasic with no finite bound, resting at zero
};

struct Basis {
  /// Basic variable index per row position (size = rows). Values < `cols`
  /// are structural variables; `cols + i` is the slack of row i.
  std::vector<int> basic;
  /// Per-variable status (size = cols + rows).
  std::vector<VarStatus> status;
  int rows = 0;  ///< constraint count of the originating model
  int cols = 0;  ///< structural variable count of the originating model

  [[nodiscard]] bool shapeMatches(int num_rows, int num_cols) const noexcept {
    return rows == num_rows && cols == num_cols &&
           static_cast<int>(basic.size()) == num_rows &&
           static_cast<int>(status.size()) == num_cols + num_rows;
  }
};

}  // namespace rfp::lp::sparse
