// Sparse LU factorization of a simplex basis, with product-form updates.
//
// `factorize` runs a Markowitz-pivoted Gaussian elimination on the basis
// matrix B (columns of A for basic structural variables, implicit unit
// columns for basic slacks): each pivot minimizes the fill-in bound
// (rowcount-1)*(colcount-1) among entries that pass a relative stability
// threshold. Slack-heavy floorplanning bases are mostly singleton columns,
// which Markowitz eliminates first with zero fill, so the factor stays near
// the size of the basic structural columns.
//
// Between refactorizations the basis changes one column at a time;
// `pushEta` records the change as a product-form eta matrix built from the
// FTRAN-solved entering column. `ftran`/`btran` apply the LU factors plus
// the eta file. The solver refactorizes periodically (the eta file grows
// and loses accuracy) and whenever a numerical-stability check trips.
#pragma once

#include <vector>

#include "lp/sparse/csc.hpp"

namespace rfp::lp::sparse {

class BasisLu {
 public:
  struct Options {
    double abs_pivot_tol = 1e-11;  ///< reject pivots smaller than this
    double rel_pivot_tol = 0.05;   ///< pivot must be >= rel * max|column|
    int search_columns = 8;        ///< Markowitz candidate columns per pivot
    double drop_tol = 1e-13;       ///< fill-in below this is discarded
  };

  BasisLu() = default;
  explicit BasisLu(Options opt) : opt_(opt) {}

  /// Factorizes the basis selected by `basic` (size A.rows): entries
  /// < A.cols are structural columns of A, A.cols + i is the slack of row i.
  /// Discards any existing factorization and eta file. Returns false when
  /// the basis is singular; `deficientPositions()` / `unpivotedRows()` then
  /// describe a repair: replacing the variable at deficient position k with
  /// the slack of unpivoted row k yields a nonsingular basis.
  bool factorize(const CscMatrix& a, const std::vector<int>& basic);

  [[nodiscard]] const std::vector<int>& deficientPositions() const noexcept {
    return deficient_pos_;
  }
  [[nodiscard]] const std::vector<int>& unpivotedRows() const noexcept {
    return unpivoted_rows_;
  }

  /// v := B^-1 v. Input indexed by rows, output by basis positions.
  void ftran(std::vector<double>& v) const;
  /// v := B^-T v. Input indexed by basis positions, output by rows.
  void btran(std::vector<double>& v) const;

  /// Records the basis change "alpha = B^-1 (entering column) replaces the
  /// variable at `position`" as an eta matrix. |alpha[position]| must be
  /// nonzero (the solver's ratio test guarantees a pivot-tolerance floor).
  void pushEta(int position, const std::vector<double>& alpha);

  [[nodiscard]] int etaCount() const noexcept { return static_cast<int>(eta_pos_.size()); }
  [[nodiscard]] int rows() const noexcept { return m_; }
  [[nodiscard]] long factorNonzeros() const noexcept {
    return static_cast<long>(l_row_.size() + u_step_.size() + diag_.size());
  }

 private:
  Options opt_;
  int m_ = 0;

  // Elimination order: step k pivoted on (row pivot_row_[k], position
  // pivot_pos_[k]) with pivot value diag_[k].
  std::vector<int> pivot_row_, pivot_pos_;
  std::vector<double> diag_;
  // L: row operations per step, applied ascending in ftran.
  std::vector<int> l_start_, l_row_;
  std::vector<double> l_val_;
  // U: pivot-row entries per step, referencing later elimination steps.
  std::vector<int> u_start_, u_step_;
  std::vector<double> u_val_;

  // Eta file: eta e scales position eta_pos_[e] by 1/eta_piv_[e] and
  // eliminates entries (eta_idx_, eta_val_) in [eta_start_[e], eta_start_[e+1]).
  std::vector<int> eta_start_, eta_idx_, eta_pos_;
  std::vector<double> eta_val_, eta_piv_;

  std::vector<int> deficient_pos_, unpivoted_rows_;

  mutable std::vector<double> work_, work2_;  ///< solve scratch (size m)
};

}  // namespace rfp::lp::sparse
