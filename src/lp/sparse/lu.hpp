// Sparse LU factorization of a simplex basis, with Forrest–Tomlin updates.
//
// `factorize` runs a Markowitz-pivoted Gaussian elimination on the basis
// matrix B (columns of A for basic structural variables, implicit unit
// columns for basic slacks): each pivot minimizes the fill-in bound
// (rowcount-1)*(colcount-1) among entries that pass a relative stability
// threshold. Slack-heavy floorplanning bases are mostly singleton columns,
// which Markowitz eliminates first with zero fill, so the factor stays near
// the size of the basic structural columns.
//
// Between refactorizations the basis changes one column at a time.
// `updateColumn` applies the Forrest–Tomlin update: the spiked column
// (captured during the entering column's FTRAN, after the L and row-eta
// passes but before the U solve) replaces a column of U, the spiked pivot
// is cyclically permuted to the end of the elimination order, and the
// resulting row spike is eliminated into a short list of recorded row
// operations. Unlike the product-form eta file this modifies U in place, so
// FTRAN/BTRAN cost grows only with genuine fill. Refactorization triggers:
// a failed stability check, factor fill growth (`shouldRefactorize`), and
// whatever update-count cap the simplex layers on top — short solves (warm
// branch & bound reoptimizations) run refactorization-free.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/sparse/csc.hpp"

namespace rfp::lp::sparse {

/// Sparse vector for the hyper-sparse solve paths: `val` is a full dense
/// array and `idx` lists the positions that may be nonzero — everything
/// outside `idx` is exactly 0.0. Callers iterate `idx`, never the full
/// length, and the invariant is maintained by zeroing only listed entries.
/// Duplicate positions in `idx` are tolerated by the solves (the values are
/// accumulated in `val`, `idx` is only a superset of the support).
struct IndexedVector {
  std::vector<double> val;
  std::vector<int> idx;

  /// Resets to an all-zero vector of dimension `m` (full reallocation).
  void reset(int m) {
    val.assign(static_cast<std::size_t>(m), 0.0);
    idx.clear();
  }
  /// Zeros the listed entries; O(nnz), preserving the invariant.
  void clear() {
    for (const int p : idx) val[static_cast<std::size_t>(p)] = 0.0;
    idx.clear();
  }
  /// Sets entry `p` to `x` and records it. `p` must not already be listed.
  void set(int p, double x) {
    val[static_cast<std::size_t>(p)] = x;
    idx.push_back(p);
  }
  void copyFrom(const IndexedVector& o) {
    clear();
    if (val.size() != o.val.size()) val.assign(o.val.size(), 0.0);
    idx = o.idx;
    for (const int p : idx) val[static_cast<std::size_t>(p)] = o.val[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] int nnz() const noexcept { return static_cast<int>(idx.size()); }
};

class BasisLu {
 public:
  struct Options {
    double abs_pivot_tol = 1e-11;  ///< reject pivots smaller than this
    double rel_pivot_tol = 0.05;   ///< pivot must be >= rel * max|column|
    int search_columns = 8;        ///< Markowitz candidate columns per pivot
    double drop_tol = 1e-13;       ///< fill-in below this is discarded
    /// Forrest–Tomlin stability: the updated diagonal must be at least this
    /// fraction of the spike's largest entry, or the update is refused and
    /// the caller must refactorize.
    double ft_stability_tol = 1e-9;
    /// Factor-growth refactorization hint: `shouldRefactorize` fires when
    /// the updated factors hold this many times the fresh factor's nonzeros.
    double ft_fill_factor = 3.0;
    /// Hyper-sparse solves take the graph-driven path only while the input
    /// support stays below this fraction of m (else the reachability setup
    /// costs more than the dense sweep it avoids)...
    double hyper_input_density = 0.10;
    /// ...and while the predicted result support (the DFS reach) stays below
    /// this fraction of m; past it the solve falls back to the dense sweep.
    double hyper_reach_density = 0.30;
  };

  BasisLu() = default;
  explicit BasisLu(Options opt) : opt_(opt) {}

  /// Factorizes the basis selected by `basic` (size A.rows): entries
  /// < A.cols are structural columns of A, A.cols + i is the slack of row i.
  /// Discards any existing factorization and update history. Returns false
  /// when the basis is singular; `deficientPositions()` / `unpivotedRows()`
  /// then describe a repair: replacing the variable at deficient position k
  /// with the slack of unpivoted row k yields a nonsingular basis.
  bool factorize(const CscMatrix& a, const std::vector<int>& basic);

  [[nodiscard]] const std::vector<int>& deficientPositions() const noexcept {
    return deficient_pos_;
  }
  [[nodiscard]] const std::vector<int>& unpivotedRows() const noexcept {
    return unpivoted_rows_;
  }

  /// Partially solved entering column captured during `ftran`, consumed by
  /// `updateColumn`. Opaque to callers.
  struct Spike {
    std::vector<double> values;  ///< slot space, size rows(); zero outside idx when sparse
    std::vector<int> idx;        ///< support when captured by a hyper-sparse ftran
    bool sparse = false;
  };

  /// v := B^-1 v. Input indexed by rows, output by basis positions. When
  /// `spike` is non-null it captures the state `updateColumn` needs to apply
  /// a Forrest–Tomlin update for this column.
  void ftran(std::vector<double>& v, Spike* spike = nullptr) const;
  /// v := B^-T v. Input indexed by basis positions, output by rows.
  void btran(std::vector<double>& v) const;

  /// Hyper-sparse v := B^-1 v. Gilbert–Peierls reachability over the L/U
  /// nonzero graph bounds the work by the result's support instead of m;
  /// dense inputs or large reaches fall back to the dense sweep (the result
  /// is identical either way, `v.idx` is rebuilt to match). Not thread-safe
  /// across concurrent solves on one BasisLu (shared DFS scratch).
  void ftranSparse(IndexedVector& v, Spike* spike = nullptr) const;
  /// Hyper-sparse v := B^-T v; same contract as `ftranSparse`.
  void btranSparse(IndexedVector& v) const;

  /// Which path each solve actually took, cumulative since construction.
  struct SolveStats {
    long ftran_sparse = 0;
    long ftran_dense = 0;
    long btran_sparse = 0;
    long btran_dense = 0;
  };
  [[nodiscard]] const SolveStats& solveStats() const noexcept { return stats_; }

  /// Forrest–Tomlin update: the basis column at `position` is replaced by
  /// the entering column whose FTRAN produced `spike`. Returns false when
  /// the update would be numerically unstable — the factorization is then
  /// spoiled and the caller must refactorize before the next solve.
  [[nodiscard]] bool updateColumn(int position, const Spike& spike);

  /// Updates applied since the last factorize.
  [[nodiscard]] int updateCount() const noexcept { return update_count_; }

  /// True when accumulated update fill has outgrown the fresh factors
  /// enough that refactorizing would pay for itself.
  [[nodiscard]] bool shouldRefactorize() const noexcept {
    return update_count_ > 0 &&
           static_cast<double>(u_nnz_ + static_cast<long>(ft_src_.size())) >
               opt_.ft_fill_factor * static_cast<double>(base_nnz_ < 16 ? 16 : base_nnz_);
  }

  [[nodiscard]] int rows() const noexcept { return m_; }
  [[nodiscard]] long factorNonzeros() const noexcept {
    return static_cast<long>(l_row_.size()) + u_nnz_ + m_ +
           static_cast<long>(ft_src_.size());
  }

 private:
  struct UEntry {
    int slot;
    double val;
  };

  Options opt_;
  int m_ = 0;

  // L from the factorization: row operations per elimination step, applied
  // ascending in ftran (row space). Static between refactorizations.
  std::vector<int> l_start_, l_row_;
  std::vector<double> l_val_;

  // Pivots live in stable "slots" (slot k = elimination step k of the last
  // factorize); Forrest–Tomlin updates reorder slots without renumbering.
  std::vector<int> pivot_row_;   ///< slot -> matrix row
  std::vector<int> pivot_pos_;   ///< slot -> basis position
  std::vector<double> diag_;     ///< slot -> U diagonal
  std::vector<int> order_;       ///< elimination order as a list of slots
  std::vector<int> order_pos_;   ///< slot -> index in order_
  std::vector<int> pos_to_slot_; ///< basis position -> slot

  // U off-diagonals, kept both row-wise and column-wise (updates edit both).
  std::vector<std::vector<UEntry>> u_rows_;  ///< per row slot: (col slot, val)
  std::vector<std::vector<UEntry>> u_cols_;  ///< per col slot: (row slot, val)
  long u_nnz_ = 0;
  long base_nnz_ = 0;  ///< L+U nonzeros right after factorize (growth baseline)

  // Forrest–Tomlin row operations, applied in order between the L pass and
  // the U solve in ftran (transposed, newest first, in btran).
  std::vector<int> ft_tgt_, ft_src_;
  std::vector<double> ft_mult_;
  int update_count_ = 0;

  std::vector<int> deficient_pos_, unpivoted_rows_;

  // Hyper-sparse reachability structures, static between refactorizations.
  std::vector<int> row_to_slot_;         ///< matrix row -> slot pivoting it
  std::vector<int> lt_start_, lt_slot_;  ///< row -> slots whose L column hits it

  mutable std::vector<double> work_, work2_;  ///< solve scratch (size m)
  std::vector<double> upd_val_;               ///< update scratch (size m)
  std::vector<char> upd_mark_;

  // Hyper-sparse solve scratch: `reach_` collects the slots the DFS proves
  // reachable, `mark_` their membership, `ywork_` slot-space values (zero
  // outside the current reach). Mutable like `work_`: solves are logically
  // const but share scratch, so one BasisLu serves one thread at a time.
  mutable std::vector<int> reach_;
  mutable std::vector<char> mark_;
  mutable std::vector<double> ywork_;
  mutable SolveStats stats_;

  /// Learned gate on the hyper-sparse attempt. On bases whose B^-1 is
  /// effectively dense, every sparse-eligible input pays the structural BFS
  /// only to overflow the reach cap and re-solve densely — pure overhead on
  /// every solve. The gate tracks an EMA of attempt success per direction
  /// and, while success is rare, sends eligible inputs straight to the dense
  /// sweep, probing every 16th call so a basis drifting back toward
  /// sparsity reopens the fast path.
  struct HyperGate {
    double success_ema = 1.0;  ///< optimistic: attempt until proven dense
    unsigned tick = 0;
    [[nodiscard]] bool skip() noexcept {
      return success_ema < 0.25 && (tick++ % 16) != 0;
    }
    void record(bool success) noexcept {
      success_ema = 0.9 * success_ema + (success ? 0.1 : 0.0);
    }
  };
  mutable HyperGate ftran_gate_, btran_gate_;

  [[nodiscard]] bool hyperEligible(std::size_t input_nnz) const noexcept;
  [[nodiscard]] long reachCap() const noexcept;
  void rebuildIndex(IndexedVector& v) const;
};

}  // namespace rfp::lp::sparse
