// Sparse LU factorization of a simplex basis, with Forrest–Tomlin updates.
//
// `factorize` runs a Markowitz-pivoted Gaussian elimination on the basis
// matrix B (columns of A for basic structural variables, implicit unit
// columns for basic slacks): each pivot minimizes the fill-in bound
// (rowcount-1)*(colcount-1) among entries that pass a relative stability
// threshold. Slack-heavy floorplanning bases are mostly singleton columns,
// which Markowitz eliminates first with zero fill, so the factor stays near
// the size of the basic structural columns.
//
// Between refactorizations the basis changes one column at a time.
// `updateColumn` applies the Forrest–Tomlin update: the spiked column
// (captured during the entering column's FTRAN, after the L and row-eta
// passes but before the U solve) replaces a column of U, the spiked pivot
// is cyclically permuted to the end of the elimination order, and the
// resulting row spike is eliminated into a short list of recorded row
// operations. Unlike the product-form eta file this modifies U in place, so
// FTRAN/BTRAN cost grows only with genuine fill. Refactorization triggers:
// a failed stability check, factor fill growth (`shouldRefactorize`), and
// whatever update-count cap the simplex layers on top — short solves (warm
// branch & bound reoptimizations) run refactorization-free.
#pragma once

#include <vector>

#include "lp/sparse/csc.hpp"

namespace rfp::lp::sparse {

class BasisLu {
 public:
  struct Options {
    double abs_pivot_tol = 1e-11;  ///< reject pivots smaller than this
    double rel_pivot_tol = 0.05;   ///< pivot must be >= rel * max|column|
    int search_columns = 8;        ///< Markowitz candidate columns per pivot
    double drop_tol = 1e-13;       ///< fill-in below this is discarded
    /// Forrest–Tomlin stability: the updated diagonal must be at least this
    /// fraction of the spike's largest entry, or the update is refused and
    /// the caller must refactorize.
    double ft_stability_tol = 1e-9;
    /// Factor-growth refactorization hint: `shouldRefactorize` fires when
    /// the updated factors hold this many times the fresh factor's nonzeros.
    double ft_fill_factor = 3.0;
  };

  BasisLu() = default;
  explicit BasisLu(Options opt) : opt_(opt) {}

  /// Factorizes the basis selected by `basic` (size A.rows): entries
  /// < A.cols are structural columns of A, A.cols + i is the slack of row i.
  /// Discards any existing factorization and update history. Returns false
  /// when the basis is singular; `deficientPositions()` / `unpivotedRows()`
  /// then describe a repair: replacing the variable at deficient position k
  /// with the slack of unpivoted row k yields a nonsingular basis.
  bool factorize(const CscMatrix& a, const std::vector<int>& basic);

  [[nodiscard]] const std::vector<int>& deficientPositions() const noexcept {
    return deficient_pos_;
  }
  [[nodiscard]] const std::vector<int>& unpivotedRows() const noexcept {
    return unpivoted_rows_;
  }

  /// Partially solved entering column captured during `ftran`, consumed by
  /// `updateColumn`. Opaque to callers.
  struct Spike {
    std::vector<double> values;  ///< slot space, size rows()
  };

  /// v := B^-1 v. Input indexed by rows, output by basis positions. When
  /// `spike` is non-null it captures the state `updateColumn` needs to apply
  /// a Forrest–Tomlin update for this column.
  void ftran(std::vector<double>& v, Spike* spike = nullptr) const;
  /// v := B^-T v. Input indexed by basis positions, output by rows.
  void btran(std::vector<double>& v) const;

  /// Forrest–Tomlin update: the basis column at `position` is replaced by
  /// the entering column whose FTRAN produced `spike`. Returns false when
  /// the update would be numerically unstable — the factorization is then
  /// spoiled and the caller must refactorize before the next solve.
  [[nodiscard]] bool updateColumn(int position, const Spike& spike);

  /// Updates applied since the last factorize.
  [[nodiscard]] int updateCount() const noexcept { return update_count_; }

  /// True when accumulated update fill has outgrown the fresh factors
  /// enough that refactorizing would pay for itself.
  [[nodiscard]] bool shouldRefactorize() const noexcept {
    return update_count_ > 0 &&
           static_cast<double>(u_nnz_ + static_cast<long>(ft_src_.size())) >
               opt_.ft_fill_factor * static_cast<double>(base_nnz_ < 16 ? 16 : base_nnz_);
  }

  [[nodiscard]] int rows() const noexcept { return m_; }
  [[nodiscard]] long factorNonzeros() const noexcept {
    return static_cast<long>(l_row_.size()) + u_nnz_ + m_ +
           static_cast<long>(ft_src_.size());
  }

 private:
  struct UEntry {
    int slot;
    double val;
  };

  Options opt_;
  int m_ = 0;

  // L from the factorization: row operations per elimination step, applied
  // ascending in ftran (row space). Static between refactorizations.
  std::vector<int> l_start_, l_row_;
  std::vector<double> l_val_;

  // Pivots live in stable "slots" (slot k = elimination step k of the last
  // factorize); Forrest–Tomlin updates reorder slots without renumbering.
  std::vector<int> pivot_row_;   ///< slot -> matrix row
  std::vector<int> pivot_pos_;   ///< slot -> basis position
  std::vector<double> diag_;     ///< slot -> U diagonal
  std::vector<int> order_;       ///< elimination order as a list of slots
  std::vector<int> order_pos_;   ///< slot -> index in order_
  std::vector<int> pos_to_slot_; ///< basis position -> slot

  // U off-diagonals, kept both row-wise and column-wise (updates edit both).
  std::vector<std::vector<UEntry>> u_rows_;  ///< per row slot: (col slot, val)
  std::vector<std::vector<UEntry>> u_cols_;  ///< per col slot: (row slot, val)
  long u_nnz_ = 0;
  long base_nnz_ = 0;  ///< L+U nonzeros right after factorize (growth baseline)

  // Forrest–Tomlin row operations, applied in order between the L pass and
  // the U solve in ftran (transposed, newest first, in btran).
  std::vector<int> ft_tgt_, ft_src_;
  std::vector<double> ft_mult_;
  int update_count_ = 0;

  std::vector<int> deficient_pos_, unpivoted_rows_;

  mutable std::vector<double> work_, work2_;  ///< solve scratch (size m)
  std::vector<double> upd_val_;               ///< update scratch (size m)
  std::vector<char> upd_mark_;
};

}  // namespace rfp::lp::sparse
