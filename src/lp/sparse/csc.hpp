// Compressed sparse column storage for the constraint matrix.
//
// The revised simplex never forms a tableau: it keeps the original
// constraint matrix A in CSC form (structural columns only — slack columns
// are implicit unit vectors) and works with factorized bases. An SDR2-scale
// floorplanning formulation (40k rows x 2k columns, ~640k nonzeros) fits in
// ~10 MB here versus ~25 GiB as a dense tableau.
#pragma once

#include <vector>

#include "lp/model.hpp"

namespace rfp::lp::sparse {

struct CscMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<int> ptr;  ///< size cols + 1
  std::vector<int> idx;  ///< row index per nonzero, ascending within a column
  std::vector<double> val;

  [[nodiscard]] long nnz() const noexcept { return static_cast<long>(idx.size()); }

  /// Builds the structural constraint matrix of `model` (duplicate terms in
  /// a row are summed, exact zeros kept out).
  [[nodiscard]] static CscMatrix fromModel(const Model& model);

  /// Process-wide count of `fromModel` builds. Branch & bound shares one
  /// matrix across a tree's node solves; tests assert via this counter that
  /// a tree builds it exactly once instead of once per solve.
  [[nodiscard]] static long buildCount() noexcept;
};

/// Nonzero count of `model`'s constraint matrix without building it; feeds
/// the nnz-based memory estimates that gate engine selection.
[[nodiscard]] long countNonzeros(const Model& model) noexcept;

}  // namespace rfp::lp::sparse
