#include "lp/lp_solver.hpp"

#include <vector>

#include "lp/sparse/csc.hpp"

namespace rfp::lp {

double LpSolver::denseTableauGib(const Model& model) {
  const double m = model.numConstrs();
  const double n = model.numVars();
  return (m + 1) * (n + 2 * m + 2) * 8.0 / (1024.0 * 1024.0 * 1024.0);
}

double LpSolver::sparseFootprintGib(const Model& model) {
  const double nnz = static_cast<double>(sparse::countNonzeros(model));
  const double vars = static_cast<double>(model.numVars()) + model.numConstrs();
  // 96 B/nonzero covers CSC (12 B) plus Markowitz working copies, LU fill
  // and the eta file between refactorizations; 160 B/variable covers the
  // dozen dense working vectors (bounds, costs, weights, FTRAN/BTRAN
  // scratch, basis arrays).
  return (nnz * 96.0 + vars * 160.0) / (1024.0 * 1024.0 * 1024.0);
}

LpEngine LpSolver::resolveEngine(const Model& model) const {
  if (options_.engine != LpEngine::kAuto) return options_.engine;
  return denseTableauGib(model) * 1024.0 > options_.auto_dense_limit_mib ? LpEngine::kSparse
                                                                         : LpEngine::kDense;
}

LpResult LpSolver::solve(const Model& model) const {
  std::vector<double> lb(static_cast<std::size_t>(model.numVars()));
  std::vector<double> ub(static_cast<std::size_t>(model.numVars()));
  for (int j = 0; j < model.numVars(); ++j) {
    lb[static_cast<std::size_t>(j)] = model.var(j).lb;
    ub[static_cast<std::size_t>(j)] = model.var(j).ub;
  }
  return solve(model, lb, ub);
}

LpResult LpSolver::solve(const Model& model, std::span<const double> lb,
                         std::span<const double> ub, const sparse::Basis* warm) const {
  if (resolveEngine(model) == LpEngine::kSparse) {
    sparse::RevisedSimplexSolver::Options sopt;
    sopt.core = options_.core;
    sopt.refactor_interval = options_.refactor_interval;
    sopt.lu = options_.lu;
    return sparse::RevisedSimplexSolver(sopt).solve(model, lb, ub, warm);
  }
  return SimplexSolver(options_.core).solve(model, lb, ub);
}

}  // namespace rfp::lp
