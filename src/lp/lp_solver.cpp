#include "lp/lp_solver.hpp"

#include <vector>

#include "lp/sparse/csc.hpp"

namespace rfp::lp {

double LpSolver::denseTableauGib(const Model& model) {
  const double m = model.numConstrs();
  const double n = model.numVars();
  return (m + 1) * (n + 2 * m + 2) * 8.0 / (1024.0 * 1024.0 * 1024.0);
}

double LpSolver::sparseFootprintGib(const Model& model) {
  const double nnz = static_cast<double>(sparse::countNonzeros(model));
  const double vars = static_cast<double>(model.numVars()) + model.numConstrs();
  // 96 B/nonzero covers CSC (12 B) plus Markowitz working copies, LU fill
  // and Forrest–Tomlin update growth between refactorizations; 160 B/variable
  // covers the dozen dense working vectors (bounds, costs, weights,
  // FTRAN/BTRAN scratch, basis arrays).
  return (nnz * 96.0 + vars * 160.0) / (1024.0 * 1024.0 * 1024.0);
}

LpEngine LpSolver::resolveEngine(const Model& model) const {
  if (options_.engine != LpEngine::kAuto) return options_.engine;
  return denseTableauGib(model) * 1024.0 > options_.auto_dense_limit_mib ? LpEngine::kSparse
                                                                         : LpEngine::kDense;
}

LpResult LpSolver::solve(const Model& model) const {
  std::vector<double> lb(static_cast<std::size_t>(model.numVars()));
  std::vector<double> ub(static_cast<std::size_t>(model.numVars()));
  for (int j = 0; j < model.numVars(); ++j) {
    lb[static_cast<std::size_t>(j)] = model.var(j).lb;
    ub[static_cast<std::size_t>(j)] = model.var(j).ub;
  }
  return solve(model, lb, ub);
}

LpResult LpSolver::solve(const Model& model, std::span<const double> lb,
                         std::span<const double> ub, const sparse::Basis* warm,
                         const sparse::CscMatrix* csc) const {
  if (resolveEngine(model) == LpEngine::kSparse) {
    // Without a caller-provided cache, build the CSC matrix once here: a
    // declined dual attempt would otherwise build it a second time for the
    // primal fallback.
    sparse::CscMatrix local;
    if (!csc) {
      local = sparse::CscMatrix::fromModel(model);
      csc = &local;
    }
    LpResult declined;
    if (warm && options_.dual_reopt) {
      // Warm reoptimization fast path: a bound change leaves the supplied
      // basis dual feasible, so the dual simplex usually finishes in a few
      // pivots. It declines (nullopt) when the basis is not dual feasible
      // after bound-flip repair; the primal engine then takes over.
      sparse::DualSimplexSolver::Options dopt;
      dopt.core = options_.core;
      dopt.refactor_interval = options_.refactor_interval;
      dopt.lu = options_.lu;
      if (std::optional<LpResult> dual =
              sparse::DualSimplexSolver(dopt).solve(model, lb, ub, *warm, csc, &declined))
        return *std::move(dual);
    }
    sparse::RevisedSimplexSolver::Options sopt;
    sopt.core = options_.core;
    sopt.refactor_interval = options_.refactor_interval;
    sopt.pricing = options_.pricing;
    sopt.lu = options_.lu;
    LpResult res = sparse::RevisedSimplexSolver(sopt).solve(model, lb, ub, warm, csc);
    // Fold the declined dual attempt's effort into the report so the
    // telemetry reflects actual solver work, not just the engine that won.
    res.iterations += declined.iterations;
    res.dual_pivots += declined.dual_pivots;
    res.bound_flips += declined.bound_flips;
    res.ft_updates += declined.ft_updates;
    res.refactorizations += declined.refactorizations;
    res.ftran_sparse += declined.ftran_sparse;
    res.ftran_dense += declined.ftran_dense;
    res.btran_sparse += declined.btran_sparse;
    res.btran_dense += declined.btran_dense;
    res.dse_updates += declined.dse_updates;
    return res;
  }
  return SimplexSolver(options_.core).solve(model, lb, ub);
}

}  // namespace rfp::lp
