// Mixed-integer linear model container (the Gurobi-like API layer).
//
// A Model stores variables (bounds + type), linear constraints and a single
// linear objective. It performs no solving itself: `SimplexSolver` handles
// the continuous relaxation and `milp::MilpSolver` handles integrality.
#pragma once

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "lp/expr.hpp"

namespace rfp::lp {

/// Value used for "no bound".
inline constexpr double kInfinity = 1e30;

enum class VarType { kContinuous, kBinary, kInteger };
enum class Sense { kLessEqual, kGreaterEqual, kEqual };
enum class ObjSense { kMinimize, kMaximize };

/// A stored constraint: terms · x  (sense)  rhs.
struct Constraint {
  std::vector<std::pair<int, double>> terms;  // (var index, coefficient), merged
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

/// Variable metadata.
struct VarInfo {
  double lb = 0.0;
  double ub = kInfinity;
  VarType type = VarType::kContinuous;
  std::string name;
};

class Model {
 public:
  // ---- construction ------------------------------------------------------
  Var addVar(double lb, double ub, VarType type, std::string name = "");
  Var addContinuous(double lb, double ub, std::string name = "");
  Var addBinary(std::string name = "");
  Var addInteger(double lb, double ub, std::string name = "");

  /// Adds `expr (sense) rhs`; the expression's constant is moved to the rhs.
  int addConstr(const LinExpr& expr, Sense sense, double rhs, std::string name = "");
  /// Adds `lo <= expr <= hi` as two rows (returns index of the first).
  int addRange(const LinExpr& expr, double lo, double hi, std::string name = "");

  void setObjective(const LinExpr& expr, ObjSense sense = ObjSense::kMinimize);

  // ---- accessors ---------------------------------------------------------
  [[nodiscard]] int numVars() const noexcept { return static_cast<int>(vars_.size()); }
  [[nodiscard]] int numConstrs() const noexcept { return static_cast<int>(constrs_.size()); }
  [[nodiscard]] const VarInfo& var(int i) const { return vars_.at(i); }
  [[nodiscard]] const Constraint& constr(int i) const { return constrs_.at(i); }
  [[nodiscard]] const std::vector<VarInfo>& vars() const noexcept { return vars_; }
  [[nodiscard]] const std::vector<Constraint>& constrs() const noexcept { return constrs_; }
  [[nodiscard]] const LinExpr& objective() const noexcept { return objective_; }
  [[nodiscard]] ObjSense objSense() const noexcept { return obj_sense_; }
  [[nodiscard]] bool hasIntegerVars() const noexcept;

  /// Mutates bounds (used by branch & bound and by tests).
  void setVarBounds(int i, double lb, double ub);

  // ---- evaluation --------------------------------------------------------
  [[nodiscard]] double evalObjective(std::span<const double> x) const;
  [[nodiscard]] double evalExpr(const LinExpr& e, std::span<const double> x) const;

  /// Full feasibility check of a candidate point (bounds, integrality and
  /// every constraint). Used by heuristics and as an independent verifier.
  [[nodiscard]] bool isFeasible(std::span<const double> x, double tol = 1e-6) const;

  /// Human-readable dump (for debugging small models in tests).
  [[nodiscard]] std::string toString() const;

 private:
  std::vector<VarInfo> vars_;
  std::vector<Constraint> constrs_;
  LinExpr objective_;
  ObjSense obj_sense_ = ObjSense::kMinimize;
};

}  // namespace rfp::lp
