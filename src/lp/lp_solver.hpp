// Engine-agnostic LP entry point: dense tableau or sparse revised simplex.
//
// Callers (branch & bound, the MILP floorplanner, tests) solve through
// `LpSolver` and let it pick the substrate:
//
//  * kDense  — the two-phase full-tableau simplex (lp/simplex.hpp). Fast and
//    simple on small models, but its working set is (m+1) x (n+2m) doubles:
//    an SDR2-scale floorplanning formulation (~40k rows) would need ~25 GiB.
//  * kSparse — the revised simplex over CSC storage with a Markowitz-
//    factorized basis (lp/sparse/). Memory scales with the nonzero count
//    (~10 MB for the same SDR2 formulation) and it accepts basis warm
//    starts, which branch & bound uses to reoptimize child nodes.
//  * kAuto   — kDense while the dense tableau stays under
//    `auto_dense_limit_mib`, kSparse above it.
//
// The per-engine memory estimates are also exported so admission gates
// (MilpFloorplannerOptions::max_lp_gib) can budget against the engine that
// would actually run instead of always assuming the dense tableau.
#pragma once

#include <span>

#include "lp/simplex.hpp"
#include "lp/sparse/basis.hpp"
#include "lp/sparse/revised_simplex.hpp"

namespace rfp::lp {

class LpSolver {
 public:
  struct Options {
    LpEngine engine = LpEngine::kAuto;
    /// kAuto switches to the sparse engine when the dense tableau would
    /// exceed this many MiB.
    double auto_dense_limit_mib = 64.0;
    /// Tolerances and limits shared by both engines.
    SimplexSolver::Options core;
    /// Sparse-only knobs (see lp/sparse/revised_simplex.hpp).
    int refactor_interval = 100;
    sparse::BasisLu::Options lu;
  };

  LpSolver() = default;
  explicit LpSolver(Options options) : options_(options) {}

  /// Solves the continuous relaxation of `model` (integrality ignored).
  [[nodiscard]] LpResult solve(const Model& model) const;

  /// Solves with per-variable bound overrides. `warm` (a basis from an
  /// earlier sparse solve) is honoured by the sparse engine and ignored by
  /// the dense one; `LpResult::warm_started` reports what happened.
  [[nodiscard]] LpResult solve(const Model& model, std::span<const double> lb,
                               std::span<const double> ub,
                               const sparse::Basis* warm = nullptr) const;

  /// The engine `solve` would use for this model (never kAuto).
  [[nodiscard]] LpEngine resolveEngine(const Model& model) const;

  /// Working-set estimate of the dense tableau: (m+1) x (n+2m+2) doubles.
  [[nodiscard]] static double denseTableauGib(const Model& model);

  /// Nonzero-based working-set estimate of the sparse engine: CSC storage
  /// plus LU fill and eta-file headroom per nonzero, plus the per-variable
  /// working vectors. Deliberately conservative (real use is lower).
  [[nodiscard]] static double sparseFootprintGib(const Model& model);

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

}  // namespace rfp::lp
