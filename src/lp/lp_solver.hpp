// Engine-agnostic LP entry point: dense tableau or sparse revised simplex.
//
// Callers (branch & bound, the MILP floorplanner, tests) solve through
// `LpSolver` and let it pick the substrate:
//
//  * kDense  — the two-phase full-tableau simplex (lp/simplex.hpp). Fast and
//    simple on small models, but its working set is (m+1) x (n+2m) doubles:
//    an SDR2-scale floorplanning formulation (~40k rows) would need ~25 GiB.
//  * kSparse — the revised simplex over CSC storage with a Markowitz-
//    factorized, Forrest–Tomlin-updated basis (lp/sparse/). Memory scales
//    with the nonzero count (~10 MB for the same SDR2 formulation) and it
//    accepts basis warm starts, which branch & bound uses to reoptimize
//    child nodes.
//  * kAuto   — kDense while the dense tableau stays under
//    `auto_dense_limit_mib`, kSparse above it.
//
// Warm reoptimization rides a fast path: when a warm basis is supplied (a
// branch & bound child differing from its parent only in variable bounds)
// the bounded-variable *dual* simplex runs first — the parent basis stays
// dual feasible under bound changes, so a handful of dual pivots usually
// restores optimality — and the primal engine is the fallback whenever no
// dual-feasible start exists. Callers can also pass a cached CSC matrix so
// a tree of solves shares one build.
//
// The per-engine memory estimates are also exported so admission gates
// (MilpFloorplannerOptions::max_lp_gib) can budget against the engine that
// would actually run instead of always assuming the dense tableau.
#pragma once

#include <span>

#include "lp/simplex.hpp"
#include "lp/sparse/basis.hpp"
#include "lp/sparse/dual_simplex.hpp"
#include "lp/sparse/revised_simplex.hpp"

namespace rfp::lp {

class LpSolver {
 public:
  struct Options {
    LpEngine engine = LpEngine::kAuto;
    /// kAuto switches to the sparse engine when the dense tableau would
    /// exceed this many MiB.
    double auto_dense_limit_mib = 64.0;
    /// Tolerances and limits shared by both engines.
    SimplexSolver::Options core;
    /// Sparse-only knobs. Refactorization triggers on Forrest–Tomlin
    /// stability failures and factor fill growth, plus this hard
    /// update-count cap (<= 0 disables the cap; warm reoptimizations
    /// finish far below it, so the B&B hot path is refactorization-free
    /// either way).
    int refactor_interval = 100;
    /// Primal pricing rule of the sparse engine.
    sparse::Pricing pricing = sparse::Pricing::kSteepestEdge;
    /// With a warm basis on the sparse engine, reoptimize with the dual
    /// simplex first and fall back to the primal when no dual-feasible
    /// start exists. Off forces every solve through the primal engine
    /// (A/B tests; results are identical either way).
    bool dual_reopt = true;
    sparse::BasisLu::Options lu;
  };

  LpSolver() = default;
  explicit LpSolver(Options options) : options_(options) {}

  /// Solves the continuous relaxation of `model` (integrality ignored).
  [[nodiscard]] LpResult solve(const Model& model) const;

  /// Solves with per-variable bound overrides. `warm` (a basis from an
  /// earlier sparse solve) is honoured by the sparse engines and ignored by
  /// the dense one; `LpResult::warm_started` reports what happened, and
  /// `LpResult::dual_reopt` whether the dual fast path produced the result.
  /// `csc`, when non-null, must be the CSC form of `model`'s constraint
  /// matrix — branch & bound builds it once per tree and passes it to every
  /// node solve.
  [[nodiscard]] LpResult solve(const Model& model, std::span<const double> lb,
                               std::span<const double> ub,
                               const sparse::Basis* warm = nullptr,
                               const sparse::CscMatrix* csc = nullptr) const;

  /// The engine `solve` would use for this model (never kAuto).
  [[nodiscard]] LpEngine resolveEngine(const Model& model) const;

  /// Working-set estimate of the dense tableau: (m+1) x (n+2m+2) doubles.
  [[nodiscard]] static double denseTableauGib(const Model& model);

  /// Nonzero-based working-set estimate of the sparse engine: CSC storage
  /// plus LU fill and update headroom per nonzero, plus the per-variable
  /// working vectors. Deliberately conservative (real use is lower).
  [[nodiscard]] static double sparseFootprintGib(const Model& model);

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

}  // namespace rfp::lp
