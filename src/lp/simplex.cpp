#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace rfp::lp {

const char* toString(LpStatus s) noexcept {
  switch (s) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterLimit: return "iteration-limit";
    case LpStatus::kTimeLimit: return "time-limit";
  }
  return "?";
}

const char* toString(LpEngine e) noexcept {
  switch (e) {
    case LpEngine::kAuto: return "auto";
    case LpEngine::kDense: return "dense";
    case LpEngine::kSparse: return "sparse";
  }
  return "?";
}

namespace {

constexpr double kInf = kInfinity;

/// Dense working tableau for the two-phase bounded simplex.
///
/// Column layout: [0, n) structural (shifted to lower bound 0),
/// [n, n+m) slack/surplus, [n+m, n+m+na) artificial. Row 0 is the cost row;
/// rows 1..m are constraints; column `ncols` is the rhs.
class Tableau {
 public:
  Tableau(const Model& model, std::span<const double> lb, std::span<const double> ub,
          const SimplexSolver::Options& opt)
      : opt_(opt), model_(model) {
    n_ = model.numVars();
    m_ = model.numConstrs();
    shift_.resize(n_);
    upper_.assign(n_, kInf);

    for (int j = 0; j < n_; ++j) {
      const double l = lb[static_cast<std::size_t>(j)];
      const double u = ub[static_cast<std::size_t>(j)];
      RFP_CHECK_MSG(l > -kInf / 2,
                    "simplex requires finite lower bounds (var " << j << ")");
      RFP_CHECK_MSG(l <= u, "simplex: lb > ub for var " << j);
      shift_[j] = l;
      upper_[j] = (u >= kInf / 2) ? kInf : u - l;
    }

    // Row preprocessing: shift rhs by lower bounds, normalize rhs >= 0.
    struct Row {
      const Constraint* c;
      double rhs;
      double sign;  // +1 or -1 applied to the stored coefficients
      Sense sense;  // after sign normalization
    };
    std::vector<Row> rows;
    rows.reserve(static_cast<std::size_t>(m_));
    int n_artificial = 0;
    for (int i = 0; i < m_; ++i) {
      const Constraint& c = model.constr(i);
      double rhs = c.rhs;
      for (const auto& [v, coef] : c.terms) rhs -= coef * shift_[v];
      double sign = 1.0;
      Sense sense = c.sense;
      if (rhs < 0) {
        sign = -1.0;
        rhs = -rhs;
        if (sense == Sense::kLessEqual)
          sense = Sense::kGreaterEqual;
        else if (sense == Sense::kGreaterEqual)
          sense = Sense::kLessEqual;
      }
      if (sense != Sense::kLessEqual) ++n_artificial;
      rows.push_back(Row{&c, rhs, sign, sense});
    }

    na_ = n_artificial;
    ncols_ = n_ + m_ + na_;
    stride_ = ncols_ + 1;
    tab_.assign(static_cast<std::size_t>(m_ + 1) * static_cast<std::size_t>(stride_), 0.0);
    basis_.assign(static_cast<std::size_t>(m_), -1);
    flipped_.assign(static_cast<std::size_t>(ncols_), false);
    is_artificial_.assign(static_cast<std::size_t>(ncols_), false);
    col_upper_.assign(static_cast<std::size_t>(ncols_), kInf);
    for (int j = 0; j < n_; ++j) col_upper_[static_cast<std::size_t>(j)] = upper_[j];

    int next_art = n_ + m_;
    for (int i = 0; i < m_; ++i) {
      const Row& row = rows[static_cast<std::size_t>(i)];
      double* tr = rowPtr(i + 1);
      for (const auto& [v, coef] : row.c->terms) tr[v] += row.sign * coef;
      tr[ncols_] = row.rhs;
      const int slack = n_ + i;
      switch (row.sense) {
        case Sense::kLessEqual:
          tr[slack] = 1.0;
          basis_[static_cast<std::size_t>(i)] = slack;
          break;
        case Sense::kGreaterEqual: {
          tr[slack] = -1.0;
          tr[next_art] = 1.0;
          is_artificial_[static_cast<std::size_t>(next_art)] = true;
          basis_[static_cast<std::size_t>(i)] = next_art++;
          break;
        }
        case Sense::kEqual: {
          // The slack column for '=' rows is fixed at zero.
          col_upper_[static_cast<std::size_t>(slack)] = 0.0;
          tr[next_art] = 1.0;
          is_artificial_[static_cast<std::size_t>(next_art)] = true;
          basis_[static_cast<std::size_t>(i)] = next_art++;
          break;
        }
      }
    }
    RFP_CHECK(next_art == ncols_);
  }

  /// Runs both phases; returns the outcome and fills `x_out` on optimality.
  LpStatus run(std::vector<double>& x_out, long& iters_out, const Deadline& deadline) {
    long iters = 0;
    // ---- Phase 1 (only when artificial variables exist) ----
    if (na_ > 0) {
      setPhase1CostRow();
      const LpStatus s1 = iterate(/*ban_artificials=*/false, iters, deadline);
      if (s1 == LpStatus::kIterLimit || s1 == LpStatus::kTimeLimit) {
        iters_out = iters;
        return s1;
      }
      // Phase-1 objective value = -rhs of the cost row.
      const double infeas = -rowPtr(0)[ncols_];
      if (infeas > 1e-6) {
        iters_out = iters;
        return LpStatus::kInfeasible;
      }
      driveOutArtificials();
    }
    // ---- Phase 2 ----
    setPhase2CostRow();
    const LpStatus s2 = iterate(/*ban_artificials=*/true, iters, deadline);
    iters_out = iters;
    if (s2 != LpStatus::kOptimal) return s2;

    x_out.assign(static_cast<std::size_t>(n_), 0.0);
    std::vector<double> raw(static_cast<std::size_t>(ncols_), 0.0);
    for (int i = 0; i < m_; ++i)
      raw[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] = rowPtr(i + 1)[ncols_];
    for (int j = 0; j < n_; ++j) {
      double v = raw[static_cast<std::size_t>(j)];
      if (flipped_[static_cast<std::size_t>(j)]) v = col_upper_[static_cast<std::size_t>(j)] - v;
      x_out[static_cast<std::size_t>(j)] = shift_[j] + v;
    }
    return LpStatus::kOptimal;
  }

 private:
  double* rowPtr(int i) { return tab_.data() + static_cast<std::size_t>(i) * stride_; }
  const double* rowPtr(int i) const {
    return tab_.data() + static_cast<std::size_t>(i) * stride_;
  }

  void setPhase1CostRow() {
    double* z = rowPtr(0);
    std::fill(z, z + stride_, 0.0);
    for (int j = 0; j < ncols_; ++j)
      if (is_artificial_[static_cast<std::size_t>(j)]) z[j] = 1.0;
    // Eliminate the (basic) artificial columns from the cost row.
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (!is_artificial_[static_cast<std::size_t>(b)]) continue;
      const double* tr = rowPtr(i + 1);
      for (int j = 0; j <= ncols_; ++j) z[j] -= tr[j];
    }
  }

  void setPhase2CostRow() {
    double* z = rowPtr(0);
    std::fill(z, z + stride_, 0.0);
    const double dir = (model_.objSense() == ObjSense::kMinimize) ? 1.0 : -1.0;
    for (const auto& [v, c] : model_.objective().terms()) {
      if (flipped_[static_cast<std::size_t>(v)]) {
        z[v] += -dir * c;
        z[ncols_] -= dir * c * col_upper_[static_cast<std::size_t>(v)];
      } else {
        z[v] += dir * c;
      }
    }
    // Eliminate basic columns.
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      const double zb = z[b];
      if (zb == 0.0) continue;
      const double* tr = rowPtr(i + 1);
      for (int j = 0; j <= ncols_; ++j) z[j] -= zb * tr[j];
    }
  }

  /// After phase 1: pivot remaining basic artificials out wherever possible.
  void driveOutArtificials() {
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (!is_artificial_[static_cast<std::size_t>(b)]) continue;
      const double* tr = rowPtr(i + 1);
      int pivot_col = -1;
      double best = opt_.pivot_tol;
      for (int j = 0; j < n_ + m_; ++j) {
        if (isBasic(j)) continue;
        if (col_upper_[static_cast<std::size_t>(j)] <= 0.0) continue;  // fixed column
        const double a = std::abs(tr[j]);
        if (a > best) {
          best = a;
          pivot_col = j;
        }
      }
      if (pivot_col >= 0) pivot(i + 1, pivot_col);
      // Otherwise the row is redundant; the artificial stays basic at value 0
      // and `ban_artificials` keeps it from ever moving.
    }
  }

  [[nodiscard]] bool isBasic(int j) const {
    for (int i = 0; i < m_; ++i)
      if (basis_[static_cast<std::size_t>(i)] == j) return true;
    return false;
  }

  void pivot(int row, int col) {
    double* pr = rowPtr(row);
    const double p = pr[col];
    const double inv = 1.0 / p;
    for (int j = 0; j <= ncols_; ++j) pr[j] *= inv;
    pr[col] = 1.0;  // exact
    for (int i = 0; i <= m_; ++i) {
      if (i == row) continue;
      double* tr = rowPtr(i);
      const double f = tr[col];
      if (f == 0.0) continue;
      for (int j = 0; j <= ncols_; ++j) tr[j] -= f * pr[j];
      tr[col] = 0.0;  // exact
    }
    basis_[static_cast<std::size_t>(row - 1)] = col;
  }

  /// Flip nonbasic column j between its bounds: substitute x := U - x.
  void flipColumn(int j) {
    const double u = col_upper_[static_cast<std::size_t>(j)];
    RFP_CHECK(u < kInf / 2);
    for (int i = 0; i <= m_; ++i) {
      double* tr = rowPtr(i);
      tr[ncols_] -= u * tr[j];
      tr[j] = -tr[j];
    }
    flipped_[static_cast<std::size_t>(j)] = !flipped_[static_cast<std::size_t>(j)];
  }

  LpStatus iterate(bool ban_artificials, long& iters, const Deadline& deadline) {
    std::vector<char> in_basis(static_cast<std::size_t>(ncols_), 0);
    for (int i = 0; i < m_; ++i) in_basis[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] = 1;

    int degenerate_streak = 0;
    while (true) {
      if (++iters > opt_.max_iterations) return LpStatus::kIterLimit;
      if ((iters & 63) == 0 &&
          (deadline.expired() ||
           (opt_.stop && opt_.stop->load(std::memory_order_relaxed))))
        return LpStatus::kTimeLimit;

      const bool bland = degenerate_streak > opt_.bland_after_degenerate;
      const double* z = rowPtr(0);

      // ---- pricing ----
      int e = -1;
      double best = -opt_.cost_tol;
      for (int j = 0; j < ncols_; ++j) {
        if (in_basis[static_cast<std::size_t>(j)]) continue;
        if (ban_artificials && is_artificial_[static_cast<std::size_t>(j)]) continue;
        if (col_upper_[static_cast<std::size_t>(j)] <= 0.0) continue;  // fixed at bound
        const double d = z[j];
        if (d < best) {
          best = d;
          e = j;
          if (bland) break;  // Bland: first improving index
        }
      }
      if (e < 0) return LpStatus::kOptimal;

      // ---- ratio test (upper-bounded) ----
      double t_best = col_upper_[static_cast<std::size_t>(e)];  // entering hits own UB
      int leave_row = -1;
      bool leave_at_upper = false;
      double best_pivot_mag = 0.0;
      for (int i = 1; i <= m_; ++i) {
        const double* tr = rowPtr(i);
        const double a = tr[e];
        const int bi = basis_[static_cast<std::size_t>(i - 1)];
        if (a > opt_.pivot_tol) {
          const double t = std::max(0.0, tr[ncols_]) / a;
          if (t < t_best - 1e-12 ||
              (t < t_best + 1e-12 && leave_row >= 0 && std::abs(a) > best_pivot_mag)) {
            t_best = t;
            leave_row = i;
            leave_at_upper = false;
            best_pivot_mag = std::abs(a);
          }
        } else if (a < -opt_.pivot_tol) {
          const double ub = col_upper_[static_cast<std::size_t>(bi)];
          if (ub >= kInf / 2) continue;
          const double t = (ub - tr[ncols_]) / (-a);
          if (t < t_best - 1e-12 ||
              (t < t_best + 1e-12 && leave_row >= 0 && std::abs(a) > best_pivot_mag)) {
            t_best = std::max(0.0, t);
            leave_row = i;
            leave_at_upper = true;
            best_pivot_mag = std::abs(a);
          }
        }
      }

      if (leave_row < 0) {
        if (t_best >= kInf / 2) return LpStatus::kUnbounded;
        // Bound flip: entering moves from one bound to the other; no pivot.
        flipColumn(e);
        degenerate_streak = 0;
        continue;
      }

      degenerate_streak = (t_best < 1e-10) ? degenerate_streak + 1 : 0;

      const int leaving = basis_[static_cast<std::size_t>(leave_row - 1)];
      pivot(leave_row, e);
      in_basis[static_cast<std::size_t>(e)] = 1;
      in_basis[static_cast<std::size_t>(leaving)] = 0;
      if (leave_at_upper) flipColumn(leaving);
    }
  }

  SimplexSolver::Options opt_;
  const Model& model_;
  int n_ = 0;      ///< structural variables
  int m_ = 0;      ///< rows
  int na_ = 0;     ///< artificial variables
  int ncols_ = 0;  ///< total columns (excluding rhs)
  int stride_ = 0;
  std::vector<double> tab_;
  std::vector<int> basis_;
  std::vector<double> shift_;       ///< structural lower bounds
  std::vector<double> upper_;       ///< structural (shifted) upper bounds
  std::vector<double> col_upper_;   ///< per-column upper bound (shifted space)
  std::vector<bool> flipped_;
  std::vector<bool> is_artificial_;
};

}  // namespace

LpResult SimplexSolver::solve(const Model& model) const {
  std::vector<double> lb(static_cast<std::size_t>(model.numVars()));
  std::vector<double> ub(static_cast<std::size_t>(model.numVars()));
  for (int j = 0; j < model.numVars(); ++j) {
    lb[static_cast<std::size_t>(j)] = model.var(j).lb;
    ub[static_cast<std::size_t>(j)] = model.var(j).ub;
  }
  return solve(model, lb, ub);
}

LpResult SimplexSolver::solve(const Model& model, std::span<const double> lb,
                              std::span<const double> ub) const {
  RFP_CHECK(static_cast<int>(lb.size()) == model.numVars());
  RFP_CHECK(static_cast<int>(ub.size()) == model.numVars());
  Stopwatch watch;
  Deadline deadline(options_.time_limit_seconds);
  LpResult result;

  // Infeasible boxes short-circuit (branch & bound produces these).
  for (int j = 0; j < model.numVars(); ++j) {
    if (lb[static_cast<std::size_t>(j)] > ub[static_cast<std::size_t>(j)] + 1e-12) {
      result.status = LpStatus::kInfeasible;
      result.seconds = watch.seconds();
      return result;
    }
  }

  Tableau tableau(model, lb, ub, options_);
  result.status = tableau.run(result.x, result.iterations, deadline);
  if (result.status == LpStatus::kOptimal)
    result.objective = model.evalObjective(result.x);
  result.seconds = watch.seconds();
  return result;
}

}  // namespace rfp::lp
