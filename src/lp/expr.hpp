// Linear-expression building blocks for the modeling API.
//
// `Var` is a lightweight handle into a `Model`; `LinExpr` is an affine
// expression  constant + Σ coef·var  with natural operator overloads, so
// formulation code reads like the paper's inequalities:
//
//   model.addConstr(x[n] + w[n] <= xa1[a] + q[n][a] * maxW, Sense::kLessEqual, 0);
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace rfp::lp {

/// Handle to a model variable (index into the owning Model).
struct Var {
  int index = -1;
  [[nodiscard]] bool valid() const noexcept { return index >= 0; }
  friend bool operator==(Var a, Var b) noexcept { return a.index == b.index; }
};

/// Affine expression: constant + Σ coef·var. Terms may repeat a variable;
/// `normalize()` merges duplicates and drops zero coefficients.
class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double constant) : constant_(constant) {}
  /*implicit*/ LinExpr(Var v) { terms_.emplace_back(v.index, 1.0); }

  void addTerm(Var v, double coef) { terms_.emplace_back(v.index, coef); }
  void addConstant(double c) { constant_ += c; }

  [[nodiscard]] double constant() const noexcept { return constant_; }
  [[nodiscard]] const std::vector<std::pair<int, double>>& terms() const noexcept {
    return terms_;
  }

  /// Merges duplicate variables and removes (near-)zero coefficients.
  void normalize(double zero_tol = 0.0);

  LinExpr& operator+=(const LinExpr& o) {
    constant_ += o.constant_;
    terms_.insert(terms_.end(), o.terms_.begin(), o.terms_.end());
    return *this;
  }
  LinExpr& operator-=(const LinExpr& o) {
    constant_ -= o.constant_;
    terms_.reserve(terms_.size() + o.terms_.size());
    for (const auto& [v, c] : o.terms_) terms_.emplace_back(v, -c);
    return *this;
  }
  LinExpr& operator*=(double s) {
    constant_ *= s;
    for (auto& [v, c] : terms_) c *= s;
    return *this;
  }

  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
  friend LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
  friend LinExpr operator-(LinExpr a) { return a *= -1.0; }
  friend LinExpr operator*(LinExpr a, double s) { return a *= s; }
  friend LinExpr operator*(double s, LinExpr a) { return a *= s; }

 private:
  double constant_ = 0.0;
  std::vector<std::pair<int, double>> terms_;
};

// Free operators so `3.0 * var` works without first converting to LinExpr
// (ADL requires a namespace-scope overload when neither operand is LinExpr).
inline LinExpr operator*(Var v, double s) { return LinExpr(v) *= s; }
inline LinExpr operator*(double s, Var v) { return LinExpr(v) *= s; }
inline LinExpr operator+(Var a, Var b) { return LinExpr(a) += LinExpr(b); }
inline LinExpr operator-(Var a, Var b) { return LinExpr(a) -= LinExpr(b); }

}  // namespace rfp::lp
