// Two-phase primal simplex for LPs with bounded variables.
//
// This is the continuous-relaxation engine under the branch-and-bound MILP
// solver (DESIGN.md §3 substitution 1: the paper relied on a commercial
// branch-and-cut solver; we implement the substrate from scratch).
//
// Algorithm: full-tableau primal simplex in standard form with
//  * finite lower bounds shifted to zero,
//  * upper bounds handled by the classic column-flip technique (a nonbasic
//    variable may sit at either bound; flipping substitutes x := U - x),
//  * phase 1 with artificial variables minimizing total infeasibility,
//  * Dantzig pricing with an automatic switch to Bland's rule after a run of
//    degenerate pivots (anti-cycling).
//
// Intended problem scale: up to a few thousand rows/columns — the sizes
// produced by the floorplanning formulations on unit-test devices. Larger
// formulations (paper-scale SDR relocation instances) go through the sparse
// revised simplex in lp/sparse/; `LpSolver` (lp/lp_solver.hpp) picks the
// engine automatically from the model's memory footprint.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lp/model.hpp"
#include "support/timer.hpp"

namespace rfp::telemetry {
struct Context;  // support/telemetry/trace.hpp
}

namespace rfp::lp {

namespace sparse {
struct Basis;
}  // namespace sparse

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit, kTimeLimit };

[[nodiscard]] const char* toString(LpStatus s) noexcept;

/// Which LP substrate solves a model: the dense two-phase tableau below, the
/// sparse revised simplex (lp/sparse/), or an automatic size-based choice.
enum class LpEngine { kAuto, kDense, kSparse };

[[nodiscard]] const char* toString(LpEngine e) noexcept;

struct LpResult {
  LpStatus status = LpStatus::kIterLimit;
  double objective = 0.0;          ///< valid when status == kOptimal
  std::vector<double> x;           ///< primal values (model variable order)
  long iterations = 0;
  double seconds = 0.0;
  LpEngine engine = LpEngine::kDense;  ///< engine that produced this result
  long refactorizations = 0;       ///< sparse engine: basis refactorizations
  bool warm_started = false;       ///< a caller-provided basis was adopted
  // Pivot-class telemetry (sparse engines; the dense tableau leaves zeros).
  long primal_pivots = 0;   ///< basis changes made by the primal simplex
  long dual_pivots = 0;     ///< basis changes made by the dual simplex
  long bound_flips = 0;     ///< bound-to-bound moves without a basis change
  long ft_updates = 0;      ///< Forrest–Tomlin factor updates applied
  // Hyper-sparse kernel telemetry: which path each triangular solve took,
  // and how many steepest-edge weight-update passes ran.
  long ftran_sparse = 0;    ///< FTRANs through the graph-driven sparse path
  long ftran_dense = 0;     ///< FTRANs through the dense sweep
  long btran_sparse = 0;    ///< BTRANs through the graph-driven sparse path
  long btran_dense = 0;     ///< BTRANs through the dense sweep
  long dse_updates = 0;     ///< steepest-edge weight recurrence applications
  /// True when the dual simplex produced this result (warm reoptimization
  /// fast path); false for primal solves and dual-infeasible fallbacks.
  bool dual_reopt = false;
  /// Sparse engine, on optimality: the optimal basis, reusable as a warm
  /// start for a nearby solve (branch & bound child nodes). Opaque.
  std::shared_ptr<const sparse::Basis> basis;
};

class SimplexSolver {
 public:
  struct Options {
    double feas_tol = 1e-7;     ///< bound/row feasibility tolerance
    double cost_tol = 1e-7;     ///< reduced-cost optimality tolerance
    double pivot_tol = 1e-9;    ///< minimum |pivot| magnitude
    long max_iterations = 200000;
    double time_limit_seconds = 0.0;  ///< <= 0: no limit
    int bland_after_degenerate = 40;  ///< switch to Bland after this many
                                      ///< consecutive degenerate pivots
    /// Cooperative cancellation, polled inside the pivot loop (a paper-scale
    /// sparse solve runs for tens of seconds — callers like the driver
    /// portfolio cannot wait for a node boundary). When set, the solve
    /// returns kTimeLimit at the next poll. The pointee must outlive solve().
    std::atomic<bool>* stop = nullptr;
    /// Solve-scoped observability (support/telemetry). The sparse engines
    /// emit refactorization instants and per-pivot samples (rate set by
    /// Context::detail_sample); null keeps the pivot loop branch-only.
    const telemetry::Context* telemetry = nullptr;
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_(options) {}

  /// Solves the continuous relaxation of `model` (integrality ignored).
  [[nodiscard]] LpResult solve(const Model& model) const;

  /// Solves with per-variable bound overrides (used by branch & bound);
  /// `lb`/`ub` must have `model.numVars()` entries.
  [[nodiscard]] LpResult solve(const Model& model, std::span<const double> lb,
                               std::span<const double> ub) const;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

}  // namespace rfp::lp
