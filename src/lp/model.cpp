#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace rfp::lp {

void LinExpr::normalize(double zero_tol) {
  if (terms_.empty()) return;
  std::sort(terms_.begin(), terms_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < terms_.size();) {
    int v = terms_[i].first;
    double c = 0.0;
    while (i < terms_.size() && terms_[i].first == v) c += terms_[i++].second;
    if (std::abs(c) > zero_tol) terms_[out++] = {v, c};
  }
  terms_.resize(out);
}

Var Model::addVar(double lb, double ub, VarType type, std::string name) {
  RFP_CHECK_MSG(lb <= ub, "variable '" << name << "': lb " << lb << " > ub " << ub);
  if (type == VarType::kBinary) {
    lb = std::max(lb, 0.0);
    ub = std::min(ub, 1.0);
  }
  vars_.push_back(VarInfo{lb, ub, type, std::move(name)});
  return Var{numVars() - 1};
}

Var Model::addContinuous(double lb, double ub, std::string name) {
  return addVar(lb, ub, VarType::kContinuous, std::move(name));
}

Var Model::addBinary(std::string name) {
  return addVar(0.0, 1.0, VarType::kBinary, std::move(name));
}

Var Model::addInteger(double lb, double ub, std::string name) {
  return addVar(lb, ub, VarType::kInteger, std::move(name));
}

int Model::addConstr(const LinExpr& expr, Sense sense, double rhs, std::string name) {
  LinExpr e = expr;
  e.normalize();
  Constraint c;
  c.terms = e.terms();
  for (const auto& [v, coef] : c.terms) {
    (void)coef;
    RFP_CHECK_MSG(v >= 0 && v < numVars(), "constraint '" << name << "' uses unknown var " << v);
  }
  c.sense = sense;
  c.rhs = rhs - e.constant();
  c.name = std::move(name);
  constrs_.push_back(std::move(c));
  return numConstrs() - 1;
}

int Model::addRange(const LinExpr& expr, double lo, double hi, std::string name) {
  RFP_CHECK_MSG(lo <= hi, "range '" << name << "': lo > hi");
  const int first = addConstr(expr, Sense::kGreaterEqual, lo, name + ".lo");
  addConstr(expr, Sense::kLessEqual, hi, name + ".hi");
  return first;
}

void Model::setObjective(const LinExpr& expr, ObjSense sense) {
  objective_ = expr;
  objective_.normalize();
  obj_sense_ = sense;
}

bool Model::hasIntegerVars() const noexcept {
  return std::any_of(vars_.begin(), vars_.end(), [](const VarInfo& v) {
    return v.type != VarType::kContinuous;
  });
}

void Model::setVarBounds(int i, double lb, double ub) {
  RFP_CHECK(i >= 0 && i < numVars());
  RFP_CHECK_MSG(lb <= ub, "setVarBounds: lb > ub for var " << i);
  vars_[i].lb = lb;
  vars_[i].ub = ub;
}

double Model::evalExpr(const LinExpr& e, std::span<const double> x) const {
  double v = e.constant();
  for (const auto& [idx, coef] : e.terms()) v += coef * x[static_cast<std::size_t>(idx)];
  return v;
}

double Model::evalObjective(std::span<const double> x) const {
  return evalExpr(objective_, x);
}

bool Model::isFeasible(std::span<const double> x, double tol) const {
  if (static_cast<int>(x.size()) != numVars()) return false;
  for (int i = 0; i < numVars(); ++i) {
    const VarInfo& v = vars_[static_cast<std::size_t>(i)];
    const double xi = x[static_cast<std::size_t>(i)];
    if (xi < v.lb - tol || xi > v.ub + tol) return false;
    if (v.type != VarType::kContinuous && std::abs(xi - std::round(xi)) > tol) return false;
  }
  for (const Constraint& c : constrs_) {
    double lhs = 0.0;
    for (const auto& [idx, coef] : c.terms) lhs += coef * x[static_cast<std::size_t>(idx)];
    switch (c.sense) {
      case Sense::kLessEqual:
        if (lhs > c.rhs + tol) return false;
        break;
      case Sense::kGreaterEqual:
        if (lhs < c.rhs - tol) return false;
        break;
      case Sense::kEqual:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string Model::toString() const {
  std::ostringstream os;
  os << (obj_sense_ == ObjSense::kMinimize ? "minimize" : "maximize") << ' ';
  for (const auto& [v, c] : objective_.terms())
    os << (c >= 0 ? "+" : "") << c << "*x" << v << ' ';
  if (objective_.constant() != 0.0) os << "+" << objective_.constant();
  os << '\n';
  for (const Constraint& c : constrs_) {
    os << "  " << (c.name.empty() ? "c" : c.name) << ": ";
    for (const auto& [v, coef] : c.terms) os << (coef >= 0 ? "+" : "") << coef << "*x" << v << ' ';
    switch (c.sense) {
      case Sense::kLessEqual: os << "<= "; break;
      case Sense::kGreaterEqual: os << ">= "; break;
      case Sense::kEqual: os << "== "; break;
    }
    os << c.rhs << '\n';
  }
  for (int i = 0; i < numVars(); ++i) {
    const VarInfo& v = vars_[static_cast<std::size_t>(i)];
    os << "  x" << i << " in [" << v.lb << ", " << v.ub << "]"
       << (v.type == VarType::kContinuous ? "" : v.type == VarType::kBinary ? " bin" : " int");
    if (!v.name.empty()) os << "  # " << v.name;
    os << '\n';
  }
  return os.str();
}

}  // namespace rfp::lp
