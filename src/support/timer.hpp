// Wall-clock stopwatch and deadline helpers used by the solvers.
#pragma once

#include <chrono>

namespace rfp {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget; `expired()` is cheap enough to poll in inner loops.
class Deadline {
 public:
  /// `limit_seconds <= 0` means "no limit".
  explicit Deadline(double limit_seconds = 0.0) : limit_(limit_seconds) {}

  [[nodiscard]] bool expired() const {
    return limit_ > 0.0 && watch_.seconds() >= limit_;
  }

  [[nodiscard]] double remaining() const {
    if (limit_ <= 0.0) return 1e30;
    return limit_ - watch_.seconds();
  }

  [[nodiscard]] double limit() const { return limit_; }
  [[nodiscard]] double elapsed() const { return watch_.seconds(); }

 private:
  double limit_;
  Stopwatch watch_;
};

}  // namespace rfp
