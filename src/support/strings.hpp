// Small string utilities shared by the device parser and result writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rfp::str {

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string trim(std::string_view s);

/// Splits on a delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Splits on runs of whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> splitWhitespace(std::string_view s);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII.
[[nodiscard]] std::string toLower(std::string_view s);

/// printf-style float formatting with fixed precision, locale-independent.
[[nodiscard]] std::string formatDouble(double v, int precision = 3);

}  // namespace rfp::str
