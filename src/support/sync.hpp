// Annotated synchronization layer: the repo's only sanctioned spelling of a
// mutex, lock guard, or condition variable.
//
// Five concurrency machines (work-stealing B&B deques, the SharedIncumbent
// exchange, the ResultCache flight table, the batch pool, the telemetry
// registry) each carry a locking discipline that used to live only in
// comments and TSan runs. This header moves those contracts into the type
// system: every primitive is wrapped in a Clang thread-safety-annotated
// type, shared state declares its guard with RFP_GUARDED_BY, and functions
// declare lock requirements with RFP_REQUIRES / RFP_ACQUIRE / RFP_RELEASE.
// Clang then checks every access on every PR (`-Wthread-safety`, -Werror in
// CI); on GCC the annotations expand to nothing and the wrappers compile to
// exactly the std primitives they hold.
//
// Repo contract (enforced by scripts/lint_contracts.py): no raw
// `std::mutex` / `std::lock_guard` / `std::unique_lock` /
// `std::condition_variable` anywhere in src/ outside this header. New
// shared state must be declared RFP_GUARDED_BY its mutex; new lock-taking
// helpers must be annotated. The lock-ordering hierarchy lives in
// CONTRIBUTING.md ("Concurrency contracts"): incumbent < cache < flight <
// telemetry — never take a lower lock while holding a higher one.
//
// The negative-compile tests under tests/negative_compile/ prove the gate
// fires: an unguarded RFP_GUARDED_BY access and an unreleased lock must
// fail to compile under clang -Wthread-safety -Werror (and must compile
// cleanly under GCC, where the macros are no-ops).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---- Clang capability-annotation macros ------------------------------------
//
// The RFP_ prefix keeps these greppable and collision-free. On non-Clang
// compilers (and under SWIG-style tooling without attribute support) every
// macro expands to nothing.
#if defined(__clang__) && defined(__has_attribute)
#define RFP_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define RFP_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a capability ("mutex" in diagnostics).
#define RFP_CAPABILITY(x) RFP_THREAD_ANNOTATION__(capability(x))
/// Declares a RAII type whose lifetime holds a capability.
#define RFP_SCOPED_CAPABILITY RFP_THREAD_ANNOTATION__(scoped_lockable)
/// Data member readable/writable only while holding the named capability.
#define RFP_GUARDED_BY(x) RFP_THREAD_ANNOTATION__(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the named capability.
#define RFP_PT_GUARDED_BY(x) RFP_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Function precondition: the listed capabilities are held by the caller.
#define RFP_REQUIRES(...) RFP_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on return).
#define RFP_ACQUIRE(...) RFP_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities (not held on return).
#define RFP_RELEASE(...) RFP_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `ret`.
#define RFP_TRY_ACQUIRE(ret, ...) \
  RFP_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))
/// Function must be called *without* the listed capabilities held
/// (deadlock guard for self-locking entry points).
#define RFP_EXCLUDES(...) RFP_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Documents (and checks, where both are annotated) lock-order edges.
#define RFP_ACQUIRED_BEFORE(...) RFP_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define RFP_ACQUIRED_AFTER(...) RFP_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
/// Escape hatch. Every use must carry a comment explaining why the analysis
/// cannot see the synchronization (e.g. happens-before via thread join).
#define RFP_NO_THREAD_SAFETY_ANALYSIS RFP_THREAD_ANNOTATION__(no_thread_safety_analysis)
/// Asserts at runtime-checked boundaries that the capability is held.
#define RFP_ASSERT_CAPABILITY(x) RFP_THREAD_ANNOTATION__(assert_capability(x))

namespace rfp::sync {

/// `std::mutex` as a Clang capability. Same size, same semantics; the
/// wrapper exists so GUARDED_BY declarations have something to name and so
/// lock()/unlock() carry acquire/release annotations.
class RFP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RFP_ACQUIRE() { mu_.lock(); }
  void unlock() RFP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() RFP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped primitive — for CondVar's adopt/release dance only; code
  /// outside this header has no reason to touch it.
  [[nodiscard]] std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// `std::lock_guard` over a Mutex: scope-held, no unlock.
class RFP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RFP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RFP_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Adopts a mutex the caller already holds (e.g. via a successful
/// Mutex::try_lock) and releases it on scope exit. The REQUIRES-annotated
/// constructor transfers the held capability into the scope — the
/// documented adopt_lock idiom for scoped capabilities.
class RFP_SCOPED_CAPABILITY AdoptLock {
 public:
  AdoptLock(Mutex& mu, std::adopt_lock_t) RFP_REQUIRES(mu) : mu_(mu) {}
  ~AdoptLock() RFP_RELEASE() { mu_.unlock(); }
  AdoptLock(const AdoptLock&) = delete;
  AdoptLock& operator=(const AdoptLock&) = delete;

 private:
  Mutex& mu_;
};

/// `std::unique_lock` over a Mutex: scope-held with manual unlock/relock
/// (the shape CondVar::wait and publish-outside-the-lock flows need).
class RFP_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) RFP_ACQUIRE(mu) : mu_(&mu), owned_(true) { mu_->lock(); }
  ~UniqueLock() RFP_RELEASE() {
    if (owned_) mu_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() RFP_ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }
  void unlock() RFP_RELEASE() {
    mu_->unlock();
    owned_ = false;
  }
  [[nodiscard]] bool owns_lock() const noexcept { return owned_; }
  [[nodiscard]] Mutex* mutex() const noexcept { return mu_; }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool owned_;
};

/// `std::condition_variable` over UniqueLock. The waits atomically release
/// the lock and reacquire it before returning, so from the caller's (and
/// the analysis') point of view the lock is held continuously across a
/// wait — which is exactly the guarantee the guarded predicate needs.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  // The implementations adopt the already-held native mutex into a
  // transient std::unique_lock for the std wait call, then release it back
  // unlocked-side-effect-free. The analysis cannot follow that dance, and
  // must not: callers keep "lock held" state across the call, matching the
  // condition-variable contract.
  void wait(UniqueLock& lock) RFP_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(lock.mu_->native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <class Predicate>
  void wait(UniqueLock& lock, Predicate pred) RFP_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(lock.mu_->native(), std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock, const std::chrono::duration<Rep, Period>& dur)
      RFP_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(lock.mu_->native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_for(native, dur);
    native.release();
    return st;
  }

  template <class Rep, class Period, class Predicate>
  bool wait_for(UniqueLock& lock, const std::chrono::duration<Rep, Period>& dur, Predicate pred)
      RFP_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(lock.mu_->native(), std::adopt_lock);
    const bool satisfied = cv_.wait_for(native, dur, std::move(pred));
    native.release();
    return satisfied;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace rfp::sync
