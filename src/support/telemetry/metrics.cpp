#include "support/telemetry/metrics.hpp"

#include <cmath>

namespace rfp::telemetry {

int threadSlot() noexcept {
  static std::atomic<int> next{0};
  thread_local int slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

namespace {

int bucketOf(double v) noexcept {
  if (!(v >= 1.0)) return 0;  // [0,1) and any NaN/negative junk
  const int b = std::ilogb(v) + 1;
  return b >= Histogram::kBuckets ? Histogram::kBuckets - 1 : b;
}

}  // namespace

void Histogram::record(double v) noexcept {
  Shard& s = shards_[threadSlot() % detail::kShards];
  s.buckets[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  // No fetch_add for atomic doubles pre-C++20-TS on all stdlibs; a CAS loop
  // on the bit pattern keeps the sum exact without a lock.
  std::uint64_t old = s.sum_bits.load(std::memory_order_relaxed);
  for (;;) {
    const double updated = std::bit_cast<double>(old) + v;
    if (s.sum_bits.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(updated),
                                         std::memory_order_relaxed))
      break;
  }
}

double Histogram::Snapshot::maxEdge() const noexcept {
  for (int k = kBuckets - 1; k >= 0; --k)
    if (buckets[k] > 0) return std::ldexp(1.0, k);
  return 0.0;
}

double Histogram::Snapshot::quantileEdge(double q) const noexcept {
  if (count <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  long seen = 0;
  for (int k = 0; k < kBuckets; ++k) {
    seen += buckets[k];
    if (static_cast<double>(seen) >= target && buckets[k] > 0) return std::ldexp(1.0, k);
  }
  return maxEdge();
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot out;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += std::bit_cast<double>(s.sum_bits.load(std::memory_order_relaxed));
    for (int k = 0; k < kBuckets; ++k)
      out.buckets[k] += s.buckets[k].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const sync::MutexLock lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const sync::MutexLock lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const sync::MutexLock lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, MetricValue> MetricsRegistry::snapshot() const {
  const sync::MutexLock lk(mu_);
  std::map<std::string, MetricValue> out;
  for (const auto& [name, c] : counters_) {
    MetricValue v;
    v.kind = MetricValue::Kind::kCounter;
    v.value = static_cast<double>(c->total());
    out.emplace(name, v);
  }
  for (const auto& [name, g] : gauges_) {
    MetricValue v;
    v.kind = MetricValue::Kind::kGauge;
    v.value = g->value();
    out.emplace(name, v);
  }
  for (const auto& [name, h] : histograms_) {
    MetricValue v;
    v.kind = MetricValue::Kind::kHistogram;
    v.hist = h->snapshot();
    v.value = v.hist.mean();
    out.emplace(name, v);
  }
  return out;
}

std::map<std::string, double> MetricsRegistry::flatten() const {
  std::map<std::string, double> out;
  for (const auto& [name, v] : snapshot()) {
    if (v.kind == MetricValue::Kind::kHistogram) {
      out[name + ".count"] = static_cast<double>(v.hist.count);
      out[name + ".mean"] = v.hist.mean();
      out[name + ".max"] = v.hist.maxEdge();
    } else {
      out[name] = v.value;
    }
  }
  return out;
}

}  // namespace rfp::telemetry
