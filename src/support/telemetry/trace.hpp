// TraceRecorder: RAII spans into per-thread ring buffers, exported as
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// A solve threads one `telemetry::Context*` through its engines alongside
// the existing stop-flag/incumbent pointers; everything hangs off that
// pointer and a null context costs exactly one branch per instrumentation
// site. When a recorder is attached, emitting an event is a couple of
// steady_clock reads plus a store into the calling thread's ring lane — no
// lock, no allocation (event names and categories must be string literals;
// the recorder stores the pointers). Lanes are registered under a mutex on
// a thread's first event and cached in a thread_local keyed by recorder id,
// so a recorder destroyed and recreated at the same address can never serve
// a stale lane.
//
// Export (`toChromeJson`) must happen after writers have quiesced — the
// engines join their workers before returning, so the driver/CLI call sites
// satisfy this by construction. Rings overwrite oldest events when full and
// report the overwritten count through `dropped()`.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "support/sync.hpp"
#include "support/telemetry/metrics.hpp"

namespace rfp::telemetry {

/// One trace event. POD on purpose: recording must not allocate, so the
/// name/category/arg-key pointers must have static storage duration
/// (string literals at every call site in this repo).
struct TraceEvent {
  const char* cat = "";
  const char* name = "";
  double ts_us = 0.0;   // relative to the recorder's epoch
  double dur_us = 0.0;  // 'X' events only
  char ph = 'X';        // 'X' complete, 'i' instant
  int nargs = 0;
  const char* akey[2] = {nullptr, nullptr};
  double aval[2] = {0.0, 0.0};
  const char* skey = nullptr;  // optional string arg (literal)
  const char* sval = nullptr;
};

class TraceRecorder {
 public:
  /// `lane_capacity` bounds events kept per thread (oldest overwritten).
  explicit TraceRecorder(std::size_t lane_capacity = 1 << 15);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since this recorder was constructed.
  [[nodiscard]] double nowUs() const noexcept;

  /// Record a completed span ('X') on the calling thread's lane.
  void complete(const TraceEvent& ev);
  /// Record an instant event ('i') stamped with the current time.
  void instant(const char* cat, const char* name, const char* akey = nullptr,
               double aval = 0.0, const char* skey = nullptr,
               const char* sval = nullptr);

  /// Label the calling thread's lane in the exported timeline
  /// (e.g. "search-worker-3"). Truncated to the lane's fixed buffer.
  void nameThread(const char* name);

  /// Events overwritten because a lane wrapped.
  [[nodiscard]] long dropped() const;
  /// Events currently retained across all lanes.
  [[nodiscard]] long retained() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]} with per-lane
  /// thread_name metadata, events sorted by timestamp. Call only after
  /// writer threads have quiesced.
  [[nodiscard]] std::string toChromeJson() const;

 private:
  struct Lane {
    int tid = 0;
    char name[48] = {};
    std::uint64_t written = 0;  // total appends; ring holds the newest
    std::vector<TraceEvent> ring;
  };
  Lane& lane();

  std::uint64_t id_ = 0;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  // Guards lane *registration* (the lanes_ vector) only. A Lane's contents
  // are single-owner: written lock-free by the thread the lane belongs to,
  // read by the exporters after writers have quiesced (the class contract).
  // Top tier of the lock-ordering hierarchy, like the metrics registry.
  mutable sync::Mutex mu_;
  std::vector<std::unique_ptr<Lane>> lanes_ RFP_GUARDED_BY(mu_);
};

/// The solve-scoped observability context threaded through engine option
/// structs next to the stop flag and shared incumbent. Either pointer may
/// be null independently; a fully-null context is equivalent to passing no
/// context at all.
struct Context {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  /// Emit 1-in-N of the highest-frequency instants (per-LP-node reopt
  /// events, per-pivot samples). 1 = every event, 0 disables them while
  /// keeping coarse spans.
  int detail_sample = 16;
};

/// True when the n-th high-frequency event should be emitted under the
/// context's sampling knob.
inline bool sampleHit(const Context* ctx, std::uint64_t n) noexcept {
  return ctx != nullptr && ctx->trace != nullptr && ctx->detail_sample > 0 &&
         n % static_cast<std::uint64_t>(ctx->detail_sample) == 0;
}

/// RAII span: records a complete ('X') event covering its lifetime on the
/// owning context's recorder. With a null context (or null recorder) the
/// constructor and destructor each cost one branch.
class Span {
 public:
  Span() = default;
  Span(const Context* ctx, const char* cat, const char* name) {
    if (ctx != nullptr && ctx->trace != nullptr) begin(ctx->trace, cat, name);
  }
  Span(TraceRecorder* rec, const char* cat, const char* name) {
    if (rec != nullptr) begin(rec, cat, name);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept : rec_(o.rec_), ev_(o.ev_) { o.rec_ = nullptr; }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      finish();
      rec_ = o.rec_;
      ev_ = o.ev_;
      o.rec_ = nullptr;
    }
    return *this;
  }
  ~Span() { finish(); }

  /// Attach a numeric arg (up to two; extras dropped). Key must be a
  /// string literal.
  void arg(const char* key, double value) noexcept {
    if (rec_ != nullptr && ev_.nargs < 2) {
      ev_.akey[ev_.nargs] = key;
      ev_.aval[ev_.nargs] = value;
      ++ev_.nargs;
    }
  }
  /// Attach the single string arg (literal only).
  void note(const char* key, const char* literal) noexcept {
    if (rec_ != nullptr) {
      ev_.skey = key;
      ev_.sval = literal;
    }
  }
  [[nodiscard]] bool active() const noexcept { return rec_ != nullptr; }

  /// Close the span early (idempotent).
  void finish() {
    if (rec_ == nullptr) return;
    ev_.dur_us = rec_->nowUs() - ev_.ts_us;
    rec_->complete(ev_);
    rec_ = nullptr;
  }

 private:
  void begin(TraceRecorder* rec, const char* cat, const char* name) {
    rec_ = rec;
    ev_.cat = cat;
    ev_.name = name;
    ev_.ph = 'X';
    ev_.ts_us = rec->nowUs();
  }
  TraceRecorder* rec_ = nullptr;
  TraceEvent ev_;
};

/// Instant-event helper with the null-context branch inlined.
inline void instant(const Context* ctx, const char* cat, const char* name,
                    const char* akey = nullptr, double aval = 0.0,
                    const char* skey = nullptr, const char* sval = nullptr) {
  if (ctx != nullptr && ctx->trace != nullptr)
    ctx->trace->instant(cat, name, akey, aval, skey, sval);
}

/// Counter-bump helper mirroring `instant`'s null tolerance.
inline void bump(const Context* ctx, Counter* c, long n = 1) noexcept {
  (void)ctx;
  if (c != nullptr) c->add(n);
}

/// Summary returned by `validateChromeTrace`.
struct TraceSummary {
  bool ok = false;
  std::string error;
  long events = 0;           // non-metadata events
  std::set<std::string> categories;
  std::set<std::string> names;
};

/// Parses Chrome trace-event JSON back (full recursive-descent JSON parse,
/// no external deps) and checks the trace-event schema: top-level object
/// with a `traceEvents` array whose entries carry `name`/`ph`/`ts`/`pid`/
/// `tid`. Used by the round-trip tests and `rfp_cli --trace` verification.
[[nodiscard]] TraceSummary validateChromeTrace(const std::string& json);

}  // namespace rfp::telemetry
