#include "support/telemetry/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rfp::telemetry {

namespace {

std::uint64_t nextRecorderId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Thread-local lane cache. Keyed by recorder id (not address): a recorder
// destroyed and a new one constructed at the same address must miss.
struct LaneRef {
  std::uint64_t recorder_id = 0;
  void* lane = nullptr;
};

thread_local LaneRef t_lane;

}  // namespace

TraceRecorder::TraceRecorder(std::size_t lane_capacity)
    : id_(nextRecorderId()),
      capacity_(lane_capacity == 0 ? 1 : lane_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::nowUs() const noexcept {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::Lane& TraceRecorder::lane() {
  if (t_lane.recorder_id == id_) return *static_cast<Lane*>(t_lane.lane);
  const sync::MutexLock lk(mu_);
  lanes_.push_back(std::make_unique<Lane>());
  Lane& l = *lanes_.back();
  l.tid = static_cast<int>(lanes_.size());
  l.ring.reserve(std::min<std::size_t>(capacity_, 256));
  t_lane.recorder_id = id_;
  t_lane.lane = &l;
  return l;
}

void TraceRecorder::complete(const TraceEvent& ev) {
  Lane& l = lane();
  if (l.ring.size() < capacity_) {
    l.ring.push_back(ev);
  } else {
    l.ring[l.written % capacity_] = ev;
  }
  ++l.written;
}

void TraceRecorder::instant(const char* cat, const char* name, const char* akey, double aval,
                            const char* skey, const char* sval) {
  TraceEvent ev;
  ev.cat = cat;
  ev.name = name;
  ev.ph = 'i';
  ev.ts_us = nowUs();
  if (akey != nullptr) {
    ev.akey[0] = akey;
    ev.aval[0] = aval;
    ev.nargs = 1;
  }
  ev.skey = skey;
  ev.sval = sval;
  complete(ev);
}

void TraceRecorder::nameThread(const char* name) {
  Lane& l = lane();
  std::snprintf(l.name, sizeof(l.name), "%s", name);
}

long TraceRecorder::dropped() const {
  const sync::MutexLock lk(mu_);
  long n = 0;
  for (const auto& l : lanes_)
    if (l->written > l->ring.size()) n += static_cast<long>(l->written - l->ring.size());
  return n;
}

long TraceRecorder::retained() const {
  const sync::MutexLock lk(mu_);
  long n = 0;
  for (const auto& l : lanes_) n += static_cast<long>(l->ring.size());
  return n;
}

namespace {

void appendEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void appendNumber(std::string& out, double v) {
  char buf[32];
  // %.3f keeps sub-microsecond precision on timestamps while staying
  // strictly JSON-legal (no inf/nan should reach here; clamp just in case).
  if (!(v > -1e300 && v < 1e300)) v = 0.0;
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

void appendEvent(std::string& out, const TraceEvent& ev, int tid) {
  out += "{\"name\":\"";
  appendEscaped(out, ev.name);
  out += "\",\"cat\":\"";
  appendEscaped(out, ev.cat);
  out += "\",\"ph\":\"";
  out += ev.ph;
  out += "\",\"ts\":";
  appendNumber(out, ev.ts_us);
  if (ev.ph == 'X') {
    out += ",\"dur\":";
    appendNumber(out, ev.dur_us);
  }
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  if (ev.nargs > 0 || ev.skey != nullptr) {
    out += ",\"args\":{";
    bool first = true;
    for (int i = 0; i < ev.nargs; ++i) {
      if (!first) out += ',';
      first = false;
      out += '"';
      appendEscaped(out, ev.akey[i]);
      out += "\":";
      appendNumber(out, ev.aval[i]);
    }
    if (ev.skey != nullptr && ev.sval != nullptr) {
      if (!first) out += ',';
      out += '"';
      appendEscaped(out, ev.skey);
      out += "\":\"";
      appendEscaped(out, ev.sval);
      out += '"';
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

std::string TraceRecorder::toChromeJson() const {
  struct Indexed {
    const TraceEvent* ev;
    int tid;
  };
  std::vector<Indexed> all;
  std::string out;
  {
    const sync::MutexLock lk(mu_);
    for (const auto& l : lanes_)
      for (const TraceEvent& ev : l->ring) all.push_back({&ev, l->tid});
    std::stable_sort(all.begin(), all.end(),
                     [](const Indexed& a, const Indexed& b) { return a.ev->ts_us < b.ev->ts_us; });
    out.reserve(all.size() * 128 + 256);
    out += "{\"traceEvents\":[";
    bool first = true;
    // Perfetto labels timeline rows from thread_name metadata events.
    for (const auto& l : lanes_) {
      if (l->name[0] == '\0') continue;
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
      out += std::to_string(l->tid);
      out += ",\"args\":{\"name\":\"";
      appendEscaped(out, l->name);
      out += "\"}}";
    }
    for (const Indexed& e : all) {
      if (!first) out += ',';
      first = false;
      appendEvent(out, *e.ev, e.tid);
    }
    out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":";
    long dropped_n = 0;
    for (const auto& l : lanes_)
      if (l->written > l->ring.size())
        dropped_n += static_cast<long>(l->written - l->ring.size());
    out += std::to_string(dropped_n);
    out += "}}";
  }
  return out;
}

// ---- trace-event JSON validation -------------------------------------------
//
// A deliberately small recursive-descent JSON parser: the repo has a JSON
// *writer* but no reader, and the round-trip test ("parse the emitted trace
// back") plus `rfp_cli --trace` verification need one. It parses arbitrary
// JSON for structure and additionally records trace-event fields while
// walking the `traceEvents` array.

namespace {

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : s_(text) {}

  bool fail(const std::string& msg) {
    if (error_.empty()) error_ = msg + " at offset " + std::to_string(p_);
    return false;
  }
  [[nodiscard]] const std::string& error() const { return error_; }

  void skipWs() {
    while (p_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[p_])) != 0) ++p_;
  }
  bool atEnd() {
    skipWs();
    return p_ >= s_.size();
  }
  bool consume(char c) {
    skipWs();
    if (p_ < s_.size() && s_[p_] == c) {
      ++p_;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skipWs();
    return p_ < s_.size() && s_[p_] == c;
  }

  bool parseString(std::string* out) {
    skipWs();
    if (p_ >= s_.size() || s_[p_] != '"') return fail("expected string");
    ++p_;
    std::string v;
    while (p_ < s_.size() && s_[p_] != '"') {
      char c = s_[p_++];
      if (c == '\\') {
        if (p_ >= s_.size()) return fail("bad escape");
        const char e = s_[p_++];
        switch (e) {
          case '"': v += '"'; break;
          case '\\': v += '\\'; break;
          case '/': v += '/'; break;
          case 'n': v += '\n'; break;
          case 't': v += '\t'; break;
          case 'r': v += '\r'; break;
          case 'b': v += '\b'; break;
          case 'f': v += '\f'; break;
          case 'u': {
            if (p_ + 4 > s_.size()) return fail("bad \\u escape");
            for (int i = 0; i < 4; ++i)
              if (std::isxdigit(static_cast<unsigned char>(s_[p_ + i])) == 0)
                return fail("bad \\u escape");
            p_ += 4;
            v += '?';  // structural validation only; code point value unused
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        v += c;
      }
    }
    if (p_ >= s_.size()) return fail("unterminated string");
    ++p_;  // closing quote
    if (out != nullptr) *out = v;
    return true;
  }

  bool parseNumber(double* out) {
    skipWs();
    const std::size_t start = p_;
    if (p_ < s_.size() && (s_[p_] == '-' || s_[p_] == '+')) ++p_;
    bool digits = false;
    auto eatDigits = [&] {
      while (p_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[p_])) != 0) {
        ++p_;
        digits = true;
      }
    };
    eatDigits();
    if (p_ < s_.size() && s_[p_] == '.') {
      ++p_;
      eatDigits();
    }
    if (digits && p_ < s_.size() && (s_[p_] == 'e' || s_[p_] == 'E')) {
      ++p_;
      if (p_ < s_.size() && (s_[p_] == '-' || s_[p_] == '+')) ++p_;
      eatDigits();
    }
    if (!digits) return fail("expected number");
    if (out != nullptr) *out = std::strtod(s_.c_str() + start, nullptr);
    return true;
  }

  bool parseLiteral(const char* lit) {
    skipWs();
    const std::size_t n = std::strlen(lit);
    if (s_.compare(p_, n, lit) != 0) return fail("expected literal");
    p_ += n;
    return true;
  }

 private:
  const std::string& s_;
  std::size_t p_ = 0;
  std::string error_;
};

// Forward decl: generic value skipper used for nested unknown content.
bool skipValue(JsonCursor& c);

bool skipObject(JsonCursor& c) {
  if (!c.consume('{')) return c.fail("expected object");
  if (c.consume('}')) return true;
  do {
    if (!c.parseString(nullptr)) return false;
    if (!c.consume(':')) return c.fail("expected ':'");
    if (!skipValue(c)) return false;
  } while (c.consume(','));
  if (!c.consume('}')) return c.fail("expected '}'");
  return true;
}

bool skipArray(JsonCursor& c) {
  if (!c.consume('[')) return c.fail("expected array");
  if (c.consume(']')) return true;
  do {
    if (!skipValue(c)) return false;
  } while (c.consume(','));
  if (!c.consume(']')) return c.fail("expected ']'");
  return true;
}

bool skipValue(JsonCursor& c) {
  if (c.peek('{')) return skipObject(c);
  if (c.peek('[')) return skipArray(c);
  if (c.peek('"')) return c.parseString(nullptr);
  if (c.peek('t')) return c.parseLiteral("true");
  if (c.peek('f')) return c.parseLiteral("false");
  if (c.peek('n')) return c.parseLiteral("null");
  return c.parseNumber(nullptr);
}

// One entry of the traceEvents array: validate required keys and collect
// the category/name sets.
bool parseEvent(JsonCursor& c, TraceSummary* out) {
  if (!c.consume('{')) return c.fail("event must be an object");
  std::string name, cat, ph;
  bool has_ts = false, has_pid = false, has_tid = false;
  if (!c.consume('}')) {
    do {
      std::string key;
      if (!c.parseString(&key)) return false;
      if (!c.consume(':')) return c.fail("expected ':'");
      if (key == "name") {
        if (!c.parseString(&name)) return false;
      } else if (key == "cat") {
        if (!c.parseString(&cat)) return false;
      } else if (key == "ph") {
        if (!c.parseString(&ph)) return false;
      } else if (key == "ts") {
        double v = 0;
        if (!c.parseNumber(&v)) return false;
        has_ts = true;
      } else if (key == "pid") {
        double v = 0;
        if (!c.parseNumber(&v)) return false;
        has_pid = true;
      } else if (key == "tid") {
        double v = 0;
        if (!c.parseNumber(&v)) return false;
        has_tid = true;
      } else {
        if (!skipValue(c)) return false;
      }
    } while (c.consume(','));
    if (!c.consume('}')) return c.fail("expected '}' closing event");
  }
  if (name.empty()) return c.fail("event missing name");
  if (ph.empty()) return c.fail("event missing ph");
  if (!has_pid || !has_tid) return c.fail("event missing pid/tid");
  if (ph == "M") return true;  // metadata rows carry no ts/cat
  if (!has_ts) return c.fail("event missing ts");
  ++out->events;
  if (!cat.empty()) out->categories.insert(cat);
  out->names.insert(name);
  return true;
}

}  // namespace

TraceSummary validateChromeTrace(const std::string& json) {
  TraceSummary out;
  JsonCursor c(json);
  bool saw_events = false;
  bool ok = [&] {
    if (!c.consume('{')) return c.fail("top level must be an object");
    if (c.consume('}')) return true;
    do {
      std::string key;
      if (!c.parseString(&key)) return false;
      if (!c.consume(':')) return c.fail("expected ':'");
      if (key == "traceEvents") {
        saw_events = true;
        if (!c.consume('[')) return c.fail("traceEvents must be an array");
        if (!c.consume(']')) {
          do {
            if (!parseEvent(c, &out)) return false;
          } while (c.consume(','));
          if (!c.consume(']')) return c.fail("expected ']' closing traceEvents");
        }
      } else {
        if (!skipValue(c)) return false;
      }
    } while (c.consume(','));
    if (!c.consume('}')) return c.fail("expected '}' closing top level");
    if (!c.atEnd()) return c.fail("trailing content");
    return true;
  }();
  if (ok && !saw_events) {
    ok = false;
    c.fail("missing traceEvents");
  }
  out.ok = ok;
  out.error = c.error();
  return out;
}

}  // namespace rfp::telemetry
