// MetricsRegistry: named counters, gauges, and log-bucketed histograms with
// per-thread sharded accumulation.
//
// Six PRs of engine work each grew a private counter struct (`LpStats`,
// per-worker steal telemetry, `CacheStats`); this registry is the shared
// substrate they aggregate through. The design constraint is the hot path:
// branch & bound flushes node counts every 1024 nodes and the LP engines
// count pivots per node, so an update must never take a lock or contend a
// single cache line across workers. Each instrument therefore owns a small
// array of cacheline-padded atomic shards; a thread bumps the shard picked
// by its (process-wide, monotonically assigned) slot with a relaxed
// fetch_add, and `snapshot()` sums shards. Sums are exact once writers have
// quiesced (joined threads, finished solve) — the only reader the engines
// support anyway — and monotonically fresh while they run, which is all the
// progress ticker needs.
//
// Instrument handles returned by `counter()` / `gauge()` / `histogram()`
// are stable for the registry's lifetime (instruments are never removed),
// so callers resolve names once at solve start and bump through the pointer
// afterwards. Name lookup takes the registry mutex; updates never do.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/sync.hpp"

namespace rfp::telemetry {

/// Process-wide small integer id for the calling thread, assigned on first
/// use. Shard index = slot % kShards; distinct live threads usually land on
/// distinct shards, and correctness never depends on it.
int threadSlot() noexcept;

namespace detail {
constexpr int kShards = 16;

struct alignas(64) PaddedCount {
  std::atomic<long> v{0};
};
}  // namespace detail

/// Monotonic counter. `add` is wait-free and never contends across threads
/// with distinct slots.
class Counter {
 public:
  void add(long n) noexcept {
    shards_[threadSlot() % detail::kShards].v.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  [[nodiscard]] long total() const noexcept {
    long sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  detail::PaddedCount shards_[detail::kShards];
};

/// Last-writer-wins instantaneous value (doubles stored bit-cast so set/get
/// stay lock-free on every target).
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Log2-bucketed histogram of non-negative samples. Bucket k holds samples
/// in [2^(k-1), 2^k) (bucket 0 holds [0, 1)), so 48 buckets cover anything
/// from a sub-microsecond pivot to hours expressed in microseconds. Sum and
/// count ride along per shard for exact means.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void record(double v) noexcept;

  struct Snapshot {
    long count = 0;
    double sum = 0.0;
    long buckets[kBuckets] = {};
    /// Upper edge (2^k) of the highest non-empty bucket, 0 when empty.
    [[nodiscard]] double maxEdge() const noexcept;
    [[nodiscard]] double mean() const noexcept { return count > 0 ? sum / count : 0.0; }
    /// Upper edge of the bucket containing the q-quantile sample (0<=q<=1).
    [[nodiscard]] double quantileEdge(double q) const noexcept;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<long> buckets[kBuckets] = {};
    std::atomic<long> count{0};
    std::atomic<std::uint64_t> sum_bits{0};  // accumulated via CAS loop
  };
  Shard shards_[detail::kShards];
};

/// One flattened metric value in a snapshot.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  double value = 0.0;  // counter total or gauge value; histogram mean
  Histogram::Snapshot hist;  // populated for histograms only
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. The returned reference stays valid for the
  /// registry's lifetime. Kind mismatches (a counter name reused as a
  /// gauge) create independent instruments per kind namespace.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time aggregation of every instrument, keyed by name.
  [[nodiscard]] std::map<std::string, MetricValue> snapshot() const;

  /// Snapshot flattened to name -> number for export surfaces
  /// (`SolveResponse::metrics`, JSON): counters and gauges map directly;
  /// a histogram `h` contributes `h.count`, `h.mean`, and `h.max`.
  [[nodiscard]] std::map<std::string, double> flatten() const;

 private:
  // Guards name lookup only — the instruments themselves are lock-free
  // shards, and the unique_ptrs are never reassigned once created (handle
  // stability). Top of the lock-ordering hierarchy (CONTRIBUTING.md):
  // nothing else may be acquired while this is held.
  mutable sync::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ RFP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ RFP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ RFP_GUARDED_BY(mu_);
};

}  // namespace rfp::telemetry
