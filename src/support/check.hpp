// Lightweight runtime-check macros used across the library.
//
// RFP_CHECK fires in all build types (it guards API contracts and solver
// invariants whose violation would silently corrupt results). Failures throw
// rfp::CheckError so callers and tests can observe them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rfp {

/// Exception thrown when a runtime contract check fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void checkFail(const char* expr, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace rfp

#define RFP_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::rfp::detail::checkFail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define RFP_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream os_;                                          \
      os_ << msg;                                                      \
      ::rfp::detail::checkFail(#expr, __FILE__, __LINE__, os_.str());  \
    }                                                                  \
  } while (0)
