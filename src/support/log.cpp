#include "support/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "support/sync.hpp"

namespace rfp::log {
namespace {

int initialLevel() noexcept {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): runs once during static init of
  // g_level, before any engine thread exists; nothing calls setenv.
  const char* env = std::getenv("RFP_LOG_LEVEL");
  const Level fallback = Level::kWarn;
  if (env == nullptr) return static_cast<int>(fallback);
  return static_cast<int>(levelFromString(env, fallback));
}

std::atomic<int> g_level{initialLevel()};
sync::Mutex g_emit_mutex;
FILE* g_sink RFP_GUARDED_BY(g_emit_mutex) = nullptr;  // nullptr = stderr

const char* levelName(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void setLevel(Level level) noexcept { g_level.store(static_cast<int>(level)); }

Level level() noexcept { return static_cast<Level>(g_level.load()); }

Level levelFromString(const std::string& name, Level fallback) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return Level::kTrace;
  if (lower == "debug") return Level::kDebug;
  if (lower == "info") return Level::kInfo;
  if (lower == "warn" || lower == "warning") return Level::kWarn;
  if (lower == "error") return Level::kError;
  if (lower == "off" || lower == "none") return Level::kOff;
  return fallback;
}

bool setLogFile(const std::string& path) {
  const sync::MutexLock lock(g_emit_mutex);
  if (path.empty()) {
    if (g_sink != nullptr) std::fclose(g_sink);
    g_sink = nullptr;
    return true;
  }
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  if (g_sink != nullptr) std::fclose(g_sink);
  g_sink = f;
  return true;
}

void emit(Level level, const std::string& message) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double t = std::chrono::duration<double>(Clock::now() - start).count();
  const sync::MutexLock lock(g_emit_mutex);
  FILE* out = g_sink != nullptr ? g_sink : stderr;
  std::fprintf(out, "[%9.3f] %s %s\n", t, levelName(level), message.c_str());
  if (g_sink != nullptr) std::fflush(g_sink);
}

}  // namespace rfp::log
