#include "support/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace rfp::log {
namespace {

std::atomic<int> g_level{static_cast<int>(Level::kWarn)};
std::mutex g_emit_mutex;

const char* levelName(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void setLevel(Level level) noexcept { g_level.store(static_cast<int>(level)); }

Level level() noexcept { return static_cast<Level>(g_level.load()); }

void emit(Level level, const std::string& message) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double t = std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%9.3f] %s %s\n", t, levelName(level), message.c_str());
}

}  // namespace rfp::log
