// Minimal leveled logger. Thread-safe; writes to stderr by default, or to
// a file sink configured once at startup (`rfp_cli --log-file`, daemons).
//
// The initial level honors the RFP_LOG_LEVEL environment variable
// (trace|debug|info|warn|error|off, case-insensitive), so CI and daemon
// runs can capture engine logs without code changes; `setLevel` still
// overrides it at runtime.
//
// Usage:
//   rfp::log::setLevel(rfp::log::Level::kInfo);
//   RFP_LOG_INFO("solved in " << t << "s");
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace rfp::log {

enum class Level : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Sets the global minimum level that is emitted.
void setLevel(Level level) noexcept;
Level level() noexcept;

/// Parses a level name ("info", "WARN", ...); returns `fallback` on junk.
Level levelFromString(const std::string& name, Level fallback) noexcept;

/// Redirects log output to `path` (append mode). Returns false and keeps
/// the current sink when the file cannot be opened. An empty path restores
/// stderr. Not meant to be raced against concurrent `emit` calls — call it
/// during startup, before solver threads exist.
bool setLogFile(const std::string& path);

/// Emits a single log line (internal; prefer the RFP_LOG_* macros).
void emit(Level level, const std::string& message);

}  // namespace rfp::log

#define RFP_LOG_AT(lvl, stream_expr)                          \
  do {                                                        \
    if (static_cast<int>(lvl) >= static_cast<int>(::rfp::log::level())) { \
      std::ostringstream os_;                                 \
      os_ << stream_expr;                                     \
      ::rfp::log::emit(lvl, os_.str());                       \
    }                                                         \
  } while (0)

#define RFP_LOG_TRACE(s) RFP_LOG_AT(::rfp::log::Level::kTrace, s)
#define RFP_LOG_DEBUG(s) RFP_LOG_AT(::rfp::log::Level::kDebug, s)
#define RFP_LOG_INFO(s) RFP_LOG_AT(::rfp::log::Level::kInfo, s)
#define RFP_LOG_WARN(s) RFP_LOG_AT(::rfp::log::Level::kWarn, s)
#define RFP_LOG_ERROR(s) RFP_LOG_AT(::rfp::log::Level::kError, s)
