// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Usage:
//   rfp::log::setLevel(rfp::log::Level::kInfo);
//   RFP_LOG_INFO("solved in " << t << "s");
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace rfp::log {

enum class Level : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Sets the global minimum level that is emitted.
void setLevel(Level level) noexcept;
Level level() noexcept;

/// Emits a single log line (internal; prefer the RFP_LOG_* macros).
void emit(Level level, const std::string& message);

}  // namespace rfp::log

#define RFP_LOG_AT(lvl, stream_expr)                          \
  do {                                                        \
    if (static_cast<int>(lvl) >= static_cast<int>(::rfp::log::level())) { \
      std::ostringstream os_;                                 \
      os_ << stream_expr;                                     \
      ::rfp::log::emit(lvl, os_.str());                       \
    }                                                         \
  } while (0)

#define RFP_LOG_TRACE(s) RFP_LOG_AT(::rfp::log::Level::kTrace, s)
#define RFP_LOG_DEBUG(s) RFP_LOG_AT(::rfp::log::Level::kDebug, s)
#define RFP_LOG_INFO(s) RFP_LOG_AT(::rfp::log::Level::kInfo, s)
#define RFP_LOG_WARN(s) RFP_LOG_AT(::rfp::log::Level::kWarn, s)
#define RFP_LOG_ERROR(s) RFP_LOG_AT(::rfp::log::Level::kError, s)
