// Deterministic, seedable PRNG (xoshiro256**) so every experiment in the
// repository is reproducible bit-for-bit across platforms; <random> engines
// are not guaranteed to produce identical streams across standard libraries.
#pragma once

#include <cstdint>

namespace rfp {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation),
/// seeded through SplitMix64 so that any 64-bit seed yields a good state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  std::uint64_t nextU64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t nextBelow(std::uint64_t bound) {
    if (bound <= 1) return 0;
    while (true) {
      const std::uint64_t x = nextU64();
      const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound && low < static_cast<std::uint64_t>(-static_cast<std::int64_t>(bound)) % bound)
        continue;
      return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t nextInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    nextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return (nextU64() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial.
  bool nextBool(double p_true = 0.5) { return nextDouble() < p_true; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace rfp
