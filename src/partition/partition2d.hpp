// General 2-D portion partitioning, as used by the FCCM'14 floorplanner
// ([10]) before this paper's columnar simplification: the FPGA is divided
// into non-overlapping rectangular portions of uniform tile type covering
// the whole area. Provided for completeness and for devices that fail the
// columnar test (e.g. grids with split columns).
#pragma once

#include <vector>

#include "device/device.hpp"

namespace rfp::partition {

/// A general portion: a rectangle of same-type tiles.
struct Portion2D {
  int id = 0;
  device::Rect rect;
  int type = 0;
};

/// Greedy maximal-rectangle decomposition: scan top-to-bottom/left-to-right,
/// grow each portion right then down as far as the type stays uniform and
/// tiles are unassigned. Always succeeds; portions tile the device exactly.
std::vector<Portion2D> partition2D(const device::Device& dev);

/// Empty string when `portions` exactly tile the device with uniform types;
/// else a description of the violation.
std::string validatePartition2D(const device::Device& dev,
                                const std::vector<Portion2D>& portions);

}  // namespace rfp::partition
