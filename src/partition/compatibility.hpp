// Area compatibility (Section II, Definitions .1 and .2, Figure 1).
//
// Two areas are *compatible* when they have the same shape, size and
// relative positioning of tiles of the same type — i.e. a bitstream could be
// moved between them by rewriting frame addresses only. An area is
// *free-compatible* w.r.t. another when additionally it does not overlap any
// region, other free-compatible area, or forbidden area.
#pragma once

#include <vector>

#include "device/device.hpp"

namespace rfp::partition {

/// Definition .1: same shape/size and identical tile types at every relative
/// position. (On columnar devices this reduces to equal column signatures.)
[[nodiscard]] bool areCompatible(const device::Device& dev, const device::Rect& a,
                                 const device::Rect& b);

/// Definition .2 applied to a candidate: `area` is free-compatible w.r.t.
/// `source` given the already-occupied rectangles (regions + other FC areas).
/// Forbidden areas of the device are always treated as occupied.
[[nodiscard]] bool isFreeCompatible(const device::Device& dev, const device::Rect& source,
                                    const device::Rect& area,
                                    const std::vector<device::Rect>& occupied);

/// Enumerates every placement of a rectangle compatible with `source`
/// (including `source` itself) that stays on the device and avoids forbidden
/// areas. Ordered by (x, y).
[[nodiscard]] std::vector<device::Rect> enumerateCompatiblePlacements(
    const device::Device& dev, const device::Rect& source);

}  // namespace rfp::partition
