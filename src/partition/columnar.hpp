// Columnar partitioning — the paper's revised partitioning procedure
// (Section III-B, steps 1–6 and Figure 2).
//
// The device is partitioned into *columnar portions*: maximal full-height
// rectangles of same-type tiles after virtually replacing forbidden-area
// tiles with the type of their column (step 1). Forbidden areas are kept as
// a separate, overlapping set A (disjoint from the portion set P — the key
// difference from the FCCM'14 partitioning, Sec. III-A).
//
// The resulting portions enjoy:
//   Property .3 — adjacent portions have different tile types;
//   Property .4 — portions are ordered left to right (we number them 0..|P|-1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "device/device.hpp"

namespace rfp::partition {

/// A columnar portion: full device height, columns [x, x+w).
struct Portion {
  int id = 0;        ///< left-to-right index (Property .4)
  int x = 0;         ///< leftmost column
  int w = 0;         ///< width in columns
  int type = 0;      ///< tile type id of every tile in the portion
  [[nodiscard]] int x2() const noexcept { return x + w; }  ///< exclusive
};

struct ColumnarPartition {
  std::vector<Portion> portions;          ///< set P, ordered left to right
  std::vector<device::Rect> forbidden;    ///< set A (copies of device forbidden areas)
  std::vector<std::string> forbidden_labels;

  /// Portion containing column x (portions tile the x-axis).
  [[nodiscard]] int portionAt(int x) const;
  /// Number of distinct tile types used (the paper's nTypes).
  [[nodiscard]] int numTypes() const;
};

/// Runs the columnar partitioning. Returns std::nullopt when the device is
/// not columnar-partitionable (step 4 failure: a portion cannot be extended
/// to the bottom of the FPGA), mirroring the procedure's failure mode.
std::optional<ColumnarPartition> columnarPartition(const device::Device& dev);

/// Validates Properties .3 and .4 plus exact tiling of the x-axis.
/// Returns an empty string when valid, else a description of the violation.
std::string validateColumnarPartition(const device::Device& dev,
                                      const ColumnarPartition& part);

}  // namespace rfp::partition
