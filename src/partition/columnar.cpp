#include "partition/columnar.hpp"

#include "support/check.hpp"

namespace rfp::partition {

int ColumnarPartition::portionAt(int x) const {
  for (const Portion& p : portions)
    if (x >= p.x && x < p.x2()) return p.id;
  return -1;
}

int ColumnarPartition::numTypes() const {
  int max_type = -1;
  for (const Portion& p : portions) max_type = std::max(max_type, p.type);
  return max_type + 1;
}

std::optional<ColumnarPartition> columnarPartition(const device::Device& dev) {
  const int W = dev.width();
  const int H = dev.height();

  // Step 1: replace every tile inside a forbidden area by a tile of the same
  // column that does not belong to any forbidden area. If some column is
  // fully forbidden, fall back to its top tile's type (the portion layout is
  // unaffected because the whole column then has a single effective type).
  std::vector<std::vector<int>> eff(static_cast<std::size_t>(H),
                                    std::vector<int>(static_cast<std::size_t>(W)));
  for (int x = 0; x < W; ++x) {
    int replacement = -1;
    for (int y = 0; y < H && replacement < 0; ++y)
      if (!dev.inForbidden(x, y)) replacement = dev.typeAt(x, y);
    if (replacement < 0) replacement = dev.typeAt(x, 0);
    for (int y = 0; y < H; ++y)
      eff[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] =
          dev.inForbidden(x, y) ? replacement : dev.typeAt(x, y);
  }

  // Steps 2–5: scan top-to-bottom, left-to-right; grow each new portion right
  // over free same-type tiles, then extend it to the bottom. A portion that
  // cannot reach the bottom row means the device is not columnar.
  std::vector<std::vector<bool>> used(static_cast<std::size_t>(H),
                                      std::vector<bool>(static_cast<std::size_t>(W), false));
  ColumnarPartition out;
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      if (used[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)]) continue;
      const int type = eff[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
      // Step 3: extend to the right while tiles are free and of the same type.
      int x_end = x;
      while (x_end + 1 < W &&
             !used[static_cast<std::size_t>(y)][static_cast<std::size_t>(x_end + 1)] &&
             eff[static_cast<std::size_t>(y)][static_cast<std::size_t>(x_end + 1)] == type)
        ++x_end;
      // Step 4: extend to the bottom; every row below must be free and of the
      // same type across the full width. Since we scan top-to-bottom, a
      // portion must start at row 0 and reach row H-1 or the device is not
      // columnar-partitionable.
      if (y != 0) return std::nullopt;
      for (int yy = 1; yy < H; ++yy)
        for (int xx = x; xx <= x_end; ++xx) {
          if (used[static_cast<std::size_t>(yy)][static_cast<std::size_t>(xx)] ||
              eff[static_cast<std::size_t>(yy)][static_cast<std::size_t>(xx)] != type)
            return std::nullopt;
        }
      for (int yy = 0; yy < H; ++yy)
        for (int xx = x; xx <= x_end; ++xx)
          used[static_cast<std::size_t>(yy)][static_cast<std::size_t>(xx)] = true;
      Portion p;
      p.id = static_cast<int>(out.portions.size());
      p.x = x;
      p.w = x_end - x + 1;
      p.type = type;
      out.portions.push_back(p);
      x = x_end;  // continue scanning after this portion
    }
  }

  // Step 6: forbidden areas are reported by position and size.
  out.forbidden = dev.forbidden();
  out.forbidden_labels = dev.forbiddenLabels();
  return out;
}

std::string validateColumnarPartition(const device::Device& dev,
                                      const ColumnarPartition& part) {
  int expect_x = 0;
  int prev_type = -1;
  for (std::size_t i = 0; i < part.portions.size(); ++i) {
    const Portion& p = part.portions[i];
    if (p.id != static_cast<int>(i)) return "portion ids not ordered left to right";
    if (p.x != expect_x) return "portions do not tile the x-axis";
    if (p.w <= 0) return "empty portion";
    if (i > 0 && p.type == prev_type)
      return "Property .3 violated: adjacent portions share a tile type";
    prev_type = p.type;
    expect_x = p.x2();
  }
  if (expect_x != dev.width()) return "portions do not cover the device width";
  return "";
}

}  // namespace rfp::partition
