#include "partition/partition2d.hpp"

#include <string>

namespace rfp::partition {

std::vector<Portion2D> partition2D(const device::Device& dev) {
  const int W = dev.width();
  const int H = dev.height();
  std::vector<bool> used(static_cast<std::size_t>(W) * static_cast<std::size_t>(H), false);
  const auto at = [&](int x, int y) -> std::vector<bool>::reference {
    return used[static_cast<std::size_t>(y) * static_cast<std::size_t>(W) +
                static_cast<std::size_t>(x)];
  };

  std::vector<Portion2D> out;
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      if (at(x, y)) continue;
      const int type = dev.typeAt(x, y);
      int x_end = x;
      while (x_end + 1 < W && !at(x_end + 1, y) && dev.typeAt(x_end + 1, y) == type) ++x_end;
      int y_end = y;
      bool extend = true;
      while (extend && y_end + 1 < H) {
        for (int xx = x; xx <= x_end; ++xx)
          if (at(xx, y_end + 1) || dev.typeAt(xx, y_end + 1) != type) {
            extend = false;
            break;
          }
        if (extend) ++y_end;
      }
      for (int yy = y; yy <= y_end; ++yy)
        for (int xx = x; xx <= x_end; ++xx) at(xx, yy) = true;
      Portion2D p;
      p.id = static_cast<int>(out.size());
      p.rect = device::Rect{x, y, x_end - x + 1, y_end - y + 1};
      p.type = type;
      out.push_back(p);
      x = x_end;
    }
  }
  return out;
}

std::string validatePartition2D(const device::Device& dev,
                                const std::vector<Portion2D>& portions) {
  const int W = dev.width();
  const int H = dev.height();
  std::vector<int> cover(static_cast<std::size_t>(W) * static_cast<std::size_t>(H), 0);
  for (const Portion2D& p : portions) {
    if (!dev.bounds().containsRect(p.rect)) return "portion outside device";
    for (int y = p.rect.y; y < p.rect.y2(); ++y)
      for (int x = p.rect.x; x < p.rect.x2(); ++x) {
        if (dev.typeAt(x, y) != p.type) return "portion type mismatch";
        ++cover[static_cast<std::size_t>(y) * static_cast<std::size_t>(W) +
                static_cast<std::size_t>(x)];
      }
  }
  for (const int c : cover) {
    if (c == 0) return "uncovered tile";
    if (c > 1) return "overlapping portions";
  }
  return "";
}

}  // namespace rfp::partition
