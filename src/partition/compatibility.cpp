#include "partition/compatibility.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace rfp::partition {

bool areCompatible(const device::Device& dev, const device::Rect& a, const device::Rect& b) {
  if (a.w != b.w || a.h != b.h) return false;
  if (!dev.bounds().containsRect(a) || !dev.bounds().containsRect(b)) return false;
  for (int dy = 0; dy < a.h; ++dy)
    for (int dx = 0; dx < a.w; ++dx)
      if (dev.typeAt(a.x + dx, a.y + dy) != dev.typeAt(b.x + dx, b.y + dy)) return false;
  return true;
}

bool isFreeCompatible(const device::Device& dev, const device::Rect& source,
                      const device::Rect& area, const std::vector<device::Rect>& occupied) {
  if (!areCompatible(dev, source, area)) return false;
  if (dev.rectHitsForbidden(area)) return false;
  return std::none_of(occupied.begin(), occupied.end(),
                      [&](const device::Rect& o) { return o.overlaps(area); });
}

std::vector<device::Rect> enumerateCompatiblePlacements(const device::Device& dev,
                                                        const device::Rect& source) {
  RFP_CHECK_MSG(dev.bounds().containsRect(source),
                "source area " << source.toString() << " outside device");
  std::vector<device::Rect> out;
  for (int x = 0; x + source.w <= dev.width(); ++x)
    for (int y = 0; y + source.h <= dev.height(); ++y) {
      const device::Rect cand{x, y, source.w, source.h};
      if (dev.rectHitsForbidden(cand)) continue;
      if (areCompatible(dev, source, cand)) out.push_back(cand);
    }
  return out;
}

}  // namespace rfp::partition
