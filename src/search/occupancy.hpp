// Bit-grid occupancy map used by the exact search solver.
//
// One bit per tile, row-major. Rect operations touch O(h · w/64) words, so
// overlap tests during branch-and-bound are a handful of AND/OR ops.
#pragma once

#include <cstdint>
#include <vector>

#include "device/geometry.hpp"
#include "support/check.hpp"

namespace rfp::search {

class Occupancy {
 public:
  Occupancy(int width, int height)
      : width_(width), height_(height),
        words_((static_cast<std::size_t>(width) * static_cast<std::size_t>(height) + 63) / 64,
               0) {
    RFP_CHECK(width > 0 && height > 0);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

  /// True if any tile of `r` is occupied.
  [[nodiscard]] bool overlaps(const device::Rect& r) const noexcept {
    bool hit = false;
    forEachSpan(r, [&](std::size_t word, std::uint64_t mask) {
      hit = hit || (words_[word] & mask) != 0;
    });
    return hit;
  }

  void fill(const device::Rect& r) noexcept {
    forEachSpan(r, [&](std::size_t word, std::uint64_t mask) { words_[word] |= mask; });
  }

  void clear(const device::Rect& r) noexcept {
    forEachSpan(r, [&](std::size_t word, std::uint64_t mask) { words_[word] &= ~mask; });
  }

  [[nodiscard]] bool occupied(int x, int y) const noexcept {
    const std::size_t bit = static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                            static_cast<std::size_t>(x);
    return (words_[bit / 64] >> (bit % 64)) & 1u;
  }

  [[nodiscard]] int popcount() const noexcept {
    int n = 0;
    for (const std::uint64_t w : words_) n += __builtin_popcountll(w);
    return n;
  }

 private:
  template <typename Fn>
  void forEachSpan(const device::Rect& r, Fn&& fn) const noexcept {
    for (int y = r.y; y < r.y2(); ++y) {
      std::size_t bit = static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                        static_cast<std::size_t>(r.x);
      int remaining = r.w;
      while (remaining > 0) {
        const std::size_t word = bit / 64;
        const int offset = static_cast<int>(bit % 64);
        const int take = std::min(remaining, 64 - offset);
        const std::uint64_t mask =
            (take == 64 ? ~0ull : ((1ull << take) - 1)) << offset;
        fn(word, mask);
        bit += static_cast<std::size_t>(take);
        remaining -= take;
      }
    }
  }

  int width_;
  int height_;
  std::vector<std::uint64_t> words_;
};

}  // namespace rfp::search
