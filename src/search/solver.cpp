#include "search/solver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>
#include <thread>
#include <utility>

#include "driver/incumbent.hpp"
#include "search/candidates.hpp"
#include "search/occupancy.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/sync.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace rfp::search {

const char* toString(SearchStatus s) noexcept {
  switch (s) {
    case SearchStatus::kOptimal: return "optimal";
    case SearchStatus::kInfeasible: return "infeasible";
    case SearchStatus::kFeasible: return "feasible";
    case SearchStatus::kNoSolution: return "no-solution";
  }
  return "?";
}

namespace {

using device::Rect;

constexpr std::uint64_t kKeyInf = ~0ull;

/// One expanded FC slot (a single requested free-compatible area).
struct FcSlot {
  int region = -1;
  bool hard = true;
  double weight = 1.0;
};

/// Immutable per-solve data shared by all worker threads.
struct Instance {
  const model::FloorplanProblem* problem = nullptr;
  std::vector<RegionCandidates> candidates;  ///< per region
  std::vector<int> region_order;             ///< most-constrained-first
  std::vector<FcSlot> slots;                 ///< expanded FC requests
  std::vector<long> suffix_min_waste;        ///< Σ min_waste of order[i..]
  std::vector<double> min_perimeter;         ///< per region, over its shapes
  std::vector<long> supply;                  ///< usable tiles per type
  std::vector<long> base_need;               ///< Σ (1+hard_fc)·required per type
  std::vector<std::vector<int>> req;         ///< req[n][t] = required tiles
  std::vector<int> hard_fc;                  ///< hard FC slots per region
  std::vector<std::vector<int>> span_cache;  ///< (x, w) → matching column spans
  int span_stride = 0;                       ///< device width (span_cache index)
  SearchOptions opt;
  double wl_max = 1, p_max = 1, r_max = 1, rl_max = 1;  ///< Eq. 14 normalizers

  [[nodiscard]] const model::FloorplanProblem& prob() const { return *problem; }

  /// Cached matchingColumnSpans(dev, x, w); valid whenever slots are present.
  [[nodiscard]] const std::vector<int>& spans(int x, int w) const {
    return span_cache[static_cast<std::size_t>(x) * static_cast<std::size_t>(span_stride) +
                      static_cast<std::size_t>(w) - 1];
  }
};

/// Thread-shared incumbent: a monotone 64-bit cost key for lock-free pruning
/// plus the actual plan under a mutex.
struct Shared {
  std::atomic<std::uint64_t> best_key{kKeyInf};
  std::atomic<bool> stop{false};
  std::atomic<long> nodes{0};
  sync::Mutex mutex;
  model::Floorplan best_plan RFP_GUARDED_BY(mutex);
  /// Cost key of the plan actually sitting in `best_plan` (kKeyInf while
  /// empty). `best_key` can run ahead of it: a worker lowers `best_key` by
  /// CAS *before* taking the mutex to install its plan. Install decisions
  /// must therefore compare against this key, not `best_key` — comparing
  /// against the atomic let a worker that lost the CAS race install (and
  /// publish) a strictly worse plan through the `!has_plan` window.
  std::uint64_t best_plan_key RFP_GUARDED_BY(mutex) = kKeyInf;
  // Written under `mutex`; atomic because workers pre-check it outside the
  // lock to skip the mutex on the (common) not-an-improvement path.
  std::atomic<bool> has_plan{false};
  // Incumbent-exchange bookkeeping. `best_is_external` tags whether the
  // current best_key was seeded by the channel (so prunes against it can be
  // attributed); it is advisory — a racy read only misattributes telemetry,
  // never correctness.
  std::atomic<bool> best_is_external{false};
  std::atomic<long> external_prunes{0};
  std::atomic<long> published{0};
  std::atomic<long> adopted{0};
};

/// A stealable unit of work: the subtree where region_order[0..k-1] are
/// fixed to these (shape_index, y) choices. Executing a task replays the
/// prefix placements (re-running every prune against the *current*
/// incumbent, so tasks packaged before an improvement die cheaply) and then
/// explores the remaining depths.
struct Task {
  std::vector<std::pair<int, int>> prefix;
};

/// Finely-locked work deque. The owner pushes and pops at the back (keeping
/// its depth-first traversal order); thieves take half from the front — the
/// earliest-deferred, shallowest prefixes, which root the largest subtrees.
class TaskDeque {
 public:
  void pushBack(Task t) {
    const sync::MutexLock lock(mu_);
    q_.push_back(std::move(t));
  }

  bool popBack(Task& out) {
    const sync::MutexLock lock(mu_);
    if (q_.empty()) return false;
    out = std::move(q_.back());
    q_.pop_back();
    return true;
  }

  /// Steal-half policy: moves the front ceil(size/2) tasks into `out`.
  int stealHalf(std::vector<Task>& out) {
    const sync::MutexLock lock(mu_);
    const int take = static_cast<int>((q_.size() + 1) / 2);
    for (int i = 0; i < take; ++i) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    return take;
  }

 private:
  sync::Mutex mu_;
  std::deque<Task> q_ RFP_GUARDED_BY(mu_);
};

/// Work-stealing scheduler state shared by all workers of one solve.
struct Scheduler {
  std::vector<std::unique_ptr<TaskDeque>> deques;  ///< one per worker
  /// Tasks in deques plus tasks being executed; zero = tree exhausted.
  std::atomic<long> outstanding{0};
  /// Workers currently sleeping on an empty deque — the adaptive-splitting
  /// signal: busy workers only pay the task-packaging overhead while a peer
  /// is actually starving.
  std::atomic<int> idle{0};
};

/// Lexicographic key: wasted frames in the high 32 bits, wire length scaled
/// ×64 in the low 32. Monotone in (waste, WL) ordering.
std::uint64_t lexKey(long waste, double wl) {
  const std::uint64_t hi = static_cast<std::uint64_t>(std::min<long>(waste, 0x7fffffffL));
  const std::uint64_t lo = static_cast<std::uint64_t>(
      std::min<double>(std::max(0.0, wl) * 64.0, 4294967294.0));
  return (hi << 32) | lo;
}

/// Weighted key: Eq. 14 objective scaled to integers.
std::uint64_t weightedKey(double objective) {
  return static_cast<std::uint64_t>(std::min(std::max(0.0, objective) * 1e15, 1e18));
}

/// Cost key of a finished floorplan under the active objective mode — the
/// same mapping recordSolution() applies to the search's own solutions, so
/// external incumbents and internal ones are ranked identically.
std::uint64_t costKey(const SearchOptions& opt, const model::FloorplanCosts& costs) {
  return opt.mode == ObjectiveMode::kLexicographic
             ? lexKey(costs.wasted_frames, opt.optimize_wirelength ? costs.wire_length : 0.0)
             : weightedKey(costs.objective);
}

/// Polls the incumbent channel and adopts a newer external plan as the
/// shared search incumbent when it beats the current best key. Adopted plans
/// participate exactly like search-found ones: they seed the bound-pruning
/// cutoff and are returned when nothing better is found.
void adoptExternalIncumbent(const Instance& inst, Shared& shared, std::uint64_t* seen) {
  if (!inst.opt.incumbent) return;
  model::Floorplan plan;
  model::FloorplanCosts costs;
  if (!inst.opt.incumbent->snapshotNewer(seen, &plan, &costs)) return;
  const std::uint64_t key = costKey(inst.opt, costs);
  bool lowered = false;
  std::uint64_t cur = shared.best_key.load(std::memory_order_relaxed);
  while (key < cur)
    if (shared.best_key.compare_exchange_weak(cur, key)) {
      lowered = true;
      break;
    }
  if (!lowered) return;  // ties keep the resident plan — equal keys rank equal
  bool took = false;
  {
    const sync::MutexLock lock(shared.mutex);
    // Strict improvement over the *installed* plan: a concurrent installer
    // may have landed a better one between the CAS above and this lock.
    if (key < shared.best_plan_key) {
      shared.best_plan = std::move(plan);
      shared.best_plan_key = key;
      shared.has_plan = true;
      shared.best_is_external.store(true, std::memory_order_relaxed);
      shared.adopted.fetch_add(1, std::memory_order_relaxed);
      took = true;
    }
  }
  if (took) {
    telemetry::instant(inst.opt.telemetry, "incumbent", "adopt", "waste",
                       static_cast<double>(costs.wasted_frames), "engine", "search");
    if (inst.opt.telemetry != nullptr && inst.opt.telemetry->metrics != nullptr)
      inst.opt.telemetry->metrics->counter("incumbent.adoptions").increment();
  }
}

/// Weighted-HPWL over nets counting only placed pins — admissible lower
/// bound (adding pins can only grow a bounding box).
double wireLengthLowerBound(const model::FloorplanProblem& problem,
                            const std::vector<Rect>& rects,
                            const std::vector<bool>& placed) {
  double total = 0;
  for (const model::Net& net : problem.nets()) {
    double min_x = 1e30, max_x = -1e30, min_y = 1e30, max_y = -1e30;
    bool any = false;
    for (const int r : net.regions) {
      if (!placed[static_cast<std::size_t>(r)]) continue;
      any = true;
      const Rect& rect = rects[static_cast<std::size_t>(r)];
      min_x = std::min(min_x, rect.centerX());
      max_x = std::max(max_x, rect.centerX());
      min_y = std::min(min_y, rect.centerY());
      max_y = std::max(max_y, rect.centerY());
    }
    if (any) total += net.weight * ((max_x - min_x) + (max_y - min_y));
  }
  return total;
}

class Worker {
 public:
  Worker(int id, const Instance& inst, Shared& shared, Scheduler& sched,
         const Deadline& deadline)
      : id_(id),
        inst_(inst),
        shared_(shared),
        sched_(sched),
        deadline_(deadline),
        occ_(inst.prob().dev().width(), inst.prob().dev().height()),
        rects_(static_cast<std::size_t>(inst.prob().numRegions())),
        region_placed_(static_cast<std::size_t>(inst.prob().numRegions()), false),
        fc_rects_(inst.slots.size()),
        fc_placed_(inst.slots.size(), false),
        used_(inst.supply.size(), 0),
        need_(inst.base_need) {
    stats_.id = id;
    if (inst.opt.telemetry != nullptr) {
      trace_ = inst.opt.telemetry->trace;
      if (inst.opt.telemetry->metrics != nullptr) {
        nodes_ctr_ = &inst.opt.telemetry->metrics->counter("search.nodes");
        steals_ctr_ = &inst.opt.telemetry->metrics->counter("search.steals");
      }
    }
  }

  /// Main loop: drain the own deque, steal when dry, exit when every task
  /// is done or the solve stopped. Deques can all be momentarily empty
  /// while a peer still expands a task that will spawn more, so "no loot"
  /// alone is not termination — the outstanding count is.
  void runLoop() {
    if (trace_ != nullptr) {
      char label[32];
      std::snprintf(label, sizeof(label), "search-worker-%d", id_);
      trace_->nameThread(label);
      batch_start_us_ = trace_->nowUs();
    }
    Task task;
    while (true) {
      if (shared_.stop.load(std::memory_order_relaxed)) break;
      if (deque().popBack(task)) {
        ++stats_.tasks;
        runTask(task);
        sched_.outstanding.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (trySteal()) continue;
      if (sched_.outstanding.load(std::memory_order_acquire) == 0) break;
      sched_.idle.fetch_add(1, std::memory_order_relaxed);
      const Stopwatch idle;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      stats_.idle_seconds += idle.seconds();
      sched_.idle.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] const SearchWorkerStats& stats() const { return stats_; }

 private:
  TaskDeque& deque() { return *sched_.deques[static_cast<std::size_t>(id_)]; }

  /// Scans victims in a fixed ring order from this worker's successor and
  /// moves half of the first non-empty deque into its own.
  bool trySteal() {
    const int W = static_cast<int>(sched_.deques.size());
    for (int k = 1; k < W; ++k) {
      const int victim = (id_ + k) % W;
      std::vector<Task> loot;
      if (sched_.deques[static_cast<std::size_t>(victim)]->stealHalf(loot) == 0) continue;
      ++stats_.steals;
      stats_.stolen_tasks += static_cast<long>(loot.size());
      if (trace_ != nullptr)
        trace_->instant("steal", "steal", "tasks", static_cast<double>(loot.size()));
      if (steals_ctr_ != nullptr) steals_ctr_->increment();
      for (Task& t : loot) deque().pushBack(std::move(t));
      return true;
    }
    return false;
  }

  /// Replays the task's fixed prefix and explores the remaining subtree.
  /// Worker state is fully unwound afterwards, so tasks run back-to-back on
  /// one clean worker.
  void runTask(const Task& task) {
    int placed = 0;
    bool viable = true;
    for (std::size_t d = 0; d < task.prefix.size() && viable; ++d) {
      const int n = inst_.region_order[d];
      const Shape& s = inst_.candidates[static_cast<std::size_t>(n)]
                           .shapes[static_cast<std::size_t>(task.prefix[d].first)];
      const int y = task.prefix[d].second;
      if (occ_.overlaps(Rect{s.x, y, s.w, s.h}) || !tryPlace(n, s, y)) {
        viable = false;
        break;
      }
      ++placed;
      if (!quickFcCheckAll() || boundKey(static_cast<int>(d) + 1) >=
                                    shared_.best_key.load(std::memory_order_relaxed)) {
        if (shared_.best_is_external.load(std::memory_order_relaxed))
          ++local_external_prunes_;
        viable = false;
      }
    }
    if (viable && !aborted()) {
      prefix_ = task.prefix;
      descendRegions(placed);
      prefix_.clear();
    }
    for (int d = placed - 1; d >= 0; --d) {
      const int n = inst_.region_order[static_cast<std::size_t>(d)];
      unplace(n, inst_.candidates[static_cast<std::size_t>(n)]
                     .shapes[static_cast<std::size_t>(task.prefix[static_cast<std::size_t>(d)].first)]);
    }
  }
  [[nodiscard]] bool aborted() {
    if (shared_.stop.load(std::memory_order_relaxed)) return true;
    if ((local_nodes_ & 255) == 0) {
      if (deadline_.expired() ||
          (inst_.opt.stop && inst_.opt.stop->load(std::memory_order_relaxed))) {
        shared_.stop.store(true);
        return true;
      }
      adoptExternalIncumbent(inst_, shared_, &incumbent_seen_);
    }
    return false;
  }

  /// Admissible cost-key lower bound for the current partial assignment.
  [[nodiscard]] std::uint64_t boundKey(int depth) const {
    const long waste_lb =
        waste_ + inst_.suffix_min_waste[static_cast<std::size_t>(depth)];
    const double wl_lb = wireLengthLowerBound(inst_.prob(), rects_, region_placed_);
    if (inst_.opt.mode == ObjectiveMode::kLexicographic)
      return lexKey(waste_lb, inst_.opt.optimize_wirelength ? wl_lb : 0.0);
    // Weighted (Eq. 14): perimeter of placed regions + per-region minima;
    // unplaced FC areas are assumed placeable (RL lower bound 0 + committed
    // skips).
    double perim_lb = perim_;
    for (int d = depth; d < inst_.prob().numRegions(); ++d)
      perim_lb += inst_.min_perimeter[static_cast<std::size_t>(inst_.region_order[static_cast<std::size_t>(d)])];
    const model::ObjectiveWeights& q = inst_.prob().weights();
    const double obj = q.q1_wirelength * wl_lb / inst_.wl_max +
                       q.q2_perimeter * perim_lb / inst_.p_max +
                       q.q3_wasted * static_cast<double>(waste_lb) / inst_.r_max +
                       q.q4_relocation * rl_ / inst_.rl_max;
    return weightedKey(obj);
  }

  /// Supply prune + state mutation. Returns false — with no state touched —
  /// when the placement is already ruled out. Per-type supply/demand prune:
  /// covered tiles of placed regions plus a lower bound on the demand still
  /// outstanding (unplaced regions at their bare requirement, hard FC slots
  /// at their region's footprint) must fit in the device's usable tiles.
  /// This is what makes the Sec. VI infeasibility proofs (matched filter /
  /// video decoder) cheap: DSP supply is tight, so wasteful shapes die
  /// immediately.
  bool tryPlace(int n, const Shape& s, int y) {
    const std::size_t nt = inst_.supply.size();
    const long k_fc = inst_.hard_fc[static_cast<std::size_t>(n)];
    for (std::size_t t = 0; t < nt; ++t) {
      const long cov = s.covered[t];
      const long req = inst_.req[static_cast<std::size_t>(n)][t];
      const long used_after = used_[t] + cov;
      const long need_after = need_[t] - (1 + k_fc) * req + k_fc * cov;
      if (used_after + need_after > inst_.supply[t]) return false;
    }

    ++local_nodes_;
    if ((local_nodes_ & 1023) == 0) flushNodes();

    const Rect r{s.x, y, s.w, s.h};
    occ_.fill(r);
    rects_[static_cast<std::size_t>(n)] = r;
    region_placed_[static_cast<std::size_t>(n)] = true;
    waste_ += s.waste;
    perim_ += 2.0 * (r.w + r.h);
    for (std::size_t t = 0; t < nt; ++t) {
      used_[t] += s.covered[t];
      need_[t] += k_fc * s.covered[t] - (1 + k_fc) * inst_.req[static_cast<std::size_t>(n)][t];
    }
    return true;
  }

  void unplace(int n, const Shape& s) {
    const std::size_t nt = inst_.supply.size();
    const long k_fc = inst_.hard_fc[static_cast<std::size_t>(n)];
    const Rect r = rects_[static_cast<std::size_t>(n)];
    for (std::size_t t = 0; t < nt; ++t) {
      used_[t] -= s.covered[t];
      need_[t] -= k_fc * s.covered[t] - (1 + k_fc) * inst_.req[static_cast<std::size_t>(n)][t];
    }
    perim_ -= 2.0 * (r.w + r.h);
    waste_ -= s.waste;
    region_placed_[static_cast<std::size_t>(n)] = false;
    occ_.clear(r);
  }

  void placeRegion(int depth, int n, const Shape& s, std::size_t shape_index, int y) {
    if (aborted()) return;
    if (!tryPlace(n, s, y)) return;
    if (quickFcCheckAll()) {
      if (boundKey(depth + 1) < shared_.best_key.load(std::memory_order_relaxed)) {
        prefix_.emplace_back(static_cast<int>(shape_index), y);
        descendRegions(depth + 1);
        prefix_.pop_back();
      } else if (shared_.best_is_external.load(std::memory_order_relaxed)) {
        ++local_external_prunes_;
      }
    }
    unplace(n, s);
  }

  /// Adaptive splitting: defer a subtree as a stealable task only while a
  /// peer is actually starving, and only at shallow depths where the prefix
  /// replay cost is negligible against the subtree it buys.
  [[nodiscard]] bool maySplit(int depth) const {
    return sched_.idle.load(std::memory_order_relaxed) > 0 &&
           depth < inst_.prob().numRegions() - 1 && depth <= 6;
  }

  void spawnTask(std::size_t shape_index, int y) {
    Task t;
    t.prefix = prefix_;
    t.prefix.emplace_back(static_cast<int>(shape_index), y);
    sched_.outstanding.fetch_add(1, std::memory_order_acq_rel);
    deque().pushBack(std::move(t));
    ++stats_.splits;
  }

  /// quickFcCheck over every placed region: placing a region can also
  /// destroy the FC candidates of regions placed earlier.
  [[nodiscard]] bool quickFcCheckAll() const {
    for (int m = 0; m < inst_.prob().numRegions(); ++m)
      if (inst_.hard_fc[static_cast<std::size_t>(m)] > 0 &&
          region_placed_[static_cast<std::size_t>(m)] && !quickFcCheck(m))
        return false;
    return true;
  }

  /// Cheap necessary condition: each *hard* FC request of region n must have
  /// at least `count` compatible placements free w.r.t. current occupancy.
  [[nodiscard]] bool quickFcCheck(int n) const {
    const int needed = inst_.hard_fc[static_cast<std::size_t>(n)];
    if (needed == 0) return true;
    const Rect& src = rects_[static_cast<std::size_t>(n)];
    const device::Device& dev = inst_.prob().dev();
    int found = 0;
    for (const int x : inst_.spans(src.x, src.w)) {
      for (int y = 0; y + src.h <= dev.height(); ++y) {
        const Rect cand{x, y, src.w, src.h};
        if (dev.rectHitsForbidden(cand)) continue;
        if (occ_.overlaps(cand)) continue;
        // The source rect itself is occupied, so `found` counts genuinely
        // free placements.
        if (++found >= needed) return true;
      }
    }
    return found >= needed;
  }

  void descendRegions(int depth) {
    if (aborted()) return;
    if (depth == inst_.prob().numRegions()) {
      startFcPhase();
      return;
    }
    const int n = inst_.region_order[static_cast<std::size_t>(depth)];
    const RegionCandidates& cands = inst_.candidates[static_cast<std::size_t>(n)];
    const std::uint64_t best = shared_.best_key.load(std::memory_order_relaxed);
    for (std::size_t si = 0; si < cands.shapes.size(); ++si) {
      const Shape& s = cands.shapes[si];
      // Shapes are waste-sorted: once the waste bound alone exceeds the
      // incumbent, no later shape can help.
      const long waste_lb = waste_ + s.waste +
                            inst_.suffix_min_waste[static_cast<std::size_t>(depth + 1)] -
                            inst_.candidates[static_cast<std::size_t>(n)].min_waste;
      if (inst_.opt.waste_budget >= 0 && waste_lb > inst_.opt.waste_budget) break;
      if (inst_.opt.mode == ObjectiveMode::kLexicographic &&
          lexKey(waste_lb, 0.0) >= best) {
        if (shared_.best_is_external.load(std::memory_order_relaxed))
          ++local_external_prunes_;
        break;
      }
      for (const int y : s.ys) {
        if (occ_.overlaps(Rect{s.x, y, s.w, s.h})) continue;
        if (maySplit(depth)) {
          // A starving peer exists: package this subtree for stealing
          // instead of diving it (it re-checks every prune on execution).
          spawnTask(si, y);
          continue;
        }
        placeRegion(depth, n, s, si, y);
        if (aborted()) return;
      }
    }
  }

  // ---- FC phase ------------------------------------------------------------

  struct SlotPlan {
    int slot = -1;                 ///< index into inst_.slots
    std::vector<Rect> candidates;  ///< compatible, forbidden-free placements
  };

  void startFcPhase() {
    if (inst_.slots.empty()) {
      recordSolution();
      return;
    }
    // Candidates per slot depend only on the region placements; slots of the
    // same region share one list. Order: fewest candidates first.
    std::vector<SlotPlan> plans;
    plans.reserve(inst_.slots.size());
    const device::Device& dev = inst_.prob().dev();
    std::vector<std::vector<Rect>> per_region(
        static_cast<std::size_t>(inst_.prob().numRegions()));
    std::vector<bool> computed(static_cast<std::size_t>(inst_.prob().numRegions()), false);
    for (std::size_t i = 0; i < inst_.slots.size(); ++i) {
      const int n = inst_.slots[i].region;
      if (!computed[static_cast<std::size_t>(n)]) {
        computed[static_cast<std::size_t>(n)] = true;
        const Rect& src = rects_[static_cast<std::size_t>(n)];
        for (const int x : inst_.spans(src.x, src.w))
          for (const int y : validRows(dev, x, src.w, src.h))
            per_region[static_cast<std::size_t>(n)].push_back(Rect{x, y, src.w, src.h});
      }
      plans.push_back(SlotPlan{static_cast<int>(i), per_region[static_cast<std::size_t>(n)]});
    }
    std::stable_sort(plans.begin(), plans.end(), [](const SlotPlan& a, const SlotPlan& b) {
      return a.candidates.size() < b.candidates.size();
    });
    fc_entry_rl_ = rl_;
    descendSlots(plans, 0, std::vector<std::size_t>(
                               static_cast<std::size_t>(inst_.prob().numRegions()), 0));
  }

  /// `next_start[n]` enforces a canonical candidate order among same-region
  /// slots (they are interchangeable), killing the k! symmetry.
  ///
  /// Returns true when the FC phase may stop for this region placement: FC
  /// positions do not enter any cost term (only whether each slot is
  /// placed), so an assignment placing every remaining slot — no skip
  /// penalty over the phase entry — is optimal for the fixed region rects.
  bool descendSlots(const std::vector<SlotPlan>& plans, std::size_t depth,
                    std::vector<std::size_t> next_start) {
    if (aborted()) return true;
    if (depth == plans.size()) {
      recordSolution();
      return rl_ == fc_entry_rl_;
    }
    ++local_nodes_;
    const SlotPlan& plan = plans[depth];
    const FcSlot& slot = inst_.slots[static_cast<std::size_t>(plan.slot)];
    const std::size_t start = next_start[static_cast<std::size_t>(slot.region)];
    for (std::size_t c = start; c < plan.candidates.size(); ++c) {
      const Rect& r = plan.candidates[c];
      if (occ_.overlaps(r)) continue;
      occ_.fill(r);
      fc_rects_[static_cast<std::size_t>(plan.slot)] = r;
      fc_placed_[static_cast<std::size_t>(plan.slot)] = true;
      std::vector<std::size_t> ns = next_start;
      ns[static_cast<std::size_t>(slot.region)] = c + 1;
      const bool done = descendSlots(plans, depth + 1, std::move(ns));
      fc_placed_[static_cast<std::size_t>(plan.slot)] = false;
      occ_.clear(r);
      if (done || aborted()) return done;
    }
    if (!slot.hard && inst_.opt.mode == ObjectiveMode::kWeighted) {
      // Soft request: skip with penalty cw_c (Sec. V).
      rl_ += slot.weight;
      bool done = false;
      if (boundKey(inst_.prob().numRegions()) <
          shared_.best_key.load(std::memory_order_relaxed))
        done = descendSlots(plans, depth + 1, std::move(next_start));
      rl_ -= slot.weight;
      return done;
    }
    return false;
  }

  void recordSolution() {
    model::Floorplan plan;
    plan.regions = rects_;
    plan.fc_areas = model::expandFcRequests(inst_.prob());
    for (std::size_t i = 0; i < inst_.slots.size(); ++i) {
      plan.fc_areas[i].placed = fc_placed_[i];
      if (fc_placed_[i]) plan.fc_areas[i].rect = fc_rects_[i];
    }
    const model::FloorplanCosts costs = model::evaluate(inst_.prob(), plan);
    const std::uint64_t key = costKey(inst_.opt, costs);

    bool adopted_own = false;
    std::uint64_t cur = shared_.best_key.load(std::memory_order_relaxed);
    while (key < cur && !shared_.best_key.compare_exchange_weak(cur, key)) {
    }
    if (key <= cur || !shared_.has_plan) {
      const sync::MutexLock lock(shared_.mutex);
      // Compare against the installed plan's own key, not the atomic
      // `best_key`: between a peer's CAS and its install there is a window
      // where `has_plan` is stale, and the old `!has_plan` fallback let
      // this worker install — and publish — a strictly worse plan over it.
      if (key < shared_.best_plan_key) {
        shared_.best_plan = plan;  // keep `plan` for the publish below
        shared_.best_plan_key = key;
        shared_.has_plan = true;
        shared_.best_is_external.store(false, std::memory_order_relaxed);
        adopted_own = true;
      }
    }
    // Publish outside the mutex: the channel re-validates and takes its own
    // lock, and a slow publish must not stall sibling workers.
    if (adopted_own && inst_.opt.incumbent) {
      shared_.published.fetch_add(1, std::memory_order_relaxed);
      inst_.opt.incumbent->publish(plan, costs, "search");
    }
    if (adopted_own && trace_ != nullptr)
      trace_->instant("incumbent", "publish", "waste",
                      static_cast<double>(costs.wasted_frames), "engine", "search");
    if (inst_.opt.feasibility_only) shared_.stop.store(true);
  }

  void flushNodes() {
    const long delta = local_nodes_ - flushed_nodes_;
    shared_.nodes.fetch_add(delta, std::memory_order_relaxed);
    flushed_nodes_ = local_nodes_;
    if (nodes_ctr_ != nullptr && delta > 0) nodes_ctr_->add(delta);
    if (trace_ != nullptr && delta > 0) {
      // One complete event covering the nodes expanded since the previous
      // flush: coarse enough to stay off the per-node hot path, fine enough
      // that the timeline shows where a worker's time went.
      const double now = trace_->nowUs();
      telemetry::TraceEvent ev;
      ev.cat = "search";
      ev.name = "node_batch";
      ev.ph = 'X';
      ev.ts_us = batch_start_us_;
      ev.dur_us = now - batch_start_us_;
      ev.akey[0] = "nodes";
      ev.aval[0] = static_cast<double>(delta);
      ev.nargs = 1;
      trace_->complete(ev);
      batch_start_us_ = now;
    }
    if (inst_.opt.node_limit > 0 &&
        shared_.nodes.load(std::memory_order_relaxed) > inst_.opt.node_limit)
      shared_.stop.store(true);
  }

 public:
  void finish() {
    flushNodes();
    shared_.external_prunes.fetch_add(local_external_prunes_, std::memory_order_relaxed);
    local_external_prunes_ = 0;
    stats_.nodes = local_nodes_;
  }

 private:
  const int id_;
  const Instance& inst_;
  Shared& shared_;
  Scheduler& sched_;
  const Deadline& deadline_;
  SearchWorkerStats stats_;
  /// (shape_index, y) of the current path's placements — the prefix a
  /// spawned task needs to replay this position.
  std::vector<std::pair<int, int>> prefix_;
  Occupancy occ_;
  std::vector<Rect> rects_;
  std::vector<bool> region_placed_;
  std::vector<Rect> fc_rects_;
  std::vector<bool> fc_placed_;
  std::vector<long> used_;  ///< covered tiles per type over placed regions
  std::vector<long> need_;  ///< remaining demand lower bound per type
  long waste_ = 0;
  double perim_ = 0;
  double rl_ = 0;
  double fc_entry_rl_ = 0;  ///< rl_ on entering the FC phase (early-stop ref)
  long local_nodes_ = 0;
  long flushed_nodes_ = 0;
  long local_external_prunes_ = 0;
  std::uint64_t incumbent_seen_ = 0;  ///< last channel version this worker saw
  // Observability (null when the solve carries no telemetry context).
  telemetry::TraceRecorder* trace_ = nullptr;
  telemetry::Counter* nodes_ctr_ = nullptr;
  telemetry::Counter* steals_ctr_ = nullptr;
  double batch_start_us_ = 0.0;
};

Instance buildInstance(const model::FloorplanProblem& problem, const SearchOptions& opt) {
  Instance inst;
  inst.problem = &problem;
  inst.opt = opt;
  // Incumbent exchange would defeat feasibility_only: an adopted plan counts
  // as "found" without the search having proven anything about this probe.
  if (inst.opt.feasibility_only) inst.opt.incumbent = nullptr;

  const std::string problem_error = problem.validateStructure();
  RFP_CHECK_MSG(problem_error.empty(), "invalid problem: " << problem_error);

  // In lexicographic mode taller-than-minimal shapes are strictly dominated
  // (see enumerateCandidates); in weighted mode a taller shape can pay off
  // through the wire-length term, so the full shape set is kept.
  const bool min_height_only = opt.mode == ObjectiveMode::kLexicographic;
  inst.candidates.reserve(static_cast<std::size_t>(problem.numRegions()));
  for (int n = 0; n < problem.numRegions(); ++n)
    inst.candidates.push_back(
        enumerateCandidates(problem, n, opt.waste_budget, min_height_only));

  // Most-constrained-first ordering (fewest placements).
  inst.region_order.resize(static_cast<std::size_t>(problem.numRegions()));
  for (int n = 0; n < problem.numRegions(); ++n)
    inst.region_order[static_cast<std::size_t>(n)] = n;
  std::stable_sort(inst.region_order.begin(), inst.region_order.end(), [&](int a, int b) {
    return inst.candidates[static_cast<std::size_t>(a)].totalPlacements() <
           inst.candidates[static_cast<std::size_t>(b)].totalPlacements();
  });

  inst.suffix_min_waste.assign(static_cast<std::size_t>(problem.numRegions()) + 1, 0);
  for (int i = problem.numRegions() - 1; i >= 0; --i) {
    const RegionCandidates& c =
        inst.candidates[static_cast<std::size_t>(inst.region_order[static_cast<std::size_t>(i)])];
    const long mw = c.shapes.empty() ? LONG_MAX / 8 : c.min_waste;
    inst.suffix_min_waste[static_cast<std::size_t>(i)] =
        inst.suffix_min_waste[static_cast<std::size_t>(i) + 1] + mw;
  }

  inst.min_perimeter.assign(static_cast<std::size_t>(problem.numRegions()), 0.0);
  for (int n = 0; n < problem.numRegions(); ++n) {
    double best = 1e30;
    for (const Shape& s : inst.candidates[static_cast<std::size_t>(n)].shapes)
      best = std::min(best, 2.0 * (s.w + s.h));
    inst.min_perimeter[static_cast<std::size_t>(n)] =
        inst.candidates[static_cast<std::size_t>(n)].shapes.empty() ? 0.0 : best;
  }

  for (const model::RelocationRequest& req : problem.relocations()) {
    RFP_CHECK_MSG(req.hard || opt.mode == ObjectiveMode::kWeighted,
                  "soft relocation requests require ObjectiveMode::kWeighted");
    for (int i = 0; i < req.count; ++i)
      inst.slots.push_back(FcSlot{req.region, req.hard, req.weight});
  }

  // Supply/demand bookkeeping for the per-type prune.
  const int T = problem.dev().numTileTypes();
  const std::vector<int> totals = problem.dev().totalTiles(/*usable_only=*/true);
  inst.supply.assign(totals.begin(), totals.end());
  inst.hard_fc.assign(static_cast<std::size_t>(problem.numRegions()), 0);
  for (const FcSlot& s : inst.slots)
    if (s.hard) ++inst.hard_fc[static_cast<std::size_t>(s.region)];
  inst.req.resize(static_cast<std::size_t>(problem.numRegions()));
  inst.base_need.assign(static_cast<std::size_t>(T), 0);
  for (int n = 0; n < problem.numRegions(); ++n) {
    inst.req[static_cast<std::size_t>(n)].resize(static_cast<std::size_t>(T));
    for (int t = 0; t < T; ++t) {
      const int r = problem.region(n).required(t);
      inst.req[static_cast<std::size_t>(n)][static_cast<std::size_t>(t)] = r;
      inst.base_need[static_cast<std::size_t>(t)] +=
          static_cast<long>(1 + inst.hard_fc[static_cast<std::size_t>(n)]) * r;
    }
  }

  // Column-span cache for the FC checks (only needed when FC slots exist).
  if (!inst.slots.empty()) {
    const device::Device& dev = problem.dev();
    const int W = dev.width();
    inst.span_stride = W;
    inst.span_cache.resize(static_cast<std::size_t>(W) * static_cast<std::size_t>(W));
    for (int w = 1; w <= W; ++w)
      for (int x = 0; x + w <= W; ++x)
        inst.span_cache[static_cast<std::size_t>(x) * static_cast<std::size_t>(W) +
                        static_cast<std::size_t>(w) - 1] = matchingColumnSpans(dev, x, w);
  }

  // Eq. 14 normalizers (same convention as model::evaluate).
  const device::Device& dev = problem.dev();
  inst.wl_max = 0;
  for (const model::Net& net : problem.nets())
    inst.wl_max += net.weight * (dev.width() + dev.height());
  if (inst.wl_max <= 0) inst.wl_max = 1;
  inst.p_max = std::max(1.0, 2.0 * problem.numRegions() * (dev.width() + dev.height()));
  inst.r_max = std::max<double>(1.0, static_cast<double>(dev.totalFrames()));
  inst.rl_max = 0;
  for (const FcSlot& s : inst.slots) inst.rl_max += s.weight;
  if (inst.rl_max <= 0) inst.rl_max = 1;
  return inst;
}

}  // namespace

SearchResult ColumnarSearchSolver::solve(const model::FloorplanProblem& problem) const {
  Stopwatch watch;
  Deadline deadline(options_.time_limit_seconds);
  SearchResult result;

  // Aggregate over-demand is an infeasibility verdict, not an API error.
  if (!problem.supplyShortfall().empty()) {
    result.status = SearchStatus::kInfeasible;
    result.seconds = watch.seconds();
    return result;
  }

  telemetry::Span build_span(options_.telemetry, "search", "build_instance");
  const Instance inst = buildInstance(problem, options_);
  build_span.finish();
  Shared shared;

  // Seed the cutoff from the channel before the root fan-out: an incumbent
  // published by a faster engine prunes from the very first node.
  std::uint64_t root_seen = 0;
  adoptExternalIncumbent(inst, shared, &root_seen);

  // Root decomposition: one task per candidate placement of the first
  // region in the order.
  const int first = inst.region_order.empty() ? -1 : inst.region_order[0];
  std::vector<Task> roots;
  if (first >= 0) {
    const RegionCandidates& c = inst.candidates[static_cast<std::size_t>(first)];
    for (std::size_t si = 0; si < c.shapes.size(); ++si)
      for (const int y : c.shapes[si].ys) {
        Task t;
        t.prefix.emplace_back(static_cast<int>(si), y);
        roots.push_back(std::move(t));
      }
  }

  if (first < 0) {
    // No regions: trivially feasible empty plan.
    result.plan.fc_areas = model::expandFcRequests(problem);
    result.costs = model::evaluate(problem, result.plan);
    result.status = SearchStatus::kOptimal;
    result.seconds = watch.seconds();
    return result;
  }

  const int threads = std::max(1, options_.num_threads);
  Scheduler sched;
  sched.deques.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) sched.deques.push_back(std::make_unique<TaskDeque>());
  // Deal root tasks round-robin, back-to-front: each worker's popBack then
  // walks its share in the original waste-sorted order (a single worker
  // reproduces the sequential traversal exactly).
  sched.outstanding.store(static_cast<long>(roots.size()), std::memory_order_relaxed);
  for (std::size_t i = roots.size(); i-- > 0;)
    sched.deques[i % static_cast<std::size_t>(threads)]->pushBack(std::move(roots[i]));

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    workers.push_back(std::make_unique<Worker>(t, inst, shared, sched, deadline));

  if (threads == 1) {
    workers[0]->runLoop();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
      pool.emplace_back([&workers, t] { workers[static_cast<std::size_t>(t)]->runLoop(); });
    for (std::thread& t : pool) t.join();
  }
  for (const std::unique_ptr<Worker>& w : workers) {
    w->finish();
    result.workers.push_back(w->stats());
    result.steals += w->stats().steals;
  }

  result.nodes = shared.nodes.load();
  result.seconds = watch.seconds();
  result.published = shared.published.load();
  result.adopted = shared.adopted.load();
  result.external_prunes = shared.external_prunes.load();
  // A cancelled run is not a proof: even when every worker happened to
  // exhaust its subtree without observing the flag, a set stop flag at the
  // boundary downgrades the verdict (the portfolio's winner already holds
  // the real proof).
  const bool externally_cancelled =
      options_.stop && options_.stop->load(std::memory_order_relaxed);
  const bool truncated =
      (shared.stop.load() || externally_cancelled) &&
      !(options_.feasibility_only && shared.has_plan);  // feasibility stop ≠ limit
  if (shared.has_plan) {
    {
      // Workers are joined, but best_plan is mutex-guarded state written
      // from their threads — read it the same way it was written.
      const sync::MutexLock lock(shared.mutex);
      result.plan = shared.best_plan;
    }
    result.costs = model::evaluate(problem, result.plan);
    result.status = truncated && !options_.feasibility_only ? SearchStatus::kFeasible
                                                            : SearchStatus::kOptimal;
    if (options_.feasibility_only) result.status = SearchStatus::kFeasible;
  } else {
    result.status = truncated ? SearchStatus::kNoSolution : SearchStatus::kInfeasible;
  }
  return result;
}

std::vector<bool> ColumnarSearchSolver::feasibilityAnalysis(
    const model::FloorplanProblem& problem) const {
  std::vector<bool> relocatable(static_cast<std::size_t>(problem.numRegions()), false);
  for (int n = 0; n < problem.numRegions(); ++n) {
    // Rebuild the problem with a single hard FC request for region n.
    model::FloorplanProblem probe(&problem.dev());
    for (int i = 0; i < problem.numRegions(); ++i) probe.addRegion(problem.region(i));
    for (const model::Net& net : problem.nets()) probe.addNet(net);
    probe.addRelocation(model::RelocationRequest{n, 1, /*hard=*/true, 1.0});
    probe.setLexicographic(problem.lexicographic());

    SearchOptions opt = options_;
    opt.feasibility_only = true;
    opt.mode = ObjectiveMode::kLexicographic;
    ColumnarSearchSolver probe_solver(opt);
    const SearchResult res = probe_solver.solve(probe);
    relocatable[static_cast<std::size_t>(n)] = res.hasSolution();
  }
  return relocatable;
}

}  // namespace rfp::search
