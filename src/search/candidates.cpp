#include "search/candidates.hpp"

#include <algorithm>
#include <climits>

#include "support/check.hpp"

namespace rfp::search {

RegionCandidates enumerateCandidates(const model::FloorplanProblem& problem, int n,
                                     long max_waste, bool min_height_only) {
  const device::Device& dev = problem.dev();
  RFP_CHECK_MSG(dev.isColumnar(), "exact search requires a columnar device");
  const int W = dev.width();
  const int H = dev.height();
  const int T = dev.numTileTypes();
  const model::RegionSpec& spec = problem.region(n);

  // Prefix sums of column counts per type: cols[t][x] = #columns of type t
  // in [0, x).
  std::vector<std::vector<int>> cols(static_cast<std::size_t>(T),
                                     std::vector<int>(static_cast<std::size_t>(W) + 1, 0));
  for (int x = 0; x < W; ++x) {
    const int t = dev.columnType(x);
    for (int tt = 0; tt < T; ++tt)
      cols[static_cast<std::size_t>(tt)][static_cast<std::size_t>(x) + 1] =
          cols[static_cast<std::size_t>(tt)][static_cast<std::size_t>(x)] + (tt == t ? 1 : 0);
  }

  RegionCandidates out;
  out.min_waste = LONG_MAX / 4;
  for (int w = 1; w <= W; ++w) {
    for (int x = 0; x + w <= W; ++x) {
      // Tiles of type t covered = colsOfType(t) * h. Find the minimal h that
      // covers every requirement; all h >= that are candidates too (they may
      // trade waste for geometry, e.g. when relocation needs taller areas).
      int min_h = 1;
      bool possible = true;
      for (int t = 0; t < T && possible; ++t) {
        const int c = cols[static_cast<std::size_t>(t)][static_cast<std::size_t>(x + w)] -
                      cols[static_cast<std::size_t>(t)][static_cast<std::size_t>(x)];
        const int need = spec.required(t);
        if (need == 0) continue;
        if (c == 0) {
          possible = false;
          break;
        }
        min_h = std::max(min_h, (need + c - 1) / c);
      }
      if (!possible || min_h > H) continue;
      const int max_h = min_height_only ? min_h : H;
      for (int h = min_h; h <= max_h; ++h) {
        long waste = 0;
        std::vector<int> covered(static_cast<std::size_t>(T), 0);
        for (int t = 0; t < T; ++t) {
          const int c = cols[static_cast<std::size_t>(t)][static_cast<std::size_t>(x + w)] -
                        cols[static_cast<std::size_t>(t)][static_cast<std::size_t>(x)];
          covered[static_cast<std::size_t>(t)] = c * h;
          waste += static_cast<long>(c * h - spec.required(t)) * dev.tileType(t).frames;
        }
        if (max_waste >= 0 && waste > max_waste) break;  // waste grows with h
        Shape s;
        s.x = x;
        s.w = w;
        s.h = h;
        s.waste = waste;
        s.ys = validRows(dev, x, w, h);
        s.covered = std::move(covered);
        if (s.ys.empty()) continue;
        out.min_waste = std::min(out.min_waste, waste);
        out.shapes.push_back(std::move(s));
      }
    }
  }
  std::sort(out.shapes.begin(), out.shapes.end(),
            [](const Shape& a, const Shape& b) { return a.waste < b.waste; });
  return out;
}

std::vector<int> matchingColumnSpans(const device::Device& dev, int x0, int w) {
  std::vector<int> out;
  const device::Rect src{x0, 0, w, 1};
  const std::vector<int> sig = dev.columnSignature(src);
  for (int x = 0; x + w <= dev.width(); ++x) {
    bool match = true;
    for (int i = 0; i < w && match; ++i)
      match = dev.columnType(x + i) == sig[static_cast<std::size_t>(i)];
    if (match) out.push_back(x);
  }
  return out;
}

std::vector<int> validRows(const device::Device& dev, int x, int w, int h) {
  std::vector<int> ys;
  for (int y = 0; y + h <= dev.height(); ++y)
    if (!dev.rectHitsForbidden(device::Rect{x, y, w, h})) ys.push_back(y);
  return ys;
}

}  // namespace rfp::search
