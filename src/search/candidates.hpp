// Candidate placement enumeration for the exact columnar solver.
//
// On a columnar device the tiles covered by a rectangle depend only on
// (x, w, h) — each column contributes h tiles of its column type — so
// candidates factor into *shapes* (x, w, h, waste) × feasible y positions.
// Wasted frames per shape are y-independent; forbidden areas only restrict
// the y list. This factorization is what makes exhaustive search tractable
// at paper scale (DESIGN.md §3 substitution 2).
#pragma once

#include <vector>

#include "device/device.hpp"
#include "model/problem.hpp"

namespace rfp::search {

/// A placement shape for one region: column span and height, with the
/// (y-independent) wasted frames, plus the valid top rows.
struct Shape {
  int x = 0;
  int w = 0;
  int h = 0;
  long waste = 0;             ///< wasted frames of any placement of this shape
  std::vector<int> ys;        ///< valid top rows (forbidden areas excluded)
  std::vector<int> covered;   ///< tiles covered per type id (c_t · h)
};

/// All shapes for one region, sorted by ascending waste.
struct RegionCandidates {
  std::vector<Shape> shapes;
  long min_waste = 0;  ///< waste of the cheapest shape (0 shapes: LONG_MAX/4)

  [[nodiscard]] std::size_t totalPlacements() const noexcept {
    std::size_t n = 0;
    for (const Shape& s : shapes) n += s.ys.size();
    return n;
  }
};

/// Enumerates all shapes whose coverage satisfies region `n` of `problem`,
/// with waste at most `max_waste` (< 0: unlimited). Requires a columnar
/// device (checked).
///
/// With `min_height_only`, only the minimal feasible height per column span
/// is emitted. Taller shapes are strictly dominated whenever the objective
/// is monotone in waste (lexicographic mode, feasibility tests): shrinking
/// every rect of a solution to its span's minimal height preserves
/// disjointness, forbidden-area avoidance, coverage, and FC-area
/// compatibility, while strictly reducing waste.
[[nodiscard]] RegionCandidates enumerateCandidates(const model::FloorplanProblem& problem,
                                                   int n, long max_waste = -1,
                                                   bool min_height_only = false);

/// All x positions whose column-type signature matches columns [x0, x0+w) —
/// the compatible column spans per Definition .1 (y positions are free on a
/// columnar device, up to forbidden areas). Includes x0 itself.
[[nodiscard]] std::vector<int> matchingColumnSpans(const device::Device& dev, int x0, int w);

/// Valid top rows for an h-tall rect at columns [x, x+w) avoiding forbidden
/// areas.
[[nodiscard]] std::vector<int> validRows(const device::Device& dev, int x, int w, int h);

}  // namespace rfp::search
