// Exact branch-and-bound floorplanner for columnar devices.
//
// Solves the same problem semantics as the MILP formulations in src/fp —
// cross-checked against them by tests on small instances — but enumerates
// tile-aligned rectangles directly, which is what makes the paper-scale
// SDR2/SDR3 experiments (5-hour commercial-solver runs in the paper) finish
// in seconds-to-minutes here (DESIGN.md §3 substitution 2).
//
// Two objective modes:
//  * kLexicographic — the evaluation's objective (Sec. VI): minimize wasted
//    frames first, then wire length; relocation requests are hard
//    constraints (Sec. IV).
//  * kWeighted — Eq. 14: q1·WL/WLmax + q2·P/Pmax + q3·R/Rmax + q4·RL/RLmax;
//    soft relocation requests may stay unplaced at cost cw_c (Sec. V).
//
// The search is exhaustive with admissible bounds, so a completed run is a
// proof of optimality (or of infeasibility).
#pragma once

#include <atomic>
#include <vector>

#include "model/floorplan.hpp"
#include "model/problem.hpp"

namespace rfp::driver {
class SharedIncumbent;  // driver/incumbent.hpp
}

namespace rfp::telemetry {
struct Context;  // support/telemetry/trace.hpp
}

namespace rfp::search {

enum class ObjectiveMode { kLexicographic, kWeighted };

enum class SearchStatus {
  kOptimal,     ///< search exhausted; best found is optimal
  kInfeasible,  ///< search exhausted; no feasible floorplan exists
  kFeasible,    ///< limit hit with an incumbent
  kNoSolution,  ///< limit hit without an incumbent
};

[[nodiscard]] const char* toString(SearchStatus s) noexcept;

/// Per-worker telemetry from the work-stealing scheduler (one entry per
/// worker thread; a single-threaded solve reports one worker, zero steals).
struct SearchWorkerStats {
  int id = 0;
  long nodes = 0;         ///< search nodes this worker expanded
  long tasks = 0;         ///< stealable subtree tasks it executed
  long splits = 0;        ///< subtrees it deferred as stealable tasks
  long steals = 0;        ///< successful steal operations it performed
  long stolen_tasks = 0;  ///< tasks acquired through those steals
  double idle_seconds = 0.0;  ///< time spent with an empty deque and no loot
};

struct SearchOptions {
  ObjectiveMode mode = ObjectiveMode::kLexicographic;
  double time_limit_seconds = 0.0;  ///< <= 0: none
  long node_limit = 0;              ///< <= 0: none
  int num_threads = 1;              ///< work-stealing workers when > 1
  bool feasibility_only = false;    ///< stop at the first feasible floorplan
  long waste_budget = -1;           ///< hard cap on total wasted frames (< 0: none)
  bool optimize_wirelength = true;  ///< lexicographic tiebreak on wire length
  /// Cooperative external cancellation: when non-null and set, the search
  /// stops at the next poll point and reports a truncated status (never a
  /// proof). The pointee must outlive solve(). Used by driver portfolios.
  std::atomic<bool>* stop = nullptr;
  /// Incumbent exchange channel (driver portfolios): externally published
  /// floorplans are adopted as the search incumbent — seeding the
  /// bound-pruning cutoff at the root and at every poll point — and every
  /// improving incumbent the search finds is published back. Ignored in
  /// feasibility_only mode. The pointee must outlive solve().
  driver::SharedIncumbent* incumbent = nullptr;
  /// Solve-scoped observability (support/telemetry): node-batch spans,
  /// steal/incumbent instants, live node counters for the progress ticker.
  /// Null (the default) keeps every instrumentation site branch-only.
  const telemetry::Context* telemetry = nullptr;
};

struct SearchResult {
  SearchStatus status = SearchStatus::kNoSolution;
  model::Floorplan plan;        ///< valid when an incumbent exists
  model::FloorplanCosts costs;  ///< evaluated costs of `plan`
  long nodes = 0;
  double seconds = 0.0;
  // Incumbent-exchange telemetry (zero without a channel).
  long published = 0;        ///< incumbents offered to the channel
  long adopted = 0;          ///< external incumbents adopted as the cutoff
  long external_prunes = 0;  ///< subtrees pruned against an external cutoff
  // Work-stealing scheduler telemetry.
  std::vector<SearchWorkerStats> workers;
  long steals = 0;  ///< successful steal operations across all workers

  [[nodiscard]] bool hasSolution() const noexcept {
    return status == SearchStatus::kOptimal || status == SearchStatus::kFeasible;
  }
};

class ColumnarSearchSolver {
 public:
  ColumnarSearchSolver() = default;
  explicit ColumnarSearchSolver(SearchOptions options) : options_(options) {}

  [[nodiscard]] SearchResult solve(const model::FloorplanProblem& problem) const;

  /// The paper's Sec. VI feasibility analysis: for each region, can at least
  /// one free-compatible area be reserved (with every region still placed)?
  /// Returns one flag per region. Existing relocation requests on `problem`
  /// are ignored; each region is tested in isolation.
  [[nodiscard]] std::vector<bool> feasibilityAnalysis(
      const model::FloorplanProblem& problem) const;

  [[nodiscard]] const SearchOptions& options() const noexcept { return options_; }

 private:
  SearchOptions options_;
};

}  // namespace rfp::search
