// Batch mode: N independent problems over a fixed-size thread pool.
//
// Work stealing is a single atomic cursor over the problem list; each
// problem is solved with the single-backend dispatch and untouched request
// options, so the result for problems[i] is the same whatever the pool size
// — only the wall clock changes.
//
// Cancellation: the caller's stop flag is threaded into every dispatched
// solve (the engines unwind at their next poll point) and problems not yet
// dispatched are skipped. The overall deadline works the same way, by
// capping each dispatched solve's own deadline to the remaining batch
// budget — so in-flight work terminates by the budget without a watchdog
// thread. Both necessarily break the pool-size-independence guarantee:
// which solves get truncated depends on dispatch order and contention.
#include <algorithm>
#include <atomic>
#include <thread>

#include "driver/backend_runner.hpp"
#include "driver/driver.hpp"
#include "support/timer.hpp"

namespace rfp::driver {

std::vector<SolveResponse> Driver::solveBatch(
    const std::vector<const model::FloorplanProblem*>& problems, const SolveRequest& request,
    int pool_threads, std::atomic<bool>* stop, double deadline_seconds) const {
  std::vector<SolveResponse> out(problems.size());
  if (problems.empty()) return out;

  const Deadline overall(deadline_seconds);
  const int threads =
      std::clamp(pool_threads, 1, static_cast<int>(problems.size()));
  std::atomic<std::size_t> next{0};
  const auto body = [&] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < problems.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      if (stop && stop->load(std::memory_order_relaxed)) {
        out[i].detail = "batch: cancelled before dispatch";
        continue;
      }
      if (overall.expired()) {
        out[i].detail = "batch: deadline exhausted before dispatch";
        continue;
      }
      if (deadline_seconds > 0) {
        SolveRequest capped = request;
        capped.deadline_seconds = detail::cappedLimit(
            request.deadline_seconds, std::max(0.01, overall.remaining()));
        out[i] = detail::runBackend(*problems[i], capped, request.backend, stop);
      } else {
        out[i] = detail::runBackend(*problems[i], request, request.backend, stop);
      }
    }
  };

  if (threads == 1) {
    body();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(body);
    for (std::thread& t : pool) t.join();
  }
  return out;
}

}  // namespace rfp::driver
