// Batch mode: N independent problems over a fixed-size thread pool.
//
// Work stealing is a single atomic cursor over the problem list; each
// problem is solved with the single-backend dispatch and untouched request
// options, so the result for problems[i] is the same whatever the pool size
// — only the wall clock changes.
#include <algorithm>
#include <atomic>
#include <thread>

#include "driver/backend_runner.hpp"
#include "driver/driver.hpp"

namespace rfp::driver {

std::vector<SolveResponse> Driver::solveBatch(
    const std::vector<const model::FloorplanProblem*>& problems, const SolveRequest& request,
    int pool_threads) const {
  std::vector<SolveResponse> out(problems.size());
  if (problems.empty()) return out;

  const int threads =
      std::clamp(pool_threads, 1, static_cast<int>(problems.size()));
  std::atomic<std::size_t> next{0};
  const auto body = [&] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < problems.size();
         i = next.fetch_add(1, std::memory_order_relaxed))
      out[i] = detail::runBackend(*problems[i], request, request.backend, nullptr);
  };

  if (threads == 1) {
    body();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(body);
    for (std::thread& t : pool) t.join();
  }
  return out;
}

}  // namespace rfp::driver
