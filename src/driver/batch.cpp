// Batch mode: N independent problems over a fixed-size thread pool.
//
// Work stealing is a single atomic cursor over the problem list; each
// problem goes through the result cache and then the single-backend
// dispatch with untouched request options, so the result for problems[i] is
// the same whatever the pool size — only the wall clock changes.
//
// Budgeting: an overall deadline is split *fairly* instead of
// first-come-first-served. When a worker claims problem i with `r` seconds
// of wall clock left and `n` problems still unclaimed, the solve's deadline
// is capped to `r * threads / n` (the batch's remaining compute capacity
// divided evenly) rather than to `r` itself — under FCFS the first
// `threads` problems could burn the entire budget and starve the queue.
// Redistribution is a by-product of computing slices from the *live*
// remaining wall clock: a cache hit or an early finisher advances the
// cursor without advancing the clock, so every subsequent slice grows.
//
// Cancellation: the caller's stop flag is threaded into every dispatched
// solve (the engines unwind at their next poll point) and problems not yet
// dispatched are skipped; the deadline works the same way through the
// per-solve caps, without a watchdog thread. Both necessarily break the
// pool-size-independence guarantee: which solves get truncated depends on
// dispatch order and contention.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <thread>

#include "driver/backend_runner.hpp"
#include "driver/cache.hpp"
#include "driver/driver.hpp"
#include "support/timer.hpp"

namespace rfp::driver {

namespace {

/// Fair share of the remaining budget for one of `n_left` unclaimed
/// problems on `threads` workers: the share is floored at 0.05s so the
/// engines' deadline polling stays meaningful, but never exceeds the
/// remaining wall clock — a slice cannot outlive the batch.
double fairSlice(double remaining, int threads, std::size_t n_left) noexcept {
  const double share =
      remaining * static_cast<double>(threads) / static_cast<double>(std::max<std::size_t>(1, n_left));
  return std::min(remaining, std::max(0.05, share));
}

}  // namespace

std::vector<SolveResponse> Driver::solveBatch(
    const std::vector<const model::FloorplanProblem*>& problems, const SolveRequest& request,
    int pool_threads, std::atomic<bool>* stop, double deadline_seconds) const {
  std::vector<SolveResponse> out(problems.size());
  if (problems.empty()) return out;

  const Deadline overall(deadline_seconds);
  int threads = std::clamp(pool_threads, 1, static_cast<int>(problems.size()));
  if (options_.thread_budget > 0) threads = std::min(threads, options_.thread_budget);
  // Shared thread budget: the pool width and each solve's in-solve workers
  // multiply, so the per-solve parallelism knobs are capped at the budget
  // divided by the pool width — `pool * in_solve <= thread_budget`.
  SolveRequest base = request;
  if (options_.thread_budget > 0)
    detail::capInSolveThreads(&base, std::max(1, options_.thread_budget / threads));
  std::atomic<std::size_t> next{0};
  ResultCache* cache = cache_.get();
  // Order-independent digest of the whole batch composition (wrapping sum,
  // so duplicates do not cancel), part of the deadline-bounded cache key
  // below: the slice a problem receives depends on how long its
  // *co-problems* run, so only an identical batch may share entries.
  std::uint64_t composition = 0;
  if (deadline_seconds > 0 && cache != nullptr && request.use_cache)
    for (const model::FloorplanProblem* p : problems)
      composition += fingerprintProblem(*p, request, request.backend).hash;
  const auto body = [&] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < problems.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      if (stop && stop->load(std::memory_order_relaxed)) {
        out[i].detail = "batch: cancelled before dispatch";
        continue;
      }
      if (overall.expired()) {
        out[i].detail = "batch: deadline exhausted before dispatch";
        continue;
      }
      if (deadline_seconds > 0) {
        // `problems.size() - i` counts this problem plus everything the
        // cursor has not handed out yet — the population the remaining
        // budget is split over. (Slight staleness under contention only
        // shifts slices by one problem's worth.)
        const double slice =
            fairSlice(std::max(0.01, overall.remaining()), threads, problems.size() - i);
        SolveRequest capped = base;
        capped.deadline_seconds = detail::cappedLimit(request.deadline_seconds, slice);
        // Cache entries are keyed on the caller's request plus the whole
        // batch configuration (overall budget, pool width, and the
        // composition digest — which problems share the budget), never on
        // the slice itself: slices are wall-clock-derived and never repeat,
        // so a slice-keyed entry could never be hit again. Under this key a
        // duplicate is an exact hit of "this problem, with these limits, in
        // this batch" — possibly a result truncated to an earlier slice,
        // which rerunning the same batch would roughly reproduce; any other
        // batch or budget is a near miss that re-solves with a seed.
        char batch_ctx[96];
        std::snprintf(batch_ctx, sizeof(batch_ctx), "batch=%.17g;tn=%d;bc=%016llx",
                      deadline_seconds, threads,
                      static_cast<unsigned long long>(composition));
        out[i] = detail::solveThroughCache(cache, *problems[i], capped, stop, &request,
                                           batch_ctx);
        if (!out[i].cache_hit) {
          std::ostringstream note;
          note << " [batch slice=" << slice << "s]";
          out[i].detail += note.str();
        }
      } else {
        out[i] = detail::solveThroughCache(cache, *problems[i], base, stop);
      }
    }
  };

  if (threads == 1) {
    body();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(body);
    for (std::thread& t : pool) t.join();
  }
  return out;
}

}  // namespace rfp::driver
