// Internal: runs one backend for the driver, deriving the engine options
// from a SolveRequest (deadline capping, stop-flag override, objective mode
// from the problem) and normalizing the engine's result into a
// SolveResponse. Shared by the single, portfolio and batch modes.
#pragma once

#include <atomic>

#include "driver/driver.hpp"

namespace rfp::driver {
class SharedIncumbent;  // driver/incumbent.hpp
}

namespace rfp::driver::detail {

/// Runs `backend` on `problem`. `external_stop`, when non-null, replaces the
/// stop flag configured in the request's engine options (the portfolio's
/// shared cancellation); `channel`, when non-null, likewise replaces the
/// engines' incumbent-exchange pointers. Statuses are normalized so that
/// kOptimal and kInfeasible are only ever reported as proofs (see
/// isExhaustive()) — in particular, a run that ends with `external_stop`
/// set is a cancellation and is downgraded to kFeasible/kNoSolution at this
/// boundary, whatever the engine reported.
[[nodiscard]] SolveResponse runBackend(const model::FloorplanProblem& problem,
                                       const SolveRequest& request, Backend backend,
                                       std::atomic<bool>* external_stop,
                                       SharedIncumbent* channel = nullptr);

/// True when `response` settles the problem for good: a proof of optimality
/// or infeasibility from an exhaustive backend.
[[nodiscard]] bool isProof(const SolveResponse& response) noexcept;

/// Tightens `configured` (<= 0: none) to the request deadline (<= 0: none).
[[nodiscard]] double cappedLimit(double configured, double deadline) noexcept;

}  // namespace rfp::driver::detail
