// Internal: runs one backend for the driver, deriving the engine options
// from a SolveRequest (deadline capping, stop-flag override, objective mode
// from the problem) and normalizing the engine's result into a
// SolveResponse. Shared by the single, portfolio and batch modes.
#pragma once

#include <atomic>
#include <thread>

#include "driver/driver.hpp"
#include "support/sync.hpp"

namespace rfp::driver {
class SharedIncumbent;  // driver/incumbent.hpp
class ResultCache;      // driver/cache.hpp
}

namespace rfp::driver::detail {

/// Single-backend dispatch through the result cache: full hit → served from
/// the store, near miss → re-solve with the cached plan published into a
/// SharedIncumbent, miss → plain runBackend; non-cancelled results are
/// stored afterwards. `cache == nullptr` (or `request.use_cache == false`)
/// degrades to plain runBackend. Shared by Driver::solve and solveBatch.
///
/// `key_request`, when non-null, is fingerprinted instead of `request` for
/// the cache key (the engines still run `request`), and `budget_context`,
/// when non-null, is appended to the key's budget tier. solveBatch uses the
/// pair to key every dispatch of a deadline-bounded batch on the caller's
/// request plus the *batch-wide* budget: the per-dispatch fair slices are
/// derived from the live wall clock and essentially never repeat, so keying
/// on them would make every duplicate a permanent near miss and fill the
/// store with unmatchable entries.
[[nodiscard]] SolveResponse solveThroughCache(ResultCache* cache,
                                              const model::FloorplanProblem& problem,
                                              const SolveRequest& request,
                                              std::atomic<bool>* external_stop,
                                              const SolveRequest* key_request = nullptr,
                                              const char* budget_context = nullptr);

/// Runs `backend` on `problem`. `external_stop`, when non-null, replaces the
/// stop flag configured in the request's engine options (the portfolio's
/// shared cancellation); `channel`, when non-null, likewise replaces the
/// engines' incumbent-exchange pointers. Statuses are normalized so that
/// kOptimal and kInfeasible are only ever reported as proofs (see
/// isExhaustive()) — in particular, a run that ends with `external_stop`
/// set is a cancellation and is downgraded to kFeasible/kNoSolution at this
/// boundary, whatever the engine reported.
[[nodiscard]] SolveResponse runBackend(const model::FloorplanProblem& problem,
                                       const SolveRequest& request, Backend backend,
                                       std::atomic<bool>* external_stop,
                                       SharedIncumbent* channel = nullptr);

/// True when `response` settles the problem for good: a proof of optimality
/// or infeasibility from an exhaustive backend.
[[nodiscard]] bool isProof(const SolveResponse& response) noexcept;

/// Tightens `configured` (<= 0: none) to the request deadline (<= 0: none).
[[nodiscard]] double cappedLimit(double configured, double deadline) noexcept;

/// Rebuilds `response->metrics` (the flat name -> value map) from the
/// response's own result fields: nodes/seconds always, lp.* when an LP ran,
/// steal/worker figures for parallel solves, incumbent-exchange totals when
/// a channel was involved. Exact by construction (no sampling) — called at
/// the end of runBackend and after portfolio arbitration.
void populateMetrics(SolveResponse* response);

/// Caps every in-solve parallelism knob of `request` (num_threads,
/// search.num_threads, milp.milp.threads) at `budget` worker threads
/// (floored at 1); `budget <= 0` leaves the request untouched. Used by the
/// driver's shared thread budget (DriverOptions::thread_budget) so a batch
/// pool running parallel solves does not oversubscribe the machine.
void capInSolveThreads(SolveRequest* request, int budget) noexcept;

/// RAII progress ticker (SolveRequest::progress_interval_seconds): while
/// alive, logs an info-level line every interval with the live engine
/// counters from the telemetry registry (search/milp nodes, LP solves,
/// steals, incumbent adoptions). Inert — and thread-free — when the context
/// has no registry or the interval is not positive. The destructor wakes
/// and joins the ticker thread immediately (condition variable, not a
/// sleep-poll), so scope it around the dispatch it narrates.
class ProgressTicker {
 public:
  ProgressTicker(const telemetry::Context* ctx, double interval_seconds);
  ProgressTicker(const ProgressTicker&) = delete;
  ProgressTicker& operator=(const ProgressTicker&) = delete;
  ~ProgressTicker();

 private:
  sync::Mutex mu_;
  sync::CondVar cv_;
  bool stop_ RFP_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace rfp::driver::detail
