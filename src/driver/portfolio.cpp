// Portfolio mode: concurrent backends racing on one problem.
//
// Every backend gets the same deadline and a shared cancellation flag. A
// backend that *proves* its result (optimal or infeasible, exhaustive
// engines only) sets the flag, which the other engines observe at their next
// poll point and unwind from — so the portfolio's wall clock tracks the
// fastest prover, not the slowest member. Without a proof, everyone runs to
// its own limit and the best incumbent under the problem's objective wins.
#include <atomic>
#include <sstream>
#include <thread>

#include "driver/backend_runner.hpp"
#include "driver/driver.hpp"
#include "support/timer.hpp"

namespace rfp::driver {

namespace {

const std::vector<Backend>& defaultPortfolio() {
  // The heuristic is omitted: it is the annealer's and HO's first stage
  // already, so a dedicated racer adds no coverage.
  static const std::vector<Backend> kDefault = {Backend::kSearch, Backend::kMilpO,
                                                Backend::kMilpHO, Backend::kAnnealer};
  return kDefault;
}

}  // namespace

SolveResponse Driver::solvePortfolio(const model::FloorplanProblem& problem,
                                     const SolveRequest& request) const {
  Stopwatch watch;
  const std::vector<Backend>& backends =
      request.portfolio.empty() ? defaultPortfolio() : request.portfolio;
  if (backends.empty()) return SolveResponse{};
  if (backends.size() == 1) {
    SolveResponse only = detail::runBackend(problem, request, backends[0], nullptr);
    only.seconds = watch.seconds();
    return only;
  }

  std::atomic<bool> stop{false};
  // Each thread writes only its own element, and join() publishes the
  // writes before arbitration reads them — no lock needed.
  std::vector<SolveResponse> responses(backends.size());
  std::vector<std::thread> threads;
  threads.reserve(backends.size());
  for (std::size_t i = 0; i < backends.size(); ++i) {
    threads.emplace_back([&, i] {
      responses[i] = detail::runBackend(problem, request, backends[i], &stop);
      // Cancel the losers only on a proof: an incumbent without one could
      // still be beaten by a backend that is mid-run.
      if (detail::isProof(responses[i])) stop.store(true, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : threads) t.join();

  // Arbitration: proof of optimality > proof of infeasibility > best
  // incumbent (problem objective; ties to the earlier portfolio position) >
  // nothing.
  const SolveResponse* winner = nullptr;
  for (const SolveResponse& r : responses)
    if (detail::isProof(r) && r.status == SolveStatus::kOptimal) {
      winner = &r;
      break;
    }
  if (!winner)
    for (const SolveResponse& r : responses)
      if (detail::isProof(r) && r.status == SolveStatus::kInfeasible) {
        winner = &r;
        break;
      }
  if (!winner)
    for (const SolveResponse& r : responses) {
      if (!r.hasSolution()) continue;
      if (!winner || model::strictlyBetter(problem, r.costs, winner->costs)) winner = &r;
    }

  SolveResponse out = winner ? *winner : SolveResponse{};
  std::ostringstream detail;
  detail << "portfolio[" << backends.size() << "] winner=" << (winner ? toString(out.backend) : "-");
  long nodes = 0;
  for (std::size_t i = 0; i < backends.size(); ++i) {
    detail << " | " << responses[i].detail;
    nodes += responses[i].nodes;
  }
  out.detail = detail.str();
  out.nodes = nodes;
  out.seconds = watch.seconds();
  return out;
}

}  // namespace rfp::driver
