// Portfolio mode: cooperating backends on one problem.
//
// Every backend gets a shared cancellation flag and (unless disabled) a
// SharedIncumbent exchange channel: the incomplete engines publish improving
// floorplans mid-run, the provers consume them as objective cutoffs and
// publish their own improvements back. A backend that *proves* its result
// (optimal or infeasible, exhaustive engines only) sets the flag, which the
// other engines observe at their next poll point and unwind from — so each
// stage's wall clock tracks its fastest prover, not its slowest member
// (a staged run additionally pays stage 1's slice, capped by
// SolveRequest::stage1_max_seconds, before the provers start).
// Without a proof, everyone runs to its own limit and the best incumbent
// under the problem's objective wins.
//
// With a deadline, the race is staged instead of flat: the incomplete
// engines (annealer, heuristic, HO) run first on a short slice of the
// budget, their best incumbent seeds the provers' cutoff through the
// channel, and the provers inherit the entire remaining budget — the
// paper's fast-heuristic-feeds-exact-MILP combination as a scheduling
// policy. The slice itself is adaptive: a watchdog ends stage 1 as soon as
// the incumbent channel has gone quiet for a configurable fraction of the
// slice (HO in particular rarely finishes on its own, yet stops improving
// the channel early), handing the saved time to the provers.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "driver/backend_runner.hpp"
#include "driver/driver.hpp"
#include "driver/incumbent.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace rfp::driver {

namespace {

const std::vector<Backend>& defaultPortfolio() {
  // The heuristic is omitted: it is the annealer's and HO's first stage
  // already, so a dedicated racer adds no coverage.
  static const std::vector<Backend> kDefault = {Backend::kSearch, Backend::kMilpO,
                                                Backend::kMilpHO, Backend::kAnnealer};
  return kDefault;
}

/// Runs the members at `indices` concurrently, one thread per member. Each
/// member that produces a proof raises the shared stop flag.
void runStage(const model::FloorplanProblem& problem, const SolveRequest& request,
              const std::vector<Backend>& backends, const std::vector<std::size_t>& indices,
              std::atomic<bool>& stop, SharedIncumbent* channel,
              std::vector<SolveResponse>& responses) {
  // Each thread writes only its own element, and join() publishes the
  // writes before arbitration reads them — no lock needed.
  std::vector<std::thread> threads;
  threads.reserve(indices.size());
  for (const std::size_t i : indices) {
    threads.emplace_back([&, i] {
      // Member span on the member's own thread: the exported timeline gets
      // one row per racer, with the engine's own spans nested underneath.
      telemetry::Span member_span(request.telemetry, "portfolio", toString(backends[i]));
      responses[i] = detail::runBackend(problem, request, backends[i], &stop, channel);
      if (member_span.active())
        member_span.note("status", toString(responses[i].status));
      // Cancel the losers only on a proof: an incumbent without one could
      // still be beaten by a backend that is mid-run.
      if (detail::isProof(responses[i])) stop.store(true, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace

SolveResponse Driver::solvePortfolio(const model::FloorplanProblem& problem,
                                     const SolveRequest& request) const {
  Stopwatch watch;
  const detail::ProgressTicker ticker(request.telemetry, request.progress_interval_seconds);
  telemetry::Span race_span(request.telemetry, "driver", "portfolio");
  const std::vector<Backend>& backends =
      request.portfolio.empty() ? defaultPortfolio() : request.portfolio;
  if (backends.empty()) return SolveResponse{};
  if (backends.size() == 1) {
    SolveResponse only = detail::runBackend(problem, request, backends[0], nullptr);
    only.seconds = watch.seconds();
    return only;
  }

  SharedIncumbent channel(problem);
  SharedIncumbent* chan = request.incumbent_exchange ? &channel : nullptr;

  // Staged deadline splitting needs a budget to split, a channel to hand the
  // stage-1 incumbent over, and both member classes present.
  std::vector<std::size_t> incomplete, provers;
  for (std::size_t i = 0; i < backends.size(); ++i)
    (isExhaustive(backends[i]) ? provers : incomplete).push_back(i);
  const bool staged = request.staged_deadlines && request.deadline_seconds > 0 &&
                      request.stage1_fraction > 0 && chan != nullptr && !incomplete.empty() &&
                      !provers.empty();

  std::atomic<bool> stop{false};
  std::vector<SolveResponse> responses(backends.size());
  double stage1_seconds = 0.0;
  bool stage1_ended_early = false;
  if (staged) {
    // Stage 1: incomplete engines on a slice of the budget (they stop
    // earlier on their own limits). Proofs cannot arise here, so stage 2's
    // shared stop flag stays untouched — stage 1 gets its *own* flag, which
    // the quiet watchdog below may raise without cancelling the provers.
    SolveRequest stage1 = request;
    stage1.deadline_seconds =
        request.deadline_seconds * std::min(1.0, request.stage1_fraction);
    if (request.stage1_max_seconds > 0)
      stage1.deadline_seconds = std::min(stage1.deadline_seconds, request.stage1_max_seconds);

    // Adaptive slice: members like HO rarely finish before the slice
    // expires, but the channel usually stops improving long before — once
    // it has been quiet for `stage1_quiet_fraction` of the slice, the rest
    // of the slice buys nothing the provers could not use better. The
    // watchdog ends stage 1 early in that case; the provers then inherit
    // the saved time automatically (stage 2's budget is computed from the
    // live wall clock).
    std::atomic<bool> stage1_stop{false};
    std::atomic<bool> stage1_done{false};
    std::thread watchdog;
    if (request.stage1_quiet_fraction > 0) {
      watchdog = std::thread([&] {
        const double quiet_limit =
            std::max(0.01, request.stage1_quiet_fraction * stage1.deadline_seconds);
        std::uint64_t last_version = chan->version();
        Stopwatch quiet;
        while (!stage1_done.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          const std::uint64_t v = chan->version();
          if (v != last_version) {
            last_version = v;
            quiet.reset();
          } else if (v > 0 && quiet.seconds() >= quiet_limit) {
            // `v > 0`: a channel that has never spoken is not "quiet", it
            // is still warming up — cutting stage 1 before the first
            // publish would hand the provers an empty channel, worse than
            // the full slice ever was. If nothing publishes at all, stage 1
            // simply runs to its slice like before.
            stage1_ended_early = true;
            stage1_stop.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    {
      telemetry::Span stage1_span(request.telemetry, "portfolio", "stage1");
      runStage(problem, stage1, backends, incomplete, stage1_stop, chan, responses);
      stage1_done.store(true, std::memory_order_relaxed);
      if (watchdog.joinable()) watchdog.join();
      if (stage1_span.active() && stage1_ended_early) stage1_span.note("ended", "early");
    }
    stage1_seconds = watch.seconds();

    // Stage 2: the provers inherit everything that is left; the channel
    // already holds stage 1's best incumbent as their cutoff.
    SolveRequest stage2 = request;
    stage2.deadline_seconds = std::max(0.01, request.deadline_seconds - stage1_seconds);
    telemetry::Span stage2_span(request.telemetry, "portfolio", "stage2");
    runStage(problem, stage2, backends, provers, stop, chan, responses);
  } else {
    std::vector<std::size_t> all(backends.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    runStage(problem, request, backends, all, stop, chan, responses);
  }

  // Arbitration: proof of optimality > proof of infeasibility > best
  // incumbent (problem objective; ties to the earlier portfolio position) >
  // nothing.
  const SolveResponse* winner = nullptr;
  for (const SolveResponse& r : responses)
    if (detail::isProof(r) && r.status == SolveStatus::kOptimal) {
      winner = &r;
      break;
    }
  if (!winner)
    for (const SolveResponse& r : responses)
      if (detail::isProof(r) && r.status == SolveStatus::kInfeasible) {
        winner = &r;
        break;
      }
  if (!winner)
    for (const SolveResponse& r : responses) {
      if (!r.hasSolution()) continue;
      if (!winner || model::strictlyBetter(problem, r.costs, winner->costs)) winner = &r;
    }

  // The winner's own work count: summing across members would add B&B nodes
  // to annealer iterations, a meaningless mixed-unit figure. Per-member
  // counts stay in `members` (and each member's detail string).
  SolveResponse out = winner ? *winner : SolveResponse{};
  out.members.clear();
  for (std::size_t i = 0; i < backends.size(); ++i) {
    PortfolioMemberStats m;
    m.backend = backends[i];
    m.status = responses[i].status;
    m.stage = !staged ? 0 : (isExhaustive(backends[i]) ? 2 : 1);
    m.seconds = responses[i].seconds;
    m.nodes = responses[i].nodes;
    m.published = responses[i].incumbent_published;
    m.adopted = responses[i].incumbent_adopted;
    m.cutoff_prunes = responses[i].cutoff_prunes;
    out.members.push_back(m);
  }
  if (chan) {
    out.incumbent.source = chan->source();
    out.incumbent.publishes = chan->publishes();
    out.incumbent.adoptions = chan->adoptions();
    for (const SolveResponse& r : responses) out.incumbent.cutoff_prunes += r.cutoff_prunes;
  }
  out.incumbent.staged = staged;
  out.incumbent.stage1_seconds = stage1_seconds;
  out.incumbent.stage1_ended_early = stage1_ended_early;

  std::ostringstream detail;
  detail << "portfolio[" << backends.size() << "]";
  if (staged)
    detail << " staged(stage1=" << stage1_seconds << "s"
           << (stage1_ended_early ? ", ended early: channel quiet" : "") << ")";
  if (chan)
    detail << " incumbent(source=" << out.incumbent.source
           << " adoptions=" << out.incumbent.adoptions
           << " cutoff-prunes=" << out.incumbent.cutoff_prunes << ")";
  detail << " winner=" << (winner ? toString(out.backend) : "-");
  for (const SolveResponse& r : responses) detail << " | " << r.detail;
  out.detail = detail.str();
  out.seconds = watch.seconds();
  if (race_span.active()) race_span.note("winner", winner ? toString(out.backend) : "-");
  detail::populateMetrics(&out);
  return out;
}

}  // namespace rfp::driver
