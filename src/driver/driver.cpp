#include "driver/driver.hpp"

#include "driver/backend_runner.hpp"
#include "driver/cache.hpp"

namespace rfp::driver {

const char* toString(Backend b) noexcept {
  switch (b) {
    case Backend::kSearch: return "search";
    case Backend::kMilpO: return "milp-o";
    case Backend::kMilpHO: return "milp-ho";
    case Backend::kHeuristic: return "heuristic";
    case Backend::kAnnealer: return "annealer";
  }
  return "?";
}

std::optional<Backend> backendFromString(std::string_view name) noexcept {
  for (const Backend b : allBackends())
    if (name == toString(b)) return b;
  // CLI-friendly aliases matching rfp_cli's historical --algo values.
  if (name == "o") return Backend::kMilpO;
  if (name == "ho") return Backend::kMilpHO;
  return std::nullopt;
}

const std::vector<Backend>& allBackends() {
  static const std::vector<Backend> kAll = {Backend::kSearch, Backend::kMilpO, Backend::kMilpHO,
                                            Backend::kHeuristic, Backend::kAnnealer};
  return kAll;
}

bool isExhaustive(Backend b) noexcept {
  return b == Backend::kSearch || b == Backend::kMilpO;
}

const char* toString(SolveStatus s) noexcept {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kFeasible: return "feasible";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kNoSolution: return "no-solution";
  }
  return "?";
}

Driver::Driver() : Driver(DriverOptions{}) {}

Driver::Driver(const DriverOptions& options)
    : cache_(options.cache_entries > 0 ? std::make_shared<ResultCache>(options.cache_entries)
                                       : nullptr),
      options_(options) {}

SolveResponse Driver::solve(const model::FloorplanProblem& problem,
                            const SolveRequest& request) const {
  SolveRequest capped = request;
  detail::capInSolveThreads(&capped, options_.thread_budget);
  const detail::ProgressTicker ticker(capped.telemetry, capped.progress_interval_seconds);
  return detail::solveThroughCache(cache_.get(), problem, capped, /*external_stop=*/nullptr);
}

CacheStats Driver::cacheStats() const {
  return cache_ ? cache_->stats() : CacheStats{};
}

}  // namespace rfp::driver
