// Result cache for repeated floorplanning problems.
//
// Batch workloads (the paper's SDR design-space sweeps, re-solved under
// varying region/relocation budgets) repeat near-identical problems, yet
// every solve used to pay the full engine cost from scratch. The cache puts
// a canonical *problem fingerprint* in front of a thread-safe LRU store of
// checker-validated SolveResponses:
//
//  * The fingerprint (`fingerprintProblem`) is an order-independent
//    structural serialization of everything that determines the answer —
//    device (types, grid, forbidden areas), regions, nets, relocation
//    requests, objective mode/weights, the backend, and the answer-shaping
//    engine knobs (seeds, tolerances, restart counts). Permuting the
//    problem's region/net/relocation lists does not change the fingerprint:
//    regions are ranked by a structural signature and nets/relocations are
//    re-expressed over those ranks, so two constructions of the same problem
//    hit the same entry (ranks that tie on the signature keep their input
//    order, so a permutation among structurally ambiguous twins may miss —
//    a miss is always safe, a wrong hit never happens).
//  * Budget-style knobs (deadlines, time limits, node/iteration caps) go
//    into a separate *budget tier* of the key. An exact hit needs both tiers
//    to match; a structural-only match is a *near miss*: the store hands the
//    cached plan back as an incumbent seed instead of short-circuiting, so a
//    re-solve under a new budget starts from the old answer (cross-problem
//    incumbent reuse through the SharedIncumbent channel). Proof entries
//    (kOptimal / kInfeasible) are budget-independent truths and are served
//    as full hits whatever the requested budget.
//  * Lookups compare the full stored key (structural + budget strings), not
//    just the 64-bit hash — a hash collision can never return a wrong plan.
//  * Stored plans are remapped into canonical region/relocation order on
//    insert and back into the *requesting* problem's order on hit, so a hit
//    from a permuted twin still checker-validates against the requester.
//
// Only trustworthy responses are stored: a plan must pass model::check and
// an infeasibility verdict must be a proof (exhaustive backend); everything
// else — kNoSolution, cancelled runs, checker-rejected plans — is refused.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "driver/driver.hpp"
#include "model/floorplan.hpp"
#include "model/problem.hpp"
#include "support/sync.hpp"

namespace rfp::driver {

/// Canonical cache key of one (problem, backend, request-knobs) solve.
/// Fields are public so the collision-safety property tests can forge a
/// hash while keeping the full keys distinct.
struct Fingerprint {
  std::uint64_t hash = 0;     ///< 64-bit FNV-1a over `structural`
  std::string structural;     ///< order-independent structural serialization
  std::string budget;         ///< budget tier (deadlines / node / iter caps)
  /// Problem region index -> canonical rank (plan remap on insert/hit).
  std::vector<int> region_rank;
  /// Problem relocation index -> canonical rank (FC-area block remap).
  std::vector<int> reloc_rank;
};

/// Builds the fingerprint of solving `problem` with `backend` under
/// `request`. Engine stop flags / incumbent pointers and pure-performance
/// knobs (thread counts) are excluded — they never change what a valid
/// answer looks like.
[[nodiscard]] Fingerprint fingerprintProblem(const model::FloorplanProblem& problem,
                                             const SolveRequest& request, Backend backend);

/// Running totals of one cache instance. `seeded_incumbents` counts
/// near-miss lookups that handed a plan back as an incumbent seed.
struct CacheStats {
  long hits = 0;              ///< full hits served from the store
  long misses = 0;            ///< no structural match at all
  long seeded_incumbents = 0; ///< near misses that seeded a re-solve
  long insertions = 0;        ///< entries stored (including replacements)
  long evictions = 0;         ///< LRU evictions under capacity pressure
  long rejected = 0;          ///< responses refused (checker/proof policy)
  /// Concurrent duplicate solves answered by a flight leader's result
  /// instead of running their own engine (see ResultCache::joinFlight).
  long coalesced = 0;
};

enum class CacheOutcome {
  kMiss,      ///< nothing structurally matching stored
  kHit,       ///< full answer served (exact budget, or a stored proof)
  kNearMiss,  ///< structural match under another budget: seed, then re-solve
};

struct CacheLookup {
  CacheOutcome outcome = CacheOutcome::kMiss;
  /// kHit: the stored response, plan remapped into the caller's problem
  /// order (checker-valid for the caller by construction).
  SolveResponse response;
  /// kNearMiss: the best structurally-matching stored plan and its costs,
  /// remapped likewise — publish into a SharedIncumbent before re-solving.
  model::Floorplan seed_plan;
  model::FloorplanCosts seed_costs;
};

/// Thread-safe LRU map fingerprint -> checker-validated SolveResponse.
/// All operations take one internal lock; entries are returned by copy so
/// callers never hold references into the store.
class ResultCache {
 public:
  /// `capacity` caps the entry count (>= 1; responses are a few KiB each —
  /// a plan is one rect per region plus the FC areas).
  explicit ResultCache(std::size_t capacity);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Looks `fp` up for `problem` (the problem the caller wants answered —
  /// used to remap stored plans into its region/relocation order).
  [[nodiscard]] CacheLookup lookup(const Fingerprint& fp, const model::FloorplanProblem& problem);

  /// Offers a solve result for storage under `fp`. Returns false (and
  /// counts `rejected`) for results the store refuses to vouch for: no
  /// solution, a checker-rejected plan, a plan whose FC expansion does not
  /// match the problem, or an infeasibility verdict from a non-exhaustive
  /// backend. An existing entry under the same full key is replaced.
  bool insert(const Fingerprint& fp, const model::FloorplanProblem& problem,
              const SolveResponse& response);

  /// In-flight duplicate coalescing. A caller about to solve a cache miss
  /// announces the full key (structural + budget) here; the first announcer
  /// becomes the flight *leader* and must call finishFlight() once its
  /// result has been offered to insert() — leaders that skip this leave
  /// followers blocked for the flight's lifetime. Later announcers of the
  /// same key are *followers*: they block until the leader lands (kLanded)
  /// and should then re-run lookup(), which serves the leader's freshly
  /// stored answer; when the leader's result was refused by the insert
  /// policy the re-lookup misses and the follower re-announces, becoming
  /// the new leader. A raised stop flag aborts the wait (kCancelled): the
  /// caller solves uncoalesced — its engines unwind immediately — and must
  /// NOT call finishFlight().
  enum class FlightJoin { kLeader, kLanded, kCancelled };
  [[nodiscard]] FlightJoin joinFlight(const Fingerprint& fp, std::atomic<bool>* stop);
  void finishFlight(const Fingerprint& fp);
  /// Counts one follower served from a leader's result (CacheStats::coalesced).
  void noteCoalesced();

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string structural;
    std::string budget;
    SolveResponse canonical;  ///< plan in canonical region/relocation order
  };
  using EntryList = std::list<Entry>;

  void touch(EntryList::iterator it) RFP_REQUIRES(mutex_);

  const std::size_t capacity_;
  mutable sync::Mutex mutex_;
  EntryList lru_ RFP_GUARDED_BY(mutex_);  ///< front = most recently used
  std::unordered_multimap<std::uint64_t, EntryList::iterator> index_ RFP_GUARDED_BY(mutex_);
  CacheStats stats_ RFP_GUARDED_BY(mutex_);
  // Flight table (joinFlight/finishFlight). Guarded by its own mutex so
  // followers waiting on a leader never hold up store lookups; the two
  // locks are never nested (and must stay that way — `flight` sits above
  // `cache` in the lock-ordering hierarchy, see CONTRIBUTING.md).
  sync::Mutex flight_mu_;
  sync::CondVar flight_cv_;
  /// Full keys currently solving.
  std::unordered_set<std::string> flights_ RFP_GUARDED_BY(flight_mu_);
};

}  // namespace rfp::driver
