#include "driver/incumbent.hpp"

namespace rfp::driver {

bool SharedIncumbent::publish(const model::Floorplan& plan, const model::FloorplanCosts& costs,
                              const char* source) {
  publishes_.fetch_add(1, std::memory_order_relaxed);
  // Validate outside the lock: check() walks the whole grid, and a slow
  // publisher must not block the provers' cheap snapshot polls.
  if (!model::check(*problem_, plan).empty()) return false;

  const sync::MutexLock lock(mutex_);
  if (has_best_ && !model::strictlyBetter(*problem_, costs, best_costs_)) return false;
  best_plan_ = plan;
  best_costs_ = costs;
  source_ = source;
  has_best_ = true;
  // Release-publish after the guarded fields are written: a consumer that
  // observes the new version and then takes the lock sees this plan (or a
  // strictly better successor).
  version_.fetch_add(1, std::memory_order_release);
  return true;
}

bool SharedIncumbent::snapshotNewer(std::uint64_t* last_seen, model::Floorplan* plan,
                                    model::FloorplanCosts* costs) const {
  const std::uint64_t v = version();
  if (v == 0 || v == *last_seen) return false;
  const sync::MutexLock lock(mutex_);
  if (!has_best_) return false;
  // Re-read under the lock: the best may have advanced past `v`, and the
  // copied plan must never be older than the version we report.
  *last_seen = version();
  if (plan) *plan = best_plan_;
  if (costs) *costs = best_costs_;
  return true;
}

bool SharedIncumbent::best(model::Floorplan* plan, model::FloorplanCosts* costs) const {
  const sync::MutexLock lock(mutex_);
  if (!has_best_) return false;
  if (plan) *plan = best_plan_;
  if (costs) *costs = best_costs_;
  return true;
}

std::string SharedIncumbent::source() const {
  const sync::MutexLock lock(mutex_);
  return source_;
}

}  // namespace rfp::driver
