#include "driver/response_json.hpp"

#include "io/json.hpp"
#include "io/results.hpp"

namespace rfp::driver {

std::string solveResponseToJson(const model::FloorplanProblem& problem,
                                const SolveResponse& response) {
  io::JsonWriter w;
  w.beginObject();
  w.key("status").value(toString(response.status));
  // `backend` is only attributable alongside a solution or a proof; a
  // winner-less portfolio would otherwise pin its failure on one engine.
  if (response.hasSolution() || response.status == SolveStatus::kInfeasible)
    w.key("backend").value(toString(response.backend));
  w.key("seconds").value(response.seconds);
  w.key("served_by").value(response.served_by);
  // The winner's own work count (mixed units across backends are never
  // summed); per-member figures are in the "portfolio" array.
  w.key("nodes").value(response.nodes);
  if (!response.members.empty()) {
    w.key("portfolio").beginArray();
    for (const PortfolioMemberStats& m : response.members) {
      w.beginObject();
      w.key("backend").value(toString(m.backend));
      w.key("status").value(toString(m.status));
      if (m.stage > 0) w.key("stage").value(m.stage);
      w.key("seconds").value(m.seconds);
      w.key("nodes").value(m.nodes);
      if (m.published > 0) w.key("published").value(m.published);
      if (m.adopted > 0) w.key("adopted").value(m.adopted);
      if (m.cutoff_prunes > 0) w.key("cutoff_prunes").value(m.cutoff_prunes);
      w.endObject();
    }
    w.endArray();
  }
  if (response.incumbent.publishes > 0 || response.incumbent.staged) {
    w.key("incumbent").beginObject();
    w.key("source").value(response.incumbent.source);
    w.key("publishes").value(response.incumbent.publishes);
    w.key("adoptions").value(response.incumbent.adoptions);
    w.key("cutoff_prunes").value(response.incumbent.cutoff_prunes);
    w.key("staged").value(response.incumbent.staged);
    if (response.incumbent.staged) {
      w.key("stage1_seconds").value(response.incumbent.stage1_seconds);
      w.key("stage1_ended_early").value(response.incumbent.stage1_ended_early);
    }
    w.endObject();
  }
  if (response.cache_hit || response.cache_seeded || response.coalesced) {
    w.key("cache").beginObject();
    w.key("hit").value(response.cache_hit);
    w.key("seeded").value(response.cache_seeded);
    w.key("coalesced").value(response.coalesced);
    w.endObject();
  }
  if (!response.workers.empty()) {
    w.key("steals").value(response.steals);
    w.key("workers").beginArray();
    for (const SolveWorkerStats& s : response.workers) {
      w.beginObject();
      w.key("id").value(s.id);
      w.key("nodes").value(s.nodes);
      w.key("steals").value(s.steals);
      w.key("stolen").value(s.stolen);
      if (s.lp_solves > 0) {
        w.key("lp_solves").value(s.lp_solves);
        w.key("lp_warm_hits").value(s.lp_warm_hits);
      }
      w.key("idle_seconds").value(s.idle_seconds);
      w.endObject();
    }
    w.endArray();
  }
  if (response.lp.solves > 0) {
    w.key("lp").beginObject();
    w.key("engine").value(response.lp.engine);
    w.key("solves").value(response.lp.solves);
    w.key("iterations").value(response.lp.iterations);
    w.key("refactorizations").value(response.lp.refactorizations);
    w.key("warm_start_hits").value(response.lp.warm_start_hits);
    w.key("warm_start_hit_rate").value(response.lp.warmStartHitRate());
    w.key("primal_pivots").value(response.lp.primal_pivots);
    w.key("dual_pivots").value(response.lp.dual_pivots);
    w.key("bound_flips").value(response.lp.bound_flips);
    w.key("ft_updates").value(response.lp.ft_updates);
    w.key("dual_reopts").value(response.lp.dual_reopts);
    w.key("dual_reopt_rate").value(response.lp.dualReoptRate());
    w.key("ftran_sparse").value(response.lp.ftran_sparse);
    w.key("ftran_dense").value(response.lp.ftran_dense);
    w.key("btran_sparse").value(response.lp.btran_sparse);
    w.key("btran_dense").value(response.lp.btran_dense);
    w.key("dse_updates").value(response.lp.dse_updates);
    w.key("sparse_solve_rate").value(response.lp.sparseSolveRate());
    w.endObject();
  }
  if (!response.metrics.empty()) {
    w.key("metrics").beginObject();
    for (const auto& [name, value] : response.metrics) w.key(name).value(value);
    w.endObject();
  }
  w.key("detail").value(response.detail);
  if (response.hasSolution())
    w.key("floorplan").rawValue(io::floorplanToJson(problem, response.plan));
  w.endObject();
  return w.str();
}

}  // namespace rfp::driver
