#include "driver/cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "driver/backend_runner.hpp"
#include "driver/incumbent.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace rfp::driver {

namespace {

// Doubles are serialized with full round-trip precision: the key must
// distinguish every value the engines could behave differently on.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// The device is serialized fully (types, grid, forbidden areas) rather than
// by name: identity of structure, not of label, decides reuse. Tile-type
// *order* is kept as given — region requirement vectors index types by id,
// so permuting types is a genuinely different encoding, unlike permuting
// regions/nets below.
std::string serializeDevice(const device::Device& dev) {
  std::string s = "dev{";
  s += std::to_string(dev.width()) + "x" + std::to_string(dev.height()) + ";types[";
  for (int t = 0; t < dev.numTileTypes(); ++t) {
    const device::TileType& tt = dev.tileType(t);
    s += "t{f=" + std::to_string(tt.frames) + ";res[";
    for (const auto& [name, count] : tt.resources)  // std::map: already ordered
      s += name + "=" + std::to_string(count) + ",";
    s += "]};";
  }
  s += "];grid[";
  if (dev.isColumnar()) {
    s += "cols:";
    for (int x = 0; x < dev.width(); ++x) s += std::to_string(dev.columnType(x)) + ",";
  } else {
    s += "full:";
    for (int y = 0; y < dev.height(); ++y)
      for (int x = 0; x < dev.width(); ++x) s += std::to_string(dev.typeAt(x, y)) + ",";
  }
  s += "];forb[";
  std::vector<std::string> forb;
  forb.reserve(dev.forbidden().size());
  for (const device::Rect& r : dev.forbidden())
    forb.push_back(std::to_string(r.x) + "," + std::to_string(r.y) + "," + std::to_string(r.w) +
                   "," + std::to_string(r.h) + ";");
  std::sort(forb.begin(), forb.end());
  for (const std::string& f : forb) s += f;
  s += "]}";
  return s;
}

std::string tilesKey(const model::RegionSpec& r) {
  // Trailing zeros are implicit (required() pads with 0), so trim them: a
  // {6,1} region and a {6,1,0} region are the same requirement.
  std::size_t n = r.tiles.size();
  while (n > 0 && r.tiles[n - 1] == 0) --n;
  std::string s;
  for (std::size_t i = 0; i < n; ++i) s += std::to_string(r.tiles[i]) + ",";
  return s;
}

/// Permutation-invariant signature of one region: its requirement vector
/// plus the multisets of incident net and relocation descriptors. Regions
/// are canonically ranked by this signature; ties keep input order (two
/// regions tying here are structurally ambiguous at depth one — a permuted
/// twin may then produce a different canonical string, which is a safe miss).
std::string regionSignature(const model::FloorplanProblem& problem, int i) {
  std::string s = "t[" + tilesKey(problem.region(i)) + "]n[";
  std::vector<std::string> nets;
  for (const model::Net& net : problem.nets()) {
    int mult = 0;
    for (const int r : net.regions) mult += r == i ? 1 : 0;
    if (mult > 0)
      nets.push_back("w=" + fmt(net.weight) + ";a=" + std::to_string(net.regions.size()) +
                     ";m=" + std::to_string(mult) + "|");
  }
  std::sort(nets.begin(), nets.end());
  for (const std::string& n : nets) s += n;
  s += "]r[";
  std::vector<std::string> relocs;
  for (const model::RelocationRequest& rr : problem.relocations())
    if (rr.region == i)
      relocs.push_back("c=" + std::to_string(rr.count) + ";h=" + std::to_string(rr.hard ? 1 : 0) +
                       ";w=" + fmt(rr.weight) + "|");
  std::sort(relocs.begin(), relocs.end());
  for (const std::string& r : relocs) s += r;
  s += "]";
  return s;
}

/// FC-area block offset of each canonical relocation rank in a
/// canonical-order plan (prefix sums of the request counts by rank).
std::vector<int> canonicalFcOffsets(const Fingerprint& fp,
                                    const model::FloorplanProblem& problem) {
  const auto& relocs = problem.relocations();
  std::vector<int> count_by_rank(relocs.size(), 0);
  for (std::size_t j = 0; j < relocs.size(); ++j)
    count_by_rank[static_cast<std::size_t>(fp.reloc_rank[j])] = std::max(0, relocs[j].count);
  std::vector<int> offsets(relocs.size(), 0);
  int acc = 0;
  for (std::size_t r = 0; r < relocs.size(); ++r) {
    offsets[r] = acc;
    acc += count_by_rank[r];
  }
  return offsets;
}

std::vector<int> problemFcOffsets(const model::FloorplanProblem& problem) {
  const auto& relocs = problem.relocations();
  std::vector<int> offsets(relocs.size(), 0);
  int acc = 0;
  for (std::size_t j = 0; j < relocs.size(); ++j) {
    offsets[j] = acc;
    acc += std::max(0, relocs[j].count);
  }
  return offsets;
}

/// Remaps a plan in `problem` order into canonical order. False when the
/// plan's shape does not match the problem (such plans are not cacheable).
bool toCanonicalPlan(const Fingerprint& fp, const model::FloorplanProblem& problem,
                     const model::Floorplan& in, model::Floorplan* out) {
  const std::size_t regions = static_cast<std::size_t>(problem.numRegions());
  if (in.regions.size() != regions) return false;
  out->regions.assign(regions, device::Rect{});
  for (std::size_t i = 0; i < regions; ++i)
    out->regions[static_cast<std::size_t>(fp.region_rank[i])] = in.regions[i];

  const std::size_t fc_total = static_cast<std::size_t>(problem.totalFcAreas());
  if (in.fc_areas.size() != fc_total) return false;
  out->fc_areas.assign(fc_total, model::FcArea{});
  const std::vector<int> prob_off = problemFcOffsets(problem);
  const std::vector<int> can_off = canonicalFcOffsets(fp, problem);
  const auto& relocs = problem.relocations();
  for (std::size_t j = 0; j < relocs.size(); ++j)
    for (int k = 0; k < std::max(0, relocs[j].count); ++k) {
      model::FcArea a = in.fc_areas[static_cast<std::size_t>(prob_off[j] + k)];
      if (a.region >= 0 && a.region < problem.numRegions())
        a.region = fp.region_rank[static_cast<std::size_t>(a.region)];
      out->fc_areas[static_cast<std::size_t>(
          can_off[static_cast<std::size_t>(fp.reloc_rank[j])] + k)] = a;
    }
  return true;
}

/// Remaps a canonical-order plan into `problem` order. The FC areas are
/// rebuilt from the problem's own expansion (region ids and weights come
/// from the requester) with placements copied over, so the result is
/// exactly what a native solve of `problem` would have produced.
bool fromCanonicalPlan(const Fingerprint& fp, const model::FloorplanProblem& problem,
                       const model::Floorplan& canonical, model::Floorplan* out) {
  const std::size_t regions = static_cast<std::size_t>(problem.numRegions());
  if (canonical.regions.size() != regions) return false;
  out->regions.assign(regions, device::Rect{});
  for (std::size_t i = 0; i < regions; ++i)
    out->regions[i] = canonical.regions[static_cast<std::size_t>(fp.region_rank[i])];

  std::vector<model::FcArea> base = model::expandFcRequests(problem);
  if (canonical.fc_areas.size() != base.size()) return false;
  const std::vector<int> prob_off = problemFcOffsets(problem);
  const std::vector<int> can_off = canonicalFcOffsets(fp, problem);
  const auto& relocs = problem.relocations();
  for (std::size_t j = 0; j < relocs.size(); ++j)
    for (int k = 0; k < std::max(0, relocs[j].count); ++k) {
      const model::FcArea& src = canonical.fc_areas[static_cast<std::size_t>(
          can_off[static_cast<std::size_t>(fp.reloc_rank[j])] + k)];
      model::FcArea& dst = base[static_cast<std::size_t>(prob_off[j] + k)];
      dst.rect = src.rect;
      dst.placed = src.placed;
    }
  out->fc_areas = std::move(base);
  return true;
}

[[nodiscard]] bool isProofStatus(SolveStatus s) noexcept {
  return s == SolveStatus::kOptimal || s == SolveStatus::kInfeasible;
}

/// Flight-table key: the full cache key. The hash alone would let a
/// collision chain two unrelated solves together (a follower waiting on a
/// leader that will never answer its problem).
std::string flightKey(const Fingerprint& fp) {
  std::string key = fp.structural;
  key += '\x1f';
  key += fp.budget;
  return key;
}

}  // namespace

Fingerprint fingerprintProblem(const model::FloorplanProblem& problem,
                               const SolveRequest& request, Backend backend) {
  Fingerprint fp;
  const int regions = problem.numRegions();

  // Canonical region ranks: sort by structural signature, ties keep input
  // order (stable), so any permutation of distinguishable regions lands on
  // the same ranking.
  std::vector<int> order(static_cast<std::size_t>(regions));
  for (int i = 0; i < regions; ++i) order[static_cast<std::size_t>(i)] = i;
  std::vector<std::string> sig(static_cast<std::size_t>(regions));
  for (int i = 0; i < regions; ++i)
    sig[static_cast<std::size_t>(i)] = regionSignature(problem, i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return sig[static_cast<std::size_t>(a)] < sig[static_cast<std::size_t>(b)];
  });
  fp.region_rank.assign(static_cast<std::size_t>(regions), 0);
  for (int pos = 0; pos < regions; ++pos)
    fp.region_rank[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] = pos;

  std::string s = serializeDevice(problem.dev());
  const model::ObjectiveWeights& q = problem.weights();
  s += "obj{lex=" + std::to_string(problem.lexicographic() ? 1 : 0) + ";q=" + fmt(q.q1_wirelength) +
       "," + fmt(q.q2_perimeter) + "," + fmt(q.q3_wasted) + "," + fmt(q.q4_relocation) + "}";

  s += "reg[";
  for (int pos = 0; pos < regions; ++pos)
    s += tilesKey(problem.region(order[static_cast<std::size_t>(pos)])) + ";";
  s += "]nets[";
  std::vector<std::string> nets;
  nets.reserve(problem.nets().size());
  for (const model::Net& net : problem.nets()) {
    std::vector<int> ends;
    ends.reserve(net.regions.size());
    for (const int r : net.regions)
      ends.push_back(r >= 0 && r < regions ? fp.region_rank[static_cast<std::size_t>(r)] : r);
    std::sort(ends.begin(), ends.end());
    std::string n = "n{";
    for (const int e : ends) n += std::to_string(e) + ",";
    n += ";w=" + fmt(net.weight) + "}";
    nets.push_back(std::move(n));
  }
  std::sort(nets.begin(), nets.end());
  for (const std::string& n : nets) s += n;
  s += "]rel[";
  const auto& relocs = problem.relocations();
  std::vector<int> rorder(relocs.size());
  for (std::size_t j = 0; j < relocs.size(); ++j) rorder[j] = static_cast<int>(j);
  std::vector<std::string> rsig(relocs.size());
  for (std::size_t j = 0; j < relocs.size(); ++j) {
    const model::RelocationRequest& rr = relocs[j];
    const int g = rr.region >= 0 && rr.region < regions
                      ? fp.region_rank[static_cast<std::size_t>(rr.region)]
                      : rr.region;
    rsig[j] = "r{g=" + std::to_string(g) + ";c=" + std::to_string(rr.count) +
              ";h=" + std::to_string(rr.hard ? 1 : 0) + ";w=" + fmt(rr.weight) + "}";
  }
  std::stable_sort(rorder.begin(), rorder.end(), [&](int a, int b) {
    return rsig[static_cast<std::size_t>(a)] < rsig[static_cast<std::size_t>(b)];
  });
  fp.reloc_rank.assign(relocs.size(), 0);
  for (std::size_t pos = 0; pos < rorder.size(); ++pos)
    fp.reloc_rank[static_cast<std::size_t>(rorder[pos])] = static_cast<int>(pos);
  for (std::size_t pos = 0; pos < rorder.size(); ++pos)
    s += rsig[static_cast<std::size_t>(rorder[pos])];
  s += "]";

  // Backend plus its answer-shaping knobs. Stop flags, incumbent channels
  // and thread counts are excluded: they change how fast a valid answer
  // arrives, never which answers are valid.
  s += "be=" + std::string(toString(backend)) + ";";
  switch (backend) {
    case Backend::kSearch:
      s += "search{fo=" + std::to_string(request.search.feasibility_only ? 1 : 0) +
           ";wb=" + std::to_string(request.search.waste_budget) +
           ";ow=" + std::to_string(request.search.optimize_wirelength ? 1 : 0) + "}";
      break;
    case Backend::kMilpO:
    case Backend::kMilpHO: {
      const fp::MilpFloorplannerOptions& m = request.milp;
      s += "milp{gap=" + fmt(m.milp.gap_tol) + ";int=" + fmt(m.milp.int_tol) +
           ";gib=" + fmt(m.max_lp_gib) + ";off=" + std::to_string(static_cast<int>(m.formulation.offset)) +
           ";tm=" + std::to_string(static_cast<int>(m.formulation.type_match)) +
           ";ob=" + std::to_string(static_cast<int>(m.formulation.objective)) +
           ";pre=" + std::to_string(m.milp.enable_presolve ? 1 : 0) +
           ";cut=" + std::to_string(m.milp.enable_cover_cuts ? 1 : 0) +
           ";cr=" + std::to_string(m.milp.cut_rounds) + "}";
      if (backend == Backend::kMilpHO)
        s += "heur{r=" + std::to_string(m.heuristic.restarts) +
             ";s=" + std::to_string(m.heuristic.seed) +
             ";fc=" + std::to_string(m.heuristic.place_fc_areas ? 1 : 0) + "}";
      break;
    }
    case Backend::kHeuristic:
      s += "heur{r=" + std::to_string(request.heuristic.restarts) +
           ";s=" + std::to_string(request.heuristic.seed) +
           ";fc=" + std::to_string(request.heuristic.place_fc_areas ? 1 : 0) + "}";
      break;
    case Backend::kAnnealer:
      s += "sa{s=" + std::to_string(request.annealer.seed) +
           ";T=" + fmt(request.annealer.initial_temperature) +
           ";c=" + fmt(request.annealer.cooling) + ";ww=" + fmt(request.annealer.waste_weight) +
           ";wl=" + fmt(request.annealer.wirelength_weight) + "}";
      break;
  }
  fp.structural = std::move(s);
  fp.hash = fnv1a(fp.structural);

  // Budget tier: every knob that truncates work without redefining the
  // answer. Same structure + different budget = near miss (incumbent seed).
  std::string b = "d=" + fmt(request.deadline_seconds) + ";";
  switch (backend) {
    case Backend::kSearch:
      b += "tl=" + fmt(request.search.time_limit_seconds) +
           ";nl=" + std::to_string(request.search.node_limit);
      break;
    case Backend::kMilpO:
    case Backend::kMilpHO:
      b += "tl=" + fmt(request.milp.time_limit_seconds) +
           ";mtl=" + fmt(request.milp.milp.time_limit_seconds) +
           ";nl=" + std::to_string(request.milp.milp.node_limit) +
           ";htl=" + fmt(request.milp.heuristic.time_limit_seconds);
      break;
    case Backend::kHeuristic: b += "tl=" + fmt(request.heuristic.time_limit_seconds); break;
    case Backend::kAnnealer:
      b += "tl=" + fmt(request.annealer.time_limit_seconds) +
           ";it=" + std::to_string(request.annealer.iterations);
      break;
  }
  fp.budget = std::move(b);
  return fp;
}

// ---- ResultCache -----------------------------------------------------------

ResultCache::ResultCache(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

void ResultCache::touch(EntryList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);  // list iterators stay valid
}

CacheLookup ResultCache::lookup(const Fingerprint& fp, const model::FloorplanProblem& problem) {
  CacheLookup out;
  const sync::MutexLock lock(mutex_);
  // Full-key comparison: the hash only narrows the candidate set, equality
  // is decided on the stored structural/budget strings. A forged or
  // accidental hash collision therefore falls through to a miss.
  EntryList::iterator exact = lru_.end(), proof = lru_.end(), best = lru_.end();
  const auto range = index_.equal_range(fp.hash);
  for (auto it = range.first; it != range.second; ++it) {
    const EntryList::iterator e = it->second;
    if (e->structural != fp.structural) continue;
    if (e->budget == fp.budget && exact == lru_.end()) exact = e;
    if (isProofStatus(e->canonical.status)) {
      // Prefer an optimality proof over an infeasibility one (both are
      // budget-independent; only one carries a plan).
      if (proof == lru_.end() || e->canonical.status == SolveStatus::kOptimal) proof = e;
    } else if (e->canonical.hasSolution()) {
      if (best == lru_.end() ||
          model::strictlyBetter(problem, e->canonical.costs, best->canonical.costs))
        best = e;
    }
  }

  // A stored proof answers any budget; otherwise only the exact budget may
  // short-circuit. A remaining structural match seeds instead of serving.
  const EntryList::iterator hit = proof != lru_.end() ? proof : exact;
  if (hit != lru_.end()) {
    out.response = hit->canonical;
    bool ok = true;
    if (out.response.hasSolution()) {
      model::Floorplan remapped;
      ok = fromCanonicalPlan(fp, problem, out.response.plan, &remapped);
      if (ok) out.response.plan = std::move(remapped);
    }
    if (ok) {
      // A served hit performed no engine work: zero the work telemetry so
      // batch-level aggregation does not count the original solve's nodes
      // and pivots once per duplicate (status/plan/costs stay — they are
      // the answer, not the work).
      out.response.nodes = 0;
      out.response.lp = LpStats{};
      out.response.incumbent_published = 0;
      out.response.incumbent_adopted = 0;
      out.response.cutoff_prunes = 0;
      out.outcome = CacheOutcome::kHit;
      touch(hit);
      ++stats_.hits;
      return out;
    }
    out.response = SolveResponse{};  // shape mismatch: treat as a miss
  }
  if (best != lru_.end()) {
    model::Floorplan remapped;
    if (fromCanonicalPlan(fp, problem, best->canonical.plan, &remapped)) {
      out.outcome = CacheOutcome::kNearMiss;
      out.seed_plan = std::move(remapped);
      out.seed_costs = best->canonical.costs;
      touch(best);
      ++stats_.seeded_incumbents;
      return out;
    }
  }
  ++stats_.misses;
  return out;
}

bool ResultCache::insert(const Fingerprint& fp, const model::FloorplanProblem& problem,
                         const SolveResponse& response) {
  // Validation happens outside the lock: model::check walks the whole grid.
  Entry entry;
  entry.hash = fp.hash;
  entry.structural = fp.structural;
  entry.budget = fp.budget;
  entry.canonical = response;
  // Provenance flags describe the solve that produced the response, not
  // the lookups that will serve it — a later hit must not report the
  // original near-miss seeding as its own.
  entry.canonical.cache_hit = false;
  entry.canonical.cache_seeded = false;
  if (response.status == SolveStatus::kInfeasible) {
    // Only a proof may be cached as infeasibility; anything else could be a
    // truncation artifact.
    if (!isExhaustive(response.backend)) {
      const sync::MutexLock lock(mutex_);
      ++stats_.rejected;
      return false;
    }
    entry.canonical.plan = model::Floorplan{};
  } else if (response.hasSolution()) {
    model::Floorplan canonical;
    if (!model::check(problem, response.plan).empty() ||
        !toCanonicalPlan(fp, problem, response.plan, &canonical)) {
      const sync::MutexLock lock(mutex_);
      ++stats_.rejected;
      return false;
    }
    entry.canonical.plan = std::move(canonical);
  } else {
    // kNoSolution carries nothing worth remembering (and is budget-bound).
    const sync::MutexLock lock(mutex_);
    ++stats_.rejected;
    return false;
  }

  const sync::MutexLock lock(mutex_);
  // Replace an existing entry under the same full key (latest answer wins;
  // typically it is the same or strictly fresher).
  auto range = index_.equal_range(fp.hash);
  for (auto it = range.first; it != range.second; ++it) {
    const EntryList::iterator e = it->second;
    if (e->structural == fp.structural && e->budget == fp.budget) {
      lru_.erase(e);
      index_.erase(it);
      break;
    }
  }
  lru_.push_front(std::move(entry));
  index_.emplace(fp.hash, lru_.begin());
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    const EntryList::iterator victim = std::prev(lru_.end());
    auto vrange = index_.equal_range(victim->hash);
    for (auto it = vrange.first; it != vrange.second; ++it)
      if (it->second == victim) {
        index_.erase(it);
        break;
      }
    lru_.erase(victim);
    ++stats_.evictions;
  }
  return true;
}

ResultCache::FlightJoin ResultCache::joinFlight(const Fingerprint& fp, std::atomic<bool>* stop) {
  const std::string key = flightKey(fp);
  sync::UniqueLock lock(flight_mu_);
  for (;;) {
    if (flights_.insert(key).second) return FlightJoin::kLeader;
    // An identical solve is in flight. Check the stop flag *before* waiting:
    // a follower arriving with cancellation already raised must unwind
    // immediately, not sleep out a timeout first (its engines would only be
    // cancelled again anyway).
    if (stop && stop->load(std::memory_order_relaxed)) return FlightJoin::kCancelled;
    // Wait for the leader to land. The wait wakes on the leader's
    // finishFlight() broadcast; the timeout only bounds how stale a raised
    // stop flag can go unnoticed.
    flight_cv_.wait_for(lock, std::chrono::milliseconds(10));
    if (flights_.count(key) == 0) return FlightJoin::kLanded;
    if (stop && stop->load(std::memory_order_relaxed)) return FlightJoin::kCancelled;
  }
}

void ResultCache::finishFlight(const Fingerprint& fp) {
  {
    const sync::MutexLock lock(flight_mu_);
    flights_.erase(flightKey(fp));
  }
  flight_cv_.notify_all();
}

void ResultCache::noteCoalesced() {
  const sync::MutexLock lock(mutex_);
  ++stats_.coalesced;
}

CacheStats ResultCache::stats() const {
  const sync::MutexLock lock(mutex_);
  return stats_;
}

std::size_t ResultCache::size() const {
  const sync::MutexLock lock(mutex_);
  return lru_.size();
}

// ---- cached dispatch --------------------------------------------------------

namespace detail {

namespace {

/// The incumbent channel the caller configured in the request's engine
/// options for `backend`, if any. The near-miss seed must go *there* —
/// replacing it with a cache-internal channel would hide publishes (and a
/// pre-published cutoff) from a caller who asked to observe them.
SharedIncumbent* requestChannel(const SolveRequest& request, Backend backend) noexcept {
  switch (backend) {
    case Backend::kSearch: return request.search.incumbent;
    case Backend::kMilpO:
    case Backend::kMilpHO: return request.milp.incumbent;
    case Backend::kHeuristic: return request.heuristic.incumbent;
    case Backend::kAnnealer: return request.annealer.incumbent;
  }
  return nullptr;
}

/// True when a stop flag that could have truncated this run is raised —
/// the portfolio/batch override *or* a flag the caller wired into the
/// request's engine options. A truncated result is cut at an arbitrary
/// point and must never be cached as this budget tier's answer.
bool stopRaised(const SolveRequest& request, Backend backend,
                std::atomic<bool>* external_stop) noexcept {
  if (external_stop && external_stop->load(std::memory_order_relaxed)) return true;
  const auto raised = [](const std::atomic<bool>* s) {
    return s && s->load(std::memory_order_relaxed);
  };
  switch (backend) {
    case Backend::kSearch: return raised(request.search.stop);
    case Backend::kMilpO:
    case Backend::kMilpHO:
      return raised(request.milp.milp.stop) || raised(request.milp.heuristic.stop);
    case Backend::kHeuristic: return raised(request.heuristic.stop);
    case Backend::kAnnealer: return raised(request.annealer.stop);
  }
  return false;
}

/// Cache-event observability: an instant on the trace and a counter bump in
/// the registry, both tolerant of a null/partial context.
void noteCacheEvent(const telemetry::Context* ctx, const char* name, const char* counter_name) {
  telemetry::instant(ctx, "cache", name);
  if (ctx != nullptr && ctx->metrics != nullptr) ctx->metrics->counter(counter_name).increment();
}

}  // namespace

SolveResponse solveThroughCache(ResultCache* cache, const model::FloorplanProblem& problem,
                                const SolveRequest& request, std::atomic<bool>* external_stop,
                                const SolveRequest* key_request, const char* budget_context) {
  if (cache == nullptr || !request.use_cache)
    return runBackend(problem, request, request.backend, external_stop);

  Stopwatch watch;
  Fingerprint fp =
      fingerprintProblem(problem, key_request ? *key_request : request, request.backend);
  if (budget_context) fp.budget += std::string(";ctx=") + budget_context;
  CacheLookup lk = cache->lookup(fp, problem);
  // In-flight duplicate coalescing: a miss or near miss is about to run an
  // engine, so announce the full key first (ResultCache::joinFlight). The
  // first announcer leads and solves; a caller that joined while an
  // identical solve was already running blocks until the leader lands and
  // re-looks-up — the leader's freshly stored answer turns the miss into a
  // hit, so each unique in-flight fingerprint runs its engine exactly once.
  // When the leader's result was refused by the insert policy the re-lookup
  // still misses and the follower takes over as the new leader.
  bool leading = false;
  bool coalesced = false;
  while (lk.outcome != CacheOutcome::kHit) {
    const ResultCache::FlightJoin join = cache->joinFlight(fp, external_stop);
    if (join == ResultCache::FlightJoin::kLeader) {
      leading = true;
      break;
    }
    if (join == ResultCache::FlightJoin::kCancelled)
      break;  // stop raised while waiting: solve uncoalesced, engines unwind fast
    coalesced = true;  // kLanded
    lk = cache->lookup(fp, problem);
  }
  if (lk.outcome == CacheOutcome::kHit) {
    lk.response.cache_hit = true;
    if (coalesced) {
      lk.response.coalesced = true;
      lk.response.detail += " [coalesced]";
      cache->noteCoalesced();
      noteCacheEvent(request.telemetry, "flight_join", "cache.coalesced");
    } else {
      noteCacheEvent(request.telemetry, "hit", "cache.hits");
    }
    // Provenance: nobody ran an engine for this response, and the stored
    // copy's members/workers describe the *original* solve. Say so instead
    // of looking like an engine run with silently empty telemetry.
    lk.response.served_by = coalesced ? "flight-follower" : "cache";
    lk.response.detail += " [cache hit]";
    lk.response.seconds = watch.seconds();  // this call's cost, not the original solve's
    // Observer invariant: a caller watching the solve through its own
    // incumbent channel sees the answer whether an engine ran or not.
    if (lk.response.hasSolution())
      if (SharedIncumbent* caller = requestChannel(request, request.backend))
        caller->publish(lk.response.plan, lk.response.costs, "cache");
    return lk.response;
  }

  if (lk.outcome == CacheOutcome::kNearMiss) {
    // Same structure under another budget: do not short-circuit (the new
    // budget may buy a better answer) but seed the engines' incumbent
    // channel with the cached plan, so provers start with a cutoff and the
    // result can never be worse than what the cache already knew. A
    // caller-configured channel is seeded in place (and keeps receiving
    // the engine's publishes); only otherwise does the cache bring its own.
    SharedIncumbent local(problem);
    SharedIncumbent* caller = requestChannel(request, request.backend);
    (caller ? caller : &local)->publish(lk.seed_plan, lk.seed_costs, "cache");
    noteCacheEvent(request.telemetry, "near_miss_seed", "cache.seeded");
    SolveResponse res = runBackend(problem, request, request.backend, external_stop,
                                   caller ? nullptr : &local);
    res.cache_seeded = true;
    if (!res.hasSolution() && res.status != SolveStatus::kInfeasible) {
      res.status = SolveStatus::kFeasible;
      res.plan = lk.seed_plan;
      res.costs = lk.seed_costs;
      res.detail += " [cache seed returned]";
    } else if (res.hasSolution() && res.status != SolveStatus::kOptimal &&
               model::strictlyBetter(problem, lk.seed_costs, res.costs)) {
      // Engines that cannot consume the channel (annealer) may come back
      // worse than the seed; arbitration keeps the better plan.
      res.plan = lk.seed_plan;
      res.costs = lk.seed_costs;
      res.detail += " [cache seed kept: re-solve was worse]";
    }
    if (!stopRaised(request, request.backend, external_stop)) cache->insert(fp, problem, res);
    if (leading) cache->finishFlight(fp);  // after insert: followers re-lookup and hit
    return res;
  }

  noteCacheEvent(request.telemetry, "miss", "cache.misses");
  SolveResponse res = runBackend(problem, request, request.backend, external_stop);
  // A cancelled run is truncated at an arbitrary point — not a trustworthy
  // representative of this budget tier.
  if (!stopRaised(request, request.backend, external_stop)) cache->insert(fp, problem, res);
  if (leading) cache->finishFlight(fp);  // after insert: followers re-lookup and hit
  return res;
}

}  // namespace detail

}  // namespace rfp::driver
