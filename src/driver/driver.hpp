// Unified solve orchestration over the interchangeable floorplanning engines.
//
// The repo ships four ways to floorplan the same `model::FloorplanProblem`:
// the exact columnar branch-and-bound search (src/search), the MILP
// floorplanners O and HO over the from-scratch simplex (src/fp + src/milp),
// the constructive heuristic (src/fp), and the simulated annealer
// (src/baseline). The driver gives them one request/response API and three
// execution modes:
//
//  * single    — dispatch to one backend (Driver::solve),
//  * portfolio — run several backends concurrently on std::thread; the first
//    proven-optimal (or proven-infeasible) result cancels the rest via the
//    engines' cooperative stop flags, and at the deadline the best incumbent
//    wins (Driver::solvePortfolio),
//  * batch     — solve N problems across a thread pool for throughput
//    (Driver::solveBatch); per-problem results are independent of the pool
//    size.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/annealer.hpp"
#include "fp/milp_floorplanner.hpp"
#include "model/floorplan.hpp"
#include "model/problem.hpp"
#include "search/solver.hpp"

namespace rfp::driver {

enum class Backend {
  kSearch,     ///< exact columnar branch-and-bound (proves optimality)
  kMilpO,      ///< MILP, full solution space (proves optimality)
  kMilpHO,     ///< MILP restricted by a heuristic sequence pair (no proofs)
  kHeuristic,  ///< constructive heuristic, first feasible solution
  kAnnealer,   ///< simulated-annealing baseline
};

[[nodiscard]] const char* toString(Backend b) noexcept;
[[nodiscard]] std::optional<Backend> backendFromString(std::string_view name) noexcept;

/// Every dispatchable backend, exact engines first.
[[nodiscard]] const std::vector<Backend>& allBackends();

/// True for engines whose completed run is a proof (optimality or
/// infeasibility): exact search and MILP O. HO explores a restricted space
/// and the heuristic/annealer are incomplete.
[[nodiscard]] bool isExhaustive(Backend b) noexcept;

enum class SolveStatus {
  kOptimal,     ///< proven optimal by an exhaustive backend
  kFeasible,    ///< valid floorplan without an optimality proof
  kInfeasible,  ///< proven infeasible by an exhaustive backend
  kNoSolution,  ///< nothing found before the limits hit
};

[[nodiscard]] const char* toString(SolveStatus s) noexcept;

struct SolveRequest {
  Backend backend = Backend::kSearch;  ///< single-backend + batch dispatch
  /// Portfolio composition; empty selects {search, milp-o, milp-ho,
  /// annealer}. Ignored outside solvePortfolio().
  std::vector<Backend> portfolio;
  /// Wall-clock budget per solve; <= 0: none. Tightens (never loosens) the
  /// per-backend time limits below.
  double deadline_seconds = 0.0;
  /// Intra-backend parallelism for the exact search (root decomposition);
  /// takes the max with search.num_threads.
  int num_threads = 1;
  // Per-backend knobs. Engine stop flags are overridden by the portfolio's
  // shared cancellation flag.
  search::SearchOptions search;
  fp::MilpFloorplannerOptions milp;
  fp::HeuristicOptions heuristic;
  baseline::AnnealerOptions annealer;
};

/// LP substrate telemetry of a MILP-backed solve (zero `solves` otherwise):
/// which simplex engine ran, how hard it worked, and how often branch &
/// bound could reoptimize a node from its parent's basis.
struct LpStats {
  std::string engine;           ///< "dense" / "sparse"; empty when no LP ran
  long solves = 0;              ///< LP relaxations solved
  long iterations = 0;          ///< total simplex iterations
  long warm_start_hits = 0;     ///< solves that adopted a parent basis
  long refactorizations = 0;    ///< sparse engine: basis refactorizations
  // Pivot-class breakdown (sparse engine): how the node LPs were actually
  // reoptimized, and how often the factors were patched (Forrest–Tomlin)
  // instead of rebuilt.
  long primal_pivots = 0;       ///< basis changes made by the primal simplex
  long dual_pivots = 0;         ///< basis changes made by the dual simplex
  long bound_flips = 0;         ///< bound-to-bound moves without a basis change
  long ft_updates = 0;          ///< Forrest–Tomlin factor updates applied
  long dual_reopts = 0;         ///< node solves answered by the dual fast path

  [[nodiscard]] double warmStartHitRate() const noexcept {
    return solves > 0 ? static_cast<double>(warm_start_hits) / static_cast<double>(solves) : 0.0;
  }
  [[nodiscard]] double dualReoptRate() const noexcept {
    return solves > 0 ? static_cast<double>(dual_reopts) / static_cast<double>(solves) : 0.0;
  }
};

struct SolveResponse {
  SolveStatus status = SolveStatus::kNoSolution;
  /// Engine that produced this result (the portfolio winner). Only
  /// meaningful when hasSolution() or the status is a kInfeasible proof — a
  /// winner-less portfolio keeps the default and `detail` says "winner=-".
  Backend backend = Backend::kSearch;
  model::Floorplan plan;               ///< valid when hasSolution()
  model::FloorplanCosts costs;
  double seconds = 0.0;  ///< wall clock of this solve (portfolio: overall)
  long nodes = 0;        ///< backend-specific work measure (nodes/iterations)
  std::string detail;    ///< per-backend diagnostics
  LpStats lp;            ///< LP substrate telemetry (MILP backends)

  [[nodiscard]] bool hasSolution() const noexcept {
    return status == SolveStatus::kOptimal || status == SolveStatus::kFeasible;
  }
};

class Driver {
 public:
  Driver() = default;

  /// Single-backend mode: dispatch to `request.backend`.
  [[nodiscard]] SolveResponse solve(const model::FloorplanProblem& problem,
                                    const SolveRequest& request) const;

  /// Portfolio mode: run `request.portfolio` concurrently, one std::thread
  /// per backend. A proven result (optimal/infeasible from an exhaustive
  /// backend) cancels the others; otherwise everyone runs to its limit and
  /// the best incumbent under the problem's objective wins.
  [[nodiscard]] SolveResponse solvePortfolio(const model::FloorplanProblem& problem,
                                             const SolveRequest& request) const;

  /// Batch mode: solve every problem with the single-backend dispatch across
  /// a pool of `pool_threads` threads. Results are positionally aligned with
  /// `problems` and, for deadline-free requests, independent of the pool
  /// size (a wall-clock deadline can truncate a solve differently under
  /// pool contention).
  [[nodiscard]] std::vector<SolveResponse> solveBatch(
      const std::vector<const model::FloorplanProblem*>& problems, const SolveRequest& request,
      int pool_threads) const;
};

}  // namespace rfp::driver
