// Unified solve orchestration over the interchangeable floorplanning engines.
//
// The repo ships four ways to floorplan the same `model::FloorplanProblem`:
// the exact columnar branch-and-bound search (src/search), the MILP
// floorplanners O and HO over the from-scratch simplex (src/fp + src/milp),
// the constructive heuristic (src/fp), and the simulated annealer
// (src/baseline). The driver gives them one request/response API and three
// execution modes:
//
//  * single    — dispatch to one backend (Driver::solve),
//  * portfolio — run several backends on std::thread, cooperating through a
//    SharedIncumbent exchange channel next to the shared stop flag: the
//    incomplete engines publish improving floorplans mid-run, the provers
//    consume them as objective cutoffs and publish back, the first proof
//    cancels the rest, and at the deadline the best incumbent wins. With a
//    deadline, the race is staged: the incomplete engines get a short first
//    slice whose incumbent seeds the provers' cutoff, then the provers
//    inherit the remaining budget (Driver::solvePortfolio),
//  * batch     — solve N problems across a thread pool for throughput
//    (Driver::solveBatch); per-problem results are independent of the pool
//    size. An external stop flag and an overall deadline cancel the whole
//    batch cooperatively.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/annealer.hpp"
#include "fp/milp_floorplanner.hpp"
#include "model/floorplan.hpp"
#include "model/problem.hpp"
#include "search/solver.hpp"

namespace rfp::telemetry {
struct Context;  // support/telemetry/trace.hpp
}

namespace rfp::driver {

enum class Backend {
  kSearch,     ///< exact columnar branch-and-bound (proves optimality)
  kMilpO,      ///< MILP, full solution space (proves optimality)
  kMilpHO,     ///< MILP restricted by a heuristic sequence pair (no proofs)
  kHeuristic,  ///< constructive heuristic, first feasible solution
  kAnnealer,   ///< simulated-annealing baseline
};

[[nodiscard]] const char* toString(Backend b) noexcept;
[[nodiscard]] std::optional<Backend> backendFromString(std::string_view name) noexcept;

/// Every dispatchable backend, exact engines first.
[[nodiscard]] const std::vector<Backend>& allBackends();

/// True for engines whose completed run is a proof (optimality or
/// infeasibility): exact search and MILP O. HO explores a restricted space
/// and the heuristic/annealer are incomplete.
[[nodiscard]] bool isExhaustive(Backend b) noexcept;

enum class SolveStatus {
  kOptimal,     ///< proven optimal by an exhaustive backend
  kFeasible,    ///< valid floorplan without an optimality proof
  kInfeasible,  ///< proven infeasible by an exhaustive backend
  kNoSolution,  ///< nothing found before the limits hit
};

[[nodiscard]] const char* toString(SolveStatus s) noexcept;

struct SolveRequest {
  Backend backend = Backend::kSearch;  ///< single-backend + batch dispatch
  /// Portfolio composition; empty selects {search, milp-o, milp-ho,
  /// annealer}. Ignored outside solvePortfolio().
  std::vector<Backend> portfolio;
  /// Wall-clock budget per solve; <= 0: none. Tightens (never loosens) the
  /// per-backend time limits below.
  double deadline_seconds = 0.0;
  /// In-solve parallelism: work-stealing workers inside one solve. Takes the
  /// max with search.num_threads (exact search) and milp.milp.threads (MILP
  /// branch & bound). Thread count changes which optimal solution is
  /// returned, never the status or the objective value.
  int num_threads = 1;
  /// Portfolio: share incumbents between the backends through a
  /// SharedIncumbent channel (publish/consume as objective cutoffs). The
  /// result is never worse than the blind race — an adopted incumbent only
  /// tightens pruning and arbitration already ranked published plans.
  bool incumbent_exchange = true;
  /// Portfolio: staged deadline splitting. With a deadline, an exchange
  /// channel, and a portfolio mixing incomplete engines with provers, the
  /// incomplete engines run first on `stage1_fraction * deadline_seconds`
  /// (they typically finish earlier on their own limits), their best
  /// incumbent seeds the provers' cutoff, and the provers inherit the whole
  /// remaining budget. Without a deadline (or with the fraction at 0) every
  /// backend races concurrently.
  bool staged_deadlines = true;
  /// Fraction of `deadline_seconds` granted to the incomplete first stage.
  double stage1_fraction = 0.25;
  /// Absolute cap on the first stage's slice (<= 0: none). Members like HO
  /// rarely finish before their slice expires, so without a cap a generous
  /// deadline imposes `stage1_fraction * deadline` of latency before any
  /// prover starts — even on instances the provers settle in seconds.
  double stage1_max_seconds = 10.0;
  /// Staged portfolios: end stage 1 as soon as the incumbent channel has
  /// gone *quiet* (no adopted publish) for this fraction of the stage-1
  /// slice. Members like HO rarely finish before the slice expires, yet the
  /// channel typically stops improving long before — the remaining slice is
  /// latency the provers could be using. <= 0: stage 1 always runs its full
  /// slice.
  double stage1_quiet_fraction = 0.3;
  /// Solve-scoped observability (support/telemetry): when set, the driver
  /// threads the context into every engine it dispatches (spans + live
  /// counters land in the context's recorder/registry) and wraps each
  /// backend run in a "driver"-category span. Portfolio mode shares one
  /// context across all members — the trace shows the whole race. The
  /// pointee (and its recorder/registry) must outlive the solve.
  const telemetry::Context* telemetry = nullptr;
  /// With `telemetry->metrics` set and a positive interval, the driver logs
  /// a progress line (nodes / LP solves / steals from the live registry)
  /// every this-many seconds at info level while the solve runs.
  double progress_interval_seconds = 0.0;
  /// Consult the driver's result cache (when the Driver has one) before
  /// dispatching, and store checker-validated results after. Applies to
  /// solve() and solveBatch(); portfolio racing is never cached (its value
  /// is the race itself, and its A/B comparisons must stay honest).
  bool use_cache = true;
  // Per-backend knobs. Engine stop flags and incumbent channels are
  // overridden by the portfolio's shared cancellation flag and exchange
  // channel.
  search::SearchOptions search;
  fp::MilpFloorplannerOptions milp;
  fp::HeuristicOptions heuristic;
  baseline::AnnealerOptions annealer;
};

/// LP substrate telemetry of a MILP-backed solve (zero `solves` otherwise):
/// which simplex engine ran, how hard it worked, and how often branch &
/// bound could reoptimize a node from its parent's basis.
struct LpStats {
  std::string engine;           ///< "dense" / "sparse"; empty when no LP ran
  long solves = 0;              ///< LP relaxations solved
  long iterations = 0;          ///< total simplex iterations
  long warm_start_hits = 0;     ///< solves that adopted a parent basis
  long refactorizations = 0;    ///< sparse engine: basis refactorizations
  // Pivot-class breakdown (sparse engine): how the node LPs were actually
  // reoptimized, and how often the factors were patched (Forrest–Tomlin)
  // instead of rebuilt.
  long primal_pivots = 0;       ///< basis changes made by the primal simplex
  long dual_pivots = 0;         ///< basis changes made by the dual simplex
  long bound_flips = 0;         ///< bound-to-bound moves without a basis change
  long ft_updates = 0;          ///< Forrest–Tomlin factor updates applied
  long dual_reopts = 0;         ///< node solves answered by the dual fast path
  // Hyper-sparse kernel breakdown: which path each triangular solve took
  // (graph-driven reachability vs dense sweep), and how many exact dual
  // steepest-edge weight updates ran.
  long ftran_sparse = 0;        ///< FTRANs through the graph-driven sparse path
  long ftran_dense = 0;         ///< FTRANs through the dense sweep
  long btran_sparse = 0;        ///< BTRANs through the graph-driven sparse path
  long btran_dense = 0;         ///< BTRANs through the dense sweep
  long dse_updates = 0;         ///< steepest-edge weight recurrence applications

  [[nodiscard]] double sparseSolveRate() const noexcept {
    const long total = ftran_sparse + ftran_dense + btran_sparse + btran_dense;
    return total > 0
               ? static_cast<double>(ftran_sparse + btran_sparse) / static_cast<double>(total)
               : 0.0;
  }
  [[nodiscard]] double warmStartHitRate() const noexcept {
    return solves > 0 ? static_cast<double>(warm_start_hits) / static_cast<double>(solves) : 0.0;
  }
  [[nodiscard]] double dualReoptRate() const noexcept {
    return solves > 0 ? static_cast<double>(dual_reopts) / static_cast<double>(solves) : 0.0;
  }
};

/// Incumbent-exchange telemetry of a portfolio solve (defaults outside
/// portfolio mode or with the exchange disabled).
struct IncumbentStats {
  std::string source = "-";  ///< engine that published the final shared best
  long publishes = 0;        ///< publish attempts on the channel
  long adoptions = 0;        ///< improving publishes the channel adopted
  long cutoff_prunes = 0;    ///< prover nodes pruned against an external cutoff
  bool staged = false;       ///< staged deadline splitting was in effect
  double stage1_seconds = 0.0;  ///< wall clock of the incomplete first stage
  /// Stage 1 was cut short because the channel went quiet (see
  /// SolveRequest::stage1_quiet_fraction); the provers inherited the saved
  /// time on top of their stage-2 budget.
  bool stage1_ended_early = false;
};

/// Per-member outcome of a portfolio solve. `nodes` is in the member's own
/// unit (B&B nodes for the exact engines, iterations for the annealer), so
/// figures from different members must not be summed.
struct PortfolioMemberStats {
  Backend backend = Backend::kSearch;
  SolveStatus status = SolveStatus::kNoSolution;
  int stage = 0;  ///< 1 = incomplete slice, 2 = prover stage (0 = flat race)
  double seconds = 0.0;
  long nodes = 0;
  long published = 0;      ///< incumbents this member offered to the channel
  long adopted = 0;        ///< external incumbents this member adopted
  long cutoff_prunes = 0;  ///< nodes this member pruned on an external cutoff
};

/// Per-worker telemetry of an in-solve work-stealing scheduler (exact
/// search and parallel MILP branch & bound; empty for single-threaded
/// solves and the incomplete engines). Field meanings follow the engine's
/// own stats: `nodes` are B&B nodes the worker expanded, `stolen` counts
/// work items acquired from other workers' deques.
struct SolveWorkerStats {
  int id = 0;
  long nodes = 0;
  long steals = 0;          ///< successful steal operations performed
  long stolen = 0;          ///< work items acquired through those steals
  long lp_solves = 0;       ///< MILP workers: LP relaxations solved
  long lp_warm_hits = 0;    ///< MILP workers: solves warm-started from a basis
  double idle_seconds = 0.0;
};

struct SolveResponse {
  SolveStatus status = SolveStatus::kNoSolution;
  /// Engine that produced this result (the portfolio winner). Only
  /// meaningful when hasSolution() or the status is a kInfeasible proof — a
  /// winner-less portfolio keeps the default and `detail` says "winner=-".
  Backend backend = Backend::kSearch;
  model::Floorplan plan;               ///< valid when hasSolution()
  model::FloorplanCosts costs;
  double seconds = 0.0;  ///< wall clock of this solve (portfolio: overall)
  /// Backend-specific work measure (B&B nodes / annealer iterations) of the
  /// backend that produced this result. A portfolio reports the *winner's
  /// own* count — never a sum across members, whose units differ; the
  /// per-member figures live in `members`.
  long nodes = 0;
  std::string detail;    ///< per-backend diagnostics
  LpStats lp;            ///< LP substrate telemetry (MILP backends)
  // Incumbent-exchange telemetry of this backend's run (portfolio members).
  long incumbent_published = 0;
  long incumbent_adopted = 0;
  long cutoff_prunes = 0;
  IncumbentStats incumbent;                  ///< portfolio channel summary
  std::vector<PortfolioMemberStats> members; ///< portfolio: one per member
  // In-solve work-stealing telemetry (num_threads > 1 on an exact backend):
  // one entry per worker, plus the steal total across all workers.
  std::vector<SolveWorkerStats> workers;
  long steals = 0;
  // Result-cache provenance (driver/cache.hpp): served from the store
  // without running an engine, or re-solved with the cached plan published
  // into the incumbent channel (near miss under a different budget).
  bool cache_hit = false;
  bool cache_seeded = false;
  /// This response was answered by a concurrent identical solve: the caller
  /// arrived while the same fingerprint was in flight, blocked on the
  /// leader's result and was served from the store (cache_hit is also set).
  bool coalesced = false;
  /// Who actually produced the plan bytes in this response: "engine" (a
  /// backend ran), "cache" (served from the result store without running
  /// anything), or "flight-follower" (a concurrent identical solve's
  /// result, served through the in-flight coalescer). Unlike the flag trio
  /// above this is always populated — cache hits used to return responses
  /// whose `members`/`workers` were silently empty with nothing saying why.
  std::string served_by = "engine";
  /// Flat numeric metrics of this solve (nodes, steals, lp.* counters,
  /// incumbent exchange totals — dotted lowercase names, see README
  /// "Observability"). Built from the engines' own result structs, so the
  /// map is exact and populated even without a telemetry context; a
  /// portfolio reports the winner's engine figures plus channel totals.
  std::map<std::string, double> metrics;

  [[nodiscard]] bool hasSolution() const noexcept {
    return status == SolveStatus::kOptimal || status == SolveStatus::kFeasible;
  }
};

class ResultCache;   // driver/cache.hpp
struct CacheStats;   // driver/cache.hpp

struct DriverOptions {
  /// Capacity (entries) of the result cache consulted by solve() and
  /// solveBatch(); 0 disables caching entirely. Entries are checker-
  /// validated SolveResponses, a few KiB each.
  std::size_t cache_entries = 128;
  /// Shared thread budget across batch pool and in-solve workers; <= 0: no
  /// cap. solveBatch never lets `pool_threads * in_solve_threads` exceed
  /// this: the pool width is capped at the budget and each dispatched
  /// solve's in-solve worker count (SolveRequest::num_threads and the
  /// per-engine thread knobs) is capped at `budget / pool_width`, so a
  /// duplicate-heavy batch with parallel B&B enabled does not oversubscribe
  /// the machine. solve() caps its in-solve workers at the full budget.
  int thread_budget = 0;
};

class Driver {
 public:
  Driver();
  explicit Driver(const DriverOptions& options);

  /// Single-backend mode: dispatch to `request.backend`. Consults the
  /// result cache first (see DriverOptions::cache_entries and
  /// SolveRequest::use_cache): an exact or proof hit is returned without
  /// running an engine, a near miss (same structure, different budget)
  /// seeds the engine's incumbent channel with the cached plan.
  [[nodiscard]] SolveResponse solve(const model::FloorplanProblem& problem,
                                    const SolveRequest& request) const;

  /// Portfolio mode: run `request.portfolio` on std::thread, one per
  /// backend, cooperating through a SharedIncumbent channel (see
  /// SolveRequest::incumbent_exchange). A proven result (optimal/infeasible
  /// from an exhaustive backend) cancels the others; otherwise everyone runs
  /// to its limit and the best incumbent under the problem's objective wins.
  /// With a deadline the race is staged (see SolveRequest::staged_deadlines):
  /// incomplete engines first on a short slice, provers on the remainder
  /// with the stage-1 incumbent as their cutoff.
  [[nodiscard]] SolveResponse solvePortfolio(const model::FloorplanProblem& problem,
                                             const SolveRequest& request) const;

  /// Batch mode: solve every problem with the single-backend dispatch across
  /// a pool of `pool_threads` threads, each solve going through the result
  /// cache first (duplicates of an already-answered problem cost a lookup).
  /// Results are positionally aligned with `problems` and, for deadline-free
  /// requests, independent of the pool size (a wall-clock deadline can
  /// truncate a solve differently under pool contention).
  ///
  /// `stop` (optional) cancels the whole batch cooperatively: in-flight
  /// solves unwind through the engines' stop flags (overriding any flag
  /// configured in the request's engine options) and problems not yet
  /// dispatched return kNoSolution with a "cancelled" detail.
  /// `deadline_seconds` (<= 0: none) is an overall wall-clock budget for the
  /// batch, split *fairly*: each dispatched problem receives a slice of
  /// `remaining_wall * pool_threads / remaining_problems` (never more than
  /// the remaining wall clock) instead of first-come-first-served access to
  /// the whole budget, so no problem starves because an earlier one was
  /// slow. Time a cache hit or an early finisher does not use flows back
  /// into the slices of the problems still queued. Problems dispatched after
  /// expiry return kNoSolution.
  [[nodiscard]] std::vector<SolveResponse> solveBatch(
      const std::vector<const model::FloorplanProblem*>& problems, const SolveRequest& request,
      int pool_threads, std::atomic<bool>* stop = nullptr, double deadline_seconds = 0.0) const;

  /// The result cache shared by solve()/solveBatch(); nullptr when disabled.
  [[nodiscard]] ResultCache* cache() const noexcept { return cache_.get(); }
  /// Snapshot of the cache's telemetry (zeros when the cache is disabled).
  [[nodiscard]] CacheStats cacheStats() const;

 private:
  std::shared_ptr<ResultCache> cache_;  ///< shared so Driver copies share it
  DriverOptions options_;
};

}  // namespace rfp::driver
