// JSON serialization of driver solve outcomes. Lives in the driver layer
// (not io) so the low-level serialization module stays engine-agnostic; the
// floorplan body is composed from io::floorplanToJson.
#pragma once

#include <string>

#include "driver/driver.hpp"
#include "model/problem.hpp"

namespace rfp::driver {

/// Serializes a solve outcome: status/backend/timing header plus the full
/// floorplan document when a solution exists. The `backend` field is only
/// emitted when it is attributable (a solution or an infeasibility proof).
[[nodiscard]] std::string solveResponseToJson(const model::FloorplanProblem& problem,
                                              const SolveResponse& response);

}  // namespace rfp::driver
