#include "driver/backend_runner.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "driver/incumbent.hpp"
#include "fp/heuristic.hpp"
#include "support/log.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace rfp::driver::detail {

namespace {

SolveStatus fromSearch(search::SearchStatus s) noexcept {
  switch (s) {
    case search::SearchStatus::kOptimal: return SolveStatus::kOptimal;
    case search::SearchStatus::kFeasible: return SolveStatus::kFeasible;
    case search::SearchStatus::kInfeasible: return SolveStatus::kInfeasible;
    case search::SearchStatus::kNoSolution: return SolveStatus::kNoSolution;
  }
  return SolveStatus::kNoSolution;
}

SolveStatus fromFp(fp::FpStatus s) noexcept {
  switch (s) {
    case fp::FpStatus::kOptimal: return SolveStatus::kOptimal;
    case fp::FpStatus::kFeasible: return SolveStatus::kFeasible;
    case fp::FpStatus::kInfeasible: return SolveStatus::kInfeasible;
    case fp::FpStatus::kNoSolution: return SolveStatus::kNoSolution;
  }
  return SolveStatus::kNoSolution;
}

SolveResponse runSearch(const model::FloorplanProblem& problem, const SolveRequest& request,
                        std::atomic<bool>* external_stop, SharedIncumbent* channel) {
  search::SearchOptions opt = request.search;
  opt.mode = problem.lexicographic() ? search::ObjectiveMode::kLexicographic
                                     : search::ObjectiveMode::kWeighted;
  opt.num_threads = std::max({1, opt.num_threads, request.num_threads});
  opt.time_limit_seconds = cappedLimit(opt.time_limit_seconds, request.deadline_seconds);
  if (external_stop) opt.stop = external_stop;
  if (channel) opt.incumbent = channel;
  if (!opt.telemetry) opt.telemetry = request.telemetry;

  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(problem);
  SolveResponse out;
  out.status = fromSearch(res.status);
  out.plan = res.plan;
  out.costs = res.costs;
  out.seconds = res.seconds;
  out.nodes = res.nodes;
  out.incumbent_published = res.published;
  out.incumbent_adopted = res.adopted;
  out.cutoff_prunes = res.external_prunes;
  out.steals = res.steals;
  if (res.workers.size() > 1) {
    out.workers.reserve(res.workers.size());
    for (const search::SearchWorkerStats& w : res.workers) {
      SolveWorkerStats s;
      s.id = w.id;
      s.nodes = w.nodes;
      s.steals = w.steals;
      s.stolen = w.stolen_tasks;
      s.idle_seconds = w.idle_seconds;
      out.workers.push_back(s);
    }
  }
  std::ostringstream d;
  d << "search: " << search::toString(res.status) << " nodes=" << res.nodes;
  if (res.adopted > 0 || res.external_prunes > 0)
    d << " adopted=" << res.adopted << " cutoff-prunes=" << res.external_prunes;
  if (res.workers.size() > 1)
    d << " workers=" << res.workers.size() << " steals=" << res.steals;
  out.detail = d.str();
  return out;
}

SolveResponse runMilp(const model::FloorplanProblem& problem, const SolveRequest& request,
                      Backend backend, std::atomic<bool>* external_stop,
                      SharedIncumbent* channel) {
  fp::MilpFloorplannerOptions opt = request.milp;
  opt.algorithm = backend == Backend::kMilpO ? fp::Algorithm::kO : fp::Algorithm::kHO;
  opt.lexicographic = problem.lexicographic();
  opt.milp.threads = std::max({1, opt.milp.threads, request.num_threads});
  opt.time_limit_seconds = cappedLimit(opt.time_limit_seconds, request.deadline_seconds);
  if (external_stop) {
    // Override both stage flags: a caller-set heuristic.stop would otherwise
    // shadow the portfolio's cancellation in the warm-start stage.
    opt.milp.stop = external_stop;
    opt.heuristic.stop = external_stop;
  }
  if (channel) opt.incumbent = channel;
  if (!opt.milp.telemetry) opt.milp.telemetry = request.telemetry;

  const fp::FpResult res = fp::MilpFloorplanner(opt).solve(problem);
  SolveResponse out;
  out.status = fromFp(res.status);
  // HO's MILP runs with sequence-pair constraints extracted from one
  // heuristic solution; an infeasible verdict there only covers the
  // restricted space, so it is no proof for the full problem.
  if (backend == Backend::kMilpHO && out.status == SolveStatus::kInfeasible)
    out.status = SolveStatus::kNoSolution;
  if (res.hasSolution()) {
    out.plan = res.plan;
    out.costs = res.costs;
  }
  out.seconds = res.seconds;
  out.nodes = res.nodes;
  if (res.lp_solves > 0) {
    out.lp.engine = lp::toString(res.lp_engine);
    out.lp.solves = res.lp_solves;
    out.lp.iterations = res.lp_iterations;
    out.lp.warm_start_hits = res.lp_warm_hits;
    out.lp.refactorizations = res.lp_refactorizations;
    out.lp.primal_pivots = res.lp_primal_pivots;
    out.lp.dual_pivots = res.lp_dual_pivots;
    out.lp.bound_flips = res.lp_bound_flips;
    out.lp.ft_updates = res.lp_ft_updates;
    out.lp.dual_reopts = res.lp_dual_reopts;
    out.lp.ftran_sparse = res.lp_ftran_sparse;
    out.lp.ftran_dense = res.lp_ftran_dense;
    out.lp.btran_sparse = res.lp_btran_sparse;
    out.lp.btran_dense = res.lp_btran_dense;
    out.lp.dse_updates = res.lp_dse_updates;
  }
  out.incumbent_published = res.published;
  out.incumbent_adopted = res.adopted;
  out.cutoff_prunes = res.external_prunes;
  out.steals = res.steals;
  if (res.workers.size() > 1) {
    out.workers.reserve(res.workers.size());
    for (const milp::MipWorkerStats& w : res.workers) {
      SolveWorkerStats s;
      s.id = w.id;
      s.nodes = w.nodes;
      s.steals = w.steals;
      s.stolen = w.stolen_nodes;
      s.lp_solves = w.lp_solves;
      s.lp_warm_hits = w.lp_warm_hits;
      s.idle_seconds = w.idle_seconds;
      out.workers.push_back(s);
    }
  }
  out.detail = std::string(toString(backend)) + ": " + res.detail;
  return out;
}

SolveResponse runHeuristic(const model::FloorplanProblem& problem, const SolveRequest& request,
                           std::atomic<bool>* external_stop, SharedIncumbent* channel) {
  Stopwatch watch;
  fp::HeuristicOptions opt = request.heuristic;
  opt.time_limit_seconds = cappedLimit(opt.time_limit_seconds, request.deadline_seconds);
  if (external_stop) opt.stop = external_stop;
  if (channel) opt.incumbent = channel;
  if (!opt.telemetry) opt.telemetry = request.telemetry;
  const std::optional<model::Floorplan> plan = fp::constructiveFloorplan(problem, opt);
  SolveResponse out;
  if (plan) {
    out.status = SolveStatus::kFeasible;
    out.plan = *plan;
    out.costs = model::evaluate(problem, out.plan);
    out.incumbent_published = channel ? 1 : 0;
    out.detail = "heuristic: feasible";
  } else {
    out.detail = "heuristic: no feasible construction";
  }
  out.seconds = watch.seconds();
  return out;
}

SolveResponse runAnnealer(const model::FloorplanProblem& problem, const SolveRequest& request,
                          std::atomic<bool>* external_stop, SharedIncumbent* channel) {
  Stopwatch watch;
  baseline::AnnealerOptions opt = request.annealer;
  opt.time_limit_seconds = cappedLimit(opt.time_limit_seconds, request.deadline_seconds);
  if (external_stop) opt.stop = external_stop;
  if (channel) opt.incumbent = channel;
  if (!opt.telemetry) opt.telemetry = request.telemetry;
  const std::optional<baseline::AnnealResult> res = baseline::annealFloorplan(problem, opt);
  SolveResponse out;
  if (res) {
    out.status = SolveStatus::kFeasible;
    out.plan = res->plan;
    out.costs = res->costs;
    out.nodes = res->iterations;
    out.incumbent_published = res->published;
    std::ostringstream d;
    d << "annealer: feasible iterations=" << res->iterations
      << " accepted=" << res->accepted_moves;
    out.detail = d.str();
  } else {
    out.detail = "annealer: no feasible starting floorplan";
  }
  out.seconds = watch.seconds();
  return out;
}

}  // namespace

double cappedLimit(double configured, double deadline) noexcept {
  if (deadline <= 0) return configured;
  return configured > 0 ? std::min(configured, deadline) : deadline;
}

void capInSolveThreads(SolveRequest* request, int budget) noexcept {
  if (budget <= 0) return;
  request->num_threads = std::clamp(request->num_threads, 1, budget);
  request->search.num_threads = std::clamp(request->search.num_threads, 1, budget);
  request->milp.milp.threads = std::clamp(request->milp.milp.threads, 1, budget);
}

bool isProof(const SolveResponse& response) noexcept {
  return isExhaustive(response.backend) && (response.status == SolveStatus::kOptimal ||
                                            response.status == SolveStatus::kInfeasible);
}

ProgressTicker::ProgressTicker(const telemetry::Context* ctx, double interval_seconds) {
  if (ctx == nullptr || ctx->metrics == nullptr || interval_seconds <= 0) return;
  telemetry::MetricsRegistry* reg = ctx->metrics;
  thread_ = std::thread([this, reg, interval_seconds] {
    const auto interval = std::chrono::duration<double>(interval_seconds);
    sync::UniqueLock lock(mu_);
    // Timed wait instead of a sleep-poll: a full interval elapsing emits a
    // tick, while the destructor's notify ends the thread immediately
    // rather than after a nap (a 1 ms solve used to pay a 20 ms ticker).
    while (!cv_.wait_for(lock, interval, [this]() RFP_REQUIRES(mu_) { return stop_; })) {
      // Live reads race the workers' relaxed bumps on purpose: a progress
      // line may run a beat behind, never wrong by more than in-flight adds.
      const long nodes =
          reg->counter("search.nodes").total() + reg->counter("milp.nodes").total();
      const long steals =
          reg->counter("search.steals").total() + reg->counter("milp.steals").total();
      RFP_LOG_INFO("progress: nodes=" << nodes
                                      << " lp_solves=" << reg->counter("lp.solves").total()
                                      << " lp_iterations=" << reg->counter("lp.iterations").total()
                                      << " steals=" << steals << " incumbent_adoptions="
                                      << reg->counter("incumbent.adoptions").total());
    }
  });
}

ProgressTicker::~ProgressTicker() {
  if (thread_.joinable()) {
    {
      const sync::MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
}

void populateMetrics(SolveResponse* response) {
  std::map<std::string, double>& m = response->metrics;
  m["nodes"] = static_cast<double>(response->nodes);
  m["seconds"] = response->seconds;
  if (!response->workers.empty() || response->steals > 0) {
    m["steals"] = static_cast<double>(response->steals);
    m["workers"] = static_cast<double>(response->workers.size());
  }
  if (response->lp.solves > 0) {
    m["lp.solves"] = static_cast<double>(response->lp.solves);
    m["lp.iterations"] = static_cast<double>(response->lp.iterations);
    m["lp.warm_start_hits"] = static_cast<double>(response->lp.warm_start_hits);
    m["lp.warm_start_hit_rate"] = response->lp.warmStartHitRate();
    m["lp.refactorizations"] = static_cast<double>(response->lp.refactorizations);
    m["lp.primal_pivots"] = static_cast<double>(response->lp.primal_pivots);
    m["lp.dual_pivots"] = static_cast<double>(response->lp.dual_pivots);
    m["lp.bound_flips"] = static_cast<double>(response->lp.bound_flips);
    m["lp.ft_updates"] = static_cast<double>(response->lp.ft_updates);
    m["lp.dual_reopts"] = static_cast<double>(response->lp.dual_reopts);
    m["lp.dual_reopt_rate"] = response->lp.dualReoptRate();
    m["lp.ftran_sparse"] = static_cast<double>(response->lp.ftran_sparse);
    m["lp.ftran_dense"] = static_cast<double>(response->lp.ftran_dense);
    m["lp.btran_sparse"] = static_cast<double>(response->lp.btran_sparse);
    m["lp.btran_dense"] = static_cast<double>(response->lp.btran_dense);
    m["lp.dse_updates"] = static_cast<double>(response->lp.dse_updates);
    m["lp.sparse_solve_rate"] = response->lp.sparseSolveRate();
  }
  if (response->incumbent_published > 0 || response->incumbent_adopted > 0 ||
      response->cutoff_prunes > 0) {
    m["incumbent.published"] = static_cast<double>(response->incumbent_published);
    m["incumbent.adopted"] = static_cast<double>(response->incumbent_adopted);
    m["incumbent.cutoff_prunes"] = static_cast<double>(response->cutoff_prunes);
  }
  if (response->incumbent.publishes > 0 || response->incumbent.staged) {
    m["portfolio.publishes"] = static_cast<double>(response->incumbent.publishes);
    m["portfolio.adoptions"] = static_cast<double>(response->incumbent.adoptions);
    m["portfolio.stage1_seconds"] = response->incumbent.stage1_seconds;
  }
  if (!response->members.empty())
    m["portfolio.members"] = static_cast<double>(response->members.size());
}

SolveResponse runBackend(const model::FloorplanProblem& problem, const SolveRequest& request,
                         Backend backend, std::atomic<bool>* external_stop,
                         SharedIncumbent* channel) {
  telemetry::Span backend_span(request.telemetry, "driver", toString(backend));
  SolveResponse out;
  switch (backend) {
    case Backend::kSearch: out = runSearch(problem, request, external_stop, channel); break;
    case Backend::kMilpO:
    case Backend::kMilpHO:
      out = runMilp(problem, request, backend, external_stop, channel);
      break;
    case Backend::kHeuristic:
      out = runHeuristic(problem, request, external_stop, channel);
      break;
    case Backend::kAnnealer: out = runAnnealer(problem, request, external_stop, channel); break;
  }
  out.backend = backend;
  // Boundary guarantee: a run that ends with the shared stop flag set was
  // cancelled, and a cancelled run is not a proof — whatever slipped through
  // the engine's own truncation handling (e.g. a verdict computed before the
  // flag was raised, or an LP cut short mid-pivot behind an "exhausted"
  // tree) is downgraded here. The cancelling winner holds the real proof.
  if (external_stop && external_stop->load(std::memory_order_relaxed)) {
    if (out.status == SolveStatus::kOptimal) {
      out.status = SolveStatus::kFeasible;
      out.detail += " [cancelled: optimality claim downgraded]";
    } else if (out.status == SolveStatus::kInfeasible) {
      out.status = SolveStatus::kNoSolution;
      out.detail += " [cancelled: infeasibility claim downgraded]";
    }
  }
  if (backend_span.active()) {
    backend_span.arg("nodes", static_cast<double>(out.nodes));
    backend_span.note("status", toString(out.status));
  }
  populateMetrics(&out);
  return out;
}

}  // namespace rfp::driver::detail
