#include "driver/backend_runner.hpp"

#include <algorithm>
#include <sstream>

#include "driver/incumbent.hpp"
#include "fp/heuristic.hpp"
#include "support/timer.hpp"

namespace rfp::driver::detail {

namespace {

SolveStatus fromSearch(search::SearchStatus s) noexcept {
  switch (s) {
    case search::SearchStatus::kOptimal: return SolveStatus::kOptimal;
    case search::SearchStatus::kFeasible: return SolveStatus::kFeasible;
    case search::SearchStatus::kInfeasible: return SolveStatus::kInfeasible;
    case search::SearchStatus::kNoSolution: return SolveStatus::kNoSolution;
  }
  return SolveStatus::kNoSolution;
}

SolveStatus fromFp(fp::FpStatus s) noexcept {
  switch (s) {
    case fp::FpStatus::kOptimal: return SolveStatus::kOptimal;
    case fp::FpStatus::kFeasible: return SolveStatus::kFeasible;
    case fp::FpStatus::kInfeasible: return SolveStatus::kInfeasible;
    case fp::FpStatus::kNoSolution: return SolveStatus::kNoSolution;
  }
  return SolveStatus::kNoSolution;
}

SolveResponse runSearch(const model::FloorplanProblem& problem, const SolveRequest& request,
                        std::atomic<bool>* external_stop, SharedIncumbent* channel) {
  search::SearchOptions opt = request.search;
  opt.mode = problem.lexicographic() ? search::ObjectiveMode::kLexicographic
                                     : search::ObjectiveMode::kWeighted;
  opt.num_threads = std::max({1, opt.num_threads, request.num_threads});
  opt.time_limit_seconds = cappedLimit(opt.time_limit_seconds, request.deadline_seconds);
  if (external_stop) opt.stop = external_stop;
  if (channel) opt.incumbent = channel;

  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(problem);
  SolveResponse out;
  out.status = fromSearch(res.status);
  out.plan = res.plan;
  out.costs = res.costs;
  out.seconds = res.seconds;
  out.nodes = res.nodes;
  out.incumbent_published = res.published;
  out.incumbent_adopted = res.adopted;
  out.cutoff_prunes = res.external_prunes;
  out.steals = res.steals;
  if (res.workers.size() > 1) {
    out.workers.reserve(res.workers.size());
    for (const search::SearchWorkerStats& w : res.workers) {
      SolveWorkerStats s;
      s.id = w.id;
      s.nodes = w.nodes;
      s.steals = w.steals;
      s.stolen = w.stolen_tasks;
      s.idle_seconds = w.idle_seconds;
      out.workers.push_back(s);
    }
  }
  std::ostringstream d;
  d << "search: " << search::toString(res.status) << " nodes=" << res.nodes;
  if (res.adopted > 0 || res.external_prunes > 0)
    d << " adopted=" << res.adopted << " cutoff-prunes=" << res.external_prunes;
  if (res.workers.size() > 1)
    d << " workers=" << res.workers.size() << " steals=" << res.steals;
  out.detail = d.str();
  return out;
}

SolveResponse runMilp(const model::FloorplanProblem& problem, const SolveRequest& request,
                      Backend backend, std::atomic<bool>* external_stop,
                      SharedIncumbent* channel) {
  fp::MilpFloorplannerOptions opt = request.milp;
  opt.algorithm = backend == Backend::kMilpO ? fp::Algorithm::kO : fp::Algorithm::kHO;
  opt.lexicographic = problem.lexicographic();
  opt.milp.threads = std::max({1, opt.milp.threads, request.num_threads});
  opt.time_limit_seconds = cappedLimit(opt.time_limit_seconds, request.deadline_seconds);
  if (external_stop) {
    // Override both stage flags: a caller-set heuristic.stop would otherwise
    // shadow the portfolio's cancellation in the warm-start stage.
    opt.milp.stop = external_stop;
    opt.heuristic.stop = external_stop;
  }
  if (channel) opt.incumbent = channel;

  const fp::FpResult res = fp::MilpFloorplanner(opt).solve(problem);
  SolveResponse out;
  out.status = fromFp(res.status);
  // HO's MILP runs with sequence-pair constraints extracted from one
  // heuristic solution; an infeasible verdict there only covers the
  // restricted space, so it is no proof for the full problem.
  if (backend == Backend::kMilpHO && out.status == SolveStatus::kInfeasible)
    out.status = SolveStatus::kNoSolution;
  if (res.hasSolution()) {
    out.plan = res.plan;
    out.costs = res.costs;
  }
  out.seconds = res.seconds;
  out.nodes = res.nodes;
  if (res.lp_solves > 0) {
    out.lp.engine = lp::toString(res.lp_engine);
    out.lp.solves = res.lp_solves;
    out.lp.iterations = res.lp_iterations;
    out.lp.warm_start_hits = res.lp_warm_hits;
    out.lp.refactorizations = res.lp_refactorizations;
    out.lp.primal_pivots = res.lp_primal_pivots;
    out.lp.dual_pivots = res.lp_dual_pivots;
    out.lp.bound_flips = res.lp_bound_flips;
    out.lp.ft_updates = res.lp_ft_updates;
    out.lp.dual_reopts = res.lp_dual_reopts;
  }
  out.incumbent_published = res.published;
  out.incumbent_adopted = res.adopted;
  out.cutoff_prunes = res.external_prunes;
  out.steals = res.steals;
  if (res.workers.size() > 1) {
    out.workers.reserve(res.workers.size());
    for (const milp::MipWorkerStats& w : res.workers) {
      SolveWorkerStats s;
      s.id = w.id;
      s.nodes = w.nodes;
      s.steals = w.steals;
      s.stolen = w.stolen_nodes;
      s.lp_solves = w.lp_solves;
      s.lp_warm_hits = w.lp_warm_hits;
      s.idle_seconds = w.idle_seconds;
      out.workers.push_back(s);
    }
  }
  out.detail = std::string(toString(backend)) + ": " + res.detail;
  return out;
}

SolveResponse runHeuristic(const model::FloorplanProblem& problem, const SolveRequest& request,
                           std::atomic<bool>* external_stop, SharedIncumbent* channel) {
  Stopwatch watch;
  fp::HeuristicOptions opt = request.heuristic;
  opt.time_limit_seconds = cappedLimit(opt.time_limit_seconds, request.deadline_seconds);
  if (external_stop) opt.stop = external_stop;
  if (channel) opt.incumbent = channel;
  const std::optional<model::Floorplan> plan = fp::constructiveFloorplan(problem, opt);
  SolveResponse out;
  if (plan) {
    out.status = SolveStatus::kFeasible;
    out.plan = *plan;
    out.costs = model::evaluate(problem, out.plan);
    out.incumbent_published = channel ? 1 : 0;
    out.detail = "heuristic: feasible";
  } else {
    out.detail = "heuristic: no feasible construction";
  }
  out.seconds = watch.seconds();
  return out;
}

SolveResponse runAnnealer(const model::FloorplanProblem& problem, const SolveRequest& request,
                          std::atomic<bool>* external_stop, SharedIncumbent* channel) {
  Stopwatch watch;
  baseline::AnnealerOptions opt = request.annealer;
  opt.time_limit_seconds = cappedLimit(opt.time_limit_seconds, request.deadline_seconds);
  if (external_stop) opt.stop = external_stop;
  if (channel) opt.incumbent = channel;
  const std::optional<baseline::AnnealResult> res = baseline::annealFloorplan(problem, opt);
  SolveResponse out;
  if (res) {
    out.status = SolveStatus::kFeasible;
    out.plan = res->plan;
    out.costs = res->costs;
    out.nodes = res->iterations;
    out.incumbent_published = res->published;
    std::ostringstream d;
    d << "annealer: feasible iterations=" << res->iterations
      << " accepted=" << res->accepted_moves;
    out.detail = d.str();
  } else {
    out.detail = "annealer: no feasible starting floorplan";
  }
  out.seconds = watch.seconds();
  return out;
}

}  // namespace

double cappedLimit(double configured, double deadline) noexcept {
  if (deadline <= 0) return configured;
  return configured > 0 ? std::min(configured, deadline) : deadline;
}

void capInSolveThreads(SolveRequest* request, int budget) noexcept {
  if (budget <= 0) return;
  request->num_threads = std::clamp(request->num_threads, 1, budget);
  request->search.num_threads = std::clamp(request->search.num_threads, 1, budget);
  request->milp.milp.threads = std::clamp(request->milp.milp.threads, 1, budget);
}

bool isProof(const SolveResponse& response) noexcept {
  return isExhaustive(response.backend) && (response.status == SolveStatus::kOptimal ||
                                            response.status == SolveStatus::kInfeasible);
}

SolveResponse runBackend(const model::FloorplanProblem& problem, const SolveRequest& request,
                         Backend backend, std::atomic<bool>* external_stop,
                         SharedIncumbent* channel) {
  SolveResponse out;
  switch (backend) {
    case Backend::kSearch: out = runSearch(problem, request, external_stop, channel); break;
    case Backend::kMilpO:
    case Backend::kMilpHO:
      out = runMilp(problem, request, backend, external_stop, channel);
      break;
    case Backend::kHeuristic:
      out = runHeuristic(problem, request, external_stop, channel);
      break;
    case Backend::kAnnealer: out = runAnnealer(problem, request, external_stop, channel); break;
  }
  out.backend = backend;
  // Boundary guarantee: a run that ends with the shared stop flag set was
  // cancelled, and a cancelled run is not a proof — whatever slipped through
  // the engine's own truncation handling (e.g. a verdict computed before the
  // flag was raised, or an LP cut short mid-pivot behind an "exhausted"
  // tree) is downgraded here. The cancelling winner holds the real proof.
  if (external_stop && external_stop->load(std::memory_order_relaxed)) {
    if (out.status == SolveStatus::kOptimal) {
      out.status = SolveStatus::kFeasible;
      out.detail += " [cancelled: optimality claim downgraded]";
    } else if (out.status == SolveStatus::kInfeasible) {
      out.status = SolveStatus::kNoSolution;
      out.detail += " [cancelled: infeasibility claim downgraded]";
    }
  }
  return out;
}

}  // namespace rfp::driver::detail
