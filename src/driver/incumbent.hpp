// Incumbent exchange channel for cooperating floorplanning engines.
//
// A portfolio run used to race its backends completely blind: the only thing
// they shared was a stop flag. `SharedIncumbent` is the second channel next
// to that flag — a lock-protected best-so-far floorplan that the incomplete
// engines (annealer, constructive heuristic, HO) *publish* improving
// solutions into mid-run, and that the provers (exact search, MILP-O)
// *consume* as an objective cutoff: any node whose relaxation bound cannot
// strictly beat the shared incumbent is pruned, and the provers publish
// their own improvements back.
//
// The class deliberately depends on the model layer only, so the engine
// option structs can hold a pointer to it exactly like they hold the
// `std::atomic<bool>* stop` cancellation flag. Ordering between plans is
// `model::strictlyBetter` under the owning problem's objective mode, which
// is the same predicate the portfolio arbitration uses — an engine can never
// "win" the channel with a plan the arbitration would rank lower.
//
// Concurrency contract: `publish` and the snapshot readers may be called
// from any thread. The monotonic `version()` counter (bumped on every
// adopted publish) makes polling cheap: consumers remember the last version
// they saw and only take the lock when it moved.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "model/floorplan.hpp"
#include "model/problem.hpp"
#include "support/sync.hpp"

namespace rfp::driver {

class SharedIncumbent {
 public:
  /// The problem defines the objective mode used to order incumbents and is
  /// used to validate published plans; it must outlive the channel.
  explicit SharedIncumbent(const model::FloorplanProblem& problem) : problem_(&problem) {}

  SharedIncumbent(const SharedIncumbent&) = delete;
  SharedIncumbent& operator=(const SharedIncumbent&) = delete;

  /// Offers `plan` to the channel. Adopted (and the version bumped) only
  /// when the channel is empty or `costs` strictly beats the current best
  /// under the problem's objective; checker-invalid plans are always
  /// rejected so consumers can trust every snapshot (the MILP adoption path
  /// feeds snapshots straight into MilpFormulation::encode, which requires a
  /// valid plan). `source` labels the publishing engine for telemetry.
  /// Returns true when adopted.
  bool publish(const model::Floorplan& plan, const model::FloorplanCosts& costs,
               const char* source);

  /// Monotonic adoption counter; 0 while the channel is empty. Never
  /// decreases, and the best cost only improves as it grows.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Copies the current best when it is newer than `*last_seen` (updating
  /// `*last_seen` to the copied version). Returns false when the channel is
  /// empty or has not advanced — the fast path is one atomic load.
  /// `plan`/`costs` may be null to poll cost-only or version-only.
  bool snapshotNewer(std::uint64_t* last_seen, model::Floorplan* plan,
                     model::FloorplanCosts* costs) const;

  /// Copies the current best unconditionally. Returns false when empty.
  bool best(model::Floorplan* plan, model::FloorplanCosts* costs) const;

  // ---- telemetry -----------------------------------------------------------

  /// Total publish attempts (adopted or not).
  [[nodiscard]] long publishes() const noexcept {
    return publishes_.load(std::memory_order_relaxed);
  }
  /// Adopted publishes (== version()).
  [[nodiscard]] long adoptions() const noexcept {
    return static_cast<long>(version());
  }
  /// Label of the engine that published the current best ("-" while empty).
  [[nodiscard]] std::string source() const;

 private:
  const model::FloorplanProblem* problem_;
  std::atomic<std::uint64_t> version_{0};
  std::atomic<long> publishes_{0};
  // Bottom of the lock-ordering hierarchy (incumbent < cache < flight <
  // telemetry, see CONTRIBUTING.md): publish() is called from engine
  // callbacks that may already hold higher locks, so nothing may be
  // acquired while this is held.
  mutable sync::Mutex mutex_;
  model::Floorplan best_plan_ RFP_GUARDED_BY(mutex_);
  model::FloorplanCosts best_costs_ RFP_GUARDED_BY(mutex_);
  std::string source_ RFP_GUARDED_BY(mutex_) = "-";
  bool has_best_ RFP_GUARDED_BY(mutex_) = false;
};

}  // namespace rfp::driver
