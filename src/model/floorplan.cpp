#include "model/floorplan.hpp"

#include <algorithm>
#include <sstream>

#include "partition/compatibility.hpp"
#include "support/check.hpp"

namespace rfp::model {

std::vector<FcArea> expandFcRequests(const FloorplanProblem& problem) {
  std::vector<FcArea> out;
  for (const RelocationRequest& req : problem.relocations())
    for (int i = 0; i < req.count; ++i) {
      FcArea area;
      area.region = req.region;
      area.weight = req.weight;
      out.push_back(area);
    }
  return out;
}

long regionWaste(const FloorplanProblem& problem, int n, const device::Rect& r) {
  const device::Device& dev = problem.dev();
  const std::vector<int> hist = dev.tileHistogram(r);
  long waste = 0;
  for (int t = 0; t < dev.numTileTypes(); ++t)
    waste += static_cast<long>(hist[static_cast<std::size_t>(t)] -
                               problem.region(n).required(t)) *
             dev.tileType(t).frames;
  return waste;
}

double wireLength(const FloorplanProblem& problem, const std::vector<device::Rect>& regions) {
  double total = 0;
  for (const Net& net : problem.nets()) {
    double min_x = 1e30, max_x = -1e30, min_y = 1e30, max_y = -1e30;
    for (const int r : net.regions) {
      const device::Rect& rect = regions[static_cast<std::size_t>(r)];
      min_x = std::min(min_x, rect.centerX());
      max_x = std::max(max_x, rect.centerX());
      min_y = std::min(min_y, rect.centerY());
      max_y = std::max(max_y, rect.centerY());
    }
    total += net.weight * ((max_x - min_x) + (max_y - min_y));
  }
  return total;
}

FloorplanCosts evaluate(const FloorplanProblem& problem, const Floorplan& fp) {
  RFP_CHECK_MSG(static_cast<int>(fp.regions.size()) == problem.numRegions(),
                "floorplan region count mismatch");
  FloorplanCosts costs;
  for (int n = 0; n < problem.numRegions(); ++n) {
    const device::Rect& r = fp.regions[static_cast<std::size_t>(n)];
    costs.wasted_frames += regionWaste(problem, n, r);
    costs.perimeter += 2.0 * (r.w + r.h);
  }
  costs.wire_length = wireLength(problem, fp.regions);
  for (const FcArea& a : fp.fc_areas)
    if (!a.placed) costs.relocation += a.weight;

  // Eq. 14 normalized weighted sum. Normalizers follow the paper's intent:
  // each term is scaled into [0, 1] by an instance-level maximum.
  const device::Device& dev = problem.dev();
  double wl_max = 0;
  for (const Net& net : problem.nets()) wl_max += net.weight * (dev.width() + dev.height());
  const double p_max = 2.0 * problem.numRegions() * (dev.width() + dev.height());
  const double r_max = static_cast<double>(dev.totalFrames());
  double rl_max = 0;  // Eq. 15
  for (const FcArea& a : fp.fc_areas) rl_max += a.weight;

  const ObjectiveWeights& q = problem.weights();
  costs.objective = 0;
  if (wl_max > 0) costs.objective += q.q1_wirelength * costs.wire_length / wl_max;
  if (p_max > 0) costs.objective += q.q2_perimeter * costs.perimeter / p_max;
  if (r_max > 0) costs.objective += q.q3_wasted * static_cast<double>(costs.wasted_frames) / r_max;
  if (rl_max > 0) costs.objective += q.q4_relocation * costs.relocation / rl_max;
  return costs;
}

std::string check(const FloorplanProblem& problem, const Floorplan& fp) {
  const device::Device& dev = problem.dev();
  std::ostringstream os;

  if (static_cast<int>(fp.regions.size()) != problem.numRegions())
    return "wrong number of region placements";

  // Region placements: bounds, forbidden areas, coverage.
  for (int n = 0; n < problem.numRegions(); ++n) {
    const device::Rect& r = fp.regions[static_cast<std::size_t>(n)];
    const std::string& name = problem.region(n).name;
    if (r.empty()) return "region '" + name + "' has an empty rectangle";
    if (!dev.bounds().containsRect(r)) return "region '" + name + "' outside device";
    if (dev.rectHitsForbidden(r)) return "region '" + name + "' crosses a forbidden area";
    const std::vector<int> hist = dev.tileHistogram(r);
    for (int t = 0; t < dev.numTileTypes(); ++t)
      if (hist[static_cast<std::size_t>(t)] < problem.region(n).required(t)) {
        os << "region '" << name << "' covers " << hist[static_cast<std::size_t>(t)] << " "
           << dev.tileType(t).name << " tiles, needs " << problem.region(n).required(t);
        return os.str();
      }
  }

  // FC areas: structure, hard requests placed, compatibility, constraints.
  const std::vector<FcArea> expected = expandFcRequests(problem);
  if (fp.fc_areas.size() != expected.size()) return "wrong number of FC area slots";
  std::size_t slot = 0;
  for (const RelocationRequest& req : problem.relocations())
    for (int i = 0; i < req.count; ++i, ++slot) {
      const FcArea& a = fp.fc_areas[slot];
      if (a.region != req.region) return "FC slot bound to the wrong region";
      if (!a.placed) {
        if (req.hard) return "hard relocation request has an unplaced FC area";
        continue;
      }
      const device::Rect& src = fp.regions[static_cast<std::size_t>(a.region)];
      if (!dev.bounds().containsRect(a.rect)) return "FC area outside device";
      if (dev.rectHitsForbidden(a.rect)) return "FC area crosses a forbidden area";
      if (!partition::areCompatible(dev, src, a.rect)) {
        os << "FC area " << a.rect.toString() << " is not compatible with region '"
           << problem.region(a.region).name << "' at " << src.toString();
        return os.str();
      }
    }

  // Pairwise non-overlap across all placed areas (regions + placed FCs).
  std::vector<std::pair<std::string, device::Rect>> all;
  for (int n = 0; n < problem.numRegions(); ++n)
    all.emplace_back(problem.region(n).name, fp.regions[static_cast<std::size_t>(n)]);
  for (std::size_t i = 0; i < fp.fc_areas.size(); ++i)
    if (fp.fc_areas[i].placed)
      all.emplace_back("fc#" + std::to_string(i), fp.fc_areas[i].rect);
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = i + 1; j < all.size(); ++j)
      if (all[i].second.overlaps(all[j].second)) {
        os << "'" << all[i].first << "' overlaps '" << all[j].first << "'";
        return os.str();
      }
  return "";
}

bool strictlyBetter(const FloorplanProblem& problem, const FloorplanCosts& a,
                    const FloorplanCosts& b) {
  if (problem.lexicographic()) {
    if (a.wasted_frames != b.wasted_frames) return a.wasted_frames < b.wasted_frames;
    return a.wire_length < b.wire_length;
  }
  return a.objective < b.objective;
}

}  // namespace rfp::model
