#include "model/generator.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace rfp::model {

namespace {

using device::Rect;

/// True when `r` overlaps any rect in `placed` or a forbidden area.
bool blocked(const device::Device& dev, const Rect& r, const std::vector<Rect>& placed) {
  if (dev.rectHitsForbidden(r)) return true;
  for (const Rect& p : placed) {
    const bool disjoint =
        r.x2() <= p.x || p.x2() <= r.x || r.y2() <= p.y || p.y2() <= r.y;
    if (!disjoint) return true;
  }
  return false;
}

}  // namespace

std::optional<FloorplanProblem> generateProblem(const device::Device& dev,
                                                const GeneratorOptions& options) {
  RFP_CHECK_MSG(options.num_regions >= 1, "generator needs at least one region");
  RFP_CHECK_MSG(options.requirement_slack >= 0.0 && options.requirement_slack < 1.0,
                "requirement_slack must be in [0, 1)");
  Rng rng(options.seed);

  // Phase 1: pack non-overlapping rectangles (rejection sampling with a
  // bounded number of attempts per region).
  std::vector<Rect> placed;
  placed.reserve(static_cast<std::size_t>(options.num_regions));
  const int max_w = std::min(options.max_region_width, dev.width());
  const int max_h = std::min(options.max_region_height, dev.height());
  for (int n = 0; n < options.num_regions; ++n) {
    bool ok = false;
    for (int attempt = 0; attempt < 200 && !ok; ++attempt) {
      const int w = 1 + static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(max_w)));
      const int h = 1 + static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(max_h)));
      const int x = static_cast<int>(
          rng.nextBelow(static_cast<std::uint64_t>(dev.width() - w + 1)));
      const int y = static_cast<int>(
          rng.nextBelow(static_cast<std::uint64_t>(dev.height() - h + 1)));
      const Rect r{x, y, w, h};
      if (blocked(dev, r, placed)) continue;
      placed.push_back(r);
      ok = true;
    }
    if (!ok) return std::nullopt;
  }

  // Phase 2: requirements from the packed footprints (shaved by the slack).
  FloorplanProblem problem(&dev);
  for (int n = 0; n < options.num_regions; ++n) {
    const std::vector<int> hist = dev.tileHistogram(placed[static_cast<std::size_t>(n)]);
    std::vector<int> req(hist.size(), 0);
    long total = 0;
    for (std::size_t t = 0; t < hist.size(); ++t) {
      req[t] = static_cast<int>(
          static_cast<double>(hist[t]) * (1.0 - options.requirement_slack));
      total += req[t];
    }
    if (total == 0) {
      // Slack shaved everything; keep one tile of the dominant type so the
      // region is structurally valid.
      const std::size_t dominant = static_cast<std::size_t>(
          std::max_element(hist.begin(), hist.end()) - hist.begin());
      req[dominant] = 1;
    }
    problem.addRegion(RegionSpec{"gen_" + std::to_string(n), std::move(req)});
  }

  // Phase 3: random 2-pin nets (self-loops excluded, duplicates allowed —
  // they model bus width through the weight accumulation in HPWL).
  for (int net_index = 0; net_index < options.num_nets && options.num_regions >= 2;
       ++net_index) {
    const int a = static_cast<int>(
        rng.nextBelow(static_cast<std::uint64_t>(options.num_regions)));
    int b = static_cast<int>(
        rng.nextBelow(static_cast<std::uint64_t>(options.num_regions - 1)));
    if (b >= a) ++b;
    const double weight = 1.0 + static_cast<double>(rng.nextBelow(8));
    problem.addNet(Net{{a, b}, weight, "net_" + std::to_string(net_index)});
  }

  // Phase 4: relocation requests.
  if (options.fc_per_region > 0)
    for (int n = 0; n < options.num_regions; ++n)
      problem.addRelocation(RelocationRequest{n, options.fc_per_region,
                                              /*hard=*/!options.soft_relocation, 1.0});

  problem.setLexicographic(true);
  return problem;
}

}  // namespace rfp::model
