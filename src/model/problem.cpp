#include "model/problem.hpp"

#include <sstream>

#include "support/check.hpp"

namespace rfp::model {

int FloorplanProblem::addRegion(RegionSpec spec) {
  RFP_CHECK_MSG(!spec.tiles.empty(), "region '" << spec.name << "' requires no tiles");
  regions_.push_back(std::move(spec));
  return numRegions() - 1;
}

int FloorplanProblem::addNet(Net net) {
  RFP_CHECK_MSG(net.regions.size() >= 2, "net '" << net.name << "' needs >= 2 pins");
  for (const int r : net.regions)
    RFP_CHECK_MSG(r >= 0 && r < numRegions(), "net '" << net.name << "' pin out of range");
  nets_.push_back(std::move(net));
  return static_cast<int>(nets_.size()) - 1;
}

void FloorplanProblem::addRelocation(RelocationRequest req) {
  RFP_CHECK_MSG(req.region >= 0 && req.region < numRegions(),
                "relocation request region out of range");
  RFP_CHECK_MSG(req.count >= 1, "relocation request count must be >= 1");
  relocations_.push_back(req);
}

int FloorplanProblem::totalFcAreas() const noexcept {
  int total = 0;
  for (const RelocationRequest& r : relocations_) total += r.count;
  return total;
}

long FloorplanProblem::minFrames(int n) const {
  const RegionSpec& spec = region(n);
  long frames = 0;
  for (int t = 0; t < dev().numTileTypes(); ++t)
    frames += static_cast<long>(spec.required(t)) * dev().tileType(t).frames;
  return frames;
}

std::string FloorplanProblem::validateStructure() const {
  for (int n = 0; n < numRegions(); ++n) {
    const RegionSpec& spec = region(n);
    if (static_cast<int>(spec.tiles.size()) > dev().numTileTypes())
      return "region '" + spec.name + "' references unknown tile types";
    long total = 0;
    for (int t = 0; t < dev().numTileTypes(); ++t) {
      if (spec.required(t) < 0) return "region '" + spec.name + "' has negative requirement";
      total += spec.required(t);
    }
    if (total == 0) return "region '" + spec.name + "' requires no tiles";
  }
  for (const RelocationRequest& r : relocations_)
    if (r.region < 0 || r.region >= numRegions()) return "relocation request region out of range";
  return "";
}

std::string FloorplanProblem::supplyShortfall() const {
  const std::vector<int> avail = dev().totalTiles(/*usable_only=*/true);
  std::vector<long> need(avail.size(), 0);
  for (int n = 0; n < numRegions(); ++n)
    for (int t = 0; t < dev().numTileTypes(); ++t)
      need[static_cast<std::size_t>(t)] += region(n).required(t);
  for (std::size_t t = 0; t < avail.size(); ++t)
    if (need[t] > avail[t]) {
      std::ostringstream os;
      os << "total demand for tile type '" << dev().tileType(static_cast<int>(t)).name
         << "' (" << need[t] << ") exceeds usable device supply (" << avail[t] << ")";
      return os.str();
    }
  return "";
}

std::string FloorplanProblem::validate() const {
  const std::string structural = validateStructure();
  if (!structural.empty()) return structural;
  return supplyShortfall();
}

FloorplanProblem makeSdrProblem(const device::Device& dev) {
  const int clb = dev.tileTypeId("CLB");
  const int bram = dev.tileTypeId("BRAM");
  const int dsp = dev.tileTypeId("DSP");
  RFP_CHECK_MSG(clb >= 0 && bram >= 0 && dsp >= 0,
                "SDR problem needs CLB/BRAM/DSP tile types on device '" << dev.name() << "'");

  FloorplanProblem problem(&dev);
  const auto spec = [&](std::string name, int c, int b, int d) {
    std::vector<int> tiles(static_cast<std::size_t>(dev.numTileTypes()), 0);
    tiles[static_cast<std::size_t>(clb)] = c;
    tiles[static_cast<std::size_t>(bram)] = b;
    tiles[static_cast<std::size_t>(dsp)] = d;
    return RegionSpec{std::move(name), std::move(tiles)};
  };
  // Table I: resource requirements for the SDR design.
  problem.addRegion(spec("matched_filter", 25, 0, 5));
  problem.addRegion(spec("carrier_recovery", 7, 0, 1));
  problem.addRegion(spec("demodulator", 5, 2, 0));
  problem.addRegion(spec("signal_decoder", 12, 1, 0));
  problem.addRegion(spec("video_decoder", 55, 2, 5));

  // All modules are connected in sequential order with a 64-bit wide bus.
  const double bus = 64.0;
  problem.addNet(Net{{kMatchedFilter, kCarrierRecovery}, bus, "mf-cr"});
  problem.addNet(Net{{kCarrierRecovery, kDemodulator}, bus, "cr-dem"});
  problem.addNet(Net{{kDemodulator, kSignalDecoder}, bus, "dem-sd"});
  problem.addNet(Net{{kSignalDecoder, kVideoDecoder}, bus, "sd-vd"});

  problem.setLexicographic(true);  // the evaluation's objective (Sec. VI)
  return problem;
}

void addSdrRelocations(FloorplanProblem& problem, int fc_per_region, bool hard,
                       double weight) {
  for (const int region : {kCarrierRecovery, kDemodulator, kSignalDecoder})
    problem.addRelocation(RelocationRequest{region, fc_per_region, hard, weight});
}

}  // namespace rfp::model
