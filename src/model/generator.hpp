// Random floorplanning-instance generator.
//
// The paper evaluates a single hand-built design (the SDR case study of
// Sec. VI). For testing the solvers against each other and for ablations we
// need families of instances with controlled difficulty. The generator
// produces *feasible-by-construction* problems: it first packs
// non-overlapping rectangles onto the device, then derives each region's
// requirement from the tiles its rectangle covers (optionally shaved to
// leave slack), so every generated problem has at least one zero-or-low
// waste solution. Nets and relocation requests are sampled on top.
#pragma once

#include <cstdint>
#include <optional>

#include "model/problem.hpp"

namespace rfp::model {

struct GeneratorOptions {
  int num_regions = 4;
  int max_region_width = 6;   ///< in tiles
  int max_region_height = 3;  ///< in tiles
  int num_nets = 3;           ///< 2-pin nets between random region pairs
  double requirement_slack = 0.0;  ///< fraction of covered tiles *not* required
                                   ///< (0: exact footprint, 0.5: half)
  int fc_per_region = 0;           ///< hard FC areas requested per region
  bool soft_relocation = false;    ///< request FC areas as a metric instead
  std::uint64_t seed = 1;
};

/// Generates a feasible problem on `dev`, or std::nullopt when the packing
/// attempt fails (device too small for the requested shape distribution —
/// callers typically retry with another seed).
[[nodiscard]] std::optional<FloorplanProblem> generateProblem(const device::Device& dev,
                                                              const GeneratorOptions& options);

}  // namespace rfp::model
