// Floorplan solutions and their evaluation.
//
// A `Floorplan` assigns a rectangle to every region plus a (possibly
// partial) set of free-compatible areas. `FloorplanCosts` mirrors the cost
// terms of Eq. 14; `evaluate()` computes them and `check()` independently
// re-validates every paper constraint by direct grid inspection — it is the
// verifier used by tests regardless of which solver produced the solution.
#pragma once

#include <string>
#include <vector>

#include "device/geometry.hpp"
#include "model/problem.hpp"

namespace rfp::model {

/// A placed free-compatible area.
struct FcArea {
  int region = -1;        ///< region this area is compatible with
  device::Rect rect;      ///< placement (valid only when `placed`)
  bool placed = false;    ///< soft requests may remain unplaced (v_c = 1)
  double weight = 1.0;    ///< cw_c
};

struct Floorplan {
  std::vector<device::Rect> regions;  ///< one rect per region, problem order
  std::vector<FcArea> fc_areas;       ///< expanded FC requests (problem order)

  [[nodiscard]] int placedFcCount() const noexcept {
    int n = 0;
    for (const FcArea& a : fc_areas) n += a.placed ? 1 : 0;
    return n;
  }
};

/// Cost terms of the objective function (Eq. 14 naming).
struct FloorplanCosts {
  long wasted_frames = 0;   ///< Rcost: Σ_n Σ_t (covered−required)·frames(t)
  double wire_length = 0;   ///< WLcost: Σ_nets weight·HPWL(centers)
  double perimeter = 0;     ///< Pcost: Σ_n 2(w+h)
  double relocation = 0;    ///< RLcost: Σ_c cw_c·v_c (Eq. 13)
  double objective = 0;     ///< Eq. 14 weighted normalized sum
};

/// Expands the problem's relocation requests into one FcArea per requested
/// area (all unplaced). Solvers fill in rect/placed.
[[nodiscard]] std::vector<FcArea> expandFcRequests(const FloorplanProblem& problem);

/// Computes all cost terms. The floorplan must have one rect per region.
[[nodiscard]] FloorplanCosts evaluate(const FloorplanProblem& problem, const Floorplan& fp);

/// Independent full verification (Definition .1/.2 and every constraint):
/// bounds, forbidden areas, resource coverage, pairwise non-overlap, hard FC
/// requests all placed, FC footprint equality with their region. Returns ""
/// when valid, else a description of the first violation found.
[[nodiscard]] std::string check(const FloorplanProblem& problem, const Floorplan& fp);

/// Wasted frames of a single region placement (covered − required, weighted
/// by frames per tile type). Negative requirement coverage is a check()
/// failure, not handled here.
[[nodiscard]] long regionWaste(const FloorplanProblem& problem, int n, const device::Rect& r);

/// Weighted HPWL of the netlist for the given region rectangles.
[[nodiscard]] double wireLength(const FloorplanProblem& problem,
                                const std::vector<device::Rect>& regions);

/// True when costs `a` beat costs `b` under the problem's evaluation mode:
/// lexicographic (wasted frames, then wire length) or the Eq. 14 weighted
/// objective. Shared by the driver's portfolio arbitration and the tests.
[[nodiscard]] bool strictlyBetter(const FloorplanProblem& problem, const FloorplanCosts& a,
                                  const FloorplanCosts& b);

}  // namespace rfp::model
