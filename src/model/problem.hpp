// Floorplanning problem description (Sections II, IV, V).
//
// A problem instance is a device plus:
//  * reconfigurable regions N with per-tile-type requirements c(n,t),
//  * a netlist over region centers (wire-length metric of [10]),
//  * relocation requests: for region n, a number of free-compatible areas,
//    either *hard* (relocation as a constraint, Sec. IV) or *soft* with a
//    weight cw_c (relocation as a metrics, Sec. V),
//  * objective weights q1..q4 of Eq. 14, or the lexicographic mode used in
//    the experimental evaluation (wasted frames first, then wire length).
#pragma once

#include <string>
#include <vector>

#include "device/device.hpp"

namespace rfp::model {

/// Resource requirement of one reconfigurable region, in tiles per tile type
/// (Table I's unit). `tiles[t]` indexes the device tile types.
struct RegionSpec {
  std::string name;
  std::vector<int> tiles;  ///< required tiles per type id; may be shorter than
                           ///< the device type count (missing entries = 0)

  [[nodiscard]] int required(int type_id) const noexcept {
    return type_id < static_cast<int>(tiles.size()) ? tiles[static_cast<std::size_t>(type_id)] : 0;
  }
};

/// A net connecting two or more regions (by index); wire length is the
/// weighted half-perimeter of the bounding box of the region centers.
struct Net {
  std::vector<int> regions;
  double weight = 1.0;
  std::string name;
};

/// A request for free-compatible areas for one region.
struct RelocationRequest {
  int region = -1;   ///< region index
  int count = 1;     ///< number of FC areas requested for this region
  bool hard = true;  ///< true: Sec. IV constraint; false: Sec. V metric
  double weight = 1.0;  ///< cw_c, used when !hard (Eq. 13)
};

/// Objective weights of Eq. 14 (normalized internally by WLmax etc.).
struct ObjectiveWeights {
  double q1_wirelength = 1.0;
  double q2_perimeter = 0.0;
  double q3_wasted = 1.0;
  double q4_relocation = 0.0;
};

class FloorplanProblem {
 public:
  explicit FloorplanProblem(const device::Device* dev) : dev_(dev) {}

  // ---- construction ------------------------------------------------------
  int addRegion(RegionSpec spec);
  int addNet(Net net);
  void addRelocation(RelocationRequest req);
  void setWeights(ObjectiveWeights w) { weights_ = w; }
  /// Lexicographic evaluation mode of Sec. VI: minimize wasted frames first,
  /// then wire length (weights are ignored for ordering, still reported).
  void setLexicographic(bool lex) { lexicographic_ = lex; }

  // ---- accessors ----------------------------------------------------------
  [[nodiscard]] const device::Device& dev() const noexcept { return *dev_; }
  [[nodiscard]] int numRegions() const noexcept { return static_cast<int>(regions_.size()); }
  [[nodiscard]] const RegionSpec& region(int n) const { return regions_.at(static_cast<std::size_t>(n)); }
  [[nodiscard]] const std::vector<RegionSpec>& regions() const noexcept { return regions_; }
  [[nodiscard]] const std::vector<Net>& nets() const noexcept { return nets_; }
  [[nodiscard]] const std::vector<RelocationRequest>& relocations() const noexcept {
    return relocations_;
  }
  [[nodiscard]] const ObjectiveWeights& weights() const noexcept { return weights_; }
  [[nodiscard]] bool lexicographic() const noexcept { return lexicographic_; }

  /// Total number of FC areas requested (hard + soft).
  [[nodiscard]] int totalFcAreas() const noexcept;

  /// Least frames region n must cover: Σ_t c(n,t)·frames(t) (Table I's last
  /// column).
  [[nodiscard]] long minFrames(int n) const;

  /// Structural validation only: region indices in range, non-negative and
  /// non-empty requirements, nets well-formed. Returns "" or a violation
  /// description. A structurally valid problem may still be infeasible.
  [[nodiscard]] std::string validateStructure() const;

  /// Aggregate supply test: "" when the device's usable tiles cover the sum
  /// of all region requirements, else a description of the shortfall. A
  /// shortfall makes the problem *infeasible*, not malformed — solvers
  /// report it as an infeasibility verdict rather than an error.
  [[nodiscard]] std::string supplyShortfall() const;

  /// validateStructure() plus supplyShortfall(): any reason this problem
  /// cannot have a solution that is known without search.
  [[nodiscard]] std::string validate() const;

 private:
  const device::Device* dev_;
  std::vector<RegionSpec> regions_;
  std::vector<Net> nets_;
  std::vector<RelocationRequest> relocations_;
  ObjectiveWeights weights_;
  bool lexicographic_ = true;
};

// ---- SDR case study (Section VI) -----------------------------------------

/// Region indices of the software-defined-radio design of [8] (Table I).
enum SdrRegion : int {
  kMatchedFilter = 0,
  kCarrierRecovery = 1,
  kDemodulator = 2,
  kSignalDecoder = 3,
  kVideoDecoder = 4,
};

/// Builds the SDR problem on `dev` (which must use the CLB/BRAM/DSP type
/// set): 5 regions with Table I requirements, chained by a 64-bit bus.
FloorplanProblem makeSdrProblem(const device::Device& dev);

/// Adds the SDR2 / SDR3 relocation requests: `fc_per_region` free-compatible
/// areas for each of the relocatable regions (carrier recovery, demodulator,
/// signal decoder), as hard constraints (Sec. VI).
void addSdrRelocations(FloorplanProblem& problem, int fc_per_region, bool hard = true,
                       double weight = 1.0);

}  // namespace rfp::model
