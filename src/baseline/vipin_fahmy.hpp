// Reconstruction of the Vipin–Fahmy ARC'12 floorplanner ([8] in the paper):
// "architecture-aware reconfiguration-centric floorplanning".
//
// ARC'12 plans *reconfiguration-centric* regions: allocations are aligned to
// the device's reconfiguration granularity and sized to minimize the partial
// bitstream of each region (its covered configuration frames), rather than
// globally minimizing wasted resources or wire length. The paper's Table II
// reports it at 466 wasted frames on the SDR design vs 306 for the exact
// MILP; our reconstruction reproduces that qualitative gap
// (DESIGN.md §3 substitution 4).
//
// Reconstruction rules (from the ARC'12 description):
//  1. regions are processed in decreasing frame demand;
//  2. allocation heights are whole multiples of `clock_region_granularity`
//     tile rows (default 2 — clock-region pairs, the Virtex-5 partial-
//     reconfiguration alignment guideline), widths are whole columns;
//  3. candidates are scored by covered frames (partial-bitstream size),
//     ties by wasted frames, then leftmost/topmost;
//  4. the first non-overlapping candidate wins (greedy, no backtracking).
#pragma once

#include <optional>

#include "model/floorplan.hpp"
#include "model/problem.hpp"

namespace rfp::baseline {

struct VipinFahmyOptions {
  /// Allocation height granularity in tile rows (clock regions).
  int clock_region_granularity = 2;
};

/// Runs the heuristic. Returns std::nullopt when it cannot fit all regions.
/// Relocation requests are ignored (the baseline is relocation-unaware);
/// FC slots are returned unplaced.
[[nodiscard]] std::optional<model::Floorplan> vipinFahmyFloorplan(
    const model::FloorplanProblem& problem, const VipinFahmyOptions& options = {});

}  // namespace rfp::baseline
