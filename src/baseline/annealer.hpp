// Simulated-annealing floorplanner in the style of Bolchini et al. FPL'11
// ([9] in the paper): wire-length-driven stochastic local search over
// candidate placements. Used by the ablation benches as a second baseline
// and as an alternative first-solution generator for HO.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "model/floorplan.hpp"
#include "model/problem.hpp"

namespace rfp::driver {
class SharedIncumbent;  // driver/incumbent.hpp
}
namespace rfp::telemetry {
struct Context;  // support/telemetry/trace.hpp
}

namespace rfp::baseline {

struct AnnealerOptions {
  std::uint64_t seed = 1;
  long iterations = 200000;
  double initial_temperature = 1.0;
  double cooling = 0.9995;        ///< geometric cooling per iteration
  double waste_weight = 1.0;      ///< cost = waste_weight·waste/Rmax +
  double wirelength_weight = 1.0; ///<        wirelength_weight·WL/WLmax
  double time_limit_seconds = 0.0;  ///< wall-clock budget; <= 0: none
  /// Cooperative external cancellation, polled every few hundred iterations;
  /// the best floorplan found so far is still returned. The pointee must
  /// outlive the call. Used by driver portfolios.
  std::atomic<bool>* stop = nullptr;
  /// Incumbent exchange channel (driver portfolios): the starting floorplan
  /// and every improving best-so-far are published mid-run, so a concurrent
  /// or subsequent prover can use them as a cutoff long before the annealer
  /// finishes. The pointee must outlive the call.
  driver::SharedIncumbent* incumbent = nullptr;
  /// Solve-scoped observability (spans + counters); null = no telemetry.
  /// The pointee must outlive the call.
  const telemetry::Context* telemetry = nullptr;
};

struct AnnealResult {
  model::Floorplan plan;
  model::FloorplanCosts costs;
  long accepted_moves = 0;
  long iterations = 0;
  long published = 0;  ///< incumbents offered to the exchange channel
};

/// Runs SA starting from a greedy construction. Returns std::nullopt when no
/// feasible starting floorplan exists. Relocation requests are honored by
/// re-placing FC areas greedily after every accepted region move (hard
/// requests keep moves that break them from being accepted).
[[nodiscard]] std::optional<AnnealResult> annealFloorplan(
    const model::FloorplanProblem& problem, const AnnealerOptions& options = {});

}  // namespace rfp::baseline
