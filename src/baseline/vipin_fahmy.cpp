#include "baseline/vipin_fahmy.hpp"

#include <algorithm>
#include <numeric>

#include "search/candidates.hpp"
#include "search/occupancy.hpp"
#include "support/check.hpp"

namespace rfp::baseline {

namespace {

using device::Rect;

struct Candidate {
  Rect rect;
  long frames = 0;  ///< covered frames (partial-bitstream size)
  long waste = 0;
};

std::vector<Candidate> candidatesFor(const model::FloorplanProblem& problem, int n,
                                     int granularity) {
  const device::Device& dev = problem.dev();
  std::vector<Candidate> out;
  for (const search::Shape& s :
       search::enumerateCandidates(problem, n, /*max_waste=*/-1).shapes) {
    if (s.h % granularity != 0) continue;
    for (const int y : s.ys) {
      if (y % granularity != 0) continue;  // aligned to clock-region bands
      Candidate c;
      c.rect = Rect{s.x, y, s.w, s.h};
      c.frames = dev.framesInRect(c.rect);
      c.waste = s.waste;
      out.push_back(c);
    }
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.frames != b.frames) return a.frames < b.frames;
    if (a.waste != b.waste) return a.waste < b.waste;
    if (a.rect.x != b.rect.x) return a.rect.x < b.rect.x;
    return a.rect.y < b.rect.y;
  });
  return out;
}

}  // namespace

std::optional<model::Floorplan> vipinFahmyFloorplan(const model::FloorplanProblem& problem,
                                                    const VipinFahmyOptions& options) {
  RFP_CHECK_MSG(options.clock_region_granularity >= 1, "granularity must be >= 1");
  const device::Device& dev = problem.dev();

  std::vector<int> order(static_cast<std::size_t>(problem.numRegions()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return problem.minFrames(a) > problem.minFrames(b);
  });

  search::Occupancy occ(dev.width(), dev.height());
  model::Floorplan fp;
  fp.regions.resize(static_cast<std::size_t>(problem.numRegions()));
  for (const int n : order) {
    bool placed = false;
    for (const Candidate& c : candidatesFor(problem, n, options.clock_region_granularity)) {
      if (occ.overlaps(c.rect)) continue;
      occ.fill(c.rect);
      fp.regions[static_cast<std::size_t>(n)] = c.rect;
      placed = true;
      break;
    }
    if (!placed) return std::nullopt;
  }
  fp.fc_areas = model::expandFcRequests(problem);  // left unplaced: relocation-unaware
  return fp;
}

}  // namespace rfp::baseline
