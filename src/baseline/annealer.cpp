#include "baseline/annealer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "driver/incumbent.hpp"
#include "fp/heuristic.hpp"
#include "search/candidates.hpp"
#include "search/occupancy.hpp"
#include "support/rng.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace rfp::baseline {

namespace {

using device::Rect;

/// Re-places all FC areas greedily for the given region rects. Returns false
/// when a hard request cannot be satisfied.
bool placeFcAreas(const model::FloorplanProblem& problem, const std::vector<Rect>& regions,
                  std::vector<model::FcArea>& areas) {
  const device::Device& dev = problem.dev();
  search::Occupancy occ(dev.width(), dev.height());
  for (const Rect& r : regions) occ.fill(r);
  std::size_t slot = 0;
  bool ok = true;
  for (const model::RelocationRequest& req : problem.relocations()) {
    const Rect& src = regions[static_cast<std::size_t>(req.region)];
    std::vector<Rect> options;
    for (const int x : search::matchingColumnSpans(dev, src.x, src.w))
      for (const int y : search::validRows(dev, x, src.w, src.h))
        options.push_back(Rect{x, y, src.w, src.h});
    for (int i = 0; i < req.count; ++i, ++slot) {
      areas[slot].placed = false;
      for (const Rect& cand : options) {
        if (occ.overlaps(cand)) continue;
        occ.fill(cand);
        areas[slot].rect = cand;
        areas[slot].placed = true;
        break;
      }
      if (!areas[slot].placed && req.hard) ok = false;
    }
  }
  return ok;
}

double costOf(const model::FloorplanProblem& problem, const model::Floorplan& fp,
              const AnnealerOptions& opt) {
  const model::FloorplanCosts costs = model::evaluate(problem, fp);
  const double r_max = std::max<double>(1.0, static_cast<double>(problem.dev().totalFrames()));
  double wl_max = 0;
  for (const model::Net& net : problem.nets())
    wl_max += net.weight * (problem.dev().width() + problem.dev().height());
  wl_max = std::max(1.0, wl_max);
  return opt.waste_weight * static_cast<double>(costs.wasted_frames) / r_max +
         opt.wirelength_weight * costs.wire_length / wl_max;
}

}  // namespace

std::optional<AnnealResult> annealFloorplan(const model::FloorplanProblem& problem,
                                            const AnnealerOptions& options) {
  telemetry::Span run_span(options.telemetry, "annealer", "anneal");
  Deadline deadline(options.time_limit_seconds);
  fp::HeuristicOptions hopt;
  hopt.seed = options.seed;
  hopt.stop = options.stop;
  hopt.time_limit_seconds = options.time_limit_seconds;
  auto start = fp::constructiveFloorplan(problem, hopt);
  if (!start) return std::nullopt;

  std::vector<search::RegionCandidates> cands;
  for (int n = 0; n < problem.numRegions(); ++n)
    cands.push_back(search::enumerateCandidates(problem, n));

  Rng rng(options.seed ^ 0x5eedu);
  model::Floorplan current = *start;
  double current_cost = costOf(problem, current, options);
  model::Floorplan best = current;
  double best_cost = current_cost;

  AnnealResult result;
  // Publish improving bests mid-run, throttled to the poll cadence so the
  // channel lock is never contended from the hot move loop. `published_cost`
  // tracks what the channel last saw from us.
  double published_cost = std::numeric_limits<double>::infinity();
  const auto publishBest = [&] {
    if (!options.incumbent || best_cost >= published_cost) return;
    published_cost = best_cost;
    ++result.published;
    const model::FloorplanCosts costs = model::evaluate(problem, best);
    options.incumbent->publish(best, costs, "annealer");
    telemetry::instant(options.telemetry, "incumbent", "publish", "waste",
                       static_cast<double>(costs.wasted_frames), "engine", "annealer");
  };
  publishBest();  // the greedy start is already a feasible incumbent

  double temperature = options.initial_temperature;
  for (long it = 0; it < options.iterations; ++it, temperature *= options.cooling) {
    if ((it & 255) == 0) {
      if (deadline.expired() || (options.stop && options.stop->load(std::memory_order_relaxed)))
        break;
      publishBest();
    }
    ++result.iterations;
    // Move: pick a region and a random alternative candidate placement.
    const int n = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(problem.numRegions())));
    const search::RegionCandidates& rc = cands[static_cast<std::size_t>(n)];
    if (rc.shapes.empty()) continue;
    const search::Shape& s =
        rc.shapes[rng.nextBelow(static_cast<std::uint64_t>(rc.shapes.size()))];
    const int y = s.ys[rng.nextBelow(static_cast<std::uint64_t>(s.ys.size()))];
    const Rect cand{s.x, y, s.w, s.h};

    model::Floorplan trial = current;
    trial.regions[static_cast<std::size_t>(n)] = cand;
    // Reject overlapping region placements outright.
    bool overlap = false;
    for (int m = 0; m < problem.numRegions() && !overlap; ++m)
      overlap = m != n && trial.regions[static_cast<std::size_t>(m)].overlaps(cand);
    if (overlap) continue;
    if (!placeFcAreas(problem, trial.regions, trial.fc_areas)) continue;

    const double trial_cost = costOf(problem, trial, options);
    const double delta = trial_cost - current_cost;
    if (delta <= 0 || rng.nextDouble() < std::exp(-delta / std::max(1e-9, temperature))) {
      current = std::move(trial);
      current_cost = trial_cost;
      ++result.accepted_moves;
      if (current_cost < best_cost) {
        best = current;
        best_cost = current_cost;
      }
    }
  }

  publishBest();  // flush a best found after the last poll point
  result.plan = std::move(best);
  result.costs = model::evaluate(problem, result.plan);
  if (run_span.active()) {
    run_span.arg("iterations", static_cast<double>(result.iterations));
    run_span.arg("accepted", static_cast<double>(result.accepted_moves));
  }
  if (options.telemetry != nullptr && options.telemetry->metrics != nullptr)
    options.telemetry->metrics->counter("annealer.iterations").add(result.iterations);
  return result;
}

}  // namespace rfp::baseline
