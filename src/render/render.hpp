// Floorplan rendering: ASCII (for terminals and the figure benches) and SVG
// (for Figs. 4–5 style output).
#pragma once

#include <string>

#include "model/floorplan.hpp"
#include "model/problem.hpp"

namespace rfp::render {

/// ASCII rendering: one character per tile. Regions are upper-case letters
/// (A = region 0, ...), their free-compatible areas the matching lower-case
/// letter, forbidden areas '#', free tiles show the tile-type's first
/// character in dim form ('.', ':', '+' for types 0/1/2...). A legend and
/// per-region placement table follow the grid.
[[nodiscard]] std::string ascii(const model::FloorplanProblem& problem,
                                const model::Floorplan& fp);

/// Device-only ASCII (column types + forbidden areas).
[[nodiscard]] std::string asciiDevice(const device::Device& dev);

/// SVG rendering in the style of the paper's Figs. 4–5: tile grid with tile
/// types as background stripes, regions as labeled colored boxes, FC areas
/// hatched with the region color, forbidden areas gray.
[[nodiscard]] std::string svg(const model::FloorplanProblem& problem,
                              const model::Floorplan& fp);

}  // namespace rfp::render
