#include "render/render.hpp"

#include <array>
#include <sstream>

#include "model/floorplan.hpp"
#include "support/check.hpp"

namespace rfp::render {

namespace {

char freeTileChar(int type) {
  static constexpr std::array<char, 6> kChars = {'.', ':', '+', '~', '-', '='};
  return kChars[static_cast<std::size_t>(type) % kChars.size()];
}

const char* regionColor(int n) {
  static constexpr std::array<const char*, 8> kColors = {
      "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2", "#edc948", "#9c755f"};
  return kColors[static_cast<std::size_t>(n) % kColors.size()];
}

}  // namespace

std::string asciiDevice(const device::Device& dev) {
  std::ostringstream os;
  for (int y = 0; y < dev.height(); ++y) {
    for (int x = 0; x < dev.width(); ++x)
      os << (dev.inForbidden(x, y) ? '#'
                                   : dev.tileType(dev.typeAt(x, y)).name.empty()
                                         ? '?'
                                         : dev.tileType(dev.typeAt(x, y)).name[0]);
    os << '\n';
  }
  return os.str();
}

std::string ascii(const model::FloorplanProblem& problem, const model::Floorplan& fp) {
  const device::Device& dev = problem.dev();
  std::vector<std::string> grid(static_cast<std::size_t>(dev.height()),
                                std::string(static_cast<std::size_t>(dev.width()), ' '));
  for (int y = 0; y < dev.height(); ++y)
    for (int x = 0; x < dev.width(); ++x)
      grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] =
          dev.inForbidden(x, y) ? '#' : freeTileChar(dev.typeAt(x, y));

  const auto paint = [&](const device::Rect& r, char c) {
    for (int y = r.y; y < r.y2(); ++y)
      for (int x = r.x; x < r.x2(); ++x)
        grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = c;
  };
  for (std::size_t i = 0; i < fp.fc_areas.size(); ++i)
    if (fp.fc_areas[i].placed)
      paint(fp.fc_areas[i].rect, static_cast<char>('a' + fp.fc_areas[i].region % 26));
  for (int n = 0; n < problem.numRegions(); ++n)
    paint(fp.regions[static_cast<std::size_t>(n)], static_cast<char>('A' + n % 26));

  std::ostringstream os;
  os << "+" << std::string(static_cast<std::size_t>(dev.width()), '-') << "+\n";
  for (const std::string& row : grid) os << '|' << row << "|\n";
  os << "+" << std::string(static_cast<std::size_t>(dev.width()), '-') << "+\n";
  for (int n = 0; n < problem.numRegions(); ++n) {
    const device::Rect& r = fp.regions[static_cast<std::size_t>(n)];
    os << static_cast<char>('A' + n % 26) << " = " << problem.region(n).name << " "
       << r.toString();
    int fc_count = 0;
    for (const model::FcArea& a : fp.fc_areas)
      if (a.region == n && a.placed) ++fc_count;
    if (fc_count > 0)
      os << "  (+" << fc_count << " free-compatible area" << (fc_count > 1 ? "s" : "")
         << " '" << static_cast<char>('a' + n % 26) << "')";
    os << '\n';
  }
  return os.str();
}

std::string svg(const model::FloorplanProblem& problem, const model::Floorplan& fp) {
  const device::Device& dev = problem.dev();
  const int cell = 18;
  const int margin = 8;
  const int width = dev.width() * cell + 2 * margin;
  const int height = dev.height() * cell + 2 * margin + 20 * (problem.numRegions() + 1);

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width << "\" height=\""
     << height << "\" font-family=\"sans-serif\" font-size=\"10\">\n";
  const auto rectAt = [&](const device::Rect& r, const std::string& fill, double opacity,
                          const std::string& extra = "") {
    os << "  <rect x=\"" << margin + r.x * cell << "\" y=\"" << margin + r.y * cell
       << "\" width=\"" << r.w * cell << "\" height=\"" << r.h * cell << "\" fill=\"" << fill
       << "\" fill-opacity=\"" << opacity << "\" stroke=\"black\" stroke-width=\"0.5\" "
       << extra << "/>\n";
  };

  // Tile background per column type.
  for (int x = 0; x < dev.width(); ++x) {
    const int t = dev.typeAt(x, 0);
    const char* fill = t == 0 ? "#f4f4f4" : t == 1 ? "#cfe3f7" : "#d8f2d0";
    rectAt(device::Rect{x, 0, 1, dev.height()}, fill, 1.0);
  }
  for (const device::Rect& f : dev.forbidden()) rectAt(f, "#777777", 1.0);

  for (std::size_t i = 0; i < fp.fc_areas.size(); ++i)
    if (fp.fc_areas[i].placed)
      rectAt(fp.fc_areas[i].rect, regionColor(fp.fc_areas[i].region), 0.35,
             "stroke-dasharray=\"4 2\"");
  for (int n = 0; n < problem.numRegions(); ++n) {
    const device::Rect& r = fp.regions[static_cast<std::size_t>(n)];
    rectAt(r, regionColor(n), 0.8);
    os << "  <text x=\"" << margin + r.x * cell + 3 << "\" y=\""
       << margin + r.y * cell + 12 << "\">" << static_cast<char>('A' + n % 26) << "</text>\n";
  }
  // Legend.
  for (int n = 0; n < problem.numRegions(); ++n) {
    const int ly = dev.height() * cell + 2 * margin + 16 * (n + 1);
    os << "  <rect x=\"" << margin << "\" y=\"" << ly - 10 << "\" width=\"12\" height=\"12\""
       << " fill=\"" << regionColor(n) << "\"/>\n";
    os << "  <text x=\"" << margin + 18 << "\" y=\"" << ly << "\">"
       << static_cast<char>('A' + n % 26) << " " << problem.region(n).name << "</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace rfp::render
