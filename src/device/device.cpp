#include "device/device.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace rfp::device {

Device::Device(std::string name, int width, int height, std::vector<TileType> types,
               std::vector<int> column_types)
    : name_(std::move(name)), width_(width), height_(height), types_(std::move(types)) {
  RFP_CHECK_MSG(static_cast<int>(column_types.size()) == width,
                "device '" << name_ << "': column_types size != width");
  grid_.resize(static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_));
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x)
      grid_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
            static_cast<std::size_t>(x)] = column_types[static_cast<std::size_t>(x)];
  validate();
}

Device::Device(std::string name, int width, int height, std::vector<TileType> types,
               std::vector<int> grid, bool row_major_grid)
    : name_(std::move(name)),
      width_(width),
      height_(height),
      types_(std::move(types)),
      grid_(std::move(grid)) {
  RFP_CHECK_MSG(row_major_grid, "only row-major grids are supported");
  RFP_CHECK_MSG(grid_.size() ==
                    static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_),
                "device '" << name_ << "': grid size mismatch");
  validate();
}

void Device::validate() const {
  RFP_CHECK_MSG(width_ > 0 && height_ > 0, "device '" << name_ << "': empty grid");
  RFP_CHECK_MSG(!types_.empty(), "device '" << name_ << "': no tile types");
  for (const int t : grid_)
    RFP_CHECK_MSG(t >= 0 && t < numTileTypes(),
                  "device '" << name_ << "': tile type id " << t << " out of range");
  for (const TileType& t : types_)
    RFP_CHECK_MSG(t.frames > 0, "tile type '" << t.name << "': frames must be positive");
}

int Device::tileTypeId(const std::string& name) const noexcept {
  for (int i = 0; i < numTileTypes(); ++i)
    if (types_[static_cast<std::size_t>(i)].name == name) return i;
  return -1;
}

bool Device::isColumnar() const noexcept {
  for (int x = 0; x < width_; ++x) {
    const int t0 = typeAt(x, 0);
    for (int y = 1; y < height_; ++y)
      if (typeAt(x, y) != t0) return false;
  }
  return true;
}

int Device::columnType(int x) const {
  const int t0 = typeAt(x, 0);
  for (int y = 1; y < height_; ++y)
    RFP_CHECK_MSG(typeAt(x, y) == t0, "column " << x << " is not uniform");
  return t0;
}

void Device::addForbidden(Rect r, std::string label) {
  RFP_CHECK_MSG(bounds().containsRect(r), "forbidden area " << r.toString()
                                                            << " outside device");
  forbidden_.push_back(r);
  forbidden_labels_.push_back(label.empty() ? "f" + std::to_string(forbidden_.size())
                                            : std::move(label));
}

bool Device::inForbidden(int x, int y) const noexcept {
  return std::any_of(forbidden_.begin(), forbidden_.end(),
                     [&](const Rect& f) { return f.contains(x, y); });
}

bool Device::rectHitsForbidden(const Rect& r) const noexcept {
  return std::any_of(forbidden_.begin(), forbidden_.end(),
                     [&](const Rect& f) { return f.overlaps(r); });
}

int Device::tilesInRect(const Rect& r, int type_id) const {
  const Rect c = r.intersect(bounds());
  int count = 0;
  for (int y = c.y; y < c.y2(); ++y)
    for (int x = c.x; x < c.x2(); ++x)
      if (typeAt(x, y) == type_id) ++count;
  return count;
}

std::vector<int> Device::tileHistogram(const Rect& r) const {
  std::vector<int> hist(static_cast<std::size_t>(numTileTypes()), 0);
  const Rect c = r.intersect(bounds());
  for (int y = c.y; y < c.y2(); ++y)
    for (int x = c.x; x < c.x2(); ++x)
      ++hist[static_cast<std::size_t>(typeAt(x, y))];
  return hist;
}

long Device::framesInRect(const Rect& r) const {
  const std::vector<int> hist = tileHistogram(r);
  long frames = 0;
  for (int t = 0; t < numTileTypes(); ++t)
    frames += static_cast<long>(hist[static_cast<std::size_t>(t)]) *
              types_[static_cast<std::size_t>(t)].frames;
  return frames;
}

std::vector<int> Device::totalTiles(bool usable_only) const {
  std::vector<int> hist(static_cast<std::size_t>(numTileTypes()), 0);
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x) {
      if (usable_only && inForbidden(x, y)) continue;
      ++hist[static_cast<std::size_t>(typeAt(x, y))];
    }
  return hist;
}

long Device::totalFrames() const {
  return framesInRect(bounds());
}

std::vector<int> Device::columnSignature(const Rect& r) const {
  RFP_CHECK_MSG(bounds().containsRect(r), "signature rect " << r.toString()
                                                            << " outside device");
  std::vector<int> sig;
  sig.reserve(static_cast<std::size_t>(r.w));
  for (int x = r.x; x < r.x2(); ++x) sig.push_back(typeAt(x, r.y));
  return sig;
}

}  // namespace rfp::device
