#include "device/parser.hpp"

#include <map>
#include <sstream>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace rfp::device {

Device parseDevice(const std::string& text) {
  std::string name = "unnamed";
  int rows = -1;
  std::vector<TileType> types;
  std::map<char, int> char_to_type;
  std::string columns;
  struct Forbidden {
    Rect r;
    std::string label;
  };
  std::vector<Forbidden> forbidden;

  int lineno = 0;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = str::trim(raw.substr(0, raw.find('#')));
    if (line.empty()) continue;
    const std::vector<std::string> tok = str::splitWhitespace(line);
    const std::string& kw = tok[0];

    if (kw == "device") {
      RFP_CHECK_MSG(tok.size() == 2, "line " << lineno << ": device expects one name");
      name = tok[1];
    } else if (kw == "rows") {
      RFP_CHECK_MSG(tok.size() == 2, "line " << lineno << ": rows expects one integer");
      rows = std::stoi(tok[1]);
      RFP_CHECK_MSG(rows > 0, "line " << lineno << ": rows must be positive");
    } else if (kw == "tiletype") {
      RFP_CHECK_MSG(tok.size() >= 4 && tok[1].size() == 1,
                    "line " << lineno << ": tiletype <char> <name> frames=<n> ...");
      TileType t;
      t.name = tok[2];
      for (std::size_t i = 3; i < tok.size(); ++i) {
        const auto kv = str::split(tok[i], '=');
        RFP_CHECK_MSG(kv.size() == 2, "line " << lineno << ": bad attribute '" << tok[i] << "'");
        if (kv[0] == "frames")
          t.frames = std::stoi(kv[1]);
        else
          t.resources[kv[0]] = std::stoi(kv[1]);
      }
      RFP_CHECK_MSG(t.frames > 0, "line " << lineno << ": tiletype needs frames=<n> > 0");
      RFP_CHECK_MSG(!char_to_type.count(tok[1][0]),
                    "line " << lineno << ": duplicate tiletype char '" << tok[1] << "'");
      char_to_type[tok[1][0]] = static_cast<int>(types.size());
      types.push_back(std::move(t));
    } else if (kw == "columns") {
      RFP_CHECK_MSG(tok.size() == 2, "line " << lineno << ": columns expects one pattern");
      columns = tok[1];
    } else if (kw == "forbidden") {
      RFP_CHECK_MSG(tok.size() == 5 || tok.size() == 6,
                    "line " << lineno << ": forbidden <x> <y> <w> <h> [label]");
      Forbidden f;
      f.r = Rect{std::stoi(tok[1]), std::stoi(tok[2]), std::stoi(tok[3]), std::stoi(tok[4])};
      if (tok.size() == 6) f.label = tok[5];
      forbidden.push_back(std::move(f));
    } else {
      RFP_CHECK_MSG(false, "line " << lineno << ": unknown keyword '" << kw << "'");
    }
  }

  RFP_CHECK_MSG(rows > 0, "device text missing 'rows'");
  RFP_CHECK_MSG(!columns.empty(), "device text missing 'columns'");
  RFP_CHECK_MSG(!types.empty(), "device text missing 'tiletype' lines");

  std::vector<int> col_types;
  col_types.reserve(columns.size());
  for (const char c : columns) {
    const auto it = char_to_type.find(c);
    RFP_CHECK_MSG(it != char_to_type.end(), "columns pattern uses undeclared char '" << c << "'");
    col_types.push_back(it->second);
  }

  Device dev(name, static_cast<int>(columns.size()), rows, std::move(types),
             std::move(col_types));
  for (auto& f : forbidden) dev.addForbidden(f.r, f.label);
  return dev;
}

std::string formatDevice(const Device& dev) {
  RFP_CHECK_MSG(dev.isColumnar(), "formatDevice supports columnar devices only");
  std::ostringstream os;
  os << "device " << dev.name() << "\n";
  os << "rows " << dev.height() << "\n";
  // Assign single-character codes: first letter, disambiguated by index.
  std::vector<char> code(static_cast<std::size_t>(dev.numTileTypes()));
  for (int t = 0; t < dev.numTileTypes(); ++t) {
    char c = dev.tileType(t).name.empty() ? 'T' : dev.tileType(t).name[0];
    for (int u = 0; u < t; ++u)
      if (code[static_cast<std::size_t>(u)] == c) c = static_cast<char>('0' + t);
    code[static_cast<std::size_t>(t)] = c;
    os << "tiletype " << c << ' ' << dev.tileType(t).name << " frames="
       << dev.tileType(t).frames;
    for (const auto& [res, count] : dev.tileType(t).resources) os << ' ' << res << '=' << count;
    os << "\n";
  }
  os << "columns ";
  for (int x = 0; x < dev.width(); ++x)
    os << code[static_cast<std::size_t>(dev.columnType(x))];
  os << "\n";
  for (std::size_t i = 0; i < dev.forbidden().size(); ++i) {
    const Rect& r = dev.forbidden()[i];
    os << "forbidden " << r.x << ' ' << r.y << ' ' << r.w << ' ' << r.h << ' '
       << dev.forbiddenLabels()[i] << "\n";
  }
  return os.str();
}

}  // namespace rfp::device
