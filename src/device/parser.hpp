// Text format for device descriptions, so downstream users can model their
// own parts without recompiling. Grammar (line oriented, '#' comments):
//
//   device   <name>
//   rows     <height>
//   tiletype <char> <name> frames=<n> [<resource>=<count> ...]
//   columns  <pattern>            # one tiletype char per column
//   forbidden <x> <y> <w> <h> [label]
//
// Example:
//   device demo
//   rows 4
//   tiletype C CLB frames=36 CLB=20
//   tiletype B BRAM frames=30 BRAM36=4
//   columns CCBCC
//   forbidden 1 1 2 2 hardblock
#pragma once

#include <string>

#include "device/device.hpp"

namespace rfp::device {

/// Parses a device description; throws rfp::CheckError with a line-numbered
/// message on malformed input.
Device parseDevice(const std::string& text);

/// Serializes a columnar device back to the text format (round-trippable).
std::string formatDevice(const Device& dev);

}  // namespace rfp::device
