// FPGA device model (Section II/III of the paper).
//
// The minimal unit of reconfiguration is a *tile* (one column wide, one
// clock-region high). A `TileType` realizes Definition .1: two tiles are of
// the same type iff they have the same resources *and* identical
// configuration data, so the type id is the unit of bitstream compatibility.
//
// The paper's Virtex-5 FX70T case study uses CLB/BRAM/DSP tiles with
// 36/30/28 configuration frames respectively (Table I arithmetic confirms
// these numbers exactly). Hard blocks (the PPC440) appear as *forbidden
// areas* that reconfigurable regions and free-compatible areas must avoid.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "device/geometry.hpp"

namespace rfp::device {

/// A tile type per Definition .1. `resources` lists logic primitives
/// contained in one tile (e.g. a Virtex-5 CLB tile holds 20 CLBs); `frames`
/// is the number of configuration frames a column of this type occupies.
struct TileType {
  std::string name;                     ///< "CLB", "BRAM", "DSP", ...
  std::map<std::string, int> resources; ///< primitive name → count per tile
  int frames = 0;                       ///< configuration frames per tile
};

class Device {
 public:
  /// Builds a device from a per-column type map (columnar architectures,
  /// which covers Virtex-5/6/7-style devices; Sec. III-A simplification).
  /// `column_types[x]` is an index into `types` for every tile in column x.
  Device(std::string name, int width, int height, std::vector<TileType> types,
         std::vector<int> column_types);

  /// Fully general constructor with an explicit per-tile type grid
  /// (row-major, `grid[y * width + x]`). Non-columnar devices are accepted;
  /// the columnar partitioning will simply report failure on them.
  Device(std::string name, int width, int height, std::vector<TileType> types,
         std::vector<int> grid, bool row_major_grid);

  // ---- shape -------------------------------------------------------------
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] Rect bounds() const noexcept { return Rect{0, 0, width_, height_}; }

  // ---- tile types ----------------------------------------------------------
  [[nodiscard]] int numTileTypes() const noexcept { return static_cast<int>(types_.size()); }
  [[nodiscard]] const TileType& tileType(int id) const { return types_.at(static_cast<std::size_t>(id)); }
  /// Type id by name; -1 when absent.
  [[nodiscard]] int tileTypeId(const std::string& name) const noexcept;

  /// Type id of the tile at (x, y).
  [[nodiscard]] int typeAt(int x, int y) const {
    return grid_.at(static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                    static_cast<std::size_t>(x));
  }

  /// True when every column has a single tile type (columnar device).
  [[nodiscard]] bool isColumnar() const noexcept;
  /// The type of column x; requires the column to be uniform.
  [[nodiscard]] int columnType(int x) const;

  // ---- forbidden areas -----------------------------------------------------
  void addForbidden(Rect r, std::string label = "");
  [[nodiscard]] const std::vector<Rect>& forbidden() const noexcept { return forbidden_; }
  [[nodiscard]] const std::vector<std::string>& forbiddenLabels() const noexcept {
    return forbidden_labels_;
  }
  [[nodiscard]] bool inForbidden(int x, int y) const noexcept;
  [[nodiscard]] bool rectHitsForbidden(const Rect& r) const noexcept;

  // ---- accounting ----------------------------------------------------------
  /// Number of tiles of type `type_id` inside `r` (clipped to the device).
  [[nodiscard]] int tilesInRect(const Rect& r, int type_id) const;
  /// Per-type tile histogram inside `r`.
  [[nodiscard]] std::vector<int> tileHistogram(const Rect& r) const;
  /// Configuration frames spanned by `r` (sum of frames of covered tiles).
  [[nodiscard]] long framesInRect(const Rect& r) const;
  /// Device-wide totals per type (forbidden tiles excluded when
  /// `usable_only`).
  [[nodiscard]] std::vector<int> totalTiles(bool usable_only) const;
  [[nodiscard]] long totalFrames() const;

  /// Column-type signature of `r`: the sequence of tile types, column by
  /// column, of the rectangle's top row. For columnar devices this fully
  /// determines the footprint together with (w, h) — the basis of area
  /// compatibility (Definition .1 / Fig. 1).
  [[nodiscard]] std::vector<int> columnSignature(const Rect& r) const;

 private:
  void validate() const;

  std::string name_;
  int width_ = 0;
  int height_ = 0;
  std::vector<TileType> types_;
  std::vector<int> grid_;  ///< row-major type ids
  std::vector<Rect> forbidden_;
  std::vector<std::string> forbidden_labels_;
};

}  // namespace rfp::device
