// Catalog of prebuilt device models.
//
// The paper's evaluation uses a single part (Virtex-5 FX70T, Sec. VI), but a
// floorplanner a downstream user would adopt must cover the families the
// paper claims compatibility with: "most of the commercially available
// FPGAs, including Xilinx devices of Virtex-7 family, are compliant with
// this simplified columnar description" (Sec. III-B). Every entry here is a
// columnar model derived from public documentation: column counts and type
// mixes approximate the real parts' resource ratios (slices / BRAM / DSP),
// one tile = one column × one clock region, and hard blocks (PowerPC,
// Zynq PS) appear as forbidden areas. All entries pass columnarPartition().
//
// These models are *approximations by construction* — the real column maps
// are not published at tile granularity — and are documented as such in
// DESIGN.md §3 (substitution 3). What matters for the floorplanner is that
// the heterogeneous column structure, the hard-block interruptions, and the
// per-family frame geometry are representative.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "device/device.hpp"

namespace rfp::device {

/// One catalog entry: a named builder plus provenance notes.
struct CatalogEntry {
  std::string name;         ///< canonical part name, e.g. "xc5vfx70t"
  std::string family;       ///< "virtex5", "virtex7", "zynq7000", ...
  std::string description;  ///< one-line provenance / modeling note
  Device (*build)();        ///< constructs a fresh Device
};

/// All catalog entries, stable order (grouped by family, smallest first).
[[nodiscard]] const std::vector<CatalogEntry>& catalog();

/// Builds a catalog device by canonical name; std::nullopt when unknown.
[[nodiscard]] std::optional<Device> buildByName(const std::string& name);

/// The canonical names, in catalog order (CLI listings, tests).
[[nodiscard]] std::vector<std::string> catalogNames();

// ---- Virtex-5 (DS100/UG190; 20-CLB clock regions) --------------------------

/// LXT mid-size part: logic-heavy mix, no hard processor.
Device virtex5LX110T();

/// SXT DSP-heavy part: double DSP column density.
Device virtex5SX95T();

/// FXT part one size up from the paper's FX70T: two PPC440 blocks.
Device virtex5FX130T();

// ---- Virtex-7 (DS180; 50-CLB clock regions) --------------------------------

/// Mid-size Virtex-7 (585T-class column mix).
Device virtex7V585T();

/// VX-class part (485T-like), richer BRAM/DSP mix.
Device virtex7VX485T();

// ---- 7-series derivatives ---------------------------------------------------

/// Kintex-7 325T-class mid-range part.
Device kintex7K325T();

/// Artix-7 200T-class low-end part (shallower fabric).
Device artix7A200T();

/// Zynq-7020-class part: processing system as a forbidden block in the
/// upper-left corner of the fabric.
Device zynq7020();

}  // namespace rfp::device
