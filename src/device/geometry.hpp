// Tile-grid geometry primitives shared across the library.
//
// Coordinates are in *tiles*: x grows left→right (columns), y grows
// top→bottom (rows), matching the paper's figures. Rectangles are
// half-open boxes [x, x+w) × [y, y+h).
#pragma once

#include <algorithm>
#include <string>

namespace rfp::device {

struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  [[nodiscard]] int x2() const noexcept { return x + w; }  ///< exclusive
  [[nodiscard]] int y2() const noexcept { return y + h; }  ///< exclusive
  [[nodiscard]] int area() const noexcept { return w * h; }
  [[nodiscard]] bool empty() const noexcept { return w <= 0 || h <= 0; }
  [[nodiscard]] double centerX() const noexcept { return x + w / 2.0; }
  [[nodiscard]] double centerY() const noexcept { return y + h / 2.0; }

  [[nodiscard]] bool contains(int px, int py) const noexcept {
    return px >= x && px < x2() && py >= y && py < y2();
  }
  [[nodiscard]] bool containsRect(const Rect& o) const noexcept {
    return o.x >= x && o.x2() <= x2() && o.y >= y && o.y2() <= y2();
  }
  [[nodiscard]] bool overlaps(const Rect& o) const noexcept {
    return x < o.x2() && o.x < x2() && y < o.y2() && o.y < y2();
  }
  [[nodiscard]] Rect intersect(const Rect& o) const noexcept {
    const int nx = std::max(x, o.x);
    const int ny = std::max(y, o.y);
    const int nx2 = std::min(x2(), o.x2());
    const int ny2 = std::min(y2(), o.y2());
    return Rect{nx, ny, std::max(0, nx2 - nx), std::max(0, ny2 - ny)};
  }

  [[nodiscard]] std::string toString() const {
    return "[x=" + std::to_string(x) + ",y=" + std::to_string(y) +
           ",w=" + std::to_string(w) + ",h=" + std::to_string(h) + "]";
  }

  friend bool operator==(const Rect& a, const Rect& b) noexcept {
    return a.x == b.x && a.y == b.y && a.w == b.w && a.h == b.h;
  }
};

}  // namespace rfp::device
