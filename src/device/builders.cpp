#include "device/builders.hpp"

#include "support/check.hpp"

namespace rfp::device {

std::vector<TileType> virtex5TileTypes() {
  return {
      TileType{"CLB", {{"CLB", 20}}, 36},
      TileType{"BRAM", {{"BRAM36", 4}}, 30},
      TileType{"DSP", {{"DSP48E", 8}}, 28},
  };
}

namespace {

std::vector<int> columnsFromPattern(const std::string& pattern) {
  std::vector<int> cols;
  cols.reserve(pattern.size());
  for (const char c : pattern) {
    switch (c) {
      case 'C': cols.push_back(0); break;
      case 'B': cols.push_back(1); break;
      case 'D': cols.push_back(2); break;
      default: RFP_CHECK_MSG(false, "unknown column pattern char '" << c << "'");
    }
  }
  return cols;
}

}  // namespace

Device virtex5FX70T() {
  // Column map (left→right). BRAM columns at {2, 13, 17, 28, 35}, DSP
  // columns at {7, 22}; everything else CLB. The neighborhoods of the two
  // DSP columns are congruent (BRAM at offsets −5 and +6 of each), as on the
  // real part where the DSP48E columns repeat the same local column mix.
  //           0         1         2         3         4
  //           01234567890123456789012345678901234567890123
  const std::string pattern =
      "CCBCCCCDCCCCCBCCCBCCCCDCCCCCBCCCCCCBCCCCCCCC";
  RFP_CHECK(pattern.size() == 44);
  Device dev("xc5vfx70t", 44, 8, virtex5TileTypes(), columnsFromPattern(pattern));
  // PPC440 hard block: 8 columns × 3 clock regions. Regions and
  // free-compatible areas must not cross it (Sec. III-A forbidden areas).
  dev.addForbidden(Rect{30, 3, 8, 3}, "ppc440");
  return dev;
}

Device virtex7Style() {
  // A wider columnar mix in the style of a mid-size Virtex-7 (paper Sec. III:
  // "most of the commercially available FPGAs, including Xilinx devices of
  // Virtex-7 family, are compliant with this simplified columnar description").
  std::string pattern;
  // 12 repetitions of an 8-column kernel: C C B C C D C C
  for (int i = 0; i < 12; ++i) pattern += "CCBCCDCC";
  Device dev("virtex7-style", static_cast<int>(pattern.size()), 14, virtex5TileTypes(),
             columnsFromPattern(pattern));
  return dev;
}

Device uniformDevice(int width, int height, int frames_per_tile) {
  std::vector<TileType> types{TileType{"CLB", {{"CLB", 20}}, frames_per_tile}};
  return Device("uniform-" + std::to_string(width) + "x" + std::to_string(height), width,
                height, std::move(types), std::vector<int>(static_cast<std::size_t>(width), 0));
}

Device columnarFromPattern(std::string name, const std::string& pattern, int height) {
  return Device(std::move(name), static_cast<int>(pattern.size()), height,
                virtex5TileTypes(), columnsFromPattern(pattern));
}

Device brokenColumnDevice() {
  // 4×4 grid whose third column mixes CLB and BRAM tiles: not columnar.
  std::vector<int> grid = {
      0, 0, 1, 0,  //
      0, 0, 1, 0,  //
      0, 0, 0, 0,  //
      0, 0, 0, 0,  //
  };
  return Device("broken-column", 4, 4, virtex5TileTypes(), std::move(grid), true);
}

}  // namespace rfp::device
