// Prebuilt device models.
//
// `virtex5FX70T()` is the paper's target device (Sec. VI), modeled from the
// public Xilinx DS100/UG190 documentation (DESIGN.md §3 substitution 3):
//  * 8 clock-region rows; one tile = one column × one clock region,
//  * CLB tile = 20 CLBs / 36 frames, BRAM tile = 4 BRAM36 / 30 frames,
//    DSP tile = 8 DSP48E / 28 frames (frame counts stated in Sec. VI and
//    confirmed by Table I arithmetic),
//  * 44 columns: 37 CLB, 5 BRAM, 2 DSP — matching the FX70T resource mix
//    (≈11.8k slices, 160 BRAM36 raw, 128 DSP48E),
//  * the PPC440 hard block as a forbidden area spanning 3 clock regions.
#pragma once

#include <string>

#include "device/device.hpp"

namespace rfp::device {

/// Standard Virtex-5 tile-type set (CLB, BRAM, DSP), in this index order.
std::vector<TileType> virtex5TileTypes();

/// The paper's evaluation device (Virtex-5 FX70T model).
Device virtex5FX70T();

/// A larger Virtex-7-style columnar device (used in scaling ablations).
Device virtex7Style();

/// Uniform all-CLB device of the given size (unit tests).
Device uniformDevice(int width, int height, int frames_per_tile = 36);

/// Columnar device from a pattern string, one char per column:
/// 'C' = CLB, 'B' = BRAM, 'D' = DSP. Example: "CCBCCDCC".
Device columnarFromPattern(std::string name, const std::string& pattern, int height);

/// Non-columnar device used to exercise the partitioning failure path:
/// like `columnarFromPattern` but with one column split between two types.
Device brokenColumnDevice();

}  // namespace rfp::device
