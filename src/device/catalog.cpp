#include "device/catalog.hpp"

#include <algorithm>

#include "device/builders.hpp"
#include "support/check.hpp"

namespace rfp::device {

namespace {

/// Repeats `kernel` until the pattern reaches `columns` characters, then
/// truncates. Kernels are chosen so the leftmost column of every repetition
/// has the same local neighborhood — the congruent spans that make
/// relocation across repetitions possible (Definition .1).
std::string repeatKernel(const std::string& kernel, int columns) {
  RFP_CHECK(!kernel.empty() && columns > 0);
  std::string pattern;
  pattern.reserve(static_cast<std::size_t>(columns));
  while (static_cast<int>(pattern.size()) < columns) pattern += kernel;
  pattern.resize(static_cast<std::size_t>(columns));
  return pattern;
}

/// 7-series tile types: same CLB/BRAM/DSP trio as Virtex-5 but with the
/// 7-series frame geometry (UG470: a CLB column is 36 frames, BRAM content
/// 128 spread differently — we keep the *configuration* frame counts, which
/// is what wasted-frame accounting uses: CLB 36, BRAM 28, DSP 28).
std::vector<TileType> series7TileTypes() {
  return {
      TileType{"CLB", {{"CLB", 50}}, 36},
      TileType{"BRAM", {{"BRAM36", 10}}, 28},
      TileType{"DSP", {{"DSP48E1", 20}}, 28},
  };
}

}  // namespace

// ---- Virtex-5 ---------------------------------------------------------------

Device virtex5LX110T() {
  // LX110T: ~17k slices, 148 BRAM36, 64 DSP48E over 8 clock regions. A
  // logic-heavy 64-column map: one DSP column per 16-column kernel. No hard
  // processor → no forbidden areas.
  const std::string pattern = repeatKernel("CCCCBCCCCCDCCCCB", 64);
  std::vector<int> cols;
  for (const char c : pattern) cols.push_back(c == 'C' ? 0 : c == 'B' ? 1 : 2);
  return Device("xc5vlx110t", 64, 8, virtex5TileTypes(), std::move(cols));
}

Device virtex5SX95T() {
  // SX95T: DSP-dense SXT mix (640 DSP48E on the real part — the highest
  // DSP:slice ratio of the family). Kernel alternates DSP pairs with BRAM.
  const std::string pattern = repeatKernel("CCDCCBCCDCCB", 48);
  std::vector<int> cols;
  for (const char c : pattern) cols.push_back(c == 'C' ? 0 : c == 'B' ? 1 : 2);
  return Device("xc5vsx95t", 48, 8, virtex5TileTypes(), std::move(cols));
}

Device virtex5FX130T() {
  // FX130T: FXT part with *two* PPC440 blocks, 10 clock regions. Column mix
  // close to the FX70T's but wider; the processors sit in the center-right
  // like on the real die, stacked in different region bands.
  const std::string pattern = repeatKernel("CCBCCCCDCCCCCBCCCBCCCCDCCCCCB", 56);
  std::vector<int> cols;
  for (const char c : pattern) cols.push_back(c == 'C' ? 0 : c == 'B' ? 1 : 2);
  Device dev("xc5vfx130t", 56, 10, virtex5TileTypes(), std::move(cols));
  dev.addForbidden(Rect{38, 2, 8, 3}, "ppc440_0");
  dev.addForbidden(Rect{38, 6, 8, 3}, "ppc440_1");
  return dev;
}

// ---- Virtex-7 ---------------------------------------------------------------

Device virtex7V585T() {
  // 585T-class: 9 clock regions, ~91k slices. 80 columns with the 7-series
  // interleave of BRAM/DSP pairs.
  const std::string pattern = repeatKernel("CCCCBCCDCC", 80);
  std::vector<int> cols;
  for (const char c : pattern) cols.push_back(c == 'C' ? 0 : c == 'B' ? 1 : 2);
  return Device("xc7v585t", 80, 9, series7TileTypes(), std::move(cols));
}

Device virtex7VX485T() {
  // VX485T-class: richer BRAM/DSP (memory-oriented VX mix), 7 regions.
  const std::string pattern = repeatKernel("CCBCCDCCBC", 70);
  std::vector<int> cols;
  for (const char c : pattern) cols.push_back(c == 'C' ? 0 : c == 'B' ? 1 : 2);
  return Device("xc7vx485t", 70, 7, series7TileTypes(), std::move(cols));
}

// ---- 7-series derivatives ----------------------------------------------------

Device kintex7K325T() {
  const std::string pattern = repeatKernel("CCCBCCDCCC", 50);
  std::vector<int> cols;
  for (const char c : pattern) cols.push_back(c == 'C' ? 0 : c == 'B' ? 1 : 2);
  return Device("xc7k325t", 50, 7, series7TileTypes(), std::move(cols));
}

Device artix7A200T() {
  const std::string pattern = repeatKernel("CCCBCCDCC", 36);
  std::vector<int> cols;
  for (const char c : pattern) cols.push_back(c == 'C' ? 0 : c == 'B' ? 1 : 2);
  return Device("xc7a200t", 36, 5, series7TileTypes(), std::move(cols));
}

Device zynq7020() {
  // Zynq-7020: Artix-class fabric with the processing system occupying the
  // upper-left corner. The PS is not reconfigurable fabric at all, so it is
  // a forbidden area regions and FC areas must not cross (Sec. III-A).
  const std::string pattern = repeatKernel("CCCBCCDCC", 30);
  std::vector<int> cols;
  for (const char c : pattern) cols.push_back(c == 'C' ? 0 : c == 'B' ? 1 : 2);
  Device dev("xc7z020", 30, 4, series7TileTypes(), std::move(cols));
  dev.addForbidden(Rect{0, 0, 10, 2}, "ps7");
  return dev;
}

// ---- catalog ----------------------------------------------------------------

const std::vector<CatalogEntry>& catalog() {
  static const std::vector<CatalogEntry> entries = {
      {"xc5vfx70t", "virtex5",
       "paper's evaluation part (Sec. VI): 44x8 tiles, 1 PPC440 forbidden block",
       &virtex5FX70T},
      {"xc5vlx110t", "virtex5", "logic-heavy LXT mid-size part, no hard processor",
       &virtex5LX110T},
      {"xc5vsx95t", "virtex5", "DSP-dense SXT part (highest DSP ratio of the family)",
       &virtex5SX95T},
      {"xc5vfx130t", "virtex5", "FXT part with two PPC440 forbidden blocks, 10 regions",
       &virtex5FX130T},
      {"xc7v585t", "virtex7", "mid-size Virtex-7, 9 regions, 7-series frame geometry",
       &virtex7V585T},
      {"xc7vx485t", "virtex7", "VX-class part with richer BRAM/DSP mix", &virtex7VX485T},
      {"xc7k325t", "kintex7", "mid-range Kintex-7", &kintex7K325T},
      {"xc7a200t", "artix7", "low-end Artix-7 (shallow fabric)", &artix7A200T},
      {"xc7z020", "zynq7000", "Zynq-7020 with the PS as a forbidden corner block",
       &zynq7020},
  };
  return entries;
}

std::optional<Device> buildByName(const std::string& name) {
  for (const CatalogEntry& e : catalog())
    if (e.name == name) return e.build();
  return std::nullopt;
}

std::vector<std::string> catalogNames() {
  std::vector<std::string> names;
  names.reserve(catalog().size());
  for (const CatalogEntry& e : catalog()) names.push_back(e.name);
  return names;
}

}  // namespace rfp::device
