#include "io/json.hpp"

namespace rfp::io {

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_scope_.back()) out_ << ',';
  first_in_scope_.back() = false;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

JsonWriter& JsonWriter::beginObject() {
  comma();
  out_ << '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  out_ << '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  comma();
  out_ << '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  out_ << ']';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ << '"' << escape(k) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(long v) {
  comma();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  comma();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::rawValue(const std::string& json) {
  comma();
  out_ << json;
  return *this;
}

CsvWriter& CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << sep_;
    const bool quote = fields[i].find_first_of(",\"\n") != std::string::npos;
    if (quote) {
      out_ << '"';
      for (const char c : fields[i]) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << fields[i];
    }
  }
  out_ << '\n';
  return *this;
}

}  // namespace rfp::io
