// Text format for floorplanning problems, the counterpart of the device
// format in device/parser.hpp — together they make the floorplanner usable
// from the command line without recompiling (see examples/rfp_cli.cpp).
//
// Grammar (line oriented, '#' comments, case-sensitive keywords):
//
//   problem  <name>                              # optional, first line
//   region   <name> <TYPE>=<tiles> [...]         # TYPE = tile type name
//   net      <weight> <region> <region> [...]    # >= 2 region names
//   relocate <region> count=<k> [soft] [weight=<w>]
//   objective lexicographic
//   objective weighted q1=<w> q2=<w> q3=<w> q4=<w>
//
// Example:
//   problem sdr
//   region matched_filter CLB=25 DSP=5
//   region carrier_recovery CLB=7 DSP=1
//   net 64 matched_filter carrier_recovery
//   relocate carrier_recovery count=2
//   objective lexicographic
#pragma once

#include <string>

#include "model/problem.hpp"

namespace rfp::io {

/// Parses a problem description against `dev` (tile types and region names
/// are resolved immediately). Throws rfp::CheckError with a line-numbered
/// message on malformed input. The returned problem borrows `dev`, which
/// must outlive it.
[[nodiscard]] model::FloorplanProblem parseProblem(const std::string& text,
                                                   const device::Device& dev);

/// Serializes a problem back to the text format (round-trippable up to
/// comments and the optional problem name, which is not stored).
[[nodiscard]] std::string formatProblem(const model::FloorplanProblem& problem);

}  // namespace rfp::io
