// Minimal JSON writer (no external dependencies): enough to serialize
// problems, floorplans and bench results for downstream tooling.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace rfp::io {

/// Streaming JSON writer with automatic comma handling. Usage:
///   JsonWriter w;
///   w.beginObject();
///   w.key("name").value("sdr");
///   w.key("regions").beginArray(); ... w.endArray();
///   w.endObject();
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(long v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  /// Embeds `json` verbatim as one value (it must already be valid JSON);
  /// lets higher layers compose documents from serialized fragments.
  JsonWriter& rawValue(const std::string& json);

  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  void comma();
  static std::string escape(const std::string& s);

  std::ostringstream out_;
  std::vector<bool> first_in_scope_{true};
  bool after_key_ = false;
};

/// Minimal CSV writer: quotes fields containing separators.
class CsvWriter {
 public:
  explicit CsvWriter(char sep = ',') : sep_(sep) {}
  CsvWriter& row(const std::vector<std::string>& fields);
  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  char sep_;
  std::ostringstream out_;
};

}  // namespace rfp::io
