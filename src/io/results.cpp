#include "io/results.hpp"

#include "io/json.hpp"

namespace rfp::io {

namespace {

void writeRect(JsonWriter& w, const device::Rect& r) {
  w.beginObject();
  w.key("x").value(r.x);
  w.key("y").value(r.y);
  w.key("w").value(r.w);
  w.key("h").value(r.h);
  w.endObject();
}

}  // namespace

std::string problemToJson(const model::FloorplanProblem& problem) {
  const device::Device& dev = problem.dev();
  JsonWriter w;
  w.beginObject();
  w.key("device").beginObject();
  w.key("name").value(dev.name());
  w.key("width").value(dev.width());
  w.key("height").value(dev.height());
  w.endObject();
  w.key("regions").beginArray();
  for (int n = 0; n < problem.numRegions(); ++n) {
    w.beginObject();
    w.key("name").value(problem.region(n).name);
    w.key("tiles").beginObject();
    for (int t = 0; t < dev.numTileTypes(); ++t)
      if (problem.region(n).required(t) > 0)
        w.key(dev.tileType(t).name).value(problem.region(n).required(t));
    w.endObject();
    w.key("min_frames").value(problem.minFrames(n));
    w.endObject();
  }
  w.endArray();
  w.key("nets").beginArray();
  for (const model::Net& net : problem.nets()) {
    w.beginObject();
    w.key("name").value(net.name);
    w.key("weight").value(net.weight);
    w.key("regions").beginArray();
    for (const int r : net.regions) w.value(r);
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.key("relocation_requests").beginArray();
  for (const model::RelocationRequest& req : problem.relocations()) {
    w.beginObject();
    w.key("region").value(req.region);
    w.key("count").value(req.count);
    w.key("hard").value(req.hard);
    w.key("weight").value(req.weight);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

std::string floorplanToJson(const model::FloorplanProblem& problem,
                            const model::Floorplan& fp) {
  const model::FloorplanCosts costs = model::evaluate(problem, fp);
  JsonWriter w;
  w.beginObject();
  w.key("regions").beginArray();
  for (int n = 0; n < problem.numRegions(); ++n) {
    w.beginObject();
    w.key("name").value(problem.region(n).name);
    w.key("rect");
    writeRect(w, fp.regions[static_cast<std::size_t>(n)]);
    w.key("wasted_frames").value(model::regionWaste(problem, n, fp.regions[static_cast<std::size_t>(n)]));
    w.endObject();
  }
  w.endArray();
  w.key("fc_areas").beginArray();
  for (const model::FcArea& a : fp.fc_areas) {
    w.beginObject();
    w.key("region").value(problem.region(a.region).name);
    w.key("placed").value(a.placed);
    if (a.placed) {
      w.key("rect");
      writeRect(w, a.rect);
    }
    w.endObject();
  }
  w.endArray();
  w.key("costs").beginObject();
  w.key("wasted_frames").value(costs.wasted_frames);
  w.key("wire_length").value(costs.wire_length);
  w.key("perimeter").value(costs.perimeter);
  w.key("relocation").value(costs.relocation);
  w.key("objective").value(costs.objective);
  w.endObject();
  w.endObject();
  return w.str();
}

}  // namespace rfp::io
