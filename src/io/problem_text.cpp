#include "io/problem_text.hpp"

#include <map>
#include <sstream>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace rfp::io {

model::FloorplanProblem parseProblem(const std::string& text, const device::Device& dev) {
  model::FloorplanProblem problem(&dev);
  std::map<std::string, int> region_index;

  const auto regionOf = [&](const std::string& name, int lineno) {
    const auto it = region_index.find(name);
    RFP_CHECK_MSG(it != region_index.end(),
                  "line " << lineno << ": unknown region '" << name << "'");
    return it->second;
  };

  int lineno = 0;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = str::trim(raw.substr(0, raw.find('#')));
    if (line.empty()) continue;
    const std::vector<std::string> tok = str::splitWhitespace(line);
    const std::string& kw = tok[0];

    if (kw == "problem") {
      RFP_CHECK_MSG(tok.size() == 2, "line " << lineno << ": problem expects one name");
      // The name is informational only; the model does not store it.
    } else if (kw == "region") {
      RFP_CHECK_MSG(tok.size() >= 3,
                    "line " << lineno << ": region <name> <TYPE>=<tiles> [...]");
      RFP_CHECK_MSG(!region_index.count(tok[1]),
                    "line " << lineno << ": duplicate region '" << tok[1] << "'");
      std::vector<int> tiles(static_cast<std::size_t>(dev.numTileTypes()), 0);
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const auto kv = str::split(tok[i], '=');
        RFP_CHECK_MSG(kv.size() == 2, "line " << lineno << ": bad requirement '" << tok[i] << "'");
        const int type = dev.tileTypeId(kv[0]);
        RFP_CHECK_MSG(type >= 0, "line " << lineno << ": unknown tile type '" << kv[0]
                                         << "' on device '" << dev.name() << "'");
        tiles[static_cast<std::size_t>(type)] = std::stoi(kv[1]);
      }
      region_index[tok[1]] = problem.addRegion(model::RegionSpec{tok[1], std::move(tiles)});
    } else if (kw == "net") {
      RFP_CHECK_MSG(tok.size() >= 4,
                    "line " << lineno << ": net <weight> <region> <region> [...]");
      model::Net net;
      net.weight = std::stod(tok[1]);
      net.name = "net_" + std::to_string(problem.nets().size());
      for (std::size_t i = 2; i < tok.size(); ++i)
        net.regions.push_back(regionOf(tok[i], lineno));
      problem.addNet(std::move(net));
    } else if (kw == "relocate") {
      RFP_CHECK_MSG(tok.size() >= 3,
                    "line " << lineno << ": relocate <region> count=<k> [soft] [weight=<w>]");
      model::RelocationRequest req;
      req.region = regionOf(tok[1], lineno);
      bool have_count = false;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        if (tok[i] == "soft") {
          req.hard = false;
          continue;
        }
        const auto kv = str::split(tok[i], '=');
        RFP_CHECK_MSG(kv.size() == 2, "line " << lineno << ": bad attribute '" << tok[i] << "'");
        if (kv[0] == "count") {
          req.count = std::stoi(kv[1]);
          have_count = true;
        } else if (kv[0] == "weight") {
          req.weight = std::stod(kv[1]);
        } else {
          RFP_CHECK_MSG(false, "line " << lineno << ": unknown attribute '" << kv[0] << "'");
        }
      }
      RFP_CHECK_MSG(have_count, "line " << lineno << ": relocate needs count=<k>");
      problem.addRelocation(req);
    } else if (kw == "objective") {
      RFP_CHECK_MSG(tok.size() >= 2, "line " << lineno << ": objective needs a mode");
      if (tok[1] == "lexicographic") {
        RFP_CHECK_MSG(tok.size() == 2, "line " << lineno << ": objective lexicographic");
        problem.setLexicographic(true);
      } else if (tok[1] == "weighted") {
        model::ObjectiveWeights w;
        for (std::size_t i = 2; i < tok.size(); ++i) {
          const auto kv = str::split(tok[i], '=');
          RFP_CHECK_MSG(kv.size() == 2, "line " << lineno << ": bad weight '" << tok[i] << "'");
          const double v = std::stod(kv[1]);
          if (kv[0] == "q1")
            w.q1_wirelength = v;
          else if (kv[0] == "q2")
            w.q2_perimeter = v;
          else if (kv[0] == "q3")
            w.q3_wasted = v;
          else if (kv[0] == "q4")
            w.q4_relocation = v;
          else
            RFP_CHECK_MSG(false, "line " << lineno << ": unknown weight '" << kv[0] << "'");
        }
        problem.setWeights(w);
        problem.setLexicographic(false);
      } else {
        RFP_CHECK_MSG(false, "line " << lineno << ": objective must be 'lexicographic' or "
                                        "'weighted', got '" << tok[1] << "'");
      }
    } else {
      RFP_CHECK_MSG(false, "line " << lineno << ": unknown keyword '" << kw << "'");
    }
  }

  const std::string structural = problem.validateStructure();
  RFP_CHECK_MSG(structural.empty(), "parsed problem is invalid: " << structural);
  return problem;
}

std::string formatProblem(const model::FloorplanProblem& problem) {
  const device::Device& dev = problem.dev();
  std::ostringstream out;
  out << "problem parsed\n";
  for (int n = 0; n < problem.numRegions(); ++n) {
    out << "region " << problem.region(n).name;
    for (int t = 0; t < dev.numTileTypes(); ++t)
      if (problem.region(n).required(t) > 0)
        out << ' ' << dev.tileType(t).name << '=' << problem.region(n).required(t);
    out << '\n';
  }
  for (const model::Net& net : problem.nets()) {
    out << "net " << str::formatDouble(net.weight, 6);
    for (const int r : net.regions) out << ' ' << problem.region(r).name;
    out << '\n';
  }
  for (const model::RelocationRequest& req : problem.relocations()) {
    out << "relocate " << problem.region(req.region).name << " count=" << req.count;
    if (!req.hard) out << " soft weight=" << str::formatDouble(req.weight, 6);
    out << '\n';
  }
  if (problem.lexicographic()) {
    out << "objective lexicographic\n";
  } else {
    const model::ObjectiveWeights& w = problem.weights();
    out << "objective weighted q1=" << str::formatDouble(w.q1_wirelength, 6)
        << " q2=" << str::formatDouble(w.q2_perimeter, 6)
        << " q3=" << str::formatDouble(w.q3_wasted, 6)
        << " q4=" << str::formatDouble(w.q4_relocation, 6) << '\n';
  }
  return out.str();
}

}  // namespace rfp::io
