// Serialization of problems and floorplans (JSON) for downstream tooling
// and the bench harness.
#pragma once

#include <string>

#include "model/floorplan.hpp"
#include "model/problem.hpp"

namespace rfp::io {

/// Serializes a floorplan + its evaluated costs as a JSON document.
[[nodiscard]] std::string floorplanToJson(const model::FloorplanProblem& problem,
                                          const model::Floorplan& fp);

/// Serializes the problem definition (device summary, regions, nets,
/// relocation requests).
[[nodiscard]] std::string problemToJson(const model::FloorplanProblem& problem);

}  // namespace rfp::io
