// The O and HO floorplanning algorithms (Sec. I / [10]) with the paper's
// relocation extension, driven by the from-scratch MILP solver.
//
//  O  — Optimal: the full MILP is solved over the whole solution space.
//  HO — Heuristic Optimal: a first feasible solution (constructive
//       heuristic) is extracted into a sequence pair, which is added as a
//       constraint to shrink the search space; the heuristic solution warm-
//       starts branch & bound. The sequence pair covers the free-compatible
//       areas too (Sec. II-A).
//
// Both algorithms support relocation as a constraint (Sec. IV) and as a
// metrics (Sec. V), and the Sec. VI lexicographic objective (minimize
// wasted frames, then wire length) via two-stage solving.
#pragma once

#include <optional>
#include <string>

#include "fp/formulation.hpp"
#include "fp/heuristic.hpp"
#include "milp/bb.hpp"
#include "model/floorplan.hpp"
#include "model/problem.hpp"

namespace rfp::driver {
class SharedIncumbent;  // driver/incumbent.hpp
}

namespace rfp::fp {

enum class Algorithm { kO, kHO };

enum class FpStatus { kOptimal, kFeasible, kInfeasible, kNoSolution };

[[nodiscard]] const char* toString(FpStatus s) noexcept;

struct MilpFloorplannerOptions {
  Algorithm algorithm = Algorithm::kO;
  FormulationOptions formulation;
  milp::MilpSolver::Options milp;
  bool lexicographic = true;  ///< two-stage (waste, then WL); else Eq. 14
  HeuristicOptions heuristic; ///< HO first-solution settings
  /// Overall wall-clock budget across all stages (heuristic + both MILP
  /// stages); <= 0: none. Each MILP stage receives the remaining budget (and
  /// at most `milp.time_limit_seconds` when that is also set); when the
  /// budget runs out between stages the best stage result so far is returned
  /// as kFeasible. `milp.stop` cancels all stages cooperatively.
  double time_limit_seconds = 0.0;
  /// Declines to solve (kNoSolution, with a detail note) when the LP
  /// substrate's working set for this formulation would exceed this many
  /// GiB. The estimate matches the engine `milp.lp` would actually run:
  /// the dense tableau is (m+1) x (n+2m) doubles (~25 GiB on SDR2, which is
  /// why such formulations used to be declined outright), while the sparse
  /// revised simplex is billed per constraint-matrix nonzero (~0.1 GiB on
  /// the same formulation), so paper-scale instances now pass the gate and
  /// solve on the sparse engine. The gate still protects the dense path
  /// when the engine selection is pinned to kDense. <= 0: no cap.
  double max_lp_gib = 1.0;
  /// Incumbent exchange channel (driver portfolios). For O, a published
  /// plan better than the heuristic's is adopted as the warm start (HO
  /// keeps its own construction — its sequence pair defines the restricted
  /// space and must not silently change); each MILP stage polls the channel
  /// at node boundaries — encoding snapshots into the stage's model as
  /// feasibility-gated cutoffs — and every improving incumbent the stages
  /// find is published back. The pointee must outlive solve().
  driver::SharedIncumbent* incumbent = nullptr;
};

struct FpResult {
  FpStatus status = FpStatus::kNoSolution;
  model::Floorplan plan;
  model::FloorplanCosts costs;
  double seconds = 0.0;
  long nodes = 0;
  std::string detail;  ///< per-stage diagnostics
  // LP substrate telemetry, aggregated over the MILP stages.
  lp::LpEngine lp_engine = lp::LpEngine::kAuto;  ///< kAuto until a MILP stage ran
  long lp_solves = 0;
  long lp_iterations = 0;
  long lp_warm_hits = 0;
  long lp_refactorizations = 0;
  long lp_primal_pivots = 0;
  long lp_dual_pivots = 0;
  long lp_bound_flips = 0;
  long lp_ft_updates = 0;
  long lp_dual_reopts = 0;  ///< node solves answered by the dual fast path
  // Hyper-sparse kernel telemetry: triangular-solve path taken and exact
  // steepest-edge weight recurrence applications.
  long lp_ftran_sparse = 0;
  long lp_ftran_dense = 0;
  long lp_btran_sparse = 0;
  long lp_btran_dense = 0;
  long lp_dse_updates = 0;
  // In-solve work-stealing telemetry (milp.threads > 1): per-worker figures
  // summed by worker id across the MILP stages, plus the steal total.
  std::vector<milp::MipWorkerStats> workers;
  long steals = 0;
  // Incumbent-exchange telemetry (zero without a channel).
  long published = 0;        ///< incumbents offered to the channel
  long adopted = 0;          ///< external incumbents adopted as cutoffs
  long external_prunes = 0;  ///< MILP nodes pruned against an external cutoff

  [[nodiscard]] bool hasSolution() const noexcept {
    return status == FpStatus::kOptimal || status == FpStatus::kFeasible;
  }
};

class MilpFloorplanner {
 public:
  MilpFloorplanner() = default;
  explicit MilpFloorplanner(MilpFloorplannerOptions options) : options_(std::move(options)) {}

  [[nodiscard]] FpResult solve(const model::FloorplanProblem& problem) const;

  [[nodiscard]] const MilpFloorplannerOptions& options() const noexcept { return options_; }

 private:
  MilpFloorplannerOptions options_;
};

}  // namespace rfp::fp
