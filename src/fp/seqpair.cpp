#include "fp/seqpair.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace rfp::fp {

namespace {

/// Topological order of 0..n-1 under the strict partial order `precedes`.
/// The relation derived from disjoint rects is acyclic in both projections.
std::vector<int> topoOrder(int n, const std::vector<std::vector<bool>>& precedes) {
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (precedes[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])
        ++indeg[static_cast<std::size_t>(j)];
  std::vector<int> order;
  std::vector<bool> done(static_cast<std::size_t>(n), false);
  for (int step = 0; step < n; ++step) {
    int pick = -1;
    for (int i = 0; i < n; ++i)
      if (!done[static_cast<std::size_t>(i)] && indeg[static_cast<std::size_t>(i)] == 0) {
        pick = i;
        break;
      }
    RFP_CHECK_MSG(pick >= 0, "cycle in sequence-pair relation");
    done[static_cast<std::size_t>(pick)] = true;
    order.push_back(pick);
    for (int j = 0; j < n; ++j)
      if (precedes[static_cast<std::size_t>(pick)][static_cast<std::size_t>(j)])
        --indeg[static_cast<std::size_t>(j)];
  }
  return order;
}

}  // namespace

SequencePair extractSequencePair(const std::vector<device::Rect>& rects) {
  const int n = static_cast<int>(rects.size());
  // For each disjoint pair, the truth set over {left, right, above, below}
  // determines which sequence-pair orders are *forced*. With patterns
  // (s1, s2): (<,<) ⇔ left and (<,>) ⇔ above, a pure-left pair forces both
  // orders, a pure-above pair forces s1 and s2, and a diagonal pair (e.g.
  // left ∧ below) forces only one order and leaves the other genuinely
  // free. Adding exactly the forced edges keeps both relations acyclic —
  // every packing admits a valid sequence pair (gridding theorem) whose
  // total orders are linear extensions of the forced relations — whereas
  // resolving the free pairs with a local rule such as "horizontal first"
  // can create cycles through third rectangles.
  std::vector<std::vector<bool>> pre1(static_cast<std::size_t>(n),
                                      std::vector<bool>(static_cast<std::size_t>(n), false));
  std::vector<std::vector<bool>> pre2 = pre1;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const device::Rect& a = rects[static_cast<std::size_t>(i)];
      const device::Rect& b = rects[static_cast<std::size_t>(j)];
      const bool left = a.x2() <= b.x;   // i strictly left of j
      const bool right = b.x2() <= a.x;  // i strictly right of j
      const bool above = a.y2() <= b.y;  // i strictly above j
      const bool below = b.y2() <= a.y;  // i strictly below j
      RFP_CHECK_MSG(left || right || above || below,
                    "extractSequencePair requires non-overlapping rectangles: "
                        << a.toString() << " vs " << b.toString());
      // s1: i→j forced by (left ∧ ¬below) or (above ∧ ¬right); mirrored j→i.
      if ((left && !below) || (above && !right))
        pre1[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
      if ((right && !above) || (below && !left))
        pre1[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;
      // s2: i→j forced by (left ∧ ¬above) or (below ∧ ¬right); mirrored j→i.
      if ((left && !above) || (below && !right))
        pre2[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
      if ((right && !below) || (above && !left))
        pre2[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;
    }
  SequencePair sp;
  sp.s1 = topoOrder(n, pre1);
  sp.s2 = topoOrder(n, pre2);
  return sp;
}

bool isConsistent(const SequencePair& sp, const std::vector<device::Rect>& rects) {
  const int n = static_cast<int>(rects.size());
  if (static_cast<int>(sp.s1.size()) != n || static_cast<int>(sp.s2.size()) != n) return false;
  std::vector<int> pos1(static_cast<std::size_t>(n)), pos2(static_cast<std::size_t>(n));
  for (int idx = 0; idx < n; ++idx) {
    pos1[static_cast<std::size_t>(sp.s1[static_cast<std::size_t>(idx)])] = idx;
    pos2[static_cast<std::size_t>(sp.s2[static_cast<std::size_t>(idx)])] = idx;
  }
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const bool b1 = pos1[static_cast<std::size_t>(i)] < pos1[static_cast<std::size_t>(j)];
      const bool b2 = pos2[static_cast<std::size_t>(i)] < pos2[static_cast<std::size_t>(j)];
      const device::Rect& ri = rects[static_cast<std::size_t>(i)];
      const device::Rect& rj = rects[static_cast<std::size_t>(j)];
      if (b1 && b2 && !(ri.x2() <= rj.x)) return false;
      if (b1 && !b2 && !(ri.y2() <= rj.y)) return false;
    }
  return true;
}

}  // namespace rfp::fp
