// Constructive heuristic floorplanner.
//
// Produces the "first feasible solution" that HO (Sec. II-A) constrains the
// MILP with: regions are placed greedily (largest demand first) on minimal-
// waste candidate rectangles, then each region's free-compatible areas are
// placed on matching footprints. Multiple randomized restarts improve the
// chance of satisfying tight relocation constraints.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "model/floorplan.hpp"
#include "model/problem.hpp"

namespace rfp::driver {
class SharedIncumbent;  // driver/incumbent.hpp
}
namespace rfp::telemetry {
struct Context;  // support/telemetry/trace.hpp
}

namespace rfp::fp {

struct HeuristicOptions {
  int restarts = 32;          ///< randomized region orders after the greedy one
  std::uint64_t seed = 1;     ///< RNG seed (deterministic)
  bool place_fc_areas = true; ///< also place all requested FC areas
  double time_limit_seconds = 0.0;  ///< wall-clock budget, polled between
                                    ///< restarts; <= 0: none
  /// Cooperative external cancellation, polled between restarts; when set the
  /// heuristic gives up (as if every remaining restart failed). The pointee
  /// must outlive the call. Used by driver portfolios.
  std::atomic<bool>* stop = nullptr;
  /// Incumbent exchange channel (driver portfolios): the first feasible
  /// construction is published before it is returned, so the provers see it
  /// even when the caller discards or post-processes the result. The pointee
  /// must outlive the call.
  driver::SharedIncumbent* incumbent = nullptr;
  /// Solve-scoped observability (spans + counters); null = no telemetry.
  /// The pointee must outlive the call.
  const telemetry::Context* telemetry = nullptr;
};

/// Returns a fully feasible floorplan (model::check passes) or std::nullopt
/// when the heuristic fails on every restart. Hard FC requests must all be
/// satisfied for success; soft requests are placed best-effort.
[[nodiscard]] std::optional<model::Floorplan> constructiveFloorplan(
    const model::FloorplanProblem& problem, const HeuristicOptions& options = {});

}  // namespace rfp::fp
