#include "fp/heuristic.hpp"

#include <algorithm>
#include <numeric>

#include "driver/incumbent.hpp"
#include "search/candidates.hpp"
#include "search/occupancy.hpp"
#include "support/rng.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace rfp::fp {

namespace {

using device::Rect;

/// One greedy construction attempt with a fixed region order. `shape_skip`
/// (per region) offsets the shape choice away from the cheapest candidate:
/// restarts vary it so that relocation-heavy instances, where the waste-
/// minimal shape starves the free-compatible areas of room, still find a
/// first solution (Sec. II-A requires the HO input to place the FC areas).
std::optional<model::Floorplan> attempt(const model::FloorplanProblem& problem,
                                        const std::vector<int>& order,
                                        const std::vector<search::RegionCandidates>& cands,
                                        bool place_fc,
                                        const std::vector<std::size_t>& shape_skip) {
  const device::Device& dev = problem.dev();
  search::Occupancy occ(dev.width(), dev.height());
  std::vector<Rect> rects(static_cast<std::size_t>(problem.numRegions()));
  std::vector<bool> placed(static_cast<std::size_t>(problem.numRegions()), false);

  for (const int n : order) {
    bool ok = false;
    const std::vector<search::Shape>& shapes = cands[static_cast<std::size_t>(n)].shapes;
    const std::size_t skip =
        shapes.empty() ? 0 : shape_skip[static_cast<std::size_t>(n)] % shapes.size();
    for (std::size_t si = 0; si < shapes.size() && !ok; ++si) {
      const search::Shape& s = shapes[(si + skip) % shapes.size()];
      for (const int y : s.ys) {
        const Rect r{s.x, y, s.w, s.h};
        if (occ.overlaps(r)) continue;
        occ.fill(r);
        rects[static_cast<std::size_t>(n)] = r;
        placed[static_cast<std::size_t>(n)] = true;
        ok = true;
        break;
      }
    }
    if (!ok) return std::nullopt;
  }

  model::Floorplan fp;
  fp.regions = rects;
  fp.fc_areas = model::expandFcRequests(problem);
  if (!place_fc) {
    // Hard slots unplaced ⇒ infeasible floorplan; only valid when there are
    // no hard requests.
    for (const model::FcArea& a : fp.fc_areas)
      for (const model::RelocationRequest& req : problem.relocations())
        if (req.region == a.region && req.hard) return std::nullopt;
    return fp;
  }

  // FC areas: enumerate compatible placements of each region footprint.
  std::size_t slot = 0;
  for (const model::RelocationRequest& req : problem.relocations()) {
    const Rect& src = rects[static_cast<std::size_t>(req.region)];
    std::vector<Rect> options;
    for (const int x : search::matchingColumnSpans(dev, src.x, src.w))
      for (const int y : search::validRows(dev, x, src.w, src.h))
        options.push_back(Rect{x, y, src.w, src.h});
    for (int i = 0; i < req.count; ++i, ++slot) {
      bool ok = false;
      for (const Rect& cand : options) {
        if (occ.overlaps(cand)) continue;
        occ.fill(cand);
        fp.fc_areas[slot].rect = cand;
        fp.fc_areas[slot].placed = true;
        ok = true;
        break;
      }
      if (!ok && req.hard) return std::nullopt;
    }
  }
  return fp;
}

}  // namespace

std::optional<model::Floorplan> constructiveFloorplan(const model::FloorplanProblem& problem,
                                                      const HeuristicOptions& options) {
  telemetry::Span run_span(options.telemetry, "heuristic", "construct");
  std::vector<search::RegionCandidates> cands;
  cands.reserve(static_cast<std::size_t>(problem.numRegions()));
  for (int n = 0; n < problem.numRegions(); ++n)
    cands.push_back(search::enumerateCandidates(problem, n));

  // Deterministic first order: largest minimum-frame demand first (hardest
  // regions claim space early).
  std::vector<int> order(static_cast<std::size_t>(problem.numRegions()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return problem.minFrames(a) > problem.minFrames(b);
  });

  Rng rng(options.seed);
  std::vector<std::size_t> shape_skip(static_cast<std::size_t>(problem.numRegions()), 0);
  const Deadline deadline(options.time_limit_seconds);
  for (int attempt_index = 0; attempt_index <= options.restarts; ++attempt_index) {
    if (options.stop && options.stop->load(std::memory_order_relaxed)) return std::nullopt;
    if (attempt_index > 0 && deadline.expired()) return std::nullopt;
    if (attempt_index > 0) {
      // Fisher–Yates shuffle for subsequent restarts, plus random shape
      // offsets so the same order can still explore different geometries.
      for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.nextBelow(i)]);
      for (std::size_t n = 0; n < shape_skip.size(); ++n) {
        const std::size_t num_shapes =
            std::max<std::size_t>(1, cands[n].shapes.size());
        // Bias toward cheap shapes: half the attempts stay at the cheapest.
        shape_skip[n] = rng.nextBool() ? 0 : rng.nextBelow(std::min<std::size_t>(num_shapes, 32));
      }
    }
    auto fp = attempt(problem, order, cands, options.place_fc_areas, shape_skip);
    if (fp && model::check(problem, *fp).empty()) {
      const model::FloorplanCosts costs = model::evaluate(problem, *fp);
      if (options.incumbent) options.incumbent->publish(*fp, costs, "heuristic");
      telemetry::instant(options.telemetry, "incumbent", "publish", "waste",
                         static_cast<double>(costs.wasted_frames), "engine", "heuristic");
      if (run_span.active()) run_span.arg("restarts", static_cast<double>(attempt_index));
      if (options.telemetry != nullptr && options.telemetry->metrics != nullptr)
        options.telemetry->metrics->counter("heuristic.restarts").add(attempt_index + 1);
      return fp;
    }
  }
  return std::nullopt;
}

}  // namespace rfp::fp
