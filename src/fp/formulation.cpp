#include "fp/formulation.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace rfp::fp {

using lp::LinExpr;
using lp::Sense;
using lp::Var;
using lp::VarType;

namespace {
std::string tag(const char* base, int a, int b = -1, int c = -1) {
  std::string s = base;
  s += '_' + std::to_string(a);
  if (b >= 0) s += '_' + std::to_string(b);
  if (c >= 0) s += '_' + std::to_string(c);
  return s;
}
}  // namespace

MilpFormulation::MilpFormulation(const model::FloorplanProblem& problem,
                                 const partition::ColumnarPartition& part,
                                 FormulationOptions options)
    : problem_(problem), part_(part), opt_(options) {
  num_regions_ = problem.numRegions();
  W_ = problem.dev().width();
  R_ = problem.dev().height();
  P_ = static_cast<int>(part.portions.size());

  for (const model::RelocationRequest& req : problem.relocations())
    for (int i = 0; i < req.count; ++i)
      slots_.push_back(Slot{req.region, req.hard, req.weight});
  num_areas_ = num_regions_ + static_cast<int>(slots_.size());

  buildAreas();
  buildPortionLinkage();
  buildCoverageAndWaste();
  buildNonOverlap();
  buildForbidden();
  buildRelocation();
  buildObjective();
}

bool MilpFormulation::hasSoftSlots() const noexcept {
  return std::any_of(slots_.begin(), slots_.end(), [](const Slot& s) { return !s.hard; });
}

void MilpFormulation::buildAreas() {
  x_.resize(static_cast<std::size_t>(num_areas_));
  w_.resize(static_cast<std::size_t>(num_areas_));
  y_.resize(static_cast<std::size_t>(num_areas_));
  h_.resize(static_cast<std::size_t>(num_areas_));
  a_.resize(static_cast<std::size_t>(num_areas_));
  for (int i = 0; i < num_areas_; ++i) {
    x_[static_cast<std::size_t>(i)] = model_.addInteger(0, W_ - 1, tag("x", i));
    w_[static_cast<std::size_t>(i)] = model_.addInteger(1, W_, tag("w", i));
    y_[static_cast<std::size_t>(i)] = model_.addContinuous(0, R_ - 1, tag("y", i));
    h_[static_cast<std::size_t>(i)] = model_.addContinuous(1, R_, tag("h", i));
    // Fit on the device: x + w <= W.
    model_.addConstr(LinExpr(x_[static_cast<std::size_t>(i)]) + w_[static_cast<std::size_t>(i)],
                     Sense::kLessEqual, W_, tag("fit", i));

    auto& rows = a_[static_cast<std::size_t>(i)];
    rows.reserve(static_cast<std::size_t>(R_));
    LinExpr height_sum;
    for (int r = 0; r < R_; ++r) {
      rows.push_back(model_.addBinary(tag("a", i, r)));
      height_sum += rows.back();
    }
    // h = Σ_r a (h is declared real, as in the paper's variable list).
    model_.addConstr(height_sum - h_[static_cast<std::size_t>(i)], Sense::kEqual, 0,
                     tag("hdef", i));

    // Row contiguity: the number of 0→1 rises along the rows is at most one.
    LinExpr rise_sum;
    for (int r = 0; r < R_; ++r) {
      const Var rise = model_.addContinuous(0, 1, tag("rise", i, r));
      LinExpr lhs(rows[static_cast<std::size_t>(r)]);
      if (r > 0) lhs -= rows[static_cast<std::size_t>(r - 1)];
      model_.addConstr(lhs - rise, Sense::kLessEqual, 0, tag("risedef", i, r));
      rise_sum += rise;
    }
    model_.addConstr(rise_sum, Sense::kLessEqual, 1, tag("contig", i));

    // y = first occupied row (exact given contiguity):
    //   y <= r + R(1 - a_r)    for all r,
    //   y >= r(a_r - a_{r-1})  binding only at the start row.
    for (int r = 0; r < R_; ++r) {
      model_.addConstr(LinExpr(y_[static_cast<std::size_t>(i)]) -
                           LinExpr(r) - R_ * (1.0 - LinExpr(rows[static_cast<std::size_t>(r)])),
                       Sense::kLessEqual, 0, tag("ytop", i, r));
      LinExpr start(rows[static_cast<std::size_t>(r)]);
      if (r > 0) start -= rows[static_cast<std::size_t>(r - 1)];
      model_.addConstr(LinExpr(y_[static_cast<std::size_t>(i)]) - static_cast<double>(r) * start,
                       Sense::kGreaterEqual, 0, tag("ybot", i, r));
    }
  }
}

void MilpFormulation::buildPortionLinkage() {
  g_.resize(static_cast<std::size_t>(num_areas_));
  e_.resize(static_cast<std::size_t>(num_areas_));
  cw_.resize(static_cast<std::size_t>(num_areas_));
  l_.resize(static_cast<std::size_t>(num_areas_));
  if (opt_.offset == OffsetEncoding::kPaper) o_.resize(static_cast<std::size_t>(num_areas_));

  for (int i = 0; i < num_areas_; ++i) {
    auto& g = g_[static_cast<std::size_t>(i)];
    auto& e = e_[static_cast<std::size_t>(i)];
    for (int p = 0; p < P_; ++p) {
      g.push_back(model_.addBinary(tag("g", i, p)));
      e.push_back(model_.addBinary(tag("e", i, p)));
    }
    // Portion 0 starts at column 0, so both chains begin at 1.
    model_.setVarBounds(g[0].index, 1, 1);
    model_.setVarBounds(e[0].index, 1, 1);
    for (int p = 0; p < P_; ++p) {
      const double px1 = part_.portions[static_cast<std::size_t>(p)].x;
      // g_p = [x >= px1_p]:  x >= px1 - W(1-g),  x <= px1 - 1 + W*g.
      model_.addConstr(LinExpr(x_[static_cast<std::size_t>(i)]) - px1 +
                           static_cast<double>(W_) * (1.0 - LinExpr(g[static_cast<std::size_t>(p)])),
                       Sense::kGreaterEqual, 0, tag("glo", i, p));
      model_.addConstr(LinExpr(x_[static_cast<std::size_t>(i)]) - (px1 - 1) -
                           static_cast<double>(W_) * LinExpr(g[static_cast<std::size_t>(p)]),
                       Sense::kLessEqual, 0, tag("ghi", i, p));
      // e_p = [x + w - 1 >= px1_p].
      LinExpr end = LinExpr(x_[static_cast<std::size_t>(i)]) + w_[static_cast<std::size_t>(i)] - 1.0;
      model_.addConstr(end - px1 +
                           static_cast<double>(W_) * (1.0 - LinExpr(e[static_cast<std::size_t>(p)])),
                       Sense::kGreaterEqual, 0, tag("elo", i, p));
      model_.addConstr(end - (px1 - 1) -
                           static_cast<double>(W_) * LinExpr(e[static_cast<std::size_t>(p)]),
                       Sense::kLessEqual, 0, tag("ehi", i, p));
      // Monotonicity (portions ordered left to right, Property .4).
      if (p > 0) {
        model_.addConstr(LinExpr(g[static_cast<std::size_t>(p)]) - g[static_cast<std::size_t>(p - 1)],
                         Sense::kLessEqual, 0, tag("gmono", i, p));
        model_.addConstr(LinExpr(e[static_cast<std::size_t>(p)]) - e[static_cast<std::size_t>(p - 1)],
                         Sense::kLessEqual, 0, tag("emono", i, p));
      }
    }

    if (opt_.offset == OffsetEncoding::kPaper) {
      auto& o = o_[static_cast<std::size_t>(i)];
      LinExpr sum;
      for (int p = 0; p < P_; ++p) {
        o.push_back(model_.addContinuous(0, 1, tag("o", i, p)));
        sum += o.back();
      }
      // Eq. 4: Σ_p o_{n,p} = 1.
      model_.addConstr(sum, Sense::kEqual, 1, tag("eq4", i));
      // Eq. 5: o_1 = k_1; o_p >= k_p - k_{p-1}.
      model_.addConstr(LinExpr(o[0]) - kExpr(i, 0), Sense::kEqual, 0, tag("eq5a", i));
      for (int p = 1; p < P_; ++p)
        model_.addConstr(LinExpr(o[static_cast<std::size_t>(p)]) - kExpr(i, p) + kExpr(i, p - 1),
                         Sense::kGreaterEqual, 0, tag("eq5b", i, p));
    }

    // Intersection widths cw_{i,p} and the paper's l_{i,p,r} variables.
    auto& cw = cw_[static_cast<std::size_t>(i)];
    LinExpr cw_sum;
    for (int p = 0; p < P_; ++p) {
      const partition::Portion& portion = part_.portions[static_cast<std::size_t>(p)];
      const Var v = model_.addContinuous(0, portion.w, tag("cw", i, p));
      cw.push_back(v);
      cw_sum += v;
      const LinExpr k = kExpr(i, p);
      // cw <= (x + w) - px1 + W(1-k);  cw <= px2 + 1 - x + W(1-k);  cw <= pw·k.
      model_.addConstr(LinExpr(v) - (LinExpr(x_[static_cast<std::size_t>(i)]) +
                                     w_[static_cast<std::size_t>(i)] - portion.x) -
                           static_cast<double>(W_) * (1.0 - k),
                       Sense::kLessEqual, 0, tag("cwa", i, p));
      model_.addConstr(LinExpr(v) - (portion.x2() - LinExpr(x_[static_cast<std::size_t>(i)])) -
                           static_cast<double>(W_) * (1.0 - k),
                       Sense::kLessEqual, 0, tag("cwb", i, p));
      model_.addConstr(LinExpr(v) - static_cast<double>(portion.w) * k, Sense::kLessEqual, 0,
                       tag("cwc", i, p));
    }
    // Σ_p cw = w: forces every cw to its (exact) upper bound.
    model_.addConstr(cw_sum - w_[static_cast<std::size_t>(i)], Sense::kEqual, 0, tag("cwsum", i));

    auto& lv = l_[static_cast<std::size_t>(i)];
    lv.resize(static_cast<std::size_t>(P_));
    for (int p = 0; p < P_; ++p) {
      const partition::Portion& portion = part_.portions[static_cast<std::size_t>(p)];
      for (int r = 0; r < R_; ++r) {
        const Var v = model_.addContinuous(0, portion.w, tag("l", i, p, r));
        lv[static_cast<std::size_t>(p)].push_back(v);
        // l <= cw;  l <= pw·a_r.
        model_.addConstr(LinExpr(v) - cw[static_cast<std::size_t>(p)], Sense::kLessEqual, 0,
                         tag("la", i, p, r));
        model_.addConstr(LinExpr(v) -
                             static_cast<double>(portion.w) *
                                 LinExpr(a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(r)]),
                         Sense::kLessEqual, 0, tag("lb", i, p, r));
      }
    }
    // Σ_p l_{i,p,r} >= w - W(1 - a_r): on occupied rows the row's tiles sum
    // to the full width, which (with the upper bounds) pins every l exactly.
    for (int r = 0; r < R_; ++r) {
      LinExpr row_sum;
      for (int p = 0; p < P_; ++p) row_sum += lv[static_cast<std::size_t>(p)][static_cast<std::size_t>(r)];
      model_.addConstr(row_sum - w_[static_cast<std::size_t>(i)] +
                           static_cast<double>(W_) *
                               (1.0 - LinExpr(a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(r)])),
                       Sense::kGreaterEqual, 0, tag("lrow", i, r));
    }
  }
}

LinExpr MilpFormulation::kExpr(int area, int p) const {
  // k_{i,p} = e_{i,p} - g_{i,p+1}: intersects p iff the area's end reaches
  // p's left edge and the area does not start beyond p.
  LinExpr k(e_[static_cast<std::size_t>(area)][static_cast<std::size_t>(p)]);
  if (p + 1 < P_) k -= g_[static_cast<std::size_t>(area)][static_cast<std::size_t>(p + 1)];
  return k;
}

LinExpr MilpFormulation::oExpr(int area, int p) const {
  if (opt_.offset == OffsetEncoding::kPaper)
    return LinExpr(o_[static_cast<std::size_t>(area)][static_cast<std::size_t>(p)]);
  // Chain encoding: the first covered portion is where the g-chain steps.
  LinExpr o(g_[static_cast<std::size_t>(area)][static_cast<std::size_t>(p)]);
  if (p + 1 < P_) o -= g_[static_cast<std::size_t>(area)][static_cast<std::size_t>(p + 1)];
  return o;
}

LinExpr MilpFormulation::tilesInPortion(int area, int p) const {
  LinExpr sum;
  for (int r = 0; r < R_; ++r)
    sum += l_[static_cast<std::size_t>(area)][static_cast<std::size_t>(p)][static_cast<std::size_t>(r)];
  return sum;
}

void MilpFormulation::buildCoverageAndWaste() {
  const device::Device& dev = problem_.dev();
  waste_expr_ = LinExpr();
  for (int n = 0; n < num_regions_; ++n) {
    for (int t = 0; t < dev.numTileTypes(); ++t) {
      LinExpr covered;
      for (int p = 0; p < P_; ++p)
        if (part_.portions[static_cast<std::size_t>(p)].type == t) covered += tilesInPortion(n, p);
      const int need = problem_.region(n).required(t);
      if (need > 0)
        model_.addConstr(covered, Sense::kGreaterEqual, need, tag("cover", n, t));
      // Rcost contribution: frames(t) · (covered − required).
      waste_expr_ += static_cast<double>(dev.tileType(t).frames) * covered;
      waste_expr_ += LinExpr(-static_cast<double>(dev.tileType(t).frames) * need);
    }
  }
}

void MilpFormulation::buildNonOverlap() {
  lr_.assign(static_cast<std::size_t>(num_areas_),
             std::vector<Var>(static_cast<std::size_t>(num_areas_)));
  for (int i = 0; i < num_areas_; ++i)
    for (int j = 0; j < num_areas_; ++j)
      if (i != j) {
        lr_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            model_.addBinary(tag("lr", i, j));
        // lr_{i,j} = 1 ⇒ i entirely left of j.
        model_.addConstr(LinExpr(x_[static_cast<std::size_t>(i)]) + w_[static_cast<std::size_t>(i)] -
                             x_[static_cast<std::size_t>(j)] -
                             static_cast<double>(W_) *
                                 (1.0 - LinExpr(lr_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])),
                         Sense::kLessEqual, 0, tag("lrdef", i, j));
      }
  for (int i = 0; i < num_areas_; ++i)
    for (int j = i + 1; j < num_areas_; ++j) {
      // Rows may be shared only when the areas are x-disjoint. Soft FC slots
      // relax this with their violation binary (Sec. V).
      LinExpr relax;
      if (i >= num_regions_ && !slots_[static_cast<std::size_t>(i - num_regions_)].hard)
        relax += v_slotExprHelper(i);
      if (j >= num_regions_ && !slots_[static_cast<std::size_t>(j - num_regions_)].hard)
        relax += v_slotExprHelper(j);
      for (int r = 0; r < R_; ++r)
        model_.addConstr(LinExpr(a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(r)]) +
                             a_[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)] -
                             lr_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] -
                             lr_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] - relax,
                         Sense::kLessEqual, 1, tag("noov", i, j, r));
    }
}

// v variables are created lazily here because buildNonOverlap runs before
// buildRelocation; both reference the same per-slot binary.
lp::LinExpr MilpFormulation::v_slotExprHelper(int area) {
  const int slot = area - num_regions_;
  if (v_.empty()) v_.assign(slots_.size(), Var{});
  if (!v_[static_cast<std::size_t>(slot)].valid())
    v_[static_cast<std::size_t>(slot)] = model_.addBinary(tag("v", slot));
  return LinExpr(v_[static_cast<std::size_t>(slot)]);
}

void MilpFormulation::buildForbidden() {
  const auto& forbidden = part_.forbidden;
  q_.assign(static_cast<std::size_t>(num_areas_),
            std::vector<Var>(forbidden.size()));
  for (int i = 0; i < num_areas_; ++i) {
    const bool soft =
        i >= num_regions_ && !slots_[static_cast<std::size_t>(i - num_regions_)].hard;
    for (std::size_t f = 0; f < forbidden.size(); ++f) {
      const device::Rect& fa = forbidden[f];
      const Var q = model_.addBinary(tag("q", i, static_cast<int>(f)));
      q_[static_cast<std::size_t>(i)][f] = q;
      // Eq. 1: x + w <= xa1 + q·maxW  (q forced to 1 unless i is left of f).
      model_.addConstr(LinExpr(x_[static_cast<std::size_t>(i)]) + w_[static_cast<std::size_t>(i)] -
                           static_cast<double>(W_) * LinExpr(q),
                       Sense::kLessEqual, fa.x, tag("eq1", i, static_cast<int>(f)));
      // Eq. 2: for every row the area lies on:
      //   x >= xa2 + 1 − (2 − q − a_r [+ v])·maxW.
      for (int r = fa.y; r < fa.y2(); ++r) {
        LinExpr slack = 2.0 - LinExpr(q) - a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(r)];
        if (soft) slack += v_slotExprHelper(i);
        model_.addConstr(LinExpr(x_[static_cast<std::size_t>(i)]) - (fa.x + fa.w) +
                             static_cast<double>(W_) * slack,
                         Sense::kGreaterEqual, 0, tag("eq2", i, static_cast<int>(f), r));
      }
    }
  }
}

void MilpFormulation::buildRelocation() {
  if (slots_.empty()) return;
  if (v_.empty()) v_.assign(slots_.size(), Var{});
  const double big_eq9 = static_cast<double>(W_) * R_;  // maxW·|R| (Eq. 9/11)

  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const Slot& slot = slots_[s];
    const int c = num_regions_ + static_cast<int>(s);  // FC area index
    const int n = slot.region;
    const bool soft = !slot.hard;
    if (soft && !v_[s].valid()) v_[s] = model_.addBinary(tag("v", static_cast<int>(s)));
    const LinExpr vterm = soft ? LinExpr(v_[s]) : LinExpr(0.0);

    // Eq. 6: equal heights (hard in both modes; a violated soft area can
    // always mirror its region's geometry, as the paper argues).
    model_.addConstr(LinExpr(h_[static_cast<std::size_t>(c)]) - h_[static_cast<std::size_t>(n)],
                     Sense::kEqual, 0, tag("eq6", static_cast<int>(s)));
    // Eq. 7: equal number of covered portions.
    LinExpr kc, kn;
    for (int p = 0; p < P_; ++p) {
      kc += kExpr(c, p);
      kn += kExpr(n, p);
    }
    model_.addConstr(kc - kn, Sense::kEqual, 0, tag("eq7", static_cast<int>(s)));

    // Eqs. 8/10 and 9/11: iterate (pc, pn, i) with both indices in range.
    for (int pc = 0; pc < P_; ++pc)
      for (int pn = 0; pn < P_; ++pn)
        for (int i = -(P_ - 1); i <= P_ - 1; ++i) {
          if (pc + i < 0 || pc + i >= P_ || pn + i < 0 || pn + i >= P_) continue;
          const int tid_c = part_.portions[static_cast<std::size_t>(pc + i)].type;
          const int tid_n = part_.portions[static_cast<std::size_t>(pn + i)].type;
          const LinExpr act =
              3.0 - oExpr(c, pc) - oExpr(n, pn) - kExpr(n, pn + i) + vterm;

          if (opt_.type_match == TypeMatchEncoding::kTightened) {
            // Eq. 10 / Eq. 12: only rows with mismatching types are needed.
            if (tid_c != tid_n)
              model_.addConstr(oExpr(c, pc) + oExpr(n, pn) + kExpr(n, pn + i) - vterm,
                               Sense::kLessEqual, 2, tag("eq10", static_cast<int>(s), pc * P_ + pn, i + P_));
          } else {
            // Eq. 8: big-M form with the type ids as constants.
            const int n_types = std::max(1, part_.numTypes());
            model_.addConstr(static_cast<double>(n_types) * act,
                             Sense::kGreaterEqual, static_cast<double>(tid_c - tid_n),
                             tag("eq8a", static_cast<int>(s), pc * P_ + pn, i + P_));
            model_.addConstr(static_cast<double>(n_types) * act,
                             Sense::kGreaterEqual, static_cast<double>(tid_n - tid_c),
                             tag("eq8b", static_cast<int>(s), pc * P_ + pn, i + P_));
          }

          // Eq. 9 / Eq. 11: equal per-portion tile counts when active.
          const LinExpr diff = tilesInPortion(c, pc + i) - tilesInPortion(n, pn + i);
          model_.addConstr(diff - big_eq9 * act, Sense::kLessEqual, 0,
                           tag("eq9a", static_cast<int>(s), pc * P_ + pn, i + P_));
          model_.addConstr(diff + big_eq9 * act, Sense::kGreaterEqual, 0,
                           tag("eq9b", static_cast<int>(s), pc * P_ + pn, i + P_));
        }
  }
  rl_expr_ = LinExpr();
  for (std::size_t s = 0; s < slots_.size(); ++s)
    if (v_[s].valid()) rl_expr_ += slots_[s].weight * LinExpr(v_[s]);
}

void MilpFormulation::buildObjective() {
  const device::Device& dev = problem_.dev();

  // Wire length: bounding-box HPWL over region centers.
  wl_expr_ = LinExpr();
  for (std::size_t net_index = 0; net_index < problem_.nets().size(); ++net_index) {
    const model::Net& net = problem_.nets()[net_index];
    const Var bx1 = model_.addContinuous(0, W_, tag("bx1", static_cast<int>(net_index)));
    const Var bx2 = model_.addContinuous(0, W_, tag("bx2", static_cast<int>(net_index)));
    const Var by1 = model_.addContinuous(0, R_, tag("by1", static_cast<int>(net_index)));
    const Var by2 = model_.addContinuous(0, R_, tag("by2", static_cast<int>(net_index)));
    net_bbox_.push_back({bx1, bx2, by1, by2});
    for (const int n : net.regions) {
      const LinExpr cx = LinExpr(x_[static_cast<std::size_t>(n)]) +
                         0.5 * LinExpr(w_[static_cast<std::size_t>(n)]);
      const LinExpr cy = LinExpr(y_[static_cast<std::size_t>(n)]) +
                         0.5 * LinExpr(h_[static_cast<std::size_t>(n)]);
      model_.addConstr(LinExpr(bx2) - cx, Sense::kGreaterEqual, 0, tag("bb", static_cast<int>(net_index), n, 0));
      model_.addConstr(LinExpr(bx1) - cx, Sense::kLessEqual, 0, tag("bb", static_cast<int>(net_index), n, 1));
      model_.addConstr(LinExpr(by2) - cy, Sense::kGreaterEqual, 0, tag("bb", static_cast<int>(net_index), n, 2));
      model_.addConstr(LinExpr(by1) - cy, Sense::kLessEqual, 0, tag("bb", static_cast<int>(net_index), n, 3));
    }
    wl_expr_ += net.weight * (LinExpr(bx2) - bx1 + by2 - by1);
  }

  perimeter_expr_ = LinExpr();
  for (int n = 0; n < num_regions_; ++n)
    perimeter_expr_ += 2.0 * (LinExpr(w_[static_cast<std::size_t>(n)]) + h_[static_cast<std::size_t>(n)]);

  switch (opt_.objective) {
    case ObjectiveKind::kWastedFrames:
      model_.setObjective(waste_expr_, lp::ObjSense::kMinimize);
      break;
    case ObjectiveKind::kWireLength:
      model_.setObjective(wl_expr_, lp::ObjSense::kMinimize);
      break;
    case ObjectiveKind::kWeighted: {
      // Eq. 14 with the library-wide normalizers (see model::evaluate).
      double wl_max = 0;
      for (const model::Net& net : problem_.nets())
        wl_max += net.weight * (dev.width() + dev.height());
      const double p_max = std::max(1.0, 2.0 * num_regions_ * (dev.width() + dev.height()));
      const double r_max = std::max<double>(1.0, static_cast<double>(dev.totalFrames()));
      double rl_max = 0;  // Eq. 15
      for (const Slot& s : slots_) rl_max += s.weight;
      const model::ObjectiveWeights& q = problem_.weights();
      LinExpr obj;
      if (wl_max > 0) obj += (q.q1_wirelength / wl_max) * wl_expr_;
      obj += (q.q2_perimeter / p_max) * perimeter_expr_;
      obj += (q.q3_wasted / r_max) * waste_expr_;
      if (rl_max > 0) obj += (q.q4_relocation / rl_max) * rl_expr_;
      model_.setObjective(obj, lp::ObjSense::kMinimize);
      break;
    }
  }
}

void MilpFormulation::addWasteCap(long cap) {
  model_.addConstr(waste_expr_, Sense::kLessEqual, static_cast<double>(cap), "waste_cap");
}

void MilpFormulation::addSequencePairConstraints(const std::vector<int>& s1,
                                                 const std::vector<int>& s2) {
  RFP_CHECK(static_cast<int>(s1.size()) == num_areas_ && static_cast<int>(s2.size()) == num_areas_);
  std::vector<int> pos1(static_cast<std::size_t>(num_areas_)), pos2(static_cast<std::size_t>(num_areas_));
  for (int idx = 0; idx < num_areas_; ++idx) {
    pos1[static_cast<std::size_t>(s1[static_cast<std::size_t>(idx)])] = idx;
    pos2[static_cast<std::size_t>(s2[static_cast<std::size_t>(idx)])] = idx;
  }
  for (int i = 0; i < num_areas_; ++i)
    for (int j = 0; j < num_areas_; ++j) {
      if (i == j) continue;
      const bool before1 = pos1[static_cast<std::size_t>(i)] < pos1[static_cast<std::size_t>(j)];
      const bool before2 = pos2[static_cast<std::size_t>(i)] < pos2[static_cast<std::size_t>(j)];
      if (before1 && before2) {
        // i left of j.
        model_.addConstr(LinExpr(x_[static_cast<std::size_t>(i)]) + w_[static_cast<std::size_t>(i)] -
                             x_[static_cast<std::size_t>(j)],
                         Sense::kLessEqual, 0, tag("sp_left", i, j));
      } else if (before1 && !before2) {
        // i above j: y_i + h_i <= y_j (rows are numbered top to bottom).
        model_.addConstr(LinExpr(y_[static_cast<std::size_t>(i)]) + h_[static_cast<std::size_t>(i)] -
                             y_[static_cast<std::size_t>(j)],
                         Sense::kLessEqual, 0, tag("sp_above", i, j));
      }
    }
}

model::Floorplan MilpFormulation::extract(const std::vector<double>& sol) const {
  const auto value = [&](Var v) { return sol[static_cast<std::size_t>(v.index)]; };
  const auto rectOf = [&](int i) {
    device::Rect r;
    r.x = static_cast<int>(std::lround(value(x_[static_cast<std::size_t>(i)])));
    r.w = static_cast<int>(std::lround(value(w_[static_cast<std::size_t>(i)])));
    int y0 = -1, h = 0;
    for (int row = 0; row < R_; ++row)
      if (value(a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(row)]) > 0.5) {
        if (y0 < 0) y0 = row;
        ++h;
      }
    r.y = std::max(0, y0);
    r.h = std::max(1, h);
    return r;
  };

  model::Floorplan fp;
  fp.regions.reserve(static_cast<std::size_t>(num_regions_));
  for (int n = 0; n < num_regions_; ++n) fp.regions.push_back(rectOf(n));
  fp.fc_areas = model::expandFcRequests(problem_);
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const bool violated = v_[s].valid() && value(v_[s]) > 0.5;
    fp.fc_areas[s].placed = !violated;
    if (!violated) fp.fc_areas[s].rect = rectOf(num_regions_ + static_cast<int>(s));
  }
  return fp;
}

std::vector<double> MilpFormulation::encode(const model::Floorplan& fp) const {
  RFP_CHECK(static_cast<int>(fp.regions.size()) == num_regions_);
  RFP_CHECK(fp.fc_areas.size() == slots_.size());
  std::vector<double> sol(static_cast<std::size_t>(model_.numVars()), 0.0);
  const auto set = [&](Var v, double val) { sol[static_cast<std::size_t>(v.index)] = val; };

  // Resolve every area to a rectangle; violated soft slots mirror their
  // region (always consistent with the hard Eqs. 4–8, see Sec. V).
  std::vector<device::Rect> rects(static_cast<std::size_t>(num_areas_));
  std::vector<bool> violated(static_cast<std::size_t>(num_areas_), false);
  for (int n = 0; n < num_regions_; ++n) rects[static_cast<std::size_t>(n)] = fp.regions[static_cast<std::size_t>(n)];
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const int c = num_regions_ + static_cast<int>(s);
    if (fp.fc_areas[s].placed) {
      rects[static_cast<std::size_t>(c)] = fp.fc_areas[s].rect;
    } else {
      rects[static_cast<std::size_t>(c)] = rects[static_cast<std::size_t>(slots_[s].region)];
      violated[static_cast<std::size_t>(c)] = true;
      RFP_CHECK_MSG(!slots_[s].hard, "cannot encode an unplaced hard FC area");
    }
  }

  for (int i = 0; i < num_areas_; ++i) {
    const device::Rect& r = rects[static_cast<std::size_t>(i)];
    set(x_[static_cast<std::size_t>(i)], r.x);
    set(w_[static_cast<std::size_t>(i)], r.w);
    set(y_[static_cast<std::size_t>(i)], r.y);
    set(h_[static_cast<std::size_t>(i)], r.h);
    for (int row = 0; row < R_; ++row)
      set(a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(row)],
          (row >= r.y && row < r.y2()) ? 1.0 : 0.0);
    for (int p = 0; p < P_; ++p) {
      const partition::Portion& portion = part_.portions[static_cast<std::size_t>(p)];
      set(g_[static_cast<std::size_t>(i)][static_cast<std::size_t>(p)], r.x >= portion.x ? 1 : 0);
      set(e_[static_cast<std::size_t>(i)][static_cast<std::size_t>(p)],
          r.x + r.w - 1 >= portion.x ? 1 : 0);
      const int overlap = std::max(
          0, std::min(r.x2(), portion.x2()) - std::max(r.x, portion.x));
      set(cw_[static_cast<std::size_t>(i)][static_cast<std::size_t>(p)], overlap);
      for (int row = 0; row < R_; ++row)
        set(l_[static_cast<std::size_t>(i)][static_cast<std::size_t>(p)][static_cast<std::size_t>(row)],
            (row >= r.y && row < r.y2()) ? overlap : 0);
      if (opt_.offset == OffsetEncoding::kPaper) {
        const bool first = overlap > 0 && (r.x >= portion.x);
        set(o_[static_cast<std::size_t>(i)][static_cast<std::size_t>(p)], first ? 1 : 0);
      }
    }
    // rise variables: named rise_i_r right after a_i_r; recover via tag
    // lookup is avoided — rise vars were created in order, but we do not
    // keep handles. Instead locate by name through the model.
  }

  // Variables without stored handles (rise) and derived binaries (lr, q) are
  // filled by name-independent recomputation below.
  for (int i = 0; i < num_areas_; ++i)
    for (int j = 0; j < num_areas_; ++j) {
      if (i == j) continue;
      const Var lr = lr_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      const device::Rect& ri = rects[static_cast<std::size_t>(i)];
      const device::Rect& rj = rects[static_cast<std::size_t>(j)];
      const bool ignore = violated[static_cast<std::size_t>(i)] || violated[static_cast<std::size_t>(j)];
      set(lr, (!ignore && ri.x2() <= rj.x) ? 1.0 : 0.0);
    }
  for (int i = 0; i < num_areas_; ++i)
    for (std::size_t f = 0; f < part_.forbidden.size(); ++f) {
      const device::Rect& fa = part_.forbidden[f];
      const device::Rect& r = rects[static_cast<std::size_t>(i)];
      set(q_[static_cast<std::size_t>(i)][f], (r.x2() <= fa.x) ? 0.0 : 1.0);
    }
  for (std::size_t s = 0; s < slots_.size(); ++s)
    if (v_[s].valid())
      set(v_[s], violated[static_cast<std::size_t>(num_regions_ + static_cast<int>(s))] ? 1.0 : 0.0);

  // rise: recompute by scanning model variables by name prefix (cheap, done
  // once per encode) — rise_{i,r} = max(0, a_r - a_{r-1}).
  for (int var_index = 0; var_index < model_.numVars(); ++var_index) {
    const lp::VarInfo& info = model_.var(var_index);
    if (info.name.rfind("rise_", 0) != 0) continue;
    int i = 0, r = 0;
    if (std::sscanf(info.name.c_str(), "rise_%d_%d", &i, &r) != 2) continue;
    const device::Rect& rect = rects[static_cast<std::size_t>(i)];
    const bool cur = r >= rect.y && r < rect.y2();
    const bool prev = r > 0 && (r - 1) >= rect.y && (r - 1) < rect.y2();
    sol[static_cast<std::size_t>(var_index)] = (cur && !prev) ? 1.0 : 0.0;
  }

  // Net bounding boxes.
  for (std::size_t net_index = 0; net_index < problem_.nets().size(); ++net_index) {
    const model::Net& net = problem_.nets()[net_index];
    double min_x = 1e30, max_x = -1e30, min_y = 1e30, max_y = -1e30;
    for (const int n : net.regions) {
      const device::Rect& r = rects[static_cast<std::size_t>(n)];
      min_x = std::min(min_x, r.centerX());
      max_x = std::max(max_x, r.centerX());
      min_y = std::min(min_y, r.centerY());
      max_y = std::max(max_y, r.centerY());
    }
    set(net_bbox_[net_index][0], min_x);
    set(net_bbox_[net_index][1], max_x);
    set(net_bbox_[net_index][2], min_y);
    set(net_bbox_[net_index][3], max_y);
  }
  return sol;
}

}  // namespace rfp::fp
