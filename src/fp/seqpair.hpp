// Sequence-pair extraction from a placed floorplan (the HO flow, Sec. II-A).
//
// HO takes a first feasible solution, extracts its sequence-pair
// representation and adds it as a constraint so the MILP only explores
// placements consistent with that relative order — "the sequence-pair is
// naturally extended to consider also the free-compatible areas, so that
// the non-overlapping constraints are guaranteed for all the areas".
//
// Encoding convention: area i precedes j in both sequences ⇔ i is left of
// j; i precedes j in s1 but follows in s2 ⇔ i is above j.
#pragma once

#include <vector>

#include "device/geometry.hpp"

namespace rfp::fp {

struct SequencePair {
  std::vector<int> s1;
  std::vector<int> s2;
};

/// Extracts a sequence pair consistent with the given non-overlapping
/// rectangles. For every pair at least one of left/right/above/below holds;
/// ties are resolved preferring the horizontal relation (so the x-order is
/// preserved exactly).
[[nodiscard]] SequencePair extractSequencePair(const std::vector<device::Rect>& rects);

/// True when `rects` is consistent with `sp` under the encoding above
/// (used by property tests: extract → verify must always hold).
[[nodiscard]] bool isConsistent(const SequencePair& sp, const std::vector<device::Rect>& rects);

}  // namespace rfp::fp
