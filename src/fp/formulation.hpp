// MILP formulation of the relocation-aware floorplanning problem.
//
// This is the paper's core contribution, built on the FCCM'14 base model
// ([10]) restricted to columnar-partitioned devices (Sec. III-A):
//
//  base model      x_n, w_n (integer), row-occupancy binaries a_{n,r},
//                  height h_n = Σ_r a_{n,r} (real, Sec. III), row-contiguity,
//                  per-portion intersection widths and the paper's l_{n,p,r}
//                  intersection variables, resource coverage, pairwise
//                  non-overlap, forbidden areas (Eqs. 1–2);
//  relocation as   free-compatible areas as pseudo-regions (FC ⊂ N, Sec. IV-A)
//  a constraint    with offset variables o_{n,p} (Eqs. 4–5), equal heights
//                  (Eq. 6), equal portion counts (Eq. 7), type matching in
//                  the tightened form (Eq. 10; the untightened Eq. 8 is
//                  available for the equivalence ablation), and equal
//                  per-portion tile counts (Eq. 9);
//  relocation as   violation binaries v_c turning Eq. 9/10 and the
//  a metrics       non-overlap rows into soft constraints (Eqs. 11–12) and
//                  the RLcost objective term (Eq. 13, Eq. 14).
//
// Offset-variable encodings:
//  * kPaper — o_{n,p} are real variables constrained by Eqs. 4–5, exactly as
//    published (their integrality is implied, see the paper's discussion);
//  * kChain — o and k are derived from two monotone binary chains
//    g_{n,p} = [x_n ≥ px1_p] and e_{n,p} = [x_n + w_n − 1 ≥ px1_p]; tighter
//    LP relaxation, used as the default. Tests assert both encodings agree.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "lp/model.hpp"
#include "model/floorplan.hpp"
#include "model/problem.hpp"
#include "partition/columnar.hpp"

namespace rfp::fp {

enum class OffsetEncoding { kChain, kPaper };
enum class TypeMatchEncoding { kTightened /*Eq. 10*/, kBigM /*Eq. 8*/ };

/// Which objective the model minimizes.
enum class ObjectiveKind {
  kWeighted,    ///< Eq. 14 (normalized weighted sum; soft FCs allowed)
  kWastedFrames,///< Rcost only (stage 1 of the Sec. VI lexicographic mode)
  kWireLength,  ///< WLcost only (stage 2; combine with addWasteCap)
};

struct FormulationOptions {
  OffsetEncoding offset = OffsetEncoding::kChain;
  TypeMatchEncoding type_match = TypeMatchEncoding::kTightened;
  ObjectiveKind objective = ObjectiveKind::kWeighted;
};

/// Builds and owns the lp::Model for one problem instance, and maps between
/// model variables and Floorplan structures.
class MilpFormulation {
 public:
  MilpFormulation(const model::FloorplanProblem& problem,
                  const partition::ColumnarPartition& part, FormulationOptions options = {});

  [[nodiscard]] const lp::Model& model() const noexcept { return model_; }
  [[nodiscard]] lp::Model& mutableModel() noexcept { return model_; }
  [[nodiscard]] int numAreas() const noexcept { return num_areas_; }

  /// Decodes a solver point into a floorplan (rounding integer variables).
  [[nodiscard]] model::Floorplan extract(const std::vector<double>& x) const;

  /// Encodes a concrete floorplan as a full variable assignment (every
  /// auxiliary variable included) — used for HO warm starts and for the
  /// model-consistency property tests.
  [[nodiscard]] std::vector<double> encode(const model::Floorplan& fp) const;

  /// Constrains total wasted frames to at most `cap` (lexicographic stage 2).
  void addWasteCap(long cap);

  /// Adds sequence-pair ordering constraints (the HO search-space reduction,
  /// Sec. II-A extended to free-compatible areas): for every area pair, the
  /// relative order implied by the pair replaces the non-overlap disjunction.
  /// `s1`/`s2` hold area indices (regions then FC slots).
  void addSequencePairConstraints(const std::vector<int>& s1, const std::vector<int>& s2);

  // ---- introspection for tests -------------------------------------------
  [[nodiscard]] lp::Var varX(int area) const { return x_.at(static_cast<std::size_t>(area)); }
  [[nodiscard]] lp::Var varW(int area) const { return w_.at(static_cast<std::size_t>(area)); }
  [[nodiscard]] lp::Var varH(int area) const { return h_.at(static_cast<std::size_t>(area)); }
  [[nodiscard]] lp::Var varV(int slot) const { return v_.at(static_cast<std::size_t>(slot)); }
  [[nodiscard]] bool hasSoftSlots() const noexcept;

 private:
  struct Slot {  // one requested FC area
    int region = -1;
    bool hard = true;
    double weight = 1.0;
  };

  void buildAreas();
  void buildPortionLinkage();
  void buildCoverageAndWaste();
  void buildNonOverlap();
  void buildForbidden();
  void buildRelocation();
  void buildObjective();

  [[nodiscard]] lp::LinExpr kExpr(int area, int p) const;  ///< intersection indicator
  [[nodiscard]] lp::LinExpr oExpr(int area, int p) const;  ///< first-portion offset
  /// Σ_r l_{area,p,r} — tiles of `area` in portion p.
  [[nodiscard]] lp::LinExpr tilesInPortion(int area, int p) const;
  /// Violation binary of a soft FC slot, created on first use (the slot is
  /// referenced by both the non-overlap and the relocation constraints).
  lp::LinExpr v_slotExprHelper(int area);

  const model::FloorplanProblem& problem_;
  const partition::ColumnarPartition& part_;
  FormulationOptions opt_;
  lp::Model model_;

  int num_regions_ = 0;
  int num_areas_ = 0;  ///< regions + FC slots
  int W_ = 0, R_ = 0, P_ = 0;
  std::vector<Slot> slots_;

  // Per-area variables (index: area).
  std::vector<lp::Var> x_, w_, y_, h_;
  std::vector<std::vector<lp::Var>> a_;     ///< [area][row]
  std::vector<std::vector<lp::Var>> g_, e_; ///< monotone chains [area][portion]
  std::vector<std::vector<lp::Var>> o_;     ///< kPaper offsets [area][portion]
  std::vector<std::vector<lp::Var>> cw_;    ///< intersection width [area][portion]
  std::vector<std::vector<std::vector<lp::Var>>> l_;  ///< [area][portion][row]
  std::vector<std::vector<lp::Var>> lr_;    ///< left-of binaries [area][area]
  std::vector<std::vector<lp::Var>> q_;     ///< Eq. 1 binaries [area][forbidden]
  std::vector<lp::Var> v_;                  ///< violation binaries per slot (soft)
  std::vector<std::array<lp::Var, 4>> net_bbox_;  ///< [net] = {bx1,bx2,by1,by2}
  lp::LinExpr waste_expr_;
  lp::LinExpr wl_expr_;
  lp::LinExpr perimeter_expr_;
  lp::LinExpr rl_expr_;
};

}  // namespace rfp::fp
