#include "fp/milp_floorplanner.hpp"

#include <algorithm>
#include <sstream>

#include "driver/incumbent.hpp"
#include "fp/seqpair.hpp"
#include "lp/lp_solver.hpp"
#include "lp/sparse/csc.hpp"
#include "partition/columnar.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace rfp::fp {

const char* toString(FpStatus s) noexcept {
  switch (s) {
    case FpStatus::kOptimal: return "optimal";
    case FpStatus::kFeasible: return "feasible";
    case FpStatus::kInfeasible: return "infeasible";
    case FpStatus::kNoSolution: return "no-solution";
  }
  return "?";
}

namespace {

FpStatus fromMip(milp::MipStatus s) {
  switch (s) {
    case milp::MipStatus::kOptimal: return FpStatus::kOptimal;
    case milp::MipStatus::kFeasible: return FpStatus::kFeasible;
    case milp::MipStatus::kInfeasible: return FpStatus::kInfeasible;
    default: return FpStatus::kNoSolution;
  }
}

}  // namespace

FpResult MilpFloorplanner::solve(const model::FloorplanProblem& problem) const {
  Stopwatch watch;
  Deadline deadline(options_.time_limit_seconds);
  const auto cancelled = [this] {
    return options_.milp.stop && options_.milp.stop->load(std::memory_order_relaxed);
  };
  FpResult result;
  std::ostringstream detail;
  const auto accumulateLpStats = [&result](const milp::MipResult& mip) {
    result.adopted += mip.external_adoptions;
    result.external_prunes += mip.cutoff_prunes;
    if (mip.lp_solves > 0) result.lp_engine = mip.lp_engine;
    result.lp_solves += mip.lp_solves;
    result.lp_iterations += mip.lp_iterations;
    result.lp_warm_hits += mip.lp_warm_hits;
    result.lp_refactorizations += mip.lp_refactorizations;
    result.lp_primal_pivots += mip.lp_primal_pivots;
    result.lp_dual_pivots += mip.lp_dual_pivots;
    result.lp_bound_flips += mip.lp_bound_flips;
    result.lp_ft_updates += mip.lp_ft_updates;
    result.lp_dual_reopts += mip.lp_dual_reopts;
    result.lp_ftran_sparse += mip.lp_ftran_sparse;
    result.lp_ftran_dense += mip.lp_ftran_dense;
    result.lp_btran_sparse += mip.lp_btran_sparse;
    result.lp_btran_dense += mip.lp_btran_dense;
    result.lp_dse_updates += mip.lp_dse_updates;
    result.steals += mip.steals;
    for (const milp::MipWorkerStats& w : mip.workers) {
      const auto i = static_cast<std::size_t>(w.id);
      if (result.workers.size() <= i) result.workers.resize(i + 1);
      milp::MipWorkerStats& acc = result.workers[i];
      acc.id = w.id;
      acc.nodes += w.nodes;
      acc.steals += w.steals;
      acc.stolen_nodes += w.stolen_nodes;
      acc.lp_solves += w.lp_solves;
      acc.lp_warm_hits += w.lp_warm_hits;
      acc.idle_seconds += w.idle_seconds;
    }
  };

  const auto part = partition::columnarPartition(problem.dev());
  RFP_CHECK_MSG(part.has_value(),
                "device '" << problem.dev().name() << "' is not columnar-partitionable");

  // First feasible solution from the constructive heuristic. HO requires it
  // (the sequence pair is extracted from it, Sec. II-A); O merely uses it as
  // a warm-start incumbent, which prunes the branch & bound early without
  // restricting the explored space — optimality claims are unaffected.
  std::optional<model::Floorplan> warm;
  std::optional<SequencePair> sp;
  HeuristicOptions hopt = options_.heuristic;
  if (!hopt.stop) hopt.stop = options_.milp.stop;  // one flag cancels all stages
  hopt.incumbent = options_.incumbent;  // the construction is a publishable incumbent
  if (options_.time_limit_seconds > 0)
    hopt.time_limit_seconds = hopt.time_limit_seconds > 0
                                  ? std::min(hopt.time_limit_seconds, options_.time_limit_seconds)
                                  : options_.time_limit_seconds;
  {
    telemetry::Span heur_span(options_.milp.telemetry, "milp", "heuristic_stage");
    warm = constructiveFloorplan(problem, hopt);
    if (heur_span.active()) heur_span.note("found", warm ? "yes" : "no");
  }
  // O only: a floorplan already in the exchange channel (a faster engine's,
  // or a staged portfolio's first slice) that beats the construction makes
  // the better warm start — the paper's heuristic-feeds-exact-MILP
  // combination. HO keeps its own construction: swapping in the channel
  // plan would also swap the sequence pair, silently changing HO's
  // restricted search space (and possibly for the worse, breaking the
  // portfolio's exchange-never-worse guarantee); the channel plan still
  // reaches HO through the feasibility-gated mid-run poll below.
  if (options_.incumbent && options_.algorithm == Algorithm::kO) {
    model::Floorplan chan_plan;
    model::FloorplanCosts chan_costs;
    if (options_.incumbent->best(&chan_plan, &chan_costs) &&
        (!warm || model::strictlyBetter(problem, chan_costs, model::evaluate(problem, *warm))))
      warm = std::move(chan_plan);
  }
  if (options_.algorithm == Algorithm::kHO) {
    if (!warm) {
      result.status = FpStatus::kNoSolution;
      result.detail = "HO: constructive heuristic found no feasible first solution";
      result.seconds = watch.seconds();
      return result;
    }
    // Sequence pair over regions and *placed* FC areas; the extraction
    // requires disjoint rects, which model::check guaranteed.
    std::vector<device::Rect> rects = warm->regions;
    for (const model::FcArea& a : warm->fc_areas)
      rects.push_back(a.placed ? a.rect : warm->regions[static_cast<std::size_t>(a.region)]);
    // Unplaced (soft) areas mirror their region; drop them from the pair by
    // keeping them but their constraints are relaxed through v_c anyway.
    // The extended pair (Sec. II-A) covers regions and FC areas; it is only
    // well-defined when every FC is placed (unplaced soft areas mirror their
    // region and would overlap). Otherwise no pair constraints are added and
    // HO degenerates to O with a warm start.
    bool fc_all_placed = true;
    for (const model::FcArea& a : warm->fc_areas) fc_all_placed = fc_all_placed && a.placed;
    if (fc_all_placed) sp = extractSequencePair(rects);
    detail << "HO: heuristic waste="
           << model::evaluate(problem, *warm).wasted_frames << "; ";
  }

  const auto buildAndSolve = [&](ObjectiveKind objective, std::optional<long> waste_cap,
                                 std::optional<std::vector<double>> start) {
    FormulationOptions fopt = options_.formulation;
    fopt.objective = objective;
    MilpFormulation formulation(problem, *part, fopt);
    if (waste_cap) formulation.addWasteCap(*waste_cap);
    if (sp && static_cast<int>(sp->s1.size()) == formulation.numAreas())
      formulation.addSequencePairConstraints(sp->s1, sp->s2);

    // Admission gate: bill the memory of the LP engine that would actually
    // run. The dense tableau estimate ((m+1) x (n+2m) doubles) used to be
    // applied unconditionally, which declined every SDR2/SDR3-scale
    // formulation (~25 GiB dense); the sparse revised simplex is billed by
    // constraint-matrix nonzeros instead and sails through at ~0.1 GiB.
    // Allocating past the gate would eat the memory before any deadline or
    // stop flag is ever polled, so oversized formulations still decline.
    if (options_.max_lp_gib > 0) {
      const lp::Model& mdl = formulation.model();
      const lp::LpEngine engine = lp::LpSolver(options_.milp.lp).resolveEngine(mdl);
      const double est_gib = engine == lp::LpEngine::kSparse
                                 ? lp::LpSolver::sparseFootprintGib(mdl)
                                 : lp::LpSolver::denseTableauGib(mdl);
      if (est_gib > options_.max_lp_gib) {
        milp::MipResult declined;
        declined.status = milp::MipStatus::kNoSolution;
        detail << "declined: " << lp::toString(engine) << " LP ~" << est_gib
               << " GiB (vars=" << mdl.numVars() << " constrs=" << mdl.numConstrs()
               << " nnz=" << lp::sparse::countNonzeros(mdl)
               << ") exceeds max_lp_gib=" << options_.max_lp_gib << "; ";
        return std::make_pair(std::move(declined), std::move(formulation));
      }
    }

    std::optional<std::vector<double>> encoded;
    if (start) {
      encoded = std::move(start);
    } else if (warm) {
      encoded = formulation.encode(*warm);
    }
    milp::MilpSolver::Options mopt = options_.milp;
    if (options_.time_limit_seconds > 0) {
      const double remaining = std::max(0.01, deadline.remaining());
      mopt.time_limit_seconds =
          mopt.time_limit_seconds > 0 ? std::min(mopt.time_limit_seconds, remaining) : remaining;
    }
    if (options_.incumbent) {
      // Bridge the floorplan-level channel to the solver's encoded points.
      // The lambdas bind this stage's formulation; they are only invoked
      // inside solver.solve(), while `formulation` is alive. A snapshot that
      // violates this stage's extra rows (waste cap, sequence pair) is
      // rejected by the solver's feasibility gate, not here.
      driver::SharedIncumbent* chan = options_.incumbent;
      const char* source = options_.algorithm == Algorithm::kO ? "milp-o" : "milp-ho";
      mopt.incumbent_poll = [chan, &formulation,
                             seen = std::uint64_t{0}]() mutable -> std::optional<std::vector<double>> {
        model::Floorplan plan;
        if (!chan->snapshotNewer(&seen, &plan, nullptr)) return std::nullopt;
        return formulation.encode(plan);
      };
      mopt.incumbent_publish = [chan, &formulation, &problem, &result,
                                source](const std::vector<double>& x) {
        const model::Floorplan plan = formulation.extract(x);
        ++result.published;
        chan->publish(plan, model::evaluate(problem, plan), source);
      };
    }
    milp::MilpSolver solver(mopt);
    milp::MipResult mip = solver.solve(formulation.model(), std::move(encoded));
    return std::make_pair(std::move(mip), std::move(formulation));
  };

  if (!options_.lexicographic) {
    auto [mip, formulation] = buildAndSolve(ObjectiveKind::kWeighted, std::nullopt, std::nullopt);
    result.nodes = mip.nodes;
    accumulateLpStats(mip);
    result.status = fromMip(mip.status);
    detail << "weighted: " << milp::toString(mip.status) << " obj=" << mip.objective;
    if (mip.hasSolution()) {
      result.plan = formulation.extract(mip.x);
      result.costs = model::evaluate(problem, result.plan);
    }
  } else {
    // Stage 1: minimize wasted frames.
    auto [mip1, formulation1] =
        buildAndSolve(ObjectiveKind::kWastedFrames, std::nullopt, std::nullopt);
    result.nodes = mip1.nodes;
    accumulateLpStats(mip1);
    detail << "stage1(waste): " << milp::toString(mip1.status);
    if (!mip1.hasSolution()) {
      result.status = fromMip(mip1.status);
      result.detail = detail.str();
      result.seconds = watch.seconds();
      return result;
    }
    model::Floorplan stage1_plan = formulation1.extract(mip1.x);
    const long waste_cap =
        model::evaluate(problem, stage1_plan).wasted_frames;
    detail << " waste=" << waste_cap << "; ";

    if (deadline.expired() || cancelled()) {
      // Budget exhausted between stages: stage 1's plan is the best we have,
      // and without stage 2 the wire length is not proven optimal.
      detail << "stage2(wl): skipped (" << (cancelled() ? "cancelled" : "budget exhausted")
             << ")";
      result.plan = std::move(stage1_plan);
      result.costs = model::evaluate(problem, result.plan);
      result.status = FpStatus::kFeasible;
      result.detail = detail.str();
      result.seconds = watch.seconds();
      return result;
    }

    // Stage 2: minimize wire length among waste-optimal floorplans, warm-
    // started from stage 1's solution.
    auto [mip2, formulation2] = buildAndSolve(
        ObjectiveKind::kWireLength, waste_cap,
        std::optional<std::vector<double>>(formulation1.encode(stage1_plan)));
    result.nodes += mip2.nodes;
    accumulateLpStats(mip2);
    detail << "stage2(wl): " << milp::toString(mip2.status);
    if (mip2.hasSolution()) {
      result.plan = formulation2.extract(mip2.x);
      result.costs = model::evaluate(problem, result.plan);
      const bool both_optimal =
          mip1.status == milp::MipStatus::kOptimal && mip2.status == milp::MipStatus::kOptimal;
      result.status = both_optimal ? FpStatus::kOptimal : FpStatus::kFeasible;
    } else {
      // Stage 2 truncated before finding anything: fall back to stage 1.
      result.plan = std::move(stage1_plan);
      result.costs = model::evaluate(problem, result.plan);
      result.status = FpStatus::kFeasible;
    }
  }

  // HO explores a restricted space: optimality claims are relative to the
  // sequence pair, so report kFeasible unless the heuristic space was full.
  if (options_.algorithm == Algorithm::kHO && result.status == FpStatus::kOptimal)
    result.status = FpStatus::kFeasible;

  result.detail = detail.str();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace rfp::fp
