#include "reconfig/reconfig.hpp"

#include <algorithm>

#include "partition/compatibility.hpp"
#include "support/check.hpp"

namespace rfp::reconfig {

// ---- Icap -------------------------------------------------------------------

double Icap::loadMicros(int frames) const noexcept {
  const double bytes = static_cast<double>(frames) * bitstream::kFrameWords * 4.0;
  const double cycles = bytes / static_cast<double>(spec_.bytes_per_cycle);
  return cycles / spec_.clock_mhz + spec_.per_load_overhead_us;
}

double Icap::relocateMicros(int frames) const noexcept {
  return static_cast<double>(frames) * spec_.relocation_filter_us_per_frame;
}

// ---- BitstreamStore -----------------------------------------------------------

const char* toString(StorePolicy p) noexcept {
  switch (p) {
    case StorePolicy::kRelocationAware: return "relocation-aware";
    case StorePolicy::kPerLocation: return "per-location";
  }
  return "?";
}

void BitstreamStore::registerMode(int region, const ModuleMode& mode,
                                  const std::vector<device::Rect>& targets) {
  RFP_CHECK_MSG(!targets.empty(), "registerMode: at least the home target is required");
  for (const device::Rect& t : targets)
    RFP_CHECK_MSG(partition::areCompatible(*dev_, targets.front(), t),
                  "registerMode: target " << t.toString() << " is not compatible with home "
                                          << targets.front().toString());
  const Key key{region, mode.name};
  RFP_CHECK_MSG(store_.find(key) == store_.end(),
                "mode '" << mode.name << "' already registered for region " << region);

  std::vector<bitstream::PartialBitstream> copies;
  const bitstream::PartialBitstream home =
      bitstream::generateBitstream(*dev_, targets.front(), mode.design_seed);
  if (policy_ == StorePolicy::kRelocationAware) {
    copies.push_back(home);
  } else {
    copies.reserve(targets.size());
    for (const device::Rect& t : targets)
      copies.push_back(t == targets.front() ? home
                                            : bitstream::relocateBitstream(*dev_, home, t));
  }
  store_.emplace(key, std::move(copies));
  targets_.emplace(key, targets);
}

bitstream::PartialBitstream BitstreamStore::fetch(int region, const std::string& mode,
                                                  const device::Rect& target,
                                                  int* filter_frames_out) const {
  const Key key{region, mode};
  const auto it = store_.find(key);
  RFP_CHECK_MSG(it != store_.end(),
                "fetch: mode '" << mode << "' not registered for region " << region);
  if (filter_frames_out) *filter_frames_out = 0;

  if (policy_ == StorePolicy::kPerLocation) {
    const std::vector<device::Rect>& targets = targets_.at(key);
    for (std::size_t i = 0; i < targets.size(); ++i)
      if (targets[i] == target) return it->second[i];
    RFP_CHECK_MSG(false, "fetch: target " << target.toString()
                                          << " was not provisioned for mode '" << mode << "'");
  }
  const bitstream::PartialBitstream& home = it->second.front();
  if (home.area == target) return home;
  // Run the relocation filter: address rewrite + CRC recompute.
  if (filter_frames_out) *filter_frames_out = static_cast<int>(home.frames.size());
  return bitstream::relocateBitstream(*dev_, home, target);
}

long BitstreamStore::bitstreamCount() const noexcept {
  long n = 0;
  for (const auto& [key, copies] : store_) n += static_cast<long>(copies.size());
  return n;
}

std::size_t BitstreamStore::totalBytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& [key, copies] : store_)
    for (const bitstream::PartialBitstream& bs : copies)
      bytes += bs.frames.size() * (sizeof(std::uint32_t) * (1 + bitstream::kFrameWords));
  return bytes;
}

// ---- ReconfigSimulator ----------------------------------------------------------

ReconfigSimulator::ReconfigSimulator(const model::FloorplanProblem& problem,
                                     const model::Floorplan& fp, StorePolicy policy,
                                     IcapSpec icap)
    : problem_(&problem), fp_(&fp), icap_(icap), store_(problem.dev(), policy) {
  const std::string err = model::check(problem, fp);
  RFP_CHECK_MSG(err.empty(), "ReconfigSimulator needs a valid floorplan: " << err);
  targets_.resize(static_cast<std::size_t>(problem.numRegions()));
  for (int n = 0; n < problem.numRegions(); ++n)
    targets_[static_cast<std::size_t>(n)].push_back(
        fp.regions[static_cast<std::size_t>(n)]);
  for (const model::FcArea& a : fp.fc_areas)
    if (a.placed) targets_[static_cast<std::size_t>(a.region)].push_back(a.rect);
}

void ReconfigSimulator::registerModes(int region, const std::vector<ModuleMode>& modes) {
  RFP_CHECK_MSG(region >= 0 && region < problem_->numRegions(), "unknown region " << region);
  for (const ModuleMode& m : modes)
    store_.registerMode(region, m, targets_[static_cast<std::size_t>(region)]);
}

int ReconfigSimulator::targetCount(int region) const {
  RFP_CHECK_MSG(region >= 0 && region < problem_->numRegions(), "unknown region " << region);
  return static_cast<int>(targets_[static_cast<std::size_t>(region)].size());
}

device::Rect ReconfigSimulator::target(int region, int index) const {
  RFP_CHECK_MSG(index >= 0 && index < targetCount(region),
                "region " << region << " has no target " << index);
  return targets_[static_cast<std::size_t>(region)][static_cast<std::size_t>(index)];
}

SimulationResult ReconfigSimulator::run(std::vector<SwitchRequest> schedule) const {
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const SwitchRequest& a, const SwitchRequest& b) { return a.at_us < b.at_us; });

  SimulationResult result;
  result.records.reserve(schedule.size());
  double icap_free_at = 0.0;

  for (const SwitchRequest& req : schedule) {
    const device::Rect tgt = target(req.region, req.target_index);
    int filter_frames = 0;
    const bitstream::PartialBitstream bs =
        store_.fetch(req.region, req.mode, tgt, &filter_frames);
    RFP_CHECK_MSG(bitstream::verifyBitstream(problem_->dev(), bs).empty(),
                  "fetched bitstream failed verification");

    SwitchRecord rec;
    rec.request = req;
    rec.frames = static_cast<int>(bs.frames.size());
    rec.relocated = filter_frames > 0;
    rec.filter_us = icap_.relocateMicros(filter_frames);
    rec.start_us = std::max(req.at_us, icap_free_at);
    rec.ready_us = rec.start_us + rec.filter_us + icap_.loadMicros(rec.frames);
    icap_free_at = rec.ready_us;

    result.stats.switches += 1;
    result.stats.relocations += rec.relocated ? 1 : 0;
    result.stats.total_icap_us += icap_.loadMicros(rec.frames);
    result.stats.total_filter_us += rec.filter_us;
    result.stats.makespan_us = std::max(result.stats.makespan_us, rec.ready_us);
    result.stats.max_queue_wait_us =
        std::max(result.stats.max_queue_wait_us, rec.start_us - req.at_us);
    result.records.push_back(std::move(rec));
  }
  return result;
}

}  // namespace rfp::reconfig
