// Runtime partial-reconfiguration simulator.
//
// The floorplanner's output — regions plus reserved free-compatible areas —
// is consumed at *run time*: a task occupying a region can be migrated into
// one of its free-compatible areas by relocating its partial bitstream
// (Sec. I: "deliver rapid changes to a design at run time, while reducing
// design effort by supporting design re-use at compile time"). This module
// models that runtime: a configuration-port (ICAP) timing model, a
// bitstream store that quantifies the design-reuse benefit (one bitstream
// per mode with relocation vs one per mode *and location* without), and a
// simulator that executes mode-switch/migration schedules against a
// floorplan and reports latency statistics.
//
// The timing model follows the Virtex-5 configuration numbers used across
// the relocation literature ([2]-[5]): a 32-bit ICAP at 100 MHz, 41-word
// frames, plus a fixed per-load overhead for sync/desync and the CRC check.
// Absolute microseconds are therefore indicative; the comparisons (with vs
// without relocation, more vs fewer FC areas) are the point.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "device/device.hpp"
#include "model/floorplan.hpp"
#include "model/problem.hpp"

namespace rfp::reconfig {

// ---- ICAP timing model ------------------------------------------------------

struct IcapSpec {
  double clock_mhz = 100.0;             ///< configuration clock
  int bytes_per_cycle = 4;              ///< 32-bit ICAP word per cycle
  double per_load_overhead_us = 5.0;    ///< sync, desync, CRC check
  double relocation_filter_us_per_frame = 0.02;  ///< software BiRF-style
                                                 ///< address rewrite per frame
};

/// Deterministic ICAP timing: how long a partial bitstream takes to load,
/// and how long the software relocation filter takes to rewrite it.
class Icap {
 public:
  Icap() = default;
  explicit Icap(IcapSpec spec) : spec_(spec) {}

  /// Microseconds to stream `frames` configuration frames through the port.
  [[nodiscard]] double loadMicros(int frames) const noexcept;
  /// Microseconds for the relocation filter to rewrite `frames` addresses
  /// and recompute the CRC (software filter, [4][5]).
  [[nodiscard]] double relocateMicros(int frames) const noexcept;

  [[nodiscard]] const IcapSpec& spec() const noexcept { return spec_; }

 private:
  IcapSpec spec_;
};

// ---- bitstream store ----------------------------------------------------------

/// How the store provisions configuration data for multiple target areas.
enum class StorePolicy {
  kRelocationAware,  ///< one bitstream per mode; relocation filter at run time
  kPerLocation,      ///< one bitstream per (mode, target area); no filter
};

[[nodiscard]] const char* toString(StorePolicy p) noexcept;

/// A module mode (one of the mutually exclusive implementations of a
/// region's module, Sec. VI).
struct ModuleMode {
  std::string name;
  std::uint64_t design_seed = 0;  ///< distinguishes the configuration data
};

/// Repository of partial bitstreams for every (region, mode), provisioned
/// for a fixed set of target areas per region (the region's home rectangle
/// plus its free-compatible areas). Quantifies the design-reuse benefit of
/// relocation: under kPerLocation the same mode is duplicated per target.
class BitstreamStore {
 public:
  BitstreamStore(const device::Device& dev, StorePolicy policy)
      : dev_(&dev), policy_(policy) {}

  /// Registers `mode` for region `n`, provisioned for `targets` (index 0 is
  /// the home area; all targets must be mutually compatible rectangles).
  void registerMode(int region, const ModuleMode& mode,
                    const std::vector<device::Rect>& targets);

  /// Fetches the bitstream for (region, mode) retargeted to `target`,
  /// relocating on the fly under kRelocationAware. `filter_frames_out`, when
  /// non-null, receives the number of frames the filter rewrote (0 when the
  /// stored bitstream already targets `target`).
  [[nodiscard]] bitstream::PartialBitstream fetch(int region, const std::string& mode,
                                                  const device::Rect& target,
                                                  int* filter_frames_out = nullptr) const;

  [[nodiscard]] StorePolicy policy() const noexcept { return policy_; }
  /// Number of stored bitstreams (the design-reuse metric).
  [[nodiscard]] long bitstreamCount() const noexcept;
  /// Total storage footprint in bytes (addresses + payloads).
  [[nodiscard]] std::size_t totalBytes() const noexcept;

 private:
  struct Key {
    int region;
    std::string mode;
    auto operator<=>(const Key&) const = default;
  };
  const device::Device* dev_;
  StorePolicy policy_;
  /// Per (region, mode): bitstreams in target order (kRelocationAware keeps
  /// only the home copy).
  std::map<Key, std::vector<bitstream::PartialBitstream>> store_;
  std::map<Key, std::vector<device::Rect>> targets_;
};

// ---- simulator ----------------------------------------------------------------

/// One scheduled request: at `at_us`, (re)configure region `region` with
/// `mode` on target area `target_index` (0 = home rectangle, 1.. = the
/// region's free-compatible areas in floorplan order).
struct SwitchRequest {
  double at_us = 0.0;
  int region = -1;
  std::string mode;
  int target_index = 0;
};

/// Outcome of one request.
struct SwitchRecord {
  SwitchRequest request;
  double start_us = 0.0;   ///< when the ICAP began serving it
  double ready_us = 0.0;   ///< when the area became active
  double filter_us = 0.0;  ///< relocation-filter share of the latency
  int frames = 0;          ///< configuration frames streamed
  bool relocated = false;  ///< target differed from the stored bitstream
};

struct SimulationStats {
  long switches = 0;
  long relocations = 0;
  double total_icap_us = 0.0;
  double total_filter_us = 0.0;
  double makespan_us = 0.0;        ///< last ready time
  double max_queue_wait_us = 0.0;  ///< worst start − arrival gap
};

struct SimulationResult {
  std::vector<SwitchRecord> records;
  SimulationStats stats;
};

/// Executes mode-switch schedules against a floorplan. The single ICAP
/// serializes configuration loads (as on the real devices); requests are
/// served in arrival order. Target areas are the region's home rectangle
/// and its placed free-compatible areas.
class ReconfigSimulator {
 public:
  /// `fp` must be a checked floorplan for `problem` (model::check == "").
  /// Every (region, mode) pair used by a schedule must be registered first.
  ReconfigSimulator(const model::FloorplanProblem& problem, const model::Floorplan& fp,
                    StorePolicy policy, IcapSpec icap = {});

  /// Registers the modes of region `n` in the store, provisioned for the
  /// region's home area plus all its placed FC areas.
  void registerModes(int region, const std::vector<ModuleMode>& modes);

  /// Number of selectable targets for `region` (1 + placed FC areas).
  [[nodiscard]] int targetCount(int region) const;
  /// The rectangle of target `index` for `region`.
  [[nodiscard]] device::Rect target(int region, int index) const;

  /// Runs `schedule` (sorted by arrival time internally). Throws
  /// rfp::CheckError on unknown regions/modes/targets.
  [[nodiscard]] SimulationResult run(std::vector<SwitchRequest> schedule) const;

  [[nodiscard]] const BitstreamStore& store() const noexcept { return store_; }
  [[nodiscard]] const Icap& icap() const noexcept { return icap_; }

 private:
  const model::FloorplanProblem* problem_;
  const model::Floorplan* fp_;
  Icap icap_;
  BitstreamStore store_;
  std::vector<std::vector<device::Rect>> targets_;  ///< per region
};

}  // namespace rfp::reconfig
