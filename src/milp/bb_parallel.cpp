// Work-stealing parallel branch & bound (MilpSolver::Options::threads > 1).
//
// Architecture (SNIPPETS.md Snippet 2 is the blueprint, adapted to this
// repo's warm-start substrate):
//  * every worker owns a finely-locked deque of open nodes and expands from
//    its back — LIFO pops reproduce the sequential engine's depth-first
//    plunge, so each worker dives a subtree with hot parent bases;
//  * a worker whose deque drains steals the front *half* of the first
//    non-empty victim deque — front entries are the shallowest nodes, which
//    root the largest unexplored subtrees, so one steal buys a long stretch
//    of independent work;
//  * nodes carry their bound-change chain as an immutable shared_ptr spine
//    (a node arena would need a global lock; the chain is lock-free to read
//    and O(1) per node) plus the exported parent Basis, so a thief
//    warm-starts its first stolen node through adopt-and-refactorize
//    instead of cold-solving;
//  * every worker owns a private DualReoptimizer — its live factors,
//    reduced costs and give-up breaker are single-owner mutable state (see
//    dual_simplex.hpp), which also confines a hyper-degenerate subtree's
//    breaker trips to the worker diving it;
//  * the incumbent is the one shared cutoff: improvements publish an atomic
//    objective that every worker prunes against at node boundaries
//    (externally, SharedIncumbent plugs in through the poll/publish
//    callbacks — both serialized here because the fp-layer wrappers carry
//    unsynchronized mutable captures);
//  * termination: an atomic count of open nodes (root = 1, +2 per branch,
//    -1 per finished node). Idle workers spin-steal until it reaches zero —
//    deques can all be momentarily empty while a peer is still expanding a
//    node that will repopulate them, so "all deques empty" alone is not
//    termination.
//
// Deterministic replay (Options::deterministic): the same logical workers
// run lock-step on one OS thread in a fixed round-robin schedule with a
// fixed steal-victim order. Node expansion order and the steal schedule are
// then functions of the instance alone; both feed MipResult::replay_hash,
// which tests compare across runs.
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "milp/bb_detail.hpp"
#include "support/log.hpp"
#include "support/sync.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace rfp::milp::detail {
namespace {

/// One link of a node's immutable bound-change chain. Nodes share their
/// ancestors' links across workers; links free themselves when the last
/// open descendant is pruned or expanded.
struct PathNode {
  std::shared_ptr<const PathNode> parent;
  BoundChange change;
};

/// An open node: the bound chain that defines it, the dual bound and branch
/// metadata of the parent LP, and the parent's exported optimal basis.
struct PNode {
  std::shared_ptr<const PathNode> path;  ///< null: root
  double lp_bound = -lp::kInfinity;
  int depth = 0;
  double branch_frac = 0.0;
  std::shared_ptr<const lp::sparse::Basis> start_basis;
};

/// FNV-1a accumulator for the deterministic replay digest.
struct ReplayHash {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  void mixDouble(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
};

/// Finely-locked work deque. The owner pushes and pops at the back (the
/// depth-first dive); thieves take half from the front (the shallowest,
/// biggest subtrees). One mutex per deque: owner and thief only collide on
/// this worker's queue, never globally.
class NodeDeque {
 public:
  void pushBack(PNode n) {
    const sync::MutexLock lock(mu_);
    q_.push_back(std::move(n));
  }

  bool popBack(PNode& out) {
    const sync::MutexLock lock(mu_);
    if (q_.empty()) return false;
    out = std::move(q_.back());
    q_.pop_back();
    return true;
  }

  /// Steal-half policy: moves the front ceil(size/2) nodes into `out`.
  int stealHalf(std::vector<PNode>& out) {
    const sync::MutexLock lock(mu_);
    const int take = static_cast<int>((q_.size() + 1) / 2);
    for (int i = 0; i < take; ++i) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    return take;
  }

  /// Weakest dual bound among the leftover nodes (+inf when empty) — the
  /// truncated-run bound, mirroring the sequential engine's heap top.
  double minBound() const {
    const sync::MutexLock lock(mu_);
    double b = lp::kInfinity;
    for (const PNode& n : q_) b = std::min(b, n.lp_bound);
    return b;
  }

  bool empty() const {
    const sync::MutexLock lock(mu_);
    return q_.empty();
  }

 private:
  mutable sync::Mutex mu_;
  std::deque<PNode> q_ RFP_GUARDED_BY(mu_);
};

class PWorker;

/// State shared by all workers of one parallel tree.
struct SharedTree {
  const lp::Model& model;
  const MilpSolver::Options& opt;
  bool minimize = true;
  std::vector<double> base_lb, base_ub;
  std::shared_ptr<const lp::sparse::CscMatrix> csc;  ///< sparse engine only
  lp::LpEngine engine = lp::LpEngine::kDense;
  Deadline deadline;

  std::vector<std::unique_ptr<NodeDeque>> deques;
  /// Open-node count: nodes sitting in deques plus nodes being expanded.
  /// Zero means the tree is exhausted (the termination signal).
  std::atomic<long> outstanding{0};
  std::atomic<long> total_nodes{0};
  /// Abnormal-stop latch: deadline, node limit, external stop, unbounded
  /// root. Workers observe it at node boundaries and drain out.
  std::atomic<bool> halt{false};
  std::atomic<bool> truncated{false};
  std::atomic<bool> dropped{false};  ///< a node LP hit a limit mid-solve
  std::atomic<bool> root_unbounded{false};

  // The incumbent. `cutoff`/`has_incumbent` are the hot read path (every
  // node prunes against them); the vectors change under `inc_mu`.
  sync::Mutex inc_mu;
  std::vector<double> incumbent RFP_GUARDED_BY(inc_mu);
  double incumbent_obj RFP_GUARDED_BY(inc_mu) = lp::kInfinity;
  std::atomic<double> cutoff{lp::kInfinity};
  std::atomic<bool> has_incumbent{false};
  std::atomic<bool> incumbent_external{false};

  /// Serializes the incumbent_poll/incumbent_publish callbacks: the fp
  /// layer's wrappers carry unsynchronized mutable state (version cursors,
  /// telemetry counters), so concurrent invocation would race. Ordering:
  /// offerIncumbent releases inc_mu before taking callback_mu, so inc_mu is
  /// never held under it (callback_mu forwards into SharedIncumbent, which
  /// sits below in the repo-wide hierarchy — see CONTRIBUTING.md).
  sync::Mutex callback_mu;
  std::atomic<long> external_adoptions{0};
  std::atomic<long> cutoff_prunes{0};

  // Deterministic mode runs single-threaded, so the digest needs no lock.
  bool deterministic = false;
  ReplayHash replay;

  SharedTree(const lp::Model& m, const MilpSolver::Options& o)
      : model(m), opt(o), deadline(o.time_limit_seconds) {}

  [[nodiscard]] double signedObj(double user) const { return minimize ? user : -user; }
  [[nodiscard]] double userObj(double internal) const { return minimize ? internal : -internal; }
  [[nodiscard]] bool externallyStopped() const {
    return opt.stop && opt.stop->load(std::memory_order_relaxed);
  }
  [[nodiscard]] double absGapSlack() const {
    if (!has_incumbent.load(std::memory_order_acquire)) return 0.0;
    return opt.gap_tol * std::max(1.0, std::abs(cutoff.load(std::memory_order_relaxed)));
  }
  /// Cutoff test against the shared incumbent (counts external-cutoff
  /// prunes like the sequential engine).
  [[nodiscard]] bool prunedByCutoff(double bound) {
    if (!has_incumbent.load(std::memory_order_acquire)) return false;
    if (bound < cutoff.load(std::memory_order_relaxed) - absGapSlack()) return false;
    if (incumbent_external.load(std::memory_order_relaxed))
      cutoff_prunes.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Installs `x` as the incumbent if it improves. Self-found improvements
  /// are forwarded to incumbent_publish (outside inc_mu — the callback can
  /// be slow, and nesting inc_mu under callback_mu elsewhere would
  /// deadlock).
  bool offerIncumbent(std::vector<double> x, double obj, bool external) {
    sync::UniqueLock lock(inc_mu);
    if (has_incumbent.load(std::memory_order_relaxed) && obj >= incumbent_obj - 1e-12)
      return false;
    incumbent = std::move(x);
    incumbent_obj = obj;
    incumbent_external.store(external, std::memory_order_relaxed);
    cutoff.store(obj, std::memory_order_relaxed);
    has_incumbent.store(true, std::memory_order_release);
    std::vector<double> snapshot;
    if (!external && opt.incumbent_publish) snapshot = incumbent;
    lock.unlock();
    if (!snapshot.empty()) {
      const sync::MutexLock cb(callback_mu);
      opt.incumbent_publish(snapshot);
    }
    telemetry::instant(opt.telemetry, "incumbent", external ? "adopt" : "publish",
                       "objective", userObj(obj), "engine", "milp-par");
    return true;
  }

  /// Polls the external incumbent channel (same adoption rules as the
  /// sequential engine). try_lock: if a peer is already polling, this
  /// worker skips — the channel is shared, one reader per version suffices.
  void pollExternal() {
    if (!opt.incumbent_poll) return;
    if (!callback_mu.try_lock()) return;
    std::optional<std::vector<double>> x;
    {
      const sync::AdoptLock cb(callback_mu, std::adopt_lock);
      x = opt.incumbent_poll();
    }
    if (!x || !model.isFeasible(*x, opt.int_tol)) return;
    const double obj = signedObj(model.evalObjective(*x));
    roundIntegers(model, *x);
    if (offerIncumbent(std::move(*x), obj, true)) {
      external_adoptions.fetch_add(1, std::memory_order_relaxed);
      if (opt.log_progress)
        RFP_LOG_INFO("milp[par]: adopted external incumbent " << userObj(obj));
    }
  }

  /// True when a global stop condition holds; latches halt+truncated for
  /// the abnormal ones so every worker drains out promptly.
  bool checkGlobalStop() {
    if (halt.load(std::memory_order_relaxed)) return true;
    if (deadline.expired() || externallyStopped() ||
        (opt.node_limit > 0 && total_nodes.load(std::memory_order_relaxed) >= opt.node_limit)) {
      truncated.store(true, std::memory_order_relaxed);
      halt.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};

class PWorker {
 public:
  PWorker(int id, SharedTree& shared) : id_(id), shared_(shared) {
    stats_.id = id;
    pseudo_costs_.assign(static_cast<std::size_t>(shared.model.numVars()), PseudoCost{});
    if (shared.csc && shared.opt.lp_warm_start && shared.opt.lp.dual_reopt) {
      lp::sparse::DualSimplexSolver::Options dopt;
      dopt.core = shared.opt.lp.core;
      if (!dopt.core.stop) dopt.core.stop = shared.opt.stop;
      if (!dopt.core.telemetry) dopt.core.telemetry = shared.opt.telemetry;
      dopt.refactor_interval = shared.opt.lp.refactor_interval;
      dopt.lu = shared.opt.lp.lu;
      reopt_.emplace(shared.model, shared.csc, dopt);
    }
    if (shared.opt.telemetry != nullptr) {
      trace_ = shared.opt.telemetry->trace;
      if (shared.opt.telemetry->metrics != nullptr) {
        telemetry::MetricsRegistry& reg = *shared.opt.telemetry->metrics;
        nodes_ctr_ = &reg.counter("milp.nodes");
        steals_ctr_ = &reg.counter("milp.steals");
        lp_solves_ctr_ = &reg.counter("lp.solves");
        lp_iter_ctr_ = &reg.counter("lp.iterations");
        node_iter_hist_ = &reg.histogram("lp.node_iterations");
      }
    }
  }

  /// Threaded main loop: expand own work, steal when dry, exit when the
  /// tree is exhausted or a stop condition latched.
  void runThreaded() {
    if (trace_ != nullptr) {
      char label[32];
      std::snprintf(label, sizeof(label), "milp-worker-%d", id_);
      trace_->nameThread(label);
    }
    PNode node;
    while (true) {
      if (shared_.checkGlobalStop()) break;
      shared_.pollExternal();
      if (deque().popBack(node)) {
        processNode(std::move(node));
        continue;
      }
      if (trySteal()) continue;
      if (shared_.outstanding.load(std::memory_order_acquire) == 0) break;
      const Stopwatch idle;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      stats_.idle_seconds += idle.seconds();
    }
    flushBatch();  // close the trailing batch on the worker's own lane
  }

  /// Deterministic quantum: one node expansion, preceded by one steal pass
  /// if the own deque is dry. Returns whether any node was expanded.
  bool step() {
    PNode node;
    if (!deque().popBack(node)) {
      if (!trySteal() || !deque().popBack(node)) return false;
    }
    processNode(std::move(node));
    return true;
  }

  [[nodiscard]] const MipWorkerStats& stats() const { return stats_; }

  // Per-worker LP telemetry, aggregated into MipResult by the driver loop.
  long lp_iterations = 0;
  long lp_refactorizations = 0;
  long lp_primal_pivots = 0;
  long lp_dual_pivots = 0;
  long lp_bound_flips = 0;
  long lp_ft_updates = 0;
  long lp_dual_reopts = 0;
  long lp_ftran_sparse = 0;
  long lp_ftran_dense = 0;
  long lp_btran_sparse = 0;
  long lp_btran_dense = 0;
  long lp_dse_updates = 0;

 private:
  NodeDeque& deque() { return *shared_.deques[static_cast<std::size_t>(id_)]; }

  /// Scans victims in a fixed ring order from this worker's successor and
  /// moves half of the first non-empty deque into its own. The fixed order
  /// makes the steal schedule a pure function of tree shape in
  /// deterministic mode.
  bool trySteal() {
    const int W = static_cast<int>(shared_.deques.size());
    for (int k = 1; k < W; ++k) {
      const int victim = (id_ + k) % W;
      std::vector<PNode> loot;
      const int got = shared_.deques[static_cast<std::size_t>(victim)]->stealHalf(loot);
      if (got == 0) continue;
      ++stats_.steals;
      stats_.stolen_nodes += got;
      if (trace_ != nullptr) trace_->instant("steal", "steal", "nodes", static_cast<double>(got));
      if (steals_ctr_ != nullptr) steals_ctr_->increment();
      if (shared_.deterministic) {
        shared_.replay.mix(0x57ea1ull);  // steal event marker
        shared_.replay.mix(static_cast<std::uint64_t>(id_));
        shared_.replay.mix(static_cast<std::uint64_t>(victim));
        shared_.replay.mix(static_cast<std::uint64_t>(got));
      }
      // Re-push in steal order: the deque back then holds the deepest of
      // the stolen prefix, so the thief keeps diving depth-first.
      for (PNode& n : loot) deque().pushBack(std::move(n));
      return true;
    }
    return false;
  }

  void finishNode() { shared_.outstanding.fetch_sub(1, std::memory_order_acq_rel); }

  void materializeBounds(const PNode& node, std::vector<double>& lb,
                         std::vector<double>& ub) const {
    lb = shared_.base_lb;
    ub = shared_.base_ub;
    // Leaf-to-root walk with max/min merging: bounds only tighten along a
    // path, so the merge is exact regardless of application order.
    for (const PathNode* p = node.path.get(); p != nullptr; p = p->parent.get()) {
      const BoundChange& ch = p->change;
      if (ch.is_lower)
        lb[static_cast<std::size_t>(ch.var)] = std::max(lb[static_cast<std::size_t>(ch.var)], ch.value);
      else
        ub[static_cast<std::size_t>(ch.var)] = std::min(ub[static_cast<std::size_t>(ch.var)], ch.value);
    }
  }

  /// Solves one node LP and prunes or branches — the parallel counterpart
  /// of the sequential engine's processNode, with children pushed onto the
  /// own deque instead of a plunge recursion.
  void processNode(PNode node) {
    if (shared_.prunedByCutoff(node.lp_bound)) {
      finishNode();
      return;
    }
    ++stats_.nodes;
    shared_.total_nodes.fetch_add(1, std::memory_order_relaxed);
    if (nodes_ctr_ != nullptr) nodes_ctr_->increment();
    // Node-batch spans, opened lazily and closed every 64 nodes (or at
    // drain time through finishTrace): per-node spans would dominate the
    // ring on big trees.
    if (trace_ != nullptr) {
      if (batch_nodes_ == 0) batch_start_us_ = trace_->nowUs();
      if (++batch_nodes_ >= 64) flushBatch();
    }
    if (shared_.deterministic) {
      shared_.replay.mix(static_cast<std::uint64_t>(id_));
      shared_.replay.mix(static_cast<std::uint64_t>(node.depth));
      const BoundChange ch = node.path ? node.path->change : BoundChange{};
      shared_.replay.mix(static_cast<std::uint64_t>(ch.var + 1));
      shared_.replay.mix(ch.is_lower ? 1u : 0u);
      shared_.replay.mixDouble(ch.value);
    }

    std::vector<double> lb, ub;
    materializeBounds(node, lb, ub);

    // Dual-first warm reoptimization through this worker's private
    // reoptimizer; the primal engine is the fallback for cold nodes and
    // warm bases the dual engine declines. A stolen node's basis is not
    // the reoptimizer's live one, so it takes the adopt-and-refactorize
    // path — still far cheaper than a cold phase-1 solve.
    telemetry::Span root_span;
    if (node.depth == 0 && shared_.opt.telemetry != nullptr)
      root_span = telemetry::Span(shared_.opt.telemetry, "lp", "root_lp");
    lp::LpResult rel;
    bool solved = false;
    if (reopt_ && shared_.opt.lp_warm_start && node.start_basis) {
      const double limit =
          cappedLpOptions(shared_.opt, clampedRemaining(shared_.deadline)).core.time_limit_seconds;
      lp::LpResult declined;
      if (std::optional<lp::LpResult> dual =
              reopt_->reoptimize(lb, ub, node.start_basis, limit, &declined)) {
        rel = *std::move(dual);
        solved = true;
      } else {
        lp_iterations += declined.iterations;
        lp_dual_pivots += declined.dual_pivots;
        lp_bound_flips += declined.bound_flips;
        lp_ft_updates += declined.ft_updates;
        lp_refactorizations += declined.refactorizations;
        lp_ftran_sparse += declined.ftran_sparse;
        lp_ftran_dense += declined.ftran_dense;
        lp_btran_sparse += declined.btran_sparse;
        lp_btran_dense += declined.btran_dense;
        lp_dse_updates += declined.dse_updates;
      }
    }
    if (!solved) {
      lp::LpSolver::Options lopt = cappedLpOptions(shared_.opt, clampedRemaining(shared_.deadline));
      lopt.dual_reopt = false;  // the dual fast path already had its chance
      rel = lp::LpSolver(lopt).solve(shared_.model, lb, ub,
                                     shared_.opt.lp_warm_start ? node.start_basis.get() : nullptr,
                                     shared_.csc.get());
    }
    node.start_basis.reset();
    lp_iterations += rel.iterations;
    lp_refactorizations += rel.refactorizations;
    stats_.lp_warm_hits += rel.warm_started ? 1 : 0;
    lp_primal_pivots += rel.primal_pivots;
    lp_dual_pivots += rel.dual_pivots;
    lp_bound_flips += rel.bound_flips;
    lp_ft_updates += rel.ft_updates;
    lp_dual_reopts += rel.dual_reopt ? 1 : 0;
    lp_ftran_sparse += rel.ftran_sparse;
    lp_ftran_dense += rel.ftran_dense;
    lp_btran_sparse += rel.btran_sparse;
    lp_btran_dense += rel.btran_dense;
    lp_dse_updates += rel.dse_updates;
    ++stats_.lp_solves;
    if (lp_solves_ctr_ != nullptr) {
      lp_solves_ctr_->increment();
      lp_iter_ctr_->add(rel.iterations);
      node_iter_hist_->record(static_cast<double>(rel.iterations));
    }
    if (telemetry::sampleHit(shared_.opt.telemetry, static_cast<std::uint64_t>(stats_.lp_solves)))
      trace_->instant("lp", rel.dual_reopt ? "dual_reopt" : "primal_fallback", "iterations",
                      static_cast<double>(rel.iterations));
    if (rel.refactorizations > 0)
      telemetry::instant(shared_.opt.telemetry, "lp", "refactorize", "count",
                         static_cast<double>(rel.refactorizations));

    if (rel.status == lp::LpStatus::kInfeasible) {
      finishNode();
      return;
    }
    if (rel.status == lp::LpStatus::kUnbounded) {
      if (node.depth == 0) {
        shared_.root_unbounded.store(true, std::memory_order_relaxed);
        shared_.halt.store(true, std::memory_order_relaxed);
      }
      finishNode();
      return;
    }
    if (rel.status != lp::LpStatus::kOptimal) {
      // Limit hit mid-solve: the subtree is dropped unexplored, so the
      // final answer is a truncation, never a proof.
      shared_.dropped.store(true, std::memory_order_relaxed);
      finishNode();
      return;
    }

    const double bound = shared_.signedObj(rel.objective);
    if (shared_.prunedByCutoff(bound)) {
      finishNode();
      return;
    }

    // Pseudo-costs are worker-local: no cross-worker synchronization, at
    // the cost of each worker learning branching scores from its own
    // subtree only (stolen nodes still contribute to the thief's tables).
    if (shared_.opt.pseudo_cost_branching && node.path && node.lp_bound > -lp::kInfinity / 2 &&
        node.branch_frac > 0)
      updatePseudoCost(pseudo_costs_, node.path->change, node.lp_bound, node.branch_frac, bound);

    const int frac = selectBranchVar(shared_.model, shared_.opt, pseudo_costs_, rel.x);
    if (frac < 0) {
      // Integral LP optimum: offer it as the shared incumbent.
      std::vector<double> x = std::move(rel.x);
      roundIntegers(shared_.model, x);
      if (shared_.offerIncumbent(std::move(x), bound, false) && shared_.opt.log_progress)
        RFP_LOG_INFO("milp[par]: incumbent " << shared_.userObj(bound) << " from worker " << id_);
      finishNode();
      return;
    }

    if (shared_.opt.enable_rounding_heuristic) tryRounding(rel.x);

    const double xv = rel.x[static_cast<std::size_t>(frac)];
    const double frac_part = xv - std::floor(xv);
    auto down_path = std::make_shared<const PathNode>(
        PathNode{node.path, BoundChange{frac, false, std::floor(xv)}});
    auto up_path = std::make_shared<const PathNode>(
        PathNode{node.path, BoundChange{frac, true, std::ceil(xv)}});
    PNode down{std::move(down_path), bound, node.depth + 1, frac_part, rel.basis};
    PNode up{std::move(up_path), bound, node.depth + 1, frac_part, rel.basis};

    // Push the away-side child first: the next popBack takes the child
    // closer to the LP value — the sequential engine's plunge rule — and
    // leaves the other at a stealable (shallower) position.
    const bool go_down = frac_part <= 0.5;
    shared_.outstanding.fetch_add(2, std::memory_order_acq_rel);
    deque().pushBack(go_down ? std::move(up) : std::move(down));
    deque().pushBack(go_down ? std::move(down) : std::move(up));
    finishNode();
  }

  /// Rounds the fractional LP point and offers it if feasible — same cheap
  /// heuristic as the sequential engine, now feeding the shared incumbent.
  void tryRounding(const std::vector<double>& x) {
    std::vector<double> cand = x;
    roundIntegers(shared_.model, cand);
    if (!shared_.model.isFeasible(cand, shared_.opt.int_tol)) return;
    const double obj = shared_.signedObj(shared_.model.evalObjective(cand));
    if (shared_.offerIncumbent(std::move(cand), obj, false) && shared_.opt.log_progress)
      RFP_LOG_INFO("milp[par]: rounding incumbent " << shared_.userObj(obj));
  }

  void flushBatch() {
    if (trace_ == nullptr || batch_nodes_ == 0) return;
    telemetry::TraceEvent ev;
    ev.cat = "milp";
    ev.name = "node_batch";
    ev.ph = 'X';
    ev.ts_us = batch_start_us_;
    ev.dur_us = trace_->nowUs() - batch_start_us_;
    ev.akey[0] = "nodes";
    ev.aval[0] = static_cast<double>(batch_nodes_);
    ev.nargs = 1;
    trace_->complete(ev);
    batch_nodes_ = 0;
  }

 public:
  /// Closes the trailing node-batch span; the driver loop calls it after
  /// workers quiesce (covers the deterministic mode, which has no
  /// per-worker thread exit to hook).
  void finishTrace() { flushBatch(); }

 private:
  const int id_;
  SharedTree& shared_;
  MipWorkerStats stats_;
  std::vector<PseudoCost> pseudo_costs_;
  /// Private warm-reopt state (live factors + give-up breaker); see the
  /// concurrency contract in dual_simplex.hpp.
  std::optional<lp::sparse::DualReoptimizer> reopt_;
  // Observability (null without a telemetry context).
  telemetry::TraceRecorder* trace_ = nullptr;
  telemetry::Counter* nodes_ctr_ = nullptr;
  telemetry::Counter* steals_ctr_ = nullptr;
  telemetry::Counter* lp_solves_ctr_ = nullptr;
  telemetry::Counter* lp_iter_ctr_ = nullptr;
  telemetry::Histogram* node_iter_hist_ = nullptr;
  int batch_nodes_ = 0;
  double batch_start_us_ = 0.0;
};

}  // namespace

MipResult runParallelSearch(const lp::Model& model, const MilpSolver::Options& opt,
                            std::optional<std::vector<double>> warm_start) {
  const Stopwatch watch;
  const int W = std::max(2, opt.threads);
  SharedTree shared(model, opt);
  shared.minimize = model.objSense() == lp::ObjSense::kMinimize;
  shared.deterministic = opt.deterministic;
  const int n = model.numVars();
  shared.base_lb.resize(static_cast<std::size_t>(n));
  shared.base_ub.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    shared.base_lb[static_cast<std::size_t>(j)] = model.var(j).lb;
    shared.base_ub[static_cast<std::size_t>(j)] = model.var(j).ub;
  }
  shared.engine = lp::LpSolver(opt.lp).resolveEngine(model);
  if (shared.engine == lp::LpEngine::kSparse)
    shared.csc =
        std::make_shared<const lp::sparse::CscMatrix>(lp::sparse::CscMatrix::fromModel(model));

  MipResult res;
  res.lp_engine = shared.engine;

  if (warm_start && model.isFeasible(*warm_start, opt.int_tol)) {
    std::vector<double> x = *std::move(warm_start);
    const double obj = shared.signedObj(model.evalObjective(x));
    roundIntegers(model, x);
    // Seeded before any worker starts; external=true suppresses publishing
    // the caller's own point back at it.
    shared.offerIncumbent(std::move(x), obj, true);
    shared.incumbent_external.store(false, std::memory_order_relaxed);
  }

  shared.deques.reserve(static_cast<std::size_t>(W));
  std::vector<std::unique_ptr<PWorker>> workers;
  workers.reserve(static_cast<std::size_t>(W));
  for (int i = 0; i < W; ++i) shared.deques.push_back(std::make_unique<NodeDeque>());
  for (int i = 0; i < W; ++i) workers.push_back(std::make_unique<PWorker>(i, shared));

  shared.outstanding.store(1, std::memory_order_relaxed);
  shared.deques[0]->pushBack(PNode{});  // root

  if (opt.deterministic) {
    // Lock-step round-robin: one node quantum per worker per round, on this
    // thread. No OS scheduling enters the node order, so two runs expand
    // identical trees and record identical steal schedules.
    while (shared.outstanding.load(std::memory_order_acquire) > 0) {
      if (shared.checkGlobalStop()) break;
      shared.pollExternal();
      for (int i = 0; i < W && !shared.halt.load(std::memory_order_relaxed); ++i)
        workers[static_cast<std::size_t>(i)]->step();
    }
    res.replay_hash = shared.replay.h;
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(W));
    for (int i = 0; i < W; ++i)
      pool.emplace_back([&workers, i] { workers[static_cast<std::size_t>(i)]->runThreaded(); });
    for (std::thread& t : pool) t.join();
  }

  // ---- final status assembly (mirrors the sequential engine) ----
  const bool truncated = shared.truncated.load(std::memory_order_relaxed) ||
                         shared.dropped.load(std::memory_order_relaxed) ||
                         shared.externallyStopped();
  res.seconds = watch.seconds();
  res.nodes = shared.total_nodes.load(std::memory_order_relaxed);
  for (const std::unique_ptr<PWorker>& w : workers) {
    w->finishTrace();
    res.workers.push_back(w->stats());
    res.steals += w->stats().steals;
    res.lp_solves += w->stats().lp_solves;
    res.lp_warm_hits += w->stats().lp_warm_hits;
    res.lp_iterations += w->lp_iterations;
    res.lp_refactorizations += w->lp_refactorizations;
    res.lp_primal_pivots += w->lp_primal_pivots;
    res.lp_dual_pivots += w->lp_dual_pivots;
    res.lp_bound_flips += w->lp_bound_flips;
    res.lp_ft_updates += w->lp_ft_updates;
    res.lp_dual_reopts += w->lp_dual_reopts;
    res.lp_ftran_sparse += w->lp_ftran_sparse;
    res.lp_ftran_dense += w->lp_ftran_dense;
    res.lp_btran_sparse += w->lp_btran_sparse;
    res.lp_btran_dense += w->lp_btran_dense;
    res.lp_dse_updates += w->lp_dse_updates;
  }
  res.external_adoptions = shared.external_adoptions.load(std::memory_order_relaxed);
  res.cutoff_prunes = shared.cutoff_prunes.load(std::memory_order_relaxed);

  if (shared.root_unbounded.load(std::memory_order_relaxed)) {
    res.status = MipStatus::kUnbounded;
    return res;
  }

  // Snapshot the incumbent under its lock. The workers have all been
  // joined, but pollExternal/offerIncumbent wrote these fields from their
  // threads — taking inc_mu here keeps the access pattern uniform (and the
  // annotation checkable) instead of relying on the join's happens-before.
  const bool has_inc = shared.has_incumbent.load(std::memory_order_acquire);
  std::vector<double> inc_x;
  double inc_obj = lp::kInfinity;
  if (has_inc) {
    const sync::MutexLock lock(shared.inc_mu);
    inc_x = shared.incumbent;
    inc_obj = shared.incumbent_obj;
  }
  double bound;
  if (truncated) {
    if (shared.dropped.load(std::memory_order_relaxed)) {
      // A dropped subtree leaves the dual bound unknown entirely.
      bound = -lp::kInfinity;
    } else {
      // Weakest unexplored node across all leftover deques (halted workers
      // leave their unprocessed nodes in place); a fully drained tree that
      // was still cancelled keeps the incumbent objective, as sequential.
      bound = lp::kInfinity;
      for (const std::unique_ptr<NodeDeque>& d : shared.deques)
        bound = std::min(bound, d->minBound());
      if (bound == lp::kInfinity) bound = has_inc ? inc_obj : -lp::kInfinity;
    }
  } else {
    bound = has_inc ? inc_obj : lp::kInfinity;
  }

  if (has_inc) {
    res.x = std::move(inc_x);
    res.objective = shared.userObj(inc_obj);
    res.best_bound = shared.userObj(bound);
    res.gap = std::abs(inc_obj - bound) / std::max(1.0, std::abs(inc_obj));
    res.status =
        (!truncated || res.gap <= opt.gap_tol) ? MipStatus::kOptimal : MipStatus::kFeasible;
  } else {
    res.status = truncated ? MipStatus::kNoSolution : MipStatus::kInfeasible;
    res.best_bound = shared.userObj(bound);
  }
  return res;
}

}  // namespace rfp::milp::detail
