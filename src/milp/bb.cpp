#include "milp/bb.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "milp/bb_detail.hpp"
#include "milp/presolve.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace rfp::milp {

const char* toString(MipStatus s) noexcept {
  switch (s) {
    case MipStatus::kOptimal: return "optimal";
    case MipStatus::kFeasible: return "feasible";
    case MipStatus::kInfeasible: return "infeasible";
    case MipStatus::kNoSolution: return "no-solution";
    case MipStatus::kUnbounded: return "unbounded";
  }
  return "?";
}

namespace {

using detail::BoundChange;
using detail::cappedLpOptions;
using detail::clampedRemaining;
using detail::PseudoCost;

struct Node {
  int parent = -1;          ///< index into the node arena (-1: root)
  BoundChange change;       ///< change applied relative to the parent
  double lp_bound = -lp::kInfinity;  ///< parent LP objective (dual bound)
  int depth = 0;
  double branch_frac = 0.0;  ///< fractional part of the branched variable at
                             ///< the parent (pseudo-cost bookkeeping)
  /// Parent's optimal basis (sparse LP engine): both children share one
  /// snapshot; it is released once this node's own relaxation is solved.
  std::shared_ptr<const lp::sparse::Basis> start_basis;
};

/// Min-heap entry ordered by dual bound (best-bound-first).
struct HeapEntry {
  double bound;
  long seq;  ///< tiebreak: prefer older nodes (FIFO among equals)
  int node;
  bool operator<(const HeapEntry& o) const {
    if (bound != o.bound) return bound > o.bound;  // min-heap via operator<
    return seq > o.seq;
  }
};

class Search {
 public:
  Search(const lp::Model& model, const MilpSolver::Options& opt)
      : model_(model), opt_(opt), lp_solver_(opt.lp) {
    const int n = model.numVars();
    base_lb_.resize(static_cast<std::size_t>(n));
    base_ub_.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      base_lb_[static_cast<std::size_t>(j)] = model.var(j).lb;
      base_ub_[static_cast<std::size_t>(j)] = model.var(j).ub;
    }
    minimize_ = model.objSense() == lp::ObjSense::kMinimize;
    pseudo_costs_.assign(static_cast<std::size_t>(n), PseudoCost{});
    // One CSC build per tree: every node solve differs only in bounds, so
    // the structural matrix is shared across the whole search instead of
    // being rebuilt per solve (pure constant overhead otherwise).
    if (lp_solver_.resolveEngine(model) == lp::LpEngine::kSparse) {
      csc_ = std::make_shared<const lp::sparse::CscMatrix>(
          lp::sparse::CscMatrix::fromModel(model));
      if (opt.lp_warm_start && opt.lp.dual_reopt) {
        // Persistent dual reoptimizer: dive children warm-start from the
        // live factors of the solve that just produced their parent basis,
        // skipping both per-node refactorizations.
        lp::sparse::DualSimplexSolver::Options dopt;
        dopt.core = opt.lp.core;
        if (!dopt.core.stop) dopt.core.stop = opt.stop;
        if (!dopt.core.telemetry) dopt.core.telemetry = opt.telemetry;
        dopt.refactor_interval = opt.lp.refactor_interval;
        dopt.lu = opt.lp.lu;
        reopt_.emplace(model, csc_, dopt);
      }
    }
    if (opt.telemetry != nullptr && opt.telemetry->metrics != nullptr) {
      telemetry::MetricsRegistry& reg = *opt.telemetry->metrics;
      nodes_ctr_ = &reg.counter("milp.nodes");
      lp_solves_ctr_ = &reg.counter("lp.solves");
      lp_iter_ctr_ = &reg.counter("lp.iterations");
      node_iter_hist_ = &reg.histogram("lp.node_iterations");
    }
  }


  MipResult run(std::optional<std::vector<double>> warm_start) {
    Stopwatch watch;
    Deadline deadline(opt_.time_limit_seconds);
    deadline_ = &deadline;
    MipResult res;

    if (warm_start && model_.isFeasible(*warm_start, opt_.int_tol)) {
      incumbent_ = *warm_start;
      incumbent_obj_ = signedObj(model_.evalObjective(*warm_start));
    }

    res.lp_engine = lp_solver_.resolveEngine(model_);

    nodes_.push_back(Node{});  // root
    heap_.push(HeapEntry{-lp::kInfinity, seq_++, 0});

    bool truncated = false;
    bool root_unbounded = false;
    while (!heap_.empty()) {
      if (deadline.expired() || externallyStopped() ||
          (opt_.node_limit > 0 && res.nodes >= opt_.node_limit)) {
        truncated = true;
        break;
      }
      adoptExternalIncumbent(res);
      HeapEntry top = heap_.top();
      heap_.pop();
      // Prune against the incumbent before solving (releasing the pruned
      // node's basis snapshot — at paper scale each holds ~hundreds of KB
      // and thousands of nodes can be pruned without ever being processed).
      if (hasIncumbent() && top.bound >= incumbent_obj_ - absGapSlack()) {
        nodes_[static_cast<std::size_t>(top.node)].start_basis.reset();
        if (incumbent_external_) ++res.cutoff_prunes;
        continue;
      }

      // Depth-first plunge from the selected node. One plunge = one
      // node-batch span in the trace: fine enough to see where tree time
      // goes, coarse enough to stay off the per-node path.
      telemetry::Span plunge_span(opt_.telemetry, "milp", "node_batch");
      int current = top.node;
      int dove = 0;
      for (int dive = 0; current >= 0 && dive <= opt_.plunge_depth; ++dive) {
        if (deadline.expired() || externallyStopped()) {
          truncated = true;
          break;
        }
        if (dive > 0) adoptExternalIncumbent(res);  // dives outlive the heap poll
        ++res.nodes;
        ++dove;
        current = processNode(current, res, root_unbounded);
      }
      plunge_span.arg("nodes", dove);
      plunge_span.finish();
      if (nodes_ctr_ != nullptr) nodes_ctr_->add(dove);
      if (root_unbounded) break;
    }

    // ---- final status assembly ----
    // A run that ends with the external stop flag set never claims a proof,
    // even when every node happened to be processed before the flag was
    // observed: the flag means another engine settled the problem, and a
    // cancelled run racing it must not hand arbitration a second "proof"
    // whose final LPs may have been cut short mid-pivot.
    truncated = truncated || dropped_node_ || externallyStopped();
    res.seconds = watch.seconds();
    double bound;
    if (truncated) {
      // The dual bound is the weakest unexplored node bound (root nodes carry
      // -inf until their parent LP is solved, so this is conservative). A
      // dropped subtree leaves the dual bound unknown entirely: without
      // this, a drained heap would report gap 0 and claim optimality.
      bound = dropped_node_ ? -lp::kInfinity
                            : (heap_.empty() ? incumbent_obj_ : heap_.top().bound);
    } else {
      bound = hasIncumbent() ? incumbent_obj_ : lp::kInfinity;
    }
    if (root_unbounded) {
      res.status = MipStatus::kUnbounded;
      return res;
    }
    if (hasIncumbent()) {
      res.x = incumbent_;
      res.objective = userObj(incumbent_obj_);
      res.best_bound = userObj(bound);
      res.gap = std::abs(incumbent_obj_ - bound) / std::max(1.0, std::abs(incumbent_obj_));
      res.status = (!truncated || res.gap <= opt_.gap_tol) ? MipStatus::kOptimal
                                                           : MipStatus::kFeasible;
    } else {
      res.status = truncated ? MipStatus::kNoSolution : MipStatus::kInfeasible;
      res.best_bound = userObj(bound);
    }
    res.lp_iterations = lp_iterations_;
    res.lp_solves = lp_solves_;
    res.lp_warm_hits = lp_warm_hits_;
    res.lp_refactorizations = lp_refactorizations_;
    res.lp_primal_pivots = lp_primal_pivots_;
    res.lp_dual_pivots = lp_dual_pivots_;
    res.lp_bound_flips = lp_bound_flips_;
    res.lp_ft_updates = lp_ft_updates_;
    res.lp_dual_reopts = lp_dual_reopts_;
    res.lp_ftran_sparse = lp_ftran_sparse_;
    res.lp_ftran_dense = lp_ftran_dense_;
    res.lp_btran_sparse = lp_btran_sparse_;
    res.lp_btran_dense = lp_btran_dense_;
    res.lp_dse_updates = lp_dse_updates_;
    return res;
  }

 private:
  // All internal objective handling is in minimization sense.
  [[nodiscard]] double signedObj(double user) const { return minimize_ ? user : -user; }
  [[nodiscard]] double userObj(double internal) const { return minimize_ ? internal : -internal; }
  [[nodiscard]] bool hasIncumbent() const { return !incumbent_.empty(); }
  [[nodiscard]] bool externallyStopped() const {
    return opt_.stop && opt_.stop->load(std::memory_order_relaxed);
  }
  [[nodiscard]] double absGapSlack() const {
    return hasIncumbent() ? opt_.gap_tol * std::max(1.0, std::abs(incumbent_obj_)) : 0.0;
  }

  /// Polls the incumbent-exchange callback and adopts its point as the
  /// objective cutoff when it is integer-feasible for this (possibly cut-
  /// and presolve-augmented) model and beats the current incumbent. Cover
  /// cuts and presolve preserve every integer-feasible point, so a genuinely
  /// feasible external plan passes; HO's sequence-pair rows legitimately
  /// reject plans outside the restricted space.
  void adoptExternalIncumbent(MipResult& res) {
    if (!opt_.incumbent_poll) return;
    std::optional<std::vector<double>> x = opt_.incumbent_poll();
    if (!x || !model_.isFeasible(*x, opt_.int_tol)) return;
    const double obj = signedObj(model_.evalObjective(*x));
    if (hasIncumbent() && obj >= incumbent_obj_ - 1e-12) return;
    incumbent_ = std::move(*x);
    roundIntegers(incumbent_);
    incumbent_obj_ = obj;
    incumbent_external_ = true;
    ++res.external_adoptions;
    telemetry::instant(opt_.telemetry, "incumbent", "adopt", "objective",
                       userObj(incumbent_obj_), "engine", "milp");
    if (opt_.log_progress)
      RFP_LOG_INFO("milp: adopted external incumbent " << userObj(incumbent_obj_));
  }

  void materializeBounds(int node, std::vector<double>& lb, std::vector<double>& ub) const {
    lb = base_lb_;
    ub = base_ub_;
    // Walk the change chain root-ward; the *latest* change to a variable wins,
    // so collect then apply in reverse arrival order via max/min merging
    // (bounds only ever tighten along a path, so max/min is exact).
    for (int cur = node; cur > 0; cur = nodes_[static_cast<std::size_t>(cur)].parent) {
      const BoundChange& ch = nodes_[static_cast<std::size_t>(cur)].change;
      if (ch.is_lower)
        lb[static_cast<std::size_t>(ch.var)] = std::max(lb[static_cast<std::size_t>(ch.var)], ch.value);
      else
        ub[static_cast<std::size_t>(ch.var)] = std::min(ub[static_cast<std::size_t>(ch.var)], ch.value);
    }
  }

  /// Solves the node LP, prunes/branches. Returns the child node index to
  /// continue the plunge on (-1 to end the dive).
  int processNode(int node_index, MipResult& res, bool& root_unbounded) {
    // The root relaxation dominates wall clock at paper scale; give it its
    // own named span so the timeline shows it without per-node spans.
    telemetry::Span root_span;
    if (node_index == 0 && opt_.telemetry != nullptr)
      root_span = telemetry::Span(opt_.telemetry, "lp", "root_lp");
    std::vector<double> lb, ub;
    materializeBounds(node_index, lb, ub);

    // Reoptimize from the parent's optimal basis (sparse engine; the basis
    // is usually a handful of pivots from the child optimum). Take a local
    // copy: nodes_ may reallocate when children are pushed below.
    std::shared_ptr<const lp::sparse::Basis> start_basis =
        std::move(nodes_[static_cast<std::size_t>(node_index)].start_basis);

    // Dual-first warm reoptimization through the persistent per-tree
    // reoptimizer; the primal engine is the fallback for cold nodes and for
    // warm bases the dual engine declines (no dual-feasible start).
    lp::LpResult rel;
    bool solved = false;
    if (reopt_ && opt_.lp_warm_start && start_basis) {
      // The node deadline: per-LP limit capped by the tree's remaining
      // time, merged exactly as cappedLpOptions does for the primal path.
      const double limit =
          cappedLpOptions(opt_, clampedRemaining(*deadline_)).core.time_limit_seconds;
      lp::LpResult declined;
      if (std::optional<lp::LpResult> dual =
              reopt_->reoptimize(lb, ub, start_basis, limit, &declined)) {
        rel = *std::move(dual);
        solved = true;
      } else {
        // A dual attempt that gave up still burned pivots and possibly a
        // refactorization; fold its effort into the telemetry so the
        // pivot-class counters reflect actual solver work.
        lp_iterations_ += declined.iterations;
        lp_dual_pivots_ += declined.dual_pivots;
        lp_bound_flips_ += declined.bound_flips;
        lp_ft_updates_ += declined.ft_updates;
        lp_refactorizations_ += declined.refactorizations;
        lp_ftran_sparse_ += declined.ftran_sparse;
        lp_ftran_dense_ += declined.ftran_dense;
        lp_btran_sparse_ += declined.btran_sparse;
        lp_btran_dense_ += declined.btran_dense;
        lp_dse_updates_ += declined.dse_updates;
      }
    }
    if (!solved) {
      lp::LpSolver::Options lopt = cappedLpOptions(opt_, clampedRemaining(*deadline_));
      lopt.dual_reopt = false;  // the dual fast path already had its chance
      rel = lp::LpSolver(lopt).solve(
          model_, lb, ub, opt_.lp_warm_start ? start_basis.get() : nullptr, csc_.get());
    }
    lp_iterations_ += rel.iterations;
    lp_refactorizations_ += rel.refactorizations;
    lp_warm_hits_ += rel.warm_started ? 1 : 0;
    lp_primal_pivots_ += rel.primal_pivots;
    lp_dual_pivots_ += rel.dual_pivots;
    lp_bound_flips_ += rel.bound_flips;
    lp_ft_updates_ += rel.ft_updates;
    lp_dual_reopts_ += rel.dual_reopt ? 1 : 0;
    lp_ftran_sparse_ += rel.ftran_sparse;
    lp_ftran_dense_ += rel.ftran_dense;
    lp_btran_sparse_ += rel.btran_sparse;
    lp_btran_dense_ += rel.btran_dense;
    lp_dse_updates_ += rel.dse_updates;
    ++lp_solves_;
    if (lp_solves_ctr_ != nullptr) {
      lp_solves_ctr_->increment();
      lp_iter_ctr_->add(rel.iterations);
      node_iter_hist_->record(static_cast<double>(rel.iterations));
    }
    // Warm nodes either rode the dual fast path or fell back to the primal
    // engine; sample the distinction into the trace (every LP when the
    // sampling knob is 1). Refactorizations are rare enough to always emit.
    if (telemetry::sampleHit(opt_.telemetry, static_cast<std::uint64_t>(lp_solves_)))
      opt_.telemetry->trace->instant("lp", rel.dual_reopt ? "dual_reopt" : "primal_fallback",
                                     "iterations", static_cast<double>(rel.iterations));
    if (rel.refactorizations > 0)
      telemetry::instant(opt_.telemetry, "lp", "refactorize", "count",
                         static_cast<double>(rel.refactorizations));
    if (rel.status == lp::LpStatus::kInfeasible) return -1;
    if (rel.status == lp::LpStatus::kUnbounded) {
      if (node_index == 0) root_unbounded = true;
      return -1;
    }
    if (rel.status != lp::LpStatus::kOptimal) {
      // Limit hit (or the sparse engine refused to certify its point): the
      // subtree is dropped unexplored, so any final answer is a truncation,
      // not a proof — without this a discarded subtree could hide the true
      // optimum behind a kOptimal/kInfeasible claim.
      dropped_node_ = true;
      return -1;
    }

    const double bound = signedObj(rel.objective);
    if (hasIncumbent() && bound >= incumbent_obj_ - absGapSlack()) {
      if (incumbent_external_) ++res.cutoff_prunes;
      return -1;
    }

    // Pseudo-cost update: this node's LP bound vs the parent bound measures
    // the objective degradation of the branch that created it.
    const Node& node = nodes_[static_cast<std::size_t>(node_index)];
    if (opt_.pseudo_cost_branching && node_index != 0 &&
        node.lp_bound > -lp::kInfinity / 2 && node.branch_frac > 0)
      detail::updatePseudoCost(pseudo_costs_, node.change, node.lp_bound, node.branch_frac,
                               bound);

    const int frac = detail::selectBranchVar(model_, opt_, pseudo_costs_, rel.x);
    if (frac < 0) {
      // Integral LP optimum: new incumbent.
      if (!hasIncumbent() || bound < incumbent_obj_) {
        incumbent_ = rel.x;
        roundIntegers(incumbent_);
        incumbent_obj_ = bound;
        incumbent_external_ = false;
        if (opt_.incumbent_publish) opt_.incumbent_publish(incumbent_);
        telemetry::instant(opt_.telemetry, "incumbent", "publish", "objective",
                           userObj(incumbent_obj_), "engine", "milp");
        if (opt_.log_progress)
          RFP_LOG_INFO("milp: incumbent " << userObj(incumbent_obj_) << " at node " << res.nodes);
      }
      return -1;
    }

    if (opt_.enable_rounding_heuristic) tryRounding(rel.x);

    const double xv = rel.x[static_cast<std::size_t>(frac)];
    const int depth = nodes_[static_cast<std::size_t>(node_index)].depth;

    // Down child (ub := floor) and up child (lb := ceil); both reoptimize
    // from this node's optimal basis (one shared snapshot).
    const double frac_part = xv - std::floor(xv);
    const int down = static_cast<int>(nodes_.size());
    nodes_.push_back(
        Node{node_index, {frac, false, std::floor(xv)}, bound, depth + 1, frac_part, rel.basis});
    const int up = static_cast<int>(nodes_.size());
    nodes_.push_back(
        Node{node_index, {frac, true, std::ceil(xv)}, bound, depth + 1, frac_part, rel.basis});

    // Plunge into the child closer to the LP value; queue the other.
    const bool go_down = (xv - std::floor(xv)) <= 0.5;
    const int dive_child = go_down ? down : up;
    const int queue_child = go_down ? up : down;
    heap_.push(HeapEntry{bound, seq_++, queue_child});
    return dive_child;
  }

  void roundIntegers(std::vector<double>& x) const { detail::roundIntegers(model_, x); }

  /// Rounds the fractional LP point and accepts it if it happens to be
  /// feasible and improving — cheap and surprisingly effective on big-M
  /// floorplanning models where most binaries are already integral.
  void tryRounding(const std::vector<double>& x) {
    std::vector<double> cand = x;
    roundIntegers(cand);
    if (!model_.isFeasible(cand, opt_.int_tol)) return;
    const double obj = signedObj(model_.evalObjective(cand));
    if (!hasIncumbent() || obj < incumbent_obj_ - 1e-12) {
      incumbent_ = std::move(cand);
      incumbent_obj_ = obj;
      incumbent_external_ = false;
      if (opt_.incumbent_publish) opt_.incumbent_publish(incumbent_);
      telemetry::instant(opt_.telemetry, "incumbent", "publish", "objective", userObj(obj),
                         "engine", "milp-rounding");
      if (opt_.log_progress) RFP_LOG_INFO("milp: rounding incumbent " << userObj(obj));
    }
  }

  const lp::Model& model_;
  MilpSolver::Options opt_;
  lp::LpSolver lp_solver_;
  bool minimize_ = true;
  std::vector<PseudoCost> pseudo_costs_;

  std::vector<double> base_lb_, base_ub_;
  std::vector<Node> nodes_;
  std::priority_queue<HeapEntry> heap_;
  long seq_ = 0;
  long lp_iterations_ = 0;
  long lp_solves_ = 0;
  long lp_warm_hits_ = 0;
  long lp_refactorizations_ = 0;
  long lp_primal_pivots_ = 0;
  long lp_dual_pivots_ = 0;
  long lp_bound_flips_ = 0;
  long lp_ft_updates_ = 0;
  long lp_dual_reopts_ = 0;
  long lp_ftran_sparse_ = 0;
  long lp_ftran_dense_ = 0;
  long lp_btran_sparse_ = 0;
  long lp_btran_dense_ = 0;
  long lp_dse_updates_ = 0;
  /// Structural CSC matrix shared by every node solve of this tree (sparse
  /// engine only; null on the dense path).
  std::shared_ptr<const lp::sparse::CscMatrix> csc_;
  /// Persistent dual-simplex state shared across this tree's node solves.
  std::optional<lp::sparse::DualReoptimizer> reopt_;
  bool dropped_node_ = false;  ///< a node LP hit a limit; results are truncations
  // Live registry handles (null without a telemetry context).
  telemetry::Counter* nodes_ctr_ = nullptr;
  telemetry::Counter* lp_solves_ctr_ = nullptr;
  telemetry::Counter* lp_iter_ctr_ = nullptr;
  telemetry::Histogram* node_iter_hist_ = nullptr;

  std::vector<double> incumbent_;
  double incumbent_obj_ = lp::kInfinity;
  bool incumbent_external_ = false;  ///< current incumbent came from the channel
  const Deadline* deadline_ = nullptr;  ///< run()'s deadline, for node LP caps
};

/// Boundary guard for the non-search return paths (pure LP, root presolve):
/// a solve that ends with the external stop flag set is a cancellation, and
/// a cancelled run must never hand the caller a proof.
void downgradeIfCancelled(MipResult& res, const MilpSolver::Options& opt) {
  if (!opt.stop || !opt.stop->load(std::memory_order_relaxed)) return;
  if (res.status == MipStatus::kOptimal) res.status = MipStatus::kFeasible;
  else if (res.status == MipStatus::kInfeasible) res.status = MipStatus::kNoSolution;
}

}  // namespace

MipResult MilpSolver::solve(const lp::Model& model,
                            std::optional<std::vector<double>> warm_start) const {
  if (!model.hasIntegerVars()) {
    // Pure LP: solve the relaxation directly (with the MILP-level budget and
    // stop flag threaded into the pivot loop).
    lp::LpSolver solver(cappedLpOptions(options_, options_.time_limit_seconds));
    lp::LpResult rel = solver.solve(model);
    MipResult res;
    res.lp_iterations = rel.iterations;
    res.lp_engine = rel.engine;
    res.lp_solves = 1;
    res.lp_refactorizations = rel.refactorizations;
    res.lp_primal_pivots = rel.primal_pivots;
    res.lp_dual_pivots = rel.dual_pivots;
    res.lp_bound_flips = rel.bound_flips;
    res.lp_ft_updates = rel.ft_updates;
    res.lp_ftran_sparse = rel.ftran_sparse;
    res.lp_ftran_dense = rel.ftran_dense;
    res.lp_btran_sparse = rel.btran_sparse;
    res.lp_btran_dense = rel.btran_dense;
    res.lp_dse_updates = rel.dse_updates;
    res.seconds = rel.seconds;
    switch (rel.status) {
      case lp::LpStatus::kOptimal:
        res.status = MipStatus::kOptimal;
        res.x = std::move(rel.x);
        res.objective = rel.objective;
        res.best_bound = rel.objective;
        res.gap = 0.0;
        break;
      case lp::LpStatus::kInfeasible: res.status = MipStatus::kInfeasible; break;
      case lp::LpStatus::kUnbounded: res.status = MipStatus::kUnbounded; break;
      default: res.status = MipStatus::kNoSolution; break;
    }
    downgradeIfCancelled(res, options_);
    return res;
  }
  // Working copy: presolve tightens its variable bounds; cover cuts append
  // rows. Both transformations preserve every integer-feasible point, so a
  // warm start remains valid and optimality claims are unaffected. The
  // wall-clock budget covers presolve + cuts + search: root work at paper
  // scale is LP-solve-heavy, so the search receives whatever remains.
  Stopwatch root_watch;
  const Deadline cut_deadline(options_.time_limit_seconds);
  lp::Model work = model;

  if (options_.enable_presolve) {
    telemetry::Span presolve_span(options_.telemetry, "milp", "presolve");
    std::vector<double> lb(static_cast<std::size_t>(work.numVars()));
    std::vector<double> ub(static_cast<std::size_t>(work.numVars()));
    for (int j = 0; j < work.numVars(); ++j) {
      lb[static_cast<std::size_t>(j)] = work.var(j).lb;
      ub[static_cast<std::size_t>(j)] = work.var(j).ub;
    }
    const PresolveResult pr = tightenBounds(work, lb, ub);
    if (pr.infeasible) {
      MipResult res;
      res.status = MipStatus::kInfeasible;
      downgradeIfCancelled(res, options_);
      return res;
    }
    for (int j = 0; j < work.numVars(); ++j)
      work.setVarBounds(j, lb[static_cast<std::size_t>(j)], ub[static_cast<std::size_t>(j)]);
  }

  long cut_solves = 0, cut_iters = 0, cut_refacs = 0;
  long cut_primal = 0, cut_flips = 0, cut_fts = 0;
  long cut_ftran_sp = 0, cut_ftran_dn = 0, cut_btran_sp = 0, cut_btran_dn = 0;
  if (options_.enable_cover_cuts) {
    telemetry::Span cuts_span(options_.telemetry, "milp", "cover_cuts");
    for (int round = 0; round < options_.cut_rounds; ++round) {
      if (cut_deadline.expired() ||
          (options_.stop && options_.stop->load(std::memory_order_relaxed)))
        break;
      const lp::LpResult rel =
          lp::LpSolver(cappedLpOptions(options_, clampedRemaining(cut_deadline))).solve(work);
      ++cut_solves;
      cut_iters += rel.iterations;
      cut_refacs += rel.refactorizations;
      cut_primal += rel.primal_pivots;
      cut_flips += rel.bound_flips;
      cut_fts += rel.ft_updates;
      cut_ftran_sp += rel.ftran_sparse;
      cut_ftran_dn += rel.ftran_dense;
      cut_btran_sp += rel.btran_sparse;
      cut_btran_dn += rel.btran_dense;
      if (rel.status != lp::LpStatus::kOptimal) break;
      const std::vector<CoverCut> cuts = separateCoverCuts(work, rel.x);
      if (cuts.empty()) break;
      for (const CoverCut& cut : cuts) {
        lp::LinExpr expr;
        for (const int j : cut.vars) expr.addTerm(lp::Var{j}, 1.0);
        work.addConstr(expr, lp::Sense::kLessEqual, cut.rhs, "cover_cut");
      }
    }
  }

  Options search_opt = options_;
  if (search_opt.time_limit_seconds > 0)
    search_opt.time_limit_seconds =
        std::max(0.01, search_opt.time_limit_seconds - root_watch.seconds());
  // threads > 1 dispatches to the work-stealing parallel engine
  // (bb_parallel.cpp); the sequential engine stays the single-thread path so
  // existing single-threaded behavior is bit-for-bit unchanged.
  MipResult res = search_opt.threads > 1
                      ? detail::runParallelSearch(work, search_opt, std::move(warm_start))
                      : Search(work, search_opt).run(std::move(warm_start));
  res.seconds = root_watch.seconds();  // include presolve + cut time
  // Cut-separation LPs are real (cold) LP work: report them, or the
  // telemetry under-counts solves and inflates the warm-start hit rate.
  res.lp_solves += cut_solves;
  res.lp_iterations += cut_iters;
  res.lp_refactorizations += cut_refacs;
  res.lp_primal_pivots += cut_primal;
  res.lp_bound_flips += cut_flips;
  res.lp_ft_updates += cut_fts;
  res.lp_ftran_sparse += cut_ftran_sp;
  res.lp_ftran_dense += cut_ftran_dn;
  res.lp_btran_sparse += cut_btran_sp;
  res.lp_btran_dense += cut_btran_dn;
  return res;
}

}  // namespace rfp::milp
