#include "milp/presolve.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace rfp::milp {

namespace {

constexpr double kInf = lp::kInfinity;
constexpr double kFeasTol = 1e-7;

/// Rounds an integer variable's bounds inward.
void roundIntegerBounds(const lp::Model& model, int j, std::vector<double>& lb,
                        std::vector<double>& ub, int& changes) {
  if (model.var(j).type == lp::VarType::kContinuous) return;
  const double rl = std::ceil(lb[static_cast<std::size_t>(j)] - kFeasTol);
  const double ru = std::floor(ub[static_cast<std::size_t>(j)] + kFeasTol);
  if (rl > lb[static_cast<std::size_t>(j)] + kFeasTol) {
    lb[static_cast<std::size_t>(j)] = rl;
    ++changes;
  }
  if (ru < ub[static_cast<std::size_t>(j)] - kFeasTol) {
    ub[static_cast<std::size_t>(j)] = ru;
    ++changes;
  }
}

/// One direction of activity-based tightening over `Σ terms ≤ rhs`.
/// Returns false on proven infeasibility.
bool tightenLeRow(const lp::Model& model, const std::vector<std::pair<int, double>>& terms,
                  double rhs, std::vector<double>& lb, std::vector<double>& ub,
                  int& changes, std::string& detail) {
  // Minimal activity and whether it is finite.
  double min_act = 0.0;
  int infinite_terms = 0;
  int infinite_index = -1;
  for (const auto& [j, a] : terms) {
    const double contrib =
        a > 0 ? a * lb[static_cast<std::size_t>(j)] : a * ub[static_cast<std::size_t>(j)];
    const double bound_used =
        a > 0 ? lb[static_cast<std::size_t>(j)] : ub[static_cast<std::size_t>(j)];
    if (std::abs(bound_used) >= kInf / 2) {
      ++infinite_terms;
      infinite_index = j;
    } else {
      min_act += contrib;
    }
  }

  if (infinite_terms == 0 && min_act > rhs + 1e-6) {
    std::ostringstream os;
    os << "row minimal activity " << min_act << " exceeds rhs " << rhs;
    detail = os.str();
    return false;
  }
  if (infinite_terms > 1) return true;  // nothing can be implied

  for (const auto& [j, a] : terms) {
    const double bound_used =
        a > 0 ? lb[static_cast<std::size_t>(j)] : ub[static_cast<std::size_t>(j)];
    const bool this_infinite = std::abs(bound_used) >= kInf / 2;
    if (infinite_terms == 1 && !this_infinite) continue;  // only the ∞ term tightens
    if (infinite_terms == 1 && j != infinite_index) continue;
    // Residual activity excluding j's own contribution.
    const double own = this_infinite ? 0.0 : (a > 0 ? a * lb[static_cast<std::size_t>(j)]
                                                    : a * ub[static_cast<std::size_t>(j)]);
    const double residual = min_act - own;
    const double slack = rhs - residual;
    if (a > 0) {
      const double new_ub = slack / a;
      if (new_ub < ub[static_cast<std::size_t>(j)] - 1e-9) {
        ub[static_cast<std::size_t>(j)] = new_ub;
        ++changes;
      }
    } else {
      const double new_lb = slack / a;  // a < 0 flips the inequality
      if (new_lb > lb[static_cast<std::size_t>(j)] + 1e-9) {
        lb[static_cast<std::size_t>(j)] = new_lb;
        ++changes;
      }
    }
    roundIntegerBounds(model, j, lb, ub, changes);
    if (lb[static_cast<std::size_t>(j)] > ub[static_cast<std::size_t>(j)] + kFeasTol) {
      detail = "variable bounds crossed after tightening";
      return false;
    }
  }
  return true;
}

}  // namespace

PresolveResult tightenBounds(const lp::Model& model, std::vector<double>& lb,
                             std::vector<double>& ub, int max_rounds) {
  PresolveResult res;
  for (int j = 0; j < model.numVars(); ++j)
    roundIntegerBounds(model, j, lb, ub, res.tightened_bounds);

  for (int round = 0; round < max_rounds; ++round) {
    int changes = 0;
    for (int i = 0; i < model.numConstrs(); ++i) {
      const lp::Constraint& c = model.constr(i);
      std::string detail;
      // `expr ≤ rhs` (and the mirrored row for ≥ / =).
      if (c.sense != lp::Sense::kGreaterEqual) {
        if (!tightenLeRow(model, c.terms, c.rhs, lb, ub, changes, detail)) {
          res.infeasible = true;
          res.detail = c.name + ": " + detail;
          return res;
        }
      }
      if (c.sense != lp::Sense::kLessEqual) {
        std::vector<std::pair<int, double>> negated;
        negated.reserve(c.terms.size());
        for (const auto& [j, a] : c.terms) negated.emplace_back(j, -a);
        if (!tightenLeRow(model, negated, -c.rhs, lb, ub, changes, detail)) {
          res.infeasible = true;
          res.detail = c.name + ": " + detail;
          return res;
        }
      }
    }
    res.tightened_bounds += changes;
    res.rounds = round + 1;
    if (changes == 0) break;
  }
  return res;
}

std::vector<CoverCut> separateCoverCuts(const lp::Model& model, std::span<const double> x,
                                        int max_cuts, double min_violation) {
  std::vector<CoverCut> cuts;
  for (int i = 0; i < model.numConstrs(); ++i) {
    const lp::Constraint& c = model.constr(i);
    if (c.sense != lp::Sense::kLessEqual || c.rhs <= 0) continue;

    // Knapsack shape: all-binary support, positive coefficients.
    bool knapsack = !c.terms.empty();
    for (const auto& [j, a] : c.terms)
      knapsack = knapsack && a > 0 && model.var(j).type == lp::VarType::kBinary;
    if (!knapsack) continue;

    // Greedy minimal cover: take items by descending x*_j (most fractional
    // mass first) until the capacity is exceeded.
    std::vector<int> order(c.terms.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int p, int q) {
      return x[static_cast<std::size_t>(c.terms[static_cast<std::size_t>(p)].first)] >
             x[static_cast<std::size_t>(c.terms[static_cast<std::size_t>(q)].first)];
    });
    double weight = 0.0;
    std::vector<int> cover;
    for (const int p : order) {
      cover.push_back(c.terms[static_cast<std::size_t>(p)].first);
      weight += c.terms[static_cast<std::size_t>(p)].second;
      if (weight > c.rhs + kFeasTol) break;
    }
    if (weight <= c.rhs + kFeasTol) continue;  // no cover (row not binding)

    // Minimalize: drop members that keep Σ a > b (largest coefficient first
    // stays; try removing smallest-x members).
    for (std::size_t k = cover.size(); k-- > 0;) {
      double a_k = 0;
      for (const auto& [j, a] : c.terms)
        if (j == cover[k]) a_k = a;
      if (weight - a_k > c.rhs + kFeasTol) {
        weight -= a_k;
        cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(k));
      }
    }

    CoverCut cut;
    cut.vars = cover;
    cut.rhs = static_cast<double>(cover.size()) - 1.0;
    double lhs = 0.0;
    for (const int j : cover) lhs += x[static_cast<std::size_t>(j)];
    cut.violation = lhs - cut.rhs;
    if (cut.violation >= min_violation) cuts.push_back(std::move(cut));
  }
  std::sort(cuts.begin(), cuts.end(),
            [](const CoverCut& a, const CoverCut& b) { return a.violation > b.violation; });
  if (static_cast<int>(cuts.size()) > max_cuts) cuts.resize(static_cast<std::size_t>(max_cuts));
  return cuts;
}

}  // namespace rfp::milp
