// Internal helpers shared by the sequential (bb.cpp) and parallel
// (bb_parallel.cpp) branch & bound engines: LP option derivation, branching
// variable selection, pseudo-cost bookkeeping and integer rounding. Both
// engines must make identical per-node decisions given identical state, so
// the decision logic lives here exactly once.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "milp/bb.hpp"
#include "support/timer.hpp"

namespace rfp::milp::detail {

/// One bound tightening relative to the parent node (chain representation
/// keeps per-node memory O(1) regardless of model size).
struct BoundChange {
  int var = -1;
  bool is_lower = false;  // true: lb := value, false: ub := value
  double value = 0.0;
};

struct PseudoCost {
  double down_sum = 0, up_sum = 0;
  long down_count = 0, up_count = 0;
};

/// LP options with the MILP's stop flag threaded in and the time limit
/// clamped to `remaining_seconds` (<= 0: no extra cap). Paper-scale LP
/// solves run for seconds to minutes, so truncation and cancellation must
/// act inside the pivot loop, not at the next node boundary.
inline lp::LpSolver::Options cappedLpOptions(const MilpSolver::Options& opt,
                                             double remaining_seconds) {
  lp::LpSolver::Options lopt = opt.lp;
  if (!lopt.core.stop) lopt.core.stop = opt.stop;
  if (!lopt.core.telemetry) lopt.core.telemetry = opt.telemetry;
  if (remaining_seconds > 0)
    lopt.core.time_limit_seconds =
        lopt.core.time_limit_seconds > 0
            ? std::min(lopt.core.time_limit_seconds, remaining_seconds)
            : remaining_seconds;
  return lopt;
}

[[nodiscard]] inline double clampedRemaining(const Deadline& deadline) {
  return deadline.limit() > 0 ? std::max(0.01, deadline.remaining()) : 0.0;
}

/// Most-fractional selection (binaries first), the pseudo-cost fallback.
inline int mostFractional(const lp::Model& model, const MilpSolver::Options& opt,
                          const std::vector<double>& x) {
  int best_bin = -1, best_int = -1;
  double bin_score = opt.int_tol, int_score = opt.int_tol;
  for (int j = 0; j < model.numVars(); ++j) {
    const lp::VarType type = model.var(j).type;
    if (type == lp::VarType::kContinuous) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double dist = std::min(v - std::floor(v), std::ceil(v) - v);
    if (dist <= opt.int_tol) continue;
    if (type == lp::VarType::kBinary) {
      if (dist > bin_score) {
        bin_score = dist;
        best_bin = j;
      }
    } else if (dist > int_score) {
      int_score = dist;
      best_int = j;
    }
  }
  return best_bin >= 0 ? best_bin : best_int;
}

/// Branching variable selection. With pseudo-cost branching, fractional
/// variables are scored by the product of their estimated up/down objective
/// degradations (reliability falls back to fractionality while a variable
/// has no observations). Binaries always outrank general integers — they
/// drive the big-M structure of floorplanning models. Returns -1 when the
/// point is integral.
inline int selectBranchVar(const lp::Model& model, const MilpSolver::Options& opt,
                           const std::vector<PseudoCost>& pseudo_costs,
                           const std::vector<double>& x) {
  if (!opt.pseudo_cost_branching) return mostFractional(model, opt, x);
  int best = -1;
  bool best_binary = false;
  double best_score = -1.0;
  for (int j = 0; j < model.numVars(); ++j) {
    const lp::VarType type = model.var(j).type;
    if (type == lp::VarType::kContinuous) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double f = v - std::floor(v);
    const double dist = std::min(f, 1.0 - f);
    if (dist <= opt.int_tol) continue;
    const PseudoCost& pc = pseudo_costs[static_cast<std::size_t>(j)];
    // Unobserved directions fall back to the fractionality itself, so an
    // unscored variable competes as if it were most-fractional branching.
    const double down = pc.down_count > 0 ? pc.down_sum / pc.down_count * f : dist;
    const double up = pc.up_count > 0 ? pc.up_sum / pc.up_count * (1.0 - f) : dist;
    const double score = std::max(down, 1e-9) * std::max(up, 1e-9);
    const bool binary = type == lp::VarType::kBinary;
    if (best < 0 || (binary && !best_binary) || (binary == best_binary && score > best_score)) {
      best = j;
      best_binary = binary;
      best_score = score;
    }
  }
  return best;
}

/// Records the objective degradation a branch caused into the branched
/// variable's pseudo-cost (up or down direction by the branch sense).
inline void updatePseudoCost(std::vector<PseudoCost>& pseudo_costs, const BoundChange& change,
                             double parent_bound, double branch_frac, double child_bound) {
  const double degradation = std::max(0.0, child_bound - parent_bound);
  PseudoCost& pc = pseudo_costs[static_cast<std::size_t>(change.var)];
  if (change.is_lower) {  // up branch
    pc.up_sum += degradation / std::max(1e-9, 1.0 - branch_frac);
    pc.up_count += 1;
  } else {
    pc.down_sum += degradation / std::max(1e-9, branch_frac);
    pc.down_count += 1;
  }
}

inline void roundIntegers(const lp::Model& model, std::vector<double>& x) {
  for (int j = 0; j < model.numVars(); ++j)
    if (model.var(j).type != lp::VarType::kContinuous)
      x[static_cast<std::size_t>(j)] = std::round(x[static_cast<std::size_t>(j)]);
}

/// Work-stealing parallel branch & bound over `model` (bb_parallel.cpp):
/// `opt.threads` workers with per-worker deques and private DualReoptimizer
/// instances, cooperating through an atomic incumbent cutoff. With
/// `opt.deterministic` the same workers run lock-step on one OS thread and
/// the result carries a replay hash over the node order and steal schedule.
[[nodiscard]] MipResult runParallelSearch(const lp::Model& model, const MilpSolver::Options& opt,
                                          std::optional<std::vector<double>> warm_start);

}  // namespace rfp::milp::detail
