// MILP presolve: iterated activity-based bound tightening and integer bound
// rounding, plus knapsack cover-cut separation.
//
// Commercial branch-and-cut solvers (the substrate the paper outsources to,
// DESIGN.md §3 substitution 1) owe much of their speed to root-node
// reductions. This module implements the two with the best effort/benefit
// ratio for big-M floorplanning models:
//
//  * Bound tightening — each row's minimal activity implies per-variable
//    bounds; iterated to a fixed point. Big-M rows become much tighter once
//    a few binaries are fixed, so this also runs per node cheaply on the
//    changed columns' rows.
//  * Cover cuts — for knapsack rows Σ a_j x_j ≤ b over binaries with
//    a_j > 0, a *cover* C (Σ_{j∈C} a_j > b) yields the valid inequality
//    Σ_{j∈C} x_j ≤ |C| − 1, often violated by LP points that round-trip
//    through big-M constraints.
#pragma once

#include <string>
#include <vector>

#include "lp/model.hpp"

namespace rfp::milp {

struct PresolveResult {
  bool infeasible = false;     ///< a row's minimal activity exceeds its rhs
  std::string detail;          ///< infeasibility description (when set)
  int tightened_bounds = 0;    ///< number of bound changes applied
  int rounds = 0;              ///< fixed-point iterations performed
};

/// Tightens `lb`/`ub` in place for `model`'s constraints. Integer variables'
/// bounds are rounded inward. Returns infeasible=true when some row cannot
/// be satisfied within the (tightened) bounds.
[[nodiscard]] PresolveResult tightenBounds(const lp::Model& model, std::vector<double>& lb,
                                           std::vector<double>& ub, int max_rounds = 10);

/// A separated cover cut: Σ_{j∈vars} x_j ≤ rhs.
struct CoverCut {
  std::vector<int> vars;
  double rhs = 0.0;
  double violation = 0.0;  ///< Σ x*_j − rhs at the separation point
};

/// Separates violated minimal-cover inequalities from knapsack-shaped rows
/// (≤ rows whose support is all-binary with positive coefficients) at the
/// fractional point `x`. Returns up to `max_cuts` cuts ordered by violation.
[[nodiscard]] std::vector<CoverCut> separateCoverCuts(const lp::Model& model,
                                                      std::span<const double> x,
                                                      int max_cuts = 16,
                                                      double min_violation = 1e-4);

}  // namespace rfp::milp
