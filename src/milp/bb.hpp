// Branch-and-bound MILP solver over the lp::Model API.
//
// This replaces the commercial branch-and-cut solver used by the paper
// (DESIGN.md §3). Features:
//  * LP relaxation via lp::LpSolver — the dense bounded-variable simplex on
//    small models, the sparse revised simplex (lp/sparse/) at scale,
//  * with the sparse engine, child nodes reoptimize from the parent node's
//    optimal basis instead of solving each relaxation cold (the tree solves
//    thousands of near-identical LPs; a warm solve is typically a handful
//    of pivots),
//  * hybrid node selection: best-bound with depth-first "plunging",
//  * most-fractional / pseudo-cost branching,
//  * rounding primal heuristic to find incumbents early,
//  * MIP-gap, node-limit and wall-clock termination,
//  * optional warm-start incumbent (used by the HO flow, Sec. II-A).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lp/lp_solver.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace rfp::telemetry {
struct Context;  // support/telemetry/trace.hpp
}

namespace rfp::milp {

enum class MipStatus {
  kOptimal,     ///< incumbent proven optimal (within gap tolerance)
  kFeasible,    ///< incumbent found, search truncated (time/node limit)
  kInfeasible,  ///< proven infeasible
  kNoSolution,  ///< search truncated before any incumbent was found
  kUnbounded,
};

[[nodiscard]] const char* toString(MipStatus s) noexcept;

/// Per-worker telemetry from the work-stealing parallel engine (one entry
/// per worker when Options::threads > 1; empty for sequential solves).
struct MipWorkerStats {
  int id = 0;
  long nodes = 0;         ///< nodes this worker expanded
  long steals = 0;        ///< successful steal operations it performed
  long stolen_nodes = 0;  ///< nodes acquired through those steals
  long lp_solves = 0;
  long lp_warm_hits = 0;      ///< node LPs that adopted a parent basis
  double idle_seconds = 0.0;  ///< time spent with an empty deque and no loot
};

struct MipResult {
  MipStatus status = MipStatus::kNoSolution;
  std::vector<double> x;       ///< incumbent (model variable order)
  double objective = 0.0;      ///< incumbent objective (minimization sense)
  double best_bound = -lp::kInfinity;  ///< proven dual bound
  double gap = lp::kInfinity;  ///< |obj - bound| / max(1, |obj|)
  long nodes = 0;
  long lp_iterations = 0;
  double seconds = 0.0;
  // LP substrate telemetry (surfaced through the driver's SolveResponse).
  lp::LpEngine lp_engine = lp::LpEngine::kDense;  ///< engine the relaxations used
  long lp_solves = 0;           ///< relaxations solved (root + nodes)
  long lp_warm_hits = 0;        ///< solves that adopted a parent basis
  long lp_refactorizations = 0; ///< sparse engine: total basis refactorizations
  // Pivot-class telemetry (sparse engine): how the node LPs were actually
  // reoptimized — dual fast-path pivots vs primal pivots vs pure bound
  // flips, and Forrest–Tomlin factor updates vs full refactorizations.
  long lp_primal_pivots = 0;    ///< basis changes made by the primal simplex
  long lp_dual_pivots = 0;      ///< basis changes made by the dual simplex
  long lp_bound_flips = 0;      ///< bound-to-bound moves without a basis change
  long lp_ft_updates = 0;       ///< Forrest–Tomlin factor updates applied
  long lp_dual_reopts = 0;      ///< node solves answered by the dual fast path
  // Hyper-sparse kernel telemetry: which path the triangular solves took,
  // and how many exact steepest-edge weight updates ran.
  long lp_ftran_sparse = 0;     ///< FTRANs through the graph-driven sparse path
  long lp_ftran_dense = 0;      ///< FTRANs through the dense sweep
  long lp_btran_sparse = 0;     ///< BTRANs through the graph-driven sparse path
  long lp_btran_dense = 0;      ///< BTRANs through the dense sweep
  long lp_dse_updates = 0;      ///< steepest-edge weight recurrence applications
  // Incumbent-exchange telemetry (zero without the callbacks below).
  long external_adoptions = 0;  ///< external incumbents adopted as the cutoff
  long cutoff_prunes = 0;       ///< nodes pruned against an external cutoff
  // Parallel-engine telemetry (empty/zero for sequential solves).
  std::vector<MipWorkerStats> workers;
  long steals = 0;  ///< successful steal operations across all workers
  /// Deterministic-replay digest over the node expansion order and steal
  /// schedule (Options::deterministic only; 0 otherwise). Two runs with the
  /// same options produce the same hash — the reproducibility contract.
  std::uint64_t replay_hash = 0;

  [[nodiscard]] bool hasSolution() const noexcept {
    return status == MipStatus::kOptimal || status == MipStatus::kFeasible;
  }
};

class MilpSolver {
 public:
  struct Options {
    double time_limit_seconds = 0.0;  ///< <= 0: none
    long node_limit = 0;              ///< <= 0: none
    double gap_tol = 1e-6;            ///< relative MIP gap for optimality
    double int_tol = 1e-6;            ///< integrality tolerance
    int plunge_depth = 64;            ///< DFS dives from each best-bound node
    bool enable_rounding_heuristic = true;
    bool enable_presolve = true;      ///< root bound tightening (presolve.hpp)
    bool enable_cover_cuts = true;    ///< root knapsack cover cuts
    int cut_rounds = 5;               ///< max root separation rounds
    bool pseudo_cost_branching = true;  ///< reliability-style var selection
    bool log_progress = false;
    /// In-solve parallelism: branch & bound workers over one tree. <= 1 runs
    /// the sequential engine. Workers own private node deques (and private
    /// dual reoptimizers) and steal half a victim's shallowest nodes when
    /// theirs drains; the incumbent is the shared pruning cutoff. Thread
    /// count changes which optimal solution is returned, never the final
    /// status or objective.
    int threads = 1;
    /// Deterministic replay (threads > 1): the same logical workers run
    /// lock-step on one OS thread in a fixed round-robin schedule, making
    /// node order, steal schedule and MipResult::replay_hash identical
    /// across runs. A testing mode — no wall-clock speedup.
    bool deterministic = false;
    /// Cooperative external cancellation: when non-null and set, the solve
    /// terminates at the next node boundary with a truncated status (an
    /// incumbent stays kFeasible, never kOptimal unless the gap closed).
    /// A run that ends with the flag set never claims kOptimal/kInfeasible:
    /// a cancelled run is not a proof. The pointee must outlive solve().
    /// Used by driver portfolios.
    std::atomic<bool>* stop = nullptr;
    /// Incumbent exchange (driver portfolios), phrased over encoded model
    /// points so the solver stays floorplan-agnostic — the fp layer wraps a
    /// SharedIncumbent with MilpFormulation encode/extract.
    ///
    /// `incumbent_poll` is called at node boundaries; when it returns a
    /// point that is integer-feasible for this model and beats the current
    /// incumbent objective, it is adopted as the cutoff (pruning every node
    /// whose relaxation bound cannot beat it). Cheap no-change polls are the
    /// wrapper's job (version-counter check).
    std::function<std::optional<std::vector<double>>()> incumbent_poll;
    /// Called with every improving incumbent the search itself finds
    /// (integral LP optima and rounding-heuristic hits).
    std::function<void(const std::vector<double>&)> incumbent_publish;
    /// LP substrate: engine selection (auto picks dense or sparse by model
    /// size), shared tolerances/limits, and sparse-engine knobs.
    lp::LpSolver::Options lp;
    /// Reoptimize child nodes from the parent's optimal basis (sparse
    /// engine only; the dense engine always solves cold). Off is only
    /// useful for A/B tests — results are identical either way. Warm node
    /// solves go through the dual simplex first (lp.dual_reopt) with the
    /// primal engine as fallback.
    bool lp_warm_start = true;
    /// Solve-scoped observability (support/telemetry): presolve/cut/root-LP
    /// spans, sampled dual-reopt vs primal-fallback instants, live node
    /// counters. Null keeps every instrumentation site branch-only.
    const telemetry::Context* telemetry = nullptr;
  };

  MilpSolver() = default;
  explicit MilpSolver(Options options) : options_(std::move(options)) {}

  /// Solves `model` to optimality (or until a limit hits). If `warm_start`
  /// is a feasible point it becomes the initial incumbent.
  [[nodiscard]] MipResult solve(const lp::Model& model,
                                std::optional<std::vector<double>> warm_start = {}) const;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

}  // namespace rfp::milp
