// Synthetic partial-bitstream model and relocation filter.
//
// The floorplanner's purpose (Sec. I) is to reserve areas between which
// partial bitstreams can be *relocated* by rewriting frame addresses and
// recomputing the CRC, as done by the REPLICA [2][3] and BiRF [4][5]
// filters. This module implements that flow end-to-end on synthetic
// bitstreams so the examples can demonstrate actual relocation between
// free-compatible areas found by the floorplanner (DESIGN.md §3
// substitution 5):
//
//  * a frame address identifies (tile column, clock-region row, minor frame)
//    — the Virtex-style hierarchical addressing;
//  * a tile of type t contributes frames(t) minor frames (36/30/28 for
//    CLB/BRAM/DSP, Sec. VI);
//  * frame payloads depend only on the tile *type* and minor index, never on
//    the position — the content of Definition .1's "same configuration
//    data"; relocation therefore only needs address rewriting;
//  * a CRC-32 over addresses and payloads seals the bitstream; the filter
//    recomputes it after rewriting, exactly as described in Sec. I.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/device.hpp"

namespace rfp::bitstream {

/// Words per configuration frame (Virtex-5 frames are 41 32-bit words).
inline constexpr int kFrameWords = 41;

struct FrameAddress {
  int column = 0;  ///< tile column on the device
  int row = 0;     ///< clock-region row (tile row)
  int minor = 0;   ///< minor frame index within the tile column segment

  /// Packed 32-bit form (12-bit column, 8-bit row, 12-bit minor).
  [[nodiscard]] std::uint32_t packed() const noexcept {
    return (static_cast<std::uint32_t>(column & 0xfff) << 20) |
           (static_cast<std::uint32_t>(row & 0xff) << 12) |
           static_cast<std::uint32_t>(minor & 0xfff);
  }
  static FrameAddress unpack(std::uint32_t v) noexcept {
    return FrameAddress{static_cast<int>(v >> 20) & 0xfff, static_cast<int>(v >> 12) & 0xff,
                        static_cast<int>(v) & 0xfff};
  }
  friend bool operator==(const FrameAddress&, const FrameAddress&) = default;
};

struct Frame {
  FrameAddress address;
  std::vector<std::uint32_t> words;  ///< kFrameWords payload words
};

struct PartialBitstream {
  std::string device;     ///< device name the bitstream targets
  device::Rect area;      ///< region the configuration covers
  std::vector<Frame> frames;
  std::uint32_t crc = 0;  ///< CRC-32 over addresses + payloads
};

/// Standard CRC-32 (IEEE 802.3 polynomial, reflected).
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                                  std::uint32_t seed = 0xffffffffu);

/// CRC over the bitstream's frames (addresses then payload words, little
/// endian), as the configuration engine would accumulate it.
[[nodiscard]] std::uint32_t computeCrc(const PartialBitstream& bs);

/// Generates the synthetic partial bitstream configuring `area` on `dev`.
/// `design_seed` distinguishes different module implementations.
[[nodiscard]] PartialBitstream generateBitstream(const device::Device& dev,
                                                 const device::Rect& area,
                                                 std::uint64_t design_seed);

/// Validation: addresses inside `area`, per-tile minor-frame counts matching
/// the tile types, CRC intact. Returns "" or a violation description.
[[nodiscard]] std::string verifyBitstream(const device::Device& dev,
                                          const PartialBitstream& bs);

/// The relocation filter: moves `bs` from its current area to `target`.
/// Requires the two areas to be compatible (Definition .1) — throws
/// rfp::CheckError otherwise. Rewrites every frame address by the column/row
/// delta and recomputes the CRC; payloads are untouched.
[[nodiscard]] PartialBitstream relocateBitstream(const device::Device& dev,
                                                 const PartialBitstream& bs,
                                                 const device::Rect& target);

}  // namespace rfp::bitstream
