#include "bitstream/bitstream.hpp"

#include <array>
#include <sstream>

#include "partition/compatibility.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rfp::bitstream {

namespace {

const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void crcWord(std::uint32_t& crc, std::uint32_t word) {
  for (int b = 0; b < 4; ++b) {
    const std::uint8_t byte = static_cast<std::uint8_t>(word >> (8 * b));
    crc = crcTable()[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size, std::uint32_t seed) {
  std::uint32_t crc = seed;
  for (std::size_t i = 0; i < size; ++i)
    crc = crcTable()[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

std::uint32_t computeCrc(const PartialBitstream& bs) {
  std::uint32_t crc = 0xffffffffu;
  for (const Frame& f : bs.frames) {
    crcWord(crc, f.address.packed());
    for (const std::uint32_t w : f.words) crcWord(crc, w);
  }
  return crc ^ 0xffffffffu;
}

PartialBitstream generateBitstream(const device::Device& dev, const device::Rect& area,
                                   std::uint64_t design_seed) {
  RFP_CHECK_MSG(dev.bounds().containsRect(area),
                "bitstream area " << area.toString() << " outside device");
  PartialBitstream bs;
  bs.device = dev.name();
  bs.area = area;
  for (int x = area.x; x < area.x2(); ++x) {
    for (int y = area.y; y < area.y2(); ++y) {
      const int type = dev.typeAt(x, y);
      const int frames = dev.tileType(type).frames;
      for (int minor = 0; minor < frames; ++minor) {
        Frame f;
        f.address = FrameAddress{x, y, minor};
        // Payload depends on (design, tile type, relative position within
        // the area, minor) — *not* on the absolute location, so the same
        // configuration data works at any compatible placement (Def. .1).
        Rng rng(design_seed ^ (static_cast<std::uint64_t>(type) << 48) ^
                (static_cast<std::uint64_t>(x - area.x) << 32) ^
                (static_cast<std::uint64_t>(y - area.y) << 16) ^
                static_cast<std::uint64_t>(minor));
        f.words.reserve(kFrameWords);
        for (int wi = 0; wi < kFrameWords; ++wi)
          f.words.push_back(static_cast<std::uint32_t>(rng.nextU64()));
        bs.frames.push_back(std::move(f));
      }
    }
  }
  bs.crc = computeCrc(bs);
  return bs;
}

std::string verifyBitstream(const device::Device& dev, const PartialBitstream& bs) {
  std::ostringstream os;
  if (bs.device != dev.name()) return "bitstream targets device '" + bs.device + "'";
  if (!dev.bounds().containsRect(bs.area)) return "bitstream area outside device";
  // Expected frame count per tile.
  long expected = 0;
  for (int x = bs.area.x; x < bs.area.x2(); ++x)
    for (int y = bs.area.y; y < bs.area.y2(); ++y)
      expected += dev.tileType(dev.typeAt(x, y)).frames;
  if (static_cast<long>(bs.frames.size()) != expected) {
    os << "frame count " << bs.frames.size() << " != expected " << expected;
    return os.str();
  }
  for (const Frame& f : bs.frames) {
    if (!bs.area.contains(f.address.column, f.address.row))
      return "frame address outside bitstream area";
    const int type = dev.typeAt(f.address.column, f.address.row);
    if (f.address.minor < 0 || f.address.minor >= dev.tileType(type).frames)
      return "minor frame index out of range for tile type";
    if (static_cast<int>(f.words.size()) != kFrameWords) return "bad frame payload size";
  }
  if (computeCrc(bs) != bs.crc) return "CRC mismatch";
  return "";
}

PartialBitstream relocateBitstream(const device::Device& dev, const PartialBitstream& bs,
                                   const device::Rect& target) {
  RFP_CHECK_MSG(partition::areCompatible(dev, bs.area, target),
                "relocation target " << target.toString() << " is not compatible with "
                                     << bs.area.toString());
  PartialBitstream out = bs;
  out.area = target;
  const int dx = target.x - bs.area.x;
  const int dy = target.y - bs.area.y;
  for (Frame& f : out.frames) {
    f.address.column += dx;
    f.address.row += dy;
  }
  out.crc = computeCrc(out);  // the filter's CRC recomputation step (Sec. I)
  return out;
}

}  // namespace rfp::bitstream
