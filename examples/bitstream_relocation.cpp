// Demonstrates the full relocation flow the floorplanner enables (Sec. I):
// floorplan with reserved free-compatible areas, generate a partial
// bitstream for a region, relocate it into each reserved area by frame-
// address rewriting + CRC recomputation (the REPLICA/BiRF filter flow).
#include <cstdio>

#include "bitstream/bitstream.hpp"
#include "device/builders.hpp"
#include "model/floorplan.hpp"
#include "search/solver.hpp"

int main() {
  using namespace rfp;
  const device::Device dev = device::virtex5FX70T();

  model::FloorplanProblem p = model::makeSdrProblem(dev);
  model::addSdrRelocations(p, 2);  // SDR2: 2 FC areas per relocatable region

  search::SearchOptions opt;
  opt.num_threads = 8;
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(p);
  if (!res.hasSolution()) {
    std::printf("floorplanning failed\n");
    return 1;
  }
  std::printf("floorplan: waste=%ld, %d free-compatible areas reserved\n\n",
              res.costs.wasted_frames, res.plan.placedFcCount());

  for (int n = 0; n < p.numRegions(); ++n) {
    const device::Rect& src = res.plan.regions[static_cast<std::size_t>(n)];
    bool has_fc = false;
    for (const model::FcArea& a : res.plan.fc_areas) has_fc = has_fc || (a.region == n && a.placed);
    if (!has_fc) continue;

    const bitstream::PartialBitstream bs =
        bitstream::generateBitstream(dev, src, /*design_seed=*/0xD00D + n);
    std::printf("%-18s at %-20s  %4zu frames, crc=%08x\n", p.region(n).name.c_str(),
                src.toString().c_str(), bs.frames.size(), bs.crc);

    for (const model::FcArea& a : res.plan.fc_areas) {
      if (a.region != n || !a.placed) continue;
      const bitstream::PartialBitstream moved = bitstream::relocateBitstream(dev, bs, a.rect);
      const std::string verdict = bitstream::verifyBitstream(dev, moved);
      std::printf("  -> relocated to %-20s crc=%08x  verify: %s\n",
                  a.rect.toString().c_str(), moved.crc,
                  verdict.empty() ? "OK" : verdict.c_str());
      // Round trip back to the original placement restores the exact CRC.
      const bitstream::PartialBitstream back = bitstream::relocateBitstream(dev, moved, src);
      if (back.crc != bs.crc) {
        std::printf("  !! round-trip mismatch\n");
        return 1;
      }
    }
  }
  std::printf("\nall relocations verified; round trips lossless\n");
  return 0;
}
