// Relocation as a *metrics* (Sec. V): instead of hard constraints, each
// requested free-compatible area carries a weight cw_c; unsatisfied requests
// cost q4·cw_c/RLmax in the Eq. 14 objective. This example sweeps q4 and
// shows the solver trading wasted frames against relocation opportunities.
#include <cstdio>

#include "device/builders.hpp"
#include "model/floorplan.hpp"
#include "search/solver.hpp"

int main() {
  using namespace rfp;
  const device::Device dev = device::virtex5FX70T();

  std::printf("Relocation as a metrics on the SDR design (Sec. V, Eq. 13-14)\n");
  std::printf("Requesting 3 soft FC areas for every region (including the\n");
  std::printf("non-relocatable matched filter and video decoder).\n\n");
  std::printf("%6s | %8s | %12s | %10s\n", "q4", "fc areas", "wasted", "RLcost");
  std::printf("-------+----------+--------------+-----------\n");

  for (const double q4 : {0.0, 0.1, 0.5, 1.0, 4.0}) {
    model::FloorplanProblem p = model::makeSdrProblem(dev);
    for (int n = 0; n < p.numRegions(); ++n)
      p.addRelocation(model::RelocationRequest{n, 3, /*hard=*/false, 1.0});
    p.setWeights(model::ObjectiveWeights{/*q1 WL*/ 0.05, /*q2 P*/ 0.0,
                                         /*q3 R*/ 1.0, /*q4 RL*/ q4});
    p.setLexicographic(false);

    search::SearchOptions opt;
    opt.mode = search::ObjectiveMode::kWeighted;
    opt.num_threads = 8;
    opt.time_limit_seconds = 20;
    // Bound the per-region waste explored: q3 dominates well before this,
    // so the restriction does not change the optimum, only the search size.
    opt.waste_budget = 1500;
    const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(p);
    if (!res.hasSolution()) {
      std::printf("%6.2f | (no solution: %s)\n", q4, search::toString(res.status));
      continue;
    }
    std::printf("%6.2f | %4d /15 | %12ld | %10.2f\n", q4, res.plan.placedFcCount(),
                res.costs.wasted_frames, res.costs.relocation);
  }
  std::printf("\nHigher q4 buys more relocation opportunities; the matched filter\n");
  std::printf("and video decoder requests stay unmet at any weight (their areas\n");
  std::printf("are geometrically impossible — the Sec. VI feasibility result).\n");
  return 0;
}
