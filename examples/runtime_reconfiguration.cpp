// Runtime reconfiguration on top of a relocation-aware floorplan.
//
// The paper's motivation (Sec. I): reserving free-compatible areas at
// floorplanning time lets a runtime *relocate* partial bitstreams — one
// stored bitstream per module mode instead of one per mode and location.
// This example floorplans the SDR2 instance (Sec. VI), then drives a
// migration-heavy mode-switch schedule through the reconfiguration
// simulator under both storage policies and compares:
//   * bitstream store footprint (the design-reuse benefit), and
//   * per-switch latency (the relocation filter's runtime cost).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/runtime_reconfiguration
#include <cstdio>
#include <vector>

#include "device/builders.hpp"
#include "model/problem.hpp"
#include "reconfig/reconfig.hpp"
#include "search/solver.hpp"

int main() {
  using namespace rfp;

  // 1. Floorplan SDR2: two free-compatible areas per relocatable region.
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  search::SearchOptions sopt;
  sopt.num_threads = 8;
  const search::SearchResult sol = search::ColumnarSearchSolver(sopt).solve(sdr2);
  if (!sol.hasSolution()) {
    std::printf("floorplanning failed: %s\n", search::toString(sol.status));
    return 1;
  }
  std::printf("SDR2 floorplan: %d free-compatible areas, %ld wasted frames\n\n",
              sol.plan.placedFcCount(), sol.costs.wasted_frames);

  // 2. A schedule: each relocatable module cycles its two modes across its
  //    home area and both FC areas (task migration), 60 switches total.
  const std::vector<int> relocatable{model::kCarrierRecovery, model::kDemodulator,
                                     model::kSignalDecoder};
  std::vector<reconfig::SwitchRequest> schedule;
  double t = 0.0;
  for (int round = 0; round < 10; ++round)
    for (const int region : relocatable)
      for (int target = 0; target < 2; ++target)
        schedule.push_back(reconfig::SwitchRequest{
            t += 25.0, region, (round + target) % 2 ? "demod_qpsk" : "demod_bpsk",
            (round + target) % 3});

  // 3. Run under both storage policies.
  for (const reconfig::StorePolicy policy :
       {reconfig::StorePolicy::kRelocationAware, reconfig::StorePolicy::kPerLocation}) {
    reconfig::ReconfigSimulator sim(sdr2, sol.plan, policy);
    for (const int region : relocatable)
      sim.registerModes(region,
                        {reconfig::ModuleMode{"demod_bpsk", 0xB00 + static_cast<unsigned>(region)},
                         reconfig::ModuleMode{"demod_qpsk", 0xC00 + static_cast<unsigned>(region)}});

    const reconfig::SimulationResult res = sim.run(schedule);
    std::printf("policy %-17s : %ld bitstreams, %8.1f KiB stored\n",
                reconfig::toString(policy), sim.store().bitstreamCount(),
                static_cast<double>(sim.store().totalBytes()) / 1024.0);
    std::printf("  switches=%ld relocations=%ld  icap=%.1fus filter=%.1fus  makespan=%.1fus\n",
                res.stats.switches, res.stats.relocations, res.stats.total_icap_us,
                res.stats.total_filter_us, res.stats.makespan_us);
    double worst = 0;
    for (const reconfig::SwitchRecord& r : res.records)
      worst = worst > (r.ready_us - r.start_us) ? worst : (r.ready_us - r.start_us);
    std::printf("  worst single-switch latency: %.2f us\n\n", worst);
  }

  std::printf(
      "expected: relocation-aware stores 3x fewer bitstreams (one per mode\n"
      "instead of one per mode x 3 targets) at a small per-switch filter cost.\n");
  return 0;
}
