// Quickstart: describe a device, ask for a floorplan with one relocatable
// region, print the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "device/parser.hpp"
#include "model/floorplan.hpp"
#include "model/problem.hpp"
#include "render/render.hpp"
#include "search/solver.hpp"

int main() {
  using namespace rfp;

  // 1. Describe the device in the text format (or use device::virtex5FX70T()).
  const device::Device dev = device::parseDevice(R"(
device quickstart-device
rows 6
tiletype C CLB  frames=36 CLB=20
tiletype B BRAM frames=30 BRAM36=4
tiletype D DSP  frames=28 DSP48E=8
columns CCBCCDCCCBCC
forbidden 8 4 2 2 hardblock
)");
  std::printf("Device '%s' (%dx%d tiles):\n%s\n", dev.name().c_str(), dev.width(),
              dev.height(), render::asciiDevice(dev).c_str());

  // 2. Define the floorplanning problem: two regions connected by a bus;
  //    region "filter" must have one free-compatible area reserved so its
  //    bitstream can be relocated at run time (Sec. IV of the paper).
  model::FloorplanProblem problem(&dev);
  const int filter = problem.addRegion(model::RegionSpec{"filter", {4, 0, 1}});
  problem.addRegion(model::RegionSpec{"decoder", {6, 1, 0}});
  problem.addNet(model::Net{{0, 1}, 32.0, "bus"});
  problem.addRelocation(model::RelocationRequest{filter, 1, /*hard=*/true, 1.0});

  // 3. Solve exactly: minimize wasted frames, then wire length.
  search::SearchOptions options;
  options.num_threads = 4;
  const search::SearchResult result = search::ColumnarSearchSolver(options).solve(problem);
  if (!result.hasSolution()) {
    std::printf("no feasible floorplan: %s\n", search::toString(result.status));
    return 1;
  }

  // 4. Inspect and independently verify the result.
  std::printf("status=%s wasted_frames=%ld wire_length=%.1f (%.3fs, %ld nodes)\n\n",
              search::toString(result.status), result.costs.wasted_frames,
              result.costs.wire_length, result.seconds, result.nodes);
  std::printf("%s\n", render::ascii(problem, result.plan).c_str());
  const std::string check_error = model::check(problem, result.plan);
  std::printf("independent checker: %s\n", check_error.empty() ? "OK" : check_error.c_str());
  return check_error.empty() ? 0 : 1;
}
