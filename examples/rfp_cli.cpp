// rfp_cli — command-line floorplanner driver.
//
// Lets downstream users run the relocation-aware floorplanner on their own
// device and problem descriptions (text formats of device/parser.hpp and
// io/problem_text.hpp) without writing C++.
//
//   rfp_cli devices
//       List the built-in device catalog.
//   rfp_cli show <device>
//       Print a device (catalog name or description file) and its columnar
//       partitioning.
//   rfp_cli solve <device> <problem-file> [options]
//       Floorplan the problem. Options:
//         --algo search|o|ho     solver (default: search, the exact solver)
//         --threads N            search parallelism (default 4)
//         --time-limit S         wall-clock limit per solve/stage
//         --svg FILE             write the floorplan as SVG
//         --json FILE            write the floorplan + costs as JSON
//   rfp_cli feasibility <device> <problem-file>
//       Per-region relocatability analysis (Sec. VI of the paper).
//
// Example:
//   ./build/examples/rfp_cli devices
//   ./build/examples/rfp_cli show xc5vfx70t
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "device/catalog.hpp"
#include "device/parser.hpp"
#include "fp/milp_floorplanner.hpp"
#include "io/problem_text.hpp"
#include "io/results.hpp"
#include "model/floorplan.hpp"
#include "partition/columnar.hpp"
#include "render/render.hpp"
#include "search/solver.hpp"

namespace {

using namespace rfp;

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    std::exit(2);
  }
  out << content;
}

/// Catalog name first, description file second.
device::Device loadDevice(const std::string& spec) {
  if (const auto dev = device::buildByName(spec)) return *dev;
  return device::parseDevice(readFile(spec));
}

int cmdDevices() {
  std::printf("%-12s %-9s %s\n", "name", "family", "description");
  for (const device::CatalogEntry& e : device::catalog())
    std::printf("%-12s %-9s %s\n", e.name.c_str(), e.family.c_str(), e.description.c_str());
  return 0;
}

int cmdShow(const std::string& spec) {
  const device::Device dev = loadDevice(spec);
  std::printf("%s", render::asciiDevice(dev).c_str());
  const auto part = partition::columnarPartition(dev);
  if (!part) {
    std::printf("\ndevice is NOT columnar-partitionable (Sec. III-B step 4 failed)\n");
    return 1;
  }
  std::printf("\ncolumnar partitioning: |P| = %zu portions, |A| = %zu forbidden areas\n",
              part->portions.size(), part->forbidden.size());
  for (const partition::Portion& p : part->portions)
    std::printf("  portion %2d: columns [%d, %d)  type %s\n", p.id, p.x, p.x2(),
                dev.tileType(p.type).name.c_str());
  return 0;
}

struct SolveArgs {
  std::string algo = "search";
  int threads = 4;
  double time_limit = 0.0;
  std::string svg_path;
  std::string json_path;
};

int cmdSolve(const std::string& device_spec, const std::string& problem_path,
             const SolveArgs& args) {
  const device::Device dev = loadDevice(device_spec);
  const model::FloorplanProblem problem = io::parseProblem(readFile(problem_path), dev);

  model::Floorplan plan;
  std::string status;
  if (args.algo == "search") {
    search::SearchOptions opt;
    opt.num_threads = args.threads;
    opt.time_limit_seconds = args.time_limit;
    if (!problem.lexicographic()) opt.mode = search::ObjectiveMode::kWeighted;
    const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(problem);
    status = search::toString(res.status);
    if (!res.hasSolution()) {
      std::printf("no solution: %s\n", status.c_str());
      return 1;
    }
    plan = res.plan;
    std::printf("solver=search status=%s nodes=%ld time=%.2fs\n", status.c_str(), res.nodes,
                res.seconds);
  } else if (args.algo == "o" || args.algo == "ho") {
    fp::MilpFloorplannerOptions opt;
    opt.algorithm = args.algo == "o" ? fp::Algorithm::kO : fp::Algorithm::kHO;
    opt.lexicographic = problem.lexicographic();
    opt.milp.time_limit_seconds = args.time_limit > 0 ? args.time_limit : 60.0;
    const fp::FpResult res = fp::MilpFloorplanner(opt).solve(problem);
    status = fp::toString(res.status);
    if (!res.hasSolution()) {
      std::printf("no solution: %s (%s)\n", status.c_str(), res.detail.c_str());
      return 1;
    }
    plan = res.plan;
    std::printf("solver=%s status=%s nodes=%ld time=%.2fs\n", args.algo.c_str(),
                status.c_str(), res.nodes, res.seconds);
  } else {
    std::fprintf(stderr, "error: unknown --algo '%s'\n", args.algo.c_str());
    return 2;
  }

  const std::string check = model::check(problem, plan);
  if (!check.empty()) {
    std::fprintf(stderr, "internal error: checker rejected the solution: %s\n", check.c_str());
    return 3;
  }
  const model::FloorplanCosts costs = model::evaluate(problem, plan);
  std::printf("wasted_frames=%ld wire_length=%.1f fc_areas=%d/%d\n\n", costs.wasted_frames,
              costs.wire_length, plan.placedFcCount(), problem.totalFcAreas());
  std::printf("%s", render::ascii(problem, plan).c_str());

  if (!args.svg_path.empty()) writeFile(args.svg_path, render::svg(problem, plan));
  if (!args.json_path.empty()) writeFile(args.json_path, io::floorplanToJson(problem, plan));
  return 0;
}

int cmdFeasibility(const std::string& device_spec, const std::string& problem_path,
                   int threads) {
  const device::Device dev = loadDevice(device_spec);
  const model::FloorplanProblem problem = io::parseProblem(readFile(problem_path), dev);
  search::SearchOptions opt;
  opt.num_threads = threads;
  const std::vector<bool> reloc =
      search::ColumnarSearchSolver(opt).feasibilityAnalysis(problem);
  std::printf("%-24s relocatable?\n", "region");
  for (int n = 0; n < problem.numRegions(); ++n)
    std::printf("%-24s %s\n", problem.region(n).name.c_str(),
                reloc[static_cast<std::size_t>(n)] ? "yes" : "no");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rfp_cli devices\n"
               "  rfp_cli show <device>\n"
               "  rfp_cli solve <device> <problem-file> [--algo search|o|ho] [--threads N]\n"
               "                [--time-limit S] [--svg FILE] [--json FILE]\n"
               "  rfp_cli feasibility <device> <problem-file> [--threads N]\n"
               "<device> is a catalog name (see 'devices') or a description file.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "devices") return cmdDevices();
    if (cmd == "show" && argc >= 3) return cmdShow(argv[2]);
    if ((cmd == "solve" || cmd == "feasibility") && argc >= 4) {
      SolveArgs args;
      for (int i = 4; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
            std::exit(2);
          }
          return argv[++i];
        };
        if (flag == "--algo")
          args.algo = next();
        else if (flag == "--threads")
          args.threads = std::stoi(next());
        else if (flag == "--time-limit")
          args.time_limit = std::stod(next());
        else if (flag == "--svg")
          args.svg_path = next();
        else if (flag == "--json")
          args.json_path = next();
        else
          return usage();
      }
      return cmd == "solve" ? cmdSolve(argv[2], argv[3], args)
                            : cmdFeasibility(argv[2], argv[3], args.threads);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
