// rfp_cli — command-line floorplanner driver.
//
// Lets downstream users run the relocation-aware floorplanner on their own
// device and problem descriptions (text formats of device/parser.hpp and
// io/problem_text.hpp) without writing C++.
//
//   rfp_cli devices
//       List the built-in device catalog.
//   rfp_cli show <device>
//       Print a device (catalog name or description file) and its columnar
//       partitioning.
//   rfp_cli solve <device> <problem-file> [options]
//       Floorplan the problem through the rfp::driver dispatch. Options:
//         --algo NAME            backend: search (default, exact), milp-o,
//                                milp-ho, heuristic, annealer — or
//                                "portfolio" to run them cooperatively
//                                (shared incumbents, staged deadlines) and
//                                keep the best/proven result
//         --threads N            in-solve parallelism: work-stealing B&B
//                                workers inside the exact search and MILP
//                                backends (default 4)
//         --thread-budget N      shared cap across all parallelism (pool ×
//                                in-solve workers never exceeds N; 0 = none)
//         --time-limit S         wall-clock deadline for the whole solve
//         --stage1-fraction F    portfolio: fraction of the deadline granted
//                                to the incomplete engines before the
//                                provers inherit the rest (default 0.25;
//                                0 = flat race)
//         --no-exchange          portfolio: disable the shared-incumbent
//                                channel (blind race, for A/B comparisons)
//         --cache-size N         result-cache capacity in entries
//                                (default 128); the cache serves repeated
//                                problems without re-solving and seeds
//                                re-solves under changed budgets
//         --no-cache             disable the result cache
//         --svg FILE             write the floorplan as SVG
//         --json FILE            write the solve response + floorplan as JSON
//         --trace FILE           record a solve timeline (spans for every
//                                engine stage, LP reopts, steals, incumbent
//                                traffic) and write it as Chrome trace-event
//                                JSON — load it at https://ui.perfetto.dev
//         --metrics              print the solve's flat metrics map and the
//                                live registry counters after the solve
//         --progress S           log a progress line (nodes / LP solves /
//                                steals) every S seconds while solving
//         --log-file FILE        append rfp::log output to FILE instead of
//                                stderr (the RFP_LOG_LEVEL environment
//                                variable still selects the level)
//   rfp_cli emit-problem <device> [fc-per-region]
//       Write the built-in SDR case-study problem for <device> to stdout in
//       the io/problem_text format (fc-per-region > 0 adds the paper's
//       relocation requests) — e.g. the SDR2 instance CI traces:
//         rfp_cli emit-problem xc5vfx70t 2 > sdr2.problem
//   rfp_cli feasibility <device> <problem-file>
//       Per-region relocatability analysis (Sec. VI of the paper).
//
// Example:
//   ./build/examples/rfp_cli devices
//   ./build/examples/rfp_cli show xc5vfx70t
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "device/catalog.hpp"
#include "device/parser.hpp"
#include "driver/cache.hpp"
#include "driver/driver.hpp"
#include "driver/response_json.hpp"
#include "io/problem_text.hpp"
#include "io/results.hpp"
#include "model/floorplan.hpp"
#include "partition/columnar.hpp"
#include "render/render.hpp"
#include "search/solver.hpp"
#include "support/log.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/trace.hpp"

namespace {

using namespace rfp;

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    std::exit(2);
  }
  out << content;
}

/// Catalog name first, description file second.
device::Device loadDevice(const std::string& spec) {
  if (const auto dev = device::buildByName(spec)) return *dev;
  return device::parseDevice(readFile(spec));
}

int cmdDevices() {
  std::printf("%-12s %-9s %s\n", "name", "family", "description");
  for (const device::CatalogEntry& e : device::catalog())
    std::printf("%-12s %-9s %s\n", e.name.c_str(), e.family.c_str(), e.description.c_str());
  return 0;
}

int cmdShow(const std::string& spec) {
  const device::Device dev = loadDevice(spec);
  std::printf("%s", render::asciiDevice(dev).c_str());
  const auto part = partition::columnarPartition(dev);
  if (!part) {
    std::printf("\ndevice is NOT columnar-partitionable (Sec. III-B step 4 failed)\n");
    return 1;
  }
  std::printf("\ncolumnar partitioning: |P| = %zu portions, |A| = %zu forbidden areas\n",
              part->portions.size(), part->forbidden.size());
  for (const partition::Portion& p : part->portions)
    std::printf("  portion %2d: columns [%d, %d)  type %s\n", p.id, p.x, p.x2(),
                dev.tileType(p.type).name.c_str());
  return 0;
}

struct SolveArgs {
  std::string algo = "search";
  int threads = 4;
  int thread_budget = 0;
  double time_limit = 0.0;
  double stage1_fraction = 0.25;
  bool incumbent_exchange = true;
  std::size_t cache_entries = 128;
  bool use_cache = true;
  std::string svg_path;
  std::string json_path;
  std::string trace_path;
  bool print_metrics = false;
  double progress_seconds = 0.0;
};

int cmdSolve(const std::string& device_spec, const std::string& problem_path,
             const SolveArgs& args) {
  const device::Device dev = loadDevice(device_spec);
  const model::FloorplanProblem problem = io::parseProblem(readFile(problem_path), dev);

  // Solve-scoped observability: one registry + recorder shared by every
  // engine (and every portfolio member) this solve dispatches.
  telemetry::MetricsRegistry registry;
  telemetry::TraceRecorder recorder;
  telemetry::Context ctx;
  const bool observe =
      !args.trace_path.empty() || args.print_metrics || args.progress_seconds > 0;
  if (observe) {
    ctx.metrics = &registry;
    if (!args.trace_path.empty()) ctx.trace = &recorder;
  }

  driver::SolveRequest request;
  if (observe) request.telemetry = &ctx;
  request.progress_interval_seconds = args.progress_seconds;
  request.num_threads = args.threads;
  request.deadline_seconds = args.time_limit;
  request.incumbent_exchange = args.incumbent_exchange;
  request.staged_deadlines = args.stage1_fraction > 0;
  request.stage1_fraction = args.stage1_fraction;
  request.use_cache = args.use_cache;
  // The MILP stages are open-ended without a budget; keep the CLI snappy.
  if (args.time_limit <= 0) request.milp.time_limit_seconds = 60.0;

  driver::DriverOptions dopt;
  dopt.cache_entries = args.use_cache ? args.cache_entries : 0;
  dopt.thread_budget = args.thread_budget;
  const driver::Driver drv(dopt);
  driver::SolveResponse res;
  if (args.algo == "portfolio") {
    res = drv.solvePortfolio(problem, request);
  } else {
    const std::optional<driver::Backend> backend = driver::backendFromString(args.algo);
    if (!backend) {
      std::fprintf(stderr, "error: unknown --algo '%s'\n", args.algo.c_str());
      return 2;
    }
    request.backend = *backend;
    res = drv.solve(problem, request);
  }

  // Validate before any artifact is written: a checker-rejected plan must
  // not leave behind a JSON file claiming success.
  if (res.hasSolution()) {
    const std::string check = model::check(problem, res.plan);
    if (!check.empty()) {
      std::fprintf(stderr, "internal error: checker rejected the solution: %s\n", check.c_str());
      return 3;
    }
  }
  if (!args.json_path.empty())
    writeFile(args.json_path, driver::solveResponseToJson(problem, res));
  if (!args.trace_path.empty()) {
    // Self-check the emitted JSON against the trace-event schema before
    // handing it to the user: a malformed file that Perfetto rejects later
    // is much harder to diagnose than a failure here.
    const std::string trace = recorder.toChromeJson();
    const telemetry::TraceSummary sum = telemetry::validateChromeTrace(trace);
    if (!sum.ok) {
      std::fprintf(stderr, "internal error: emitted trace failed validation: %s\n",
                   sum.error.c_str());
      return 3;
    }
    writeFile(args.trace_path, trace);
    std::printf("trace: %s events=%ld categories=%zu dropped=%ld "
                "(load at https://ui.perfetto.dev)\n",
                args.trace_path.c_str(), sum.events, sum.categories.size(), recorder.dropped());
  }
  if (args.print_metrics) {
    std::printf("metrics (solve response):\n");
    for (const auto& [name, value] : res.metrics)
      std::printf("  %-28s %.6g\n", name.c_str(), value);
    std::printf("metrics (live registry):\n");
    for (const auto& [name, value] : registry.flatten())
      std::printf("  %-28s %.6g\n", name.c_str(), value);
  }
  if (!res.hasSolution()) {
    std::printf("no solution: %s (%s)\n", driver::toString(res.status), res.detail.c_str());
    return 1;
  }
  std::printf("solver=%s status=%s nodes=%ld time=%.2fs\n", driver::toString(res.backend),
              driver::toString(res.status), res.nodes, res.seconds);
  if (res.lp.solves > 0) {
    std::printf("lp: engine=%s solves=%ld iterations=%ld refactorizations=%ld "
                "warm-start-hit-rate=%.2f\n",
                res.lp.engine.c_str(), res.lp.solves, res.lp.iterations,
                res.lp.refactorizations, res.lp.warmStartHitRate());
    std::printf("lp: pivots primal=%ld dual=%ld bound-flips=%ld ft-updates=%ld "
                "dual-reopt-rate=%.2f\n",
                res.lp.primal_pivots, res.lp.dual_pivots, res.lp.bound_flips,
                res.lp.ft_updates, res.lp.dualReoptRate());
    std::printf("lp: kernel ftran=%ld/%ld btran=%ld/%ld (sparse/dense) "
                "sparse-rate=%.2f dse-updates=%ld\n",
                res.lp.ftran_sparse, res.lp.ftran_dense, res.lp.btran_sparse,
                res.lp.btran_dense, res.lp.sparseSolveRate(), res.lp.dse_updates);
  }
  if (!res.workers.empty()) {
    std::printf("parallel: workers=%zu steals=%ld\n", res.workers.size(), res.steals);
    for (const driver::SolveWorkerStats& s : res.workers)
      std::printf("  worker %2d: nodes=%ld steals=%ld stolen=%ld idle=%.2fs\n", s.id, s.nodes,
                  s.steals, s.stolen, s.idle_seconds);
  }
  if (res.incumbent.publishes > 0 || res.incumbent.staged) {
    std::printf("incumbent: source=%s publishes=%ld adoptions=%ld cutoff-prunes=%ld%s",
                res.incumbent.source.c_str(), res.incumbent.publishes,
                res.incumbent.adoptions, res.incumbent.cutoff_prunes,
                res.incumbent.staged ? "" : "\n");
    if (res.incumbent.staged)
      std::printf(" staged stage1=%.2fs%s\n", res.incumbent.stage1_seconds,
                  res.incumbent.stage1_ended_early ? " (ended early: channel quiet)" : "");
  }
  // Portfolio racing never consults the cache; a stats line there would
  // only suggest caching was attempted and failed.
  if (drv.cache() && args.algo != "portfolio") {
    const driver::CacheStats cs = drv.cacheStats();
    std::printf("cache: hits=%ld misses=%ld evictions=%ld seeded-incumbents=%ld%s\n", cs.hits,
                cs.misses, cs.evictions, cs.seeded_incumbents,
                res.cache_hit ? " [this solve: hit]"
                              : (res.cache_seeded ? " [this solve: seeded]" : ""));
  }
  for (const driver::PortfolioMemberStats& m : res.members)
    std::printf("member: %-9s stage=%d status=%-11s nodes=%ld time=%.2fs published=%ld "
                "adopted=%ld cutoff-prunes=%ld\n",
                driver::toString(m.backend), m.stage, driver::toString(m.status), m.nodes,
                m.seconds, m.published, m.adopted, m.cutoff_prunes);
  std::printf("wasted_frames=%ld wire_length=%.1f fc_areas=%d/%d\n\n", res.costs.wasted_frames,
              res.costs.wire_length, res.plan.placedFcCount(), problem.totalFcAreas());
  std::printf("%s", render::ascii(problem, res.plan).c_str());

  if (!args.svg_path.empty()) writeFile(args.svg_path, render::svg(problem, res.plan));
  return 0;
}

int cmdEmitProblem(const std::string& device_spec, int fc_per_region) {
  const device::Device dev = loadDevice(device_spec);
  model::FloorplanProblem problem = model::makeSdrProblem(dev);
  if (fc_per_region > 0) model::addSdrRelocations(problem, fc_per_region);
  std::printf("%s", io::formatProblem(problem).c_str());
  return 0;
}

int cmdFeasibility(const std::string& device_spec, const std::string& problem_path,
                   int threads) {
  const device::Device dev = loadDevice(device_spec);
  const model::FloorplanProblem problem = io::parseProblem(readFile(problem_path), dev);
  search::SearchOptions opt;
  opt.num_threads = threads;
  const std::vector<bool> reloc =
      search::ColumnarSearchSolver(opt).feasibilityAnalysis(problem);
  std::printf("%-24s relocatable?\n", "region");
  for (int n = 0; n < problem.numRegions(); ++n)
    std::printf("%-24s %s\n", problem.region(n).name.c_str(),
                reloc[static_cast<std::size_t>(n)] ? "yes" : "no");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rfp_cli devices\n"
               "  rfp_cli show <device>\n"
               "  rfp_cli solve <device> <problem-file> [--threads N] [--thread-budget N]\n"
               "                [--time-limit S]\n"
               "                [--algo search|milp-o|milp-ho|heuristic|annealer|portfolio]\n"
               "                [--stage1-fraction F] [--no-exchange]\n"
               "                [--cache-size N] [--no-cache]\n"
               "                [--svg FILE] [--json FILE] [--trace FILE] [--metrics]\n"
               "                [--progress S] [--log-file FILE]\n"
               "  rfp_cli emit-problem <device> [fc-per-region]\n"
               "  rfp_cli feasibility <device> <problem-file> [--threads N]\n"
               "<device> is a catalog name (see 'devices') or a description file.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "devices") return cmdDevices();
    if (cmd == "show" && argc >= 3) return cmdShow(argv[2]);
    if (cmd == "emit-problem" && argc >= 3)
      return cmdEmitProblem(argv[2], argc >= 4 ? std::stoi(argv[3]) : 0);
    if ((cmd == "solve" || cmd == "feasibility") && argc >= 4) {
      SolveArgs args;
      for (int i = 4; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
            std::exit(2);
          }
          return argv[++i];
        };
        if (flag == "--algo")
          args.algo = next();
        else if (flag == "--threads")
          args.threads = std::stoi(next());
        else if (flag == "--thread-budget")
          args.thread_budget = std::stoi(next());
        else if (flag == "--time-limit")
          args.time_limit = std::stod(next());
        else if (flag == "--stage1-fraction")
          args.stage1_fraction = std::stod(next());
        else if (flag == "--no-exchange")
          args.incumbent_exchange = false;
        else if (flag == "--cache-size")
          args.cache_entries = static_cast<std::size_t>(std::stoul(next()));
        else if (flag == "--no-cache")
          args.use_cache = false;
        else if (flag == "--svg")
          args.svg_path = next();
        else if (flag == "--json")
          args.json_path = next();
        else if (flag == "--trace")
          args.trace_path = next();
        else if (flag == "--metrics")
          args.print_metrics = true;
        else if (flag == "--progress") {
          args.progress_seconds = std::stod(next());
          // The ticker speaks at info level; the default warn threshold
          // would silently swallow the lines the user just asked for.
          if (rfp::log::level() > rfp::log::Level::kInfo)
            rfp::log::setLevel(rfp::log::Level::kInfo);
        } else if (flag == "--log-file") {
          const std::string path = next();
          if (!rfp::log::setLogFile(path)) {
            std::fprintf(stderr, "error: cannot open log file '%s'\n", path.c_str());
            return 2;
          }
        } else
          return usage();
      }
      return cmd == "solve" ? cmdSolve(argv[2], argv[3], args)
                            : cmdFeasibility(argv[2], argv[3], args.threads);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
