// The paper's Section VI case study, end to end: the software-defined-radio
// design of [8] on the Virtex-5 FX70T — feasibility analysis, SDR2/SDR3
// floorplanning with relocation constraints, and comparison against the
// relocation-unaware baseline.
#include <cstdio>

#include "baseline/vipin_fahmy.hpp"
#include "device/builders.hpp"
#include "io/results.hpp"
#include "model/floorplan.hpp"
#include "render/render.hpp"
#include "search/solver.hpp"

int main() {
  using namespace rfp;
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);

  std::printf("=== SDR design on %s (Table I) ===\n", dev.name().c_str());
  std::printf("%-18s %5s %5s %5s %8s\n", "region", "CLB", "BRAM", "DSP", "#frames");
  for (int n = 0; n < sdr.numRegions(); ++n) {
    const model::RegionSpec& r = sdr.region(n);
    std::printf("%-18s %5d %5d %5d %8ld\n", r.name.c_str(), r.required(0), r.required(1),
                r.required(2), sdr.minFrames(n));
  }

  search::SearchOptions opt;
  opt.num_threads = 8;
  const search::ColumnarSearchSolver solver(opt);

  std::printf("\n=== Feasibility analysis (Sec. VI) ===\n");
  const std::vector<bool> reloc = solver.feasibilityAnalysis(sdr);
  for (int n = 0; n < sdr.numRegions(); ++n)
    std::printf("%-18s : %s\n", sdr.region(n).name.c_str(),
                reloc[static_cast<std::size_t>(n)] ? "relocatable" : "NOT relocatable");

  std::printf("\n=== Floorplans ===\n");
  const auto run = [&](const char* name, int fc_per_region) {
    model::FloorplanProblem p = model::makeSdrProblem(dev);
    if (fc_per_region > 0) model::addSdrRelocations(p, fc_per_region);
    const search::SearchResult res = solver.solve(p);
    std::printf("%-5s status=%-9s wasted_frames=%4ld wire_length=%7.1f fc_areas=%d\n", name,
                search::toString(res.status), res.costs.wasted_frames, res.costs.wire_length,
                res.hasSolution() ? res.plan.placedFcCount() : 0);
    return res;
  };
  run("SDR", 0);
  const search::SearchResult sdr2 = run("SDR2", 2);
  run("SDR3", 3);

  const auto vf = baseline::vipinFahmyFloorplan(sdr);
  if (vf)
    std::printf("[8]   (baseline)      wasted_frames=%4ld wire_length=%7.1f fc_areas=0\n",
                model::evaluate(sdr, *vf).wasted_frames, model::evaluate(sdr, *vf).wire_length);

  if (sdr2.hasSolution()) {
    model::FloorplanProblem p2 = model::makeSdrProblem(dev);
    model::addSdrRelocations(p2, 2);
    std::printf("\n=== SDR2 floorplan (cf. Fig. 4) ===\n%s\n",
                render::ascii(p2, sdr2.plan).c_str());
    std::printf("JSON: %s\n", io::floorplanToJson(p2, sdr2.plan).c_str());
  }
  return 0;
}
