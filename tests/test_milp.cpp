// Tests for the branch-and-bound MILP solver, including a brute-force
// cross-check on random binary programs.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "milp/bb.hpp"
#include "support/rng.hpp"

namespace rfp::milp {
namespace {

using lp::LinExpr;
using lp::Model;
using lp::ObjSense;
using lp::Sense;
using lp::Var;

TEST(Milp, PureLpPassThrough) {
  Model m;
  const Var x = m.addContinuous(0, 4, "x");
  m.setObjective(LinExpr(x), ObjSense::kMaximize);
  const MipResult r = MilpSolver().solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);
  EXPECT_NEAR(r.gap, 0.0, 1e-9);
}

TEST(Milp, KnapsackOptimal) {
  // max 60a+100b+120c st 10a+20b+30c <= 50 → b+c = 220.
  Model m;
  const Var a = m.addBinary("a"), b = m.addBinary("b"), c = m.addBinary("c");
  m.addConstr(10.0 * a + 20.0 * b + 30.0 * c, Sense::kLessEqual, 50);
  m.setObjective(60.0 * a + 100.0 * b + 120.0 * c, ObjSense::kMaximize);
  const MipResult r = MilpSolver().solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 220.0, 1e-6);
  EXPECT_NEAR(r.x[0], 0.0, 1e-6);
}

TEST(Milp, IntegerRounding) {
  // min x st 3x >= 10, x integer → x=4.
  Model m;
  const Var x = m.addInteger(0, 100, "x");
  m.addConstr(3.0 * x, Sense::kGreaterEqual, 10);
  m.setObjective(LinExpr(x), ObjSense::kMinimize);
  const MipResult r = MilpSolver().solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-6);
}

TEST(Milp, InfeasibleBinaryProgram) {
  Model m;
  const Var a = m.addBinary("a"), b = m.addBinary("b");
  m.addConstr(LinExpr(a) + b, Sense::kGreaterEqual, 3);
  const MipResult r = MilpSolver().solve(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
}

TEST(Milp, MixedIntegerContinuous) {
  // max 2x + y, x binary, y cont <= 3.7, x + y <= 4 → x=1, y=3 → 5... y<=3.7
  // and x+y<=4 → y<=3 when x=1: obj 5. vs x=0,y=3.7: 3.7. Optimal 5.
  Model m;
  const Var x = m.addBinary("x");
  const Var y = m.addContinuous(0, 3.7, "y");
  m.addConstr(LinExpr(x) + y, Sense::kLessEqual, 4);
  m.setObjective(2.0 * x + y, ObjSense::kMaximize);
  const MipResult r = MilpSolver().solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-6);
}

TEST(Milp, WarmStartAcceptedAsIncumbent) {
  Model m;
  const Var a = m.addBinary("a"), b = m.addBinary("b");
  m.addConstr(LinExpr(a) + b, Sense::kLessEqual, 1);
  m.setObjective(LinExpr(a) + 2.0 * b, ObjSense::kMaximize);
  // Warm start with the suboptimal a=1.
  const MipResult r = MilpSolver().solve(m, std::vector<double>{1.0, 0.0});
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);  // must still find b=1
}

TEST(Milp, NodeLimitReportsTruncation) {
  // A 14-item knapsack with a 1-node limit cannot be proven optimal.
  Model m;
  LinExpr weight, value;
  Rng rng(5);
  for (int i = 0; i < 14; ++i) {
    const Var v = m.addBinary("v");
    weight += (1.0 + static_cast<double>(rng.nextBelow(9))) * v;
    value += (1.0 + static_cast<double>(rng.nextBelow(17))) * v;
  }
  m.addConstr(weight, Sense::kLessEqual, 20);
  m.setObjective(value, ObjSense::kMaximize);
  MilpSolver::Options opt;
  opt.node_limit = 1;
  opt.enable_rounding_heuristic = false;
  const MipResult r = MilpSolver(opt).solve(m);
  EXPECT_TRUE(r.status == MipStatus::kFeasible || r.status == MipStatus::kNoSolution ||
              r.status == MipStatus::kOptimal);
  EXPECT_LE(r.nodes, 2 + opt.plunge_depth);
}

TEST(Milp, EqualityConstrainedAssignment) {
  // 2x2 assignment: costs [[1, 10], [10, 1]] → diagonal, cost 2.
  Model m;
  std::vector<std::vector<Var>> x(2, std::vector<Var>(2));
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) x[i][j] = m.addBinary("x");
  for (int i = 0; i < 2; ++i) {
    m.addConstr(LinExpr(x[i][0]) + x[i][1], Sense::kEqual, 1);
    m.addConstr(LinExpr(x[0][i]) + x[1][i], Sense::kEqual, 1);
  }
  m.setObjective(1.0 * x[0][0] + 10.0 * x[0][1] + 10.0 * x[1][0] + 1.0 * x[1][1],
                 ObjSense::kMinimize);
  const MipResult r = MilpSolver().solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

// ---- brute-force cross-check property -------------------------------------

std::optional<double> bruteForceBest(const Model& m) {
  const int n = m.numVars();
  std::optional<double> best;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) x[static_cast<std::size_t>(j)] = (mask >> j) & 1;
    if (!m.isFeasible(x, 1e-9)) continue;
    const double obj = m.evalObjective(x);
    if (!best || (m.objSense() == ObjSense::kMaximize ? obj > *best : obj < *best)) best = obj;
  }
  return best;
}

TEST(MilpProperty, MatchesBruteForceOnRandomBinaryPrograms) {
  Rng rng(99);
  for (int trial = 0; trial < 80; ++trial) {
    const int n = 3 + static_cast<int>(rng.nextBelow(8));  // up to 10 binaries
    const int rows = 1 + static_cast<int>(rng.nextBelow(4));
    Model m;
    std::vector<Var> vars;
    for (int j = 0; j < n; ++j) vars.push_back(m.addBinary("b"));
    for (int i = 0; i < rows; ++i) {
      LinExpr e;
      for (int j = 0; j < n; ++j) {
        const long c = rng.nextInt(-4, 6);
        if (c != 0) e += static_cast<double>(c) * vars[static_cast<std::size_t>(j)];
      }
      const double rhs = static_cast<double>(rng.nextInt(0, 12));
      m.addConstr(e, rng.nextBool() ? Sense::kLessEqual : Sense::kGreaterEqual, rhs);
    }
    LinExpr obj;
    for (int j = 0; j < n; ++j)
      obj += static_cast<double>(rng.nextInt(-10, 10)) * vars[static_cast<std::size_t>(j)];
    const ObjSense sense = rng.nextBool() ? ObjSense::kMaximize : ObjSense::kMinimize;
    m.setObjective(obj, sense);

    const std::optional<double> expected = bruteForceBest(m);
    const MipResult r = MilpSolver().solve(m);
    if (!expected) {
      EXPECT_EQ(r.status, MipStatus::kInfeasible) << "trial " << trial;
    } else {
      ASSERT_EQ(r.status, MipStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(r.objective, *expected, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.isFeasible(r.x, 1e-6)) << "trial " << trial;
    }
  }
}

// ---- work-stealing parallel engine ----------------------------------------

Model randomBinaryProgram(Rng& rng) {
  const int n = 6 + static_cast<int>(rng.nextBelow(9));  // up to 14 binaries
  const int rows = 2 + static_cast<int>(rng.nextBelow(4));
  Model m;
  std::vector<Var> vars;
  for (int j = 0; j < n; ++j) vars.push_back(m.addBinary("b"));
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    for (int j = 0; j < n; ++j) {
      const long c = rng.nextInt(-4, 6);
      if (c != 0) e += static_cast<double>(c) * vars[static_cast<std::size_t>(j)];
    }
    m.addConstr(e, rng.nextBool() ? Sense::kLessEqual : Sense::kGreaterEqual,
                static_cast<double>(rng.nextInt(0, 12)));
  }
  LinExpr obj;
  for (int j = 0; j < n; ++j)
    obj += static_cast<double>(rng.nextInt(-10, 10)) * vars[static_cast<std::size_t>(j)];
  m.setObjective(obj, rng.nextBool() ? ObjSense::kMaximize : ObjSense::kMinimize);
  return m;
}

TEST(MilpParallel, MatchesSequentialStatusAndObjective) {
  // The core parallel contract: thread count may change which optimal point
  // is returned, never the final status or objective.
  Rng rng(1234);
  for (int trial = 0; trial < 30; ++trial) {
    const Model m = randomBinaryProgram(rng);
    MilpSolver::Options seq;
    MilpSolver::Options par;
    par.threads = 8;
    const MipResult a = MilpSolver(seq).solve(m);
    const MipResult b = MilpSolver(par).solve(m);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.hasSolution()) {
      EXPECT_NEAR(a.objective, b.objective, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.isFeasible(b.x, 1e-6)) << "trial " << trial;
    }
  }
}

TEST(MilpParallel, WorkerTelemetryAggregates) {
  Rng rng(7);
  const Model m = randomBinaryProgram(rng);
  MilpSolver::Options opt;
  opt.threads = 4;
  const MipResult r = MilpSolver(opt).solve(m);
  ASSERT_EQ(r.workers.size(), 4u);
  long nodes = 0, steals = 0;
  for (const MipWorkerStats& w : r.workers) {
    nodes += w.nodes;
    steals += w.steals;
  }
  EXPECT_EQ(nodes, r.nodes);
  EXPECT_EQ(steals, r.steals);
}

TEST(MilpParallel, DeterministicReplayIsReproducible) {
  // Two deterministic runs must expand the identical tree: same node count,
  // same steal schedule, same replay digest, same answer.
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    const Model m = randomBinaryProgram(rng);
    MilpSolver::Options opt;
    opt.threads = 4;
    opt.deterministic = true;
    const MipResult a = MilpSolver(opt).solve(m);
    const MipResult b = MilpSolver(opt).solve(m);
    EXPECT_EQ(a.replay_hash, b.replay_hash) << "trial " << trial;
    EXPECT_NE(a.replay_hash, 0u) << "trial " << trial;
    EXPECT_EQ(a.nodes, b.nodes) << "trial " << trial;
    EXPECT_EQ(a.steals, b.steals) << "trial " << trial;
    EXPECT_EQ(a.status, b.status) << "trial " << trial;
    if (a.hasSolution()) {
      EXPECT_NEAR(a.objective, b.objective, 1e-12) << "trial " << trial;
      EXPECT_EQ(a.x, b.x) << "trial " << trial;
    }
  }
}

TEST(MilpParallel, WarmStartSeedsSharedIncumbent) {
  Model m;
  const Var a = m.addBinary("a"), b = m.addBinary("b");
  m.addConstr(LinExpr(a) + b, Sense::kLessEqual, 1);
  m.setObjective(LinExpr(a) + 2.0 * b, ObjSense::kMaximize);
  MilpSolver::Options opt;
  opt.threads = 2;
  const MipResult r = MilpSolver(opt).solve(m, std::vector<double>{1.0, 0.0});
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

}  // namespace
}  // namespace rfp::milp
