// Catalog device models: every entry must be a well-formed columnar device
// whose partition validates, whose forbidden areas are in bounds, and which
// can host floorplanning problems end to end.
#include <gtest/gtest.h>

#include <set>

#include "device/builders.hpp"
#include "device/catalog.hpp"
#include "device/parser.hpp"
#include "partition/columnar.hpp"
#include "search/solver.hpp"

namespace rfp::device {
namespace {

class CatalogDevice : public ::testing::TestWithParam<CatalogEntry> {};

TEST_P(CatalogDevice, BuildsAndIsColumnar) {
  const Device dev = GetParam().build();
  EXPECT_EQ(dev.name(), GetParam().name);
  EXPECT_GT(dev.width(), 0);
  EXPECT_GT(dev.height(), 0);
  EXPECT_TRUE(dev.isColumnar());
}

TEST_P(CatalogDevice, ColumnarPartitionValidates) {
  const Device dev = GetParam().build();
  const auto part = partition::columnarPartition(dev);
  ASSERT_TRUE(part.has_value()) << GetParam().name;
  EXPECT_EQ(partition::validateColumnarPartition(dev, *part), "");
  // Property .3: adjacent portions have different tile types.
  for (std::size_t p = 1; p < part->portions.size(); ++p)
    EXPECT_NE(part->portions[p].type, part->portions[p - 1].type);
}

TEST_P(CatalogDevice, ForbiddenAreasAreWithinBounds) {
  const Device dev = GetParam().build();
  for (const Rect& f : dev.forbidden()) {
    EXPECT_GE(f.x, 0);
    EXPECT_GE(f.y, 0);
    EXPECT_LE(f.x2(), dev.width());
    EXPECT_LE(f.y2(), dev.height());
  }
}

TEST_P(CatalogDevice, HasAllThreeTileTypesWithPositiveFrames) {
  const Device dev = GetParam().build();
  ASSERT_EQ(dev.numTileTypes(), 3);
  const std::vector<int> totals = dev.totalTiles(/*usable_only=*/true);
  for (int t = 0; t < dev.numTileTypes(); ++t) {
    EXPECT_GT(dev.tileType(t).frames, 0);
    EXPECT_GT(totals[static_cast<std::size_t>(t)], 0)
        << GetParam().name << " type " << dev.tileType(t).name;
  }
  // CLB dominates on every real part.
  EXPECT_GT(totals[0], totals[1]);
  EXPECT_GT(totals[0], totals[2]);
}

TEST_P(CatalogDevice, ParserRoundTripPreservesStructure) {
  const Device dev = GetParam().build();
  const Device parsed = parseDevice(formatDevice(dev));
  EXPECT_EQ(parsed.name(), dev.name());
  EXPECT_EQ(parsed.width(), dev.width());
  EXPECT_EQ(parsed.height(), dev.height());
  EXPECT_EQ(parsed.forbidden().size(), dev.forbidden().size());
  for (int x = 0; x < dev.width(); ++x)
    for (int y = 0; y < dev.height(); ++y)
      ASSERT_EQ(parsed.typeAt(x, y), dev.typeAt(x, y)) << "(" << x << "," << y << ")";
}

TEST_P(CatalogDevice, SmallRegionIsPlaceable) {
  const Device dev = GetParam().build();
  model::FloorplanProblem p(&dev);
  // One tile of each type: placeable on every real part.
  p.addRegion(model::RegionSpec{"probe", {4, 1, 1}});
  const search::SearchResult res = search::ColumnarSearchSolver().solve(p);
  EXPECT_EQ(res.status, search::SearchStatus::kOptimal) << GetParam().name;
  EXPECT_EQ(model::check(p, res.plan), "");
}

TEST_P(CatalogDevice, SmallRegionIsRelocatable) {
  // Every catalog model uses a repeated column kernel, so a kernel-sized
  // region must have at least one free-compatible area.
  const Device dev = GetParam().build();
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"probe", {2, 0, 0}});
  p.addRelocation(model::RelocationRequest{0, 1, /*hard=*/true, 1.0});
  search::SearchOptions opt;
  opt.feasibility_only = true;
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(p);
  EXPECT_TRUE(res.hasSolution()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllParts, CatalogDevice, ::testing::ValuesIn(catalog()),
                         [](const ::testing::TestParamInfo<CatalogEntry>& info) {
                           return info.param.name;
                         });

TEST(Catalog, NamesAreUniqueAndLookupWorks) {
  std::set<std::string> seen;
  for (const std::string& name : catalogNames()) {
    EXPECT_TRUE(seen.insert(name).second) << "duplicate: " << name;
    const auto dev = buildByName(name);
    ASSERT_TRUE(dev.has_value());
    EXPECT_EQ(dev->name(), name);
  }
  EXPECT_FALSE(buildByName("xc9nonexistent").has_value());
}

TEST(Catalog, PaperDeviceIsTheFirstEntry) {
  ASSERT_FALSE(catalog().empty());
  EXPECT_EQ(catalog().front().name, "xc5vfx70t");
  EXPECT_EQ(catalog().front().family, "virtex5");
}

TEST(Catalog, FamiliesAreGrouped) {
  // Entries of the same family are contiguous (catalog order contract).
  std::set<std::string> closed;
  std::string current;
  for (const CatalogEntry& e : catalog()) {
    if (e.family != current) {
      EXPECT_TRUE(closed.insert(current).second || current.empty()) << e.family;
      current = e.family;
    }
  }
}

TEST(Catalog, Virtex5FamilySharesTileGeometry) {
  // Relocation across same-family parts relies on identical tile types.
  const Device a = virtex5FX70T();
  for (const char* name : {"xc5vlx110t", "xc5vsx95t", "xc5vfx130t"}) {
    const Device b = *buildByName(name);
    ASSERT_EQ(a.numTileTypes(), b.numTileTypes());
    for (int t = 0; t < a.numTileTypes(); ++t) {
      EXPECT_EQ(a.tileType(t).name, b.tileType(t).name);
      EXPECT_EQ(a.tileType(t).frames, b.tileType(t).frames) << name;
    }
  }
}

TEST(Catalog, Fx130tForbiddenBlocksDoNotOverlap) {
  const Device dev = virtex5FX130T();
  ASSERT_EQ(dev.forbidden().size(), 2u);
  const Rect& a = dev.forbidden()[0];
  const Rect& b = dev.forbidden()[1];
  const bool disjoint = a.x2() <= b.x || b.x2() <= a.x || a.y2() <= b.y || b.y2() <= a.y;
  EXPECT_TRUE(disjoint);
}

TEST(Catalog, ZynqPsBlockExcludedFromUsableTiles) {
  const Device dev = zynq7020();
  const std::vector<int> all = dev.totalTiles(/*usable_only=*/false);
  const std::vector<int> usable = dev.totalTiles(/*usable_only=*/true);
  long delta = 0;
  for (std::size_t t = 0; t < all.size(); ++t) delta += all[t] - usable[t];
  EXPECT_EQ(delta, 10 * 2);  // the 10x2 PS rectangle
}

}  // namespace
}  // namespace rfp::device
