// Tests for the baselines: Vipin–Fahmy reconstruction ([8]) and the
// simulated-annealing floorplanner ([9]-style).
#include <gtest/gtest.h>

#include "baseline/annealer.hpp"
#include "baseline/vipin_fahmy.hpp"
#include "device/builders.hpp"
#include "model/floorplan.hpp"
#include "search/solver.hpp"

namespace rfp::baseline {
namespace {

TEST(VipinFahmy, ProducesValidSdrFloorplan) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const auto fp = vipinFahmyFloorplan(sdr);
  ASSERT_TRUE(fp.has_value());
  EXPECT_EQ(model::check(sdr, *fp), "");
}

TEST(VipinFahmy, WastesMoreThanTheExactFloorplanner) {
  // Table II's qualitative gap: the reconfiguration-centric heuristic wastes
  // more frames than the exact MILP/search optimum.
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const auto fp = vipinFahmyFloorplan(sdr);
  ASSERT_TRUE(fp.has_value());
  const long heuristic_waste = model::evaluate(sdr, *fp).wasted_frames;

  search::SearchOptions sopt;
  sopt.num_threads = 8;
  const search::SearchResult opt = search::ColumnarSearchSolver(sopt).solve(sdr);
  ASSERT_EQ(opt.status, search::SearchStatus::kOptimal);
  EXPECT_GT(heuristic_waste, opt.costs.wasted_frames);
}

TEST(VipinFahmy, HeightsAlignToClockRegionGranularity) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  VipinFahmyOptions opt;
  opt.clock_region_granularity = 2;
  const auto fp = vipinFahmyFloorplan(sdr, opt);
  ASSERT_TRUE(fp.has_value());
  for (const device::Rect& r : fp->regions) {
    EXPECT_EQ(r.h % 2, 0);
    EXPECT_EQ(r.y % 2, 0);
  }
}

TEST(VipinFahmy, FailsCleanlyWhenDeviceTooSmall) {
  const device::Device dev = device::columnarFromPattern("t", "CC", 2);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {5, 0, 0}});
  EXPECT_FALSE(vipinFahmyFloorplan(p).has_value());
}

TEST(Annealer, ImprovesOrMatchesConstructiveStart) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  AnnealerOptions opt;
  opt.iterations = 20000;
  const auto res = annealFloorplan(sdr, opt);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(model::check(sdr, res->plan), "");
  EXPECT_GT(res->accepted_moves, 0);
}

TEST(Annealer, HonorsHardRelocationRequests) {
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  AnnealerOptions opt;
  opt.iterations = 5000;
  const auto res = annealFloorplan(sdr2, opt);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(model::check(sdr2, res->plan), "");
  EXPECT_EQ(res->plan.placedFcCount(), 6);
}

TEST(Annealer, DeterministicForFixedSeed) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  AnnealerOptions opt;
  opt.iterations = 3000;
  opt.seed = 7;
  const auto a = annealFloorplan(sdr, opt);
  const auto b = annealFloorplan(sdr, opt);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->costs.wasted_frames, b->costs.wasted_frames);
  EXPECT_DOUBLE_EQ(a->costs.wire_length, b->costs.wire_length);
}

}  // namespace
}  // namespace rfp::baseline
