// Tests for the floorplanning problem model, cost evaluation (Eq. 14 terms)
// and the independent solution checker.
#include <gtest/gtest.h>

#include "device/builders.hpp"
#include "model/floorplan.hpp"
#include "model/problem.hpp"
#include "support/check.hpp"

namespace rfp::model {
namespace {

using device::Rect;

FloorplanProblem twoRegionProblem(const device::Device& dev) {
  FloorplanProblem p(&dev);
  p.addRegion(RegionSpec{"r0", {4, 0, 0}});
  p.addRegion(RegionSpec{"r1", {2, 1, 0}});
  p.addNet(Net{{0, 1}, 8.0, "bus"});
  return p;
}

TEST(Problem, SdrMatchesTableOne) {
  const device::Device dev = device::virtex5FX70T();
  const FloorplanProblem sdr = makeSdrProblem(dev);
  ASSERT_EQ(sdr.numRegions(), 5);
  EXPECT_EQ(sdr.minFrames(kMatchedFilter), 1040);
  EXPECT_EQ(sdr.minFrames(kCarrierRecovery), 280);
  EXPECT_EQ(sdr.minFrames(kDemodulator), 240);
  EXPECT_EQ(sdr.minFrames(kSignalDecoder), 462);
  EXPECT_EQ(sdr.minFrames(kVideoDecoder), 2180);
  // Total (Table I): 4202 frames.
  long total = 0;
  for (int n = 0; n < 5; ++n) total += sdr.minFrames(n);
  EXPECT_EQ(total, 4202);
  EXPECT_EQ(sdr.nets().size(), 4u);  // sequential 64-bit bus
  EXPECT_EQ(sdr.validate(), "");
}

TEST(Problem, SdrRelocationRequests) {
  const device::Device dev = device::virtex5FX70T();
  FloorplanProblem sdr2 = makeSdrProblem(dev);
  addSdrRelocations(sdr2, 2);
  EXPECT_EQ(sdr2.totalFcAreas(), 6);  // SDR2
  FloorplanProblem sdr3 = makeSdrProblem(dev);
  addSdrRelocations(sdr3, 3);
  EXPECT_EQ(sdr3.totalFcAreas(), 9);  // SDR3
}

TEST(Problem, ValidateCatchesOversubscription) {
  const device::Device dev = device::columnarFromPattern("t", "CCD", 2);
  FloorplanProblem p(&dev);
  p.addRegion(RegionSpec{"big", {10, 0, 0}});  // 10 CLB tiles > 4 available
  EXPECT_NE(p.validate(), "");
}

TEST(Problem, RejectsMalformedInputs) {
  const device::Device dev = device::uniformDevice(4, 4);
  FloorplanProblem p(&dev);
  EXPECT_THROW(p.addRegion(RegionSpec{"none", {}}), CheckError);
  p.addRegion(RegionSpec{"a", {1}});
  EXPECT_THROW(p.addNet(Net{{0}, 1.0, "one-pin"}), CheckError);
  EXPECT_THROW(p.addNet(Net{{0, 7}, 1.0, "dangling"}), CheckError);
  EXPECT_THROW(p.addRelocation(RelocationRequest{3, 1, true, 1.0}), CheckError);
  EXPECT_THROW(p.addRelocation(RelocationRequest{0, 0, true, 1.0}), CheckError);
}

TEST(Evaluate, WasteCountsRegionOveruseOnly) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCC", 4);
  FloorplanProblem p(&dev);
  p.addRegion(RegionSpec{"r", {3, 1, 0}});  // 3 CLB + 1 BRAM tiles
  Floorplan fp;
  fp.regions.push_back(Rect{1, 0, 2, 2});  // covers 2 CLB + 2 BRAM
  // CLB covered 2 < 3 → invalid for check, but waste arithmetic still works:
  // waste = (2-3)·36 + (2-1)·30 = -6.
  EXPECT_EQ(regionWaste(p, 0, fp.regions[0]), -6);
  fp.regions[0] = Rect{0, 0, 3, 2};  // 4 CLB + 2 BRAM → waste 36 + 30
  EXPECT_EQ(regionWaste(p, 0, fp.regions[0]), 66);
}

TEST(Evaluate, WireLengthIsWeightedHpwl) {
  const device::Device dev = device::uniformDevice(10, 10);
  FloorplanProblem p(&dev);
  p.addRegion(RegionSpec{"a", {1}});
  p.addRegion(RegionSpec{"b", {1}});
  p.addNet(Net{{0, 1}, 2.0, "n"});
  const std::vector<Rect> regions{Rect{0, 0, 2, 2}, Rect{4, 4, 2, 2}};
  // centers (1,1) and (5,5): HPWL = 4 + 4 = 8, weighted → 16.
  EXPECT_DOUBLE_EQ(wireLength(p, regions), 16.0);
}

TEST(Evaluate, RelocationCostCountsUnplacedWeighted) {
  const device::Device dev = device::uniformDevice(8, 8);
  FloorplanProblem p(&dev);
  p.addRegion(RegionSpec{"a", {1}});
  p.addRelocation(RelocationRequest{0, 2, false, 0.5});
  Floorplan fp;
  fp.regions.push_back(Rect{0, 0, 1, 1});
  fp.fc_areas = expandFcRequests(p);
  fp.fc_areas[0].placed = true;
  fp.fc_areas[0].rect = Rect{2, 0, 1, 1};
  const FloorplanCosts costs = evaluate(p, fp);
  EXPECT_DOUBLE_EQ(costs.relocation, 0.5);  // one of two placed (Eq. 13)
}

TEST(Check, AcceptsValidFloorplan) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCC", 4);
  FloorplanProblem p = twoRegionProblem(dev);
  Floorplan fp;
  fp.regions = {Rect{0, 0, 2, 2}, Rect{1, 2, 2, 2}};
  // r1 covers cols 1,2 rows 2,3: 2 CLB + 2 BRAM ✓ (needs 2 CLB + 1 BRAM)
  fp.fc_areas = expandFcRequests(p);
  EXPECT_EQ(check(p, fp), "");
}

TEST(Check, RejectsCoverageShortfall) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCC", 4);
  FloorplanProblem p = twoRegionProblem(dev);
  Floorplan fp;
  fp.regions = {Rect{0, 0, 2, 1}, Rect{1, 2, 2, 2}};  // r0 covers 2 CLB < 4
  fp.fc_areas = expandFcRequests(p);
  EXPECT_NE(check(p, fp), "");
}

TEST(Check, RejectsOverlapAndForbidden) {
  device::Device dev = device::columnarFromPattern("t", "CCBCC", 4);
  dev.addForbidden(Rect{3, 0, 1, 1}, "f");
  FloorplanProblem p = twoRegionProblem(dev);
  Floorplan fp;
  fp.regions = {Rect{0, 0, 2, 2}, Rect{1, 1, 2, 2}};  // overlap at (1,1)
  fp.fc_areas = expandFcRequests(p);
  EXPECT_NE(check(p, fp), "");
  fp.regions = {Rect{3, 0, 2, 2}, Rect{0, 2, 3, 2}};  // r0 hits forbidden
  EXPECT_NE(check(p, fp), "");
}

TEST(Check, RejectsIncompatibleFcArea) {
  const device::Device dev = device::columnarFromPattern("t", "CBCCBC", 4);
  FloorplanProblem p(&dev);
  p.addRegion(RegionSpec{"r", {1, 1, 0}});
  p.addRelocation(RelocationRequest{0, 1, true, 1.0});
  Floorplan fp;
  fp.regions = {Rect{0, 0, 2, 1}};  // pattern C B
  fp.fc_areas = expandFcRequests(p);
  fp.fc_areas[0].placed = true;
  fp.fc_areas[0].rect = Rect{1, 0, 2, 1};  // pattern B C → incompatible (also overlaps)
  EXPECT_NE(check(p, fp), "");
  fp.fc_areas[0].rect = Rect{3, 0, 2, 1};  // pattern C B ✓ disjoint ✓
  EXPECT_EQ(check(p, fp), "");
}

TEST(Check, HardRequestMustBePlaced) {
  const device::Device dev = device::uniformDevice(8, 8);
  FloorplanProblem p(&dev);
  p.addRegion(RegionSpec{"r", {1}});
  p.addRelocation(RelocationRequest{0, 1, true, 1.0});
  Floorplan fp;
  fp.regions = {Rect{0, 0, 1, 1}};
  fp.fc_areas = expandFcRequests(p);  // unplaced
  EXPECT_NE(check(p, fp), "");
  // Soft request: unplaced is fine.
  FloorplanProblem q(&dev);
  q.addRegion(RegionSpec{"r", {1}});
  q.addRelocation(RelocationRequest{0, 1, false, 1.0});
  fp.fc_areas = expandFcRequests(q);
  EXPECT_EQ(check(q, fp), "");
}

TEST(Check, ObjectiveEq14CombinesNormalizedTerms) {
  const device::Device dev = device::uniformDevice(10, 10);
  FloorplanProblem p(&dev);
  p.addRegion(RegionSpec{"a", {4}});
  p.setWeights(ObjectiveWeights{0.0, 0.0, 1.0, 0.0});  // waste only
  Floorplan fp;
  fp.regions.push_back(Rect{0, 0, 3, 2});  // 6 tiles, needs 4 → waste 2·36
  fp.fc_areas = expandFcRequests(p);
  const FloorplanCosts costs = evaluate(p, fp);
  EXPECT_EQ(costs.wasted_frames, 72);
  EXPECT_NEAR(costs.objective, 72.0 / dev.totalFrames(), 1e-12);
}

}  // namespace
}  // namespace rfp::model
