// Integration tests chaining the full pipeline:
// device → partition → floorplan (search / MILP) → check → bitstream
// relocation between the floorplanner's free-compatible areas.
#include <gtest/gtest.h>

#include "baseline/vipin_fahmy.hpp"
#include "bitstream/bitstream.hpp"
#include "device/builders.hpp"
#include "device/parser.hpp"
#include "fp/milp_floorplanner.hpp"
#include "model/floorplan.hpp"
#include "partition/columnar.hpp"
#include "search/solver.hpp"

namespace rfp {
namespace {

TEST(Integration, Sdr2EndToEndWithBitstreamRelocation) {
  // The headline flow: floorplan SDR2 with hard relocation constraints, then
  // actually relocate a bitstream of each relocatable region into each of
  // its reserved free-compatible areas.
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);

  search::SearchOptions opt;
  opt.num_threads = 8;
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(sdr2);
  ASSERT_EQ(res.status, search::SearchStatus::kOptimal);
  ASSERT_EQ(model::check(sdr2, res.plan), "");
  ASSERT_EQ(res.plan.placedFcCount(), 6);

  for (const model::FcArea& area : res.plan.fc_areas) {
    ASSERT_TRUE(area.placed);
    const device::Rect& src = res.plan.regions[static_cast<std::size_t>(area.region)];
    const bitstream::PartialBitstream bs =
        bitstream::generateBitstream(dev, src, static_cast<std::uint64_t>(area.region));
    const bitstream::PartialBitstream moved = bitstream::relocateBitstream(dev, bs, area.rect);
    EXPECT_EQ(bitstream::verifyBitstream(dev, moved), "");
    EXPECT_EQ(moved.area, area.rect);
  }
}

TEST(Integration, ParsedDeviceBehavesLikeBuiltDevice) {
  // Round-trip the FX70T through the text format and re-run the headline
  // feasibility analysis on the parsed copy.
  const device::Device built = device::virtex5FX70T();
  const device::Device parsed = device::parseDevice(device::formatDevice(built));
  const model::FloorplanProblem sdr = model::makeSdrProblem(parsed);
  search::SearchOptions opt;
  opt.num_threads = 8;
  const std::vector<bool> reloc =
      search::ColumnarSearchSolver(opt).feasibilityAnalysis(sdr);
  EXPECT_FALSE(reloc[model::kMatchedFilter]);
  EXPECT_TRUE(reloc[model::kCarrierRecovery]);
  EXPECT_FALSE(reloc[model::kVideoDecoder]);
}

TEST(Integration, MilpAndSearchAgreeOnRelocationInstances) {
  // Cross-validation on a medium device with one hard FC request.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 5);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"a", {3, 0, 1}});
  p.addRegion(model::RegionSpec{"b", {2, 1, 0}});
  p.addNet(model::Net{{0, 1}, 2.0, "n"});
  p.addRelocation(model::RelocationRequest{1, 1, true, 1.0});

  const search::SearchResult sres = search::ColumnarSearchSolver().solve(p);
  ASSERT_EQ(sres.status, search::SearchStatus::kOptimal);

  fp::MilpFloorplannerOptions mopt;
  mopt.algorithm = fp::Algorithm::kO;
  // Stage 1 (waste) is solved to optimality; stage 2 (wire length under the
  // stage-1 waste cap) may stop at the limit with the warm-started incumbent
  // — the waste cap still pins wasted frames to the proven optimum, which is
  // what this cross-check validates.
  mopt.milp.time_limit_seconds = 20.0;
  const fp::FpResult mres = fp::MilpFloorplanner(mopt).solve(p);
  ASSERT_TRUE(mres.hasSolution()) << mres.detail;

  EXPECT_EQ(mres.costs.wasted_frames, sres.costs.wasted_frames);
  EXPECT_EQ(model::check(p, mres.plan), "");
}

TEST(Integration, TableTwoOrdering) {
  // [8] baseline ≥ PA on wasted frames; SDR2 matches the SDR optimum; SDR3
  // is feasible with all 9 areas (Table II shape).
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);

  const auto vf = baseline::vipinFahmyFloorplan(sdr);
  ASSERT_TRUE(vf.has_value());
  const long vf_waste = model::evaluate(sdr, *vf).wasted_frames;

  search::SearchOptions opt;
  opt.num_threads = 8;
  const long sdr_waste = search::ColumnarSearchSolver(opt).solve(sdr).costs.wasted_frames;

  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  const search::SearchResult r2 = search::ColumnarSearchSolver(opt).solve(sdr2);

  model::FloorplanProblem sdr3 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr3, 3);
  const search::SearchResult r3 = search::ColumnarSearchSolver(opt).solve(sdr3);

  ASSERT_TRUE(r2.hasSolution());
  ASSERT_TRUE(r3.hasSolution());
  EXPECT_GT(vf_waste, sdr_waste);                       // heuristic gap
  EXPECT_EQ(r2.costs.wasted_frames, sdr_waste);         // SDR2 at the optimum
  EXPECT_GE(r3.costs.wasted_frames, r2.costs.wasted_frames);
  EXPECT_EQ(r2.plan.placedFcCount(), 6);
  EXPECT_EQ(r3.plan.placedFcCount(), 9);
}

TEST(Integration, ColumnarPartitionFeedsFormulationOnV7Style) {
  const device::Device dev = device::virtex7Style();
  const auto part = partition::columnarPartition(dev);
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(partition::validateColumnarPartition(dev, *part), "");
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {6, 1, 1}});
  const search::SearchResult res = search::ColumnarSearchSolver().solve(p);
  ASSERT_EQ(res.status, search::SearchStatus::kOptimal);
  EXPECT_EQ(model::check(p, res.plan), "");
}

}  // namespace
}  // namespace rfp
