// Tests for sequence-pair extraction (HO, Sec. II-A).
#include <gtest/gtest.h>

#include "device/geometry.hpp"
#include "fp/seqpair.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rfp::fp {
namespace {

using device::Rect;

TEST(SeqPair, HorizontalPair) {
  const std::vector<Rect> rects{{0, 0, 2, 2}, {3, 0, 2, 2}};
  const SequencePair sp = extractSequencePair(rects);
  EXPECT_TRUE(isConsistent(sp, rects));
  // 0 left of 1 → 0 before 1 in both sequences.
  EXPECT_EQ(sp.s1[0], 0);
  EXPECT_EQ(sp.s2[0], 0);
}

TEST(SeqPair, VerticalPair) {
  const std::vector<Rect> rects{{0, 0, 2, 2}, {0, 3, 2, 2}};
  const SequencePair sp = extractSequencePair(rects);
  EXPECT_TRUE(isConsistent(sp, rects));
  // 0 above 1 → before in s1, after in s2.
  EXPECT_EQ(sp.s1[0], 0);
  EXPECT_EQ(sp.s2[0], 1);
}

TEST(SeqPair, RejectsOverlappingInput) {
  const std::vector<Rect> rects{{0, 0, 3, 3}, {1, 1, 3, 3}};
  EXPECT_THROW((void)extractSequencePair(rects), CheckError);
}

TEST(SeqPair, EmptyAndSingle) {
  EXPECT_TRUE(isConsistent(extractSequencePair({}), {}));
  const std::vector<Rect> one{{2, 2, 3, 1}};
  EXPECT_TRUE(isConsistent(extractSequencePair(one), one));
}

TEST(SeqPair, InconsistencyDetected) {
  const std::vector<Rect> rects{{0, 0, 2, 2}, {3, 0, 2, 2}};
  SequencePair sp;
  sp.s1 = {1, 0};
  sp.s2 = {1, 0};  // claims 1 left of 0 — false
  EXPECT_FALSE(isConsistent(sp, rects));
}

TEST(SeqPair, UpLeftDiagonalForcesS1Only) {
  // 0 is left of AND above 1: s1 order is forced (0 first); either s2 order
  // is a valid sequence pair for this placement.
  const std::vector<Rect> rects{{0, 0, 2, 2}, {3, 3, 2, 2}};
  const SequencePair sp = extractSequencePair(rects);
  EXPECT_TRUE(isConsistent(sp, rects));
  EXPECT_EQ(sp.s1[0], 0);
}

TEST(SeqPair, DownLeftDiagonalForcesS2Only) {
  // 0 is left of AND below 1: s2 order is forced (0 first).
  const std::vector<Rect> rects{{0, 3, 2, 2}, {3, 0, 2, 2}};
  const SequencePair sp = extractSequencePair(rects);
  EXPECT_TRUE(isConsistent(sp, rects));
  EXPECT_EQ(sp.s2[0], 0);
}

TEST(SeqPair, PinwheelPlacementIsConsistent) {
  // The classic pinwheel: no slicing structure, every pair diagonal or
  // mixed. This family defeated the old "horizontal relations first"
  // pairwise rule (cycles through third rectangles).
  const std::vector<Rect> rects{
      {0, 0, 1, 2}, {1, 0, 2, 1}, {2, 1, 1, 2}, {0, 2, 2, 1}};
  const SequencePair sp = extractSequencePair(rects);
  EXPECT_TRUE(isConsistent(sp, rects));
}

TEST(SeqPair, DensePackingWithoutGapsIsConsistent) {
  // A full 4x4 tiling by 8 dominoes — every pair is adjacent, maximizing
  // forced relations.
  std::vector<Rect> rects;
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; x += 2) rects.push_back(Rect{x, y, 2, 1});
  const SequencePair sp = extractSequencePair(rects);
  EXPECT_TRUE(isConsistent(sp, rects));
}

TEST(SeqPair, TouchingEdgesAreNotOverlaps) {
  const std::vector<Rect> rects{{0, 0, 2, 2}, {2, 0, 2, 2}, {0, 2, 4, 1}};
  EXPECT_TRUE(isConsistent(extractSequencePair(rects), rects));
}

// Property: extraction from random disjoint placements is always consistent.
TEST(SeqPairProperty, ExtractionConsistentOnRandomPlacements) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    // Generate disjoint rects by random insertion with overlap rejection.
    std::vector<Rect> rects;
    const int attempts = 3 + static_cast<int>(rng.nextBelow(10));
    for (int i = 0; i < attempts; ++i) {
      const Rect cand{static_cast<int>(rng.nextBelow(20)), static_cast<int>(rng.nextBelow(12)),
                      1 + static_cast<int>(rng.nextBelow(5)), 1 + static_cast<int>(rng.nextBelow(4))};
      bool overlap = false;
      for (const Rect& r : rects) overlap = overlap || r.overlaps(cand);
      if (!overlap) rects.push_back(cand);
    }
    const SequencePair sp = extractSequencePair(rects);
    EXPECT_TRUE(isConsistent(sp, rects)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rfp::fp
