// Parameterized and randomized property tests spanning modules:
//  * MILP(O) vs exact search agreement on random instances,
//  * encode() of search solutions is always MILP-feasible,
//  * compatibility invariants on random devices,
//  * relocation round trips on random compatible pairs.
#include <gtest/gtest.h>

#include <string>

#include "bitstream/bitstream.hpp"
#include "device/builders.hpp"
#include "driver/driver.hpp"
#include "fp/formulation.hpp"
#include "fp/milp_floorplanner.hpp"
#include "milp/bb.hpp"
#include "model/floorplan.hpp"
#include "model/generator.hpp"
#include "partition/columnar.hpp"
#include "partition/compatibility.hpp"
#include "search/candidates.hpp"
#include "search/solver.hpp"
#include "support/rng.hpp"

namespace rfp {
namespace {

using device::Rect;

std::string randomPattern(Rng& rng, int min_w, int max_w) {
  const int w = min_w + static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(max_w - min_w + 1)));
  std::string s;
  for (int i = 0; i < w; ++i) {
    const auto roll = rng.nextBelow(10);
    s += roll < 6 ? 'C' : roll < 8 ? 'B' : 'D';
  }
  return s;
}

model::FloorplanProblem randomProblem(const device::Device& dev, Rng& rng, int regions) {
  model::FloorplanProblem p(&dev);
  const std::vector<int> totals = dev.totalTiles(true);
  for (int n = 0; n < regions; ++n) {
    model::RegionSpec spec;
    spec.name = "r" + std::to_string(n);
    spec.tiles.assign(3, 0);
    // Small demands so instances are usually feasible.
    spec.tiles[0] = 1 + static_cast<int>(rng.nextBelow(4));
    if (totals[1] > 4 && rng.nextBool(0.4)) spec.tiles[1] = 1;
    if (totals[2] > 4 && rng.nextBool(0.3)) spec.tiles[2] = 1;
    p.addRegion(spec);
  }
  if (regions >= 2) p.addNet(model::Net{{0, 1}, 1.0, "n"});
  return p;
}

// The central cross-validation property: the from-scratch MILP path and the
// exact combinatorial search must agree on feasibility and on the optimal
// wasted-frame count.
TEST(CrossValidation, MilpAgreesWithSearchOnRandomInstances) {
  Rng rng(4242);
  int solved = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const device::Device dev =
        device::columnarFromPattern("rand", randomPattern(rng, 4, 7), 3);
    model::FloorplanProblem p = randomProblem(dev, rng, 2);
    if (!p.validate().empty()) continue;

    search::SearchResult sres = search::ColumnarSearchSolver().solve(p);

    fp::FormulationOptions fopt;
    fopt.objective = fp::ObjectiveKind::kWastedFrames;
    const auto part = partition::columnarPartition(dev);
    ASSERT_TRUE(part.has_value());
    fp::MilpFormulation formulation(p, *part, fopt);
    milp::MilpSolver::Options mopt;
    mopt.time_limit_seconds = 30;
    const milp::MipResult mip = milp::MilpSolver(mopt).solve(formulation.model());

    if (sres.status == search::SearchStatus::kInfeasible) {
      EXPECT_EQ(mip.status, milp::MipStatus::kInfeasible) << "trial " << trial;
    } else if (sres.status == search::SearchStatus::kOptimal &&
               mip.status == milp::MipStatus::kOptimal) {
      const model::Floorplan fp = formulation.extract(mip.x);
      ASSERT_EQ(model::check(p, fp), "") << "trial " << trial;
      EXPECT_EQ(model::evaluate(p, fp).wasted_frames, sres.costs.wasted_frames)
          << "trial " << trial;
      ++solved;
    }
  }
  EXPECT_GE(solved, 4);  // most trials must actually exercise the comparison
}

// encode() of any checker-valid floorplan must satisfy the MILP model — the
// formulation cannot be tighter than the real constraint set.
TEST(EncodeProperty, SearchSolutionsAreMilpFeasible) {
  Rng rng(777);
  int exercised = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const device::Device dev =
        device::columnarFromPattern("rand", randomPattern(rng, 4, 8), 3);
    model::FloorplanProblem p = randomProblem(dev, rng, 2);
    if (!p.validate().empty()) continue;
    // Half the trials add a hard FC request on region 0.
    if (rng.nextBool()) p.addRelocation(model::RelocationRequest{0, 1, true, 1.0});

    const search::SearchResult sres = search::ColumnarSearchSolver().solve(p);
    if (!sres.hasSolution()) continue;
    ASSERT_EQ(model::check(p, sres.plan), "") << "trial " << trial;

    const auto part = partition::columnarPartition(dev);
    ASSERT_TRUE(part.has_value());
    for (const fp::OffsetEncoding enc :
         {fp::OffsetEncoding::kChain, fp::OffsetEncoding::kPaper}) {
      fp::FormulationOptions fopt;
      fopt.offset = enc;
      fp::MilpFormulation formulation(p, *part, fopt);
      const std::vector<double> encoded = formulation.encode(sres.plan);
      EXPECT_TRUE(formulation.model().isFeasible(encoded, 1e-6))
          << "trial " << trial << " encoding " << static_cast<int>(enc);
    }
    ++exercised;
  }
  EXPECT_GE(exercised, 5);
}

// Compatibility is an equivalence relation on same-shape areas.
TEST(CompatibilityProperty, EquivalenceRelationOnRandomDevices) {
  Rng rng(31337);
  for (int trial = 0; trial < 40; ++trial) {
    const device::Device dev =
        device::columnarFromPattern("rand", randomPattern(rng, 5, 12), 4);
    const int w = 1 + static_cast<int>(rng.nextBelow(3));
    const int h = 1 + static_cast<int>(rng.nextBelow(3));
    const Rect a{static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(dev.width() - w + 1))),
                 static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(dev.height() - h + 1))), w, h};
    EXPECT_TRUE(partition::areCompatible(dev, a, a));  // reflexive
    const auto placements = partition::enumerateCompatiblePlacements(dev, a);
    for (const Rect& b : placements) {
      EXPECT_TRUE(partition::areCompatible(dev, b, a));  // symmetric
      for (const Rect& c : placements)
        EXPECT_TRUE(partition::areCompatible(dev, b, c));  // transitive
    }
  }
}

// Relocating any bitstream around a cycle of compatible areas is lossless.
TEST(BitstreamProperty, RelocationCyclesAreLossless) {
  Rng rng(55);
  const device::Device dev = device::virtex5FX70T();
  int cycles = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const int w = 1 + static_cast<int>(rng.nextBelow(6));
    const int h = 1 + static_cast<int>(rng.nextBelow(4));
    const Rect src{static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(dev.width() - w + 1))),
                   static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(dev.height() - h + 1))), w, h};
    const auto placements = partition::enumerateCompatiblePlacements(dev, src);
    if (placements.size() < 2 || dev.rectHitsForbidden(src)) continue;
    bitstream::PartialBitstream bs = bitstream::generateBitstream(dev, src, trial);
    const std::uint32_t original_crc = bs.crc;
    for (const Rect& stop : placements) bs = bitstream::relocateBitstream(dev, bs, stop);
    bs = bitstream::relocateBitstream(dev, bs, src);
    EXPECT_EQ(bs.crc, original_crc) << "trial " << trial;
    EXPECT_EQ(bitstream::verifyBitstream(dev, bs), "") << "trial " << trial;
    ++cycles;
  }
  EXPECT_GE(cycles, 10);
}

// Candidate enumeration exactness: every enumerated shape covers the
// requirement; nothing cheaper than min_waste exists (checked by scanning
// all rectangles directly).
TEST(CandidateProperty, MinWasteMatchesExhaustiveScan) {
  Rng rng(808);
  for (int trial = 0; trial < 15; ++trial) {
    const device::Device dev =
        device::columnarFromPattern("rand", randomPattern(rng, 4, 8), 3);
    model::FloorplanProblem p = randomProblem(dev, rng, 1);
    if (!p.validate().empty()) continue;
    const search::RegionCandidates cands = search::enumerateCandidates(p, 0);
    long brute_min = LONG_MAX;
    for (int x = 0; x < dev.width(); ++x)
      for (int y = 0; y < dev.height(); ++y)
        for (int w = 1; x + w <= dev.width(); ++w)
          for (int h = 1; y + h <= dev.height(); ++h) {
            const Rect r{x, y, w, h};
            if (dev.rectHitsForbidden(r)) continue;
            const std::vector<int> hist = dev.tileHistogram(r);
            bool ok = true;
            for (int t = 0; t < 3 && ok; ++t) ok = hist[static_cast<std::size_t>(t)] >= p.region(0).required(t);
            if (ok) brute_min = std::min(brute_min, model::regionWaste(p, 0, r));
          }
    if (brute_min == LONG_MAX) {
      EXPECT_TRUE(cands.shapes.empty()) << "trial " << trial;
    } else {
      EXPECT_EQ(cands.min_waste, brute_min) << "trial " << trial;
    }
  }
}

// Cross-engine agreement through the driver's unified dispatch: on seeded
// generator instances, the exact search and the MILP floorplanner (backend
// milp-o, same lexicographic objective) must report the same optimal
// wasted-frame count — the central claim that the engines solve the same
// problem semantics.
TEST(CrossEngineProperty, DriverBackendsAgreeOnGeneratedInstances) {
  const device::Device dev = device::columnarFromPattern("gen", "CCBCCD", 4);
  model::GeneratorOptions gopt;
  gopt.num_regions = 2;
  gopt.max_region_width = 3;
  gopt.max_region_height = 2;
  gopt.num_nets = 1;

  const driver::Driver drv;
  driver::SolveRequest search_req;
  search_req.backend = driver::Backend::kSearch;
  driver::SolveRequest milp_req;
  milp_req.backend = driver::Backend::kMilpO;
  milp_req.deadline_seconds = 60.0;

  int instances = 0;
  int both_optimal = 0;
  for (std::uint64_t seed = 1; instances < 20 && seed < 200; ++seed) {
    gopt.seed = seed;
    const auto p = model::generateProblem(dev, gopt);
    if (!p) continue;
    ++instances;

    const driver::SolveResponse exact = drv.solve(*p, search_req);
    ASSERT_EQ(exact.status, driver::SolveStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(model::check(*p, exact.plan), "") << "seed " << seed;

    const driver::SolveResponse milp = drv.solve(*p, milp_req);
    ASSERT_TRUE(milp.hasSolution()) << "seed " << seed << ": " << milp.detail;
    ASSERT_EQ(model::check(*p, milp.plan), "") << "seed " << seed;
    if (milp.status == driver::SolveStatus::kOptimal) {
      EXPECT_EQ(milp.costs.wasted_frames, exact.costs.wasted_frames)
          << "seed " << seed << ": " << milp.detail;
      ++both_optimal;
    } else {
      // A truncated MILP can only overestimate the optimum.
      EXPECT_GE(milp.costs.wasted_frames, exact.costs.wasted_frames) << "seed " << seed;
    }
  }
  EXPECT_EQ(instances, 20) << "generator failed too often on this device";
  EXPECT_GE(both_optimal, 15) << "too few instances reached a MILP optimality proof";
}

}  // namespace
}  // namespace rfp
