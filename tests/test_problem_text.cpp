// Problem text format: parsing, round-trips, and line-numbered diagnostics.
#include <gtest/gtest.h>

#include "device/builders.hpp"
#include "io/problem_text.hpp"
#include "support/check.hpp"

namespace rfp::io {
namespace {

const char* kSdrText = R"(
# the paper's SDR design (Table I)
problem sdr
region matched_filter  CLB=25 DSP=5
region carrier_recovery CLB=7 DSP=1
region demodulator     CLB=5 BRAM=2
region signal_decoder  CLB=12 BRAM=1
region video_decoder   CLB=55 BRAM=2 DSP=5
net 64 matched_filter carrier_recovery
net 64 carrier_recovery demodulator
net 64 demodulator signal_decoder
net 64 signal_decoder video_decoder
relocate carrier_recovery count=2
relocate demodulator count=2
relocate signal_decoder count=2
objective lexicographic
)";

TEST(ProblemText, ParsesTheSdrDesign) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem p = parseProblem(kSdrText, dev);
  ASSERT_EQ(p.numRegions(), 5);
  EXPECT_EQ(p.region(0).name, "matched_filter");
  EXPECT_EQ(p.region(0).required(dev.tileTypeId("CLB")), 25);
  EXPECT_EQ(p.region(0).required(dev.tileTypeId("DSP")), 5);
  EXPECT_EQ(p.region(0).required(dev.tileTypeId("BRAM")), 0);
  EXPECT_EQ(p.nets().size(), 4u);
  EXPECT_DOUBLE_EQ(p.nets()[0].weight, 64.0);
  EXPECT_EQ(p.totalFcAreas(), 6);
  EXPECT_TRUE(p.lexicographic());
  EXPECT_EQ(p.minFrames(0), 1040);  // Table I's frame column
}

TEST(ProblemText, MatchesTheBuiltInSdrProblem) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem parsed = parseProblem(kSdrText, dev);
  model::FloorplanProblem built = model::makeSdrProblem(dev);
  model::addSdrRelocations(built, 2);
  ASSERT_EQ(parsed.numRegions(), built.numRegions());
  for (int n = 0; n < built.numRegions(); ++n)
    for (int t = 0; t < dev.numTileTypes(); ++t)
      EXPECT_EQ(parsed.region(n).required(t), built.region(n).required(t)) << n << "," << t;
}

TEST(ProblemText, RoundTripsThroughFormat) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem a = parseProblem(kSdrText, dev);
  const model::FloorplanProblem b = parseProblem(formatProblem(a), dev);
  ASSERT_EQ(a.numRegions(), b.numRegions());
  for (int n = 0; n < a.numRegions(); ++n) {
    EXPECT_EQ(a.region(n).name, b.region(n).name);
    for (int t = 0; t < dev.numTileTypes(); ++t)
      EXPECT_EQ(a.region(n).required(t), b.region(n).required(t));
  }
  ASSERT_EQ(a.nets().size(), b.nets().size());
  for (std::size_t i = 0; i < a.nets().size(); ++i) {
    EXPECT_EQ(a.nets()[i].regions, b.nets()[i].regions);
    EXPECT_DOUBLE_EQ(a.nets()[i].weight, b.nets()[i].weight);
  }
  ASSERT_EQ(a.relocations().size(), b.relocations().size());
  EXPECT_EQ(a.lexicographic(), b.lexicographic());
}

TEST(ProblemText, ParsesWeightedObjectiveAndSoftRelocation) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem p = parseProblem(R"(
region a CLB=4
relocate a count=3 soft weight=2.5
objective weighted q1=1 q2=0.5 q3=2 q4=0.25
)",
                                                 dev);
  ASSERT_EQ(p.relocations().size(), 1u);
  EXPECT_FALSE(p.relocations()[0].hard);
  EXPECT_DOUBLE_EQ(p.relocations()[0].weight, 2.5);
  EXPECT_EQ(p.relocations()[0].count, 3);
  EXPECT_FALSE(p.lexicographic());
  EXPECT_DOUBLE_EQ(p.weights().q1_wirelength, 1.0);
  EXPECT_DOUBLE_EQ(p.weights().q2_perimeter, 0.5);
  EXPECT_DOUBLE_EQ(p.weights().q3_wasted, 2.0);
  EXPECT_DOUBLE_EQ(p.weights().q4_relocation, 0.25);

  const model::FloorplanProblem round = parseProblem(formatProblem(p), dev);
  EXPECT_FALSE(round.lexicographic());
  EXPECT_DOUBLE_EQ(round.weights().q4_relocation, 0.25);
  EXPECT_FALSE(round.relocations()[0].hard);
}

struct BadInput {
  const char* name;
  const char* text;
  const char* what_contains;
};

class ProblemTextErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(ProblemTextErrors, RejectsWithLineNumberedMessage) {
  const device::Device dev = device::virtex5FX70T();
  try {
    (void)parseProblem(GetParam().text, dev);
    FAIL() << "expected CheckError";
  } catch (const rfp::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().what_contains), std::string::npos)
        << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProblemTextErrors,
    ::testing::Values(
        BadInput{"unknown_keyword", "frobnicate x\n", "unknown keyword"},
        BadInput{"unknown_tile_type", "region a FOO=3\n", "unknown tile type"},
        BadInput{"unknown_region_in_net", "region a CLB=2\nnet 1 a ghost\n",
                 "unknown region"},
        BadInput{"duplicate_region", "region a CLB=2\nregion a CLB=3\n", "duplicate"},
        BadInput{"relocate_without_count", "region a CLB=2\nrelocate a weight=1\n",
                 "count"},
        BadInput{"bad_objective", "region a CLB=2\nobjective fastest\n", "objective"},
        BadInput{"net_single_pin", "region a CLB=2\nnet 1 a\n", "net"},
        BadInput{"empty_region", "region a\n", "region"}),
    [](const ::testing::TestParamInfo<BadInput>& info) { return info.param.name; });

TEST(ProblemText, CommentsAndBlankLinesAreIgnored)
{
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem p = parseProblem(
      "# leading comment\n\nregion a CLB=2   # trailing comment\n\n", dev);
  EXPECT_EQ(p.numRegions(), 1);
}

}  // namespace
}  // namespace rfp::io
