// Negative compile test: writing a RFP_GUARDED_BY member without holding
// its mutex. Under Clang with -Wthread-safety -Werror this must NOT compile;
// under other compilers the annotations expand to nothing and it must.
// Wired up by the try_compile block in the top-level CMakeLists.txt.
#include "support/sync.hpp"

namespace {

struct Counter {
  rfp::sync::Mutex mu;
  int value RFP_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.value = 1;  // unguarded write: requires holding c.mu
  return c.value;
}
