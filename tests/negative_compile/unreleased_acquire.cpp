// Negative compile test: a lock() with no matching unlock() on any path.
// Under Clang with -Wthread-safety -Werror this must NOT compile ("mutex is
// still held at the end of function"); under other compilers it must.
// Wired up by the try_compile block in the top-level CMakeLists.txt.
#include "support/sync.hpp"

namespace {

rfp::sync::Mutex g_mu;
int g_value RFP_GUARDED_BY(g_mu) = 0;

int bumpAndLeak() {
  g_mu.lock();
  return ++g_value;  // g_mu is never released
}

}  // namespace

int main() { return bumpAndLeak() == 1 ? 0 : 1; }
