// Positive control for the negative compile tests: idiomatic use of the
// annotated sync layer. Must compile under every compiler, including Clang
// with -Wthread-safety -Werror — if this fails, the gate is broken, not the
// code under test. Wired up by the try_compile block in CMakeLists.txt.
#include "support/sync.hpp"

namespace {

struct Counter {
  rfp::sync::Mutex mu;
  int value RFP_GUARDED_BY(mu) = 0;

  int bump() {
    const rfp::sync::MutexLock lock(mu);
    return ++value;
  }
};

}  // namespace

int main() {
  Counter c;
  return c.bump() == 1 ? 0 : 1;
}
