// Driver subsystem: backend dispatch, portfolio arbitration + cancellation,
// deadline handling, and batch determinism across pool sizes.
#include <gtest/gtest.h>

#include <algorithm>

#include "device/builders.hpp"
#include "driver/driver.hpp"
#include "model/floorplan.hpp"
#include "model/generator.hpp"
#include "model/problem.hpp"
#include "search/solver.hpp"
#include "support/timer.hpp"

namespace rfp::driver {
namespace {

model::FloorplanProblem twoRegionProblem(const device::Device& dev) {
  model::FloorplanProblem p(&dev);
  model::RegionSpec a;
  a.name = "a";
  a.tiles = {6, 1, 0};
  p.addRegion(a);
  model::RegionSpec b;
  b.name = "b";
  b.tiles = {4, 0, 1};
  p.addRegion(b);
  p.addNet(model::Net{{0, 1}, 1.0, "n"});
  return p;
}

TEST(DriverEnums, BackendNamesRoundTrip) {
  for (const Backend b : allBackends()) {
    const auto parsed = backendFromString(toString(b));
    ASSERT_TRUE(parsed.has_value()) << toString(b);
    EXPECT_EQ(*parsed, b);
  }
  // rfp_cli's historical aliases for the MILP algorithms keep working.
  EXPECT_EQ(backendFromString("o"), Backend::kMilpO);
  EXPECT_EQ(backendFromString("ho"), Backend::kMilpHO);
  EXPECT_FALSE(backendFromString("simplex").has_value());
}

TEST(DriverSingle, EveryBackendSolvesASmallProblem) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  for (const Backend b : allBackends()) {
    SolveRequest req;
    req.backend = b;
    req.deadline_seconds = 60.0;
    const SolveResponse res = drv.solve(p, req);
    EXPECT_EQ(res.backend, b);
    ASSERT_TRUE(res.hasSolution()) << toString(b) << ": " << res.detail;
    EXPECT_EQ(model::check(p, res.plan), "") << toString(b);
    if (isExhaustive(b)) {
      EXPECT_EQ(res.status, SolveStatus::kOptimal) << res.detail;
    }
  }
}

TEST(DriverSingle, ExhaustiveBackendsAgreeOnTheOptimum) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  const SolveResponse exact = drv.solve(p, req);
  req.backend = Backend::kMilpO;
  req.deadline_seconds = 120.0;
  const SolveResponse milp = drv.solve(p, req);
  ASSERT_EQ(exact.status, SolveStatus::kOptimal);
  ASSERT_EQ(milp.status, SolveStatus::kOptimal) << milp.detail;
  EXPECT_EQ(exact.costs.wasted_frames, milp.costs.wasted_frames);
  // MILP optimality holds within gap_tol, so equally-optimal plans may
  // differ in the last bits of the wire length.
  EXPECT_NEAR(exact.costs.wire_length, milp.costs.wire_length,
              1e-4 * std::max(1.0, exact.costs.wire_length));
}

TEST(DriverSingle, InfeasibleProblemsAreProvenInfeasible) {
  // Demand beyond the device's supply: an aggregate-infeasibility verdict.
  const device::Device dev = device::columnarFromPattern("t", "CCCC", 3);
  model::FloorplanProblem p(&dev);
  model::RegionSpec r;
  r.name = "huge";
  r.tiles = {1000, 0, 0};
  p.addRegion(r);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  EXPECT_EQ(drv.solve(p, req).status, SolveStatus::kInfeasible);
  // The incomplete engines cannot prove anything.
  req.backend = Backend::kHeuristic;
  EXPECT_EQ(drv.solve(p, req).status, SolveStatus::kNoSolution);
}

TEST(DriverPortfolio, MatchesTheExactOptimumOnTheSdrProblem) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);

  search::SearchOptions sopt;
  sopt.num_threads = 2;
  const search::SearchResult ref = search::ColumnarSearchSolver(sopt).solve(sdr);
  ASSERT_EQ(ref.status, search::SearchStatus::kOptimal);

  const Driver drv;
  SolveRequest req;
  req.num_threads = 2;
  req.deadline_seconds = 300.0;  // ample; the search proof cancels the rest
  const SolveResponse res = drv.solvePortfolio(sdr, req);
  ASSERT_EQ(res.status, SolveStatus::kOptimal) << res.detail;
  EXPECT_EQ(res.costs.wasted_frames, ref.costs.wasted_frames);
  // A gap-tolerance MILP win is equally optimal but not bit-identical.
  EXPECT_NEAR(res.costs.wire_length, ref.costs.wire_length,
              1e-4 * std::max(1.0, ref.costs.wire_length));
  EXPECT_EQ(model::check(sdr, res.plan), "");
}

TEST(DriverPortfolio, ProvenInfeasibilityWinsOverNoSolution) {
  const device::Device dev = device::columnarFromPattern("t", "CCCC", 3);
  model::FloorplanProblem p(&dev);
  model::RegionSpec r;
  r.name = "huge";
  r.tiles = {1000, 0, 0};
  p.addRegion(r);
  const Driver drv;
  SolveRequest req;
  req.deadline_seconds = 60.0;
  const SolveResponse res = drv.solvePortfolio(p, req);
  EXPECT_EQ(res.status, SolveStatus::kInfeasible) << res.detail;
}

TEST(DriverPortfolio, ExplicitSingletonPortfolioBehavesLikeSingle) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.portfolio = {Backend::kSearch};
  const SolveResponse res = drv.solvePortfolio(p, req);
  EXPECT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_EQ(res.backend, Backend::kSearch);
}

TEST(DriverDeadline, AnnealerStopsAtTheDeadline) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kAnnealer;
  req.annealer.iterations = 2000000000L;  // would run for hours un-bounded
  req.deadline_seconds = 0.3;
  Stopwatch watch;
  const SolveResponse res = drv.solve(sdr, req);
  EXPECT_LT(watch.seconds(), 10.0);  // poll granularity + CI slack
  EXPECT_EQ(res.status, SolveStatus::kFeasible) << res.detail;
}

TEST(DriverDeadline, MilpStopsNearTheDeadline) {
  // The full SDR MILP runs far beyond a minute un-bounded; a one-second
  // deadline must cut it off at a node boundary.
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kMilpO;
  req.deadline_seconds = 1.0;
  Stopwatch watch;
  const SolveResponse res = drv.solve(sdr, req);
  EXPECT_LT(watch.seconds(), 60.0);  // one LP/presolve round of slack
  EXPECT_NE(res.status, SolveStatus::kOptimal);
}

TEST(DriverBatch, ResultsAreIndependentOfThePoolSize) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCCCCBC", 6);
  model::GeneratorOptions gopt;
  gopt.num_regions = 3;
  gopt.max_region_width = 4;
  gopt.max_region_height = 3;
  std::vector<model::FloorplanProblem> problems;
  for (std::uint64_t seed = 1; problems.size() < 8; ++seed) {
    gopt.seed = seed;
    if (auto p = model::generateProblem(dev, gopt)) problems.push_back(std::move(*p));
  }
  std::vector<const model::FloorplanProblem*> ptrs;
  for (const auto& p : problems) ptrs.push_back(&p);

  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  // Deliberately no deadline: the pool-size-independence guarantee only
  // holds when wall-clock truncation cannot differ under pool contention.
  const std::vector<SolveResponse> serial = drv.solveBatch(ptrs, req, 1);
  const std::vector<SolveResponse> pooled = drv.solveBatch(ptrs, req, 4);
  ASSERT_EQ(serial.size(), ptrs.size());
  ASSERT_EQ(pooled.size(), ptrs.size());
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(serial[i].status, pooled[i].status) << "problem " << i;
    ASSERT_TRUE(serial[i].hasSolution()) << "problem " << i;
    EXPECT_EQ(serial[i].costs.wasted_frames, pooled[i].costs.wasted_frames) << "problem " << i;
    EXPECT_DOUBLE_EQ(serial[i].costs.wire_length, pooled[i].costs.wire_length)
        << "problem " << i;
    EXPECT_EQ(model::check(*ptrs[i], pooled[i].plan), "") << "problem " << i;
  }
}

TEST(DriverBatch, EmptyBatchAndOversizedPoolAreFine) {
  const Driver drv;
  SolveRequest req;
  EXPECT_TRUE(drv.solveBatch({}, req, 8).empty());

  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const std::vector<const model::FloorplanProblem*> one = {&p};
  const std::vector<SolveResponse> res = drv.solveBatch(one, req, 16);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, SolveStatus::kOptimal);
}

}  // namespace
}  // namespace rfp::driver
