// Driver subsystem: backend dispatch, portfolio arbitration + cancellation,
// incumbent exchange, staged deadlines, deadline handling, and batch
// determinism / cancellation across pool sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "device/builders.hpp"
#include "driver/backend_runner.hpp"
#include "driver/driver.hpp"
#include "driver/incumbent.hpp"
#include "model/floorplan.hpp"
#include "model/generator.hpp"
#include "model/problem.hpp"
#include "search/solver.hpp"
#include "support/timer.hpp"

namespace rfp::driver {
namespace {

model::FloorplanProblem twoRegionProblem(const device::Device& dev) {
  model::FloorplanProblem p(&dev);
  model::RegionSpec a;
  a.name = "a";
  a.tiles = {6, 1, 0};
  p.addRegion(a);
  model::RegionSpec b;
  b.name = "b";
  b.tiles = {4, 0, 1};
  p.addRegion(b);
  p.addNet(model::Net{{0, 1}, 1.0, "n"});
  return p;
}

TEST(DriverEnums, BackendNamesRoundTrip) {
  for (const Backend b : allBackends()) {
    const auto parsed = backendFromString(toString(b));
    ASSERT_TRUE(parsed.has_value()) << toString(b);
    EXPECT_EQ(*parsed, b);
  }
  // rfp_cli's historical aliases for the MILP algorithms keep working.
  EXPECT_EQ(backendFromString("o"), Backend::kMilpO);
  EXPECT_EQ(backendFromString("ho"), Backend::kMilpHO);
  EXPECT_FALSE(backendFromString("simplex").has_value());
}

TEST(DriverSingle, EveryBackendSolvesASmallProblem) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  for (const Backend b : allBackends()) {
    SolveRequest req;
    req.backend = b;
    req.deadline_seconds = 60.0;
    const SolveResponse res = drv.solve(p, req);
    EXPECT_EQ(res.backend, b);
    ASSERT_TRUE(res.hasSolution()) << toString(b) << ": " << res.detail;
    EXPECT_EQ(model::check(p, res.plan), "") << toString(b);
    if (isExhaustive(b)) {
      EXPECT_EQ(res.status, SolveStatus::kOptimal) << res.detail;
    }
  }
}

TEST(DriverSingle, ExhaustiveBackendsAgreeOnTheOptimum) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  const SolveResponse exact = drv.solve(p, req);
  req.backend = Backend::kMilpO;
  req.deadline_seconds = 120.0;
  const SolveResponse milp = drv.solve(p, req);
  ASSERT_EQ(exact.status, SolveStatus::kOptimal);
  ASSERT_EQ(milp.status, SolveStatus::kOptimal) << milp.detail;
  EXPECT_EQ(exact.costs.wasted_frames, milp.costs.wasted_frames);
  // MILP optimality holds within gap_tol, so equally-optimal plans may
  // differ in the last bits of the wire length.
  EXPECT_NEAR(exact.costs.wire_length, milp.costs.wire_length,
              1e-4 * std::max(1.0, exact.costs.wire_length));
}

TEST(DriverSingle, InfeasibleProblemsAreProvenInfeasible) {
  // Demand beyond the device's supply: an aggregate-infeasibility verdict.
  const device::Device dev = device::columnarFromPattern("t", "CCCC", 3);
  model::FloorplanProblem p(&dev);
  model::RegionSpec r;
  r.name = "huge";
  r.tiles = {1000, 0, 0};
  p.addRegion(r);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  EXPECT_EQ(drv.solve(p, req).status, SolveStatus::kInfeasible);
  // The incomplete engines cannot prove anything.
  req.backend = Backend::kHeuristic;
  EXPECT_EQ(drv.solve(p, req).status, SolveStatus::kNoSolution);
}

TEST(DriverPortfolio, MatchesTheExactOptimumOnTheSdrProblem) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);

  search::SearchOptions sopt;
  sopt.num_threads = 2;
  const search::SearchResult ref = search::ColumnarSearchSolver(sopt).solve(sdr);
  ASSERT_EQ(ref.status, search::SearchStatus::kOptimal);

  const Driver drv;
  SolveRequest req;
  req.num_threads = 2;
  // Ample for the provers; short enough that the staged first slice (a
  // quarter of this) does not dominate the test's wall clock.
  req.deadline_seconds = 12.0;
  const SolveResponse res = drv.solvePortfolio(sdr, req);
  ASSERT_EQ(res.status, SolveStatus::kOptimal) << res.detail;
  EXPECT_EQ(res.costs.wasted_frames, ref.costs.wasted_frames);
  // A gap-tolerance MILP win is equally optimal but not bit-identical.
  EXPECT_NEAR(res.costs.wire_length, ref.costs.wire_length,
              1e-4 * std::max(1.0, ref.costs.wire_length));
  EXPECT_EQ(model::check(sdr, res.plan), "");
}

TEST(DriverPortfolio, ProvenInfeasibilityWinsOverNoSolution) {
  const device::Device dev = device::columnarFromPattern("t", "CCCC", 3);
  model::FloorplanProblem p(&dev);
  model::RegionSpec r;
  r.name = "huge";
  r.tiles = {1000, 0, 0};
  p.addRegion(r);
  const Driver drv;
  SolveRequest req;
  req.deadline_seconds = 60.0;
  const SolveResponse res = drv.solvePortfolio(p, req);
  EXPECT_EQ(res.status, SolveStatus::kInfeasible) << res.detail;
}

TEST(DriverPortfolio, ExplicitSingletonPortfolioBehavesLikeSingle) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.portfolio = {Backend::kSearch};
  const SolveResponse res = drv.solvePortfolio(p, req);
  EXPECT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_EQ(res.backend, Backend::kSearch);
}

TEST(DriverDeadline, AnnealerStopsAtTheDeadline) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kAnnealer;
  req.annealer.iterations = 2000000000L;  // would run for hours un-bounded
  req.deadline_seconds = 0.3;
  Stopwatch watch;
  const SolveResponse res = drv.solve(sdr, req);
  EXPECT_LT(watch.seconds(), 10.0);  // poll granularity + CI slack
  EXPECT_EQ(res.status, SolveStatus::kFeasible) << res.detail;
}

TEST(DriverDeadline, MilpStopsNearTheDeadline) {
  // The full SDR MILP runs far beyond a minute un-bounded; a one-second
  // deadline must cut it off at a node boundary.
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kMilpO;
  req.deadline_seconds = 1.0;
  Stopwatch watch;
  const SolveResponse res = drv.solve(sdr, req);
  EXPECT_LT(watch.seconds(), 60.0);  // one LP/presolve round of slack
  EXPECT_NE(res.status, SolveStatus::kOptimal);
}

TEST(DriverBatch, ResultsAreIndependentOfThePoolSize) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCCCCBC", 6);
  model::GeneratorOptions gopt;
  gopt.num_regions = 3;
  gopt.max_region_width = 4;
  gopt.max_region_height = 3;
  std::vector<model::FloorplanProblem> problems;
  for (std::uint64_t seed = 1; problems.size() < 8; ++seed) {
    gopt.seed = seed;
    if (auto p = model::generateProblem(dev, gopt)) problems.push_back(std::move(*p));
  }
  std::vector<const model::FloorplanProblem*> ptrs;
  for (const auto& p : problems) ptrs.push_back(&p);

  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  // Deliberately no deadline: the pool-size-independence guarantee only
  // holds when wall-clock truncation cannot differ under pool contention.
  const std::vector<SolveResponse> serial = drv.solveBatch(ptrs, req, 1);
  const std::vector<SolveResponse> pooled = drv.solveBatch(ptrs, req, 4);
  ASSERT_EQ(serial.size(), ptrs.size());
  ASSERT_EQ(pooled.size(), ptrs.size());
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(serial[i].status, pooled[i].status) << "problem " << i;
    ASSERT_TRUE(serial[i].hasSolution()) << "problem " << i;
    EXPECT_EQ(serial[i].costs.wasted_frames, pooled[i].costs.wasted_frames) << "problem " << i;
    EXPECT_DOUBLE_EQ(serial[i].costs.wire_length, pooled[i].costs.wire_length)
        << "problem " << i;
    EXPECT_EQ(model::check(*ptrs[i], pooled[i].plan), "") << "problem " << i;
  }
}

TEST(DriverPortfolio, StagedDeadlinesSeedTheProversAndReportTelemetry) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.num_threads = 2;
  req.deadline_seconds = 12.0;
  req.annealer.iterations = 20000;  // a quick stage-1 publisher
  const SolveResponse res = drv.solvePortfolio(sdr, req);
  ASSERT_EQ(res.status, SolveStatus::kOptimal) << res.detail;
  EXPECT_TRUE(res.incumbent.staged) << res.detail;
  EXPECT_GT(res.incumbent.adoptions, 0) << res.detail;  // stage 1 published
  ASSERT_EQ(res.members.size(), 4u);
  for (const PortfolioMemberStats& m : res.members) {
    EXPECT_EQ(m.stage, isExhaustive(m.backend) ? 2 : 1) << toString(m.backend);
    // The winner's `nodes` is its own count, not a sum across members.
    if (m.backend == res.backend) {
      EXPECT_EQ(res.nodes, m.nodes);
    }
  }
}

TEST(DriverPortfolio, ExchangeNeverWorseThanTheBlindRace) {
  // Satellite invariant: with the incumbent channel (and staging), the
  // portfolio never returns a worse floorplan than the blind flat race on
  // the same instance — in either objective mode.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCCCCBC", 6);
  model::GeneratorOptions gopt;
  gopt.num_regions = 3;
  gopt.max_region_width = 4;
  gopt.max_region_height = 3;
  const Driver drv;
  for (const bool lexicographic : {true, false}) {
    int exercised = 0;
    for (std::uint64_t seed = 1; exercised < 3 && seed < 40; ++seed) {
      gopt.seed = seed;
      auto p = model::generateProblem(dev, gopt);
      if (!p) continue;
      ++exercised;
      p->setLexicographic(lexicographic);

      SolveRequest req;
      req.deadline_seconds = 8.0;
      req.annealer.iterations = 20000;  // instances are tiny; keep races quick
      req.incumbent_exchange = false;
      req.staged_deadlines = false;
      const SolveResponse blind = drv.solvePortfolio(*p, req);
      req.incumbent_exchange = true;
      req.staged_deadlines = true;
      const SolveResponse coop = drv.solvePortfolio(*p, req);

      ASSERT_TRUE(blind.hasSolution()) << "seed " << seed << ": " << blind.detail;
      ASSERT_TRUE(coop.hasSolution()) << "seed " << seed << ": " << coop.detail;
      EXPECT_FALSE(model::strictlyBetter(*p, blind.costs, coop.costs))
          << "seed " << seed << " lex=" << lexicographic << ": exchange lost ("
          << coop.detail << ")";
      EXPECT_EQ(model::check(*p, coop.plan), "") << "seed " << seed;
    }
    EXPECT_GE(exercised, 2);
  }
}

TEST(SharedIncumbentChannel, ConcurrentPublishesAreMonotoneAndKeepTheBest) {
  // Property: under concurrent publishes the channel's best cost never
  // worsens between observations, and the final best is not beaten by any
  // published cost.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  // One checker-valid plan (publish re-validates plans); the synthetic cost
  // vectors attached to it drive the ordering under test.
  const search::SearchResult ref = search::ColumnarSearchSolver().solve(p);
  ASSERT_TRUE(ref.hasSolution());

  SharedIncumbent channel(p);
  constexpr int kThreads = 4;
  constexpr long kPublishes = 400;
  std::atomic<bool> go{false};
  std::atomic<long> best_seen_waste{1L << 40};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      // Distinct deterministic cost sequences per thread, non-monotone on
      // purpose so the channel has to reject the worsening ones.
      for (long i = 0; i < kPublishes; ++i) {
        model::FloorplanCosts costs;
        costs.wasted_frames = ((i * 37 + t * 11) % 1000) + 1;
        costs.wire_length = static_cast<double>(t);
        channel.publish(ref.plan, costs, "writer");
        long cur = best_seen_waste.load();
        while (costs.wasted_frames < cur &&
               !best_seen_waste.compare_exchange_weak(cur, costs.wasted_frames)) {
        }
      }
    });
  std::thread reader([&] {
    model::FloorplanCosts prev;
    bool have_prev = false;
    std::uint64_t seen = 0;
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < 10000; ++i) {
      model::FloorplanCosts cur;
      if (!channel.snapshotNewer(&seen, nullptr, &cur)) continue;
      if (have_prev) {
        EXPECT_FALSE(model::strictlyBetter(p, prev, cur))
            << "channel went backwards: " << prev.wasted_frames << " -> " << cur.wasted_frames;
      }
      prev = cur;
      have_prev = true;
    }
  });
  go.store(true);
  for (std::thread& w : writers) w.join();
  reader.join();

  model::FloorplanCosts final_costs;
  ASSERT_TRUE(channel.best(nullptr, &final_costs));
  EXPECT_EQ(final_costs.wasted_frames, best_seen_waste.load());
  EXPECT_EQ(channel.publishes(), static_cast<long>(kThreads) * kPublishes);
  EXPECT_GT(channel.adoptions(), 0);
  EXPECT_EQ(channel.adoptions(), static_cast<long>(channel.version()));
}

TEST(SharedIncumbentChannel, SearchProvesASeededIncumbentOptimal) {
  // Seed the channel with the known optimum: the search must adopt it
  // (pruning from the root) and still prove optimality — returning the
  // seeded plan, since nothing strictly better exists.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const search::SearchResult ref = search::ColumnarSearchSolver().solve(p);
  ASSERT_EQ(ref.status, search::SearchStatus::kOptimal);

  SharedIncumbent channel(p);
  ASSERT_TRUE(channel.publish(ref.plan, ref.costs, "annealer"));

  search::SearchOptions opt;
  opt.incumbent = &channel;
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(p);
  EXPECT_EQ(res.status, search::SearchStatus::kOptimal);
  EXPECT_EQ(res.adopted, 1);
  EXPECT_EQ(res.costs.wasted_frames, ref.costs.wasted_frames);
  // The search ranks plans by a wire-length key quantized at 1/64, so an
  // equal-key tie may swap in a plan within that resolution of the optimum.
  EXPECT_NEAR(res.costs.wire_length, ref.costs.wire_length, 1.0 / 32.0);
  // The channel never regressed: its best is still the optimum.
  model::FloorplanCosts chan_costs;
  ASSERT_TRUE(channel.best(nullptr, &chan_costs));
  EXPECT_FALSE(model::strictlyBetter(p, ref.costs, chan_costs));
}

TEST(DriverCancellation, CancelledExactBackendsNeverClaimProofs) {
  // Regression: an exact backend unwinding from an already-raised stop flag
  // (the "instant prover" won before we even started) must never report
  // kOptimal or kInfeasible — a cancelled run is not a proof.
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  SolveRequest req;
  req.deadline_seconds = 30.0;
  std::atomic<bool> stop{true};
  for (const Backend b : {Backend::kSearch, Backend::kMilpO}) {
    req.backend = b;
    const SolveResponse res = detail::runBackend(sdr, req, b, &stop);
    EXPECT_NE(res.status, SolveStatus::kOptimal) << toString(b) << ": " << res.detail;
    EXPECT_NE(res.status, SolveStatus::kInfeasible) << toString(b) << ": " << res.detail;
  }

  // Even a verdict the engine can reach without searching (aggregate supply
  // shortfall) is downgraded at the boundary once the run was cancelled.
  model::FloorplanProblem infeasible(&dev);
  model::RegionSpec huge;
  huge.name = "huge";
  huge.tiles = {1000000, 0, 0};
  infeasible.addRegion(huge);
  req.backend = Backend::kSearch;
  const SolveResponse res = detail::runBackend(infeasible, req, Backend::kSearch, &stop);
  EXPECT_EQ(res.status, SolveStatus::kNoSolution) << res.detail;
}

TEST(DriverCancellation, RacingAnInstantProverAgainstASlowExactSolve) {
  // The instant prover settles the problem milliseconds in; the slow exact
  // MILP run must unwind promptly and report a truncation, not a proof.
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  SolveRequest req;
  req.backend = Backend::kMilpO;
  req.deadline_seconds = 120.0;
  std::atomic<bool> stop{false};
  std::thread prover([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
  });
  Stopwatch watch;
  const SolveResponse res = detail::runBackend(sdr, req, Backend::kMilpO, &stop);
  prover.join();
  EXPECT_LT(watch.seconds(), 60.0);  // unwound long before the deadline
  EXPECT_NE(res.status, SolveStatus::kOptimal) << res.detail;
  EXPECT_NE(res.status, SolveStatus::kInfeasible) << res.detail;
}

TEST(DriverBatch, ExternalStopCancelsInFlightAndPendingSolves) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  std::vector<const model::FloorplanProblem*> ptrs(6, &sdr);

  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kAnnealer;
  req.annealer.iterations = 2000000000L;  // would run for hours un-cancelled
  std::atomic<bool> stop{false};
  std::thread killer([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true);
  });
  Stopwatch watch;
  const std::vector<SolveResponse> res = drv.solveBatch(ptrs, req, 2, &stop);
  killer.join();
  EXPECT_LT(watch.seconds(), 30.0);  // poll granularity + CI slack
  ASSERT_EQ(res.size(), ptrs.size());
  int skipped = 0;
  for (const SolveResponse& r : res) {
    EXPECT_NE(r.status, SolveStatus::kOptimal);
    skipped += r.detail == "batch: cancelled before dispatch" ? 1 : 0;
  }
  // With 6 problems on 2 pool threads and a 200ms cancellation, the tail of
  // the batch is never dispatched.
  EXPECT_GE(skipped, 1);
}

TEST(DriverBatch, OverallDeadlineBoundsTheWholeBatch) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  std::vector<const model::FloorplanProblem*> ptrs(6, &sdr);

  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kAnnealer;
  req.annealer.iterations = 2000000000L;
  Stopwatch watch;
  const std::vector<SolveResponse> res =
      drv.solveBatch(ptrs, req, 2, /*stop=*/nullptr, /*deadline_seconds=*/0.5);
  EXPECT_LT(watch.seconds(), 30.0);  // poll granularity + CI slack
  ASSERT_EQ(res.size(), ptrs.size());
  // Dispatched solves were truncated to the remaining budget; the tail was
  // skipped outright.
  int skipped = 0;
  for (const SolveResponse& r : res)
    skipped += r.detail == "batch: deadline exhausted before dispatch" ? 1 : 0;
  EXPECT_GE(skipped, 1);
}

TEST(DriverBatch, EmptyBatchAndOversizedPoolAreFine) {
  const Driver drv;
  SolveRequest req;
  EXPECT_TRUE(drv.solveBatch({}, req, 8).empty());

  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const std::vector<const model::FloorplanProblem*> one = {&p};
  const std::vector<SolveResponse> res = drv.solveBatch(one, req, 16);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, SolveStatus::kOptimal);
}

}  // namespace
}  // namespace rfp::driver
