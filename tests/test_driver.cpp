// Driver subsystem: backend dispatch, portfolio arbitration + cancellation,
// incumbent exchange, staged deadlines, deadline handling, and batch
// determinism / cancellation across pool sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "device/builders.hpp"
#include "driver/backend_runner.hpp"
#include "driver/cache.hpp"
#include "driver/driver.hpp"
#include "driver/incumbent.hpp"
#include "model/floorplan.hpp"
#include "model/generator.hpp"
#include "model/problem.hpp"
#include "search/solver.hpp"
#include "support/timer.hpp"

namespace rfp::driver {
namespace {

model::FloorplanProblem twoRegionProblem(const device::Device& dev) {
  model::FloorplanProblem p(&dev);
  model::RegionSpec a;
  a.name = "a";
  a.tiles = {6, 1, 0};
  p.addRegion(a);
  model::RegionSpec b;
  b.name = "b";
  b.tiles = {4, 0, 1};
  p.addRegion(b);
  p.addNet(model::Net{{0, 1}, 1.0, "n"});
  return p;
}

TEST(DriverEnums, BackendNamesRoundTrip) {
  for (const Backend b : allBackends()) {
    const auto parsed = backendFromString(toString(b));
    ASSERT_TRUE(parsed.has_value()) << toString(b);
    EXPECT_EQ(*parsed, b);
  }
  // rfp_cli's historical aliases for the MILP algorithms keep working.
  EXPECT_EQ(backendFromString("o"), Backend::kMilpO);
  EXPECT_EQ(backendFromString("ho"), Backend::kMilpHO);
  EXPECT_FALSE(backendFromString("simplex").has_value());
}

TEST(DriverSingle, EveryBackendSolvesASmallProblem) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  for (const Backend b : allBackends()) {
    SolveRequest req;
    req.backend = b;
    req.deadline_seconds = 60.0;
    const SolveResponse res = drv.solve(p, req);
    EXPECT_EQ(res.backend, b);
    ASSERT_TRUE(res.hasSolution()) << toString(b) << ": " << res.detail;
    EXPECT_EQ(model::check(p, res.plan), "") << toString(b);
    if (isExhaustive(b)) {
      EXPECT_EQ(res.status, SolveStatus::kOptimal) << res.detail;
    }
  }
}

TEST(DriverSingle, ExhaustiveBackendsAgreeOnTheOptimum) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  const SolveResponse exact = drv.solve(p, req);
  req.backend = Backend::kMilpO;
  req.deadline_seconds = 120.0;
  const SolveResponse milp = drv.solve(p, req);
  ASSERT_EQ(exact.status, SolveStatus::kOptimal);
  ASSERT_EQ(milp.status, SolveStatus::kOptimal) << milp.detail;
  EXPECT_EQ(exact.costs.wasted_frames, milp.costs.wasted_frames);
  // MILP optimality holds within gap_tol, so equally-optimal plans may
  // differ in the last bits of the wire length.
  EXPECT_NEAR(exact.costs.wire_length, milp.costs.wire_length,
              1e-4 * std::max(1.0, exact.costs.wire_length));
}

TEST(DriverSingle, InfeasibleProblemsAreProvenInfeasible) {
  // Demand beyond the device's supply: an aggregate-infeasibility verdict.
  const device::Device dev = device::columnarFromPattern("t", "CCCC", 3);
  model::FloorplanProblem p(&dev);
  model::RegionSpec r;
  r.name = "huge";
  r.tiles = {1000, 0, 0};
  p.addRegion(r);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  EXPECT_EQ(drv.solve(p, req).status, SolveStatus::kInfeasible);
  // The incomplete engines cannot prove anything.
  req.backend = Backend::kHeuristic;
  EXPECT_EQ(drv.solve(p, req).status, SolveStatus::kNoSolution);
}

TEST(DriverPortfolio, MatchesTheExactOptimumOnTheSdrProblem) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);

  search::SearchOptions sopt;
  sopt.num_threads = 2;
  const search::SearchResult ref = search::ColumnarSearchSolver(sopt).solve(sdr);
  ASSERT_EQ(ref.status, search::SearchStatus::kOptimal);

  const Driver drv;
  SolveRequest req;
  req.num_threads = 2;
  // Ample for the provers; short enough that the staged first slice (a
  // quarter of this) does not dominate the test's wall clock.
  req.deadline_seconds = 12.0;
  const SolveResponse res = drv.solvePortfolio(sdr, req);
  ASSERT_EQ(res.status, SolveStatus::kOptimal) << res.detail;
  EXPECT_EQ(res.costs.wasted_frames, ref.costs.wasted_frames);
  // A gap-tolerance MILP win is equally optimal but not bit-identical.
  EXPECT_NEAR(res.costs.wire_length, ref.costs.wire_length,
              1e-4 * std::max(1.0, ref.costs.wire_length));
  EXPECT_EQ(model::check(sdr, res.plan), "");
}

TEST(DriverPortfolio, ProvenInfeasibilityWinsOverNoSolution) {
  const device::Device dev = device::columnarFromPattern("t", "CCCC", 3);
  model::FloorplanProblem p(&dev);
  model::RegionSpec r;
  r.name = "huge";
  r.tiles = {1000, 0, 0};
  p.addRegion(r);
  const Driver drv;
  SolveRequest req;
  req.deadline_seconds = 60.0;
  const SolveResponse res = drv.solvePortfolio(p, req);
  EXPECT_EQ(res.status, SolveStatus::kInfeasible) << res.detail;
}

TEST(DriverPortfolio, ExplicitSingletonPortfolioBehavesLikeSingle) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.portfolio = {Backend::kSearch};
  const SolveResponse res = drv.solvePortfolio(p, req);
  EXPECT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_EQ(res.backend, Backend::kSearch);
}

TEST(DriverDeadline, AnnealerStopsAtTheDeadline) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kAnnealer;
  req.annealer.iterations = 2000000000L;  // would run for hours un-bounded
  req.deadline_seconds = 0.3;
  Stopwatch watch;
  const SolveResponse res = drv.solve(sdr, req);
  EXPECT_LT(watch.seconds(), 10.0);  // poll granularity + CI slack
  EXPECT_EQ(res.status, SolveStatus::kFeasible) << res.detail;
}

TEST(DriverDeadline, MilpStopsNearTheDeadline) {
  // The full SDR MILP runs far beyond a minute un-bounded; a one-second
  // deadline must cut it off at a node boundary.
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kMilpO;
  req.deadline_seconds = 1.0;
  Stopwatch watch;
  const SolveResponse res = drv.solve(sdr, req);
  EXPECT_LT(watch.seconds(), 60.0);  // one LP/presolve round of slack
  EXPECT_NE(res.status, SolveStatus::kOptimal);
}

TEST(DriverBatch, ResultsAreIndependentOfThePoolSize) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCCCCBC", 6);
  model::GeneratorOptions gopt;
  gopt.num_regions = 3;
  gopt.max_region_width = 4;
  gopt.max_region_height = 3;
  std::vector<model::FloorplanProblem> problems;
  for (std::uint64_t seed = 1; problems.size() < 8; ++seed) {
    gopt.seed = seed;
    if (auto p = model::generateProblem(dev, gopt)) problems.push_back(std::move(*p));
  }
  std::vector<const model::FloorplanProblem*> ptrs;
  for (const auto& p : problems) ptrs.push_back(&p);

  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  // Deliberately no deadline: the pool-size-independence guarantee only
  // holds when wall-clock truncation cannot differ under pool contention.
  const std::vector<SolveResponse> serial = drv.solveBatch(ptrs, req, 1);
  const std::vector<SolveResponse> pooled = drv.solveBatch(ptrs, req, 4);
  ASSERT_EQ(serial.size(), ptrs.size());
  ASSERT_EQ(pooled.size(), ptrs.size());
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(serial[i].status, pooled[i].status) << "problem " << i;
    ASSERT_TRUE(serial[i].hasSolution()) << "problem " << i;
    EXPECT_EQ(serial[i].costs.wasted_frames, pooled[i].costs.wasted_frames) << "problem " << i;
    EXPECT_DOUBLE_EQ(serial[i].costs.wire_length, pooled[i].costs.wire_length)
        << "problem " << i;
    EXPECT_EQ(model::check(*ptrs[i], pooled[i].plan), "") << "problem " << i;
  }
}

TEST(DriverPortfolio, StagedDeadlinesSeedTheProversAndReportTelemetry) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.num_threads = 2;
  req.deadline_seconds = 12.0;
  req.annealer.iterations = 20000;  // a quick stage-1 publisher
  const SolveResponse res = drv.solvePortfolio(sdr, req);
  ASSERT_EQ(res.status, SolveStatus::kOptimal) << res.detail;
  EXPECT_TRUE(res.incumbent.staged) << res.detail;
  EXPECT_GT(res.incumbent.adoptions, 0) << res.detail;  // stage 1 published
  ASSERT_EQ(res.members.size(), 4u);
  for (const PortfolioMemberStats& m : res.members) {
    EXPECT_EQ(m.stage, isExhaustive(m.backend) ? 2 : 1) << toString(m.backend);
    // The winner's `nodes` is its own count, not a sum across members.
    if (m.backend == res.backend) {
      EXPECT_EQ(res.nodes, m.nodes);
    }
  }
}

TEST(DriverPortfolio, ExchangeNeverWorseThanTheBlindRace) {
  // Satellite invariant: with the incumbent channel (and staging), the
  // portfolio never returns a worse floorplan than the blind flat race on
  // the same instance — in either objective mode.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCCCCBC", 6);
  model::GeneratorOptions gopt;
  gopt.num_regions = 3;
  gopt.max_region_width = 4;
  gopt.max_region_height = 3;
  const Driver drv;
  for (const bool lexicographic : {true, false}) {
    int exercised = 0;
    for (std::uint64_t seed = 1; exercised < 3 && seed < 40; ++seed) {
      gopt.seed = seed;
      auto p = model::generateProblem(dev, gopt);
      if (!p) continue;
      ++exercised;
      p->setLexicographic(lexicographic);

      SolveRequest req;
      req.deadline_seconds = 8.0;
      req.annealer.iterations = 20000;  // instances are tiny; keep races quick
      req.incumbent_exchange = false;
      req.staged_deadlines = false;
      const SolveResponse blind = drv.solvePortfolio(*p, req);
      req.incumbent_exchange = true;
      req.staged_deadlines = true;
      const SolveResponse coop = drv.solvePortfolio(*p, req);

      ASSERT_TRUE(blind.hasSolution()) << "seed " << seed << ": " << blind.detail;
      ASSERT_TRUE(coop.hasSolution()) << "seed " << seed << ": " << coop.detail;
      EXPECT_FALSE(model::strictlyBetter(*p, blind.costs, coop.costs))
          << "seed " << seed << " lex=" << lexicographic << ": exchange lost ("
          << coop.detail << ")";
      EXPECT_EQ(model::check(*p, coop.plan), "") << "seed " << seed;
    }
    EXPECT_GE(exercised, 2);
  }
}

TEST(SharedIncumbentChannel, ConcurrentPublishesAreMonotoneAndKeepTheBest) {
  // Property: under concurrent publishes the channel's best cost never
  // worsens between observations, and the final best is not beaten by any
  // published cost.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  // One checker-valid plan (publish re-validates plans); the synthetic cost
  // vectors attached to it drive the ordering under test.
  const search::SearchResult ref = search::ColumnarSearchSolver().solve(p);
  ASSERT_TRUE(ref.hasSolution());

  SharedIncumbent channel(p);
  constexpr int kThreads = 4;
  constexpr long kPublishes = 400;
  std::atomic<bool> go{false};
  std::atomic<long> best_seen_waste{1L << 40};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      // Distinct deterministic cost sequences per thread, non-monotone on
      // purpose so the channel has to reject the worsening ones.
      for (long i = 0; i < kPublishes; ++i) {
        model::FloorplanCosts costs;
        costs.wasted_frames = ((i * 37 + t * 11) % 1000) + 1;
        costs.wire_length = static_cast<double>(t);
        channel.publish(ref.plan, costs, "writer");
        long cur = best_seen_waste.load();
        while (costs.wasted_frames < cur &&
               !best_seen_waste.compare_exchange_weak(cur, costs.wasted_frames)) {
        }
      }
    });
  std::thread reader([&] {
    model::FloorplanCosts prev;
    bool have_prev = false;
    std::uint64_t seen = 0;
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < 10000; ++i) {
      model::FloorplanCosts cur;
      if (!channel.snapshotNewer(&seen, nullptr, &cur)) continue;
      if (have_prev) {
        EXPECT_FALSE(model::strictlyBetter(p, prev, cur))
            << "channel went backwards: " << prev.wasted_frames << " -> " << cur.wasted_frames;
      }
      prev = cur;
      have_prev = true;
    }
  });
  go.store(true);
  for (std::thread& w : writers) w.join();
  reader.join();

  model::FloorplanCosts final_costs;
  ASSERT_TRUE(channel.best(nullptr, &final_costs));
  EXPECT_EQ(final_costs.wasted_frames, best_seen_waste.load());
  EXPECT_EQ(channel.publishes(), static_cast<long>(kThreads) * kPublishes);
  EXPECT_GT(channel.adoptions(), 0);
  EXPECT_EQ(channel.adoptions(), static_cast<long>(channel.version()));
}

TEST(SharedIncumbentChannel, SearchProvesASeededIncumbentOptimal) {
  // Seed the channel with the known optimum: the search must adopt it
  // (pruning from the root) and still prove optimality — returning the
  // seeded plan, since nothing strictly better exists.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const search::SearchResult ref = search::ColumnarSearchSolver().solve(p);
  ASSERT_EQ(ref.status, search::SearchStatus::kOptimal);

  SharedIncumbent channel(p);
  ASSERT_TRUE(channel.publish(ref.plan, ref.costs, "annealer"));

  search::SearchOptions opt;
  opt.incumbent = &channel;
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(p);
  EXPECT_EQ(res.status, search::SearchStatus::kOptimal);
  EXPECT_EQ(res.adopted, 1);
  EXPECT_EQ(res.costs.wasted_frames, ref.costs.wasted_frames);
  // The search ranks plans by a wire-length key quantized at 1/64, so an
  // equal-key tie may swap in a plan within that resolution of the optimum.
  EXPECT_NEAR(res.costs.wire_length, ref.costs.wire_length, 1.0 / 32.0);
  // The channel never regressed: its best is still the optimum.
  model::FloorplanCosts chan_costs;
  ASSERT_TRUE(channel.best(nullptr, &chan_costs));
  EXPECT_FALSE(model::strictlyBetter(p, ref.costs, chan_costs));
}

TEST(DriverCancellation, CancelledExactBackendsNeverClaimProofs) {
  // Regression: an exact backend unwinding from an already-raised stop flag
  // (the "instant prover" won before we even started) must never report
  // kOptimal or kInfeasible — a cancelled run is not a proof.
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  SolveRequest req;
  req.deadline_seconds = 30.0;
  std::atomic<bool> stop{true};
  for (const Backend b : {Backend::kSearch, Backend::kMilpO}) {
    req.backend = b;
    const SolveResponse res = detail::runBackend(sdr, req, b, &stop);
    EXPECT_NE(res.status, SolveStatus::kOptimal) << toString(b) << ": " << res.detail;
    EXPECT_NE(res.status, SolveStatus::kInfeasible) << toString(b) << ": " << res.detail;
  }

  // Even a verdict the engine can reach without searching (aggregate supply
  // shortfall) is downgraded at the boundary once the run was cancelled.
  model::FloorplanProblem infeasible(&dev);
  model::RegionSpec huge;
  huge.name = "huge";
  huge.tiles = {1000000, 0, 0};
  infeasible.addRegion(huge);
  req.backend = Backend::kSearch;
  const SolveResponse res = detail::runBackend(infeasible, req, Backend::kSearch, &stop);
  EXPECT_EQ(res.status, SolveStatus::kNoSolution) << res.detail;
}

TEST(DriverCancellation, RacingAnInstantProverAgainstASlowExactSolve) {
  // The instant prover settles the problem milliseconds in; the slow exact
  // MILP run must unwind promptly and report a truncation, not a proof.
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  SolveRequest req;
  req.backend = Backend::kMilpO;
  req.deadline_seconds = 120.0;
  std::atomic<bool> stop{false};
  std::thread prover([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
  });
  Stopwatch watch;
  const SolveResponse res = detail::runBackend(sdr, req, Backend::kMilpO, &stop);
  prover.join();
  EXPECT_LT(watch.seconds(), 60.0);  // unwound long before the deadline
  EXPECT_NE(res.status, SolveStatus::kOptimal) << res.detail;
  EXPECT_NE(res.status, SolveStatus::kInfeasible) << res.detail;
}

TEST(DriverBatch, ExternalStopCancelsInFlightAndPendingSolves) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  std::vector<const model::FloorplanProblem*> ptrs(6, &sdr);

  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kAnnealer;
  req.annealer.iterations = 2000000000L;  // would run for hours un-cancelled
  std::atomic<bool> stop{false};
  std::thread killer([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true);
  });
  Stopwatch watch;
  const std::vector<SolveResponse> res = drv.solveBatch(ptrs, req, 2, &stop);
  killer.join();
  EXPECT_LT(watch.seconds(), 30.0);  // poll granularity + CI slack
  ASSERT_EQ(res.size(), ptrs.size());
  int skipped = 0;
  for (const SolveResponse& r : res) {
    EXPECT_NE(r.status, SolveStatus::kOptimal);
    skipped += r.detail == "batch: cancelled before dispatch" ? 1 : 0;
  }
  // With 6 problems on 2 pool threads and a 200ms cancellation, the tail of
  // the batch is never dispatched.
  EXPECT_GE(skipped, 1);
}

TEST(DriverBatch, OverallDeadlineBoundsTheWholeBatch) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  std::vector<const model::FloorplanProblem*> ptrs(6, &sdr);

  const Driver drv(DriverOptions{0});  // no cache: 6 genuinely solved problems
  SolveRequest req;
  req.backend = Backend::kAnnealer;
  req.annealer.iterations = 2000000000L;  // would run for hours un-bounded
  Stopwatch watch;
  const std::vector<SolveResponse> res =
      drv.solveBatch(ptrs, req, 2, /*stop=*/nullptr, /*deadline_seconds=*/2.0);
  EXPECT_LT(watch.seconds(), 30.0);  // poll granularity + CI slack
  ASSERT_EQ(res.size(), ptrs.size());
  // Fair budget slices: under first-come-first-served the first two solves
  // would eat the whole budget and starve the queue; with fair slicing the
  // whole queue is dispatched, each solve truncated to its share.
  int dispatched = 0;
  double max_seconds = 0.0;
  for (const SolveResponse& r : res) {
    EXPECT_NE(r.status, SolveStatus::kOptimal);
    if (r.detail.rfind("batch:", 0) != 0) {
      ++dispatched;
      max_seconds = std::max(max_seconds, r.seconds);
    }
  }
  EXPECT_GE(dispatched, 5) << "fair slices should dispatch (nearly) the whole queue";
  // No single solve may monopolize the batch budget (FCFS gave the first
  // dispatch the full remaining 2.0s).
  EXPECT_LT(max_seconds, 1.5);
}

// ---- result cache: fingerprint properties ---------------------------------

/// Three distinguishable regions, two nets, two relocation requests —
/// enough structure that every canonicalization path (region ranks, net
/// endpoint remap, relocation blocks) is exercised.
model::FloorplanProblem threeRegionProblem(const device::Device& dev) {
  model::FloorplanProblem p(&dev);
  model::RegionSpec a;
  a.name = "a";
  a.tiles = {6, 1, 0};
  p.addRegion(a);
  model::RegionSpec b;
  b.name = "b";
  b.tiles = {4, 0, 1};
  p.addRegion(b);
  model::RegionSpec c;
  c.name = "c";
  c.tiles = {2, 0, 0};
  p.addRegion(c);
  p.addNet(model::Net{{0, 1}, 1.0, "n0"});
  p.addNet(model::Net{{1, 2}, 2.0, "n1"});
  p.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
  p.addRelocation(model::RelocationRequest{2, 1, false, 0.5});
  return p;
}

/// The same problem as threeRegionProblem with every list permuted: regions
/// reversed (net/relocation indices remapped accordingly), nets and
/// relocation requests added in the opposite order.
model::FloorplanProblem threeRegionProblemPermuted(const device::Device& dev) {
  model::FloorplanProblem p(&dev);
  model::RegionSpec c;
  c.name = "c2";
  c.tiles = {2, 0, 0};
  p.addRegion(c);  // index 0 (was 2)
  model::RegionSpec b;
  b.name = "b2";
  b.tiles = {4, 0, 1};
  p.addRegion(b);  // index 1 (was 1)
  model::RegionSpec a;
  a.name = "a2";
  a.tiles = {6, 1};  // trailing zero dropped: still the same requirement
  p.addRegion(a);    // index 2 (was 0)
  p.addNet(model::Net{{0, 1}, 2.0, "m1"});  // was {1, 2}
  p.addNet(model::Net{{1, 2}, 1.0, "m0"});  // was {0, 1}
  p.addRelocation(model::RelocationRequest{0, 1, false, 0.5});  // was region 2
  p.addRelocation(model::RelocationRequest{2, 1, true, 1.0});   // was region 0
  return p;
}

TEST(CacheFingerprint, PermutedProblemsShareAFingerprint) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p1 = threeRegionProblem(dev);
  const model::FloorplanProblem p2 = threeRegionProblemPermuted(dev);
  const SolveRequest req;
  for (const Backend b : allBackends()) {
    const Fingerprint f1 = fingerprintProblem(p1, req, b);
    const Fingerprint f2 = fingerprintProblem(p2, req, b);
    EXPECT_EQ(f1.structural, f2.structural) << toString(b);
    EXPECT_EQ(f1.hash, f2.hash) << toString(b);
    EXPECT_EQ(f1.budget, f2.budget) << toString(b);
  }
}

TEST(CacheFingerprint, EveryStructuralMutationChangesTheKey) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem base = threeRegionProblem(dev);
  const SolveRequest req;
  const Fingerprint ref = fingerprintProblem(base, req, Backend::kSearch);

  // Each mutant differs from the base in exactly one structural field.
  std::vector<model::FloorplanProblem> mutants;
  {
    model::FloorplanProblem m = threeRegionProblem(dev);  // region requirement
    model::RegionSpec extra;
    extra.name = "d";
    extra.tiles = {1, 0, 0};
    m.addRegion(extra);
    mutants.push_back(std::move(m));
  }
  {
    model::FloorplanProblem m(&dev);  // one tile count changed
    model::RegionSpec a;
    a.tiles = {7, 1, 0};
    m.addRegion(a);
    model::RegionSpec b;
    b.tiles = {4, 0, 1};
    m.addRegion(b);
    model::RegionSpec c;
    c.tiles = {2, 0, 0};
    m.addRegion(c);
    m.addNet(model::Net{{0, 1}, 1.0, ""});
    m.addNet(model::Net{{1, 2}, 2.0, ""});
    m.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
    m.addRelocation(model::RelocationRequest{2, 1, false, 0.5});
    mutants.push_back(std::move(m));
  }
  {
    model::FloorplanProblem m = threeRegionProblem(dev);  // extra net
    m.addNet(model::Net{{0, 2}, 1.0, ""});
    mutants.push_back(std::move(m));
  }
  {
    model::FloorplanProblem m = threeRegionProblem(dev);  // extra relocation
    m.addRelocation(model::RelocationRequest{1, 2, true, 1.0});
    mutants.push_back(std::move(m));
  }
  {
    model::FloorplanProblem m = threeRegionProblem(dev);  // objective mode
    m.setLexicographic(false);
    mutants.push_back(std::move(m));
  }
  {
    model::FloorplanProblem m = threeRegionProblem(dev);  // objective weights
    model::ObjectiveWeights w;
    w.q1_wirelength = 2.0;
    m.setWeights(w);
    mutants.push_back(std::move(m));
  }
  for (std::size_t i = 0; i < mutants.size(); ++i) {
    const Fingerprint f = fingerprintProblem(mutants[i], req, Backend::kSearch);
    EXPECT_NE(f.structural, ref.structural) << "mutant " << i;
  }

  // Net weight and relocation-hardness flips (same shapes, different values).
  model::FloorplanProblem weight(&dev);
  {
    model::RegionSpec a;
    a.tiles = {6, 1, 0};
    weight.addRegion(a);
    model::RegionSpec b;
    b.tiles = {4, 0, 1};
    weight.addRegion(b);
    model::RegionSpec c;
    c.tiles = {2, 0, 0};
    weight.addRegion(c);
    weight.addNet(model::Net{{0, 1}, 1.5, ""});  // was 1.0
    weight.addNet(model::Net{{1, 2}, 2.0, ""});
    weight.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
    weight.addRelocation(model::RelocationRequest{2, 1, false, 0.5});
  }
  EXPECT_NE(fingerprintProblem(weight, req, Backend::kSearch).structural, ref.structural);

  // A different device is a different problem.
  const device::Device dev2 = device::columnarFromPattern("t2", "CCBCCDCB", 4);
  const model::FloorplanProblem other_dev = threeRegionProblem(dev2);
  EXPECT_NE(fingerprintProblem(other_dev, req, Backend::kSearch).structural, ref.structural);

  // Backend and answer-shaping request knobs are part of the key too.
  EXPECT_NE(fingerprintProblem(base, req, Backend::kAnnealer).structural, ref.structural);
  SolveRequest seeded = req;
  seeded.annealer.seed = 99;
  EXPECT_NE(fingerprintProblem(base, seeded, Backend::kAnnealer).structural,
            fingerprintProblem(base, req, Backend::kAnnealer).structural);

  // Budget-style knobs move the budget tier only: same structure, so a
  // changed deadline is a near miss, never a different problem.
  SolveRequest deadline = req;
  deadline.deadline_seconds = 7.5;
  const Fingerprint fd = fingerprintProblem(base, deadline, Backend::kSearch);
  EXPECT_EQ(fd.structural, ref.structural);
  EXPECT_EQ(fd.hash, ref.hash);
  EXPECT_NE(fd.budget, ref.budget);
}

TEST(ResultCacheStore, ForcedHashCollisionNeverCrossReturns) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p1 = twoRegionProblem(dev);
  model::FloorplanProblem p2 = twoRegionProblem(dev);
  p2.addNet(model::Net{{0, 1}, 3.0, "extra"});  // structurally different

  const Driver drv(DriverOptions{0});
  SolveRequest req;
  req.backend = Backend::kSearch;
  const SolveResponse r1 = drv.solve(p1, req);
  const SolveResponse r2 = drv.solve(p2, req);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  ASSERT_EQ(r2.status, SolveStatus::kOptimal);

  Fingerprint f1 = fingerprintProblem(p1, req, Backend::kSearch);
  Fingerprint f2 = fingerprintProblem(p2, req, Backend::kSearch);
  ASSERT_NE(f1.structural, f2.structural);
  // Forge a full 64-bit hash collision: only the stored-key comparison can
  // tell the entries apart now.
  f1.hash = 42;
  f2.hash = 42;

  ResultCache cache(8);
  ASSERT_TRUE(cache.insert(f1, p1, r1));
  // The colliding key must not be served p1's answer.
  EXPECT_EQ(cache.lookup(f2, p2).outcome, CacheOutcome::kMiss);
  ASSERT_TRUE(cache.insert(f2, p2, r2));
  const CacheLookup l1 = cache.lookup(f1, p1);
  const CacheLookup l2 = cache.lookup(f2, p2);
  ASSERT_EQ(l1.outcome, CacheOutcome::kHit);
  ASSERT_EQ(l2.outcome, CacheOutcome::kHit);
  EXPECT_EQ(l1.response.costs.wire_length, r1.costs.wire_length);
  EXPECT_EQ(l2.response.costs.wire_length, r2.costs.wire_length);
  EXPECT_EQ(model::check(p1, l1.response.plan), "");
  EXPECT_EQ(model::check(p2, l2.response.plan), "");
}

TEST(ResultCacheStore, PermutedHitRemapsThePlanIntoTheRequestersOrder) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCCCCBC", 6);
  model::FloorplanProblem p1 = threeRegionProblem(dev);
  model::FloorplanProblem p2 = threeRegionProblemPermuted(dev);
  // The problems carry a soft relocation request, which the search only
  // accepts under the weighted objective.
  p1.setLexicographic(false);
  p2.setLexicographic(false);

  const Driver drv(DriverOptions{0});
  SolveRequest req;
  req.backend = Backend::kSearch;
  const SolveResponse r1 = drv.solve(p1, req);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal) << r1.detail;

  ResultCache cache(8);
  ASSERT_TRUE(cache.insert(fingerprintProblem(p1, req, Backend::kSearch), p1, r1));
  const CacheLookup hit = cache.lookup(fingerprintProblem(p2, req, Backend::kSearch), p2);
  ASSERT_EQ(hit.outcome, CacheOutcome::kHit);
  EXPECT_EQ(hit.response.status, SolveStatus::kOptimal);
  // The money property: the stored plan, remapped, is checker-valid for the
  // *permuted* problem and costs exactly the same.
  EXPECT_EQ(model::check(p2, hit.response.plan), "");
  const model::FloorplanCosts costs = model::evaluate(p2, hit.response.plan);
  EXPECT_EQ(costs.wasted_frames, r1.costs.wasted_frames);
  EXPECT_DOUBLE_EQ(costs.wire_length, r1.costs.wire_length);
}

TEST(ResultCacheStore, UntrustworthyResponsesAreRefused) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  SolveRequest req;
  const Fingerprint fp = fingerprintProblem(p, req, Backend::kSearch);
  ResultCache cache(8);

  SolveResponse no_solution;
  no_solution.backend = Backend::kSearch;
  EXPECT_FALSE(cache.insert(fp, p, no_solution));

  SolveResponse bogus;  // kFeasible with a plan the checker rejects
  bogus.backend = Backend::kSearch;
  bogus.status = SolveStatus::kFeasible;
  bogus.plan.regions = {device::Rect{0, 0, 1, 1}, device::Rect{0, 0, 1, 1}};  // overlap
  EXPECT_FALSE(cache.insert(fp, p, bogus));

  SolveResponse fake_proof;  // infeasibility claimed by a non-exhaustive engine
  fake_proof.backend = Backend::kAnnealer;
  fake_proof.status = SolveStatus::kInfeasible;
  EXPECT_FALSE(cache.insert(fingerprintProblem(p, req, Backend::kAnnealer), p, fake_proof));

  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().rejected, 3);
  EXPECT_EQ(cache.lookup(fp, p).outcome, CacheOutcome::kMiss);
}

// ---- result cache: driver integration -------------------------------------

TEST(DriverCache, RepeatSolvesAreServedFromTheCache) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  const SolveResponse cold = drv.solve(p, req);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.served_by, "engine");
  // The engine run reports its exact effort in the metrics map.
  ASSERT_TRUE(cold.metrics.count("nodes"));
  EXPECT_GE(cold.metrics.at("nodes"), 1.0);
  ASSERT_TRUE(cold.metrics.count("seconds"));

  const SolveResponse warm = drv.solve(p, req);
  EXPECT_TRUE(warm.cache_hit) << warm.detail;
  EXPECT_EQ(warm.served_by, "cache");
  EXPECT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_EQ(warm.costs.wasted_frames, cold.costs.wasted_frames);
  EXPECT_DOUBLE_EQ(warm.costs.wire_length, cold.costs.wire_length);
  EXPECT_EQ(model::check(p, warm.plan), "");

  const CacheStats stats = drv.cacheStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);

  // Opting out per request bypasses the store in both directions.
  req.use_cache = false;
  const SolveResponse bypass = drv.solve(p, req);
  EXPECT_FALSE(bypass.cache_hit);
  EXPECT_EQ(drv.cacheStats().hits, 1);
}

TEST(DriverCache, ProofsServeAnyBudget) {
  // An optimality proof is a budget-independent truth: a request under a
  // different deadline still gets the stored answer as a full hit.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  ASSERT_EQ(drv.solve(p, req).status, SolveStatus::kOptimal);

  req.deadline_seconds = 5.0;  // different budget tier
  const SolveResponse warm = drv.solve(p, req);
  EXPECT_TRUE(warm.cache_hit) << warm.detail;
  EXPECT_EQ(warm.status, SolveStatus::kOptimal);
}

TEST(DriverCache, NearMissSeedsTheReSolveAndNeverComesBackWorse) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kAnnealer;  // no proofs: forces the near-miss path
  req.annealer.iterations = 5000;
  const SolveResponse cold = drv.solve(p, req);
  ASSERT_TRUE(cold.hasSolution()) << cold.detail;

  // Same structure, different budget tier: the cached plan must seed the
  // re-solve instead of short-circuiting it.
  req.annealer.iterations = 8000;
  const SolveResponse warm = drv.solve(p, req);
  ASSERT_TRUE(warm.hasSolution()) << warm.detail;
  EXPECT_FALSE(warm.cache_hit);
  EXPECT_TRUE(warm.cache_seeded) << warm.detail;
  // Arbitration against the seed: the result is never worse than what the
  // cache already knew.
  EXPECT_FALSE(model::strictlyBetter(p, cold.costs, warm.costs)) << warm.detail;
  EXPECT_EQ(model::check(p, warm.plan), "");
  EXPECT_EQ(drv.cacheStats().seeded_incumbents, 1);

  // The seeded re-solve was stored under its own budget key: asking again
  // is a plain hit, and the stored entry's provenance is *this* lookup's
  // (hit), not the original near-miss seeding.
  const SolveResponse third = drv.solve(p, req);
  EXPECT_TRUE(third.cache_hit) << third.detail;
  EXPECT_FALSE(third.cache_seeded) << third.detail;
}

TEST(DriverCache, LruEvictionDropsTheColdestEntry) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  // Three structurally distinct variants of the same base problem.
  std::vector<model::FloorplanProblem> problems;
  problems.push_back(twoRegionProblem(dev));
  problems.push_back(twoRegionProblem(dev));
  problems.back().addNet(model::Net{{0, 1}, 2.0, "x"});
  problems.push_back(twoRegionProblem(dev));
  problems.back().addNet(model::Net{{0, 1}, 3.0, "y"});

  DriverOptions opt;
  opt.cache_entries = 2;
  const Driver drv(opt);
  SolveRequest req;
  req.backend = Backend::kSearch;
  for (const auto& p : problems) ASSERT_TRUE(drv.solve(p, req).hasSolution());
  // Capacity 2: solving the third evicted the first (least recently used).
  EXPECT_EQ(drv.cacheStats().evictions, 1);
  EXPECT_FALSE(drv.solve(problems[0], req).cache_hit);  // was evicted
  EXPECT_TRUE(drv.solve(problems[2], req).cache_hit);   // still resident
}

TEST(DriverBatch, DuplicateProblemsHitTheCacheOnTheRerun) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCCCCBC", 6);
  model::GeneratorOptions gopt;
  gopt.num_regions = 3;
  gopt.max_region_width = 4;
  gopt.max_region_height = 3;
  std::vector<model::FloorplanProblem> problems;
  for (std::uint64_t seed = 1; problems.size() < 2 && seed < 40; ++seed) {
    gopt.seed = seed;
    if (auto p = model::generateProblem(dev, gopt)) problems.push_back(std::move(*p));
  }
  ASSERT_EQ(problems.size(), 2u);
  // >= 50% duplicates, interleaved so pool threads race on them.
  const std::vector<const model::FloorplanProblem*> ptrs = {
      &problems[0], &problems[1], &problems[0], &problems[1], &problems[0], &problems[1]};

  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  const std::vector<SolveResponse> cold = drv.solveBatch(ptrs, req, 2);
  ASSERT_EQ(cold.size(), ptrs.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    ASSERT_TRUE(cold[i].hasSolution()) << i;
    EXPECT_EQ(model::check(*ptrs[i], cold[i].plan), "") << i;
  }

  const std::vector<SolveResponse> warm = drv.solveBatch(ptrs, req, 2);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_TRUE(warm[i].cache_hit) << i << ": " << warm[i].detail;
    EXPECT_EQ(warm[i].status, cold[i].status) << i;
    EXPECT_EQ(warm[i].costs.wasted_frames, cold[i].costs.wasted_frames) << i;
    EXPECT_EQ(model::check(*ptrs[i], warm[i].plan), "") << i;
  }
  EXPECT_GE(drv.cacheStats().hits, static_cast<long>(ptrs.size()));
}

TEST(DriverCache, RequestStopTruncatedRunsAreNeverCached) {
  // A run truncated by a stop flag the *caller* wired into the engine
  // options is cut at an arbitrary point; caching it would poison every
  // later identical, uncancelled request with the truncated answer.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kAnnealer;
  std::atomic<bool> stop{true};  // truncated from the very first poll
  req.annealer.stop = &stop;
  (void)drv.solve(p, req);
  EXPECT_EQ(drv.cacheStats().insertions, 0);

  // The uncancelled request must genuinely solve (a miss), not hit.
  req.annealer.stop = nullptr;
  const SolveResponse fresh = drv.solve(p, req);
  EXPECT_FALSE(fresh.cache_hit) << fresh.detail;
  ASSERT_TRUE(fresh.hasSolution()) << fresh.detail;
  EXPECT_EQ(drv.cacheStats().insertions, 1);
}

TEST(DriverCache, NearMissSeedsTheCallersChannelInsteadOfReplacingIt) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kAnnealer;
  req.annealer.iterations = 5000;
  const SolveResponse cold = drv.solve(p, req);
  ASSERT_TRUE(cold.hasSolution()) << cold.detail;

  // The caller observes the solve through its own channel; the near-miss
  // seed must land there, not in a hidden cache-internal channel.
  SharedIncumbent mine(p);
  req.annealer.incumbent = &mine;
  req.annealer.iterations = 8000;  // different budget tier: near miss
  const SolveResponse warm = drv.solve(p, req);
  EXPECT_TRUE(warm.cache_seeded) << warm.detail;
  EXPECT_GT(mine.version(), 0u);  // the seed (and publishes) reached us
  model::FloorplanCosts best;
  ASSERT_TRUE(mine.best(nullptr, &best));
  EXPECT_FALSE(model::strictlyBetter(p, warm.costs, best));  // channel kept the best
}

TEST(DriverBatch, DeadlineBoundedRerunsHitUnderTheBatchBudgetKey) {
  // Fair slices are derived from the live wall clock and never repeat, so
  // cache entries must be keyed on the *batch-wide* budget — otherwise a
  // deadline-bounded batch of a non-proving backend could never hit.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  std::vector<model::FloorplanProblem> problems;
  problems.push_back(twoRegionProblem(dev));
  problems.push_back(twoRegionProblem(dev));
  problems.back().addNet(model::Net{{0, 1}, 2.0, "x"});
  const std::vector<const model::FloorplanProblem*> ptrs = {
      &problems[0], &problems[1], &problems[0], &problems[1], &problems[0], &problems[1]};

  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kAnnealer;  // no proofs: only exact-budget hits
  req.annealer.iterations = 2000000000L;
  const std::vector<SolveResponse> cold =
      drv.solveBatch(ptrs, req, 2, /*stop=*/nullptr, /*deadline_seconds=*/1.5);
  ASSERT_EQ(cold.size(), ptrs.size());

  const std::vector<SolveResponse> warm =
      drv.solveBatch(ptrs, req, 2, /*stop=*/nullptr, /*deadline_seconds=*/1.5);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_TRUE(warm[i].cache_hit) << i << ": " << warm[i].detail;
    ASSERT_TRUE(warm[i].hasSolution()) << i;
    EXPECT_EQ(model::check(*ptrs[i], warm[i].plan), "") << i;
  }
}

// ---- staged portfolio: adaptive stage 1 ------------------------------------

TEST(DriverPortfolio, QuietChannelEndsStageOneEarly) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;
  SolveRequest req;
  req.portfolio = {Backend::kAnnealer, Backend::kSearch};
  req.deadline_seconds = 30.0;
  req.stage1_fraction = 0.5;          // nominal slice: 10s (stage1_max cap)
  req.stage1_quiet_fraction = 0.05;   // quiet for 0.5s => end stage 1
  req.annealer.iterations = 2000000000L;  // would fill the whole slice
  Stopwatch watch;
  const SolveResponse res = drv.solvePortfolio(p, req);
  ASSERT_EQ(res.status, SolveStatus::kOptimal) << res.detail;
  EXPECT_TRUE(res.incumbent.staged);
  // On a trivial instance the annealer stops improving almost immediately;
  // the watchdog must hand the rest of the 10s slice to the prover.
  EXPECT_TRUE(res.incumbent.stage1_ended_early) << res.detail;
  EXPECT_LT(res.incumbent.stage1_seconds, 8.0) << res.detail;
  EXPECT_LT(watch.seconds(), 25.0);
}

TEST(DriverBatch, EmptyBatchAndOversizedPoolAreFine) {
  const Driver drv;
  SolveRequest req;
  EXPECT_TRUE(drv.solveBatch({}, req, 8).empty());

  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const std::vector<const model::FloorplanProblem*> one = {&p};
  const std::vector<SolveResponse> res = drv.solveBatch(one, req, 16);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, SolveStatus::kOptimal);
}

TEST(DriverSingle, InSolveParallelismReportsWorkerTelemetry) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  const Driver drv;

  SolveRequest seq;
  seq.backend = Backend::kSearch;
  const SolveResponse base = drv.solve(p, seq);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);

  // The exact search: num_threads fans out work-stealing workers; the
  // parallel solve proves the same optimum and surfaces per-worker stats.
  SolveRequest par = seq;
  par.use_cache = false;  // a cache hit would skip the engine entirely
  par.num_threads = 4;
  const SolveResponse ps = drv.solve(p, par);
  ASSERT_EQ(ps.status, SolveStatus::kOptimal) << ps.detail;
  EXPECT_EQ(ps.costs.wasted_frames, base.costs.wasted_frames);
  ASSERT_EQ(ps.workers.size(), 4u) << ps.detail;
  long nodes = 0, steals = 0;
  for (const SolveWorkerStats& w : ps.workers) {
    nodes += w.nodes;
    steals += w.steals;
  }
  EXPECT_EQ(nodes, ps.nodes);
  EXPECT_EQ(steals, ps.steals);

  // The MILP backend: the same knob reaches the B&B node pool.
  par.backend = Backend::kMilpO;
  par.num_threads = 2;
  const SolveResponse pm = drv.solve(p, par);
  ASSERT_EQ(pm.status, SolveStatus::kOptimal) << pm.detail;
  EXPECT_EQ(pm.costs.wasted_frames, base.costs.wasted_frames);
  EXPECT_EQ(pm.workers.size(), 2u) << pm.detail;
}

TEST(DriverBatch, ThreadBudgetCapsPoolTimesInSolveWorkers) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  DriverOptions opt;
  opt.thread_budget = 4;
  const Driver drv(opt);

  // Single solve: in-solve workers are capped at the whole budget.
  SolveRequest req;
  req.backend = Backend::kSearch;
  req.use_cache = false;
  req.num_threads = 16;
  const SolveResponse single = drv.solve(p, req);
  ASSERT_EQ(single.status, SolveStatus::kOptimal) << single.detail;
  EXPECT_EQ(single.workers.size(), 4u);

  // Batch: pool width (4) times in-solve workers must stay within the
  // budget, so each dispatched solve is forced down to one worker (for
  // which no per-worker breakdown is reported).
  std::vector<model::FloorplanProblem> problems(4, p);
  for (std::size_t i = 0; i < problems.size(); ++i)
    problems[i].addNet(model::Net{{0, 1}, 2.0 + static_cast<double>(i), "x"});
  std::vector<const model::FloorplanProblem*> ptrs;
  for (const auto& q : problems) ptrs.push_back(&q);
  const std::vector<SolveResponse> res = drv.solveBatch(ptrs, req, 4);
  for (std::size_t i = 0; i < res.size(); ++i) {
    ASSERT_EQ(res[i].status, SolveStatus::kOptimal) << i;
    EXPECT_TRUE(res[i].workers.empty()) << i;
  }
}

TEST(ResultCacheStore, FlightTableBlocksFollowersUntilTheLeaderLands) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  SolveRequest req;
  const Fingerprint fp = fingerprintProblem(p, req, Backend::kSearch);
  ResultCache cache(8);

  ASSERT_EQ(cache.joinFlight(fp, nullptr), ResultCache::FlightJoin::kLeader);

  // A follower joining the same key must block until finishFlight, then see
  // the leader's freshly inserted answer on its re-lookup.
  std::atomic<bool> follower_landed{false};
  std::thread follower([&] {
    const ResultCache::FlightJoin j = cache.joinFlight(fp, nullptr);
    EXPECT_EQ(j, ResultCache::FlightJoin::kLanded);
    follower_landed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(follower_landed.load());  // still in flight

  SolveResponse answer;
  answer.status = SolveStatus::kOptimal;
  answer.backend = Backend::kSearch;
  Driver drv;
  answer = drv.solve(p, req);  // a real, checker-valid response to store
  ASSERT_TRUE(cache.insert(fp, p, answer));
  cache.finishFlight(fp);
  follower.join();
  EXPECT_TRUE(follower_landed.load());
  EXPECT_EQ(cache.lookup(fp, p).outcome, CacheOutcome::kHit);

  // A raised stop flag aborts the wait instead of blocking forever.
  ASSERT_EQ(cache.joinFlight(fp, nullptr), ResultCache::FlightJoin::kLeader);
  std::atomic<bool> stop{true};
  EXPECT_EQ(cache.joinFlight(fp, &stop), ResultCache::FlightJoin::kCancelled);
  cache.finishFlight(fp);
}

TEST(ResultCacheStore, PreRaisedStopCancelsJoinWithoutWaitingATick) {
  // Regression: joinFlight used to sleep one 10 ms poll tick before noticing
  // a stop flag that was already raised on entry, so a cancelled batch
  // draining queued duplicates paid a tick per key. The stop check must run
  // before the first wait: 50 cancelled joins finish in microseconds now,
  // versus a guaranteed >= 500 ms with the old ordering.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  const model::FloorplanProblem p = twoRegionProblem(dev);
  SolveRequest req;
  const Fingerprint fp = fingerprintProblem(p, req, Backend::kSearch);
  ResultCache cache(8);
  ASSERT_EQ(cache.joinFlight(fp, nullptr), ResultCache::FlightJoin::kLeader);

  std::atomic<bool> stop{true};
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 50; ++i)
    ASSERT_EQ(cache.joinFlight(fp, &stop), ResultCache::FlightJoin::kCancelled) << i;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 250) << "cancelled joins waited on the poll tick";
  cache.finishFlight(fp);
}

TEST(DriverBatch, ConcurrentDuplicatesSolveEachFingerprintExactlyOnce) {
  // The PR 5 gap: duplicates dispatched *concurrently* both missed the
  // still-empty cache and re-solved. With in-flight coalescing the batch
  // must run one engine per unique fingerprint — counter-asserted below —
  // whatever the interleaving.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCCCCBC", 6);
  model::GeneratorOptions gopt;
  gopt.num_regions = 3;
  gopt.max_region_width = 4;
  gopt.max_region_height = 3;
  std::vector<model::FloorplanProblem> problems;
  for (std::uint64_t seed = 1; problems.size() < 2 && seed < 40; ++seed) {
    gopt.seed = seed;
    if (auto p = model::generateProblem(dev, gopt)) problems.push_back(std::move(*p));
  }
  ASSERT_EQ(problems.size(), 2u);
  // Duplicate-heavy: 12 dispatches over 2 unique fingerprints, interleaved
  // so the pool threads race on the same key from the first claim on.
  std::vector<const model::FloorplanProblem*> ptrs;
  for (int k = 0; k < 6; ++k) {
    ptrs.push_back(&problems[0]);
    ptrs.push_back(&problems[1]);
  }

  const Driver drv;
  SolveRequest req;
  req.backend = Backend::kSearch;
  const std::vector<SolveResponse> res = drv.solveBatch(ptrs, req, 4);
  ASSERT_EQ(res.size(), ptrs.size());

  long engine_runs = 0, served = 0, coalesced = 0;
  for (std::size_t i = 0; i < res.size(); ++i) {
    ASSERT_TRUE(res[i].hasSolution()) << i << ": " << res[i].detail;
    EXPECT_EQ(model::check(*ptrs[i], res[i].plan), "") << i;
    // A duplicate's answer must be byte-identical to its twin's.
    EXPECT_EQ(res[i].status, res[i % 2].status) << i;
    EXPECT_EQ(res[i].costs.wasted_frames, res[i % 2].costs.wasted_frames) << i;
    engine_runs += res[i].cache_hit ? 0 : 1;
    served += res[i].cache_hit ? 1 : 0;
    coalesced += res[i].coalesced ? 1 : 0;
    if (res[i].coalesced) {
      EXPECT_TRUE(res[i].cache_hit) << i;
    }
    // served_by records where the answer actually came from.
    if (res[i].coalesced) {
      EXPECT_EQ(res[i].served_by, "flight-follower") << i;
    } else if (res[i].cache_hit) {
      EXPECT_EQ(res[i].served_by, "cache") << i;
    } else {
      EXPECT_EQ(res[i].served_by, "engine") << i;
    }
  }
  // Exactly one engine invocation per unique fingerprint; everyone else was
  // served — either coalesced onto the in-flight leader or a plain hit.
  EXPECT_EQ(engine_runs, 2) << "duplicate solves ran their own engines";
  EXPECT_EQ(served, static_cast<long>(ptrs.size()) - 2);
  const CacheStats cs = drv.cacheStats();
  EXPECT_EQ(cs.insertions, 2);
  EXPECT_EQ(cs.hits, static_cast<long>(ptrs.size()) - 2);
  EXPECT_EQ(cs.coalesced, coalesced);
}

TEST(DriverCache, ConcurrentMixedSolvesStressTheStoreAndFlightTable) {
  // Hammer one shared cache from several threads mixing duplicates, near
  // misses (same structure, different budget) and distinct problems; the
  // store must stay internally consistent and every unique exact-budget key
  // must run its engine exactly once across the whole stress.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  std::vector<model::FloorplanProblem> problems;
  problems.push_back(twoRegionProblem(dev));
  problems.push_back(twoRegionProblem(dev));
  problems.back().addNet(model::Net{{0, 1}, 2.0, "x"});
  problems.push_back(twoRegionProblem(dev));
  problems.back().addNet(model::Net{{0, 1}, 3.0, "y"});

  const Driver drv;
  std::atomic<long> engine_runs{0};
  const auto hammer = [&](int tid) {
    for (int round = 0; round < 6; ++round) {
      SolveRequest req;
      req.backend = Backend::kSearch;
      const auto& p = problems[static_cast<std::size_t>((tid + round) % 3)];
      const SolveResponse r = drv.solve(p, req);
      ASSERT_EQ(r.status, SolveStatus::kOptimal) << r.detail;
      EXPECT_EQ(model::check(p, r.plan), "");
      if (!r.cache_hit && !r.cache_seeded) engine_runs.fetch_add(1);
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < 6; ++t) pool.emplace_back(hammer, t);
  for (std::thread& t : pool) t.join();

  // 3 unique fingerprints, 36 total solves: the flight table plus the store
  // guarantee one cold engine run per fingerprint, not one per thread.
  EXPECT_EQ(engine_runs.load(), 3);
  const CacheStats cs = drv.cacheStats();
  EXPECT_EQ(cs.insertions, 3);
  // One hit per served solve (a coalesced follower's first lookup counts a
  // miss, its post-landing re-lookup the hit — so misses is 3 plus however
  // many followers looked up before their leader landed).
  EXPECT_EQ(cs.hits, 6 * 6 - 3);
  EXPECT_GE(cs.misses, 3);
  EXPECT_EQ(cs.rejected, 0);
}

}  // namespace
}  // namespace rfp::driver
