// Cross-module invariants on randomized instances (complementing
// test_properties.cpp), exercising the generator, the search solver's
// budget/relocation semantics, rendering, the problem text format, and the
// runtime-reconfiguration layer.
#include <gtest/gtest.h>

#include <algorithm>

#include "device/builders.hpp"
#include "device/catalog.hpp"
#include "driver/driver.hpp"
#include "io/problem_text.hpp"
#include "model/floorplan.hpp"
#include "model/generator.hpp"
#include "reconfig/reconfig.hpp"
#include "render/render.hpp"
#include "search/solver.hpp"

namespace rfp {
namespace {

using device::Rect;

// With zero requirement slack, the generator derives each region's demand
// from an actually-packed rectangle — so a zero-waste floorplan exists and
// the lexicographic optimum must find waste exactly 0.
TEST(GeneratorInvariant, ZeroSlackInstancesHaveZeroWasteOptimum) {
  const device::Device dev = device::virtex5FX70T();
  search::SearchOptions opt;
  opt.num_threads = 4;
  int exercised = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    model::GeneratorOptions gopt;
    gopt.num_regions = 3;
    gopt.requirement_slack = 0.0;
    gopt.seed = seed;
    const auto p = model::generateProblem(dev, gopt);
    if (!p) continue;
    const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(*p);
    ASSERT_EQ(res.status, search::SearchStatus::kOptimal) << "seed " << seed;
    EXPECT_EQ(res.costs.wasted_frames, 0) << "seed " << seed;
    ++exercised;
  }
  EXPECT_GE(exercised, 6);
}

// waste_budget semantics: any returned solution respects the budget, and a
// budget strictly below the proven optimum is infeasible.
TEST(SearchInvariant, WasteBudgetIsRespectedExactly) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  search::SearchOptions opt;
  opt.num_threads = 4;
  const long optimum = search::ColumnarSearchSolver(opt).solve(sdr).costs.wasted_frames;

  search::SearchOptions capped = opt;
  capped.waste_budget = optimum;
  const search::SearchResult at = search::ColumnarSearchSolver(capped).solve(sdr);
  ASSERT_TRUE(at.hasSolution());
  EXPECT_LE(at.costs.wasted_frames, optimum);

  capped.waste_budget = optimum - 1;
  EXPECT_EQ(search::ColumnarSearchSolver(capped).solve(sdr).status,
            search::SearchStatus::kInfeasible);
}

// Every FC area of a hard-constraint solution is free-compatible w.r.t. its
// region by direct grid inspection (Definition .2 re-checked outside the
// solver and outside model::check).
TEST(SearchInvariant, FcAreasAreCompatibleByDirectInspection) {
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  search::SearchOptions opt;
  opt.num_threads = 8;
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(sdr2);
  ASSERT_TRUE(res.hasSolution());
  for (const model::FcArea& a : res.plan.fc_areas) {
    ASSERT_TRUE(a.placed);
    const Rect& src = res.plan.regions[static_cast<std::size_t>(a.region)];
    ASSERT_EQ(a.rect.w, src.w);
    ASSERT_EQ(a.rect.h, src.h);
    for (int dx = 0; dx < src.w; ++dx)
      for (int dy = 0; dy < src.h; ++dy)
        EXPECT_EQ(dev.typeAt(a.rect.x + dx, a.rect.y + dy),
                  dev.typeAt(src.x + dx, src.y + dy))
            << "tile (" << dx << "," << dy << ")";
    EXPECT_FALSE(dev.rectHitsForbidden(a.rect));
  }
}

// ASCII rendering is consistent with the floorplan: each region's letter
// appears exactly area-many times in the grid.
TEST(RenderInvariant, AsciiLetterCountsMatchRegionAreas) {
  const device::Device dev = device::virtex5FX70T();
  model::GeneratorOptions gopt;
  gopt.num_regions = 4;
  gopt.seed = 5;
  const auto p = model::generateProblem(dev, gopt);
  ASSERT_TRUE(p);
  search::SearchOptions opt;
  opt.num_threads = 4;
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(*p);
  ASSERT_TRUE(res.hasSolution());
  const std::string art = render::ascii(*p, res.plan);
  const std::string grid = art.substr(0, art.find("\n+--", 3));  // grid block only
  for (int n = 0; n < p->numRegions(); ++n) {
    const char letter = static_cast<char>('A' + n);
    const long count = std::count(grid.begin(), grid.end(), letter);
    const Rect& r = res.plan.regions[static_cast<std::size_t>(n)];
    EXPECT_EQ(count, static_cast<long>(r.w) * r.h) << "region " << n;
  }
}

// SVG rendering is well-formed enough to be parsed as XML-ish: balanced
// <svg> root and one <rect> per tile at minimum.
TEST(RenderInvariant, SvgContainsRootAndRegionBoxes) {
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  search::SearchOptions opt;
  opt.num_threads = 4;
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(sdr);
  ASSERT_TRUE(res.hasSolution());
  const std::string svg = render::svg(sdr, res.plan);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  for (int n = 0; n < sdr.numRegions(); ++n)
    EXPECT_NE(svg.find(sdr.region(n).name), std::string::npos) << "label " << n;
}

// Problem text format round-trips random generated instances exactly.
TEST(ProblemTextInvariant, RoundTripsGeneratedInstances) {
  const device::Device dev = device::virtex5FX70T();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    model::GeneratorOptions gopt;
    gopt.num_regions = 4;
    gopt.num_nets = 3;
    gopt.fc_per_region = seed % 3 == 0 ? 1 : 0;
    gopt.soft_relocation = seed % 2 == 0;
    gopt.seed = seed;
    const auto p = model::generateProblem(dev, gopt);
    if (!p) continue;
    const model::FloorplanProblem q = io::parseProblem(io::formatProblem(*p), dev);
    ASSERT_EQ(q.numRegions(), p->numRegions());
    for (int n = 0; n < p->numRegions(); ++n)
      for (int t = 0; t < dev.numTileTypes(); ++t)
        EXPECT_EQ(q.region(n).required(t), p->region(n).required(t)) << seed;
    ASSERT_EQ(q.nets().size(), p->nets().size());
    ASSERT_EQ(q.relocations().size(), p->relocations().size());
    for (std::size_t i = 0; i < q.relocations().size(); ++i) {
      EXPECT_EQ(q.relocations()[i].hard, p->relocations()[i].hard);
      EXPECT_EQ(q.relocations()[i].count, p->relocations()[i].count);
    }
  }
}

// The two storage policies must produce bitstreams with identical content
// semantics: fetching the same (region, mode, target) yields frame-identical
// bitstreams either way.
TEST(ReconfigInvariant, PoliciesYieldIdenticalBitstreams) {
  const device::Device dev = device::uniformDevice(10, 4);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {4}});
  p.addRelocation(model::RelocationRequest{0, 2, true, 1.0});
  search::SearchResult sol = search::ColumnarSearchSolver().solve(p);
  ASSERT_TRUE(sol.hasSolution());

  reconfig::ReconfigSimulator aware(p, sol.plan, reconfig::StorePolicy::kRelocationAware);
  reconfig::ReconfigSimulator perloc(p, sol.plan, reconfig::StorePolicy::kPerLocation);
  aware.registerModes(0, {reconfig::ModuleMode{"m", 9}});
  perloc.registerModes(0, {reconfig::ModuleMode{"m", 9}});

  for (int target = 0; target < aware.targetCount(0); ++target) {
    const Rect rect = aware.target(0, target);
    const auto a = aware.store().fetch(0, "m", rect);
    const auto b = perloc.store().fetch(0, "m", rect);
    ASSERT_EQ(a.frames.size(), b.frames.size());
    EXPECT_EQ(a.crc, b.crc) << "target " << target;
    for (std::size_t f = 0; f < a.frames.size(); ++f) {
      EXPECT_EQ(a.frames[f].address, b.frames[f].address);
      EXPECT_EQ(a.frames[f].words, b.frames[f].words);
    }
  }
}

// Makespan is invariant to the storage policy up to the filter overhead:
// per-location makespan + total filter time == relocation-aware makespan for
// a back-to-back schedule.
TEST(ReconfigInvariant, FilterTimeAccountsForTheMakespanGap) {
  const device::Device dev = device::uniformDevice(12, 4);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {4}});
  p.addRelocation(model::RelocationRequest{0, 2, true, 1.0});
  const search::SearchResult sol = search::ColumnarSearchSolver().solve(p);
  ASSERT_TRUE(sol.hasSolution());

  std::vector<reconfig::SwitchRequest> schedule;
  for (int i = 0; i < 9; ++i)
    schedule.push_back(reconfig::SwitchRequest{0.0, 0, "m", i % 3});

  double makespan[2], filter[2];
  int idx = 0;
  for (const auto policy : {reconfig::StorePolicy::kRelocationAware,
                            reconfig::StorePolicy::kPerLocation}) {
    reconfig::ReconfigSimulator sim(p, sol.plan, policy);
    sim.registerModes(0, {reconfig::ModuleMode{"m", 1}});
    const reconfig::SimulationResult res = sim.run(schedule);
    makespan[idx] = res.stats.makespan_us;
    filter[idx] = res.stats.total_filter_us;
    ++idx;
  }
  EXPECT_NEAR(makespan[0] - filter[0], makespan[1], 1e-6);
  EXPECT_DOUBLE_EQ(filter[1], 0.0);
}

// Catalog devices can host generated instances end to end (device → generate
// → solve → check), exercising every family.
TEST(CatalogInvariant, GeneratedInstancesSolveOnEveryCatalogPart) {
  for (const device::CatalogEntry& entry : device::catalog()) {
    const device::Device dev = entry.build();
    model::GeneratorOptions gopt;
    gopt.num_regions = 2;
    gopt.max_region_width = 4;
    gopt.max_region_height = 2;
    gopt.seed = 11;
    const auto p = model::generateProblem(dev, gopt);
    if (!p) continue;  // tiny parts may fail to pack this shape
    search::SearchOptions opt;
    opt.feasibility_only = true;
    const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(*p);
    ASSERT_TRUE(res.hasSolution()) << entry.name;
    EXPECT_EQ(model::check(*p, res.plan), "") << entry.name;
  }
}

// The driver's portfolio arbitration can never do worse than the exact
// engine alone: on feasible-by-construction instances with hard relocation
// requests, the portfolio must return a checker-valid proven optimum with
// the exact search's wasted-frame count.
TEST(DriverInvariant, PortfolioNeverWorseThanExactSearch) {
  const device::Device dev = device::columnarFromPattern("drv", "CCBCCDCCCCBC", 6);
  model::GeneratorOptions gopt;
  gopt.num_regions = 3;
  gopt.max_region_width = 4;
  gopt.max_region_height = 3;
  gopt.fc_per_region = 1;

  const driver::Driver drv;
  int exercised = 0;
  for (std::uint64_t seed = 1; exercised < 5 && seed < 60; ++seed) {
    gopt.seed = seed;
    const auto p = model::generateProblem(dev, gopt);
    if (!p) continue;
    const search::SearchResult ref = search::ColumnarSearchSolver().solve(*p);
    if (ref.status != search::SearchStatus::kOptimal) continue;
    ++exercised;

    driver::SolveRequest req;
    // Small enough that the staged first slice (a quarter of this) does not
    // dominate the test; the exact search proves these instances in well
    // under the prover stage's remainder.
    req.deadline_seconds = 8.0;
    req.annealer.iterations = 20000;
    const driver::SolveResponse res = drv.solvePortfolio(*p, req);
    ASSERT_EQ(res.status, driver::SolveStatus::kOptimal) << "seed " << seed << ": " << res.detail;
    EXPECT_EQ(res.costs.wasted_frames, ref.costs.wasted_frames) << "seed " << seed;
    EXPECT_EQ(model::check(*p, res.plan), "") << "seed " << seed;
  }
  EXPECT_GE(exercised, 3);
}

}  // namespace
}  // namespace rfp
