// Tests for the exact columnar search solver: candidates, occupancy,
// optimality, relocation constraints and the feasibility analysis.
#include <gtest/gtest.h>

#include "device/builders.hpp"
#include "driver/incumbent.hpp"
#include "model/floorplan.hpp"
#include "search/candidates.hpp"
#include "search/occupancy.hpp"
#include "search/solver.hpp"

namespace rfp::search {
namespace {

using device::Rect;

TEST(Occupancy, FillOverlapClear) {
  Occupancy occ(44, 8);
  const Rect r{5, 2, 6, 3};
  EXPECT_FALSE(occ.overlaps(r));
  occ.fill(r);
  EXPECT_TRUE(occ.overlaps(Rect{10, 4, 3, 3}));
  EXPECT_FALSE(occ.overlaps(Rect{11, 2, 3, 3}));
  EXPECT_TRUE(occ.occupied(5, 2));
  EXPECT_FALSE(occ.occupied(4, 2));
  EXPECT_EQ(occ.popcount(), 18);
  occ.clear(r);
  EXPECT_EQ(occ.popcount(), 0);
}

TEST(Occupancy, WordBoundarySpans) {
  Occupancy occ(100, 3);  // rows cross 64-bit word boundaries
  const Rect r{60, 1, 10, 1};
  occ.fill(r);
  EXPECT_EQ(occ.popcount(), 10);
  EXPECT_TRUE(occ.overlaps(Rect{63, 0, 2, 2}));
  EXPECT_FALSE(occ.overlaps(Rect{60, 0, 10, 1}));
}

TEST(Candidates, CoverageAndWasteAreExact) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCC", 4);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {2, 1, 0}});
  const RegionCandidates cands = enumerateCandidates(p, 0);
  ASSERT_FALSE(cands.shapes.empty());
  for (const Shape& s : cands.shapes) {
    const std::vector<int> hist = dev.tileHistogram(Rect{s.x, s.ys[0], s.w, s.h});
    EXPECT_GE(hist[0], 2);
    EXPECT_GE(hist[1], 1);
    const long waste = (hist[0] - 2) * 36 + (hist[1] - 1) * 30 + hist[2] * 28;
    EXPECT_EQ(waste, s.waste);
  }
  // Minimal waste: w=2 h=2 covering col 1-2 (2 CLB + 2 BRAM): waste 30;
  // or w=3 h=1 (2 CLB + 1 BRAM): waste 0.
  EXPECT_EQ(cands.min_waste, 0);
}

TEST(Candidates, WasteBudgetPrunes) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const RegionCandidates all = enumerateCandidates(sdr, model::kVideoDecoder, -1);
  const RegionCandidates capped = enumerateCandidates(sdr, model::kVideoDecoder, 90);
  EXPECT_GT(all.shapes.size(), capped.shapes.size());
  for (const Shape& s : capped.shapes) EXPECT_LE(s.waste, 90);
  EXPECT_EQ(capped.min_waste, 90);  // VD's minimum on this device
}

TEST(Candidates, ForbiddenRowsExcluded) {
  device::Device dev = device::uniformDevice(6, 6);
  dev.addForbidden(Rect{0, 2, 6, 2}, "band");
  const std::vector<int> ys = validRows(dev, 0, 2, 2);
  // h=2 at y: must avoid rows 2-3 → y in {0, 4}.
  ASSERT_EQ(ys.size(), 2u);
  EXPECT_EQ(ys[0], 0);
  EXPECT_EQ(ys[1], 4);
}

TEST(Candidates, MatchingColumnSpans) {
  const device::Device dev = device::columnarFromPattern("t", "CBCCBC", 3);
  const std::vector<int> xs = matchingColumnSpans(dev, 0, 2);  // pattern CB
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0], 0);
  EXPECT_EQ(xs[1], 3);
}

TEST(Solver, FindsOptimalWasteOnTinyInstance) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCC", 4);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"a", {2, 1, 0}});
  p.addRegion(model::RegionSpec{"b", {2, 0, 0}});
  const SearchResult res = ColumnarSearchSolver().solve(p);
  ASSERT_EQ(res.status, SearchStatus::kOptimal);
  EXPECT_EQ(res.costs.wasted_frames, 0);
  EXPECT_EQ(model::check(p, res.plan), "");
}

TEST(Solver, ProvesInfeasibilityWhenRegionsCannotFit) {
  const device::Device dev = device::columnarFromPattern("t", "CC", 2);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"a", {3, 0, 0}});
  p.addRegion(model::RegionSpec{"b", {2, 0, 0}});
  const SearchResult res = ColumnarSearchSolver().solve(p);
  EXPECT_EQ(res.status, SearchStatus::kInfeasible);
}

TEST(Solver, HardRelocationConstraintIsEnforced) {
  // 6-wide uniform device: region needs 4 tiles (2x2); one hard FC area.
  const device::Device dev = device::uniformDevice(6, 4);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {4}});
  p.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
  const SearchResult res = ColumnarSearchSolver().solve(p);
  ASSERT_EQ(res.status, SearchStatus::kOptimal);
  ASSERT_EQ(res.plan.placedFcCount(), 1);
  EXPECT_EQ(model::check(p, res.plan), "");
}

TEST(Solver, HardRelocationInfeasibleWhenNoRoom) {
  // Region consumes the whole device: no FC area can exist.
  const device::Device dev = device::uniformDevice(2, 2);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {4}});
  p.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
  const SearchResult res = ColumnarSearchSolver().solve(p);
  EXPECT_EQ(res.status, SearchStatus::kInfeasible);
}

TEST(Solver, SoftRelocationDegradesGracefully) {
  const device::Device dev = device::uniformDevice(2, 2);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {4}});
  p.addRelocation(model::RelocationRequest{0, 1, false, 1.0});
  p.setWeights(model::ObjectiveWeights{0, 0, 1, 1});
  SearchOptions opt;
  opt.mode = ObjectiveMode::kWeighted;
  const SearchResult res = ColumnarSearchSolver(opt).solve(p);
  ASSERT_EQ(res.status, SearchStatus::kOptimal);
  EXPECT_EQ(res.plan.placedFcCount(), 0);
  EXPECT_DOUBLE_EQ(res.costs.relocation, 1.0);
}

TEST(Solver, WeightedModePlacesFcWhenBeneficial) {
  const device::Device dev = device::uniformDevice(8, 4);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {4}});
  p.addRelocation(model::RelocationRequest{0, 2, false, 1.0});
  p.setWeights(model::ObjectiveWeights{0, 0, 1, 1});
  SearchOptions opt;
  opt.mode = ObjectiveMode::kWeighted;
  const SearchResult res = ColumnarSearchSolver(opt).solve(p);
  ASSERT_EQ(res.status, SearchStatus::kOptimal);
  EXPECT_EQ(res.plan.placedFcCount(), 2);  // space exists → no reason to skip
}

TEST(Solver, LexicographicPrefersLowerWireLengthAtEqualWaste) {
  const device::Device dev = device::uniformDevice(12, 4);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"a", {4}});
  p.addRegion(model::RegionSpec{"b", {4}});
  p.addNet(model::Net{{0, 1}, 1.0, "n"});
  const SearchResult res = ColumnarSearchSolver().solve(p);
  ASSERT_EQ(res.status, SearchStatus::kOptimal);
  EXPECT_EQ(res.costs.wasted_frames, 0);
  // Zero-waste optimum on WL: 1x4 full-height strips in adjacent columns,
  // center distance 1 on x — strictly better than side-by-side 2x2 blocks.
  EXPECT_NEAR(res.costs.wire_length, 1.0, 1e-9);
}

TEST(Solver, ParallelMatchesSerial) {
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  SearchOptions serial;
  serial.num_threads = 1;
  SearchOptions parallel;
  parallel.num_threads = 8;
  const SearchResult a = ColumnarSearchSolver(serial).solve(sdr2);
  const SearchResult b = ColumnarSearchSolver(parallel).solve(sdr2);
  ASSERT_EQ(a.status, SearchStatus::kOptimal);
  ASSERT_EQ(b.status, SearchStatus::kOptimal);
  EXPECT_EQ(a.costs.wasted_frames, b.costs.wasted_frames);
  EXPECT_NEAR(a.costs.wire_length, b.costs.wire_length, 1e-9);
}

TEST(Solver, WorkStealingTelemetryIsConsistent) {
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  SearchOptions opt;
  opt.num_threads = 8;
  const SearchResult res = ColumnarSearchSolver(opt).solve(sdr2);
  ASSERT_EQ(res.status, SearchStatus::kOptimal);
  ASSERT_EQ(res.workers.size(), 8u);
  long nodes = 0, tasks = 0, splits = 0, steals = 0, stolen = 0;
  for (const SearchWorkerStats& w : res.workers) {
    nodes += w.nodes;
    tasks += w.tasks;
    splits += w.splits;
    steals += w.steals;
    stolen += w.stolen_tasks;
  }
  EXPECT_EQ(nodes, res.nodes);
  EXPECT_EQ(steals, res.steals);
  // A completed solve executed every task: the roots plus every split.
  EXPECT_GE(tasks, splits);
  // Stolen tasks were all spawned by someone (roots are dealt, not stolen,
  // but may be re-stolen — the bound is tasks, not splits).
  EXPECT_LE(stolen, tasks);
}

TEST(Solver, FeasibilityAnalysisMatchesPaper) {
  // Sec. VI: "no solution exists ... for the matched filter or the video
  // decoder region"; carrier recovery, demodulator and signal decoder are
  // relocatable.
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  SearchOptions opt;
  opt.num_threads = 4;
  const std::vector<bool> reloc = ColumnarSearchSolver(opt).feasibilityAnalysis(sdr);
  ASSERT_EQ(reloc.size(), 5u);
  EXPECT_FALSE(reloc[model::kMatchedFilter]);
  EXPECT_TRUE(reloc[model::kCarrierRecovery]);
  EXPECT_TRUE(reloc[model::kDemodulator]);
  EXPECT_TRUE(reloc[model::kSignalDecoder]);
  EXPECT_FALSE(reloc[model::kVideoDecoder]);
}

TEST(Solver, WasteBudgetMakesProblemInfeasible) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  SearchOptions opt;
  opt.waste_budget = 10;  // below the 90-frame optimum
  const SearchResult res = ColumnarSearchSolver(opt).solve(sdr);
  EXPECT_EQ(res.status, SearchStatus::kInfeasible);
}

TEST(Solver, NeverReturnsAPlanWorseThanAPublishedIncumbent) {
  // Regression for the parallel install race: recordSolution used to gate
  // the plan install on `key <= best_key || !has_plan`, and between a peer's
  // best_key CAS and its install both halves of that test could pass for a
  // strictly worse plan — which was then returned (and published) as "best".
  // The install is now keyed on the mutex-guarded best_plan_key, so a search
  // seeded with the known optimum can never end worse than its seed.
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem p = model::makeSdrProblem(dev);
  model::addSdrRelocations(p, 2);
  SearchOptions serial;
  serial.num_threads = 1;
  const SearchResult opt = ColumnarSearchSolver(serial).solve(p);
  ASSERT_EQ(opt.status, SearchStatus::kOptimal);

  for (int round = 0; round < 5; ++round) {
    driver::SharedIncumbent channel(p);
    ASSERT_TRUE(channel.publish(opt.plan, opt.costs, "seed"));
    SearchOptions par;
    par.num_threads = 8;
    par.incumbent = &channel;
    const SearchResult res = ColumnarSearchSolver(par).solve(p);
    ASSERT_TRUE(res.hasSolution()) << "round " << round;
    const model::FloorplanCosts got = model::evaluate(p, res.plan);
    EXPECT_LE(got.wasted_frames, opt.costs.wasted_frames) << "round " << round;
    if (got.wasted_frames == opt.costs.wasted_frames) {
      EXPECT_LE(got.wire_length, opt.costs.wire_length + 1e-9) << "round " << round;
    }
  }
}

TEST(Solver, SolutionsAlwaysPassTheIndependentChecker) {
  const device::Device dev = device::virtex5FX70T();
  for (int fc = 0; fc <= 3; ++fc) {
    model::FloorplanProblem p = model::makeSdrProblem(dev);
    if (fc > 0) model::addSdrRelocations(p, fc);
    SearchOptions opt;
    opt.num_threads = 8;
    const SearchResult res = ColumnarSearchSolver(opt).solve(p);
    ASSERT_TRUE(res.hasSolution()) << "fc=" << fc;
    EXPECT_EQ(model::check(p, res.plan), "") << "fc=" << fc;
  }
}

}  // namespace
}  // namespace rfp::search
