// End-to-end tests for the O and HO MILP floorplanning flows.
#include <gtest/gtest.h>

#include "device/builders.hpp"
#include "fp/milp_floorplanner.hpp"
#include "search/solver.hpp"

namespace rfp::fp {
namespace {

model::FloorplanProblem smallProblem(const device::Device& dev) {
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"a", {2, 1, 0}});
  p.addRegion(model::RegionSpec{"b", {2, 0, 0}});
  p.addNet(model::Net{{0, 1}, 1.0, "n"});
  return p;
}

TEST(MilpFloorplanner, OLexicographicMatchesSearch) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCC", 3);
  const model::FloorplanProblem p = smallProblem(dev);

  MilpFloorplannerOptions opt;
  opt.algorithm = Algorithm::kO;
  const FpResult milp_res = MilpFloorplanner(opt).solve(p);
  ASSERT_TRUE(milp_res.hasSolution()) << milp_res.detail;
  EXPECT_EQ(model::check(p, milp_res.plan), "");

  const search::SearchResult sres = search::ColumnarSearchSolver().solve(p);
  ASSERT_EQ(sres.status, search::SearchStatus::kOptimal);
  EXPECT_EQ(milp_res.costs.wasted_frames, sres.costs.wasted_frames);
  EXPECT_NEAR(milp_res.costs.wire_length, sres.costs.wire_length, 1e-6);
}

TEST(MilpFloorplanner, HoProducesValidSolutionQuickly) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"a", {3, 1, 0}});
  p.addRegion(model::RegionSpec{"b", {2, 0, 1}});
  p.addNet(model::Net{{0, 1}, 4.0, "n"});

  MilpFloorplannerOptions opt;
  opt.algorithm = Algorithm::kHO;
  const FpResult res = MilpFloorplanner(opt).solve(p);
  ASSERT_TRUE(res.hasSolution()) << res.detail;
  EXPECT_EQ(model::check(p, res.plan), "");
}

TEST(MilpFloorplanner, HoNeverWorseThanItsHeuristicStart) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"a", {3, 1, 0}});
  p.addRegion(model::RegionSpec{"b", {2, 0, 1}});
  const auto heuristic = constructiveFloorplan(p);
  ASSERT_TRUE(heuristic.has_value());
  const long heuristic_waste = model::evaluate(p, *heuristic).wasted_frames;

  MilpFloorplannerOptions opt;
  opt.algorithm = Algorithm::kHO;
  const FpResult res = MilpFloorplanner(opt).solve(p);
  ASSERT_TRUE(res.hasSolution());
  EXPECT_LE(res.costs.wasted_frames, heuristic_waste);
}

TEST(MilpFloorplanner, RelocationConstraintEndToEnd) {
  const device::Device dev = device::columnarFromPattern("t", "CCBCC", 4);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"a", {2, 0, 0}});
  p.addRelocation(model::RelocationRequest{0, 1, true, 1.0});

  MilpFloorplannerOptions opt;
  opt.algorithm = Algorithm::kO;
  const FpResult res = MilpFloorplanner(opt).solve(p);
  ASSERT_TRUE(res.hasSolution()) << res.detail;
  EXPECT_EQ(res.plan.placedFcCount(), 1);
  EXPECT_EQ(model::check(p, res.plan), "");
}

TEST(MilpFloorplanner, WeightedObjectiveMode) {
  const device::Device dev = device::columnarFromPattern("t", "CCCC", 3);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"a", {2, 0, 0}});
  p.addRelocation(model::RelocationRequest{0, 1, false, 1.0});
  p.setWeights(model::ObjectiveWeights{1, 0, 1, 1});

  MilpFloorplannerOptions opt;
  opt.algorithm = Algorithm::kO;
  opt.lexicographic = false;
  const FpResult res = MilpFloorplanner(opt).solve(p);
  ASSERT_TRUE(res.hasSolution()) << res.detail;
  EXPECT_EQ(model::check(p, res.plan), "");
  EXPECT_EQ(res.plan.placedFcCount(), 1);  // room exists → placing is cheaper
}

TEST(MilpFloorplanner, InfeasibleProblemReported) {
  const device::Device dev = device::columnarFromPattern("t", "CC", 2);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {4, 0, 0}});
  p.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
  MilpFloorplannerOptions opt;
  opt.algorithm = Algorithm::kO;
  const FpResult res = MilpFloorplanner(opt).solve(p);
  EXPECT_FALSE(res.hasSolution());
}

}  // namespace
}  // namespace rfp::fp
