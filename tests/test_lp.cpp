// Unit and property tests for the LP layer: LinExpr algebra, the Model
// container and the two-phase bounded simplex.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.hpp"
#include "support/check.hpp"
#include "lp/simplex.hpp"
#include "support/rng.hpp"

namespace rfp::lp {
namespace {

TEST(LinExpr, NormalizeMergesDuplicates) {
  LinExpr e;
  e.addTerm(Var{0}, 1.0);
  e.addTerm(Var{1}, 2.0);
  e.addTerm(Var{0}, 3.0);
  e.addTerm(Var{2}, 0.0);
  e.normalize();
  ASSERT_EQ(e.terms().size(), 2u);
  EXPECT_EQ(e.terms()[0].first, 0);
  EXPECT_DOUBLE_EQ(e.terms()[0].second, 4.0);
  EXPECT_EQ(e.terms()[1].first, 1);
}

TEST(LinExpr, OperatorAlgebra) {
  const Var x{0}, y{1};
  LinExpr e = 2.0 * x + 3.0 * y - 1.0;
  e.normalize();
  EXPECT_DOUBLE_EQ(e.constant(), -1.0);
  ASSERT_EQ(e.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(e.terms()[0].second, 2.0);
  EXPECT_DOUBLE_EQ(e.terms()[1].second, 3.0);
  LinExpr f = -(e * 2.0);
  f.normalize();
  EXPECT_DOUBLE_EQ(f.constant(), 2.0);
  EXPECT_DOUBLE_EQ(f.terms()[0].second, -4.0);
}

TEST(Model, ConstantsMoveToRhs) {
  Model m;
  const Var x = m.addContinuous(0, 10, "x");
  m.addConstr(LinExpr(x) + 5.0, Sense::kLessEqual, 7.0);
  EXPECT_DOUBLE_EQ(m.constr(0).rhs, 2.0);
}

TEST(Model, IsFeasibleChecksEverything) {
  Model m;
  const Var x = m.addInteger(0, 3, "x");
  const Var y = m.addContinuous(0, 1, "y");
  m.addConstr(LinExpr(x) + y, Sense::kLessEqual, 2.5);
  EXPECT_TRUE(m.isFeasible(std::vector<double>{2.0, 0.5}));
  EXPECT_FALSE(m.isFeasible(std::vector<double>{2.4, 0.0}));   // integrality
  EXPECT_FALSE(m.isFeasible(std::vector<double>{2.0, 1.5}));   // bound
  EXPECT_FALSE(m.isFeasible(std::vector<double>{2.0, 0.9}));   // constraint
}

TEST(Model, RangeAddsTwoRows) {
  Model m;
  const Var x = m.addContinuous(0, 10, "x");
  m.addRange(LinExpr(x), 2.0, 5.0, "r");
  EXPECT_EQ(m.numConstrs(), 2);
}

TEST(Model, RejectsBadBounds) {
  Model m;
  EXPECT_THROW(m.addContinuous(3, 1, "bad"), rfp::CheckError);
}

// ---- simplex --------------------------------------------------------------

TEST(Simplex, TextbookMaximization) {
  // max 3x+5y st x<=4, 2y<=12, 3x+2y<=18 → (2,6) obj 36.
  Model m;
  const Var x = m.addContinuous(0, kInfinity, "x");
  const Var y = m.addContinuous(0, kInfinity, "y");
  m.addConstr(LinExpr(x), Sense::kLessEqual, 4);
  m.addConstr(2.0 * y, Sense::kLessEqual, 12);
  m.addConstr(3.0 * x + 2.0 * y, Sense::kLessEqual, 18);
  m.setObjective(3.0 * x + 5.0 * y, ObjSense::kMaximize);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-7);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
  EXPECT_NEAR(r.x[1], 6.0, 1e-7);
}

TEST(Simplex, EqualityAndGreaterRows) {
  // min 2x+3y+z st x+y+z == 10, x-y >= 2, z <= 3, all >= 0.
  // Optimum: maximize x vs ... solve by hand: z=0..3; obj=2x+3y+z with
  // x+y=10-z, x>=y+2 → x=10-z-y; minimize 2(10-z-y)+3y+z = 20-2z-2y+3y+z
  // = 20 - z + y → maximize z (3), minimize y (0): check x=7,y=0 satisfies
  // x-y=7>=2. obj = 17.
  Model m;
  const Var x = m.addContinuous(0, kInfinity, "x");
  const Var y = m.addContinuous(0, kInfinity, "y");
  const Var z = m.addContinuous(0, 3, "z");
  m.addConstr(LinExpr(x) + y + z, Sense::kEqual, 10);
  m.addConstr(LinExpr(x) - y, Sense::kGreaterEqual, 2);
  m.setObjective(2.0 * x + 3.0 * y + z, ObjSense::kMinimize);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 17.0, 1e-7);
}

TEST(Simplex, BoundFlipsWithFiniteUpperBounds) {
  // max x+y+z, x,y,z in [0,1], x+y+z <= 2.5 → 2.5.
  Model m;
  const Var x = m.addContinuous(0, 1, "x");
  const Var y = m.addContinuous(0, 1, "y");
  const Var z = m.addContinuous(0, 1, "z");
  m.addConstr(LinExpr(x) + y + z, Sense::kLessEqual, 2.5);
  m.setObjective(LinExpr(x) + y + z, ObjSense::kMaximize);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.5, 1e-7);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y st x + 2y >= -3, x in [-5, 0], y in [-4, 4] → x=-5? check:
  // x+2y >= -3 → with x=-5: y >= 1 → obj -4; with x=-1,y=-1: -3 ✓ obj -2;
  // optimize: obj = x+y, gradient both -1... LP optimum at vertex:
  // candidates: (x=-5,y=1): -4; (x=0,y=-1.5): -1.5; (x=-5,y=4): covered
  // worse for min? obj -1... wait min: -5+1=-4 vs -5+4=-1 → -4 best? Also
  // y=-4: x >= -3-2(-4)=5 > 0 infeasible. So optimum -4.
  Model m;
  const Var x = m.addContinuous(-5, 0, "x");
  const Var y = m.addContinuous(-4, 4, "y");
  m.addConstr(LinExpr(x) + 2.0 * y, Sense::kGreaterEqual, -3);
  m.setObjective(LinExpr(x) + y, ObjSense::kMinimize);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  const Var x = m.addContinuous(0, 1, "x");
  const Var y = m.addContinuous(0, 1, "y");
  m.addConstr(LinExpr(x) + y, Sense::kGreaterEqual, 3);
  const LpResult r = SimplexSolver().solve(m);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model m;
  const Var x = m.addContinuous(0, kInfinity, "x");
  const Var y = m.addContinuous(0, kInfinity, "y");
  m.addConstr(LinExpr(x) - y, Sense::kLessEqual, 1);
  m.setObjective(LinExpr(x) + y, ObjSense::kMaximize);
  const LpResult r = SimplexSolver().solve(m);
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: many redundant constraints through the origin.
  Model m;
  const Var x = m.addContinuous(0, kInfinity, "x");
  const Var y = m.addContinuous(0, kInfinity, "y");
  m.addConstr(LinExpr(x) - y, Sense::kLessEqual, 0);
  m.addConstr(2.0 * x - y, Sense::kLessEqual, 0);
  m.addConstr(3.0 * x - y, Sense::kLessEqual, 0);
  m.addConstr(LinExpr(x) + y, Sense::kLessEqual, 4);
  m.setObjective(2.0 * x + y, ObjSense::kMaximize);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Binding: 3x ≤ y and x + y ≤ 4 → vertex (1, 3), objective 2·1 + 3 = 5.
  EXPECT_NEAR(r.objective, 5.0, 1e-7);
}

TEST(Simplex, EmptyConstraintSetUsesBounds) {
  Model m;
  const Var x = m.addContinuous(1, 5, "x");
  m.setObjective(LinExpr(x), ObjSense::kMaximize);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-7);
}

TEST(Simplex, FixedVariablesViaBoundsOverride) {
  Model m;
  const Var x = m.addContinuous(0, 10, "x");
  const Var y = m.addContinuous(0, 10, "y");
  m.addConstr(LinExpr(x) + y, Sense::kLessEqual, 8);
  m.setObjective(LinExpr(x) + y, ObjSense::kMaximize);
  const std::vector<double> lb{3, 0}, ub{3, 10};
  const LpResult r = SimplexSolver().solve(m, lb, ub);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-7);
  EXPECT_NEAR(r.objective, 8.0, 1e-7);
}

// Property test: on random small feasible-by-construction LPs, the simplex
// optimum must (a) be feasible and (b) not be beaten by any of a large
// sample of random feasible points.
TEST(SimplexProperty, RandomLpsOptimalityAndFeasibility) {
  Rng rng(2026);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng.nextBelow(4));
    const int rows = 1 + static_cast<int>(rng.nextBelow(5));
    Model m;
    std::vector<Var> vars;
    for (int j = 0; j < n; ++j)
      vars.push_back(m.addContinuous(0, 1 + static_cast<double>(rng.nextBelow(9)), "v"));
    // Constraints a·x <= b with a >= 0 and b >= 0 keep x = 0 feasible.
    std::vector<std::vector<double>> A(static_cast<std::size_t>(rows));
    std::vector<double> b(static_cast<std::size_t>(rows));
    for (int i = 0; i < rows; ++i) {
      LinExpr e;
      for (int j = 0; j < n; ++j) {
        const double coef = static_cast<double>(rng.nextBelow(5));
        A[static_cast<std::size_t>(i)].push_back(coef);
        e += coef * vars[static_cast<std::size_t>(j)];
      }
      b[static_cast<std::size_t>(i)] = 1.0 + static_cast<double>(rng.nextBelow(20));
      m.addConstr(e, Sense::kLessEqual, b[static_cast<std::size_t>(i)]);
    }
    LinExpr obj;
    for (int j = 0; j < n; ++j) obj += (1.0 + static_cast<double>(rng.nextBelow(7))) * vars[static_cast<std::size_t>(j)];
    m.setObjective(obj, ObjSense::kMaximize);

    const LpResult r = SimplexSolver().solve(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_TRUE(m.isFeasible(r.x, 1e-6)) << "trial " << trial;

    // Random feasible points must not beat the reported optimum.
    for (int s = 0; s < 50; ++s) {
      std::vector<double> pt(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j)
        pt[static_cast<std::size_t>(j)] = rng.nextDouble() * m.var(j).ub;
      if (!m.isFeasible(pt, 1e-9)) continue;
      EXPECT_LE(m.evalObjective(pt), r.objective + 1e-6) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace rfp::lp
