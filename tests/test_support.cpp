// Unit tests for the support layer (strings, rng, timer, check macros).
#include <gtest/gtest.h>

#include <set>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

namespace rfp {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(str::trim("  hello  "), "hello");
  EXPECT_EQ(str::trim("\t a b \n"), "a b");
  EXPECT_EQ(str::trim(""), "");
  EXPECT_EQ(str::trim("   "), "");
  EXPECT_EQ(str::trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = str::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmptyFields) {
  const auto parts = str::splitWhitespace("  a \t b\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(str::startsWith("device x", "device"));
  EXPECT_FALSE(str::startsWith("dev", "device"));
}

TEST(Strings, ToLower) { EXPECT_EQ(str::toLower("CLB Tile"), "clb tile"); }

TEST(Strings, FormatDouble) {
  EXPECT_EQ(str::formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(str::formatDouble(-0.5, 1), "-0.5");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.nextU64() == b.nextU64() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int bound : {1, 2, 3, 17, 1000}) {
    for (int i = 0; i < 200; ++i) {
      const auto v = rng.nextBelow(static_cast<std::uint64_t>(bound));
      EXPECT_LT(v, static_cast<std::uint64_t>(bound));
    }
  }
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.nextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Timer, StopwatchAdvances) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(w.seconds(), 0.0);
}

TEST(Timer, DeadlineZeroNeverExpires) {
  Deadline d(0.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), 1e20);
}

TEST(Timer, DeadlineTinyLimitExpires) {
  Deadline d(1e-9);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_TRUE(d.expired());
}

TEST(Check, ThrowsCheckErrorWithMessage) {
  try {
    RFP_CHECK_MSG(false, "custom " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { RFP_CHECK(1 + 1 == 2); }

}  // namespace
}  // namespace rfp
