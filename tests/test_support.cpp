// Unit tests for the support layer (strings, rng, timer, check macros, and
// the annotated sync primitives).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/sync.hpp"
#include "support/timer.hpp"

namespace rfp {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(str::trim("  hello  "), "hello");
  EXPECT_EQ(str::trim("\t a b \n"), "a b");
  EXPECT_EQ(str::trim(""), "");
  EXPECT_EQ(str::trim("   "), "");
  EXPECT_EQ(str::trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = str::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmptyFields) {
  const auto parts = str::splitWhitespace("  a \t b\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(str::startsWith("device x", "device"));
  EXPECT_FALSE(str::startsWith("dev", "device"));
}

TEST(Strings, ToLower) { EXPECT_EQ(str::toLower("CLB Tile"), "clb tile"); }

TEST(Strings, FormatDouble) {
  EXPECT_EQ(str::formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(str::formatDouble(-0.5, 1), "-0.5");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.nextU64() == b.nextU64() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int bound : {1, 2, 3, 17, 1000}) {
    for (int i = 0; i < 200; ++i) {
      const auto v = rng.nextBelow(static_cast<std::uint64_t>(bound));
      EXPECT_LT(v, static_cast<std::uint64_t>(bound));
    }
  }
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.nextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Timer, StopwatchAdvances) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(w.seconds(), 0.0);
}

TEST(Timer, DeadlineZeroNeverExpires) {
  Deadline d(0.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), 1e20);
}

TEST(Timer, DeadlineTinyLimitExpires) {
  Deadline d(1e-9);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_TRUE(d.expired());
}

TEST(Check, ThrowsCheckErrorWithMessage) {
  try {
    RFP_CHECK_MSG(false, "custom " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { RFP_CHECK(1 + 1 == 2); }

// ---- annotated sync layer (support/sync.hpp) -------------------------------

struct GuardedCounter {
  sync::Mutex mu;
  int value RFP_GUARDED_BY(mu) = 0;

  void bump() {
    const sync::MutexLock lock(mu);
    ++value;
  }
  int get() {
    const sync::MutexLock lock(mu);
    return value;
  }
};

TEST(Sync, MutexLockExcludesConcurrentWriters) {
  GuardedCounter c;
  constexpr int kIters = 20000;
  std::thread a([&c] {
    for (int i = 0; i < kIters; ++i) c.bump();
  });
  std::thread b([&c] {
    for (int i = 0; i < kIters; ++i) c.bump();
  });
  a.join();
  b.join();
  EXPECT_EQ(c.get(), 2 * kIters);
}

TEST(Sync, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  sync::Mutex mu;
  {
    const sync::MutexLock lock(mu);
    // try_lock from another thread must fail while the lock is held; the
    // result crosses threads via the atomic.
    std::atomic<bool> acquired{true};
    std::thread prober([&mu, &acquired] {
      if (mu.try_lock()) {
        mu.unlock();
      } else {
        acquired.store(false);
      }
    });
    prober.join();
    EXPECT_FALSE(acquired.load());
  }
  if (mu.try_lock()) {
    mu.unlock();
  } else {
    ADD_FAILURE() << "try_lock should succeed once the MutexLock is gone";
  }
}

TEST(Sync, AdoptLockReleasesOnScopeExit) {
  sync::Mutex mu;
  if (!mu.try_lock()) {
    FAIL() << "uncontended try_lock should succeed";
  }
  { const sync::AdoptLock adopted(mu, std::adopt_lock); }
  if (mu.try_lock()) {  // AdoptLock's destructor must have released it
    mu.unlock();
  } else {
    ADD_FAILURE() << "AdoptLock did not release the mutex on scope exit";
  }
}

TEST(Sync, UniqueLockTracksOwnership) {
  sync::Mutex mu;
  sync::UniqueLock lock(mu);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(Sync, CondVarPredicateWaitWakesOnNotify) {
  sync::Mutex mu;
  sync::CondVar cv;
  bool ready = false;  // guarded by mu (locals cannot carry RFP_GUARDED_BY)
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    sync::UniqueLock lock(mu);
    cv.wait(lock, [&ready] { return ready; });
    woke.store(true);
  });
  {
    const sync::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(Sync, CondVarWaitForTimesOutWhenPredicateStaysFalse) {
  sync::Mutex mu;
  sync::CondVar cv;
  sync::UniqueLock lock(mu);
  const bool satisfied =
      cv.wait_for(lock, std::chrono::milliseconds(5), [] { return false; });
  EXPECT_FALSE(satisfied);
  EXPECT_TRUE(lock.owns_lock());  // the wait must reacquire before returning
}

}  // namespace
}  // namespace rfp
