// Tests for the synthetic partial-bitstream model and relocation filter.
#include <gtest/gtest.h>

#include "bitstream/bitstream.hpp"
#include "device/builders.hpp"
#include "support/check.hpp"

namespace rfp::bitstream {
namespace {

using device::Rect;

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
}

TEST(Bitstream, FrameAddressPackingRoundTrip) {
  const FrameAddress a{37, 6, 29};
  EXPECT_EQ(FrameAddress::unpack(a.packed()), a);
}

TEST(Bitstream, GeneratedBitstreamVerifies) {
  const device::Device dev = device::virtex5FX70T();
  const Rect area{6, 0, 6, 5};  // a matched-filter footprint (D C C C C C)
  const PartialBitstream bs = generateBitstream(dev, area, /*design_seed=*/1);
  EXPECT_EQ(verifyBitstream(dev, bs), "");
  // Frame count: per column type per tile: sum over tiles.
  long expected = 0;
  for (int x = area.x; x < area.x2(); ++x)
    expected += static_cast<long>(dev.tileType(dev.columnType(x)).frames) * area.h;
  EXPECT_EQ(static_cast<long>(bs.frames.size()), expected);
}

TEST(Bitstream, TamperingBreaksCrc) {
  const device::Device dev = device::uniformDevice(4, 4);
  PartialBitstream bs = generateBitstream(dev, Rect{0, 0, 2, 2}, 1);
  bs.frames[0].words[0] ^= 1u;
  EXPECT_NE(verifyBitstream(dev, bs), "");
}

TEST(Bitstream, RelocationMovesAddressesAndFixesCrc) {
  const device::Device dev = device::virtex5FX70T();
  const Rect src{3, 0, 4, 2};
  const Rect dst{3, 4, 4, 2};  // vertical translation: always compatible
  const PartialBitstream bs = generateBitstream(dev, src, 2);
  const PartialBitstream moved = relocateBitstream(dev, bs, dst);
  EXPECT_EQ(verifyBitstream(dev, moved), "");
  EXPECT_EQ(moved.area, dst);
  EXPECT_EQ(moved.frames[0].address.row, bs.frames[0].address.row + 4);
  EXPECT_EQ(moved.frames[0].address.column, bs.frames[0].address.column);
  EXPECT_NE(moved.crc, bs.crc);  // addresses participate in the CRC
}

TEST(Bitstream, RelocationRoundTripIsIdentity) {
  const device::Device dev = device::virtex5FX70T();
  const Rect src{8, 1, 3, 3};
  const Rect dst{8, 5, 3, 3};
  const PartialBitstream bs = generateBitstream(dev, src, 3);
  const PartialBitstream back = relocateBitstream(dev, relocateBitstream(dev, bs, dst), src);
  EXPECT_EQ(back.crc, bs.crc);
  ASSERT_EQ(back.frames.size(), bs.frames.size());
  for (std::size_t i = 0; i < bs.frames.size(); ++i) {
    EXPECT_EQ(back.frames[i].address, bs.frames[i].address);
    EXPECT_EQ(back.frames[i].words, bs.frames[i].words);
  }
}

TEST(Bitstream, RelocationToIncompatibleAreaRejected) {
  const device::Device dev = device::virtex5FX70T();
  // Source spans the BRAM column at x=2; x+1 has a different signature.
  const PartialBitstream bs = generateBitstream(dev, Rect{1, 0, 3, 2}, 4);
  EXPECT_THROW((void)relocateBitstream(dev, bs, Rect{2, 0, 3, 2}), CheckError);
}

TEST(Bitstream, CompatibleHorizontalRelocation) {
  // The two DSP columns of the FX70T model have congruent neighborhoods:
  // D C C C C C at x=7 matches x=22.
  const device::Device dev = device::virtex5FX70T();
  const PartialBitstream bs = generateBitstream(dev, Rect{7, 0, 6, 5}, 5);
  const PartialBitstream moved = relocateBitstream(dev, bs, Rect{22, 0, 6, 5});
  EXPECT_EQ(verifyBitstream(dev, moved), "");
  // Same configuration data (Def. .1): payloads must be identical.
  for (std::size_t i = 0; i < bs.frames.size(); ++i)
    EXPECT_EQ(moved.frames[i].words, bs.frames[i].words);
}

TEST(Bitstream, PayloadPositionIndependence) {
  // Definition .1: the configuration data of compatible areas is identical —
  // generating directly at the target equals relocating from the source.
  const device::Device dev = device::virtex5FX70T();
  const PartialBitstream at_src = generateBitstream(dev, Rect{7, 0, 6, 5}, 9);
  const PartialBitstream at_dst = generateBitstream(dev, Rect{22, 2, 6, 5}, 9);
  const PartialBitstream moved = relocateBitstream(dev, at_src, Rect{22, 2, 6, 5});
  ASSERT_EQ(moved.frames.size(), at_dst.frames.size());
  EXPECT_EQ(moved.crc, at_dst.crc);
}

}  // namespace
}  // namespace rfp::bitstream
