// Instance generator: structural validity, feasibility-by-construction, and
// determinism; plus randomized cross-validation of the exact search solver
// against the MILP floorplanner on generated instances.
#include <gtest/gtest.h>

#include "device/builders.hpp"
#include "fp/milp_floorplanner.hpp"
#include "model/floorplan.hpp"
#include "model/generator.hpp"
#include "search/solver.hpp"

namespace rfp::model {
namespace {

TEST(Generator, ProducesStructurallyValidProblems) {
  const device::Device dev = device::virtex5FX70T();
  GeneratorOptions opt;
  opt.num_regions = 5;
  opt.num_nets = 4;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    opt.seed = seed;
    const auto p = generateProblem(dev, opt);
    ASSERT_TRUE(p.has_value()) << "seed " << seed;
    EXPECT_EQ(p->validate(), "") << "seed " << seed;
    EXPECT_EQ(p->numRegions(), 5);
    EXPECT_EQ(p->nets().size(), 4u);
  }
}

TEST(Generator, IsDeterministicPerSeed) {
  const device::Device dev = device::virtex5FX70T();
  GeneratorOptions opt;
  opt.seed = 42;
  const auto a = generateProblem(dev, opt);
  const auto b = generateProblem(dev, opt);
  ASSERT_TRUE(a && b);
  ASSERT_EQ(a->numRegions(), b->numRegions());
  for (int n = 0; n < a->numRegions(); ++n) EXPECT_EQ(a->region(n).tiles, b->region(n).tiles);
  opt.seed = 43;
  const auto c = generateProblem(dev, opt);
  ASSERT_TRUE(c);
  bool any_diff = false;
  for (int n = 0; n < a->numRegions() && !any_diff; ++n)
    any_diff = a->region(n).tiles != c->region(n).tiles;
  EXPECT_TRUE(any_diff) << "different seeds should give different instances";
}

TEST(Generator, GeneratedProblemsAreFeasible) {
  // Feasible-by-construction: the exact solver must find a solution.
  const device::Device dev = device::virtex5FX70T();
  GeneratorOptions opt;
  opt.num_regions = 4;
  search::SearchOptions sopt;
  sopt.feasibility_only = true;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    opt.seed = seed;
    const auto p = generateProblem(dev, opt);
    ASSERT_TRUE(p.has_value());
    const search::SearchResult res = search::ColumnarSearchSolver(sopt).solve(*p);
    EXPECT_TRUE(res.hasSolution()) << "seed " << seed;
  }
}

TEST(Generator, SlackReducesRequirements) {
  const device::Device dev = device::virtex5FX70T();
  GeneratorOptions tight;
  tight.seed = 7;
  GeneratorOptions loose = tight;
  loose.requirement_slack = 0.5;
  const auto a = generateProblem(dev, tight);
  const auto b = generateProblem(dev, loose);
  ASSERT_TRUE(a && b);
  long total_a = 0, total_b = 0;
  for (int n = 0; n < a->numRegions(); ++n)
    for (int t = 0; t < dev.numTileTypes(); ++t) {
      total_a += a->region(n).required(t);
      total_b += b->region(n).required(t);
    }
  EXPECT_LT(total_b, total_a);
}

TEST(Generator, RelocationRequestsAreAttached) {
  const device::Device dev = device::virtex5FX70T();
  GeneratorOptions opt;
  opt.num_regions = 3;
  opt.fc_per_region = 2;
  const auto p = generateProblem(dev, opt);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->totalFcAreas(), 6);
  for (const RelocationRequest& r : p->relocations()) EXPECT_TRUE(r.hard);

  opt.soft_relocation = true;
  const auto q = generateProblem(dev, opt);
  ASSERT_TRUE(q);
  for (const RelocationRequest& r : q->relocations()) EXPECT_FALSE(r.hard);
}

TEST(Generator, FailsGracefullyWhenDeviceTooSmall) {
  const device::Device dev = device::uniformDevice(3, 2);
  GeneratorOptions opt;
  opt.num_regions = 40;  // cannot pack 40 regions on 6 tiles
  EXPECT_FALSE(generateProblem(dev, opt).has_value());
}

// ---- randomized cross-validation -------------------------------------------

struct CrossCheckCase {
  std::uint64_t seed;
  int regions;
};

class SolverCrossCheck : public ::testing::TestWithParam<CrossCheckCase> {};

TEST_P(SolverCrossCheck, MilpMatchesExactSearchOptimum) {
  // Small devices keep the MILP tractable; the exact search is the oracle.
  const device::Device dev = device::columnarFromPattern("x", "CCBCC", 4);
  GeneratorOptions opt;
  opt.num_regions = GetParam().regions;
  opt.max_region_width = 3;
  opt.max_region_height = 2;
  opt.num_nets = 1;
  opt.seed = GetParam().seed;
  const auto p = generateProblem(dev, opt);
  if (!p) GTEST_SKIP() << "packing failed for this seed";

  const search::SearchResult oracle = search::ColumnarSearchSolver().solve(*p);
  ASSERT_EQ(oracle.status, search::SearchStatus::kOptimal);

  fp::MilpFloorplannerOptions mopt;
  mopt.algorithm = fp::Algorithm::kO;
  mopt.milp.time_limit_seconds = 30.0;
  const fp::FpResult milp = fp::MilpFloorplanner(mopt).solve(*p);
  ASSERT_TRUE(milp.hasSolution()) << milp.detail;
  EXPECT_EQ(milp.costs.wasted_frames, oracle.costs.wasted_frames) << milp.detail;
  EXPECT_EQ(model::check(*p, milp.plan), "");
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SolverCrossCheck,
                         ::testing::Values(CrossCheckCase{1, 2}, CrossCheckCase{2, 2},
                                           CrossCheckCase{3, 3}, CrossCheckCase{4, 3},
                                           CrossCheckCase{5, 2}, CrossCheckCase{6, 3}),
                         [](const ::testing::TestParamInfo<CrossCheckCase>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_r" +
                                  std::to_string(info.param.regions);
                         });

}  // namespace
}  // namespace rfp::model
