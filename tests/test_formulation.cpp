// Tests for the MILP formulation (the paper's core): encode/solve/extract
// round trips, both offset encodings, relocation constraints and metrics.
#include <gtest/gtest.h>

#include "device/builders.hpp"
#include "fp/formulation.hpp"
#include "support/check.hpp"
#include "milp/bb.hpp"
#include "partition/columnar.hpp"
#include "search/solver.hpp"

namespace rfp::fp {
namespace {

using device::Rect;

struct Fixture {
  device::Device dev;
  model::FloorplanProblem problem;
  partition::ColumnarPartition part;

  explicit Fixture(const std::string& pattern, int rows)
      : dev(device::columnarFromPattern("t", pattern, rows)), problem(&dev),
        part(*partition::columnarPartition(dev)) {}
};

TEST(Formulation, EncodeOfValidFloorplanIsModelFeasible) {
  Fixture f("CCBCC", 4);
  f.problem.addRegion(model::RegionSpec{"a", {2, 1, 0}});
  f.problem.addRegion(model::RegionSpec{"b", {2, 0, 0}});
  f.problem.addNet(model::Net{{0, 1}, 1.0, "n"});
  MilpFormulation formulation(f.problem, f.part);

  model::Floorplan fp;
  fp.regions = {Rect{1, 0, 2, 2}, Rect{3, 2, 2, 1}};
  fp.fc_areas = model::expandFcRequests(f.problem);
  ASSERT_EQ(model::check(f.problem, fp), "");
  const std::vector<double> encoded = formulation.encode(fp);
  EXPECT_TRUE(formulation.model().isFeasible(encoded, 1e-6))
      << formulation.model().toString();
}

TEST(Formulation, EncodeRejectsUnplacedHardFc) {
  Fixture f("CCBCC", 4);
  f.problem.addRegion(model::RegionSpec{"a", {1, 0, 0}});
  f.problem.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
  MilpFormulation formulation(f.problem, f.part);
  model::Floorplan fp;
  fp.regions = {Rect{0, 0, 1, 1}};
  fp.fc_areas = model::expandFcRequests(f.problem);
  EXPECT_THROW((void)formulation.encode(fp), rfp::CheckError);
}

TEST(Formulation, EncodeWithPlacedFcIsFeasibleBothEncodings) {
  for (const OffsetEncoding enc : {OffsetEncoding::kChain, OffsetEncoding::kPaper}) {
    Fixture f("CBCCBC", 3);
    f.problem.addRegion(model::RegionSpec{"r", {1, 1, 0}});
    f.problem.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
    FormulationOptions opt;
    opt.offset = enc;
    MilpFormulation formulation(f.problem, f.part, opt);
    model::Floorplan fp;
    fp.regions = {Rect{0, 0, 2, 1}};
    fp.fc_areas = model::expandFcRequests(f.problem);
    fp.fc_areas[0].placed = true;
    fp.fc_areas[0].rect = Rect{3, 1, 2, 1};
    ASSERT_EQ(model::check(f.problem, fp), "");
    const std::vector<double> encoded = formulation.encode(fp);
    EXPECT_TRUE(formulation.model().isFeasible(encoded, 1e-6))
        << "encoding " << static_cast<int>(enc);
  }
}

TEST(Formulation, EncodeOfIncompatibleFcViolatesModel) {
  Fixture f("CBCCBC", 3);
  f.problem.addRegion(model::RegionSpec{"r", {1, 1, 0}});
  f.problem.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
  MilpFormulation formulation(f.problem, f.part);
  model::Floorplan fp;
  fp.regions = {Rect{0, 0, 2, 1}};  // pattern C B
  fp.fc_areas = model::expandFcRequests(f.problem);
  fp.fc_areas[0].placed = true;
  fp.fc_areas[0].rect = Rect{2, 0, 2, 1};  // pattern C C → incompatible
  const std::vector<double> encoded = formulation.encode(fp);
  EXPECT_FALSE(formulation.model().isFeasible(encoded, 1e-6));
}

TEST(Formulation, MilpSolveMatchesSearchOptimum) {
  // Small instance solved by both the MILP (O) and the exact search: the
  // optimal wasted frames must agree (cross-validation of the two paths).
  Fixture f("CCBCC", 3);
  f.problem.addRegion(model::RegionSpec{"a", {2, 1, 0}});
  f.problem.addRegion(model::RegionSpec{"b", {2, 0, 0}});

  FormulationOptions fopt;
  fopt.objective = ObjectiveKind::kWastedFrames;
  MilpFormulation formulation(f.problem, f.part, fopt);
  const milp::MipResult mip = milp::MilpSolver().solve(formulation.model());
  ASSERT_EQ(mip.status, milp::MipStatus::kOptimal);

  const search::SearchResult sres = search::ColumnarSearchSolver().solve(f.problem);
  ASSERT_EQ(sres.status, search::SearchStatus::kOptimal);

  const model::Floorplan fp = formulation.extract(mip.x);
  EXPECT_EQ(model::check(f.problem, fp), "");
  EXPECT_EQ(model::evaluate(f.problem, fp).wasted_frames, sres.costs.wasted_frames);
}

TEST(Formulation, RelocationConstraintMilpMatchesSearch) {
  Fixture f("CCBCC", 4);
  f.problem.addRegion(model::RegionSpec{"a", {2, 0, 0}});
  f.problem.addRelocation(model::RelocationRequest{0, 1, true, 1.0});

  FormulationOptions fopt;
  fopt.objective = ObjectiveKind::kWastedFrames;
  MilpFormulation formulation(f.problem, f.part, fopt);
  const milp::MipResult mip = milp::MilpSolver().solve(formulation.model());
  ASSERT_EQ(mip.status, milp::MipStatus::kOptimal);
  const model::Floorplan fp = formulation.extract(mip.x);
  ASSERT_EQ(model::check(f.problem, fp), "");
  EXPECT_EQ(fp.placedFcCount(), 1);

  const search::SearchResult sres = search::ColumnarSearchSolver().solve(f.problem);
  EXPECT_EQ(model::evaluate(f.problem, fp).wasted_frames, sres.costs.wasted_frames);
}

TEST(Formulation, InfeasibleRelocationDetectedByMilp) {
  // Device too small for a region + its FC copy.
  Fixture f("CC", 2);
  f.problem.addRegion(model::RegionSpec{"r", {4, 0, 0}});
  f.problem.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
  FormulationOptions fopt;
  fopt.objective = ObjectiveKind::kWastedFrames;
  MilpFormulation formulation(f.problem, f.part, fopt);
  const milp::MipResult mip = milp::MilpSolver().solve(formulation.model());
  EXPECT_EQ(mip.status, milp::MipStatus::kInfeasible);
}

TEST(Formulation, SoftRelocationUsesViolationBinary) {
  // Region fills the device: the soft FC cannot be placed; v_c = 1 keeps the
  // model feasible (Sec. V) and the RL term shows in the objective.
  Fixture f("CC", 2);
  f.problem.addRegion(model::RegionSpec{"r", {4, 0, 0}});
  f.problem.addRelocation(model::RelocationRequest{0, 1, false, 1.0});
  f.problem.setWeights(model::ObjectiveWeights{0, 0, 1, 1});
  FormulationOptions fopt;
  fopt.objective = ObjectiveKind::kWeighted;
  MilpFormulation formulation(f.problem, f.part, fopt);
  EXPECT_TRUE(formulation.hasSoftSlots());
  const milp::MipResult mip = milp::MilpSolver().solve(formulation.model());
  ASSERT_EQ(mip.status, milp::MipStatus::kOptimal);
  const model::Floorplan fp = formulation.extract(mip.x);
  EXPECT_EQ(fp.placedFcCount(), 0);
  EXPECT_EQ(model::check(f.problem, fp), "");
}

TEST(Formulation, TightenedAndBigMTypeMatchAgree) {
  for (const TypeMatchEncoding enc :
       {TypeMatchEncoding::kTightened, TypeMatchEncoding::kBigM}) {
    Fixture f("CBCCBC", 3);
    f.problem.addRegion(model::RegionSpec{"r", {1, 1, 0}});
    f.problem.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
    FormulationOptions opt;
    opt.type_match = enc;
    opt.objective = ObjectiveKind::kWastedFrames;
    MilpFormulation formulation(f.problem, f.part, opt);
    const milp::MipResult mip = milp::MilpSolver().solve(formulation.model());
    ASSERT_EQ(mip.status, milp::MipStatus::kOptimal) << static_cast<int>(enc);
    const model::Floorplan fp = formulation.extract(mip.x);
    EXPECT_EQ(model::check(f.problem, fp), "") << static_cast<int>(enc);
  }
}

TEST(Formulation, WasteCapRestrictsStageTwo) {
  Fixture f("CCCC", 3);
  f.problem.addRegion(model::RegionSpec{"a", {2, 0, 0}});
  FormulationOptions fopt;
  fopt.objective = ObjectiveKind::kWireLength;
  MilpFormulation formulation(f.problem, f.part, fopt);
  formulation.addWasteCap(0);
  const milp::MipResult mip = milp::MilpSolver().solve(formulation.model());
  ASSERT_EQ(mip.status, milp::MipStatus::kOptimal);
  const model::Floorplan fp = formulation.extract(mip.x);
  EXPECT_EQ(model::evaluate(f.problem, fp).wasted_frames, 0);
}

TEST(Formulation, ForbiddenAreasExcludedByEq1Eq2) {
  Fixture f("CCCC", 4);
  const_cast<device::Device&>(f.problem.dev()).addForbidden(Rect{1, 1, 2, 2}, "hard");
  // Re-partition after adding the forbidden area.
  f.part = *partition::columnarPartition(f.problem.dev());
  f.problem.addRegion(model::RegionSpec{"r", {4, 0, 0}});
  FormulationOptions fopt;
  fopt.objective = ObjectiveKind::kWastedFrames;
  MilpFormulation formulation(f.problem, f.part, fopt);
  const milp::MipResult mip = milp::MilpSolver().solve(formulation.model());
  ASSERT_EQ(mip.status, milp::MipStatus::kOptimal);
  const model::Floorplan fp = formulation.extract(mip.x);
  EXPECT_EQ(model::check(f.problem, fp), "");  // checker verifies forbidden avoidance
}

}  // namespace
}  // namespace rfp::fp
